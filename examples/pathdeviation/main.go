// Case Study I (uncontrolled failure): train the reinforcement-learning
// agent to deviate the vehicle from its mission path by manipulating the
// roll-rate PID integrator inside the compromised stabilizer memory region,
// then replay the learned policy and report the deviation profile.
//
//	go run ./examples/pathdeviation [-episodes 120]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/rl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pathdeviation:", err)
		os.Exit(1)
	}
}

func run() error {
	episodes := flag.Int("episodes", 120, "training episodes")
	flag.Parse()

	env, err := core.NewDeviationEnv(core.EnvConfig{
		Variable: "PIDR.INTEG", // from the roll TSVL
		Mission:  firmware.LineMission(60, 10),
		Seed:     7,
	})
	if err != nil {
		return err
	}

	lo, hi := env.ActionBounds()
	agent := rl.NewReinforce(env.ObservationSize(), lo, hi, 1)
	fmt.Printf("training %d episodes (action: ±%.2f on PIDR.INTEG every 0.3 s)…\n",
		*episodes, hi)
	res := agent.Train(env, *episodes, 100)

	fifth := *episodes / 5
	if fifth < 1 {
		fifth = 1
	}
	early, late := mean(res.Returns[:fifth]), res.MeanLastN(fifth)
	fmt.Printf("learning curve: first-fifth mean return %.2f → last-fifth %.2f (best %.2f @ episode %d)\n",
		early, late, res.BestReturn, res.BestEpisode)

	fmt.Println("\nreplaying the greedy policy:")
	obs := env.Reset()
	for step := 0; step < 100; step++ {
		action := agent.Policy.Mean(obs)
		next, _, done := env.Step(action)
		obs = next
		if step%10 == 0 {
			fmt.Printf("  t=%4.1fs action=%+.3f deviation=%6.2f m\n",
				float64(step)*0.3, action, env.PathDistance())
		}
		if done {
			break
		}
	}
	fmt.Printf("final deviation: %.2f m", env.PathDistance())
	if crashed, reason := env.Firmware().Quad().Crashed(); crashed {
		fmt.Printf(" (vehicle crashed: %s)", reason)
	}
	fmt.Println()
	return nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
