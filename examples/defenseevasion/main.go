// Defense evasion: calibrate the control-invariants monitor on benign
// flights, then compare three missions under its watch — benign, the ARES
// roll-command ramp (stealthy), and a naive integrator-forcing attack
// (detected) — the Figure 6 experiment as a standalone program.
//
//	go run ./examples/defenseevasion
package main

import (
	"fmt"
	"os"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/firmware"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "defenseevasion:", err)
		os.Exit(1)
	}
}

func run() error {
	mission := firmware.LineMission(120, 10)
	fmt.Println("calibrating the control-invariants monitor on 3 benign flights…")
	ci, _, err := attack.CalibrateMonitors(mission, 100)
	if err != nil {
		return err
	}
	fmt.Printf("identified model, threshold %.0f, window %d steps\n\n",
		ci.Threshold, ci.Window)

	type scenario struct {
		name     string
		strategy attack.Strategy
	}
	scenarios := []scenario{
		{"benign", nil},
		{"ARES ramp (2.5°/s)", &attack.RampAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "CMD.Roll",
			Rate:     0.0436,
			Cap:      0.4,
		}},
		{"naive (integrator)", &attack.NaiveAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "PIDR.INTEG",
			Value:    0.25,
		}},
	}

	fmt.Printf("%-20s %12s %9s %10s %10s\n",
		"scenario", "maxCumErr", "detected", "alarm@t", "maxDev(m)")
	for i, sc := range scenarios {
		res, err := attack.RunSession(attack.SessionConfig{
			Mission:     mission,
			Duration:    60,
			Seed:        200 + int64(i),
			CI:          ci,
			Strategy:    sc.strategy,
			AttackStart: 10,
		})
		if err != nil {
			return err
		}
		alarm := "-"
		if res.FirstAlarmT >= 0 {
			alarm = fmt.Sprintf("%.1fs", res.FirstAlarmT)
		}
		fmt.Printf("%-20s %12.0f %9v %10s %10.1f\n",
			sc.name, res.MaxCI, res.DetectedCI, alarm, res.MaxPathDev)
	}
	fmt.Println("\nthe ramp deviates the vehicle while staying under the threshold;")
	fmt.Println("the naive attack fights the controller and lights the detector up.")
	return nil
}
