// Quickstart: run the full ARES pipeline — profile a simulated quadrotor
// over benign missions, run the Algorithm 1 statistical analysis, and print
// the target state variable lists an attacker would go after.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"github.com/ares-cps/ares"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	pipeline := ares.NewPipeline(ares.Config{
		Mission:  ares.SquareMission(25, 10), // 25 m square at 10 m altitude
		Missions: 3,
		Seed:     1,
	})

	fmt.Println("── profiling benign missions (onboard logger + memory instrumentation)")
	if err := pipeline.Profile(); err != nil {
		return err
	}
	fmt.Printf("   traced %d state variables, %d samples each\n\n",
		len(pipeline.ProfileData().Names), pipeline.ProfileData().Samples())

	fmt.Println("── running Algorithm 1 (correlation → clustering → stepwise AIC)")
	if err := pipeline.Analyze(); err != nil {
		return err
	}

	if err := pipeline.Report().WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Println("union TSVL (the attack surface ARES would probe with RL):")
	for _, v := range pipeline.TSVL() {
		fmt.Println("  -", v)
	}
	return nil
}
