// Case Study II (controlled failure): train the reinforcement-learning
// agent to steer the vehicle into a forbidden zone by offsetting the
// navigator→stabilizer roll command, then replay the learned policy.
//
//	go run ./examples/obstaclecrash [-episodes 120]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/rl"
	"github.com/ares-cps/ares/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obstaclecrash:", err)
		os.Exit(1)
	}
}

func run() error {
	episodes := flag.Int("episodes", 120, "training episodes")
	flag.Parse()

	// A forbidden zone 8 m beside the mission's final loiter point.
	zone := sim.Obstacle{
		Name: "forbidden-zone",
		Box: mathx.AABB{
			Min: mathx.V3(35, 8, -20),
			Max: mathx.V3(45, 12, 0),
		},
	}
	env, err := core.NewCrashEnv(core.EnvConfig{
		Variable:  "CMD.Roll",
		PerTick:   true, // standing offset on the per-cycle command cell
		MaxAction: 0.6,
		Mission:   firmware.LineMission(40, 10),
		Seed:      9,
	}, zone)
	if err != nil {
		return err
	}

	lo, hi := env.ActionBounds()
	agent := rl.NewReinforce(env.ObservationSize(), lo, hi, 2)
	fmt.Printf("training %d episodes (standing roll-command offsets up to ±%.1f rad)…\n",
		*episodes, hi)
	res := agent.Train(env, *episodes, 120)
	fmt.Printf("best return %.2f at episode %d\n\n", res.BestReturn, res.BestEpisode)

	fmt.Println("replaying the greedy policy:")
	obs := env.Reset()
	minDist := math.Inf(1)
	for step := 0; step < 120; step++ {
		action := agent.Policy.Mean(obs)
		next, reward, done := env.Step(action)
		obs = next
		if d := env.GoalDistance(); d < minDist {
			minDist = d
		}
		if step%10 == 0 {
			fmt.Printf("  t=%5.1fs offset=%+.2f rad dist-to-zone=%6.2f m\n",
				float64(step)*0.3, action, env.GoalDistance())
		}
		if done {
			if math.IsInf(reward, 1) {
				fmt.Println("  >>> contact with the forbidden zone")
			}
			break
		}
	}
	fmt.Printf("closest approach: %.2f m", minDist)
	if crashed, reason := env.Firmware().Quad().Crashed(); crashed {
		fmt.Printf(" — vehicle lost (%s)", reason)
	}
	fmt.Println()
	return nil
}
