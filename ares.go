// Package ares is the public API of the ARES reproduction: a variable-level
// vulnerability assessment framework for robotic aerial vehicles (Ding et
// al., DSN 2023).
//
// The pipeline has three stages, mirroring the paper's Figure 2:
//
//  1. Profile — fly benign missions on the built-in ArduPilot-style
//     firmware simulator while tracing the full state variable space
//     (dataflash-visible variables plus intermediate controller variables
//     inside MPU memory regions).
//  2. Analyze — run Algorithm 1 (correlation analysis, hierarchical
//     clustering, stepwise-AIC regression with significance checks) to
//     reduce the expanded state variable list to target state variables.
//  3. Exploit — train a reinforcement-learning agent that manipulates one
//     target variable inside a compromised memory region to produce
//     uncontrolled (path deviation) or controlled (obstacle crash)
//     failures, optionally with a deployed detector in the loop.
//
// Quick start:
//
//	p := ares.NewPipeline(ares.Config{Seed: 1})
//	if err := p.Profile(); err != nil { ... }
//	if err := p.Analyze(); err != nil { ... }
//	report := p.Report()
//	report.WriteText(os.Stdout)
package ares

import (
	"fmt"

	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
)

// Seed streams for the independent random consumers of a pipeline run.
// mathx.DeriveSeed mixes the stream id into the base seed, so consumers
// stay decorrelated for every base seed — including adjacent ones, which
// the previous `Seed + 1000` offset scheme made collide across runs.
const (
	seedStreamExploitEnv int64 = iota + 1
	seedStreamExploitPolicy
)

// Config configures a Pipeline.
type Config struct {
	// Mission is the benign profiling mission; nil uses a 25 m square at
	// 10 m altitude.
	Mission *Mission
	// Missions is the number of benign profiling flights (default 5, as
	// in the paper).
	Missions int
	// Seed makes the whole pipeline reproducible.
	Seed int64
	// Analysis tunes Algorithm 1. Analysis.Parallelism bounds the worker
	// pool for the whole Analyze stage (controller groups fan out and each
	// group's prune/correlation/selection stages share the remainder);
	// the default, 0, uses GOMAXPROCS. Results are bit-identical at any
	// worker count, so the knob trades only wall-clock time — embedders
	// running pipelines concurrently (e.g. campaign fleets) should set it
	// to their per-job share of the machine budget.
	Analysis AnalysisOptions
}

// AnalysisOptions re-exports the Algorithm 1 tuning knobs.
type AnalysisOptions = core.AnalysisOptions

// Mission re-exports the waypoint mission type.
type Mission = firmware.Mission

// SquareMission builds a closed square mission (side length and altitude
// in meters).
func SquareMission(side, altitude float64) *Mission {
	return firmware.SquareMission(side, altitude)
}

// LineMission builds a straight A→B mission.
func LineMission(length, altitude float64) *Mission {
	return firmware.LineMission(length, altitude)
}

// Pipeline runs the ARES assessment end to end.
type Pipeline struct {
	cfg Config

	profile *core.Profile
	groups  []*core.GroupAnalysis
	roll    *core.RollAnalysis
}

// NewPipeline creates a pipeline.
func NewPipeline(cfg Config) *Pipeline {
	if cfg.Mission == nil {
		cfg.Mission = firmware.SquareMission(25, 10)
	}
	if cfg.Missions <= 0 {
		cfg.Missions = 5
	}
	return &Pipeline{cfg: cfg}
}

// Profile flies the benign missions and collects the operation traces.
func (p *Pipeline) Profile() error {
	prof, err := core.CollectProfile(core.ProfileConfig{
		Mission:  p.cfg.Mission,
		Missions: p.cfg.Missions,
		Seed:     p.cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("ares: profile: %w", err)
	}
	p.profile = prof
	return nil
}

// Analyze runs Algorithm 1 over all controller groups and the roll-control
// ESVL. Profile must have run first.
func (p *Pipeline) Analyze() error {
	if p.profile == nil {
		return fmt.Errorf("ares: Analyze before Profile")
	}
	groups, err := core.AnalyzeAllGroups(p.profile, p.cfg.Analysis)
	if err != nil {
		return fmt.Errorf("ares: analyze: %w", err)
	}
	roll, err := core.AnalyzeRoll(p.profile, p.cfg.Analysis)
	if err != nil {
		return fmt.Errorf("ares: analyze roll: %w", err)
	}
	p.groups = groups
	p.roll = roll
	return nil
}

// TSVL returns the union of all selected target state variables. Analyze
// must have run first.
func (p *Pipeline) TSVL() []string {
	seen := make(map[string]bool)
	var out []string
	for _, g := range p.groups {
		for _, v := range g.TSVL {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Groups returns the per-controller analyses (the Table II rows).
func (p *Pipeline) Groups() []*core.GroupAnalysis { return p.groups }

// Roll returns the roll-control analysis (the Figure 3/5 product).
func (p *Pipeline) Roll() *core.RollAnalysis { return p.roll }

// ProfileData returns the raw operation traces.
func (p *Pipeline) ProfileData() *core.Profile { return p.profile }

// TrainDeviationExploit trains a Case Study I exploit for one target
// variable with default budgets.
func (p *Pipeline) TrainDeviationExploit(variable string, episodes int) (*core.ExploitResult, error) {
	res, _, err := core.TrainDeviationExploit(core.ExploitConfig{
		Env: core.EnvConfig{
			Variable: variable,
			Seed:     mathx.DeriveSeed(p.cfg.Seed, seedStreamExploitEnv),
		},
		Episodes: episodes,
		Seed:     mathx.DeriveSeed(p.cfg.Seed, seedStreamExploitPolicy),
	})
	if err != nil {
		return nil, fmt.Errorf("ares: exploit: %w", err)
	}
	return res, nil
}

// Report assembles the assessment report from whatever stages have run.
func (p *Pipeline) Report() *core.Report {
	rep := &core.Report{Groups: p.groups, Roll: p.roll}
	if p.profile != nil {
		rep.ProfileSamples = p.profile.Samples()
		rep.ProfileMissions = len(p.profile.MissionLens)
	}
	return rep
}
