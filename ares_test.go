package ares

import (
	"bytes"
	"strings"
	"testing"
)

func TestPipelineEndToEnd(t *testing.T) {
	p := NewPipeline(Config{
		Mission:  SquareMission(25, 10),
		Missions: 2,
		Seed:     7,
	})
	if err := p.Analyze(); err == nil {
		t.Fatal("Analyze before Profile accepted")
	}
	if err := p.Profile(); err != nil {
		t.Fatal(err)
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	tsvl := p.TSVL()
	if len(tsvl) == 0 {
		t.Fatal("empty TSVL")
	}
	if len(p.Groups()) != 3 || p.Roll() == nil {
		t.Fatalf("groups=%d roll=%v", len(p.Groups()), p.Roll())
	}
	var buf bytes.Buffer
	if err := p.Report().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("report missing Table II")
	}
}

func TestPipelineExploitSmoke(t *testing.T) {
	p := NewPipeline(Config{Seed: 9})
	res, err := p.TrainDeviationExploit("PIDR.INTEG", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Train.Episodes != 3 {
		t.Errorf("episodes = %d", res.Train.Episodes)
	}
}

func TestMissionHelpers(t *testing.T) {
	if SquareMission(10, 5).Len() != 5 {
		t.Error("square mission")
	}
	if LineMission(10, 5).Len() != 2 {
		t.Error("line mission")
	}
}
