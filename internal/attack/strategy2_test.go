package attack

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/sim"
)

func pixhawkParams() sim.VehicleParams { return sim.Pixhawk4Params() }

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{&NaiveAttack{}, "naive"},
		{&GradualAttack{}, "ares-gradual"},
		{&RampAttack{}, "ares-ramp"},
		{&JitterAttack{}, "random-jitter"},
		{&ParamAttack{}, "param-set"},
		{&PolicyAttack{}, "rl-policy"},
		{&SetParamOnce{}, "param-once"},
		{&Sequence{Steps: []Strategy{&NaiveAttack{}, &RampAttack{}}}, "seq(naive+ares-ramp)"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestRampAttackOffsetProfile(t *testing.T) {
	fw, err := NewFirmware(11)
	if err != nil {
		t.Fatal(err)
	}
	a := &RampAttack{
		Region:   firmware.RegionStabilizer,
		Variable: "CMD.Roll",
		Rate:     0.1,
		Cap:      0.25,
	}
	// Unbegun: inert.
	a.Apply(fw, 1)
	if err := a.Begin(fw); err != nil {
		t.Fatal(err)
	}
	// The offset grows linearly then saturates at the cap.
	if got := a.Offset(1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Offset(1) = %v, want 0.1", got)
	}
	if got := a.Offset(10); got != 0.25 {
		t.Errorf("Offset(10) = %v, want cap 0.25", got)
	}
	// Negative time (pre-attack) applies nothing.
	ref, _ := fw.Vars().Lookup("CMD.Roll")
	before := ref.Get()
	a.Apply(fw, -1)
	if ref.Get() != before {
		t.Error("pre-attack Apply wrote")
	}
	a.Apply(fw, 2)
	if got := ref.Get() - before; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("applied offset = %v, want 0.2", got)
	}
	// Wrong region fails.
	bad := &RampAttack{Region: firmware.RegionDrivers, Variable: "CMD.Roll"}
	if err := bad.Begin(fw); err == nil {
		t.Error("cross-region ramp accepted")
	}
}

func TestJitterAttackBehavior(t *testing.T) {
	fw, err := NewFirmware(12)
	if err != nil {
		t.Fatal(err)
	}
	a := &JitterAttack{
		Region:    firmware.RegionStabilizer,
		Variable:  "CMD.Roll",
		Amplitude: 0.5,
		Interval:  0.3,
		Seed:      1,
	}
	a.Apply(fw, 1) // unbegun: inert
	if err := a.Begin(fw); err != nil {
		t.Fatal(err)
	}
	ref, _ := fw.Vars().Lookup("CMD.Roll")
	ref.Set(0)
	a.Apply(fw, 0)
	first := ref.Get()
	if first == 0 || math.Abs(first) > 0.5 {
		t.Errorf("first offset = %v, want nonzero within ±0.5", first)
	}
	// Within the interval the offset value repeats (standing offset).
	ref.Set(0)
	a.Apply(fw, 0.1)
	if got := ref.Get(); got != first {
		t.Errorf("offset changed within interval: %v vs %v", got, first)
	}
	// After the interval, a new draw (with overwhelming probability).
	ref.Set(0)
	a.Apply(fw, 0.4)
	if got := ref.Get(); got == first {
		t.Errorf("offset did not resample after interval")
	}
	// Determinism across same-seed instances.
	b := &JitterAttack{Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
		Amplitude: 0.5, Interval: 0.3, Seed: 1}
	if err := b.Begin(fw); err != nil {
		t.Fatal(err)
	}
	ref.Set(0)
	b.Apply(fw, 0)
	if ref.Get() != first {
		t.Error("same-seed jitter diverged")
	}
	// Bad target.
	bad := &JitterAttack{Region: firmware.RegionDrivers, Variable: "CMD.Roll"}
	if err := bad.Begin(fw); err == nil {
		t.Error("cross-region jitter accepted")
	}
}

func TestSetParamOnceAndSequence(t *testing.T) {
	fw, err := NewFirmware(13)
	if err != nil {
		t.Fatal(err)
	}
	seq := &Sequence{Steps: []Strategy{
		&SetParamOnce{Param: "ATC_RAT_RLL_IMAX", Value: 2000},
		&GradualAttack{
			Region: firmware.RegionStabilizer, Variable: "PIDR.INTEG",
			Delta: 0.1, Interval: 0.3,
		},
	}}
	if err := seq.Begin(fw); err != nil {
		t.Fatal(err)
	}
	seq.Apply(fw, 0)
	fw.Step() // drains the PARAM_SET
	v, _ := fw.Params().Get("ATC_RAT_RLL_IMAX")
	if v != 2000 {
		t.Errorf("IMAX = %v, want 2000", v)
	}
	// The param message is sent exactly once.
	seq.Apply(fw, 0.5)
	fw.Step()
	if replies := fw.DrainOutbox(); len(replies) > 1 {
		t.Errorf("param set more than once: %d replies", len(replies))
	}
	// A sequence containing a broken step fails Begin.
	bad := &Sequence{Steps: []Strategy{&SetParamOnce{Param: "NOPE"}}}
	if err := bad.Begin(fw); err == nil {
		t.Error("sequence with unknown param accepted")
	}
}

func TestSessionWithVariableMonitor(t *testing.T) {
	mission := firmware.LineMission(60, 10)

	// Train the variable monitor on a short benign trace of the command
	// handoff AND the roll integrator: the navigator's counter-reaction
	// cancels a standing offset in the command cell at equilibrium, so a
	// robust variable-level monitor watches the set of cells the attack's
	// footprint spreads across (as the countermeasure experiment does).
	watched := []string{"CMD.Roll", "PIDR.INTEG"}
	fw, err := NewFirmware(14)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	fw.RunFor(10)
	series := make([][]float64, len(watched))
	for i := 0; i < 20*400; i++ {
		fw.Step()
		for j, name := range watched {
			ref, _ := fw.Vars().Lookup(name)
			series[j] = append(series[j], ref.Get())
		}
	}
	vm := defense.NewVariableMonitor()
	if err := vm.Train(watched, series); err != nil {
		t.Fatal(err)
	}

	// The ramp attack trips the variable monitor inside a session.
	res, err := RunSession(SessionConfig{
		Mission: mission, Duration: 40, Seed: 15, VarMon: vm,
		Strategy: &RampAttack{
			Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
			Rate: 0.0436, Cap: 0.4,
		},
		AttackStart: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DetectedVar {
		t.Errorf("variable monitor missed the ramp (max %v)", res.MaxVar)
	}
	if res.AlarmedVariable != "CMD.Roll" && res.AlarmedVariable != "PIDR.INTEG" {
		t.Errorf("alarmed variable = %q, want a watched cell", res.AlarmedVariable)
	}
	if !res.Detected() {
		t.Error("aggregate Detected() false despite variable alarm")
	}
	// A monitor watching an unknown variable is a config error.
	vmBad := defense.NewVariableMonitor()
	if err := vmBad.Train([]string{"NO.SUCH"}, [][]float64{series[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSession(SessionConfig{
		Mission: mission, Duration: 5, Seed: 16, VarMon: vmBad,
	}); err == nil {
		t.Error("unknown watched variable accepted")
	}
}

func TestSessionCrossPlatformVehicle(t *testing.T) {
	// The session flies the Pixhawk4 airframe when configured.
	res, err := RunSession(SessionConfig{
		Mission:  firmware.LineMission(40, 10),
		Duration: 30,
		Seed:     17,
		Vehicle:  pixhawkParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatalf("Pixhawk4 session crashed: %s", res.CrashReason)
	}
	if !res.MissionComplete {
		t.Error("Pixhawk4 session mission incomplete")
	}
}
