package attack

import (
	"testing"

	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
)

func TestStealthyBeginValidation(t *testing.T) {
	fw, err := NewFirmware(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&StealthyAttack{Variable: "CMD.Roll"}).Begin(fw); err == nil {
		t.Error("shadow-less stealthy attack began")
	}
	if err := (&StealthyAttack{Variable: "CMD.Roll", Shadow: defense.NewControlInvariants()}).Begin(fw); err == nil {
		t.Error("unfitted shadow accepted")
	}

	mission := firmware.LineMission(40, 10)
	ci, _, err := CalibrateMonitors(mission, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&StealthyAttack{Variable: "NOPE.X", Shadow: ci.Clone()}).Begin(fw); err == nil {
		t.Error("unknown variable accepted")
	}
	a := &StealthyAttack{Variable: "CMD.Roll", Shadow: ci.Clone()}
	if err := a.Begin(fw); err != nil {
		t.Fatalf("valid stealthy attack rejected: %v", err)
	}
	if a.Budget != 0.6 || a.Rate != 0.05 || a.Cap != 0.6 || a.Backoff != 0.98 {
		t.Errorf("defaults not applied: %+v", a)
	}
}

// TestStealthySessionEvadesCI is the stealth/impact contract of the
// magnitude-scheduled injection class: the attack deviates the vehicle
// beyond its benign envelope, yet the deployed CI monitor — whose shadow
// the attacker schedules against — never alarms.
func TestStealthySessionEvadesCI(t *testing.T) {
	mission := firmware.LineMission(120, 10)
	ci, _, err := CalibrateMonitors(mission, 10)
	if err != nil {
		t.Fatal(err)
	}

	benign, err := RunSession(SessionConfig{
		Mission: mission, Duration: 60, Seed: 30, CI: ci.Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}

	strat := &StealthyAttack{Variable: "CMD.Roll", Shadow: ci.Clone()}
	res, err := RunSession(SessionConfig{
		Mission:     mission,
		Duration:    60,
		Seed:        30,
		CI:          ci.Clone(),
		Strategy:    strat,
		AttackStart: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedCI {
		t.Errorf("stealthy attack detected (max %v, threshold %v)", res.MaxCI, ci.Threshold)
	}
	if res.MaxPathDev < benign.MaxPathDev+1 {
		t.Errorf("stealthy deviation %v not clearly above benign %v",
			res.MaxPathDev, benign.MaxPathDev)
	}
	if strat.Offset() <= 0 {
		t.Errorf("standing offset never grew: %v", strat.Offset())
	}
}

// TestSessionRecoveryBoundsAttack: against the naive integrator-forcing
// attack the recovery guard must engage at the detection and measurably
// reduce the physical effect relative to an undefended flight.
func TestSessionRecoveryBoundsAttack(t *testing.T) {
	mission := firmware.LineMission(120, 10)
	ci, _, err := CalibrateMonitors(mission, 10)
	if err != nil {
		t.Fatal(err)
	}
	naive := func() *NaiveAttack {
		return &NaiveAttack{Region: firmware.RegionStabilizer, Variable: "PIDR.INTEG", Value: 0.25}
	}

	bare, err := RunSession(SessionConfig{
		Mission: mission, Duration: 60, Seed: 40,
		Strategy: naive(), AttackStart: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	guarded, err := RunSession(SessionConfig{
		Mission: mission, Duration: 60, Seed: 40,
		Strategy: naive(), AttackStart: 10,
		Recovery: defense.NewRecoveryGuard(ci.Clone()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !guarded.Recovered || guarded.RecoveredAt <= 0 {
		t.Fatalf("guard never engaged: recovered=%v at=%v (max CI %v)",
			guarded.Recovered, guarded.RecoveredAt, guarded.MaxCI)
	}
	if !guarded.Detected() {
		t.Error("guard engagement not reported as a detection")
	}
	if guarded.MaxPathDev >= bare.MaxPathDev {
		t.Errorf("recovery did not bound deviation: %v (guarded) vs %v (bare)",
			guarded.MaxPathDev, bare.MaxPathDev)
	}
}
