package attack

import (
	"fmt"
	"math"

	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sensors"
	"github.com/ares-cps/ares/internal/sim"
	"github.com/ares-cps/ares/internal/vars"
)

// TracePoint is one recorded sample of an attack session (16 Hz).
type TracePoint struct {
	// T is the simulation time in seconds.
	T float64
	// RollDeg and DesRollDeg are the true and commanded roll in degrees.
	RollDeg, DesRollDeg float64
	// PitchDeg is the true pitch in degrees.
	PitchDeg float64
	// PathDev is the distance from the mission path in meters.
	PathDev float64
	// CIStat, MLStat and EKFStat are the three detection statistics.
	CIStat, MLStat, EKFStat float64
	// PIDOutP, PIDOutI, PIDOutD are the roll-rate PID term outputs.
	PIDOutP, PIDOutI, PIDOutD float64
	// EKFRollDeg is the estimator's roll in degrees (the ATT.R vs
	// EKF1.Roll pair of Figure 8).
	EKFRollDeg float64
}

// SessionResult summarizes one instrumented flight.
type SessionResult struct {
	// Trace holds the 16 Hz samples.
	Trace []TracePoint
	// Detected* report whether each monitor ever alarmed, and at what
	// time the first alarm fired (-1 if never).
	DetectedCI, DetectedML, DetectedEKF, DetectedVar bool
	FirstAlarmT                                      float64
	// MaxCI, MaxML, MaxEKF, MaxVar are the peak detection statistics.
	MaxCI, MaxML, MaxEKF, MaxVar float64
	// AlarmedVariable names the cell that tripped the variable monitor.
	AlarmedVariable string
	// Recovered reports that the recovery guard engaged; RecoveredAt is
	// the flight time of the engagement (meaningful only when Recovered).
	Recovered   bool
	RecoveredAt float64
	// MaxPathDev is the peak deviation from the mission path.
	MaxPathDev float64
	// FinalPathDev is the deviation at the end of the session.
	FinalPathDev float64
	// Crashed and CrashReason report vehicle loss.
	Crashed     bool
	CrashReason string
	// MissionComplete reports whether every waypoint was reached.
	MissionComplete bool
}

// Detected reports whether any monitor alarmed.
func (r *SessionResult) Detected() bool {
	return r.DetectedCI || r.DetectedML || r.DetectedEKF || r.DetectedVar
}

// SessionConfig configures an instrumented attack flight.
type SessionConfig struct {
	// Mission is flown in AUTO mode. Required.
	Mission *firmware.Mission
	// Strategy is the attack to run; nil flies a benign mission.
	Strategy Strategy
	// AttackStart is when (seconds into the mission) the attack begins.
	AttackStart float64
	// Duration bounds the session in simulated seconds.
	Duration float64
	// Seed controls sensor noise; distinct seeds give distinct trials.
	Seed int64
	// Monitors: fitted detectors to run; nil entries are skipped.
	CI  *defense.ControlInvariants
	ML  *defense.MLMonitor
	EKF *defense.EKFResidual
	// VarMon is the variable-level countermeasure; it watches the live
	// values of its trained variable set every tick.
	VarMon *defense.VariableMonitor
	// Recovery is the SpecGuard-style recovery defense: its detector runs
	// in the loop and, from the first alarm on, the guard's conservative
	// recovery controller clamps the attitude commands and bleeds the
	// integrators every tick.
	Recovery *defense.RecoveryGuard
	// World adds obstacles/forbidden zones to the environment.
	World *sim.World
	// Vehicle selects the airframe; zero value flies the IRIS+.
	Vehicle sim.VehicleParams
}

// NewFirmware builds the standard evaluation vehicle: an IRIS+ with default
// sensors, seeded for reproducibility.
func NewFirmware(seed int64) (*firmware.Firmware, error) {
	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = seed
	return firmware.New(firmware.Config{Sensors: sensorCfg})
}

// NewFirmwareWithPlant builds the same evaluation stack as NewFirmware but
// flying an injected plant — typically a sim.BatchQuad lane, so batched
// rollouts share one physics kernel. The caller must hand over a pristine
// (freshly reset) plant for the flight to match NewFirmware bit-for-bit.
func NewFirmwareWithPlant(seed int64, plant sim.Vehicle) (*firmware.Firmware, error) {
	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = seed
	return firmware.New(firmware.Config{Sensors: sensorCfg, Plant: plant})
}

// CalibrateMonitors flies three benign missions (seed, seed+1, seed+2) and
// trains/identifies the CI and ML monitors on the combined trace, returning
// fresh fitted monitors. Multiple flights make the benign-error calibration
// robust to per-flight sensor-noise variance — a single lucky flight would
// otherwise set an over-tight scale that false-alarms on its siblings.
func CalibrateMonitors(mission *firmware.Mission, seed int64) (*defense.ControlInvariants, *defense.MLMonitor, error) {
	return CalibrateMonitorsFor(mission, sim.VehicleParams{}, seed)
}

// CalibrateMonitorsFor is CalibrateMonitors with an explicit airframe (the
// zero value flies the IRIS+ default).
func CalibrateMonitorsFor(mission *firmware.Mission, vehicle sim.VehicleParams, seed int64) (*defense.ControlInvariants, *defense.MLMonitor, error) {
	var ciTrace []defense.CISample
	var mlTrace []defense.MLSample
	var dt float64
	for m := int64(0); m < 3; m++ {
		sensorCfg := sensors.DefaultConfig()
		sensorCfg.Seed = seed + m //areslint:ignore seedarith golden-pinned
		fw, err := firmware.New(firmware.Config{Sensors: sensorCfg, Vehicle: vehicle})
		if err != nil {
			return nil, nil, err
		}
		dt = fw.DT()
		if err := fw.Takeoff(altitudeOf(mission)); err != nil {
			return nil, nil, err
		}
		fw.RunFor(10)
		fw.LoadMission(cloneMission(mission))
		if err := fw.StartMission(); err != nil {
			return nil, nil, err
		}

		obs := NewCIObserver(fw)
		maxTicks := int(120 / fw.DT())
		minTicks := int(30 / fw.DT()) // hover missions complete instantly
		for i := 0; i < maxTicks && (!fw.Mission().Complete() || i < minTicks); i++ {
			fw.Step()
			ciTrace = append(ciTrace, obs.Sample(fw))
			mlTrace = append(mlTrace, MLSampleOf(fw))
		}
		if crashed, reason := fw.Quad().Crashed(); crashed {
			return nil, nil, fmt.Errorf("attack: calibration flight crashed: %s", reason)
		}
	}

	ci := defense.NewControlInvariants()
	if err := ci.Identify(ciTrace); err != nil {
		return nil, nil, fmt.Errorf("attack: CI identification: %w", err)
	}
	ml := defense.NewMLMonitor(dt)
	if err := ml.Train(mlTrace); err != nil {
		return nil, nil, fmt.Errorf("attack: ML training: %w", err)
	}
	return ci, ml, nil
}

// RunSession executes one instrumented flight and returns its result.
func RunSession(cfg SessionConfig) (*SessionResult, error) {
	if cfg.Mission == nil || cfg.Mission.Len() == 0 {
		return nil, fmt.Errorf("attack: session needs a mission")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60
	}
	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = cfg.Seed
	fw, err := firmware.New(firmware.Config{
		World:   cfg.World,
		Sensors: sensorCfg,
		Vehicle: cfg.Vehicle,
	})
	if err != nil {
		return nil, err
	}
	if cfg.CI != nil {
		cfg.CI.Reset()
	}
	if cfg.ML != nil {
		cfg.ML.Reset()
	}
	if cfg.EKF != nil {
		cfg.EKF.Reset()
	}
	if cfg.VarMon != nil {
		cfg.VarMon.Reset()
	}
	if cfg.Recovery != nil {
		if err := cfg.Recovery.Validate(); err != nil {
			return nil, err
		}
		cfg.Recovery.Reset()
	}

	if err := fw.Takeoff(altitudeOf(cfg.Mission)); err != nil {
		return nil, err
	}
	fw.RunFor(10)
	fw.LoadMission(cloneMission(cfg.Mission))
	if err := fw.StartMission(); err != nil {
		return nil, err
	}

	res := &SessionResult{FirstAlarmT: -1}
	ciObs := NewCIObserver(fw)
	var varRefs []vars.Ref
	var varVals []float64
	if cfg.VarMon != nil {
		for _, name := range cfg.VarMon.Names() {
			ref, ok := fw.Vars().Lookup(name)
			if !ok {
				return nil, fmt.Errorf("attack: variable monitor watches unknown %q", name)
			}
			varRefs = append(varRefs, ref)
		}
		varVals = make([]float64, len(varRefs))
	}
	path := cfg.Mission.Path()
	ticks := int(cfg.Duration / fw.DT())
	logEvery := int(math.Round(1 / (16 * fw.DT()))) // 16 Hz trace
	if logEvery < 1 {
		logEvery = 1
	}
	attackBegun := false
	start := fw.Time()

	var recRefs defense.RecoveryRefs
	if cfg.Recovery != nil {
		if recRefs, err = RecoveryRefsOf(fw); err != nil {
			return nil, err
		}
	}

	// The strategy fires from the mid-pipeline hook: after the navigator
	// writes the attitude command, before the stabilizer consumes it —
	// the timing an attacker with code in the stabilizer region has. The
	// recovery clamp runs after the strategy from the same hook: the
	// legitimate firmware gets the last word on what the stabilizer sees.
	var hookNow float64
	fw.SetAttackHook(func() {
		if attackBegun && cfg.Strategy != nil {
			cfg.Strategy.Apply(fw, hookNow)
		}
		if cfg.Recovery != nil {
			cfg.Recovery.Apply(recRefs)
		}
	})
	defer fw.SetAttackHook(nil)

	for i := 0; i < ticks; i++ {
		now := fw.Time() - start
		if cfg.Strategy != nil && !attackBegun && now >= cfg.AttackStart {
			if err := cfg.Strategy.Begin(fw); err != nil {
				return nil, err
			}
			attackBegun = true
		}
		hookNow = now - cfg.AttackStart
		fw.Step()

		// Feed the monitors at the control rate.
		st := fw.Quad().State()
		roll, pitch, yaw := st.Euler()
		var ciV, mlV, ekfV defense.Verdict
		if cfg.CI != nil {
			ciV = cfg.CI.Observe(ciObs.Sample(fw))
		}
		if cfg.Recovery != nil {
			// The guard's detector verdict reports through the CI channel
			// (it *is* a control-invariants detector, plus a response).
			if v := cfg.Recovery.Observe(ciObs.Sample(fw), now); v.Stat > ciV.Stat || v.Alarm {
				ciV = v
			}
		}
		if cfg.ML != nil {
			mlV = cfg.ML.Observe(MLSampleOf(fw))
		}
		estRoll, _, _ := fw.EKF().Attitude()
		if cfg.EKF != nil {
			ekfV = cfg.EKF.Observe(roll, estRoll)
		}
		if cfg.VarMon != nil {
			for j, ref := range varRefs {
				varVals[j] = ref.Get()
			}
			v := cfg.VarMon.Observe(varVals)
			if v.Stat > res.MaxVar {
				res.MaxVar = v.Stat
			}
			if v.Alarm && !res.DetectedVar {
				res.DetectedVar = true
				res.AlarmedVariable = cfg.VarMon.AlarmedVariable()
				if res.FirstAlarmT < 0 {
					res.FirstAlarmT = now
				}
			}
		}
		updateDetection(res, now, ciV, mlV, ekfV)

		dev := mathx.PathDistance(st.Pos, path)
		if dev > res.MaxPathDev {
			res.MaxPathDev = dev
		}
		res.FinalPathDev = dev

		if i%logEvery == 0 {
			res.Trace = append(res.Trace, TracePoint{
				T:          now,
				RollDeg:    mathx.Deg(roll),
				DesRollDeg: mathx.Deg(varOf(fw, "ATT.DesRoll")),
				PitchDeg:   mathx.Deg(pitch),
				PathDev:    dev,
				CIStat:     ciV.Stat,
				MLStat:     mlV.Stat,
				EKFStat:    ekfV.Stat,
				PIDOutP:    varOf(fw, "PIDR.P"),
				PIDOutI:    varOf(fw, "PIDR.I"),
				PIDOutD:    varOf(fw, "PIDR.D"),
				EKFRollDeg: mathx.Deg(estRoll),
			})
		}
		_ = yaw

		if crashed, reason := fw.Quad().Crashed(); crashed {
			res.Crashed = true
			res.CrashReason = reason
			break
		}
	}
	if cfg.Recovery != nil && cfg.Recovery.Engaged() {
		res.Recovered = true
		res.RecoveredAt = cfg.Recovery.EngagedAt()
	}
	res.MissionComplete = fw.Mission().Complete()
	return res, nil
}

func updateDetection(res *SessionResult, now float64, ci, ml, ekf defense.Verdict) {
	if ci.Stat > res.MaxCI {
		res.MaxCI = ci.Stat
	}
	if ml.Stat > res.MaxML {
		res.MaxML = ml.Stat
	}
	if ekf.Stat > res.MaxEKF {
		res.MaxEKF = ekf.Stat
	}
	alarm := false
	if ci.Alarm && !res.DetectedCI {
		res.DetectedCI = true
		alarm = true
	}
	if ml.Alarm && !res.DetectedML {
		res.DetectedML = true
		alarm = true
	}
	if ekf.Alarm && !res.DetectedEKF {
		res.DetectedEKF = true
		alarm = true
	}
	if alarm && res.FirstAlarmT < 0 {
		res.FirstAlarmT = now
	}
}

// RecoveryRefsOf resolves the canonical recovery-actuation cells of the
// SpecGuard-style guard against a running firmware: the attitude-command
// handoff cells it clamps and the rate-PID integrators it bleeds. The
// defense package stays firmware-agnostic; this is the wiring layer.
func RecoveryRefsOf(fw *firmware.Firmware) (defense.RecoveryRefs, error) {
	var refs defense.RecoveryRefs
	for _, name := range []string{"CMD.Roll", "CMD.Pitch"} {
		ref, ok := fw.Vars().Lookup(name)
		if !ok {
			return defense.RecoveryRefs{}, fmt.Errorf("attack: recovery cell %q not registered", name)
		}
		refs.Commands = append(refs.Commands, ref)
	}
	for _, name := range []string{"PIDR.INTEG", "PIDP.INTEG"} {
		ref, ok := fw.Vars().Lookup(name)
		if !ok {
			return defense.RecoveryRefs{}, fmt.Errorf("attack: recovery cell %q not registered", name)
		}
		refs.Integrators = append(refs.Integrators, ref)
	}
	return refs, nil
}

// CIObserver extracts the control-invariants observation. Following Choi
// et al.'s implementation, the monitor reads the attitude *targets the
// firmware itself computed* (ATT.DesRoll/DesPitch/DesYaw) — it has no
// independent source of expected behavior. This is precisely the soundness
// gap ARES exploits: a manipulation that shifts the target and lets the
// vehicle track it stays self-consistent, while an attack that makes the
// vehicle diverge from its own targets (e.g. forcing the rate integrator)
// is caught.
type CIObserver struct{}

func NewCIObserver(_ *firmware.Firmware) *CIObserver { return &CIObserver{} }

// Sample builds one CI observation from the running firmware.
func (o *CIObserver) Sample(fw *firmware.Firmware) defense.CISample {
	roll, pitch, yaw := fw.Quad().State().Euler()
	return defense.CISample{
		Roll: roll, Pitch: pitch, Yaw: yaw,
		DesRoll:  varOf(fw, "ATT.DesRoll"),
		DesPitch: varOf(fw, "ATT.DesPitch"),
		DesYaw:   varOf(fw, "ATT.DesYaw"),
	}
}

// MLSample extracts the ML-monitor observation: the roll-rate controller's
// target, measurement and output.
func MLSampleOf(fw *firmware.Firmware) defense.MLSample {
	return defense.MLSample{
		Target: varOf(fw, "RATE.RDes"),
		Actual: fw.LastReading().IMU.Gyro.X,
		Output: varOf(fw, "PIDR.OUT"),
	}
}

func varOf(fw *firmware.Firmware, name string) float64 {
	if ref, ok := fw.Vars().Lookup(name); ok {
		return ref.Get()
	}
	return 0
}

func altitudeOf(m *firmware.Mission) float64 {
	if m.Len() == 0 {
		return 10
	}
	return -m.Target().Z
}

func cloneMission(m *firmware.Mission) *firmware.Mission {
	wps := make([]firmware.Waypoint, 0, m.Len())
	for _, p := range m.Path() {
		wps = append(wps, firmware.Waypoint{Pos: p})
	}
	out := firmware.NewMission(wps)
	out.AcceptRadius = m.AcceptRadius
	return out
}
