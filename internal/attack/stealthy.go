package attack

import (
	"fmt"

	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

// StealthyAttack is the state-aware magnitude-scheduled injection of the
// "Requiem for a Drone" attack class: the attacker runs a *shadow copy* of
// the deployed control-invariants monitor on the state it can observe from
// its compromised region, and schedules the injected offset so the
// detection statistic never crosses a fraction (Budget) of the alarm
// threshold. While the shadow statistic is comfortably below budget the
// standing offset grows at Rate; when the statistic approaches the budget
// the offset backs off multiplicatively, letting the vehicle re-converge
// toward model-consistent behavior before pushing again.
//
// The result is the stealth/impact trade-off the paper class demonstrates:
// strictly less physical effect per unit time than the unthrottled ramp,
// but a detection statistic that stays under the monitor's threshold for
// the whole flight.
type StealthyAttack struct {
	// Region is the compromised MPU region; empty resolves to the target
	// variable's home region at Begin (the attacker runs inside the
	// process that owns the cell).
	Region string
	// Variable is the manipulated cell (a per-cycle-rewritten handoff
	// cell such as CMD.Roll — the offset is re-applied every tick).
	Variable string
	// Shadow is the attacker's replica of the deployed monitor (a fitted
	// clone; the attacker is assumed to know the defense, the standard
	// white-box assumption of the stealthy-attack literature). Required.
	Shadow *defense.ControlInvariants
	// Budget is the fraction of the shadow threshold the statistic must
	// stay under (default 0.6).
	Budget float64
	// Rate is the offset growth in rad/s while under budget (default
	// 0.05).
	Rate float64
	// Cap bounds the absolute standing offset (default 0.6 rad).
	Cap float64
	// Backoff is the multiplicative offset decay per tick while the
	// shadow statistic is over budget (default 0.98).
	Backoff float64

	ref      vars.Ref
	offset   float64
	lastNow  float64
	haveLast bool
	begun    bool
}

// Name implements Strategy.
func (a *StealthyAttack) Name() string { return "stealthy-injection" }

// Begin implements Strategy.
func (a *StealthyAttack) Begin(fw *firmware.Firmware) error {
	if a.Shadow == nil || !a.Shadow.Fitted() {
		return fmt.Errorf("attack: stealthy begin: needs a fitted shadow monitor")
	}
	region := a.Region
	if region == "" {
		home, ok := fw.Memory().RegionOf(a.Variable)
		if !ok {
			return fmt.Errorf("attack: stealthy begin: unknown variable %q", a.Variable)
		}
		region = home
	}
	ref, err := fw.Memory().Access(region, a.Variable, true)
	if err != nil {
		return fmt.Errorf("attack: stealthy begin: %w", err)
	}
	if a.Budget <= 0 || a.Budget >= 1 {
		a.Budget = 0.6
	}
	if a.Rate <= 0 {
		a.Rate = 0.05
	}
	if a.Cap <= 0 {
		a.Cap = 0.6
	}
	if a.Backoff <= 0 || a.Backoff >= 1 {
		a.Backoff = 0.98
	}
	a.ref = ref
	a.offset = 0
	a.haveLast = false
	a.Shadow.Reset()
	a.begun = true
	return nil
}

// Offset returns the current standing offset (for tests and traces).
func (a *StealthyAttack) Offset() float64 { return a.offset }

// Apply implements Strategy: one scheduling step per tick. The shadow
// monitor consumes the same observation the deployed monitor sees; the
// offset grows while the shadow statistic is under Budget×Threshold and
// decays while over.
func (a *StealthyAttack) Apply(fw *firmware.Firmware, now float64) {
	if !a.begun || now < 0 {
		return
	}
	dt := 0.0
	if a.haveLast && now > a.lastNow {
		dt = now - a.lastNow
	}
	a.lastNow = now
	a.haveLast = true

	v := a.Shadow.Observe(NewCIObserver(fw).Sample(fw))
	if v.Stat >= a.Budget*a.Shadow.Threshold {
		a.offset *= a.Backoff
	} else {
		a.offset = mathx.Clamp(a.offset+a.Rate*dt, -a.Cap, a.Cap)
	}
	a.ref.Add(a.offset)
}
