package attack

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/firmware"
)

func TestNaiveAttackRequiresRegionAccess(t *testing.T) {
	fw, err := NewFirmware(1)
	if err != nil {
		t.Fatal(err)
	}
	// Correct region: succeeds.
	a := &NaiveAttack{Region: firmware.RegionStabilizer, Variable: "PIDR.INTEG", Value: 1}
	if err := a.Begin(fw); err != nil {
		t.Fatal(err)
	}
	// Wrong region: the MPU denies the write capability.
	b := &NaiveAttack{Region: firmware.RegionDrivers, Variable: "PIDR.INTEG", Value: 1}
	if err := b.Begin(fw); err == nil {
		t.Error("cross-region attack target accepted")
	}
	// Unknown variable.
	c := &NaiveAttack{Region: firmware.RegionStabilizer, Variable: "NOPE", Value: 1}
	if err := c.Begin(fw); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestGradualAttackIntervalAndCap(t *testing.T) {
	fw, err := NewFirmware(2)
	if err != nil {
		t.Fatal(err)
	}
	a := &GradualAttack{
		Region:   firmware.RegionStabilizer,
		Variable: "PIDR.INTEG",
		Delta:    0.1,
		Interval: 0.3,
		Cap:      0.25,
	}
	if err := a.Begin(fw); err != nil {
		t.Fatal(err)
	}
	ref, _ := fw.Vars().Lookup("PIDR.INTEG")
	a.Apply(fw, 0) // first shot
	if got := ref.Get(); got != 0.1 {
		t.Errorf("after first apply: %v", got)
	}
	a.Apply(fw, 0.1) // too soon
	if got := ref.Get(); got != 0.1 {
		t.Errorf("interval not respected: %v", got)
	}
	a.Apply(fw, 0.35) // second shot
	if got := ref.Get(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("after second apply: %v", got)
	}
	a.Apply(fw, 0.7) // would exceed the cap
	if got := ref.Get(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("cap not respected: %v", got)
	}
	if math.Abs(a.Applied()-0.2) > 1e-12 {
		t.Errorf("Applied = %v", a.Applied())
	}
	// Unbegun attack is inert.
	var idle GradualAttack
	idle.Apply(fw, 1)
}

func TestParamAttackRampsParameter(t *testing.T) {
	fw, err := NewFirmware(3)
	if err != nil {
		t.Fatal(err)
	}
	a := &ParamAttack{Param: "ATC_RAT_RLL_P", Delta: 0.01, Interval: 0.3}
	if err := a.Begin(fw); err != nil {
		t.Fatal(err)
	}
	a.Apply(fw, 0)
	fw.Step() // processes the PARAM_SET
	v, _ := fw.Params().Get("ATC_RAT_RLL_P")
	if math.Abs(v-0.145) > 1e-9 {
		t.Errorf("param after one shot = %v, want 0.145", v)
	}
	// Unknown parameter fails at Begin.
	bad := &ParamAttack{Param: "NOPE", Delta: 1, Interval: 1}
	if err := bad.Begin(fw); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestCalibrateMonitors(t *testing.T) {
	mission := firmware.SquareMission(25, 10)
	ci, ml, err := CalibrateMonitors(mission, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Fitted() || !ml.Fitted() {
		t.Error("monitors not fitted")
	}
}

// TestSessionBenignVsNaiveVsRamp is the package's core integration test: it
// reproduces the Figure 6 shape — a benign mission stays far below the CI
// threshold, the naive integrator-forcing attack trips it, and the ARES
// ramp manipulation deviates the vehicle while staying undetected.
func TestSessionBenignVsNaiveVsRamp(t *testing.T) {
	mission := firmware.LineMission(120, 10)
	ci, _, err := CalibrateMonitors(mission, 10)
	if err != nil {
		t.Fatal(err)
	}

	benign, err := RunSession(SessionConfig{
		Mission: mission, Duration: 60, Seed: 20, CI: ci,
	})
	if err != nil {
		t.Fatal(err)
	}
	if benign.DetectedCI {
		t.Fatalf("benign mission raised a CI alarm (max %v)", benign.MaxCI)
	}
	if !benign.MissionComplete {
		t.Error("benign mission incomplete")
	}

	// The naive baseline forces the roll-rate integrator to its clamp:
	// the vehicle rolls hard against its own attitude targets, which is
	// exactly the divergence the control invariant expresses.
	naive, err := RunSession(SessionConfig{
		Mission:     mission,
		Duration:    60,
		Seed:        21,
		CI:          ci,
		Strategy:    &NaiveAttack{Region: firmware.RegionStabilizer, Variable: "PIDR.INTEG", Value: 0.25},
		AttackStart: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.DetectedCI {
		t.Errorf("naive attack evaded CI (max %v, threshold %v)", naive.MaxCI, ci.Threshold)
	}

	// The ARES manipulation ramps the roll command ~2.5°/s through the
	// navigator→stabilizer handoff; the vehicle tracks its (attacked)
	// targets, so the invariant stays satisfied while the vehicle drifts.
	ramp, err := RunSession(SessionConfig{
		Mission:  mission,
		Duration: 60,
		Seed:     22,
		CI:       ci,
		Strategy: &RampAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "CMD.Roll",
			Rate:     0.0436,
			Cap:      0.4,
		},
		AttackStart: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ramp.DetectedCI {
		t.Errorf("ramp attack detected by CI (max %v)", ramp.MaxCI)
	}
	if ramp.MaxPathDev < benign.MaxPathDev+2 {
		t.Errorf("ramp deviation %v not clearly above benign %v",
			ramp.MaxPathDev, benign.MaxPathDev)
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := RunSession(SessionConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunSession(SessionConfig{Mission: firmware.NewMission(nil)}); err == nil {
		t.Error("empty mission accepted")
	}
}

func TestSessionTraceSampling(t *testing.T) {
	mission := firmware.LineMission(30, 10)
	res, err := RunSession(SessionConfig{Mission: mission, Duration: 20, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	// 16 Hz over 20 s ≈ 320 samples.
	if len(res.Trace) < 250 || len(res.Trace) > 340 {
		t.Errorf("trace has %d samples", len(res.Trace))
	}
	// Time is monotone.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].T <= res.Trace[i-1].T {
			t.Fatalf("non-monotone trace time at %d", i)
		}
	}
}

func TestPolicyAttackDrivesVariable(t *testing.T) {
	fw, err := NewFirmware(4)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	a := &PolicyAttack{
		Region:   firmware.RegionStabilizer,
		Variable: "PIDR.INTEG",
		Interval: 0.3,
		Observe: func(fw *firmware.Firmware) []float64 {
			return []float64{fw.Quad().State().Pos.X}
		},
		Act: func(obs []float64) float64 {
			calls++
			return 0.05
		},
	}
	if err := a.Begin(fw); err != nil {
		t.Fatal(err)
	}
	a.Apply(fw, 0)
	a.Apply(fw, 0.1)
	a.Apply(fw, 0.4)
	if calls != 2 {
		t.Errorf("policy consulted %d times, want 2", calls)
	}
	ref, _ := fw.Vars().Lookup("PIDR.INTEG")
	if math.Abs(ref.Get()-0.1) > 1e-12 {
		t.Errorf("variable = %v, want 0.1", ref.Get())
	}
}
