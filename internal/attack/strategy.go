// Package attack implements the adversarial manipulation machinery: the
// injection channels of the paper's threat model (direct writes inside a
// compromised MPU memory region, and PARAM_SET commands over the GCS
// link), the naive baseline attack, the ARES-style gradual manipulation,
// and the instrumented attack session that drives every defense-evasion
// experiment (Figures 6–9).
package attack

import (
	"fmt"
	"math/rand"

	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/mavlink"
	"github.com/ares-cps/ares/internal/vars"
)

// Strategy is one attack behavior applied to the running firmware.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Begin resolves the strategy's targets against the firmware. It is
	// called once when the attack activates.
	Begin(fw *firmware.Firmware) error
	// Apply performs the manipulation for the current tick; now is the
	// simulation time in seconds since the attack began.
	Apply(fw *firmware.Firmware, now float64)
}

// NaiveAttack overwrites a state variable with a fixed extreme value every
// tick — the paper's baseline "simple attack strategy which naively sets
// the roll angle to 30 degrees".
type NaiveAttack struct {
	// Region is the compromised MPU region the write comes from.
	Region string
	// Variable is the target state variable.
	Variable string
	// Value is the forced value.
	Value float64

	ref vars.Ref
}

// Name implements Strategy.
func (a *NaiveAttack) Name() string { return "naive" }

// Begin implements Strategy: it obtains the write capability through the
// compromised region's memory view, so a target outside the region fails
// exactly as the MPU would make it fail.
func (a *NaiveAttack) Begin(fw *firmware.Firmware) error {
	ref, err := fw.Memory().Access(a.Region, a.Variable, true)
	if err != nil {
		return fmt.Errorf("attack: naive begin: %w", err)
	}
	a.ref = ref
	return nil
}

// Apply implements Strategy.
func (a *NaiveAttack) Apply(_ *firmware.Firmware, _ float64) {
	a.ref.Set(a.Value)
}

// GradualAttack is the ARES manipulation: at every action interval it
// shifts the target variable by a small delta, optionally saturating at a
// cap. The paper's headline exploit increases the roll response ~2.5°/s by
// adding ~0.00625° of input error per 400 Hz step until 45°.
type GradualAttack struct {
	// Region is the compromised MPU region.
	Region string
	// Variable is the manipulated state variable.
	Variable string
	// Delta is the per-application increment.
	Delta float64
	// Interval is the time between applications in seconds (0 = every
	// tick; the paper's RL agent acts every 0.3 s).
	Interval float64
	// Cap, when non-zero, bounds the absolute accumulated manipulation.
	Cap float64

	ref       vars.Ref
	lastApply float64
	applied   float64
	begun     bool
}

// Name implements Strategy.
func (a *GradualAttack) Name() string { return "ares-gradual" }

// Begin implements Strategy.
func (a *GradualAttack) Begin(fw *firmware.Firmware) error {
	ref, err := fw.Memory().Access(a.Region, a.Variable, true)
	if err != nil {
		return fmt.Errorf("attack: gradual begin: %w", err)
	}
	a.ref = ref
	a.lastApply = -1e9
	a.applied = 0
	a.begun = true
	return nil
}

// Applied returns the accumulated manipulation so far.
func (a *GradualAttack) Applied() float64 { return a.applied }

// Apply implements Strategy.
func (a *GradualAttack) Apply(_ *firmware.Firmware, now float64) {
	if !a.begun {
		return
	}
	if a.Interval > 0 && now-a.lastApply < a.Interval {
		return
	}
	if a.Cap > 0 && abs(a.applied+a.Delta) > a.Cap {
		return
	}
	a.ref.Add(a.Delta)
	a.applied += a.Delta
	a.lastApply = now
}

// ParamAttack issues PARAM_SET commands over the GCS channel at a fixed
// interval, ramping a parameter from its current value by Delta per shot —
// the remote half of the threat model ("the attacker can concoct and issue
// malicious GCS commands to update the control parameters").
type ParamAttack struct {
	// Param is the parameter name.
	Param string
	// Delta is the per-command increment.
	Delta float64
	// Interval is the time between commands in seconds.
	Interval float64

	value     float64
	lastApply float64
	begun     bool
}

// Name implements Strategy.
func (a *ParamAttack) Name() string { return "param-set" }

// Begin implements Strategy.
func (a *ParamAttack) Begin(fw *firmware.Firmware) error {
	v, err := fw.Params().Get(a.Param)
	if err != nil {
		return fmt.Errorf("attack: param begin: %w", err)
	}
	a.value = v
	a.lastApply = -1e9
	a.begun = true
	return nil
}

// Apply implements Strategy.
func (a *ParamAttack) Apply(fw *firmware.Firmware, now float64) {
	if !a.begun || now-a.lastApply < a.Interval {
		return
	}
	a.value += a.Delta
	fw.Enqueue(&mavlink.ParamSet{Name: a.Param, Value: a.value})
	a.lastApply = now
}

// PolicyAttack drives a manipulation from a learned policy: at each action
// interval it asks the policy for the manipulation amount given the current
// observation. This is how a trained RL agent's exploit is replayed inside
// a full attack session.
type PolicyAttack struct {
	// Region and Variable locate the manipulated cell.
	Region, Variable string
	// Interval is the action period (0.3 s in the paper).
	Interval float64
	// Observe extracts the policy's observation from the firmware.
	Observe func(fw *firmware.Firmware) []float64
	// Act returns the manipulation amount for an observation.
	Act func(obs []float64) float64

	ref       vars.Ref
	lastApply float64
	begun     bool
}

// Name implements Strategy.
func (a *PolicyAttack) Name() string { return "rl-policy" }

// Begin implements Strategy.
func (a *PolicyAttack) Begin(fw *firmware.Firmware) error {
	ref, err := fw.Memory().Access(a.Region, a.Variable, true)
	if err != nil {
		return fmt.Errorf("attack: policy begin: %w", err)
	}
	a.ref = ref
	a.lastApply = -1e9
	a.begun = true
	return nil
}

// Apply implements Strategy.
func (a *PolicyAttack) Apply(fw *firmware.Firmware, now float64) {
	if !a.begun || now-a.lastApply < a.Interval {
		return
	}
	a.ref.Add(a.Act(a.Observe(fw)))
	a.lastApply = now
}

// RampAttack writes a slowly growing offset into a per-cycle-rewritten cell
// (such as the CMD.* navigator→stabilizer handoff) at every tick: the
// paper's headline manipulation that "increases the roll angles for 2.5
// degrees every second ... until it reaches 45 degrees". Because the target
// cell is recomputed each cycle, the injected value acts as a standing
// offset equal to Rate·t, saturating at Cap.
type RampAttack struct {
	// Region and Variable locate the handoff cell.
	Region, Variable string
	// Rate is the offset growth in units/s (the paper: 2.5°/s ≈ 0.0436
	// rad/s on the roll command).
	Rate float64
	// Cap bounds the offset magnitude (the paper: 45° ≈ 0.785 rad).
	Cap float64

	ref   vars.Ref
	begun bool
}

// Name implements Strategy.
func (a *RampAttack) Name() string { return "ares-ramp" }

// Begin implements Strategy.
func (a *RampAttack) Begin(fw *firmware.Firmware) error {
	ref, err := fw.Memory().Access(a.Region, a.Variable, true)
	if err != nil {
		return fmt.Errorf("attack: ramp begin: %w", err)
	}
	a.ref = ref
	a.begun = true
	return nil
}

// Offset returns the standing offset at attack time now.
func (a *RampAttack) Offset(now float64) float64 {
	off := a.Rate * now
	if a.Cap > 0 {
		off = mathx.Clamp(off, -a.Cap, a.Cap)
	}
	return off
}

// Apply implements Strategy.
func (a *RampAttack) Apply(_ *firmware.Firmware, now float64) {
	if !a.begun || now < 0 {
		return
	}
	a.ref.Add(a.Offset(now))
}

// JitterAttack writes a randomly resampled standing offset into a
// per-cycle-rewritten cell: the "random" manipulation alternative the
// paper's data-manipulation discussion considers (and rejects in favor of
// bounded gradual changes — zero-mean random offsets are largely averaged
// out by the vehicle's tracking dynamics, so they buy far less physical
// effect per unit of manipulation).
type JitterAttack struct {
	// Region and Variable locate the handoff cell.
	Region, Variable string
	// Amplitude bounds the uniform random offset.
	Amplitude float64
	// Interval is how often the offset is resampled (seconds).
	Interval float64
	// Seed makes the jitter reproducible.
	Seed int64

	ref      vars.Ref
	rng      *rand.Rand
	offset   float64
	lastDraw float64
	begun    bool
}

// Name implements Strategy.
func (a *JitterAttack) Name() string { return "random-jitter" }

// Begin implements Strategy.
func (a *JitterAttack) Begin(fw *firmware.Firmware) error {
	ref, err := fw.Memory().Access(a.Region, a.Variable, true)
	if err != nil {
		return fmt.Errorf("attack: jitter begin: %w", err)
	}
	a.ref = ref
	a.rng = rand.New(rand.NewSource(a.Seed))
	a.lastDraw = -1e9
	a.begun = true
	return nil
}

// Apply implements Strategy.
func (a *JitterAttack) Apply(_ *firmware.Firmware, now float64) {
	if !a.begun || now < 0 {
		return
	}
	if now-a.lastDraw >= a.Interval {
		a.offset = (a.rng.Float64()*2 - 1) * a.Amplitude
		a.lastDraw = now
	}
	a.ref.Add(a.offset)
}

// SetParamOnce issues a single PARAM_SET over the GCS channel when the
// attack begins — the first stage of a two-stage exploit (e.g. raising
// ATC_RAT_RLL_IMAX through its oversized documented range before pumping
// the integrator).
type SetParamOnce struct {
	Param string
	Value float64

	sent bool
}

// Name implements Strategy.
func (a *SetParamOnce) Name() string { return "param-once" }

// Begin implements Strategy.
func (a *SetParamOnce) Begin(fw *firmware.Firmware) error {
	if _, err := fw.Params().Get(a.Param); err != nil {
		return fmt.Errorf("attack: set-param begin: %w", err)
	}
	a.sent = false
	return nil
}

// Apply implements Strategy.
func (a *SetParamOnce) Apply(fw *firmware.Firmware, _ float64) {
	if a.sent {
		return
	}
	fw.Enqueue(&mavlink.ParamSet{Name: a.Param, Value: a.Value})
	a.sent = true
}

// Sequence composes strategies that run concurrently once the attack
// starts (e.g. a parameter change plus a memory manipulation).
type Sequence struct {
	Steps []Strategy
}

// Name implements Strategy.
func (s *Sequence) Name() string {
	names := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		names[i] = st.Name()
	}
	return "seq(" + joinStrings(names, "+") + ")"
}

// Begin implements Strategy.
func (s *Sequence) Begin(fw *firmware.Firmware) error {
	for _, st := range s.Steps {
		if err := st.Begin(fw); err != nil {
			return err
		}
	}
	return nil
}

// Apply implements Strategy.
func (s *Sequence) Apply(fw *firmware.Firmware, now float64) {
	for _, st := range s.Steps {
		st.Apply(fw, now)
	}
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
