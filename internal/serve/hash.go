package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"github.com/ares-cps/ares/internal/campaign"
)

// SpecHash returns the canonical identity of a campaign spec: the SHA-256
// of the JSON encoding of the normalized spec with the display-only Name
// cleared. Two submissions that expand to the same job list (defaults
// spelled out or omitted, any field order or whitespace in the request
// body) hash equal, which is what singleflight dedup and the result cache
// key on. The hex form doubles as the job and result ID.
func SpecHash(spec campaign.Spec) string {
	n := spec.Normalized()
	n.Name = ""
	// encoding/json renders struct fields in declaration order with no
	// optional whitespace, so the encoding is canonical for a fixed Spec
	// type. Marshal of Spec cannot fail (no funcs, channels or cycles).
	b, err := json.Marshal(n)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal normalized spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// MaxSpecBytes bounds a POST /v1/jobs body; a spec enumerating thousands
// of axis values fits comfortably in 1 MiB. internal/dist applies the
// same cap when a worker fetches its campaign's spec back from the
// coordinator.
const MaxSpecBytes = 1 << 20

// DecodeSpec strictly parses one JSON spec from r: unknown fields and
// trailing non-whitespace are errors, so a typoed axis name cannot
// silently submit the default campaign. Distributed workers re-decode
// the coordinator's spec through this same gate, so both ends of the
// fleet agree on what a valid spec is.
func DecodeSpec(r io.Reader) (campaign.Spec, error) {
	var spec campaign.Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return campaign.Spec{}, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return campaign.Spec{}, fmt.Errorf("trailing data after spec")
	}
	if err := spec.Validate(); err != nil {
		return campaign.Spec{}, err
	}
	return spec, nil
}

// decodeSpecBytes is DecodeSpec over a byte slice.
func decodeSpecBytes(b []byte) (campaign.Spec, error) {
	return DecodeSpec(bytes.NewReader(b))
}
