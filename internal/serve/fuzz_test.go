package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
)

// FuzzJobSpec drives arbitrary bytes through the POST /v1/jobs decode +
// canonical-hash path. Invariants: the handler answers a sane status and
// never panics; a body that decodes must hash stably (decode → normalize
// → re-marshal → decode hashes equal), and resubmitting the same body
// must land on the same job ID.
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 7, "trials": 3}`))
	f.Add([]byte(`{"name":"x","missions":[{"kind":"line","size":60,"alt":10}],"variables":["PIDR.INTEG","CMD.Roll"],"goals":["deviation","crash"],"defenses":["none","ci"],"trials":2}`))
	f.Add([]byte(`{"missions":[{"kind":"triangle","size":1,"alt":1}]}`))
	f.Add([]byte(`{"trials": "eight"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"seed":1} {"seed":2}`))
	f.Add([]byte(`{"seed":-9223372036854775808,"max_action":1e308,"success_deviation":-0}`))

	// Workers never start, so accepted specs queue up but nothing flies;
	// a small queue keeps the jobs map bounded across iterations.
	s, err := New(Config{
		StoreDir:   f.TempDir(),
		QueueDepth: 2,
		CacheSize:  4,
		Metrics:    metrics.NewRegistry(),
		Executor: func(context.Context, campaign.Job) (campaign.Metrics, error) {
			return campaign.Metrics{}, nil
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body))))
		code := rec.Code
		switch code {
		case http.StatusOK, http.StatusAccepted, http.StatusBadRequest,
			http.StatusTooManyRequests, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("unexpected status %d for body %q", code, body)
		}

		spec, err := decodeSpecBytes(body)
		if err != nil {
			if code != http.StatusBadRequest && code != http.StatusRequestEntityTooLarge {
				t.Fatalf("undecodable body answered %d, want 400: %q", code, body)
			}
			return
		}
		// Decodable specs must hash canonically and stably.
		h1 := SpecHash(spec)
		norm, err := json.Marshal(spec.Normalized())
		if err != nil {
			t.Fatalf("marshal normalized: %v", err)
		}
		spec2, err := decodeSpecBytes(norm)
		if err != nil {
			t.Fatalf("normalized form does not re-decode: %v (%s)", err, norm)
		}
		if h2 := SpecHash(spec2); h2 != h1 {
			t.Fatalf("hash not canonical: %s vs %s for %q", h1, h2, body)
		}

		// Same body again → same job ID (dedup/cache, or an equal 4xx).
		if code == http.StatusOK || code == http.StatusAccepted {
			var st1 JobStatus
			if err := json.Unmarshal(rec.Body.Bytes(), &st1); err != nil {
				t.Fatalf("submit response not a JobStatus: %v", err)
			}
			if st1.ID != h1 {
				t.Fatalf("job id %q is not the spec hash %q", st1.ID, h1)
			}
			rec2 := httptest.NewRecorder()
			handler.ServeHTTP(rec2, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body))))
			if rec2.Code != http.StatusOK && rec2.Code != http.StatusAccepted {
				t.Fatalf("resubmit of accepted body answered %d", rec2.Code)
			}
			var st2 JobStatus
			if err := json.Unmarshal(rec2.Body.Bytes(), &st2); err != nil {
				t.Fatalf("resubmit response not a JobStatus: %v", err)
			}
			if st2.ID != st1.ID {
				t.Fatalf("equal specs got different job ids: %q vs %q", st1.ID, st2.ID)
			}
		}
	})
}
