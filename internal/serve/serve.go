// Package serve is the networked assessment daemon: a long-running HTTP
// service that accepts campaign specs, queues them with backpressure,
// executes them on a bounded worker pool, deduplicates identical
// in-flight submissions (singleflight), caches finished results in an
// LRU, streams per-job progress over SSE and exposes Prometheus-style
// metrics.
//
// Identity is content-addressed: a job's ID is the canonical hash of its
// normalized spec (SpecHash), so N clients submitting the same sweep get
// one underlying campaign run and one shared result. Durability reuses
// the campaign subsystem: every job appends to its own JSONL
// campaign.Store under StoreDir, and the set of unfinished jobs is
// mirrored to an atomically-written queue manifest — a daemon restarted
// after a drain (or a crash) re-enqueues the manifest and each resumed
// campaign skips the cells its store already holds.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/par"
)

// Job states reported by GET /v1/jobs/{id}.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Config parameterizes a Server.
type Config struct {
	// StoreDir holds one campaign artifact file per job plus the queue
	// manifest. Required.
	StoreDir string
	// QueueDepth bounds the submission queue; a full queue answers 429
	// with Retry-After. Default 64.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Default 2.
	Workers int
	// Parallelism is the machine-wide simulation/analysis budget shared by
	// all running jobs (par.Budget); 0 = GOMAXPROCS.
	Parallelism int
	// CacheSize bounds the LRU result cache (entries). Default 128.
	CacheSize int
	// Executor runs one campaign cell; nil uses the built-in ARES
	// executor, shared across jobs so per-mission monitor calibration is
	// done once per daemon, not once per job.
	Executor campaign.Executor
	// Metrics receives the daemon's instruments; nil uses
	// metrics.Default() (which also carries the campaign counters).
	Metrics *metrics.Registry
	// Log receives daemon log lines; nil discards.
	Log io.Writer
}

func (c *Config) applyDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Executor == nil {
		c.Executor = campaign.NewExecutor()
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default()
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
}

// JobStatus is the wire form of one job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// ResultID is set once the job is done; it equals ID (results are
	// content-addressed by the same spec hash).
	ResultID string `json:"result_id,omitempty"`
	Error    string `json:"error,omitempty"`
	// Events is the number of progress events recorded so far.
	Events int `json:"events"`
}

// Result is the aggregated report of one finished job.
type Result struct {
	ID      string            `json:"id"`
	Summary *campaign.Summary `json:"summary"`
}

// job is the server-side state of one submitted spec.
type job struct {
	id     string
	spec   campaign.Spec
	state  string
	errMsg string
	events *eventLog
	done   chan struct{} // closed on terminal state; replaced on retry
}

type serverMetrics struct {
	accepted, deduped, completed, failed, rejected *metrics.Counter
	cacheHits, cacheMisses                         *metrics.Counter
	queueDepth, inflight                           *metrics.Gauge
	jobSeconds                                     *metrics.Histogram
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		accepted:    r.Counter("ares_serve_jobs_accepted_total", "jobs accepted into the queue"),
		deduped:     r.Counter("ares_serve_jobs_deduped_total", "submissions collapsed onto an identical in-flight job"),
		completed:   r.Counter("ares_serve_jobs_completed_total", "jobs finished successfully"),
		failed:      r.Counter("ares_serve_jobs_failed_total", "jobs finished with an error"),
		rejected:    r.Counter("ares_serve_jobs_rejected_total", "submissions rejected because the queue was full"),
		cacheHits:   r.Counter("ares_serve_cache_hits_total", "requests served from the result cache"),
		cacheMisses: r.Counter("ares_serve_cache_misses_total", "requests that missed the result cache"),
		queueDepth:  r.Gauge("ares_serve_queue_depth", "jobs waiting in the queue"),
		inflight:    r.Gauge("ares_serve_inflight_workers", "workers currently executing a job"),
		jobSeconds:  r.Histogram("ares_serve_job_seconds", "job wall time in seconds", nil),
	}
}

// Server is the assessment daemon. Construct with New, mount Handler in
// an http.Server, call Start, and Shutdown on the way out.
type Server struct {
	cfg    Config
	mx     serverMetrics
	cpvMx  cpvMetrics
	budget *par.Budget
	cache  *lru

	runCtx    context.Context
	runCancel context.CancelFunc

	mu       sync.Mutex // guards jobs, draining, manifest writes
	jobs     map[string]*job
	queue    chan *job
	draining bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Server, creating StoreDir if needed and re-enqueueing any
// unfinished jobs found in its queue manifest (a previous daemon life's
// drain or crash leftovers).
func New(cfg Config) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, errors.New("serve: Config.StoreDir is required")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		return nil, err
	}
	pending, err := LoadManifest(ManifestPath(cfg.StoreDir))
	if err != nil {
		return nil, err
	}
	runCtx, runCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		mx:        newServerMetrics(cfg.Metrics),
		cpvMx:     newCPVMetrics(cfg.Metrics),
		budget:    par.NewBudget(cfg.Parallelism),
		cache:     newLRU(cfg.CacheSize),
		runCtx:    runCtx,
		runCancel: runCancel,
		jobs:      make(map[string]*job),
		// The channel must hold every manifest job plus a full queue's
		// worth of new submissions.
		queue: make(chan *job, cfg.QueueDepth+len(pending)),
		stop:  make(chan struct{}),
	}
	for _, mj := range pending {
		j := &job{id: mj.ID, spec: mj.Spec, state: StateQueued,
			events: newEventLog(), done: make(chan struct{})}
		j.events.Append("state: queued (resumed from manifest)")
		s.jobs[j.id] = j
		s.queue <- j
	}
	s.mx.queueDepth.Set(int64(len(s.queue)))
	if len(pending) > 0 {
		fmt.Fprintf(cfg.Log, "serve: resumed %d queued job(s) from manifest\n", len(pending))
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the daemon: new submissions are refused, workers finish
// their in-flight job and exit, and the set of still-unfinished jobs is
// persisted to the queue manifest for the next daemon life. If ctx
// expires before the drain completes, in-flight campaigns are cancelled —
// their finished cells are already in their stores, so a restart resumes
// mid-campaign.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel()
		<-done
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistManifestLocked()
}

// worker executes queued jobs until the daemon drains. The stop channel
// wins over a non-empty queue, so queued-but-unstarted jobs survive into
// the manifest instead of racing the drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob drives one job through running → done/failed (or back to queued
// on a hard-shutdown cancellation).
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = StateRunning
	s.mx.queueDepth.Set(int64(len(s.queue)))
	s.mu.Unlock()
	s.mx.inflight.Inc()
	j.events.Append("state: running")
	fmt.Fprintf(s.cfg.Log, "serve: job %s running\n", j.id)

	start := time.Now()
	res, err := s.execute(j)
	s.mx.jobSeconds.Observe(time.Since(start).Seconds())
	s.mx.inflight.Dec()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		// Hard shutdown mid-campaign: completed cells are in the job's
		// store; leave the job queued so the manifest carries it into the
		// next daemon life.
		j.state = StateQueued
		j.events.Append("state: interrupted — resumes on restart")
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.mx.failed.Inc()
		j.events.Close(StateFailed)
		close(j.done)
		fmt.Fprintf(s.cfg.Log, "serve: job %s failed: %v\n", j.id, err)
	default:
		s.cache.Add(j.id, res)
		j.state = StateDone
		s.mx.completed.Inc()
		j.events.Close(StateDone)
		close(j.done)
		fmt.Fprintf(s.cfg.Log, "serve: job %s done (%d records)\n", j.id, res.Summary.Records)
	}
	if err := s.persistManifestLocked(); err != nil {
		fmt.Fprintf(s.cfg.Log, "serve: persist manifest: %v\n", err)
	}
}

// execute runs the job's campaign against its own store file under the
// daemon's shared parallelism budget and aggregates the result.
func (s *Server) execute(j *job) (*Result, error) {
	share, release := s.budget.Acquire()
	defer release()
	store, err := campaign.OpenStore(s.storePath(j.id))
	if err != nil {
		return nil, err
	}
	defer store.Close()
	runner := &campaign.Runner{Workers: share, Execute: s.cfg.Executor, Log: j.events}
	stats, err := runner.Run(s.runCtx, j.spec, store)
	if err != nil {
		return nil, err
	}
	if n := stats.Errors + stats.Panics; n > 0 {
		return nil, fmt.Errorf("%d of %d campaign cells failed", n, stats.Total)
	}
	return &Result{ID: j.id, Summary: campaign.Aggregate(summaryName(j.spec), store.Records())}, nil
}

func summaryName(spec campaign.Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "aresd"
}

func (s *Server) storePath(id string) string {
	return filepath.Join(s.cfg.StoreDir, id+".jsonl")
}

// submit routes one decoded spec: cache hit, singleflight dedup, retry of
// a failed job, or a fresh enqueue. It returns the job status and the
// HTTP status code the handler should answer with.
func (s *Server) submit(spec campaign.Spec) (JobStatus, int) {
	id := SpecHash(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, http.StatusServiceUnavailable
	}
	if j, ok := s.jobs[id]; ok {
		switch j.state {
		case StateDone:
			s.mx.cacheHits.Inc()
			return s.statusLocked(j), http.StatusOK
		case StateFailed:
			// A resubmitted failed spec retries; its store keeps whatever
			// cells already succeeded.
			return s.enqueueLocked(j, true)
		default: // queued or running: singleflight
			s.mx.deduped.Inc()
			return s.statusLocked(j), http.StatusAccepted
		}
	}
	// A result from an earlier daemon life may already be complete on
	// disk even though this process never ran it.
	if _, ok := s.loadResultLocked(id, spec); ok {
		j := &job{id: id, spec: spec, state: StateDone, events: newEventLog(), done: make(chan struct{})}
		j.events.Close(StateDone)
		close(j.done)
		s.jobs[id] = j
		s.mx.cacheHits.Inc()
		return s.statusLocked(j), http.StatusOK
	}
	s.mx.cacheMisses.Inc()
	j := &job{id: id, spec: spec, state: StateQueued, events: newEventLog(), done: make(chan struct{})}
	st, code := s.enqueueLocked(j, false)
	if code == http.StatusAccepted {
		s.jobs[id] = j
	}
	return st, code
}

// enqueueLocked places a job on the queue, answering 429 when full.
func (s *Server) enqueueLocked(j *job, retry bool) (JobStatus, int) {
	select {
	case s.queue <- j:
	default:
		s.mx.rejected.Inc()
		return JobStatus{}, http.StatusTooManyRequests
	}
	j.state = StateQueued
	j.errMsg = ""
	if retry {
		j.done = make(chan struct{})
		j.events.Reopen()
		j.events.Append("state: queued (retry)")
	} else {
		j.events.Append("state: queued")
	}
	s.mx.accepted.Inc()
	s.mx.queueDepth.Set(int64(len(s.queue)))
	if err := s.persistManifestLocked(); err != nil {
		fmt.Fprintf(s.cfg.Log, "serve: persist manifest: %v\n", err)
	}
	return s.statusLocked(j), http.StatusAccepted
}

// loadResultLocked rebuilds a finished result from a complete on-disk
// store, populating the cache. It reports false when the store is absent,
// incomplete or holds failures.
func (s *Server) loadResultLocked(id string, spec campaign.Spec) (*Result, bool) {
	recs, err := campaign.ReadRecords(s.storePath(id))
	if err != nil || len(recs) == 0 {
		return nil, false
	}
	sum := campaign.Aggregate(summaryName(spec), recs)
	if sum.Failures > 0 || sum.Records != len(spec.Expand()) {
		return nil, false
	}
	res := &Result{ID: id, Summary: sum}
	s.cache.Add(id, res)
	return res, true
}

// status returns the wire status of one job, or false if unknown.
func (s *Server) status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{ID: j.id, State: j.state, Error: j.errMsg, Events: j.events.Len()}
	if j.state == StateDone {
		st.ResultID = j.id
	}
	return st
}

// result returns the aggregated report for a finished job: from the LRU
// when cached, otherwise recomputed from the job's on-disk store (the
// restart path and the LRU-eviction path). The int is an HTTP status:
// 200, 404 (unknown), or 409 (job exists but is not finished).
func (s *Server) result(id string) (*Result, int) {
	if res, ok := s.cache.Get(id); ok {
		s.mx.cacheHits.Inc()
		return res, http.StatusOK
	}
	s.mx.cacheMisses.Inc()
	s.mu.Lock()
	j, known := s.jobs[id]
	var spec campaign.Spec
	if known {
		spec = j.spec
		if j.state == StateQueued || j.state == StateRunning {
			s.mu.Unlock()
			return nil, http.StatusConflict
		}
	}
	s.mu.Unlock()

	recs, err := campaign.ReadRecords(s.storePath(id))
	if err != nil || len(recs) == 0 {
		return nil, http.StatusNotFound
	}
	res := &Result{ID: id, Summary: campaign.Aggregate(summaryName(spec), recs)}
	s.cache.Add(id, res)
	return res, http.StatusOK
}

// events returns the job's event log for SSE streaming.
func (s *Server) eventsOf(id string) (*eventLog, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.events, true
}

// ManifestJob is one entry of the persisted queue manifest: an unfinished
// job (or, for a dist coordinator, an unfinished campaign) and its spec.
// The type is shared with internal/dist, whose coordinator persists its
// unfinished campaigns in the same queue.json format — a serve-mode and a
// coordinator-mode store directory are mutually readable.
type ManifestJob struct {
	ID   string        `json:"id"`
	Spec campaign.Spec `json:"spec"`
}

// ManifestPath returns the queue-manifest path inside a store directory.
func ManifestPath(dir string) string { return filepath.Join(dir, "queue.json") }

// persistManifestLocked mirrors the set of unfinished jobs to disk with
// an atomic write, so any crash leaves either the previous manifest or
// the new one. Callers hold s.mu.
func (s *Server) persistManifestLocked() error {
	pending := make([]ManifestJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			pending = append(pending, ManifestJob{ID: j.id, Spec: j.spec})
		}
	}
	return WriteManifest(ManifestPath(s.cfg.StoreDir), pending)
}

// WriteManifest atomically persists a queue manifest, sorted by ID so the
// bytes are independent of map-iteration order.
func WriteManifest(path string, jobs []ManifestJob) error {
	sorted := make([]ManifestJob, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].ID < sorted[k].ID })
	data, err := json.MarshalIndent(struct {
		Jobs []ManifestJob `json:"jobs"`
	}{sorted}, "", "  ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(path, data, 0o644)
}

// LoadManifest reads a queue manifest; a missing file is an empty queue.
func LoadManifest(path string) ([]ManifestJob, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var man struct {
		Jobs []ManifestJob `json:"jobs"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("serve: manifest %s: %w", path, err)
	}
	return man.Jobs, nil
}
