package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
)

// tinySpec is a 1-mission × 1-variable × trials-cell campaign.
func tinySpec(name string, trials int) campaign.Spec {
	return campaign.Spec{
		Name:      name,
		Seed:      1,
		Missions:  []campaign.MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"PIDR.INTEG"},
		Goals:     []string{campaign.GoalDeviation},
		Defenses:  []string{campaign.DefenseNone},
		Trials:    trials,
		Episodes:  1,
		MaxSteps:  4,
	}
}

// gatedExecutor counts executions and, when gate is non-nil, blocks each
// cell until the gate closes (or the ctx dies).
func gatedExecutor(count *atomic.Int64, gate chan struct{}) campaign.Executor {
	return func(ctx context.Context, job campaign.Job) (campaign.Metrics, error) {
		if count != nil {
			count.Add(1)
		}
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return campaign.Metrics{}, ctx.Err()
			}
		}
		return campaign.Metrics{Deviation: float64(job.Trial), Success: true}, nil
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cfg.Metrics
}

func submitSpec(t *testing.T, url string, spec campaign.Spec) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return st, resp
}

func waitState(t *testing.T, url, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (want %q, err %q)", id, st.State, want, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestJobLifecycle walks submit → dedup → SSE progress → result through
// the HTTP surface.
func TestJobLifecycle(t *testing.T) {
	gate := make(chan struct{})
	var count atomic.Int64
	s, ts, _ := newTestServer(t, Config{
		Workers: 1, Executor: gatedExecutor(&count, gate),
	})
	s.Start()
	defer s.Shutdown(context.Background())

	spec := tinySpec("lifecycle", 2)
	st, resp := submitSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.ID != SpecHash(spec) {
		t.Errorf("job id = %q, want spec hash %q", st.ID, SpecHash(spec))
	}

	// An identical submission (different Name, defaults spelled out) must
	// collapse onto the same job.
	twin := spec.Normalized()
	twin.Name = "other-label"
	st2, resp2 := submitSpec(t, ts.URL, twin)
	if resp2.StatusCode != http.StatusAccepted || st2.ID != st.ID {
		t.Fatalf("twin submit = (%d, %q), want (202, %q)", resp2.StatusCode, st2.ID, st.ID)
	}

	// Subscribe to SSE before releasing the executor.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	close(gate)
	var progress []string
	var final string
	sc := bufio.NewScanner(evResp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				progress = append(progress, data)
			} else if event == "done" {
				final = data
			}
		}
		if final != "" {
			break
		}
	}
	if final != StateDone {
		t.Fatalf("SSE final state = %q, want done (progress: %v)", final, progress)
	}
	// 1 queued + 1 running + 2 campaign cell lines.
	cellLines := 0
	for _, p := range progress {
		if strings.Contains(p, "t00") {
			cellLines++
		}
	}
	if cellLines != 2 {
		t.Errorf("SSE cell progress lines = %d, want 2 (got %v)", cellLines, progress)
	}
	if got := count.Load(); got != 2 {
		t.Errorf("executor ran %d cells, want 2", got)
	}

	done := waitState(t, ts.URL, st.ID, StateDone)
	if done.ResultID != st.ID {
		t.Errorf("result id = %q, want %q", done.ResultID, st.ID)
	}
	resResp, err := http.Get(ts.URL + "/v1/results/" + done.ResultID)
	if err != nil {
		t.Fatal(err)
	}
	defer resResp.Body.Close()
	if resResp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", resResp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resResp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Summary == nil || res.Summary.Records != 2 || res.Summary.Failures != 0 {
		t.Fatalf("result summary = %+v, want 2 records, 0 failures", res.Summary)
	}
}

// TestSingleflight64 is the acceptance scenario: 64 concurrent identical
// submissions collapse onto one campaign execution, every caller gets the
// same result ID, and /metrics reports the 63 dedup hits.
func TestSingleflight64(t *testing.T) {
	gate := make(chan struct{})
	var count atomic.Int64
	s, ts, reg := newTestServer(t, Config{
		Workers: 2, Executor: gatedExecutor(&count, gate),
	})
	s.Start()
	defer s.Shutdown(context.Background())

	spec := tinySpec("flood", 1)
	const n = 64
	ids := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := submitSpec(t, ts.URL, spec)
			ids[i], codes[i] = st.ID, resp.StatusCode
		}(i)
	}
	wg.Wait()

	want := SpecHash(spec)
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, codes[i])
		}
		if ids[i] != want {
			t.Fatalf("submission %d: id %q, want %q", i, ids[i], want)
		}
	}
	if got := reg.Counter("ares_serve_jobs_accepted_total", "").Value(); got != 1 {
		t.Errorf("accepted = %d, want 1", got)
	}
	if got := reg.Counter("ares_serve_jobs_deduped_total", "").Value(); got != n-1 {
		t.Errorf("deduped = %d, want %d", got, n-1)
	}

	close(gate)
	waitState(t, ts.URL, want, StateDone)
	if got := count.Load(); got != 1 {
		t.Fatalf("campaign executions = %d, want exactly 1", got)
	}
	mb := metricsBody(t, ts.URL)
	if !strings.Contains(mb, fmt.Sprintf("ares_serve_jobs_deduped_total %d", n-1)) {
		t.Errorf("/metrics missing %d dedup hits:\n%s", n-1, mb)
	}
	if !strings.Contains(mb, "ares_serve_jobs_completed_total 1") {
		t.Errorf("/metrics missing completion:\n%s", mb)
	}
}

// TestShutdownDrainsPersistsResumes covers the graceful-drain acceptance
// path over a real store dir: a daemon with one mid-campaign job and one
// queued job shuts down, persists both, and a fresh daemon over the same
// dir executes only the remaining cells.
func TestShutdownDrainsPersistsResumes(t *testing.T) {
	dir := t.TempDir()
	specA := tinySpec("partial", 4)
	specB := tinySpec("queued", 1)
	specB.Seed = 99 // distinct hash

	// Life 1: cells t0/t1 of A complete, t2 blocks until shutdown; B
	// never leaves the queue (1 worker).
	reached := make(chan struct{})
	var once sync.Once
	exec1 := func(ctx context.Context, job campaign.Job) (campaign.Metrics, error) {
		if job.Trial < 2 {
			return campaign.Metrics{Deviation: 1, Success: true}, nil
		}
		once.Do(func() { close(reached) })
		<-ctx.Done()
		return campaign.Metrics{}, ctx.Err()
	}
	s1, ts1, _ := newTestServer(t, Config{
		StoreDir: dir, Workers: 1, Parallelism: 1, Executor: exec1,
	})
	s1.Start()
	stA, _ := submitSpec(t, ts1.URL, specA)
	stB, _ := submitSpec(t, ts1.URL, specB)
	<-reached

	// Requesting the result of an unfinished job is a 409.
	resp, err := http.Get(ts1.URL + "/v1/results/" + stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unfinished result status = %d, want 409", resp.StatusCode)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s1.Shutdown(drainCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Submissions during/after drain are refused.
	_, resp2 := submitSpec(t, ts1.URL, tinySpec("late", 1))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit status = %d, want 503", resp2.StatusCode)
	}

	man, err := LoadManifest(ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(man) != 2 {
		t.Fatalf("manifest jobs = %d, want 2 (A interrupted + B queued)", len(man))
	}
	recs, err := campaign.ReadRecords(filepath.Join(dir, stA.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	okCells := 0
	for _, r := range recs {
		if r.Status == campaign.StatusOK {
			okCells++
		}
	}
	if okCells != 2 {
		t.Fatalf("life-1 ok cells = %d, want 2", okCells)
	}

	// Life 2: a normal executor completes only the remainder.
	var count2 atomic.Int64
	s2, ts2, _ := newTestServer(t, Config{
		StoreDir: dir, Workers: 1, Parallelism: 1, Executor: gatedExecutor(&count2, nil),
	})
	s2.Start()
	defer s2.Shutdown(context.Background())

	waitState(t, ts2.URL, stA.ID, StateDone)
	waitState(t, ts2.URL, stB.ID, StateDone)
	// A re-runs t2 (recorded as error on cancel) and t3 (never started);
	// t0/t1 resume from the store. B runs its single cell.
	if got := count2.Load(); got != 3 {
		t.Errorf("life-2 executions = %d, want 3 (only the remainder)", got)
	}
	var res Result
	if res, err = getResult(ts2.URL, stA.ID); err != nil {
		t.Fatal(err)
	}
	if res.Summary.Records != 4 || res.Summary.Failures != 0 {
		t.Fatalf("resumed summary = %d records / %d failures, want 4 / 0", res.Summary.Records, res.Summary.Failures)
	}
}

func getResult(url, id string) (Result, error) {
	var res Result
	resp, err := http.Get(url + "/v1/results/" + id)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("result status %d", resp.StatusCode)
	}
	return res, json.NewDecoder(resp.Body).Decode(&res)
}

// TestBackpressure: a full queue answers 429 with Retry-After; workers
// are deliberately not started so the queue cannot move.
func TestBackpressure(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{
		QueueDepth: 1, Executor: gatedExecutor(nil, nil),
	})
	if _, resp := submitSpec(t, ts.URL, tinySpec("first", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	spec2 := tinySpec("second", 1)
	spec2.Seed = 7
	_, resp := submitSpec(t, ts.URL, spec2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	if got := reg.Counter("ares_serve_jobs_rejected_total", "").Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestBadRequests: malformed bodies are 400, never a panic.
func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Executor: gatedExecutor(nil, nil)})
	for _, body := range []string{
		"",
		"not json",
		`{"trials": "eight"}`,
		`{"bogus_field": 1}`,
		`{"missions":[{"kind":"triangle","size":10,"alt":10}]}`,
		`{"goals":["teleport"]}`,
		`{"seed":1} trailing`,
		`{"missions":[{"kind":"line","size":-4,"alt":10}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Unknown job and result IDs are 404.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events", "/v1/results/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRetryFailedJob: a failed spec resubmits as a retry and its store
// keeps previously succeeded cells.
func TestRetryFailedJob(t *testing.T) {
	var calls atomic.Int64
	flaky := func(ctx context.Context, job campaign.Job) (campaign.Metrics, error) {
		if calls.Add(1) == 1 {
			return campaign.Metrics{}, fmt.Errorf("transient fault")
		}
		return campaign.Metrics{Deviation: 2, Success: true}, nil
	}
	s, ts, reg := newTestServer(t, Config{Workers: 1, Executor: flaky})
	s.Start()
	defer s.Shutdown(context.Background())

	spec := tinySpec("flaky", 1)
	st, _ := submitSpec(t, ts.URL, spec)
	failed := waitState(t, ts.URL, st.ID, StateFailed)
	if failed.Error == "" {
		t.Error("failed job carries no error")
	}
	if got := reg.Counter("ares_serve_jobs_failed_total", "").Value(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	st2, resp := submitSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted || st2.ID != st.ID {
		t.Fatalf("retry submit = (%d, %q), want (202, %q)", resp.StatusCode, st2.ID, st.ID)
	}
	waitState(t, ts.URL, st.ID, StateDone)
	// Done jobs answer resubmission from the cache with 200.
	_, resp3 := submitSpec(t, ts.URL, spec)
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("cached resubmit = %d, want 200", resp3.StatusCode)
	}
	if got := reg.Counter("ares_serve_cache_hits_total", "").Value(); got == 0 {
		t.Error("cache hit not counted")
	}
}

// TestSpecHashCanonical pins the identity rules: defaults spelled out or
// omitted hash equal, Name is excluded, axes are significant.
func TestSpecHashCanonical(t *testing.T) {
	minimal := campaign.Spec{Seed: 1}
	spelled := campaign.Spec{
		Seed:             1,
		Missions:         []campaign.MissionSpec{{Kind: "line", Size: 60, Alt: 10}},
		Variables:        []string{"PIDR.INTEG"},
		Goals:            []string{campaign.GoalDeviation},
		Defenses:         []string{campaign.DefenseNone},
		Trials:           1,
		SuccessDeviation: 5,
	}
	if SpecHash(minimal) != SpecHash(spelled) {
		t.Error("defaults spelled out changed the hash")
	}
	named := spelled
	named.Name = "some label"
	if SpecHash(named) != SpecHash(spelled) {
		t.Error("Name participates in the hash")
	}
	other := spelled
	other.Seed = 2
	if SpecHash(other) == SpecHash(spelled) {
		t.Error("seed does not participate in the hash")
	}
	moreTrials := spelled
	moreTrials.Trials = 2
	if SpecHash(moreTrials) == SpecHash(spelled) {
		t.Error("trials do not participate in the hash")
	}
}

// TestManifestSurvivesMissingDir ensures New creates StoreDir and an
// empty manifest round-trips.
func TestManifestSurvivesMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s, err := New(Config{StoreDir: dir, Metrics: metrics.NewRegistry(), Executor: gatedExecutor(nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ManifestPath(dir)); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	man, err := LoadManifest(ManifestPath(dir))
	if err != nil || len(man) != 0 {
		t.Fatalf("manifest = (%v, %v), want empty", man, err)
	}
}
