package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs             submit a campaign.Spec (JSON); 202 accepted,
//	                          202 deduped onto an in-flight twin, 200 when
//	                          already done, 429 + Retry-After when the
//	                          queue is full, 503 while draining
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/events per-job progress as Server-Sent Events
//	GET  /v1/results/{id}     aggregated report of a finished job
//	GET  /v1/cpvs             built-in CPV catalog (JSON)
//	GET  /v1/cpvs/{id}        one catalog record
//	POST /v1/cpvs/{id}/assess compile the record and submit it through the
//	                          content-addressed queue (same codes as
//	                          POST /v1/jobs); optional JSON body overrides
//	                          seed/trials/episodes/max_steps/learner
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness + queue depth
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/cpvs", s.handleCPVList)
	mux.HandleFunc("GET /v1/cpvs/{id}", s.handleCPVGet)
	mux.HandleFunc("POST /v1/cpvs/{id}/assess", s.handleCPVAssess)
	mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	st, code := s.submit(spec)
	switch code {
	case http.StatusTooManyRequests:
		// Retry after roughly one queued job's head start; clients in CI
		// poll, humans re-run.
		w.Header().Set("Retry-After", "1")
		writeErr(w, code, "queue full (%d deep)", s.cfg.QueueDepth)
	case http.StatusServiceUnavailable:
		writeErr(w, code, "draining: not accepting new jobs")
	default:
		writeJSON(w, code, st)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, code := s.result(id)
	switch code {
	case http.StatusOK:
		writeJSON(w, code, res)
	case http.StatusConflict:
		writeErr(w, code, "job %s has not finished", id)
	default:
		writeErr(w, code, "unknown result")
	}
}

// handleEvents streams the job's progress as SSE: one `progress` event
// per recorded line (history replayed first), then a terminal `done`
// event carrying the final state. The stream also ends when the client
// disconnects or the daemon drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, ok := s.eventsOf(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for i := 0; ; i++ {
		line, ok, final, done := log.next(r.Context(), i)
		if ok {
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", line)
			fl.Flush()
			continue
		}
		if done && final != "" {
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", final)
			fl.Flush()
		}
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	jobs := len(s.jobs)
	depth := len(s.queue)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          !draining,
		"draining":    draining,
		"jobs":        jobs,
		"queue_depth": depth,
	})
}
