package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/ares-cps/ares/internal/cpv"
	"github.com/ares-cps/ares/internal/metrics"
)

// cpvMetrics instruments the catalog surface of the daemon.
type cpvMetrics struct {
	assess         *metrics.Counter
	compileErrors  *metrics.Counter
	catalogRecords *metrics.Gauge
}

func newCPVMetrics(r *metrics.Registry) cpvMetrics {
	m := cpvMetrics{
		assess:         r.Counter("ares_cpv_assess_total", "catalog assessments submitted via POST /v1/cpvs/{id}/assess"),
		compileErrors:  r.Counter("ares_cpv_compile_errors_total", "catalog assessments rejected because compilation failed"),
		catalogRecords: r.Gauge("ares_cpv_catalog_records", "built-in CPV catalog records served at GET /v1/cpvs"),
	}
	m.catalogRecords.Set(int64(len(cpv.Catalog())))
	return m
}

// assessRequest is the optional POST /v1/cpvs/{id}/assess body: the shared
// budgets a catalog record does not carry. Zero values inherit the
// compiler/campaign defaults.
type assessRequest struct {
	Seed     int64  `json:"seed,omitempty"`
	Trials   int    `json:"trials,omitempty"`
	Episodes int    `json:"episodes,omitempty"`
	MaxSteps int    `json:"max_steps,omitempty"`
	Learner  string `json:"learner,omitempty"`
}

// decodeAssess strictly parses the optional assess body; an empty body is
// the zero request.
func decodeAssess(r io.Reader) (assessRequest, error) {
	var req assessRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err == io.EOF {
		return assessRequest{}, nil
	} else if err != nil {
		return assessRequest{}, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return assessRequest{}, fmt.Errorf("trailing data after request")
	}
	return req, nil
}

// handleCPVList serves the built-in catalog (GET /v1/cpvs).
func (s *Server) handleCPVList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"cpvs": cpv.Catalog()})
}

// handleCPVGet serves one catalog record (GET /v1/cpvs/{id}).
func (s *Server) handleCPVGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := cpv.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown cpv record")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleCPVAssess compiles one catalog record into a campaign spec and
// submits it through the normal content-addressed queue (POST
// /v1/cpvs/{id}/assess): dedup, caching, SSE and resume all apply exactly
// as for a hand-written POST /v1/jobs spec, because the compiled spec IS a
// normal spec — the CPV ID rides along in the sweep block and the job
// keys, so the result's records stay traceable to the catalog entry.
func (s *Server) handleCPVAssess(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := cpv.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "unknown cpv record")
		return
	}
	req, err := decodeAssess(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid assess request: %v", err)
		return
	}
	spec, err := cpv.CompileIDs(cpv.Options{
		Name:     "cpv:" + id,
		Seed:     req.Seed,
		Trials:   req.Trials,
		Episodes: req.Episodes,
		MaxSteps: req.MaxSteps,
		Learner:  req.Learner,
	}, id)
	if err != nil {
		s.cpvMx.compileErrors.Inc()
		writeErr(w, http.StatusBadRequest, "compile %s: %v", id, err)
		return
	}
	s.cpvMx.assess.Inc()
	st, code := s.submit(spec)
	switch code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
		writeErr(w, code, "queue full (%d deep)", s.cfg.QueueDepth)
	case http.StatusServiceUnavailable:
		writeErr(w, code, "draining: not accepting new jobs")
	default:
		writeJSON(w, code, st)
	}
}
