package serve

import (
	"context"
	"strings"
	"sync"
)

// eventLog is one job's append-only progress history with broadcast: the
// campaign runner writes a line per finished cell, SSE subscribers replay
// the history and then block for new lines. A subscriber that connects
// after the job finished still sees the full history plus the final
// event, so `submit; sleep; watch events` races are benign.
type eventLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lines   []string
	partial strings.Builder // bytes written since the last newline
	closed  bool
	final   string // terminal state announced by Close
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write implements io.Writer for campaign.Runner.Log: complete lines
// become events; a partial trailing write is buffered until its newline
// arrives.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range p {
		if b == '\n' {
			l.lines = append(l.lines, l.partial.String())
			l.partial.Reset()
			continue
		}
		l.partial.WriteByte(b)
	}
	l.cond.Broadcast()
	return len(p), nil
}

// Append adds one event line.
func (l *eventLog) Append(line string) {
	l.mu.Lock()
	l.lines = append(l.lines, line)
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Close marks the log terminal with a final state; idempotent. A closed
// log reopened by a retry (resubmitted failed job) starts appending again
// via Reopen.
func (l *eventLog) Close(final string) {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.final = final
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Reopen clears the terminal mark so a retried job streams again.
func (l *eventLog) Reopen() {
	l.mu.Lock()
	l.closed = false
	l.final = ""
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Len returns the number of event lines so far.
func (l *eventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// next blocks until line i exists or the log is closed (whichever first),
// or ctx is done. It returns the line (ok=true) if available, and whether
// the log is closed with no line at i (the subscriber should emit the
// final event and stop).
func (l *eventLog) next(ctx context.Context, i int) (line string, ok bool, final string, done bool) {
	// A ctx watcher nudges the cond so a subscriber blocked in Wait
	// observes cancellation; stop() tears the watcher down on return.
	watchCtx, stop := context.WithCancel(ctx)
	defer stop()
	go func() {
		<-watchCtx.Done()
		// Taking the mutex orders this broadcast after the subscriber's
		// ctx check: either the subscriber is already parked in Wait (the
		// broadcast wakes it) or it will re-check ctx before parking.
		l.mu.Lock()
		l.mu.Unlock()
		l.cond.Broadcast()
	}()

	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if i < len(l.lines) {
			return l.lines[i], true, "", false
		}
		if l.closed {
			return "", false, l.final, true
		}
		if ctx.Err() != nil {
			return "", false, "", true
		}
		l.cond.Wait()
	}
}
