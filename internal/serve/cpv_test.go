package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/cpv"
)

func TestCPVCatalogEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/cpvs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		CPVs []cpv.Record `json:"cpvs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.CPVs) != len(cpv.Catalog()) {
		t.Fatalf("GET /v1/cpvs returned %d records, want %d", len(list.CPVs), len(cpv.Catalog()))
	}

	resp, err = http.Get(ts.URL + "/v1/cpvs/ARES-CPV-001")
	if err != nil {
		t.Fatal(err)
	}
	var rec cpv.Record
	err = json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if err != nil || rec.ID != "ARES-CPV-001" {
		t.Fatalf("GET one record: id %q err %v", rec.ID, err)
	}

	resp, err = http.Get(ts.URL + "/v1/cpvs/ARES-CPV-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown record: %d, want 404", resp.StatusCode)
	}
}

func TestCPVAssess(t *testing.T) {
	var count atomic.Int64
	s, ts, reg := newTestServer(t, Config{Executor: gatedExecutor(&count, nil)})
	s.Start()
	defer s.Shutdown(t.Context())

	post := func(id, body string) (*http.Response, JobStatus) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/cpvs/"+id+"/assess",
			"application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		return resp, st
	}

	resp, st := post("ARES-CPV-001", `{"episodes":1,"max_steps":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("assess: %d, want 202", resp.StatusCode)
	}
	waitState(t, ts.URL, st.ID, StateDone)

	// The compiled spec IS a normal spec: its ID must equal the hash of
	// the equivalent hand-compiled submission, so catalog and raw clients
	// dedupe onto each other.
	spec, err := cpv.CompileIDs(cpv.Options{Name: "cpv:ARES-CPV-001", Episodes: 1, MaxSteps: 4}, "ARES-CPV-001")
	if err != nil {
		t.Fatal(err)
	}
	if want := SpecHash(spec); st.ID != want {
		t.Errorf("assess job id %s, want spec hash %s", st.ID, want)
	}

	// Result records echo the originating CPV ID.
	recs, err := campaign.ReadRecords(s.storePath(st.ID))
	if err != nil || len(recs) == 0 {
		t.Fatalf("read store: %v (%d records)", err, len(recs))
	}
	for _, r := range recs {
		if r.CPV != "ARES-CPV-001" {
			t.Errorf("record %s: cpv %q", r.Key, r.CPV)
		}
		if !strings.HasPrefix(r.Key, "ARES-CPV-001/") {
			t.Errorf("record key %q lacks cpv prefix", r.Key)
		}
	}

	// Resubmission of a finished assessment is a cache hit.
	resp, _ = post("ARES-CPV-001", `{"episodes":1,"max_steps":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("resubmit: %d, want 200", resp.StatusCode)
	}

	if resp, _ := post("ARES-CPV-999", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", resp.StatusCode)
	}
	if resp, _ := post("ARES-CPV-001", `{"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown body field: %d, want 400", resp.StatusCode)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{"ares_cpv_assess_total 2", "ares_cpv_catalog_records"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
