package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
)

// BenchmarkSubmitCacheHit measures the daemon's hot serving path: a POST
// /v1/jobs whose spec hash is already done, answered from the LRU result
// cache without touching the queue or the simulator. This is the
// steady-state cost of N clients re-requesting a shared sweep.
func BenchmarkSubmitCacheHit(b *testing.B) {
	s, err := New(Config{
		StoreDir: b.TempDir(),
		Workers:  1,
		Metrics:  metrics.NewRegistry(),
		Executor: func(context.Context, campaign.Job) (campaign.Metrics, error) {
			return campaign.Metrics{Deviation: 1, Success: true}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	spec := campaign.Spec{
		Seed:      1,
		Missions:  []campaign.MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"PIDR.INTEG"},
		Trials:    2,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	handler := s.Handler()
	submit := func() int {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body))))
		return rec.Code
	}
	// Prime: run the job to completion so every timed iteration hits the
	// cache.
	if code := submit(); code != http.StatusAccepted {
		b.Fatalf("prime submit = %d", code)
	}
	for {
		if st, _ := s.status(SpecHash(spec)); st.State == StateDone {
			break
		}
		time.Sleep(time.Millisecond)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := submit(); code != http.StatusOK {
			b.Fatalf("iteration %d: status %d, want 200 cache hit", i, code)
		}
	}
}

// BenchmarkSpecHash measures canonical spec hashing alone — the per-
// submission dedup cost even on a cache miss.
func BenchmarkSpecHash(b *testing.B) {
	spec := campaign.Spec{
		Seed:      42,
		Missions:  []campaign.MissionSpec{{Kind: "square", Size: 25, Alt: 10}, {Kind: "line", Size: 60, Alt: 10}},
		Variables: []string{"PIDR.INTEG", "CMD.Roll", "ATT.DesPitch"},
		Goals:     []string{campaign.GoalDeviation, campaign.GoalCrash},
		Defenses:  []string{campaign.DefenseNone, campaign.DefenseCI},
		Trials:    8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if SpecHash(spec) == "" {
			b.Fatal("empty hash")
		}
	}
}
