package serve

import (
	"container/list"
	"sync"
)

// lru is a fixed-capacity least-recently-used result cache keyed by spec
// hash. Values are immutable once inserted (a finished job's aggregated
// summary), so Get hands out shared pointers.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent
	byKey map[string]*list.Element // value: *lruEntry
}

type lruEntry struct {
	key string
	val *Result
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached result and marks it most recently used.
func (c *lru) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *lru) Add(key string, val *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached results.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
