package vars

import (
	"strings"
	"testing"
)

func TestRefGetSetAdd(t *testing.T) {
	x := 3.0
	r := Ref{Name: "X", Kind: KindParam, Ptr: &x}
	if r.Get() != 3 {
		t.Errorf("Get = %v", r.Get())
	}
	if old := r.Set(5); old != 3 {
		t.Errorf("Set returned old %v, want 3", old)
	}
	if x != 5 {
		t.Errorf("Set did not write through: %v", x)
	}
	if got := r.Add(-1.5); got != 3.5 {
		t.Errorf("Add = %v, want 3.5", got)
	}
}

func TestSetRegisterAndLookup(t *testing.T) {
	s := NewSet()
	a, b := 1.0, 2.0
	if err := s.Register("A", KindSensor, &a); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("B", KindDynamic, &b); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("A", KindSensor, &a); err == nil {
		t.Error("duplicate registration did not error")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := s.Register("C", KindParam, nil); err == nil {
		t.Error("nil pointer registration did not error")
	}

	r, ok := s.Lookup("A")
	if !ok || r.Get() != 1 {
		t.Errorf("Lookup(A) = %v, %v", r, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup found missing variable")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	vals := make([]float64, 3)
	s.MustRegister("zeta", KindParam, &vals[0])
	s.MustRegister("alpha", KindParam, &vals[1])
	s.MustRegister("mid", KindParam, &vals[2])
	names := s.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	refs := s.Refs()
	for i, r := range refs {
		if r.Name != want[i] {
			t.Fatalf("Refs order = %v", refs)
		}
	}
}

func TestSetOfKind(t *testing.T) {
	s := NewSet()
	vals := make([]float64, 4)
	s.MustRegister("p1", KindParam, &vals[0])
	s.MustRegister("p2", KindParam, &vals[1])
	s.MustRegister("s1", KindSensor, &vals[2])
	s.MustRegister("i1", KindIntermediate, &vals[3])
	if got := len(s.OfKind(KindParam)); got != 2 {
		t.Errorf("params = %d, want 2", got)
	}
	if got := len(s.OfKind(KindSensor)); got != 1 {
		t.Errorf("sensors = %d, want 1", got)
	}
	if got := len(s.OfKind(KindDynamic)); got != 0 {
		t.Errorf("dynamics = %d, want 0", got)
	}
}

func TestSnapshot(t *testing.T) {
	s := NewSet()
	a := 7.0
	s.MustRegister("A", KindSensor, &a)
	snap := s.Snapshot()
	a = 9
	if snap["A"] != 7 {
		t.Errorf("snapshot tracked live value: %v", snap["A"])
	}
	if s.Snapshot()["A"] != 9 {
		t.Error("new snapshot missed update")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister with nil pointer did not panic")
		}
	}()
	NewSet().MustRegister("bad", KindParam, nil)
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindSensor, "sensor"},
		{KindDynamic, "dynamic"},
		{KindParam, "param"},
		{KindIntermediate, "intermediate"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}
