// Package vars defines the state-variable reference abstraction used across
// the firmware, instrumentation and attack layers.
//
// ARES operates at the *variable level*: every interesting quantity inside
// the controller software — sensor readings, vehicle dynamics, configurable
// parameters and intermediate controller variables — is addressable as a
// named float64 cell. A Ref points directly at the live storage of such a
// cell, so reading a Ref observes the running controller and writing a Ref
// is exactly the data-manipulation primitive of the paper's threat model
// (the attacker flips bytes inside a compromised MPU region).
package vars

import (
	"fmt"
	"sort"
)

// Kind classifies a state variable, mirroring the paper's taxonomy.
type Kind int

const (
	// KindSensor marks raw sensor measurements (e.g. GyrX, AccZ).
	KindSensor Kind = iota + 1
	// KindDynamic marks vehicle dynamics (e.g. Roll, DesR, velocity).
	KindDynamic
	// KindParam marks configurable control parameters (e.g. ATC_RAT_RLL_P).
	KindParam
	// KindIntermediate marks intermediate controller variables that live
	// only inside controller functions (e.g. the PID integrator).
	KindIntermediate
)

// String returns a short label for the kind.
func (k Kind) String() string {
	switch k {
	case KindSensor:
		return "sensor"
	case KindDynamic:
		return "dynamic"
	case KindParam:
		return "param"
	case KindIntermediate:
		return "intermediate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Ref is a live reference to one named state variable.
type Ref struct {
	// Name is the dotted variable name, e.g. "PIDR.INTEG" or "ATT.Roll".
	Name string
	// Kind classifies the variable.
	Kind Kind
	// Ptr points at the variable's storage inside the running firmware.
	Ptr *float64
}

// Get returns the current value.
func (r Ref) Get() float64 { return *r.Ptr }

// Set overwrites the value, returning the previous one.
func (r Ref) Set(v float64) float64 {
	old := *r.Ptr
	*r.Ptr = v
	return old
}

// Add shifts the value by delta, returning the new value. Gradual attacks
// are built from Add calls.
func (r Ref) Add(delta float64) float64 {
	*r.Ptr += delta
	return *r.Ptr
}

// Set is a named collection of variable references.
type Set struct {
	byName map[string]Ref
}

// NewSet creates an empty variable set.
func NewSet() *Set {
	return &Set{byName: make(map[string]Ref)}
}

// Register adds a variable to the set. Registering a nil pointer or a
// duplicate name returns an error; firmware construction treats either as a
// wiring bug.
func (s *Set) Register(name string, kind Kind, ptr *float64) error {
	if ptr == nil {
		return fmt.Errorf("vars: register %q: nil pointer", name)
	}
	if _, ok := s.byName[name]; ok {
		return fmt.Errorf("vars: register %q: duplicate name", name)
	}
	s.byName[name] = Ref{Name: name, Kind: kind, Ptr: ptr}
	return nil
}

// MustRegister is Register for static wiring known to be unique; it panics
// on error (program-construction bugs only, per the don't-panic guideline).
func (s *Set) MustRegister(name string, kind Kind, ptr *float64) {
	if err := s.Register(name, kind, ptr); err != nil {
		panic(err)
	}
}

// Lookup finds a variable by name.
func (s *Set) Lookup(name string) (Ref, bool) {
	r, ok := s.byName[name]
	return r, ok
}

// Names returns all variable names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Refs returns all references sorted by name.
func (s *Set) Refs() []Ref {
	names := s.Names()
	refs := make([]Ref, len(names))
	for i, n := range names {
		refs[i] = s.byName[n]
	}
	return refs
}

// OfKind returns all references of the given kind, sorted by name.
func (s *Set) OfKind(kind Kind) []Ref {
	var refs []Ref
	for _, r := range s.Refs() {
		if r.Kind == kind {
			refs = append(refs, r)
		}
	}
	return refs
}

// Len returns the number of registered variables.
func (s *Set) Len() int { return len(s.byName) }

// Snapshot captures the current value of every variable.
func (s *Set) Snapshot() map[string]float64 {
	snap := make(map[string]float64, len(s.byName))
	for n, r := range s.byName {
		snap[n] = r.Get()
	}
	return snap
}
