// Package metricname is an areslint fixture: metric registration naming.
package metricname

import "github.com/ares-cps/ares/internal/metrics"

var reg = metrics.NewRegistry()

// Good: a literal in the ares_ namespace.
var good = reg.Counter("ares_fixture_jobs_total", "jobs")

// Bad: outside the ares_ namespace.
var badPrefix = reg.Counter("fixture_jobs_total", "jobs")

// Bad: a computed name cannot be grepped or collision-checked.
var dynamicName = "ares_fixture_dynamic_total"
var computed = reg.Counter(dynamicName, "dynamic")

// Bad: same name, different kind — the registry panics on this at
// runtime.
var dupKind = reg.Gauge("ares_fixture_jobs_total", "jobs level")

// Good: the CPV assessment surface pairs a counter with a gauge under
// distinct ares_cpv_* names.
var cpvAssess = reg.Counter("ares_cpv_assess_total", "assessments")
var cpvCatalog = reg.Gauge("ares_cpv_catalog_records", "records")

// Bad: uppercase breaks the lowercase ares_ namespace rule.
var cpvBadCase = reg.Counter("ares_CPV_compile_errors_total", "compile errors")

// Bad: re-registering the CPV gauge as a counter.
var cpvDupKind = reg.Counter("ares_cpv_catalog_records", "records")

// Good: the dist fleet head pairs a gauge with a counter under
// distinct ares_dist_* names.
var distWorkers = reg.Gauge("ares_dist_workers_registered", "workers")
var distMerged = reg.Counter("ares_dist_records_merged_total", "records merged")

// Bad: an uppercase fragment in a dist name.
var distBadCase = reg.Counter("ares_dist_Steal_events_total", "steals")

// Bad: re-registering the dist gauge as a counter.
var distDupKind = reg.Counter("ares_dist_workers_registered", "workers")
