// Package seedarith is an areslint fixture: ad-hoc seed offsets versus
// derived streams.
package seedarith

import "github.com/ares-cps/ares/internal/mathx"

// Suite mirrors the experiments.Suite shape.
type Suite struct{ Seed int64 }

// Bad: offset schemes collide across base seeds (stream k of seed s is
// stream k-1 of seed s+1).
func (s *Suite) offsets(i int) []int64 {
	a := s.Seed + 9
	b := s.Seed - 1
	c := s.Seed + 4000 + int64(i)
	return []int64{a, b, c}
}

// Bad: bare seed identifiers count too.
func shifted(seed int64) int64 {
	return seed + 100
}

// Good: derived streams cannot collide.
func (s *Suite) derived(stream int64) int64 {
	return mathx.DeriveSeed(s.Seed, stream)
}

// Suppressed: pre-existing offsets pinned by golden reports.
func (s *Suite) pinned() int64 {
	return s.Seed + 50 //areslint:ignore seedarith golden-pinned
}
