// Package errclose is an areslint fixture: discarded close errors on
// write paths.
package errclose

import "os"

// Bad: the deferred close discards the flush error — a full disk looks
// like success.
func deferred(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("data")
	return err
}

// Bad: a bare close statement discards the error too.
func bare(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close()
	return nil
}

// Good: the close error surfaces; the error path acknowledges the
// discard explicitly.
func checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("data"); err != nil {
		_ = f.Close() // best-effort: the write error is the one to surface
		return err
	}
	return f.Close()
}

// Good: read paths may discard close errors.
func readPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	n, err := f.Read(buf)
	return buf[:n], err
}
