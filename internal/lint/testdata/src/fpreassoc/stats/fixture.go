// Package stats is the fpreassoc fixture: float reductions must not
// fold in scheduler-dependent order. Worker closures write disjoint
// slots; one deterministic loop does the summing.
package stats

import "github.com/ares-cps/ares/internal/par"

// addInto accumulates through a float pointer — safe sequentially,
// a reduction-order hazard when called from concurrent workers with a
// shared target.
func addInto(dst *float64, x float64) {
	*dst += x
}

// Bad: a captured scalar accumulated from every worker — the sum
// depends on the schedule.
func sumShared(xs []float64, workers int) float64 {
	var sum float64
	par.Do(workers, len(xs), func(i int) {
		sum += xs[i]
	})
	return sum
}

// Bad: the same hazard hidden behind a helper that accumulates through
// its pointer parameter.
func sumViaHelper(xs []float64, workers int) float64 {
	var sum float64
	par.Chunks(workers, len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			addInto(&sum, xs[i])
		}
	})
	return sum
}

// Bad: accumulating while ranging over a channel — arrival order is
// whatever the scheduler produced.
func sumFromChannel(ch chan float64) float64 {
	var total float64
	for v := range ch {
		total += v
	}
	return total
}

// Good: per-index slots, folded in one deterministic pass.
func sumSlots(xs []float64, workers int) float64 {
	out := make([]float64, len(xs))
	par.Do(workers, len(xs), func(i int) {
		out[i] = xs[i] * xs[i]
	})
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum
}

// Good: per-worker partials indexed by the worker ID, then a
// deterministic fold.
func sumPartials(xs []float64, workers int) float64 {
	partial := make([]float64, workers)
	par.Chunks(workers, len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			partial[w] += xs[i]
		}
	})
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}
