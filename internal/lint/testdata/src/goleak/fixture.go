// Package goleak is an areslint fixture: every goroutine must be
// cancellable or awaitable — directly, through a value it was handed, or
// through a transitive callee.
package goleak

import (
	"context"
	"sync"
)

// spin is pure CPU work with no lifecycle anywhere in its closure.
func spin() {
	n := 0
	for i := 0; i < 1_000_000; i++ {
		n += i
	}
	_ = n
}

// pump drains a channel — a callee-level lifecycle.
func pump(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// watch observes a context.
func watch(ctx context.Context) {
	<-ctx.Done()
}

// Bad: a literal that never observes anything cancellable.
func leakLiteral() {
	go func() {
		spin()
	}()
}

// Bad: a named callee with no lifecycle in its transitive closure.
func leakNamed() {
	go spin()
}

// Good: the goroutine is handed a channel — the spawner can join it.
func joinedByArg(ch chan int) {
	go func(out chan int) {
		out <- 1
	}(ch)
}

// Good: the spawned callee ranges over a channel (interprocedural:
// the lifecycle is in pump, not at the go statement).
func joinedViaCallee(ch chan int) {
	go func() {
		_ = pump(ch)
	}()
}

// Good: a named callee whose body observes a context.
func cancellable(ctx context.Context) {
	go watch(ctx)
}

// Good: WaitGroup-registered work.
func awaited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		spin()
	}()
}
