// Package helpers buries nondeterminism one call away from the code
// dettaint inspects: the analyzer must see through these summaries.
package helpers

import "time"

// StampNow returns a wall-clock stamp — a nondeterminism source.
func StampNow() int64 {
	return time.Now().UnixNano()
}

// Jitter mixes the wall clock into a caller-supplied value, so its
// result carries nondeterminism without naming time anywhere at the
// call site.
func Jitter(base int64) int64 {
	return base ^ StampNow()
}

// Mix is a pure helper — calls to it must not be flagged.
func Mix(a, b int64) int64 {
	return a*31 ^ b
}
