// Package campaign is a minimal double of internal/campaign for the
// dettaint fixture: the Record type and artifact sinks the analyzer
// treats as the byte-identical store surface.
package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Record is one campaign artifact row.
type Record struct {
	Name  string
	Value float64
	Stamp int64
}

// Store collects records.
type Store struct {
	recs []Record
}

// Append adds one record to the store.
func (s *Store) Append(r Record) error {
	s.recs = append(s.recs, r)
	return nil
}

// SortedBytes renders records in canonical order.
func SortedBytes(recs []Record) []byte {
	lines := make([]string, 0, len(recs))
	for _, r := range recs {
		lines = append(lines, fmt.Sprintf("%s %g %d", r.Name, r.Value, r.Stamp))
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}
