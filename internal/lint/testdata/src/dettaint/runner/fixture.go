// Package runner is the dettaint fixture proper: nondeterministic
// values reaching the campaign artifact surface through helper calls,
// and impure seeded functions.
package runner

import (
	"github.com/ares-cps/ares/internal/lint/testdata/src/dettaint/campaign"
	"github.com/ares-cps/ares/internal/lint/testdata/src/dettaint/helpers"
)

// Bad: a helper-buried time.Now lands in a Record field — the taint
// crosses two packages before reaching the sink.
func buildRecord(name string) campaign.Record {
	stamp := helpers.StampNow()
	return campaign.Record{Name: name, Stamp: stamp}
}

// Bad: nondeterminism two hops deep (Jitter → StampNow → time.Now)
// assigned to a record field.
func stampRecord(r *campaign.Record, base int64) {
	r.Stamp = helpers.Jitter(base)
}

// Bad: a tainted value flows into a store sink argument.
func appendJittered(st *campaign.Store, base int64) error {
	v := helpers.Jitter(base)
	return st.Append(campaign.Record{Value: float64(v)})
}

// Bad: a seeded function calls into a helper that reaches the wall
// clock — the output is no longer a pure function of the seed.
func deriveStream(seed int64) int64 {
	return helpers.Jitter(seed)
}

// Good: pure helper calls and seed-independent constants are fine.
func buildPure(name string, seed int64) campaign.Record {
	return campaign.Record{Name: name, Stamp: helpers.Mix(seed, 17)}
}

// Good: a pure function of its seed.
func pureStream(seed int64) int64 {
	return helpers.Mix(seed, 0x9e3779b9)
}
