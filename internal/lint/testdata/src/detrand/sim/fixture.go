// Package sim is an areslint fixture: nondeterminism sources inside
// batched structure-of-arrays code (the import path ends in /sim, so
// detrand applies). The batch kernel's contract is lane-for-lane
// bit-identity with the scalar path, which wall clocks, global random
// state and map-ordered lane iteration all silently break.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// batch is a miniature SoA state: one slice per field, one index per lane.
type batch struct {
	pos   []float64
	vel   []float64
	seeds []int64
}

// Bad: stamping lanes from the wall clock diverges identical reruns.
func (b *batch) stampLanes() []int64 {
	out := make([]int64, len(b.pos))
	for k := range out {
		out[k] = time.Now().UnixNano()
	}
	return out
}

// Bad: per-lane noise from the unseeded global source ties lane k's
// stream to whatever every other goroutine consumed first.
func (b *batch) jitterLanes() {
	for k := range b.vel {
		b.vel[k] += rand.NormFloat64()
	}
}

// Good: each lane draws from its own seeded source, so lane k's stream
// is a pure function of its seed regardless of batch size or order.
func (b *batch) seededJitter() {
	for k := range b.vel {
		rng := rand.New(rand.NewSource(b.seeds[k]))
		b.vel[k] += rng.NormFloat64()
	}
}

// Bad: retiring lanes by ranging a map emits them in random order.
func retireOrder(retired map[int]bool) []int {
	var lanes []int
	for k := range retired {
		lanes = append(lanes, k)
	}
	return lanes
}

// Bad: reducing per-lane residuals in map order changes the float sum
// between runs.
func residualSum(residuals map[int]float64) float64 {
	total := 0.0
	for _, r := range residuals {
		total += r
	}
	return total
}

// Good: collect lanes, then sort before folding.
func sortedRetireOrder(retired map[int]bool) []int {
	lanes := make([]int, 0, len(retired))
	for k := range retired {
		lanes = append(lanes, k)
	}
	sort.Ints(lanes)
	return lanes
}
