// Package stats is an areslint fixture: nondeterminism sources inside an
// analysis-scope package (the import path ends in /stats, so detrand
// applies).
package stats

import (
	"math/rand"
	"sort"
	"time"
)

// Bad: wall clock in an analysis path.
func wallClockSeed() int64 {
	return time.Now().UnixNano()
}

// Bad: unseeded global source.
func globalRand() int {
	return rand.Intn(10)
}

// Good: seeded local source.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Bad: output order follows random map order.
func orderedFromMap(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Bad: float summation order follows random map order.
func sumFromMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Good: collect keys, then sort before use.
func sortedFromMap(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Suppressed: a reasoned marker on the line above silences the finding.
func suppressedClock() int64 {
	//areslint:ignore detrand fixture demonstrating suppression
	return time.Now().UnixNano()
}
