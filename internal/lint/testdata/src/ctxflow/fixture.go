// Package ctxflow is an areslint fixture: context threading and
// goroutine lifecycle discipline.
package ctxflow

import (
	"context"
	"sync"
)

func process(ctx context.Context) error {
	return ctx.Err()
}

// Bad: detaches the callee from the caller's cancellation.
func detached(ctx context.Context) error {
	return process(context.Background())
}

// Good: threads the received context.
func threaded(ctx context.Context) error {
	return process(ctx)
}

// Bad: fire-and-forget goroutine — nothing can cancel or await it.
func fireAndForget() {
	go func() {
		println("orphan")
	}()
}

// Good: awaited through a WaitGroup.
func awaited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Good: joined through a result channel.
func joined() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// Good: cancellable through the context it observes.
func cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
