// Package wirestrict is an areslint fixture: JSON decodes on wire
// boundaries must disallow unknown fields, reject trailing data and sit
// behind a size cap — directly or inside the helper the body is handed
// to.
package wirestrict

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

type spec struct {
	Name  string `json:"name"`
	Trial int    `json:"trial"`
}

const maxSpecBytes = 1 << 20

// Bad: bare decoder on a request body — lenient, unbounded, trailing
// data ignored.
func handleLoose(w http.ResponseWriter, r *http.Request) {
	var s spec
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// Bad: strict and trailing-checked, but nothing bounds the read.
func handleUncapped(w http.ResponseWriter, r *http.Request) {
	var s spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if dec.More() {
		http.Error(w, "trailing data", http.StatusBadRequest)
	}
}

// Bad: the body is forwarded into a helper that decodes it leniently —
// the violation is one call away from the boundary.
func handleForwarded(w http.ResponseWriter, r *http.Request) {
	var s spec
	if err := decodeLoose(r.Body, &s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// decodeLoose decodes its reader without any of the three guarantees.
func decodeLoose(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// Good: capped, strict, trailing-checked — the internal/dist/wire.go
// shape.
func handleStrict(w http.ResponseWriter, r *http.Request) {
	var s spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if dec.More() {
		http.Error(w, "trailing data", http.StatusBadRequest)
	}
}

// Good: the helper carries all three guarantees, so handing it a body
// is fine.
func handleViaStrictHelper(w http.ResponseWriter, r *http.Request) {
	var s spec
	if err := decodeStrict(r.Body, &s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// decodeStrict is the strict-decode convention in helper form.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}
