// Package parbudget is an areslint fixture: raw process-budget reads
// versus the par helpers.
package parbudget

import (
	"runtime"

	"github.com/ares-cps/ares/internal/par"
)

// Bad: raw budget reads multiply across nested pools.
func raw() int {
	return runtime.GOMAXPROCS(0) * 2
}

// Bad: NumCPU is the same trap.
func cpus() int {
	return runtime.NumCPU()
}

// Good: the par helpers resolve one machine-wide budget.
func clamped(n int) int {
	return par.Workers(n)
}
