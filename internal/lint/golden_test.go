package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current analyzer output")

// repoLoader builds a loader rooted at the enclosing module.
func repoLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFixtureGoldens pins every analyzer's diagnostics over its fixture
// package under testdata/src. One golden file per fixture directory;
// regenerate deliberately with:
//
//	go test -run TestFixtureGoldens -update ./internal/lint
func TestFixtureGoldens(t *testing.T) {
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := repoLoader(t)
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			pkgs, err := loader.Load("internal/lint/testdata/src/" + name + "/...")
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(pkgs, All(), 0)
			if len(diags) == 0 {
				t.Errorf("fixture %s produced no findings — every fixture must trip its analyzer", name)
			}
			var buf bytes.Buffer
			if err := WriteText(&buf, diags); err != nil {
				t.Fatal(err)
			}

			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d findings)", golden, len(diags))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestFixtureGoldens -update ./internal/lint` to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("diagnostics drifted from %s.\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
			}
		})
	}
}

// TestSelfLint asserts the repository itself is clean: every invariant
// the analyzers encode either holds or carries a reasoned suppression.
// This is the test-suite twin of the CI `areslint ./...` step.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository from source")
	}
	loader := repoLoader(t)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, All(), 0) {
		t.Errorf("%s", d)
	}
}

// TestRunDeterministicAcrossWorkers pins the framework to the repo's own
// contract: analysis output is bit-identical at any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	loader := repoLoader(t)
	pkgs, err := loader.Load("internal/lint/testdata/src/...")
	if err != nil {
		t.Fatal(err)
	}
	base := Run(pkgs, All(), 1)
	for _, workers := range []int{2, 8} {
		got := Run(pkgs, All(), workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d findings, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], base[i]) {
				t.Errorf("workers=%d: finding %d = %+v, want %+v", workers, i, got[i], base[i])
			}
		}
	}
}
