package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts are the per-function summary bits the interprocedural analyzers
// consume. All of them are disjunctive ("may"): they grow monotonically
// under bottom-up propagation, so the SCC fixpoint in callgraph.go is
// unique. The wire-decode summary, whose strictness bits are conjunctive
// ("must hold at every decode site"), lives in wireFacts instead.
type Facts uint16

const (
	// FactReachesNondet: the function (or a transitive callee) invokes a
	// nondeterminism source — time.Now or a global math/rand function.
	FactReachesNondet Facts = 1 << iota
	// FactReturnsNondet: a value derived from a nondeterminism source or
	// from random map-iteration order may flow out of the function's
	// results.
	FactReturnsNondet
	// FactReceivesSeed: the function takes an integer parameter named
	// seed-like; its output is expected to be a pure function of it.
	FactReceivesSeed
	// FactSpawnsGoroutine: the function (or a transitive callee) launches
	// a goroutine.
	FactSpawnsGoroutine
	// FactLifecycled: the function's execution observes a lifecycle —
	// a context, channel operation, WaitGroup or internal/par primitive —
	// directly or through a transitive callee. A goroutine running a
	// lifecycled function can be cancelled or awaited.
	FactLifecycled
	// FactPtrAccum: the function accumulates (+= and friends) through a
	// float pointer parameter — calling it from concurrent workers with a
	// shared target makes the reduction order schedule-dependent.
	FactPtrAccum
)

// wireFacts summarizes how a function treats readers it was handed: the
// strict-decode convention of internal/dist and internal/serve. Decodes
// is disjunctive; the remaining bits are conjunctive over every decode
// site reachable from the function's reader parameters.
type wireFacts struct {
	// Decodes: a reader/byte-slice parameter reaches a json decode.
	Decodes bool
	// Strict: every such decode disallows unknown fields.
	Strict bool
	// Trailing: every such decode checks for trailing data (a second
	// Decode against io.EOF, or More()).
	Trailing bool
	// Caps: every such decode is behind a size cap applied inside the
	// function itself (LimitReader/MaxBytesReader, or a materialized
	// byte slice, which some upstream read already bounded).
	Caps bool
}

// merge folds one decode site (or forwarded callee summary) into the
// conjunctive summary.
func (w *wireFacts) merge(site wireFacts) {
	if !site.Decodes {
		return
	}
	if !w.Decodes {
		*w = site
		return
	}
	w.Strict = w.Strict && site.Strict
	w.Trailing = w.Trailing && site.Trailing
	w.Caps = w.Caps && site.Caps
}

// localFacts computes one function's facts from its body and the current
// facts of its callees. It is re-run to fixpoint inside call cycles.
func localFacts(pr *Program, fi *FuncInfo) (Facts, wireFacts) {
	var facts Facts
	if hasSeedParam(fi) {
		facts |= FactReceivesSeed
	}
	for _, callee := range fi.Callees {
		cf := pr.facts[callee]
		facts |= cf & (FactReachesNondet | FactSpawnsGoroutine | FactLifecycled)
		if isNondetSource(callee) {
			facts |= FactReachesNondet
		}
	}
	if bodyTouchesLifecycle(fi.Pkg, fi.Decl.Body) {
		facts |= FactLifecycled
	}
	hasGo := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			hasGo = true
		}
		return !hasGo
	})
	if hasGo {
		facts |= FactSpawnsGoroutine
	}
	if ptrAccumulates(fi) {
		facts |= FactPtrAccum
	}

	tt := newTaint(pr, fi)
	tt.run()
	if tt.returnsTainted() {
		facts |= FactReturnsNondet
	}

	return facts, wireSummary(pr, fi)
}

// isNondetSource reports whether fn is a root nondeterminism source:
// time.Now, or a package-level math/rand function backed by the global
// unseeded state.
func isNondetSource(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Now"
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() == nil && globalRandFuncs[fn.Name()]
	}
	return false
}

// hasSeedParam reports whether the declaration takes an integer
// parameter whose name is seed-like (seed, baseSeed, ...).
func hasSeedParam(fi *FuncInfo) bool {
	if fi.Decl.Type.Params == nil {
		return false
	}
	for _, field := range fi.Decl.Type.Params.List {
		for _, name := range field.Names {
			lower := strings.ToLower(name.Name)
			if lower != "seed" && !strings.HasSuffix(lower, "seed") {
				continue
			}
			if t := fi.Pkg.Info.TypeOf(field.Type); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return true
				}
			}
		}
	}
	return false
}

// bodyTouchesLifecycle reports whether body references a context, a
// WaitGroup, a channel operation, or an internal/par call — the same
// lifecycle markers ctxflow accepts, here feeding the transitive
// FactLifecycled bit.
func bodyTouchesLifecycle(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(m.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(m.Fun).(*ast.Ident); ok && id.Name == "close" && pkg.Info.Uses[id] == nil {
				found = true
			}
			if fn, ok := staticCallee(pkg, m); ok && fn.Pkg() != nil && pathHasSegment(fn.Pkg().Path(), "internal/par") {
				found = true
			}
		case ast.Expr:
			if t := pkg.Info.TypeOf(m); isContextType(t) || isWaitGroupType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// ptrAccumulates reports whether the function compound-assigns through a
// float pointer parameter (*sum += x).
func ptrAccumulates(fi *FuncInfo) bool {
	ptrParams := make(map[types.Object]bool)
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			t := fi.Pkg.Info.TypeOf(field.Type)
			ptr, ok := t.(*types.Pointer)
			if !ok {
				continue
			}
			if b, ok := ptr.Elem().Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
				continue
			}
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					ptrParams[obj] = true
				}
			}
		}
	}
	if len(ptrParams) == 0 {
		return false
	}
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return !found
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return !found
		}
		star, ok := unparen(as.Lhs[0]).(*ast.StarExpr)
		if !ok {
			return !found
		}
		if id, ok := unparen(star.X).(*ast.Ident); ok && ptrParams[fi.Pkg.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// --- value taint -----------------------------------------------------

// taint is a flow-insensitive per-function value-taint analysis: a value
// is tainted when it derives from a nondeterminism source (time.Now,
// global math/rand, a callee with FactReturnsNondet) or carries random
// map-iteration order (a slice appended to under a map range and never
// sorted, or a float accumulated under one). dettaint asks it two
// questions: does taint reach the function's results (the propagated
// FactReturnsNondet), and does taint reach a campaign record sink.
type taint struct {
	pr      *Program
	fi      *FuncInfo
	tainted map[types.Object]bool
}

func newTaint(pr *Program, fi *FuncInfo) *taint {
	return &taint{pr: pr, fi: fi, tainted: make(map[types.Object]bool)}
}

// run iterates assignment propagation to a fixpoint.
func (t *taint) run() {
	t.seedMapOrderTaint()
	for {
		changed := false
		ast.Inspect(t.fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Compound assigns (x += tainted) taint the target too.
			if len(as.Rhs) == 1 && len(as.Lhs) >= 1 && t.exprTainted(as.Rhs[0]) {
				for _, lhs := range as.Lhs {
					if t.markLHS(lhs) {
						changed = true
					}
				}
			} else if len(as.Rhs) == len(as.Lhs) {
				for i, rhs := range as.Rhs {
					if t.exprTainted(rhs) && t.markLHS(as.Lhs[i]) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// seedMapOrderTaint marks order-carrying variables: slices appended to
// inside a map range that are never sorted afterwards, and floats
// compound-assigned inside one. These are detrand's per-function checks
// lifted into taint that can cross call boundaries.
func (t *taint) seedMapOrderTaint() {
	body := t.fi.Decl.Body
	p := &Pass{Pkg: t.fi.Pkg} // helper receiver for shared resolution utilities
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tx := t.fi.Pkg.Info.TypeOf(rng.X)
		if tx == nil {
			return true
		}
		if _, isMap := tx.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if b, ok := t.fi.Pkg.Info.TypeOf(as.Lhs[0]).Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					if root := rootIdent(as.Lhs[0]); root != nil {
						if obj := identObject(p, root); obj != nil {
							t.tainted[obj] = true
						}
					}
				}
			case token.ASSIGN, token.DEFINE:
				if len(as.Rhs) != 1 {
					return true
				}
				call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok || !isBuiltinAppend(p, id) {
					return true
				}
				if root := rootIdent(as.Lhs[0]); root != nil {
					if obj := identObject(p, root); obj != nil && !sortedLater(p, body, obj) {
						t.tainted[obj] = true
					}
				}
			}
			return true
		})
		return true
	})
}

// markLHS taints the root object of an assignment target; reports
// whether that was new information.
func (t *taint) markLHS(lhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	p := &Pass{Pkg: t.fi.Pkg}
	obj := identObject(p, root)
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// exprTainted reports whether any value flowing out of e may be tainted.
// Conservative over calls: a call is tainted when its callee returns
// nondeterminism or any argument (or the receiver) is tainted.
func (t *taint) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body's effects are handled by the outer walk
		case *ast.Ident:
			obj := t.fi.Pkg.Info.Uses[n]
			if obj != nil && t.tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			if fn, ok := staticCallee(t.fi.Pkg, n); ok {
				if isNondetSource(fn) || t.pr.facts[fn]&FactReturnsNondet != 0 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// returnsTainted reports whether a tainted value reaches the function's
// results: a tainted return expression, or a tainted named result.
func (t *taint) returnsTainted() bool {
	results := t.fi.Decl.Type.Results
	if results == nil {
		return false
	}
	found := false
	ast.Inspect(t.fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are not the function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if t.exprTainted(e) {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}
	// Bare returns with tainted named results.
	for _, field := range results.List {
		for _, name := range field.Names {
			if obj := t.fi.Pkg.Info.Defs[name]; obj != nil && t.tainted[obj] {
				return true
			}
		}
	}
	return false
}

// --- wire-decode summary ---------------------------------------------

// paramReaderObjs collects the function's parameters that can carry wire
// input onward: io.Reader-compatible values and byte slices.
func paramReaderObjs(fi *FuncInfo) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	if fi.Decl.Type.Params == nil {
		return objs
	}
	for _, field := range fi.Decl.Type.Params.List {
		t := fi.Pkg.Info.TypeOf(field.Type)
		if t == nil || !isReaderish(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := fi.Pkg.Info.Defs[name]; obj != nil {
				objs[obj] = true
			}
		}
	}
	return objs
}

// isReaderish reports whether t can carry a request/response body: an
// interface with a Read method, an *os.File-like concrete reader, or a
// byte slice.
func isReaderish(t types.Type) bool {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Read" {
				return true
			}
		}
	}
	return false
}

// wireSummary computes a function's wireFacts: the conjunction over
// every decode site its reader parameters reach, locally or through
// callees that decode their own parameters.
func wireSummary(pr *Program, fi *FuncInfo) wireFacts {
	params := paramReaderObjs(fi)
	if len(params) == 0 {
		return wireFacts{}
	}
	fromParam := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && params[fi.Pkg.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	var sum wireFacts
	for _, site := range decodeSites(fi.Pkg, fi.Decl.Body) {
		if fromParam(site.reader) {
			sum.merge(site.facts)
		}
	}
	// Forwarding: a reader parameter handed to a callee that decodes its
	// own parameters inherits that callee's summary, upgraded by any cap
	// applied in the argument chain here.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := staticCallee(fi.Pkg, call)
		if !ok {
			return true
		}
		cw := pr.wire[fn]
		if !cw.Decodes {
			return true
		}
		for _, arg := range call.Args {
			if !fromParam(arg) {
				continue
			}
			site := cw
			if exprHasCap(fi.Pkg, arg) {
				site.Caps = true
			}
			sum.merge(site)
		}
		return true
	})
	return sum
}

// decodeSite is one json decode rooted at a reader expression, with the
// strictness that decode achieves inside this function.
type decodeSite struct {
	reader ast.Expr
	call   *ast.CallExpr
	// decl is the assign statement binding the decoder variable, when
	// the decoder is named (fix insertion point for wirestrict).
	decl  *ast.AssignStmt
	facts wireFacts
}

// decodeSites finds every json.NewDecoder/json.Unmarshal under body and
// computes per-site strictness: DisallowUnknownFields on the decoder
// variable, a trailing-data check (second Decode or More), and a local
// size cap in the reader expression.
func decodeSites(pkg *Package, body *ast.BlockStmt) []decodeSite {
	var sites []decodeSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := staticCallee(pkg, call)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
			return true
		}
		switch fn.Name() {
		case "Unmarshal":
			if len(call.Args) == 2 {
				// json.Unmarshal never rejects unknown fields; data is a
				// materialized slice, so the cap is inherent.
				sites = append(sites, decodeSite{
					reader: call.Args[0], call: call,
					facts: wireFacts{Decodes: true, Strict: false, Trailing: true, Caps: true},
				})
			}
		case "NewDecoder":
			if len(call.Args) != 1 {
				return true
			}
			site := decodeSite{
				reader: call.Args[0], call: call,
				facts: wireFacts{Decodes: true, Caps: exprHasCap(pkg, call.Args[0])},
			}
			if obj, decl := decoderVar(pkg, body, call); obj != nil {
				site.decl = decl
				site.facts.Strict = decoderCallCount(pkg, body, obj, "DisallowUnknownFields") > 0
				site.facts.Trailing = decoderCallCount(pkg, body, obj, "Decode") >= 2 ||
					decoderCallCount(pkg, body, obj, "More") > 0
			}
			sites = append(sites, site)
		}
		return true
	})
	return sites
}

// exprHasCap reports whether the reader expression chain applies a size
// bound: http.MaxBytesReader, io.LimitReader, or a reader over an
// already-materialized byte slice (bytes.NewReader/NewBuffer — whoever
// produced the slice bounded the read).
func exprHasCap(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := staticCallee(pkg, call)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "net/http.MaxBytesReader", "io.LimitReader",
			"bytes.NewReader", "bytes.NewBuffer", "bytes.NewBufferString",
			"strings.NewReader":
			found = true
		}
		return !found
	})
	if found {
		return true
	}
	// A bare byte-slice or string expression is already materialized.
	if t := pkg.Info.TypeOf(e); t != nil {
		if isReaderish(t) {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				return true
			}
		}
	}
	return false
}

// decoderVar resolves the variable a json.NewDecoder result is bound to
// (dec := json.NewDecoder(r)), and the binding statement.
func decoderVar(pkg *Package, body *ast.BlockStmt, newDecoder *ast.CallExpr) (types.Object, *ast.AssignStmt) {
	var obj types.Object
	var decl *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if unparen(as.Rhs[0]) != newDecoder {
			return true
		}
		if id, ok := unparen(as.Lhs[0]).(*ast.Ident); ok {
			p := &Pass{Pkg: pkg}
			obj = identObject(p, id)
			decl = as
		}
		return true
	})
	return obj, decl
}

// decoderCallCount counts method calls named method on the decoder
// variable obj under body.
func decoderCallCount(pkg *Package, body *ast.BlockStmt, obj types.Object, method string) int {
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		if id, ok := unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			count++
		}
		return true
	})
	return count
}
