package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// metricNameRE is the repository's metric naming contract: one `ares_`
// namespace, lowercase snake case, so dashboards and the CI greps
// (`grep -x 'ares_serve_jobs_completed_total 1'`) can rely on the shape.
var metricNameRE = regexp.MustCompile(`^ares_[a-z0-9_]+$`)

// MetricName enforces that every metrics registration uses an
// `ares_[a-z0-9_]+` string literal — a computed name cannot be grepped,
// alerted on, or checked for collisions statically — and that a name is
// registered as exactly one kind per package (a name reused as a
// different kind panics at runtime in the registry; catch it before
// then).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metrics register ares_* string literals, one kind per name",
	Run:  runMetricName,
}

func runMetricName(p *Pass) {
	type reg struct {
		kind string
		pos  ast.Node
	}
	seen := make(map[string]reg)
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := registryMethod(p, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			p.Reportf(call.Args[0].Pos(), "metric name must be a string literal, not a computed value — literals keep names greppable and collision-checkable")
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !metricNameRE.MatchString(name) {
			p.Reportf(lit.Pos(), "metric name %q does not match ares_[a-z0-9_]+ — every instrument lives in the ares_ namespace", name)
			return true
		}
		if prev, ok := seen[name]; ok && prev.kind != kind {
			p.Reportf(lit.Pos(), "metric %q registered as %s here but as %s earlier in this package — one kind per name (the registry panics on this at runtime)", name, kind, prev.kind)
			return true
		}
		seen[name] = reg{kind: kind, pos: call}
		return true
	})
}

// registryMethod reports whether call invokes Counter/Gauge/Histogram on
// the repo's metrics.Registry, returning the lowercase kind.
func registryMethod(p *Pass, call *ast.CallExpr) (string, bool) {
	obj := p.callee(call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	var kind string
	switch fn.Name() {
	case "Counter":
		kind = "counter"
	case "Gauge":
		kind = "gauge"
	case "Histogram":
		kind = "histogram"
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return "", false
	}
	if !pathHasSegment(named.Obj().Pkg().Path(), "internal/metrics") {
		return "", false
	}
	return kind, true
}
