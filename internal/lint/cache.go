package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/par"
)

// The incremental lint cache. A package's report is a pure function of
// three inputs — its own source bytes, the analyzer configuration, and
// the propagated facts of its dependencies — so each package caches under
//
//	key = H(version ‖ config ‖ srcHash(pkg) ‖ factSig(dep) for each
//	        module-internal dep, sorted by import path)
//
// where factSig(dep) is a hash of the dependency's propagated function
// facts (flow.go). The fact signature, not the dependency's source hash,
// is what enters the key: editing a helper's body in a way that leaves
// its summary facts unchanged re-lints that one package and no
// dependents.
//
// A warm run walks the module-internal import graph in topological order
// using ImportsOnly parses (no type-checking), resolves each package's
// key from its dependencies' signatures — known by then, from a cache
// entry or from a fresh analysis — and only type-checks the misses.
// Facts are a unique least fixpoint, so a report assembled from any mix
// of cached and fresh packages is byte-identical to a cold run's.
//
// The cache is one JSON file. Any corruption — truncated write, garbage,
// version skew — degrades to an empty cache and self-heals on save;
// correctness never depends on cache state.

// cacheVersion invalidates every entry when the analysis or the entry
// format changes shape. Bump it whenever analyzer semantics move.
const cacheVersion = "areslint-cache-v2"

// A Cache is the on-disk memo of per-package lint results.
type Cache struct {
	// Path is the cache file location.
	Path string
	// Config folds the run configuration (active analyzer names) into
	// every key.
	Config string

	entries map[string]cacheEntry
}

// cacheEntry is one package's memoized outcome.
type cacheEntry struct {
	// FactSig summarizes the package's propagated function facts for
	// dependents' keys.
	FactSig string `json:"fact_sig"`
	// Analyzed records whether Diags is meaningful: dependencies enter
	// the cache for their fact signature alone and must not satisfy a
	// lookup that needs diagnostics.
	Analyzed bool `json:"analyzed"`
	// Diags is the package's sorted report (when Analyzed).
	Diags []Diagnostic `json:"diags"`
}

// cacheFile is the serialized form.
type cacheFile struct {
	Version string                `json:"version"`
	Entries map[string]cacheEntry `json:"entries"`
}

// OpenCache loads the cache at path. A missing, unreadable, corrupt or
// version-skewed file yields an empty cache — never an error: the cache
// is an accelerator, and every failure mode degrades to a cold run.
func OpenCache(path, config string) *Cache {
	c := &Cache{Path: path, Config: config, entries: make(map[string]cacheEntry)}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != cacheVersion {
		return c
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c
}

// Save atomically persists the cache. Only entries touched by the run
// that populated them are kept (Run rewrites the map), so the file stays
// proportional to the module, not its history.
func (c *Cache) Save() error {
	f := cacheFile{Version: cacheVersion, Entries: c.entries}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(c.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return campaign.WriteFileAtomic(c.Path, append(data, '\n'), 0o644)
}

// CacheStats reports how a cached run split between memo and work.
type CacheStats struct {
	Hits   int // target packages answered from the cache
	Misses int // target packages type-checked and analyzed
}

// scanned is the cheap (ImportsOnly) view of one package directory.
type scanned struct {
	dir     string
	path    string   // import path
	srcHash string   // hash of file names and contents
	deps    []string // module-internal imports, sorted
}

// RunCached is Run with a package-level memo: targets resolve from
// patterns exactly as Loader.Load does, hits come straight from the
// cache, and only misses are loaded and analyzed. The returned report is
// byte-identical to Run over the same targets.
func RunCached(root string, patterns []string, analyzers []*Analyzer, workers int, c *Cache) ([]Diagnostic, CacheStats, error) {
	var stats CacheStats
	loader, err := NewLoader(root)
	if err != nil {
		return nil, stats, err
	}
	targets, err := resolveDirs(loader, patterns)
	if err != nil {
		return nil, stats, err
	}

	// Cheap scan of the targets' module-internal import closure: source
	// hashes and dependency edges, no type-checking.
	scans := make(map[string]*scanned) // import path → scan
	var scan func(dir string) (*scanned, error)
	scan = func(dir string) (*scanned, error) {
		path, err := loader.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		if s, ok := scans[path]; ok {
			return s, nil
		}
		s, err := scanDir(loader, dir, path)
		if err != nil {
			return nil, err
		}
		scans[path] = s
		for _, dep := range s.deps {
			rel := strings.TrimPrefix(strings.TrimPrefix(dep, loader.ModPath), "/")
			if _, err := scan(filepath.Join(root, filepath.FromSlash(rel))); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	targetPaths := make([]string, 0, len(targets))
	isTarget := make(map[string]bool)
	for _, dir := range targets {
		s, err := scan(dir)
		if err != nil {
			return nil, stats, err
		}
		targetPaths = append(targetPaths, s.path)
		isTarget[s.path] = true
	}

	// Topological order over the scanned closure (imports are acyclic).
	order := topoOrder(scans)

	// Walk dependencies-first: every package's key is derivable from
	// signatures already resolved. Misses load (which pulls their deps
	// into the Program) and record their fresh signature.
	prog := NewProgram(nil)
	factSigs := make(map[string]string)
	keys := make(map[string]string)
	fresh := make(map[string]cacheEntry)
	var missTargets []*Package
	missIdx := make(map[string]int)
	for _, path := range order {
		s := scans[path]
		key := cacheKey(c.Config, s, factSigs)
		keys[path] = key
		entry, hit := c.entries[key]
		if hit && (!isTarget[path] || entry.Analyzed) {
			factSigs[path] = entry.FactSig
			fresh[key] = entry
			if isTarget[path] {
				stats.Hits++
			}
			continue
		}
		pkg, err := loader.loadDir(s.dir, s.path)
		if err != nil {
			return nil, stats, err
		}
		prog.Add(pkg)
		sig := factSig(prog, pkg)
		factSigs[path] = sig
		if isTarget[path] {
			stats.Misses++
			missIdx[path] = len(missTargets)
			missTargets = append(missTargets, pkg)
		} else {
			fresh[key] = cacheEntry{FactSig: sig}
		}
	}

	// Analyze the missing targets in parallel — same harness as Run.
	perPkg := make([][]Diagnostic, len(missTargets))
	par.Do(workers, len(missTargets), func(i int) {
		perPkg[i] = runPackage(missTargets[i], analyzers, prog)
	})
	for i, pkg := range missTargets {
		sortDiagnostics(perPkg[i])
		fresh[keys[pkg.Path]] = cacheEntry{
			FactSig:  factSigs[pkg.Path],
			Analyzed: true,
			Diags:    append([]Diagnostic{}, perPkg[i]...),
		}
	}
	c.entries = fresh

	// Assemble the report in target order, then the canonical sort — the
	// same shape Run produces.
	var all []Diagnostic
	for _, path := range targetPaths {
		if i, ok := missIdx[path]; ok {
			all = append(all, perPkg[i]...)
		} else {
			all = append(all, fresh[keys[path]].Diags...)
		}
	}
	sortDiagnostics(all)
	return all, stats, nil
}

// resolveDirs expands patterns into package directories with Loader.Load
// semantics, without loading anything.
func resolveDirs(l *Loader, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := l.absDir(strings.TrimSuffix(rest, string(filepath.Separator)))
			if base == "" {
				base = l.Root
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := l.absDir(pat)
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no non-test Go files in %s", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// scanDir hashes one directory's sources and extracts its module-internal
// imports with an ImportsOnly parse.
func scanDir(l *Loader, dir, path string) (*scanned, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	sort.Strings(names)

	h := sha256.New()
	depSet := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(src))
		h.Write(src)
		f, err := parser.ParseFile(fset, full, src, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == l.ModPath || strings.HasPrefix(ip, l.ModPath+"/") {
				depSet[ip] = true
			}
		}
	}
	s := &scanned{dir: dir, path: path, srcHash: hex.EncodeToString(h.Sum(nil))}
	for dep := range depSet {
		s.deps = append(s.deps, dep)
	}
	sort.Strings(s.deps)
	return s, nil
}

// topoOrder sorts the scanned closure dependencies-first, ties broken by
// import path so the walk is deterministic.
func topoOrder(scans map[string]*scanned) []string {
	paths := make([]string, 0, len(scans))
	for p := range scans {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []string
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(p string)
	visit = func(p string) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, dep := range scans[p].deps {
			if _, ok := scans[dep]; ok {
				visit(dep)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// cacheKey derives one package's key from the run config, its source
// hash, and its dependencies' fact signatures.
func cacheKey(config string, s *scanned, factSigs map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00", cacheVersion, config, s.path, s.srcHash)
	for _, dep := range s.deps {
		fmt.Fprintf(h, "%s\x00%s\x00", dep, factSigs[dep])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// factSig hashes a package's propagated function facts — the projection
// of the package dependents can observe through the Program.
func factSig(pr *Program, pkg *Package) string {
	type row struct {
		name string
		f    Facts
		w    wireFacts
	}
	var rows []row
	for fn, fi := range pr.info {
		if fi.Pkg == pkg {
			rows = append(rows, row{fn.FullName(), pr.facts[fn], pr.wire[fn]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%s\x00%d\x00%v\x00", r.name, r.f, r.w)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sortDiagnostics applies the canonical report order: file, line, column,
// check, message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
