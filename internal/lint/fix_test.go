package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mathxStub gives throwaway modules a DeriveSeed for the seedarith fix
// to target (and for the rewritten source to compile against).
const mathxStub = `package mathx

// DeriveSeed mixes a base seed with a stream index.
func DeriveSeed(base, stream int64) int64 {
	return base ^ (stream * 0x9e3779b9)
}
`

// fixCase is one fixable check exercised end to end: lint a temp module,
// plan the suggested fixes, pin the rewritten file against a golden.
type fixCase struct {
	check   string
	files   map[string]string
	pattern string
	target  string // display path of the file the fix rewrites
}

func fixCases() []fixCase {
	return []fixCase{
		{
			check: "seedarith",
			files: map[string]string{
				"internal/mathx/seed.go": mathxStub,
				"core/core.go": `package core

import (
	"fmt"
)

func stream(seed int64, i int) int64 {
	s := seed + int64(i)
	fmt.Println(s)
	return s
}
`,
			},
			pattern: "core",
			target:  "core/core.go",
		},
		{
			check: "errclose",
			files: map[string]string{
				"core/core.go": `package core

import "os"

func dump(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	f.Close()
	return err
}
`,
			},
			pattern: "core",
			target:  "core/core.go",
		},
		{
			check: "wirestrict",
			files: map[string]string{
				"srv/srv.go": `package srv

import (
	"encoding/json"
	"net/http"
)

type spec struct{ Name string }

func handle(w http.ResponseWriter, r *http.Request) {
	var s spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec2 := json.NewDecoder(r.Body)
	if err := dec.Decode(&s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if dec.More() {
		http.Error(w, "trailing data", http.StatusBadRequest)
		return
	}
	if err := dec2.Decode(&s); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}
`,
			},
			pattern: "srv",
			target:  "srv/srv.go",
		},
	}
}

// planModule lints a temp module and plans its suggested fixes.
func planModule(t *testing.T, root string, patterns ...string) (*FixPlan, []Diagnostic) {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All(), 0)
	plan, err := PlanFixes(diags, SourcesOf(pkgs))
	if err != nil {
		t.Fatal(err)
	}
	return plan, diags
}

// TestFixGoldens pins the rewritten source of every fixable check
// against a before/after golden. Regenerate deliberately with:
//
//	go test -run TestFixGoldens -update ./internal/lint
func TestFixGoldens(t *testing.T) {
	for _, c := range fixCases() {
		t.Run(c.check, func(t *testing.T) {
			root := writeModule(t, c.files)
			plan, diags := planModule(t, root, c.pattern)
			if plan.Applied == 0 {
				t.Fatalf("no fixes planned; diagnostics: %v", diags)
			}
			if len(plan.Skipped) != 0 {
				t.Fatalf("unexpected skipped fixes: %v", plan.Skipped)
			}
			got, ok := plan.Files[c.target]
			if !ok {
				t.Fatalf("plan did not rewrite %s (files: %v)", c.target, plan.Files)
			}

			golden := filepath.Join("testdata", "fix", c.check+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestFixGoldens -update` from internal/lint to create it)", err)
			}
			if string(got) != string(want) {
				t.Errorf("rewritten source drifted from %s.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}

			// The diff preview must describe exactly this rewrite.
			diff := plan.Diff()
			if !strings.Contains(diff, "--- a/"+c.target) || !strings.Contains(diff, "+++ b/"+c.target) {
				t.Errorf("Diff() missing file header for %s:\n%s", c.target, diff)
			}
		})
	}
}

// TestFixIdempotence applies each plan to disk and verifies a second
// lint-plan-apply pass is a no-op: fixing twice equals fixing once.
func TestFixIdempotence(t *testing.T) {
	for _, c := range fixCases() {
		t.Run(c.check, func(t *testing.T) {
			root := writeModule(t, c.files)
			plan, _ := planModule(t, root, c.pattern)
			if plan.Applied == 0 {
				t.Fatal("first pass planned no fixes")
			}
			if err := plan.Write(root); err != nil {
				t.Fatal(err)
			}
			after1, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(c.target)))
			if err != nil {
				t.Fatal(err)
			}

			plan2, _ := planModule(t, root, c.pattern)
			if plan2.Applied != 0 || len(plan2.Files) != 0 {
				t.Fatalf("second pass planned %d fix(es) over %d file(s); fixes must converge after one round",
					plan2.Applied, len(plan2.Files))
			}
			if err := plan2.Write(root); err != nil {
				t.Fatal(err)
			}
			after2, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(c.target)))
			if err != nil {
				t.Fatal(err)
			}
			if string(after1) != string(after2) {
				t.Error("applying fixes twice changed the file a second time")
			}
		})
	}
}

// TestSeedArithFixRemovesFinding closes the loop: after -fix the
// analyzer that suggested the rewrite no longer fires.
func TestSeedArithFixRemovesFinding(t *testing.T) {
	c := fixCases()[0]
	root := writeModule(t, c.files)
	plan, before := planModule(t, root, c.pattern)
	if !strings.Contains(strings.Join(checksOf(before), ","), "seedarith") {
		t.Fatalf("fixture did not trip seedarith: %v", before)
	}
	if err := plan.Write(root); err != nil {
		t.Fatal(err)
	}
	_, after := planModule(t, root, c.pattern)
	for _, d := range after {
		if d.Check == "seedarith" {
			t.Errorf("seedarith still fires after its fix: %s", d)
		}
	}
}

func TestPlanFixesOverlapRejected(t *testing.T) {
	src := map[string][]byte{"a.go": []byte("0123456789")}
	diags := []Diagnostic{
		{Check: "x", File: "a.go", Line: 1, Fix: &SuggestedFix{
			Message: "first", Edits: []TextEdit{{File: "a.go", Start: 2, End: 6, NewText: "AAAA"}},
		}},
		{Check: "x", File: "a.go", Line: 2, Fix: &SuggestedFix{
			Message: "second overlaps first", Edits: []TextEdit{{File: "a.go", Start: 4, End: 8, NewText: "BBBB"}},
		}},
	}
	plan, err := PlanFixes(diags, src)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Applied != 1 || len(plan.Skipped) != 1 {
		t.Fatalf("applied = %d, skipped = %d; want 1 and 1", plan.Applied, len(plan.Skipped))
	}
	if got := string(plan.Files["a.go"]); got != "01AAAA6789" {
		t.Errorf("rewritten = %q, want only the first edit applied", got)
	}
}

func TestPlanFixesMultiEditAllOrNothing(t *testing.T) {
	// A fix whose second edit conflicts must contribute nothing, even
	// though its first edit was conflict-free.
	src := map[string][]byte{"a.go": []byte("0123456789")}
	diags := []Diagnostic{
		{Check: "x", File: "a.go", Line: 1, Fix: &SuggestedFix{
			Message: "claims [2,4)", Edits: []TextEdit{{File: "a.go", Start: 2, End: 4, NewText: "XX"}},
		}},
		{Check: "x", File: "a.go", Line: 2, Fix: &SuggestedFix{
			Message: "clean edit + conflicting edit", Edits: []TextEdit{
				{File: "a.go", Start: 8, End: 9, NewText: "Y"},
				{File: "a.go", Start: 3, End: 5, NewText: "ZZ"},
			},
		}},
	}
	plan, err := PlanFixes(diags, src)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Applied != 1 || len(plan.Skipped) != 1 {
		t.Fatalf("applied = %d, skipped = %d; want 1 and 1", plan.Applied, len(plan.Skipped))
	}
	if got := string(plan.Files["a.go"]); got != "01XX456789" {
		t.Errorf("rewritten = %q; the skipped fix must leave no partial edit", got)
	}
}

func TestPlanFixesIdenticalEditsCollapse(t *testing.T) {
	src := map[string][]byte{"a.go": []byte("0123456789")}
	edit := TextEdit{File: "a.go", Start: 4, End: 4, NewText: "!"}
	diags := []Diagnostic{
		{Check: "x", File: "a.go", Line: 1, Fix: &SuggestedFix{Message: "m", Edits: []TextEdit{edit}}},
		{Check: "x", File: "a.go", Line: 2, Fix: &SuggestedFix{Message: "m", Edits: []TextEdit{edit}}},
	}
	plan, err := PlanFixes(diags, src)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Applied != 2 || len(plan.Skipped) != 0 {
		t.Fatalf("applied = %d, skipped = %d; identical edits collapse without conflict", plan.Applied, len(plan.Skipped))
	}
	if got := string(plan.Files["a.go"]); got != "0123!456789" {
		t.Errorf("rewritten = %q, want the insert applied exactly once", got)
	}
}

func TestPlanFixesOutOfBoundsIsError(t *testing.T) {
	src := map[string][]byte{"a.go": []byte("short")}
	diags := []Diagnostic{{Check: "x", File: "a.go", Fix: &SuggestedFix{
		Message: "stale", Edits: []TextEdit{{File: "a.go", Start: 3, End: 99, NewText: "?"}},
	}}}
	if _, err := PlanFixes(diags, src); err == nil {
		t.Fatal("stale out-of-bounds edit must fail the plan, not be skipped")
	}
}

func TestFixPlanWriteAbortsOnMissingTarget(t *testing.T) {
	// Files are written in sorted order; if an early target vanished
	// since analysis, Write must error out before touching later files.
	root := t.TempDir()
	for _, name := range []string{"a.go", "b.go"} {
		if err := os.WriteFile(filepath.Join(root, name), []byte("original\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	plan := &FixPlan{Files: map[string][]byte{
		"a.go": []byte("rewritten a\n"),
		"b.go": []byte("rewritten b\n"),
	}}
	if err := os.Remove(filepath.Join(root, "a.go")); err != nil {
		t.Fatal(err)
	}
	if err := plan.Write(root); err == nil {
		t.Fatal("Write must fail when a fix target vanished")
	}
	got, err := os.ReadFile(filepath.Join(root, "b.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original\n" {
		t.Errorf("b.go = %q; a failed Write must not leave later files rewritten", got)
	}
}
