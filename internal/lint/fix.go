package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ares-cps/ares/internal/campaign"
)

// This file is the suggested-fix engine behind `areslint -fix` and
// `-diff`. Analyzers attach SuggestedFix values (byte-offset TextEdits)
// to diagnostics; PlanFixes folds every fix over the original sources
// into per-file rewritten contents, and FixPlan.Write finalizes each
// file atomically (campaign.WriteFileAtomic: temp + fsync + rename), so
// an interrupted -fix never leaves a torn source file.
//
// Conflict policy: identical edits from different diagnostics collapse
// into one (two wirestrict findings on the same decoder suggest the same
// insertion); after deduplication, a fix any of whose edits overlaps an
// already-accepted edit is skipped whole — fixes apply all-or-nothing,
// and the skip is reported so the user can re-run after the first batch.
// Fixes are considered in diagnostic order (file, line, col, check,
// message), so the plan is deterministic for a given report.

// A FixPlan is the resolved outcome of applying every applicable fix in
// a report to the sources it was computed from.
type FixPlan struct {
	// Files maps each display path (as diagnostics print it) to its
	// rewritten content. Only files with at least one accepted edit
	// appear.
	Files map[string][]byte
	// Applied counts fixes folded into Files.
	Applied int
	// Skipped lists the diagnostics whose fix was rejected because an
	// edit overlapped an already-accepted one.
	Skipped []Diagnostic

	orig map[string][]byte
}

// PlanFixes resolves the fixes carried by diags against src (display
// path → original bytes, as Package.Src provides). Diagnostics without a
// fix are ignored. An edit pointing outside its file's bounds — stale
// offsets from a source changed since analysis — fails the whole plan:
// that is a caller bug, not a conflict to skip.
func PlanFixes(diags []Diagnostic, src map[string][]byte) (*FixPlan, error) {
	plan := &FixPlan{Files: make(map[string][]byte), orig: src}
	type span struct{ start, end int }
	accepted := make(map[string][]span) // file → claimed half-open ranges
	editsByFile := make(map[string][]TextEdit)
	seen := make(map[string]bool) // dedupe key → already claimed

	overlaps := func(file string, e TextEdit) bool {
		for _, s := range accepted[file] {
			// Proper range intersection; also an insert strictly inside a
			// replaced range.
			if e.Start < s.end && s.start < e.End {
				return true
			}
			// Two inserts at the same offset: application order would be
			// ambiguous, so the second is a conflict.
			if e.Start == e.End && s.start == s.end && e.Start == s.start {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		ok := true
		var fresh []TextEdit
		for _, e := range d.Fix.Edits {
			data, have := src[e.File]
			if !have {
				return nil, fmt.Errorf("lint: fix for %s edits unknown file %s", d.File, e.File)
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(data) {
				return nil, fmt.Errorf("lint: fix edit out of bounds: %s [%d,%d) of %d bytes", e.File, e.Start, e.End, len(data))
			}
			key := fmt.Sprintf("%s\x00%d\x00%d\x00%s", e.File, e.Start, e.End, e.NewText)
			if seen[key] {
				continue // identical edit already claimed: collapses, no conflict
			}
			if overlaps(e.File, e) {
				ok = false
				break
			}
			fresh = append(fresh, e)
		}
		if !ok {
			plan.Skipped = append(plan.Skipped, d)
			continue
		}
		for _, e := range fresh {
			key := fmt.Sprintf("%s\x00%d\x00%d\x00%s", e.File, e.Start, e.End, e.NewText)
			seen[key] = true
			accepted[e.File] = append(accepted[e.File], span{e.Start, e.End})
			editsByFile[e.File] = append(editsByFile[e.File], e)
		}
		plan.Applied++
	}

	for file, edits := range editsByFile {
		// Apply back-to-front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		out := append([]byte(nil), src[file]...)
		for _, e := range edits {
			out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
		}
		plan.Files[file] = out
	}
	return plan, nil
}

// Write finalizes every rewritten file under root, each atomically. The
// original file's permissions are preserved; a file that vanished since
// analysis is an error before anything is written to it.
func (p *FixPlan) Write(root string) error {
	files := make([]string, 0, len(p.Files))
	for f := range p.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, filepath.FromSlash(f))
		}
		st, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("lint: fix target: %w", err)
		}
		if err := campaign.WriteFileAtomic(path, p.Files[f], st.Mode().Perm()); err != nil {
			return fmt.Errorf("lint: apply fix to %s: %w", f, err)
		}
	}
	return nil
}

// Diff renders a unified diff of the plan, file by file in sorted order —
// the `-diff` preview.
func (p *FixPlan) Diff() string {
	files := make([]string, 0, len(p.Files))
	for f := range p.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	var b strings.Builder
	for _, f := range files {
		b.WriteString(unifiedDiff(f, p.orig[f], p.Files[f]))
	}
	return b.String()
}

// unifiedDiff computes a line-based unified diff (context 3) between two
// versions of one file. An O(n·m) LCS table is fine at source-file scale.
func unifiedDiff(name string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al := splitLines(string(a))
	bl := splitLines(string(b))

	// LCS lengths.
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	// Walk the table into an op list: ' ' keep, '-' delete, '+' insert.
	type op struct {
		kind byte
		text string
	}
	var ops []op
	for i, j := 0, 0; i < n || j < m; {
		switch {
		case i < n && j < m && al[i] == bl[j]:
			ops = append(ops, op{' ', al[i]})
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			ops = append(ops, op{'+', bl[j]})
			j++
		default:
			ops = append(ops, op{'-', al[i]})
			i++
		}
	}

	const ctx = 3
	var out strings.Builder
	fmt.Fprintf(&out, "--- a/%s\n+++ b/%s\n", name, name)
	// Group ops into hunks with ctx lines of context.
	i := 0
	aLine, bLine := 1, 1
	for i < len(ops) {
		if ops[i].kind == ' ' {
			aLine++
			bLine++
			i++
			continue
		}
		// Hunk start: back up ctx context lines.
		start := i
		lead := 0
		for start > 0 && lead < ctx && ops[start-1].kind == ' ' {
			start--
			lead++
		}
		hunkA, hunkB := aLine-lead, bLine-lead
		// Extend through changes, closing after ctx*2 unbroken keeps.
		end := i
		keeps := 0
		for end < len(ops) {
			if ops[end].kind == ' ' {
				keeps++
				if keeps > ctx*2 {
					break
				}
			} else {
				keeps = 0
			}
			end++
		}
		// Trim trailing context beyond ctx.
		trail := 0
		for end > i && ops[end-1].kind == ' ' {
			trail++
			end--
		}
		if trail > ctx {
			trail = ctx
		}
		end += trail

		var aCount, bCount int
		var body strings.Builder
		for _, o := range ops[start:end] {
			body.WriteByte(o.kind)
			body.WriteString(o.text)
			body.WriteByte('\n')
			switch o.kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(&out, "@@ -%d,%d +%d,%d @@\n%s", hunkA, aCount, hunkB, bCount, body.String())
		for _, o := range ops[i:end] {
			switch o.kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		i = end
	}
	return out.String()
}

// splitLines splits without losing a trailing newline-less line.
func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// SourcesOf merges the per-package source maps of pkgs into the single
// display-path → bytes map PlanFixes consumes.
func SourcesOf(pkgs []*Package) map[string][]byte {
	src := make(map[string][]byte)
	for _, pkg := range pkgs {
		for name, data := range pkg.Src {
			src[name] = data
		}
	}
	return src
}
