package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the whole-program view the interprocedural analyzers
// (dettaint, wirestrict, goleak, fpreassoc) consult: a static call graph
// over every declared function in the loaded module closure, condensed
// into strongly connected components so per-function facts (flow.go) can
// be propagated bottom-up — callees first, callers after — with a small
// fixpoint inside each recursion cycle.
//
// Two structural properties keep this cheap and incremental:
//
//   - Go imports are acyclic, so every call cycle is intra-package. The
//     SCC pass (Tarjan) therefore runs one package at a time, after that
//     package's imports have been processed, and never revisits a
//     finished package.
//   - Facts form a join semilattice (bit-union for the monotone facts, a
//     bounded all-sites conjunction for the wire-decode summary), so the
//     fixpoint is unique regardless of iteration order — the analysis
//     report stays bit-identical at any worker count and between cold
//     and warm cache runs.

// A FuncInfo is one declared function (or method) with a body, plus the
// static call edges out of it. Calls made inside nested function literals
// are attributed to the enclosing declaration: for lifetime and taint
// facts a closure's behavior is its owner's behavior.
type FuncInfo struct {
	// Fn is the go/types object for the declaration.
	Fn *types.Func
	// Decl is the syntax, body included.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Callees are the statically resolved callees, in first-call source
	// order, deduplicated. Calls through interfaces and function values
	// do not resolve and are treated as fact-free (conservative for
	// conjunctive facts, silent for disjunctive ones).
	Callees []*types.Func
}

// A Program is the interprocedural view over one or more analysis target
// packages and their module-internal dependency closure. Build it once
// with NewProgram, then read it from any number of goroutines: all maps
// are frozen after construction.
type Program struct {
	info  map[*types.Func]*FuncInfo
	facts map[*types.Func]Facts
	wire  map[*types.Func]wireFacts
	done  map[*Package]bool
	pkgs  []*Package // every processed package, dependency order
}

// NewProgram computes the call graph and function facts for pkgs and
// every module-internal package they transitively import.
func NewProgram(pkgs []*Package) *Program {
	pr := &Program{
		info:  make(map[*types.Func]*FuncInfo),
		facts: make(map[*types.Func]Facts),
		wire:  make(map[*types.Func]wireFacts),
		done:  make(map[*Package]bool),
	}
	for _, pkg := range pkgs {
		pr.ensure(pkg)
	}
	return pr
}

// Add extends the program with pkg (and its unprocessed dependencies) —
// the incremental entry point the lint cache uses to grow a Program one
// cache miss at a time. Facts are a unique least fixpoint, so growing a
// Program miss-by-miss yields exactly the facts a cold whole-module
// NewProgram computes.
func (pr *Program) Add(pkg *Package) { pr.ensure(pkg) }

// ensure processes pkg after its imports: collects its function
// declarations and call edges, then runs the SCC fact pass (flow.go).
func (pr *Program) ensure(pkg *Package) {
	if pr.done[pkg] {
		return
	}
	pr.done[pkg] = true
	// Imports first: facts are bottom-up, and import cycles are
	// impossible, so the recursion terminates with callee facts ready.
	deps := make([]string, 0, len(pkg.Imports))
	for path := range pkg.Imports {
		deps = append(deps, path)
	}
	sort.Strings(deps)
	for _, path := range deps {
		pr.ensure(pkg.Imports[path])
	}

	var fns []*FuncInfo
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg, Callees: calleesOf(pkg, fd.Body)}
			pr.info[fn] = fi
			fns = append(fns, fi)
		}
	}
	pr.pkgs = append(pr.pkgs, pkg)
	pr.computeFacts(fns)
}

// calleesOf statically resolves every call under body (nested literals
// included) to its *types.Func, deduplicated in first-call order.
func calleesOf(pkg *Package, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := staticCallee(pkg, call); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// staticCallee resolves a call expression to a declared function or
// method object, when the target is statically known.
func staticCallee(pkg *Package, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[f.Sel]
	case *ast.IndexExpr: // generic instantiation: f[T](...)
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			obj = pkg.Info.Uses[id]
		}
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// InfoFor returns the FuncInfo for fn, or nil when fn has no body in the
// loaded closure (stdlib, interface methods, function values).
func (pr *Program) InfoFor(fn *types.Func) *FuncInfo { return pr.info[fn] }

// FactsFor returns the propagated facts for fn (zero for unknown
// functions).
func (pr *Program) FactsFor(fn *types.Func) Facts { return pr.facts[fn] }

// WireFor returns the wire-decode summary for fn.
func (pr *Program) WireFor(fn *types.Func) wireFacts { return pr.wire[fn] }

// computeFacts runs Tarjan's SCC algorithm over one package's functions
// (cross-package edges point at already-finished packages) and evaluates
// each component's facts to a fixpoint, callees first.
func (pr *Program) computeFacts(fns []*FuncInfo) {
	index := make(map[*FuncInfo]int, len(fns))
	low := make(map[*FuncInfo]int, len(fns))
	onStack := make(map[*FuncInfo]bool, len(fns))
	var stack []*FuncInfo
	next := 0

	var strongconnect func(fi *FuncInfo)
	strongconnect = func(fi *FuncInfo) {
		index[fi] = next
		low[fi] = next
		next++
		stack = append(stack, fi)
		onStack[fi] = true

		for _, callee := range fi.Callees {
			ci := pr.info[callee]
			if ci == nil || ci.Pkg != fi.Pkg {
				continue // external, or a finished package: facts final
			}
			if _, seen := index[ci]; !seen {
				strongconnect(ci)
				if low[ci] < low[fi] {
					low[fi] = low[ci]
				}
			} else if onStack[ci] && index[ci] < low[fi] {
				low[fi] = index[ci]
			}
		}

		if low[fi] == index[fi] {
			var scc []*FuncInfo
			for {
				n := len(stack) - 1
				m := stack[n]
				stack = stack[:n]
				onStack[m] = false
				scc = append(scc, m)
				if m == fi {
					break
				}
			}
			pr.evalSCC(scc)
		}
	}
	for _, fi := range fns {
		if _, seen := index[fi]; !seen {
			strongconnect(fi)
		}
	}
}

// evalSCC iterates local fact extraction over one component until no
// member's facts change. Facts only grow (and the wire summary only
// moves down a finite lattice), so the loop terminates; components are
// near-always singletons.
func (pr *Program) evalSCC(scc []*FuncInfo) {
	for {
		changed := false
		for _, fi := range scc {
			facts, wire := localFacts(pr, fi)
			if facts != pr.facts[fi.Fn] || wire != pr.wire[fi.Fn] {
				pr.facts[fi.Fn] = facts
				pr.wire[fi.Fn] = wire
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
