package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repo's cancellation discipline: a function that
// receives a context.Context threads it down — it does not mint a fresh
// context.Background()/TODO() that detaches callees from the caller's
// cancellation — and every goroutine launched outside tests is either
// cancellable (sees a ctx), awaited (WaitGroup or a result/done channel)
// or delegated to the internal/par pool primitives. Fire-and-forget
// goroutines are how drains hang and tests leak.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "thread received contexts into callees; no unawaited, uncancellable goroutines",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	p.funcBodies(func(params *ast.FieldList, body *ast.BlockStmt) {
		checkCtxThreading(p, params, body)
		checkGoStmts(p, body)
	})
}

// hasCtxParam reports whether a parameter list includes a
// context.Context.
func hasCtxParam(p *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, f := range params.List {
		if isContextType(p.Pkg.Info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// checkCtxThreading flags context.Background()/context.TODO() calls in a
// function that already receives a context. Nested literals that declare
// their own ctx parameter are skipped here — they are checked on their
// own visit.
func checkCtxThreading(p *Pass, params *ast.FieldList, body *ast.BlockStmt) {
	if !hasCtxParam(p, params) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && hasCtxParam(p, lit.Type.Params) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := p.callee(call)
		if isPkgObj(obj, "context", "Background") || isPkgObj(obj, "context", "TODO") {
			p.Reportf(call.Pos(), "context.%s() inside a function that receives a ctx — thread the caller's context (or suppress with a reason if detaching is deliberate)", obj.Name())
		}
		return true
	})
}

// checkGoStmts flags go statements with no cancellation or join
// mechanism. Nested function literals are skipped — funcBodies visits
// them separately.
func checkGoStmts(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Visited separately by funcBodies; its own go statements are
			// checked there.
			return false
		}
		if gs, ok := n.(*ast.GoStmt); ok && !goStmtManaged(p, gs, body) {
			p.Reportf(gs.Pos(), "goroutine is neither cancellable nor awaited — give it a ctx, register it with a WaitGroup or result channel, or use the internal/par primitives")
		}
		return true
	})
}

// goStmtManaged reports whether a go statement has a visible lifecycle:
// the spawned body (for a literal) references a context, WaitGroup, par
// helper or channel operation, an argument passes one in, or — for a
// named function — the enclosing body coordinates through a WaitGroup.
func goStmtManaged(p *Pass, gs *ast.GoStmt, enclosing *ast.BlockStmt) bool {
	for _, arg := range gs.Call.Args {
		if exprTouchesLifecycle(p, arg) {
			return true
		}
	}
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return exprTouchesLifecycle(p, lit.Body)
	}
	// Named function or method value: accept a WaitGroup coordinated in
	// the launching function (s.wg.Add(1); go s.worker()).
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isWaitGroupType(p.Pkg.Info.TypeOf(e)) {
			found = true
		}
		return !found
	})
	return found
}

// exprTouchesLifecycle reports whether the AST under n mentions a
// context, a WaitGroup, a par helper, or a channel operation
// (send/receive/close) — any of which ties the goroutine to a lifecycle.
func exprTouchesLifecycle(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if m.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Pkg.Info.TypeOf(m.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(m.Fun).(*ast.Ident); ok && id.Name == "close" && p.Pkg.Info.Uses[id] == nil {
				found = true
			}
			if obj := p.callee(m); obj != nil && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "internal/par") {
				found = true
			}
		case ast.Expr:
			if t := p.Pkg.Info.TypeOf(m); isContextType(t) || isWaitGroupType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
