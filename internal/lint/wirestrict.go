package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// WireStrict enforces the repository's strict-decode convention on wire
// boundaries, interprocedurally. internal/dist and internal/serve
// established the contract: every JSON document arriving over HTTP (or
// read back from an artifact file) is decoded with DisallowUnknownFields,
// checked for trailing data, and read through a size cap — so a typoed
// field cannot silently select defaults and a hostile body cannot balloon
// memory. A new endpoint that decodes r.Body with a bare json.NewDecoder
// bypasses all three; so does a helper that decodes leniently three calls
// away from the handler that owns the body. The analyzer computes a
// per-function wire-decode summary (flow.go) and checks both the direct
// decode sites and every call site where a request/response body flows
// into a decoding helper.
var WireStrict = &Analyzer{
	Name: "wirestrict",
	Doc:  "wire-boundary JSON decodes disallow unknown fields, reject trailing data, and sit behind a size cap",
	Run:  runWireStrict,
}

func runWireStrict(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		checkWireDecodes(p, fd.Body)
		return true
	})
}

// checkWireDecodes walks one function body for (a) direct decode sites
// whose reader derives from an HTTP body or opened file, and (b) calls
// forwarding such a reader into a function whose summary says it decodes
// its parameters.
func checkWireDecodes(p *Pass, body *ast.BlockStmt) {
	for _, site := range decodeSites(p.Pkg, body) {
		if !isWireReader(p, site.reader) {
			continue
		}
		reportLooseSite(p, site)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := staticCallee(p.Pkg, call)
		if !ok {
			return true
		}
		sum := p.Prog.WireFor(fn)
		if !sum.Decodes {
			return true
		}
		for _, arg := range call.Args {
			if !isWireReader(p, arg) {
				continue
			}
			var missing []string
			if !sum.Strict {
				missing = append(missing, "DisallowUnknownFields")
			}
			if !sum.Trailing {
				missing = append(missing, "a trailing-data check")
			}
			if !sum.Caps && !exprHasCap(p.Pkg, arg) {
				missing = append(missing, "a size cap (http.MaxBytesReader / io.LimitReader)")
			}
			if len(missing) > 0 {
				p.Reportf(call.Pos(), "wire input flows into %s, which decodes it without %s — wire boundaries decode strictly (see internal/dist/wire.go)", calleeLabel(fn), strings.Join(missing, ", "))
			}
		}
		return true
	})
}

// reportLooseSite reports one direct decode site missing any of the
// three strictness properties, attaching a mechanical fix when the only
// gap is the DisallowUnknownFields call on a named decoder.
func reportLooseSite(p *Pass, site decodeSite) {
	var missing []string
	if !site.facts.Strict {
		missing = append(missing, "DisallowUnknownFields")
	}
	if !site.facts.Trailing {
		missing = append(missing, "a trailing-data check (second Decode against io.EOF, or More)")
	}
	if !site.facts.Caps {
		missing = append(missing, "a size cap (http.MaxBytesReader / io.LimitReader)")
	}
	if len(missing) == 0 {
		return
	}
	var fix *SuggestedFix
	if !site.facts.Strict && site.decl != nil {
		fix = disallowUnknownFix(p, site)
	}
	p.ReportFix(site.call.Pos(), fix,
		fmt.Sprintf("JSON decode on a wire boundary without %s — wire boundaries decode strictly (see internal/dist/wire.go)", strings.Join(missing, ", ")))
}

// disallowUnknownFix builds the insertion of dec.DisallowUnknownFields()
// on the line after the decoder binding.
func disallowUnknownFix(p *Pass, site decodeSite) *SuggestedFix {
	id, ok := unparen(site.decl.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	pos := p.Pkg.Fset.Position(site.decl.Pos())
	end := p.Pkg.Fset.Position(site.decl.End())
	src, ok := p.Pkg.Src[pos.Filename]
	if !ok || pos.Offset >= len(src) {
		return nil
	}
	// Reuse the binding line's indentation for the inserted call.
	lineStart := pos.Offset
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	indent := src[lineStart:pos.Offset]
	if len(strings.TrimSpace(string(indent))) > 0 {
		indent = nil
	}
	return &SuggestedFix{
		Message: "insert " + id.Name + ".DisallowUnknownFields() after the decoder binding",
		Edits: []TextEdit{{
			File:    pos.Filename,
			Start:   end.Offset,
			End:     end.Offset,
			NewText: "\n" + string(indent) + id.Name + ".DisallowUnknownFields()",
		}},
	}
}

// isWireReader reports whether the expression chain carries wire input: a
// .Body selector on *http.Request or *http.Response, an
// http.MaxBytesReader result, or a file opened by os.Open/os.OpenFile.
func isWireReader(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name != "Body" {
				return true
			}
			t := p.Pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "net/http" &&
				(named.Obj().Name() == "Request" || named.Obj().Name() == "Response") {
				found = true
			}
		case *ast.CallExpr:
			if fn, ok := staticCallee(p.Pkg, n); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() + "." + fn.Name() {
				case "net/http.MaxBytesReader", "os.Open", "os.OpenFile":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
