package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// cacheModule is a two-package module: core (the lint target) calls into
// base. The detrand finding in core keeps the target's report non-empty.
func cacheModule() map[string]string {
	return map[string]string{
		"base/base.go": `package base

// Stamp returns a fixed epoch.
func Stamp() int64 { return 42 }
`,
		"core/core.go": `package core

import (
	"time"

	"fixture.test/base"
)

func derive(seed int64) int64 {
	return seed ^ base.Stamp()
}

func now() int64 {
	return time.Now().UnixNano()
}
`,
	}
}

// runCachedModule runs RunCached over a module with a fresh-opened cache
// at path.
func runCachedModule(t *testing.T, root, path, config string, patterns ...string) ([]Diagnostic, CacheStats, *Cache) {
	t.Helper()
	c := OpenCache(path, config)
	diags, stats, err := RunCached(root, patterns, All(), 0, c)
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats, c
}

func TestCachedRunMatchesUncachedAndWarmRunIsIdentical(t *testing.T) {
	root := writeModule(t, cacheModule())
	cachePath := filepath.Join(t.TempDir(), "lint.cache")

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("core")
	if err != nil {
		t.Fatal(err)
	}
	uncached := Run(pkgs, All(), 0)
	if len(uncached) == 0 {
		t.Fatal("fixture must produce findings")
	}

	cold, coldStats, c := runCachedModule(t, root, cachePath, "all", "core")
	if coldStats.Hits != 0 || coldStats.Misses != 1 {
		t.Errorf("cold stats = %+v, want 0 hits / 1 miss", coldStats)
	}
	if !reflect.DeepEqual(cold, uncached) {
		t.Errorf("cached cold run differs from Run:\ncached: %v\nuncached: %v", cold, uncached)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	warm, warmStats, _ := runCachedModule(t, root, cachePath, "all", "core")
	if warmStats.Hits != 1 || warmStats.Misses != 0 {
		t.Errorf("warm stats = %+v, want 1 hit / 0 misses", warmStats)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("warm run differs from cold:\nwarm: %v\ncold: %v", warm, cold)
	}
}

func TestCacheInvalidatesOnSourceChange(t *testing.T) {
	files := cacheModule()
	root := writeModule(t, files)
	cachePath := filepath.Join(t.TempDir(), "lint.cache")

	cold, _, c := runCachedModule(t, root, cachePath, "all", "core")
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	// Add a second violation to the target package.
	edited := files["core/core.go"] + `
func later() int64 {
	return time.Now().UnixNano()
}
`
	if err := os.WriteFile(filepath.Join(root, "core", "core.go"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, stats, _ := runCachedModule(t, root, cachePath, "all", "core")
	if stats.Misses != 1 {
		t.Errorf("stats after source edit = %+v, want the target re-analyzed", stats)
	}
	if len(diags) <= len(cold) {
		t.Errorf("edited source must add a finding: before %d, after %d", len(cold), len(diags))
	}
}

func TestCacheInvalidatesOnConfigChange(t *testing.T) {
	root := writeModule(t, cacheModule())
	cachePath := filepath.Join(t.TempDir(), "lint.cache")

	_, _, c := runCachedModule(t, root, cachePath, "detrand,dettaint", "core")
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	_, stats, _ := runCachedModule(t, root, cachePath, "detrand", "core")
	if stats.Hits != 0 || stats.Misses != 1 {
		t.Errorf("stats under a different config = %+v, want a full miss", stats)
	}
}

func TestCacheInvalidatesOnDependencyFactChange(t *testing.T) {
	files := cacheModule()
	root := writeModule(t, files)
	cachePath := filepath.Join(t.TempDir(), "lint.cache")
	basePath := filepath.Join(root, "base", "base.go")

	cold, _, c := runCachedModule(t, root, cachePath, "all", "core")
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	for _, d := range cold {
		if d.Check == "dettaint" {
			t.Fatalf("pure base must not trip dettaint yet: %s", d)
		}
	}

	// A comment-only edit to the dependency changes its source hash but
	// not its fact signature: the target stays cached.
	if err := os.WriteFile(basePath, []byte(`package base

// Stamp returns a fixed epoch. (Comment edited; facts unchanged.)
func Stamp() int64 { return 42 }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	warm, stats, c2 := runCachedModule(t, root, cachePath, "all", "core")
	if stats.Hits != 1 || stats.Misses != 0 {
		t.Errorf("stats after comment-only dep edit = %+v, want the target to stay cached", stats)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("report changed across a fact-preserving dep edit:\n%v\n%v", warm, cold)
	}
	if err := c2.Save(); err != nil {
		t.Fatal(err)
	}

	// Making the dependency nondeterministic changes its fact signature:
	// the target re-analyzes and its seeded caller now trips dettaint.
	if err := os.WriteFile(basePath, []byte(`package base

import "time"

// Stamp now reaches the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, stats2, _ := runCachedModule(t, root, cachePath, "all", "core")
	if stats2.Misses != 1 {
		t.Errorf("stats after fact-changing dep edit = %+v, want the target re-analyzed", stats2)
	}
	found := false
	for _, d := range diags {
		if d.Check == "dettaint" && d.File == "core/core.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("dependency fact change must surface the dettaint finding in the target; got %v", diags)
	}
}

func TestCorruptCacheSelfHeals(t *testing.T) {
	root := writeModule(t, cacheModule())
	cachePath := filepath.Join(t.TempDir(), "lint.cache")

	cold, _, c := runCachedModule(t, root, cachePath, "all", "core")
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	for name, garbage := range map[string]string{
		"truncated":    `{"version": "areslint-cache-v2", "entries": {`,
		"not-json":     "\x00\x01not a cache",
		"version-skew": `{"version": "areslint-cache-v0", "entries": {}}`,
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(cachePath, []byte(garbage), 0o644); err != nil {
				t.Fatal(err)
			}
			diags, stats, c := runCachedModule(t, root, cachePath, "all", "core")
			if stats.Hits != 0 || stats.Misses != 1 {
				t.Errorf("corrupt cache must degrade to a cold run, stats = %+v", stats)
			}
			if !reflect.DeepEqual(diags, cold) {
				t.Errorf("report under a corrupt cache differs:\n%v\n%v", diags, cold)
			}
			// Saving heals the file: the next run is warm again.
			if err := c.Save(); err != nil {
				t.Fatal(err)
			}
			_, healed, _ := runCachedModule(t, root, cachePath, "all", "core")
			if healed.Hits != 1 || healed.Misses != 0 {
				t.Errorf("cache did not self-heal after save, stats = %+v", healed)
			}
		})
	}
}

func TestCachedRunDeterministicAcrossWorkers(t *testing.T) {
	root := writeModule(t, cacheModule())
	var base []Diagnostic
	for i, workers := range []int{1, 2, 8} {
		c := OpenCache(filepath.Join(t.TempDir(), "lint.cache"), "all")
		got, _, err := RunCached(root, []string{"core", "base"}, All(), workers, c)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: cached report not deterministic", workers)
		}
	}
}

// BenchmarkLintColdVsWarm measures the incremental cache's effect over
// the analyzer fixture tree: cold type-checks every package, warm
// answers from fact-keyed entries after an ImportsOnly scan.
func BenchmarkLintColdVsWarm(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	patterns := []string{"internal/lint/testdata/src/..."}
	analyzers := All()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := OpenCache(filepath.Join(b.TempDir(), "lint.cache"), "all")
			if _, _, err := RunCached(root, patterns, analyzers, 0, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "lint.cache")
		c := OpenCache(path, "all")
		if _, _, err := RunCached(root, patterns, analyzers, 0, c); err != nil {
			b.Fatal(err)
		}
		if err := c.Save(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := OpenCache(path, "all")
			if _, _, err := RunCached(root, patterns, analyzers, 0, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}
