package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrClose reports discarded Close/Flush/Sync errors on files opened for
// writing. A write error surfacing only at Close (delayed flush, full
// disk) silently truncates campaign artifacts and CSV exports; the repo's
// rule is to check the error on write paths — finalize whole artifacts
// with campaign.WriteFileAtomic where a torn file must never be visible —
// and to acknowledge best-effort closes on error paths explicitly with
// `_ = f.Close()`.
var ErrClose = &Analyzer{
	Name: "errclose",
	Doc:  "no discarded Close/Flush/Sync errors on files opened for writing",
	Run:  runErrClose,
}

// writableOpeners are the calls whose result is a file the process
// intends to write.
var writableOpeners = map[string]bool{"Create": true, "OpenFile": true, "CreateTemp": true}

func runErrClose(p *Pass) {
	// Whole declarations, literals included: closures (cleanup funcs,
	// deferred finalizers) capture the files their enclosing function
	// opened.
	p.inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		checkDiscardedCloses(p, fd.Body)
		return true
	})
}

func checkDiscardedCloses(p *Pass, body *ast.BlockStmt) {
	// Pass 1: variables holding writable files — assigned from
	// os.Create/os.OpenFile/os.CreateTemp, or buffered writers wrapping
	// one (bufio.NewWriter(f)).
	writable := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := p.callee(call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		opensWritable := obj.Pkg().Path() == "os" && writableOpeners[obj.Name()]
		if !opensWritable && obj.Pkg().Path() == "bufio" && obj.Name() == "NewWriter" {
			if len(call.Args) == 1 {
				if root := rootIdent(call.Args[0]); root != nil && writable[identObject(p, root)] {
					opensWritable = true
				}
			}
		}
		if !opensWritable || len(as.Lhs) == 0 {
			return true
		}
		if root := rootIdent(as.Lhs[0]); root != nil {
			if o := identObject(p, root); o != nil {
				writable[o] = true
			}
		}
		return true
	})
	if len(writable) == 0 {
		return
	}

	// Pass 2: Close/Flush/Sync calls on those variables whose error
	// result is dropped on the floor — a bare expression statement or a
	// bare defer. Assigning the error (even to _) is an explicit,
	// greppable acknowledgement and is allowed.
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		fixable := false // a bare statement can take `_ = `; a defer cannot
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = unparen(n.X).(*ast.CallExpr)
			fixable = true
		case *ast.DeferStmt:
			call = n.Call
		default:
			return true
		}
		if call == nil {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Close" && name != "Flush" && name != "Sync" {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || !writable[identObject(p, root)] {
			return true
		}
		if !returnsError(p.Pkg.Info.Uses[sel.Sel]) {
			return true
		}
		var fix *SuggestedFix
		if fixable {
			if edit, ok := p.editAt(call.Pos(), call.Pos(), "_ = "); ok {
				fix = &SuggestedFix{
					Message: "acknowledge the discard explicitly with `_ = " + root.Name + "." + name + "()`",
					Edits:   []TextEdit{edit},
				}
			}
		}
		p.ReportFix(call.Pos(), fix, fmt.Sprintf("%s.%s() error discarded on a file opened for writing — check it (write errors can surface only at %s; use campaign.WriteFileAtomic for must-not-tear artifacts, or `_ = %s.%s()` on best-effort error paths)",
			root.Name, name, name, root.Name, name))
		return true
	})
}

// returnsError reports whether obj is a function whose last result is an
// error (csv.Writer.Flush, which returns nothing, must not be flagged).
func returnsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return last.String() == "error"
}
