package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak reports goroutine spawns that provably escape their spawner:
// nothing in the spawned body, its transitive callees, or the values it
// was handed observes a lifecycle (context, channel, WaitGroup or
// internal/par primitive), so nothing can cancel the goroutine or wait
// for it. In this codebase every long-lived goroutine is joined — serve's
// worker pool drains on Close, dist's heartbeat loops exit with their
// context — because an unjoined goroutine can hold a store lock or append
// to an artifact after the test that spawned it returned, which shows up
// as rare CI-only corruption. The check is interprocedural: a goroutine
// whose body is `helper()` is fine when helper three packages away ranges
// over a channel, and flagged when nothing it reaches ever can be told to
// stop.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines must be cancellable or awaitable: a context, channel, WaitGroup or par primitive, locally or in a transitive callee",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goStmtLifecycled(p, gs) {
			return true
		}
		p.Reportf(gs.Pos(), "goroutine has no lifecycle: nothing it runs or was handed is a context, channel, WaitGroup or internal/par primitive, so it can neither be cancelled nor awaited")
		return true
	})
}

// goStmtLifecycled reports whether the spawned goroutine is provably
// joinable or cancellable. Unresolvable targets (interface methods,
// function values) stay silent: the analyzer only reports what it can
// prove escapes.
func goStmtLifecycled(p *Pass, gs *ast.GoStmt) bool {
	// A lifecycle value passed into the goroutine (a channel, context or
	// WaitGroup argument) is a join handle even if we cannot see the body.
	for _, arg := range gs.Call.Args {
		if exprCarriesLifecycle(p, arg) {
			return true
		}
	}
	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return funcLitLifecycled(p, fun)
	default:
		fn, ok := staticCallee(p.Pkg, gs.Call)
		if !ok {
			return true // function value: target unknown, stay silent
		}
		if p.Prog.InfoFor(fn) == nil {
			return true // external body (stdlib, interface): unprovable
		}
		// Method values close over their receiver; a receiver holding
		// channels is typical (w.run reads w.stop). The facts already
		// cover that: FactLifecycled is set when the body touches one.
		return p.Prog.FactsFor(fn)&FactLifecycled != 0
	}
}

// funcLitLifecycled reports whether a spawned literal observes a
// lifecycle directly or through a transitive callee.
func funcLitLifecycled(p *Pass, lit *ast.FuncLit) bool {
	if bodyTouchesLifecycle(p.Pkg, lit.Body) {
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := staticCallee(p.Pkg, call); ok && p.Prog.FactsFor(fn)&FactLifecycled != 0 {
			found = true
		}
		return !found
	})
	return found
}

// exprCarriesLifecycle reports whether e contains a value of a lifecycle
// type: a channel, a context, or a *sync.WaitGroup.
func exprCarriesLifecycle(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := p.Pkg.Info.TypeOf(ex)
		if t == nil {
			return true
		}
		if isContextType(t) || isWaitGroupType(t) {
			found = true
			return false
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			found = true
		}
		return !found
	})
	return found
}
