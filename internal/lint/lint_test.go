package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk and returns its
// root. Keys are slash-separated paths relative to the root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture.test\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// lintModule loads the given patterns from a temp module and runs all
// analyzers.
func lintModule(t *testing.T, files map[string]string, patterns ...string) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(writeModule(t, files))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, All(), 0)
}

// checksOf extracts the check names of a diagnostic list.
func checksOf(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Check)
	}
	return out
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	diags := lintModule(t, map[string]string{
		"stats/stats.go": `package stats

import "time"

func trailing() int64 {
	return time.Now().UnixNano() //areslint:ignore detrand pinned by test
}

func above() int64 {
	//areslint:ignore detrand pinned by test
	return time.Now().UnixNano()
}

func unsuppressed() int64 {
	return time.Now().UnixNano()
}
`,
	}, "stats")
	if len(diags) != 1 || diags[0].Check != "detrand" || diags[0].Line != 15 {
		t.Fatalf("want exactly the unsuppressed finding at line 15, got %v", diags)
	}
}

func TestMalformedAndUnknownIgnoreMarkers(t *testing.T) {
	diags := lintModule(t, map[string]string{
		"stats/stats.go": `package stats

import "time"

func missingReason() int64 {
	//areslint:ignore detrand
	return time.Now().UnixNano()
}

func unknownCheck() {
	//areslint:ignore nosuchcheck some reason
}
`,
	}, "stats")
	got := strings.Join(checksOf(diags), ",")
	// The reasonless marker must not suppress: the detrand finding
	// survives, and both markers are reported under "areslint".
	want := map[string]int{"detrand": 1, "areslint": 2}
	for check, n := range want {
		if c := strings.Count(got, check); c != n {
			t.Errorf("want %d %s finding(s), got %d (all: %s)", n, check, c, got)
		}
	}
}

func TestLoaderResolvesIntraModuleImports(t *testing.T) {
	diags := lintModule(t, map[string]string{
		"base/base.go": `package base

// Seeds returns a base seed.
func Seeds() int64 { return 42 }
`,
		"core/core.go": `package core

import "fixture.test/base"

func offset() int64 {
	seed := base.Seeds()
	return seed + 1
}
`,
	}, "core")
	if len(diags) != 1 || diags[0].Check != "seedarith" {
		t.Fatalf("want one seedarith finding through an intra-module import, got %v", diags)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil diagnostics must encode as [], got %q", buf.String())
	}

	buf.Reset()
	in := []Diagnostic{{Check: "detrand", File: "a.go", Line: 3, Col: 2, Message: "m"}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestByName(t *testing.T) {
	subset, bad := ByName([]string{"detrand", "errclose"})
	if bad != "" || len(subset) != 2 || subset[0].Name != "detrand" || subset[1].Name != "errclose" {
		t.Fatalf("ByName subset = %v, %q", subset, bad)
	}
	if _, bad := ByName([]string{"nosuch"}); bad != "nosuch" {
		t.Fatalf("ByName must report the unknown name, got %q", bad)
	}
}

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"github.com/ares-cps/ares/internal/stats", "internal/stats", true},
		{"github.com/ares-cps/ares/internal/stats/sub", "internal/stats", true},
		{"github.com/ares-cps/ares/internal/statsx", "internal/stats", false},
		{"internal/stats", "internal/stats", true},
		{"xinternal/stats", "internal/stats", false},
	}
	for _, c := range cases {
		if got := pathHasSegment(c.path, c.seg); got != c.want {
			t.Errorf("pathHasSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}
