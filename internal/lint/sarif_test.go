package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteSARIFGolden pins the SARIF rendering of a fixed report.
// Regenerate deliberately with:
//
//	go test -run TestWriteSARIFGolden -update ./internal/lint
func TestWriteSARIFGolden(t *testing.T) {
	diags := []Diagnostic{
		{Check: "detrand", File: "internal/stats/boot.go", Line: 12, Col: 9,
			Message: "time.Now() in deterministic scope"},
		{Check: "wirestrict", File: "cmd/aresd/main.go", Line: 40, Col: 2,
			Message: "JSON decode on a wire boundary without a size cap"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, All()); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "sarif.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestWriteSARIFGolden -update` from internal/lint to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from %s.\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
}

// TestWriteSARIFEmptyReport checks the zero-findings document is still a
// valid single-run log (required for code-scanning uploads of clean runs).
func TestWriteSARIFEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, All()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
			Tool    struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Results == nil || len(run.Results) != 0 {
		t.Errorf("clean run must carry an empty (non-null) results array: %v", run.Results)
	}
	// Every analyzer plus the reserved marker-diagnostics rule.
	if run.Tool.Driver.Name != "areslint" || len(run.Tool.Driver.Rules) != len(All())+1 {
		t.Errorf("driver = %q with %d rules, want areslint with %d", run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(All())+1)
	}
}
