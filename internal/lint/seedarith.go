package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeedArith reports ad-hoc arithmetic on seed values (`s.Seed + 9`,
// `seed + int64(i)`). Offset schemes collide across runs — stream k of
// seed s is stream k-1 of seed s+1 — which is exactly why the repo grew
// mathx.DeriveSeed (a splitmix64 mix of base and stream). Existing
// offsets that golden reports pin are suppressed in place with
// `//areslint:ignore seedarith golden-pinned`; new code must derive.
var SeedArith = &Analyzer{
	Name: "seedarith",
	Doc:  "no ad-hoc seed+offset arithmetic — derive stream seeds with mathx.DeriveSeed",
	Run:  runSeedArith,
}

func runSeedArith(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return true
		}
		if !isIntegerExpr(p, be) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			name, ok := seedName(side)
			if !ok {
				continue
			}
			p.ReportFix(be.Pos(), deriveSeedFix(p, be),
				fmt.Sprintf("ad-hoc seed arithmetic on %s — use mathx.DeriveSeed(base, stream) so streams cannot collide across base seeds", name))
			return true // one finding per expression
		}
		return true
	})
}

// deriveSeedFix rewrites `base + stream` into mathx.DeriveSeed(base,
// stream), adding the import when missing. Subtraction has no DeriveSeed
// analogue (the stream sign matters to the caller), so only ADD is
// fixable.
func deriveSeedFix(p *Pass, be *ast.BinaryExpr) *SuggestedFix {
	if be.Op != token.ADD {
		return nil
	}
	xText, okX := p.srcText(be.X.Pos(), be.X.End())
	yText, okY := p.srcText(be.Y.Pos(), be.Y.End())
	if !okX || !okY {
		return nil
	}
	repl, ok := p.editAt(be.Pos(), be.End(), "mathx.DeriveSeed("+xText+", "+yText+")")
	if !ok {
		return nil
	}
	fix := &SuggestedFix{
		Message: "replace with mathx.DeriveSeed(" + xText + ", " + yText + ")",
		Edits:   []TextEdit{repl},
	}
	imp, ok := p.ensureImport(be.Pos(), p.Pkg.ModPath+"/internal/mathx")
	if !ok {
		return nil // no import block to extend: the rewrite would not compile
	}
	if imp != (TextEdit{}) {
		fix.Edits = append(fix.Edits, imp)
	}
	return fix
}

// seedName reports whether e is an identifier or selector whose name is
// seed-like (seed, Seed, baseSeed, cfg.Seed, ...), returning the source
// name.
func seedName(e ast.Expr) (string, bool) {
	var name string
	switch e := unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return "", false
	}
	lower := strings.ToLower(name)
	return name, lower == "seed" || strings.HasSuffix(lower, "seed")
}

// isIntegerExpr reports whether e's type is an integer kind (seeds are
// int64; untyped constants count).
func isIntegerExpr(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
