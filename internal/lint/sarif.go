package lint

import (
	"encoding/json"
	"io"
)

// Minimal SARIF 2.1.0 output (`areslint -sarif`), shaped for GitHub code
// scanning upload: one run, one driver, the analyzer catalog as rules,
// each diagnostic a result with a physical location. Only fields the
// consumer reads are emitted; everything is deterministic for a given
// report, so SARIF output honors the same byte-identical contract as the
// text and JSON forms.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. The rule catalog
// covers every analyzer in analyzers (typically All()), so a clean run
// still advertises what was checked.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// The reserved check for malformed/unknown ignore markers.
	rules = append(rules, sarifRule{ID: "areslint", ShortDescription: sarifMessage{Text: "suppression marker hygiene"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "areslint", Rules: rules}},
			Results: results,
		}},
	})
}
