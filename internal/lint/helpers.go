package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the object a call expression invokes, through any
// parentheses: a package-level function, a method, or nil for indirect
// calls, conversions and builtins.
func (p *Pass) callee(call *ast.CallExpr) types.Object {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		return p.Pkg.Info.Uses[f.Sel]
	}
	return nil
}

// isPkgObj reports whether obj is the package-level object pkgPath.name.
func isPkgObj(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// objectOf resolves an identifier or selector to its object.
func (p *Pass) objectOf(e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return p.Pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Pkg.Info.Uses[e.Sel]
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// isWaitGroupType reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t.String() == "sync.WaitGroup"
}

// pathHasSegment reports whether importPath contains seg as a complete
// `/`-separated run (e.g. seg "internal/stats" matches
// ".../internal/stats" and ".../internal/stats/sub" but not
// ".../internal/statsx").
func pathHasSegment(importPath, seg string) bool {
	i := strings.Index(importPath, seg)
	for i >= 0 {
		before := i == 0 || importPath[i-1] == '/'
		end := i + len(seg)
		after := end == len(importPath) || importPath[end] == '/'
		if before && after {
			return true
		}
		j := strings.Index(importPath[i+1:], seg)
		if j < 0 {
			break
		}
		i += 1 + j
	}
	return false
}

// lastSegment returns the final `/`-separated element of an import path.
func lastSegment(importPath string) string {
	if i := strings.LastIndex(importPath, "/"); i >= 0 {
		return importPath[i+1:]
	}
	return importPath
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x.f[i].g → x), or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// funcBodies yields every function body in the package — declarations and
// literals — exactly once, paired with its parameter list. Literals nested
// inside a declaration are visited separately, so callers analyzing "the
// enclosing function" should not re-descend into nested literals.
func (p *Pass) funcBodies(fn func(params *ast.FieldList, body *ast.BlockStmt)) {
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Type.Params, n.Body)
			}
		case *ast.FuncLit:
			fn(n.Type.Params, n.Body)
		}
		return true
	})
}
