package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FPReassoc guards the float reduction-order contract in the numeric
// packages (internal/stats, internal/sim): scalar and batched/worker
// variants of a kernel must produce bit-identical sums, which holds only
// when every parallel construct writes disjoint slots and a single
// deterministic loop folds them. Float addition is not associative, so a
// captured accumulator compound-assigned from inside a par worker body —
// or a shared *float64 handed to an accumulating helper — makes the
// result depend on the scheduler, breaking the equivalence tests between
// the scalar and batch lanes. The analyzer flags three shapes:
//
//   - a float compound-assign inside a worker closure (par.Do / ForEach /
//     Chunks / Argmin argument, or a go statement) whose target is
//     declared outside the closure and not a per-iteration slot,
//   - a worker closure passing a pointer to a captured variable into a
//     function that accumulates through its pointer parameter
//     (FactPtrAccum, interprocedural),
//   - a float compound-assign inside a range over a channel, where
//     arrival order is scheduler-dependent.
var FPReassoc = &Analyzer{
	Name: "fpreassoc",
	Doc:  "numeric kernels must not fold floats in scheduler-dependent order: no captured float accumulators in worker closures",
	Run:  runFPReassoc,
}

func runFPReassoc(p *Pass) {
	if !isNumericPkg(p.Pkg.Path) {
		return
	}
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isParWorkerCall(p, n) {
				return true
			}
			for _, arg := range n.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					checkWorkerLit(p, lit)
				}
			}
		case *ast.GoStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkWorkerLit(p, lit)
			}
		case *ast.RangeStmt:
			if t := p.Pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					checkChanRangeAccum(p, n)
				}
			}
		}
		return true
	})
}

// checkWorkerLit reports reduction-order hazards inside one closure that
// runs concurrently with its siblings.
func checkWorkerLit(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !isFloatCompound(p, n) {
				return true
			}
			lhs := unparen(n.Lhs[0])
			if !capturedTarget(p, lit, lhs) {
				return true
			}
			if isSlotWrite(p, lit, lhs) {
				return true
			}
			p.Reportf(n.Pos(), "float accumulation into a captured variable from a worker closure — reduction order becomes schedule-dependent; write per-worker slots and fold them in one deterministic loop")
		case *ast.CallExpr:
			fn, ok := staticCallee(p.Pkg, n)
			if !ok || p.Prog.FactsFor(fn)&FactPtrAccum == 0 {
				return true
			}
			for _, arg := range n.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if capturedTarget(p, lit, unparen(un.X)) && !isSlotWrite(p, lit, unparen(un.X)) {
					p.Reportf(arg.Pos(), "pointer to a captured variable passed to %s, which accumulates through it — concurrent workers make the float reduction order schedule-dependent", calleeLabel(fn))
				}
			}
		}
		return true
	})
}

// checkChanRangeAccum reports float compound-assigns inside a range over
// a channel: values arrive in send-completion order, which the scheduler
// picks.
func checkChanRangeAccum(p *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isFloatCompound(p, as) {
			return true
		}
		p.Reportf(as.Pos(), "float accumulation while ranging over a channel — arrival order is schedule-dependent; collect into indexed slots and fold deterministically")
		return true
	})
}

// isFloatCompound reports whether as is a +=/-=/*=//= with a float
// target.
func isFloatCompound(p *Pass, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	t := p.Pkg.Info.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// capturedTarget reports whether the root of e is declared outside lit —
// shared across all invocations of the closure.
func capturedTarget(p *Pass, lit *ast.FuncLit, e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := identObject(p, root)
	if obj == nil {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// isSlotWrite reports whether e is an index expression whose index is
// computed inside the closure (a per-iteration slot: each concurrent
// invocation touches a distinct element, the disjoint-slot idiom par.Do
// guarantees).
func isSlotWrite(p *Pass, lit *ast.FuncLit, e ast.Expr) bool {
	ix, ok := unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	inside := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || inside {
			return !inside
		}
		if obj := identObject(p, id); obj != nil &&
			obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			inside = true
		}
		return !inside
	})
	return inside
}

// isParWorkerCall reports whether call invokes one of the parallel
// primitives whose closure argument runs concurrently: par.Do / ForEach /
// Chunks / Argmin, or campaign.ForEach (the re-export).
func isParWorkerCall(p *Pass, call *ast.CallExpr) bool {
	fn, ok := staticCallee(p.Pkg, call)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	parPkg := pathHasSegment(path, "internal/par") || lastSegment(path) == "par"
	switch fn.Name() {
	case "Do", "ForEach", "Chunks", "Argmin":
		return parPkg || isCampaignPkg(path)
	}
	return false
}

// isNumericPkg scopes the check to the reduction-sensitive numeric
// packages (and their fixture doubles under testdata).
func isNumericPkg(path string) bool {
	return pathHasSegment(path, "internal/stats") || pathHasSegment(path, "internal/sim") ||
		lastSegment(path) == "stats" || lastSegment(path) == "sim"
}
