package lint

// All returns the repository's analyzer catalog in stable (alphabetical)
// order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		DetRand,
		DetTaint,
		ErrClose,
		FPReassoc,
		GoLeak,
		MetricName,
		ParBudget,
		SeedArith,
		WireStrict,
	}
}

// ByName returns the subset of All matching the given names; unknown
// names return nil and the offending name.
func ByName(names []string) ([]*Analyzer, string) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
