package lint

import (
	"go/ast"
	"go/types"
)

// DetTaint is the interprocedural deepening of detrand: it tracks values
// derived from nondeterminism sources — time.Now, global math/rand,
// random map-iteration order — through helper calls (summary facts over
// the module call graph, see flow.go) and reports where they reach the
// campaign artifact surface: a campaign.Record, a record sink's Append,
// SortedBytes input, or an atomically finalized artifact. detrand stops
// at a package boundary; dettaint catches the time.Now three calls deep
// in another package whose result lands in a record field, which would
// silently break the byte-identical-store contract the dist equivalence
// suites enforce.
//
// It also enforces seeded purity: a function that receives a seed
// parameter promises to be a deterministic function of it, so calling
// anything that transitively reaches a nondeterminism source from such a
// function is reported even when the source is packages away.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "no nondeterministic values flowing through helpers into campaign records, sinks or SortedBytes; seeded functions stay pure",
	Run:  runDetTaint,
}

func runDetTaint(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := p.Prog.InfoFor(fn)
			if fi == nil {
				continue
			}
			checkRecordSinks(p, fi)
			if p.Prog.FactsFor(fn)&FactReceivesSeed != 0 {
				checkSeededPurity(p, fi)
			}
		}
	}
}

// checkRecordSinks runs the value-taint analysis over one function and
// reports taint reaching the campaign artifact surface.
func checkRecordSinks(p *Pass, fi *FuncInfo) {
	tt := newTaint(p.Prog, fi)
	tt.run()
	if len(tt.tainted) == 0 && !hasNondetCalls(p, fi) {
		return
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isCampaignRecordType(p.Pkg.Info.TypeOf(n)) {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if tt.exprTainted(val) {
					p.Reportf(val.Pos(), "nondeterministic value reaches a campaign.Record — record bytes must be a pure function of the spec (trace the taint through %s)", taintOrigin(p, tt, val))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := unparen(lhs).(*ast.SelectorExpr)
				if !ok || !isCampaignRecordType(p.Pkg.Info.TypeOf(sel.X)) {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if tt.exprTainted(rhs) {
					p.Reportf(rhs.Pos(), "nondeterministic value assigned to campaign.Record.%s — record bytes must be a pure function of the spec", sel.Sel.Name)
				}
			}
		case *ast.CallExpr:
			if !isRecordSinkCall(p, n) {
				return true
			}
			for _, arg := range n.Args {
				if tt.exprTainted(arg) {
					p.Reportf(arg.Pos(), "nondeterministic value flows into %s — the artifact store must be byte-identical across runs and worker counts", sinkName(p, n))
				}
			}
		}
		return true
	})
}

// checkSeededPurity reports calls from a seeded function to anything
// that transitively reaches a nondeterminism source.
func checkSeededPurity(p *Pass, fi *FuncInfo) {
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := staticCallee(p.Pkg, call)
		if !ok {
			return true
		}
		if isNondetSource(fn) {
			p.Reportf(call.Pos(), "%s.%s in a function that receives a seed — seeded functions must be pure functions of their seed", fn.Pkg().Name(), fn.Name())
			return true
		}
		if p.Prog.FactsFor(fn)&FactReachesNondet != 0 {
			p.Reportf(call.Pos(), "call to %s reaches a nondeterminism source (time.Now or global math/rand) from a function that receives a seed — seeded paths must be pure functions of their seed", calleeLabel(fn))
		}
		return true
	})
}

// hasNondetCalls reports whether the function calls any nondeterminism
// source or nondet-returning callee — the cheap pre-filter before the
// sink walk.
func hasNondetCalls(p *Pass, fi *FuncInfo) bool {
	for _, callee := range fi.Callees {
		if isNondetSource(callee) || p.Prog.FactsFor(callee)&FactReturnsNondet != 0 {
			return true
		}
	}
	return false
}

// isCampaignRecordType reports whether t is the campaign Record type (a
// named struct called Record in a package whose path ends in /campaign —
// the segment rule keeps fixtures under testdata working).
func isCampaignRecordType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Record" && isCampaignPkg(named.Obj().Pkg().Path())
}

// isCampaignPkg matches the real internal/campaign package and fixture
// packages whose path ends in /campaign.
func isCampaignPkg(path string) bool {
	return pathHasSegment(path, "internal/campaign") || lastSegment(path) == "campaign"
}

// isRecordSinkCall reports whether call hands data to the campaign
// artifact surface: SortedBytes or WriteFileAtomic in a campaign
// package, or an Append method on a type (or interface) declared in one.
func isRecordSinkCall(p *Pass, call *ast.CallExpr) bool {
	fn, ok := staticCallee(p.Pkg, call)
	if !ok || fn.Pkg() == nil || !isCampaignPkg(fn.Pkg().Path()) {
		return false
	}
	switch fn.Name() {
	case "SortedBytes", "WriteFileAtomic", "Append":
		return true
	}
	return false
}

// sinkName renders a sink call for the message.
func sinkName(p *Pass, call *ast.CallExpr) string {
	if fn, ok := staticCallee(p.Pkg, call); ok {
		return "campaign." + fn.Name()
	}
	return "a campaign sink"
}

// calleeLabel renders pkg.Func or pkg.Type.Method for messages.
func calleeLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// taintOrigin names the first tainted identifier or nondet call inside e
// for the message, so the report points at the helper chain to follow.
func taintOrigin(p *Pass, tt *taint, e ast.Expr) string {
	origin := "this expression"
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[n]; obj != nil && tt.tainted[obj] {
				origin = n.Name
				return false
			}
		case *ast.CallExpr:
			if fn, ok := staticCallee(p.Pkg, n); ok {
				if isNondetSource(fn) || p.Prog.FactsFor(fn)&FactReturnsNondet != 0 {
					origin = calleeLabel(fn)
					return false
				}
			}
		}
		return true
	})
	return origin
}
