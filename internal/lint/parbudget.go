package lint

import (
	"go/ast"
)

// ParBudget keeps one machine-wide concurrency budget: every worker
// count flows through internal/par (Workers, Inner, Budget), never raw
// runtime.GOMAXPROCS/NumCPU arithmetic. Raw reads are how nested pools
// end up multiplying — W jobs × GOMAXPROCS analysis goroutines — instead
// of splitting the budget. internal/par itself is the one place allowed
// to read the process budget.
var ParBudget = &Analyzer{
	Name: "parbudget",
	Doc:  "worker counts come from internal/par helpers, not raw GOMAXPROCS/NumCPU",
	Run:  runParBudget,
}

func runParBudget(p *Pass) {
	if pathHasSegment(p.Pkg.Path, "internal/par") {
		return
	}
	p.inspect(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.Uses[id]
		if isPkgObj(obj, "runtime", "GOMAXPROCS") || isPkgObj(obj, "runtime", "NumCPU") {
			p.Reportf(id.Pos(), "raw runtime.%s — size worker pools through internal/par (par.Workers / par.Inner / par.Budget) so one machine-wide budget governs nested pools", obj.Name())
		}
		return true
	})
}
