// Package lint is the repository's static-analysis framework: a small
// go/ast + go/types analyzer harness (stdlib only — go/parser, go/types
// and a source-mode importer, no external modules) plus the project
// analyzers that encode ARES's determinism, concurrency and
// error-handling invariants.
//
// The headline guarantee of this codebase — Algorithm 1 prunes,
// Gram-kernel model selection and campaign sweeps are bit-identical at
// any worker count — is a contract that equivalence tests can only probe
// after the fact. A stray time.Now() seed, an unseeded global math/rand
// call or a map-range feeding ordered output silently breaks
// reproducibility of the paper's tables and figures; the analyzers here
// catch those defect classes before anything runs. `cmd/areslint` is the
// CLI; CI runs it next to vet and the race detector.
//
// Findings are suppressed in place with a reasoned marker on the
// offending line or the line above:
//
//	//areslint:ignore <check> <reason>
//
// A marker without a reason does not suppress — it is itself reported —
// so every silenced finding documents why it is safe.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"strings"

	"github.com/ares-cps/ares/internal/par"
)

// An Analyzer is one named check. Run inspects a type-checked package
// through the Pass and reports findings; it must not retain the Pass.
type Analyzer struct {
	// Name identifies the check in output and in ignore markers
	// (lowercase, no spaces).
	Name string
	// Doc is a one-line description shown by `areslint -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// A Pass holds one analyzer's view of one loaded package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the parsed, type-checked package under analysis.
	Pkg *Package
	// Prog is the interprocedural view (call graph + propagated
	// function facts) over the analysis targets and their module-internal
	// dependency closure. Read-only and shared across passes.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, fmt.Sprintf(format, args...))
}

// ReportFix records a finding at pos carrying an optional suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, message string) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: message,
		Fix:     fix,
	})
}

// A TextEdit replaces the byte range [Start, End) of File (module-root-
// relative, as diagnostics print it) with NewText. Start == End inserts.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// A SuggestedFix is a mechanical remediation for one diagnostic:
// non-overlapping byte edits `areslint -fix` can apply atomically (and
// `-diff` can preview).
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// A Diagnostic is one finding, positioned so editors can jump to it.
type Diagnostic struct {
	Check   string        `json:"check"`
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Col     int           `json:"col"`
	Message string        `json:"message"`
	Fix     *SuggestedFix `json:"fix,omitempty"`
}

// String renders the canonical single-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// ignoreMarker is the comment prefix that suppresses a finding.
const ignoreMarker = "//areslint:ignore"

// ignore is one parsed suppression comment.
type ignore struct {
	check  string
	reason string
	line   int
	file   string
	pos    token.Pos
}

// parseIgnores extracts every areslint:ignore marker from a package's
// comments. Malformed markers (missing check name or reason) are returned
// separately so the runner can report them instead of silently honoring
// them.
func parseIgnores(pkg *Package) (ok []ignore, bad []ignore) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreMarker) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreMarker)
				position := pkg.Fset.Position(c.Pos())
				ig := ignore{line: position.Line, file: position.Filename, pos: c.Pos()}
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					ig.check = fields[0]
				}
				if len(fields) >= 2 {
					ig.reason = strings.Join(fields[1:], " ")
				}
				if ig.check == "" || ig.reason == "" {
					bad = append(bad, ig)
					continue
				}
				ok = append(ok, ig)
			}
		}
	}
	return ok, bad
}

// suppressed reports whether d is covered by a marker on its own line or
// the line directly above (a trailing comment or a standalone comment
// preceding the statement).
func suppressed(d Diagnostic, igs []ignore) bool {
	for _, ig := range igs {
		if ig.file != d.File || ig.check != d.Check {
			continue
		}
		if ig.line == d.Line || ig.line == d.Line-1 {
			return true
		}
	}
	return false
}

// Run executes every analyzer over every package, up to `workers`
// packages concurrently (workers <= 0 uses the process budget). Each
// package's findings land in its own slot, so the returned slice is
// identical at any worker count: sorted by file, line, column, check,
// message. Suppressed findings are dropped; malformed ignore markers are
// reported under the reserved check name "areslint".
func Run(pkgs []*Package, analyzers []*Analyzer, workers int) []Diagnostic {
	// The interprocedural fact layer is computed once, sequentially, over
	// the targets and their module-internal dependency closure; the
	// resulting Program is frozen and shared read-only by the parallel
	// per-package passes.
	prog := NewProgram(pkgs)
	perPkg := make([][]Diagnostic, len(pkgs))
	par.Do(workers, len(pkgs), func(i int) {
		perPkg[i] = runPackage(pkgs[i], analyzers, prog)
	})
	var all []Diagnostic
	for _, ds := range perPkg {
		all = append(all, ds...)
	}
	sortDiagnostics(all)
	return all
}

// runPackage applies all analyzers to one package and filters
// suppressions.
func runPackage(pkg *Package, analyzers []*Analyzer, prog *Program) []Diagnostic {
	igs, bad := parseIgnores(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Pkg:      pkg,
			Prog:     prog,
			report: func(d Diagnostic) {
				if !suppressed(d, igs) {
					diags = append(diags, d)
				}
			},
		}
		a.Run(pass)
	}
	// Marker names validate against the full registry, not the active
	// subset: a detrand marker is legitimate even when `-checks
	// seedarith` leaves detrand switched off.
	registry := All()
	known := make(map[string]bool, len(registry))
	for _, a := range registry {
		known[a.Name] = true
	}
	for _, ig := range bad {
		position := pkg.Fset.Position(ig.pos)
		diags = append(diags, Diagnostic{
			Check: "areslint", File: position.Filename, Line: position.Line, Col: position.Column,
			Message: "malformed ignore marker: want //areslint:ignore <check> <reason>",
		})
	}
	for _, ig := range igs {
		if !known[ig.check] && ig.check != "areslint" {
			position := pkg.Fset.Position(ig.pos)
			diags = append(diags, Diagnostic{
				Check: "areslint", File: position.Filename, Line: position.Line, Col: position.Column,
				Message: fmt.Sprintf("ignore marker names unknown check %q", ig.check),
			})
		}
	}
	return diags
}

// WriteText renders findings one per line in the canonical
// file:line:col: check: message form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (never null, so consumers
// can range without a nil check).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// inspect walks every file in the pass's package in source order.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
