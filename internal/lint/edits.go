package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// Shared helpers for analyzers that build SuggestedFix edits: byte-offset
// conversion, source slicing and import insertion.

// editAt builds a TextEdit replacing the source range [start, end) with
// newText. Start == end inserts.
func (p *Pass) editAt(start, end token.Pos, newText string) (TextEdit, bool) {
	s := p.Pkg.Fset.Position(start)
	e := p.Pkg.Fset.Position(end)
	if s.Filename != e.Filename {
		return TextEdit{}, false
	}
	if src, ok := p.Pkg.Src[s.Filename]; !ok || e.Offset > len(src) || s.Offset > e.Offset {
		return TextEdit{}, false
	}
	return TextEdit{File: s.Filename, Start: s.Offset, End: e.Offset, NewText: newText}, true
}

// srcText returns the literal source text of [start, end).
func (p *Pass) srcText(start, end token.Pos) (string, bool) {
	s := p.Pkg.Fset.Position(start)
	e := p.Pkg.Fset.Position(end)
	if s.Filename != e.Filename {
		return "", false
	}
	src, ok := p.Pkg.Src[s.Filename]
	if !ok || e.Offset > len(src) || s.Offset > e.Offset {
		return "", false
	}
	return string(src[s.Offset:e.Offset]), true
}

// ensureImport returns the edit that adds path to the import block of the
// file containing pos. ok is true with a zero edit when the import is
// already present; false when no edit can be built (no parenthesized
// import block to extend).
func (p *Pass) ensureImport(pos token.Pos, path string) (TextEdit, bool) {
	file := p.fileContaining(pos)
	if file == nil {
		return TextEdit{}, false
	}
	for _, imp := range file.Imports {
		if ip, err := strconv.Unquote(imp.Path.Value); err == nil && ip == path {
			return TextEdit{}, true // already imported: nothing to add
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Rparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		last := gd.Specs[len(gd.Specs)-1]
		position := p.Pkg.Fset.Position(last.End())
		return TextEdit{
			File:    position.Filename,
			Start:   position.Offset,
			End:     position.Offset,
			NewText: "\n\t" + strconv.Quote(path),
		}, true
	}
	return TextEdit{}, false
}

// fileContaining returns the package file whose range covers pos.
func (p *Pass) fileContaining(pos token.Pos) *ast.File {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
