package lint

import (
	"go/ast"
	"go/types"
)

// detrandScope are the analysis-path packages where nondeterminism
// silently breaks the bit-identical-at-any-worker-count contract.
var detrandScope = []string{"internal/stats", "internal/core", "internal/rl", "internal/sim"}

// globalRandFuncs are the math/rand package-level functions backed by the
// unseeded global source. Constructors (New, NewSource, NewZipf) are fine:
// the repo's rule is seeded rand.New(rand.NewSource(...)).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

// DetRand reports nondeterminism sources inside the deterministic
// analysis paths (internal/stats, internal/core, internal/rl,
// internal/sim): time.Now calls, global math/rand functions, and
// map-range loops that feed ordered output (an append that is never
// sorted) or accumulate floats (order-dependent rounding).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "no time.Now, unseeded global math/rand, or order-sensitive map iteration in analysis paths",
	Run:  runDetRand,
}

func runDetRand(p *Pass) {
	if !inDetrandScope(p.Pkg.Path) {
		return
	}
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := p.callee(n)
			if isPkgObj(obj, "time", "Now") {
				p.Reportf(n.Pos(), "time.Now() in a deterministic analysis path — inject time from the caller or derive it from the seed")
			}
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand" && globalRandFuncs[obj.Name()] && isPackageLevelFunc(obj) {
				p.Reportf(n.Pos(), "global math/rand.%s uses unseeded process-wide state — use a seeded rand.New(rand.NewSource(...))", obj.Name())
			}
		case *ast.FuncDecl:
			if n.Body != nil {
				checkMapRanges(p, n.Body)
			}
			return true
		}
		return true
	})
}

// isPackageLevelFunc distinguishes rand.Intn (global, unseeded state)
// from rng.Intn on a seeded *rand.Rand (a method, fine).
func isPackageLevelFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func inDetrandScope(path string) bool {
	for _, seg := range detrandScope {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	switch lastSegment(path) {
	case "stats", "core", "rl", "sim":
		return true
	}
	return false
}

// checkMapRanges inspects one function body (including nested literals —
// closures share the function's slices) for order-sensitive map
// iteration.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	type appendTarget struct {
		obj types.Object
		pos ast.Node
	}
	var candidates []appendTarget

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := p.Pkg.Info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if b, ok := p.Pkg.Info.TypeOf(as.Lhs[0]).Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					p.Reportf(as.Pos(), "float accumulation inside map iteration — summation order follows random map order; iterate sorted keys")
				}
			case "=", ":=":
				if len(as.Rhs) == 1 {
					if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
						if id, ok := unparen(call.Fun).(*ast.Ident); ok && isBuiltinAppend(p, id) {
							if root := rootIdent(as.Lhs[0]); root != nil {
								if obj := identObject(p, root); obj != nil {
									candidates = append(candidates, appendTarget{obj: obj, pos: as})
								}
							}
						}
					}
				}
			}
			return true
		})
		return true
	})

	for _, c := range candidates {
		if !sortedLater(p, body, c.obj) {
			p.Reportf(c.pos.Pos(), "map iteration appends to %s which is never sorted in this function — output order follows random map order", c.obj.Name())
		}
	}
}

// isBuiltinAppend reports whether id resolves to the predeclared append
// builtin (not a user-defined function shadowing the name).
func isBuiltinAppend(p *Pass, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	_, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// identObject resolves an identifier whether it is a use or a definition.
func identObject(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// sortedLater reports whether obj is handed to a sort/slices sorting call
// anywhere in body — the collect-keys-then-sort idiom that makes a
// map-range deterministic.
func sortedLater(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		callee := p.callee(call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg := callee.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && identObject(p, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
