package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis. File
// positions are recorded relative to the module root, so diagnostics read
// `internal/stats/corr.go:12:3` regardless of where areslint ran from.
type Package struct {
	// Path is the import path (module path + directory).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// ModPath is the module path of the enclosing module (go.mod).
	ModPath string
	// Fset is the file set shared by every package in the loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files, in filename order.
	// Test files are deliberately excluded: the invariants areslint
	// enforces are production contracts, and tests legitimately use
	// wall-clock deadlines and ad-hoc seeds.
	Files []*ast.File
	// Src holds each file's source bytes keyed by its display name (the
	// module-root-relative path diagnostics use). The fix engine slices
	// these to build byte-offset edits.
	Src map[string][]byte
	// Imports maps module-internal import paths to their loaded packages,
	// so interprocedural analysis can walk the dependency closure without
	// re-resolving through the loader.
	Imports map[string]*Package
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages from source. Module-internal
// imports resolve against the module tree on disk; everything else (the
// standard library) resolves through go/importer's "source" mode, so no
// compiler export data or external tooling is required. A Loader memoizes
// by import path and is not safe for concurrent use — load first, then
// analyze in parallel.
type Loader struct {
	// Root is the absolute module root directory.
	Root string
	// ModPath is the module path from go.mod.
	ModPath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImporterFrom")
	}
	return &Loader{
		Root:    root,
		ModPath: modPath,
		fset:    fset,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns into type-checked packages. A pattern
// is either a directory path (absolute or relative to the module root,
// `./`-prefixed or not) or a `dir/...` wildcard that walks the subtree.
// The walk skips testdata, vendor and hidden directories — fixture
// packages under testdata load only when named explicitly — and a
// directory with no non-test Go files is skipped (wildcard) or an error
// (explicit).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := resolveDirs(l, patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// absDir normalizes a pattern directory against the module root.
func (l *Loader) absDir(p string) string {
	p = strings.TrimSuffix(p, "/")
	if p == "" || p == "." || p == "./" {
		return l.Root
	}
	p = strings.TrimPrefix(p, "./")
	if filepath.IsAbs(p) {
		return filepath.Clean(p)
	}
	return filepath.Join(l.Root, filepath.FromSlash(p))
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile selects the non-test Go files a package is built from.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// loadDir parses and type-checks one directory, memoized by import path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	srcs := make(map[string][]byte, len(names))
	for _, name := range names {
		full := filepath.Join(dir, name)
		display := full
		if rel, err := filepath.Rel(l.Root, full); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, display, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		srcs[display] = src
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}

	pkg := &Package{
		Path: path, Dir: dir, ModPath: l.ModPath, Fset: l.fset,
		Files: files, Src: srcs, Types: tpkg, Info: info,
		Imports: make(map[string]*Package),
	}
	// Link module-internal imports to their loaded packages. Type-checking
	// above already forced them through ImportFrom, so every one is
	// memoized in l.pkgs.
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == l.ModPath || strings.HasPrefix(ip, l.ModPath+"/") {
				if dep, ok := l.pkgs[ip]; ok {
					pkg.Imports[ip] = dep
				}
			}
		}
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else falls through to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
