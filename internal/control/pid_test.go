package control

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

func TestPIDProportionalOnly(t *testing.T) {
	p := NewPID(PIDConfig{KP: 2, DT: 0.01})
	if got := p.Update(1, 0); got != 2 {
		t.Errorf("P-only output = %v, want 2", got)
	}
	if p.P() != 2 || p.I() != 0 || p.FF() != 0 {
		t.Errorf("terms P=%v I=%v FF=%v", p.P(), p.I(), p.FF())
	}
}

func TestPIDIntegratorAccumulatesAndClamps(t *testing.T) {
	p := NewPID(PIDConfig{KI: 1, IMax: 0.5, DT: 0.1})
	for i := 0; i < 4; i++ {
		p.Update(1, 0) // error 1: integrator += 1*1*0.1
	}
	if !mathx.ApproxEqual(p.Integrator(), 0.4, 1e-12) {
		t.Errorf("integrator = %v, want 0.4", p.Integrator())
	}
	for i := 0; i < 10; i++ {
		p.Update(1, 0)
	}
	if p.Integrator() != 0.5 {
		t.Errorf("integrator = %v, want clamp 0.5", p.Integrator())
	}
	// Negative direction clamps too.
	for i := 0; i < 30; i++ {
		p.Update(-1, 0)
	}
	if p.Integrator() != -0.5 {
		t.Errorf("integrator = %v, want clamp -0.5", p.Integrator())
	}
}

func TestPIDDerivative(t *testing.T) {
	p := NewPID(PIDConfig{KD: 1, DT: 0.1})
	p.Update(0, 0)
	p.Update(1, 0) // unfiltered error step 0→1 over dt=0.1 → derivative 10
	if !mathx.ApproxEqual(p.D(), 10, 1e-9) {
		t.Errorf("derivative term = %v, want 10", p.D())
	}
	// Constant error → derivative back to 0.
	p.Update(1, 0)
	if !mathx.ApproxEqual(p.D(), 0, 1e-9) {
		t.Errorf("derivative term = %v, want 0", p.D())
	}
}

func TestPIDInputFilterSmoothsStep(t *testing.T) {
	sharp := NewPID(PIDConfig{KP: 1, DT: 1.0 / 400})
	smooth := NewPID(PIDConfig{KP: 1, FilterHz: 5, DT: 1.0 / 400})
	sharp.Update(0, 0)
	smooth.Update(0, 0)
	// Step input: the filtered controller must respond less at first.
	a := sharp.Update(1, 0)
	b := smooth.Update(1, 0)
	if b >= a {
		t.Errorf("filtered response %v not below unfiltered %v", b, a)
	}
	// But converge eventually.
	for i := 0; i < 4000; i++ {
		b = smooth.Update(1, 0)
	}
	if !mathx.ApproxEqual(b, 1, 1e-3) {
		t.Errorf("filtered response did not converge: %v", b)
	}
}

func TestPIDFeedForward(t *testing.T) {
	p := NewPID(PIDConfig{KFF: 0.5, DT: 0.01})
	if got := p.Update(2, 5); got != 1 {
		t.Errorf("FF output = %v, want 1 (0.5 × target 2)", got)
	}
}

func TestPIDOutputClampOversizedDefault(t *testing.T) {
	// Default range is the oversized ±5000 from the paper's Figure 8.
	p := NewPID(PIDConfig{KP: 1e6, DT: 0.01})
	if got := p.Update(1, 0); got != 5000 {
		t.Errorf("output = %v, want oversized clamp 5000", got)
	}
	// Explicit range is honored.
	p2 := NewPID(PIDConfig{KP: 1e6, DT: 0.01, OutMin: -1, OutMax: 1})
	if got := p2.Update(1, 0); got != 1 {
		t.Errorf("output = %v, want 1", got)
	}
}

func TestPIDScaler(t *testing.T) {
	p := NewPID(PIDConfig{KP: 2, DT: 0.01})
	p.Scaler = 0.5
	if got := p.Update(1, 0); got != 1 {
		t.Errorf("scaled output = %v, want 1", got)
	}
}

func TestPIDResets(t *testing.T) {
	p := NewPID(PIDConfig{KP: 1, KI: 1, KD: 0.1, IMax: 10, DT: 0.1})
	for i := 0; i < 5; i++ {
		p.Update(1, 0)
	}
	if p.Integrator() == 0 {
		t.Fatal("integrator did not accumulate")
	}
	p.ResetIntegrator()
	if p.Integrator() != 0 {
		t.Error("ResetIntegrator left integrator")
	}
	p.Update(1, 0)
	p.Reset()
	if p.Output() != 0 || p.P() != 0 || p.D() != 0 {
		t.Error("Reset left term outputs")
	}
}

func TestPIDRegisterVars(t *testing.T) {
	p := NewPID(PIDConfig{KP: 0.135, KI: 0.09, KD: 0.0036, IMax: 0.5, DT: 1.0 / 400})
	set := vars.NewSet()
	if err := p.RegisterVars(set, "PIDR"); err != nil {
		t.Fatal(err)
	}
	// The paper's v1..v7 intermediates all appear.
	for _, name := range []string{
		"PIDR.KP", "PIDR.KI", "PIDR.KD", "PIDR.DT",
		"PIDR.INTEG", "PIDR.INPUT", "PIDR.DERIV",
	} {
		if _, ok := set.Lookup(name); !ok {
			t.Errorf("variable %s not registered", name)
		}
	}
	// Manipulating the INTEG ref changes the controller's next output —
	// the paper's core data-manipulation primitive.
	p.Update(0, 0)
	base := p.Update(0, 0)
	ref, _ := set.Lookup("PIDR.INTEG")
	ref.Set(0.3)
	got := p.Update(0, 0)
	if math.Abs(got-base-0.3) > 1e-9 {
		t.Errorf("INTEG manipulation shifted output by %v, want 0.3", got-base)
	}
	// Duplicate registration fails cleanly.
	if err := p.RegisterVars(set, "PIDR"); err == nil {
		t.Error("duplicate RegisterVars did not error")
	}
}

func TestPIDDefaultDT(t *testing.T) {
	p := NewPID(PIDConfig{KP: 1})
	if p.DT != 1.0/400 {
		t.Errorf("default DT = %v, want 1/400", p.DT)
	}
}

func TestSqrtControllerLinearRegion(t *testing.T) {
	s := NewSqrtController(2, 0) // no limit → pure P
	if got := s.Update(3); got != 6 {
		t.Errorf("linear output = %v, want 6", got)
	}
	if s.Output() != 6 {
		t.Errorf("Output() = %v", s.Output())
	}
}

func TestSqrtControllerLimitsLargeErrors(t *testing.T) {
	s := NewSqrtController(2, 1) // linearDist = 1/4
	small := s.Update(0.1)
	if !mathx.ApproxEqual(small, 0.2, 1e-12) {
		t.Errorf("small error output = %v, want 0.2", small)
	}
	big := s.Update(100)
	linear := 100 * 2.0
	if big >= linear {
		t.Errorf("sqrt output %v not below linear %v", big, linear)
	}
	want := math.Sqrt(2 * 1 * (100 - 0.125))
	if !mathx.ApproxEqual(big, want, 1e-9) {
		t.Errorf("sqrt output = %v, want %v", big, want)
	}
	// Symmetric for negative errors.
	if got := s.Update(-100); !mathx.ApproxEqual(got, -want, 1e-9) {
		t.Errorf("negative sqrt output = %v, want %v", got, -want)
	}
}

func TestSqrtControllerMonotonic(t *testing.T) {
	s := NewSqrtController(4.5, mathx.Rad(720))
	prev := math.Inf(-1)
	for e := -2.0; e <= 2.0; e += 0.01 {
		out := s.Update(e)
		if out < prev {
			t.Fatalf("sqrt controller not monotonic at e=%v", e)
		}
		prev = out
	}
}

func TestSqrtControllerRegisterVars(t *testing.T) {
	s := NewSqrtController(1, 1)
	set := vars.NewSet()
	if err := s.RegisterVars(set, "SQ"); err != nil {
		t.Fatal(err)
	}
	s.Update(0.5)
	errRef, _ := set.Lookup("SQ.ERR")
	if errRef.Get() != 0.5 {
		t.Errorf("SQ.ERR = %v, want 0.5", errRef.Get())
	}
	if err := s.RegisterVars(set, "SQ"); err == nil {
		t.Error("duplicate registration did not error")
	}
}
