package control

import (
	"errors"
	"testing"
)

func TestParamStoreDefaults(t *testing.T) {
	s := NewParamStore()
	if s.Len() < 50 {
		t.Errorf("catalogue has %d params, want a representative table (≥50)", s.Len())
	}
	v, err := s.Get("ATC_RAT_RLL_P")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.135 {
		t.Errorf("ATC_RAT_RLL_P = %v, want default 0.135", v)
	}
}

func TestParamStoreSetAndRangeValidation(t *testing.T) {
	s := NewParamStore()
	if err := s.Set("ATC_RAT_RLL_P", 0.2); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("ATC_RAT_RLL_P")
	if v != 0.2 {
		t.Errorf("value after Set = %v", v)
	}
	// Out of range is rejected with a typed error.
	err := s.Set("ATC_RAT_RLL_P", 99)
	var rangeErr *ErrParamRange
	if !errors.As(err, &rangeErr) {
		t.Fatalf("expected ErrParamRange, got %v", err)
	}
	if rangeErr.Name != "ATC_RAT_RLL_P" || rangeErr.Value != 99 {
		t.Errorf("range error fields: %+v", rangeErr)
	}
	// Unknown parameter.
	err = s.Set("NO_SUCH_PARAM", 1)
	var unknownErr *ErrUnknownParam
	if !errors.As(err, &unknownErr) {
		t.Fatalf("expected ErrUnknownParam, got %v", err)
	}
	if _, err := s.Get("NO_SUCH_PARAM"); err == nil {
		t.Error("Get unknown param did not error")
	}
}

func TestParamStoreOversizedRangeDefect(t *testing.T) {
	// The RVFuzzer-style defect: IMAX accepts absurd values because the
	// documented range is ±5000-scale. This must SUCCEED — it is the
	// vulnerability the Figure 8 experiment exploits.
	s := NewParamStore()
	if err := s.Set("ATC_RAT_RLL_IMAX", 4500); err != nil {
		t.Errorf("oversized-but-in-range IMAX rejected: %v", err)
	}
	if err := s.Set("ATC_RAT_RLL_FF", -4999); err != nil {
		t.Errorf("oversized-but-in-range FF rejected: %v", err)
	}
}

func TestParamStoreBind(t *testing.T) {
	s := NewParamStore()
	var live float64
	if err := s.Bind("ATC_RAT_RLL_P", &live); err != nil {
		t.Fatal(err)
	}
	if live != 0.135 {
		t.Errorf("bind did not push default: %v", live)
	}
	if err := s.Set("ATC_RAT_RLL_P", 0.25); err != nil {
		t.Fatal(err)
	}
	if live != 0.25 {
		t.Errorf("Set did not write through binding: %v", live)
	}
	// Get reads the live value even if it changed out of band (e.g. a
	// memory manipulation).
	live = 0.31
	v, _ := s.Get("ATC_RAT_RLL_P")
	if v != 0.31 {
		t.Errorf("Get = %v, want live 0.31", v)
	}
	if err := s.Bind("NOPE", &live); err == nil {
		t.Error("Bind unknown param did not error")
	}
}

func TestParamStoreLookupAndNames(t *testing.T) {
	s := NewParamStore()
	p, ok := s.Lookup("WPNAV_SPEED")
	if !ok {
		t.Fatal("WPNAV_SPEED missing")
	}
	if p.Min != 20 || p.Max != 2000 || p.Desc == "" {
		t.Errorf("param metadata: %+v", p)
	}
	if _, ok := s.Lookup("NOPE"); ok {
		t.Error("Lookup found missing param")
	}
	names := s.Names()
	if len(names) != s.Len() {
		t.Errorf("Names len %d != Len %d", len(names), s.Len())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

func TestParamStoreCataloguesAreIndependent(t *testing.T) {
	a := NewParamStore()
	b := NewParamStore()
	if err := a.Set("ATC_RAT_RLL_P", 0.3); err != nil {
		t.Fatal(err)
	}
	v, _ := b.Get("ATC_RAT_RLL_P")
	if v != 0.135 {
		t.Errorf("stores share state: b = %v", v)
	}
}
