package control

import (
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

// SINS is a strapdown inertial navigation system: it integrates body-frame
// accelerometer readings (rotated to the world frame via the current
// attitude) into velocity and position estimates, and applies first-order
// complementary corrections toward GPS/baro aiding measurements.
//
// This is the third controller function of the paper's Table II ("SINS:
// strapdown inertial navigation system (e.g., for velocity and position
// correction)") and contributes the VN/VE/VD and PN/PE/PD state variables
// along with its intermediate correction gains.
type SINS struct {
	// VelGain and PosGain are the complementary-filter correction gains
	// (1/s) pulling the inertial solution toward the aiding source.
	VelGain float64
	PosGain float64

	// Estimated NED velocity components (VN, VE, VD) in m/s.
	velN, velE, velD float64
	// Estimated NED position components (PN, PE, PD) in m.
	posN, posE, posD float64
	// Most recent correction magnitudes (intermediates).
	velCorr, posCorr float64
	// dt of the last update.
	dt float64
}

// NewSINS builds a SINS with typical complementary gains.
func NewSINS() *SINS {
	return &SINS{VelGain: 1.0, PosGain: 0.5}
}

// Predict integrates one accelerometer sample. accelBody is the specific
// force in the body frame; att rotates body to world. Gravity is added back
// to recover kinematic acceleration.
func (s *SINS) Predict(accelBody mathx.Vec3, att mathx.Quat, dt float64) {
	if dt <= 0 {
		return
	}
	s.dt = dt
	accWorld := att.Rotate(accelBody).Add(mathx.V3(0, 0, gravityMS2))
	s.velN += accWorld.X * dt
	s.velE += accWorld.Y * dt
	s.velD += accWorld.Z * dt
	s.posN += s.velN * dt
	s.posE += s.velE * dt
	s.posD += s.velD * dt
}

// gravityMS2 matches sim.Gravity without importing the sim package.
const gravityMS2 = 9.80665

// CorrectVelocity nudges the velocity estimate toward an aiding velocity
// (e.g. GPS velocity) with the complementary velocity gain.
func (s *SINS) CorrectVelocity(aid mathx.Vec3) {
	dv := aid.Sub(s.Velocity()).Scale(s.VelGain * s.dt)
	s.velCorr = dv.Norm()
	s.velN += dv.X
	s.velE += dv.Y
	s.velD += dv.Z
}

// CorrectPosition nudges the position estimate toward an aiding position
// (e.g. GPS fix) with the complementary position gain.
func (s *SINS) CorrectPosition(aid mathx.Vec3) {
	dp := aid.Sub(s.Position()).Scale(s.PosGain * s.dt)
	s.posCorr = dp.Norm()
	s.posN += dp.X
	s.posE += dp.Y
	s.posD += dp.Z
}

// Velocity returns the current NED velocity estimate.
func (s *SINS) Velocity() mathx.Vec3 { return mathx.V3(s.velN, s.velE, s.velD) }

// Position returns the current NED position estimate.
func (s *SINS) Position() mathx.Vec3 { return mathx.V3(s.posN, s.posE, s.posD) }

// Reset sets the solution to the given position and velocity.
func (s *SINS) Reset(pos, vel mathx.Vec3) {
	s.posN, s.posE, s.posD = pos.X, pos.Y, pos.Z
	s.velN, s.velE, s.velD = vel.X, vel.Y, vel.Z
	s.velCorr, s.posCorr = 0, 0
}

// RegisterVars exposes the SINS state under the given prefix.
func (s *SINS) RegisterVars(set *vars.Set, prefix string) error {
	entries := []struct {
		name string
		kind vars.Kind
		ptr  *float64
	}{
		{"VGAIN", vars.KindParam, &s.VelGain},
		{"PGAIN", vars.KindParam, &s.PosGain},
		{"VN", vars.KindDynamic, &s.velN},
		{"VE", vars.KindDynamic, &s.velE},
		{"VD", vars.KindDynamic, &s.velD},
		{"PN", vars.KindDynamic, &s.posN},
		{"PE", vars.KindDynamic, &s.posE},
		{"PD", vars.KindDynamic, &s.posD},
		{"VCORR", vars.KindIntermediate, &s.velCorr},
		{"PCORR", vars.KindIntermediate, &s.posCorr},
		{"DT", vars.KindIntermediate, &s.dt},
	}
	for _, e := range entries {
		if err := set.Register(prefix+"."+e.name, e.kind, e.ptr); err != nil {
			return err
		}
	}
	return nil
}
