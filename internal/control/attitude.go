package control

import (
	"math"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

// AttitudeController converts target Euler angles into normalized torque
// demands using the ArduCopter two-stage cascade: an angle-error square-root
// controller produces target body rates, and per-axis rate PIDs (the PIDR /
// PIDP / PIDY controllers of the dataflash log) turn rate errors into motor
// torque fractions.
type AttitudeController struct {
	// AngleRoll/AnglePitch/AngleYaw are the outer angle→rate controllers.
	AngleRoll  *SqrtController
	AnglePitch *SqrtController
	AngleYaw   *SqrtController
	// RateRoll/RatePitch/RateYaw are the inner rate→torque PIDs.
	RateRoll  *PID
	RatePitch *PID
	RateYaw   *PID
	// MaxRate clamps the commanded roll/pitch body rates in rad/s.
	MaxRate float64
	// MaxYawRate clamps the commanded yaw rate (ArduCopter slews yaw far
	// slower than roll/pitch so large heading changes cannot starve the
	// roll/pitch motors).
	MaxYawRate float64

	// Desired attitude (dynamics DesR, DesP, DesY in the dataflash ATT
	// record) and measured attitude (R, P, Y), in radians.
	desRoll, desPitch, desYaw float64
	roll, pitch, yaw          float64
	// Commanded body rates (intermediates of the cascade).
	rateTargetR, rateTargetP, rateTargetY float64
}

// AttitudeConfig holds gains for the attitude cascade. Defaults follow
// ArduCopter's IRIS+ tune.
type AttitudeConfig struct {
	AngleP       float64 // ATC_ANG_RLL_P and friends
	AccelLim     float64 // rad/s² second-order limit for the sqrt controller
	Rate         PIDConfig
	RateYaw      PIDConfig
	MaxRateRS    float64 // rad/s
	MaxYawRateRS float64 // rad/s
}

// DefaultAttitudeConfig returns the IRIS+-style attitude tune.
func DefaultAttitudeConfig(dt float64) AttitudeConfig {
	return AttitudeConfig{
		AngleP:   4.5,
		AccelLim: mathx.Rad(720), // ATC_ACCEL_*_MAX ≈ 72000 cdeg/s²
		// Rate PID outputs are torque fractions; they are bounded to
		// about half the motor range so one axis can never consume all
		// authority. (The oversized ±5000 range stays the *default* for
		// unconfigured PIDs — the defect Figure 8 exploits.)
		Rate: PIDConfig{
			KP: 0.135, KI: 0.090, KD: 0.0036,
			IMax: 0.25, FilterHz: 20, DT: dt,
			OutMin: -0.5, OutMax: 0.5,
		},
		RateYaw: PIDConfig{
			KP: 0.18, KI: 0.018, KD: 0,
			IMax: 0.1, FilterHz: 5, DT: dt,
			OutMin: -0.2, OutMax: 0.2,
		},
		MaxRateRS:    mathx.Rad(360),
		MaxYawRateRS: mathx.Rad(45),
	}
}

// NewAttitudeController builds the cascade from the config.
func NewAttitudeController(cfg AttitudeConfig) *AttitudeController {
	return &AttitudeController{
		AngleRoll:  NewSqrtController(cfg.AngleP, cfg.AccelLim),
		AnglePitch: NewSqrtController(cfg.AngleP, cfg.AccelLim),
		AngleYaw:   NewSqrtController(cfg.AngleP, cfg.AccelLim),
		RateRoll:   NewPID(cfg.Rate),
		RatePitch:  NewPID(cfg.Rate),
		RateYaw:    NewPID(cfg.RateYaw),
		MaxRate:    cfg.MaxRateRS,
		MaxYawRate: cfg.MaxYawRateRS,
	}
}

// Update runs one attitude control cycle. Target and measured angles are in
// radians; gyro holds the measured body rates. It returns normalized roll,
// pitch and yaw torque demands, each nominally in [-1, 1].
func (a *AttitudeController) Update(desRoll, desPitch, desYaw float64, roll, pitch, yaw float64, gyro mathx.Vec3) (tr, tp, ty float64) {
	a.desRoll, a.desPitch, a.desYaw = desRoll, desPitch, desYaw
	a.roll, a.pitch, a.yaw = roll, pitch, yaw

	// Outer loop: desired Euler-angle rates.
	eulerRateR := mathx.Clamp(a.AngleRoll.Update(mathx.WrapPi(desRoll-roll)), -a.MaxRate, a.MaxRate)
	eulerRateP := mathx.Clamp(a.AnglePitch.Update(mathx.WrapPi(desPitch-pitch)), -a.MaxRate, a.MaxRate)
	maxYaw := a.MaxYawRate
	if maxYaw <= 0 {
		maxYaw = a.MaxRate
	}
	eulerRateY := mathx.Clamp(a.AngleYaw.Update(mathx.WrapPi(desYaw-yaw)), -maxYaw, maxYaw)

	// Transform Euler-angle rates into body rates. The gyro measures body
	// rates (p, q, r); commanding them as if they were Euler rates makes
	// the Euler angles drift whenever pitch and yaw rate are both large —
	// exactly the regime of a waypoint turn.
	//   p = dφ − sinθ·dψ
	//   q = cosφ·dθ + sinφ·cosθ·dψ
	//   r = −sinφ·dθ + cosφ·cosθ·dψ
	sinR, cosR := math.Sin(roll), math.Cos(roll)
	sinP, cosP := math.Sin(pitch), math.Cos(pitch)
	a.rateTargetR = eulerRateR - sinP*eulerRateY
	a.rateTargetP = cosR*eulerRateP + sinR*cosP*eulerRateY
	a.rateTargetY = -sinR*eulerRateP + cosR*cosP*eulerRateY

	tr = a.RateRoll.Update(a.rateTargetR, gyro.X)
	tp = a.RatePitch.Update(a.rateTargetP, gyro.Y)
	ty = a.RateYaw.Update(a.rateTargetY, gyro.Z)
	return tr, tp, ty
}

// Reset clears all dynamic controller state.
func (a *AttitudeController) Reset() {
	a.RateRoll.Reset()
	a.RatePitch.Reset()
	a.RateYaw.Reset()
}

// RegisterVars exposes the cascade's variables: the ATT dynamics block, the
// angle controllers and the three rate PIDs (PIDR, PIDP, PIDY).
func (a *AttitudeController) RegisterVars(set *vars.Set) error {
	attVars := []struct {
		name string
		ptr  *float64
	}{
		{"ATT.DesRoll", &a.desRoll},
		{"ATT.DesPitch", &a.desPitch},
		{"ATT.DesYaw", &a.desYaw},
		{"ATT.Roll", &a.roll},
		{"ATT.Pitch", &a.pitch},
		{"ATT.Yaw", &a.yaw},
		{"RATE.RDes", &a.rateTargetR},
		{"RATE.PDes", &a.rateTargetP},
		{"RATE.YDes", &a.rateTargetY},
	}
	for _, v := range attVars {
		if err := set.Register(v.name, vars.KindDynamic, v.ptr); err != nil {
			return err
		}
	}
	if err := a.AngleRoll.RegisterVars(set, "ANGR"); err != nil {
		return err
	}
	if err := a.AnglePitch.RegisterVars(set, "ANGP"); err != nil {
		return err
	}
	if err := a.AngleYaw.RegisterVars(set, "ANGY"); err != nil {
		return err
	}
	if err := a.RateRoll.RegisterVars(set, "PIDR"); err != nil {
		return err
	}
	if err := a.RatePitch.RegisterVars(set, "PIDP"); err != nil {
		return err
	}
	return a.RateYaw.RegisterVars(set, "PIDY")
}
