package control

import (
	"math"

	"github.com/ares-cps/ares/internal/mathx"
)

// This file holds the structure-of-arrays controller bank that pairs with
// sim.BatchQuad: one set of shared gains plus per-lane scratch arrays
// (integrators[N], filter state[N], slew state[N]), so N lockstep rollouts
// run the full position→attitude→mixer cascade without N controller-object
// graphs. Lane k of a batch controller is bit-identical to the scalar
// controller it mirrors — enforced by batch_test.go — because each Update
// replays the scalar arithmetic in the same operation order on the lane's
// slots. The batched controllers deliberately do not expose vars.Ref
// registration: a lane that needs to be attacked or traced through the MPU
// memory map is flown on the scalar stack instead.

// BatchPID is N AC_PID controllers sharing one set of gains, with the live
// state (v5 INTEG, v6 INPUT and the filter memory) held in per-lane slots.
type BatchPID struct {
	kp, ki, kd, kff float64
	iMax            float64
	dt              float64
	alpha           float64 // low-pass coefficient for (FilterHz, DT)
	outMin, outMax  float64

	integrator []float64
	input      []float64
	lastInput  []float64
	hasInput   []bool
}

// NewBatchPID builds n lanes of the PID described by cfg, applying the same
// defaulting as NewPID (±5000 output range, 400 Hz period).
func NewBatchPID(cfg PIDConfig, n int) *BatchPID {
	outMin, outMax := cfg.OutMin, cfg.OutMax
	if outMin == 0 && outMax == 0 {
		outMin, outMax = -5000, 5000
	}
	dt := cfg.DT
	if dt <= 0 {
		dt = 1.0 / 400
	}
	return &BatchPID{
		kp: cfg.KP, ki: cfg.KI, kd: cfg.KD, kff: cfg.KFF,
		iMax:       cfg.IMax,
		dt:         dt,
		alpha:      mathx.LowPassAlpha(cfg.FilterHz, dt),
		outMin:     outMin,
		outMax:     outMax,
		integrator: make([]float64, n),
		input:      make([]float64, n),
		lastInput:  make([]float64, n),
		hasInput:   make([]bool, n),
	}
}

// Update runs one controller cycle for lane k, replaying PID.Update's exact
// filter → derivative → integrator → output sequence on the lane's state.
func (p *BatchPID) Update(k int, target, actual float64) float64 {
	err := target - actual

	if p.hasInput[k] {
		p.input[k] += (err - p.input[k]) * p.alpha
	} else {
		p.input[k] = err
		p.lastInput[k] = err
		p.hasInput[k] = true
	}

	derivative := 0.0
	if p.dt > 0 {
		derivative = (p.input[k] - p.lastInput[k]) / p.dt
	}
	p.lastInput[k] = p.input[k]

	if p.ki != 0 && p.dt > 0 {
		p.integrator[k] += p.input[k] * p.ki * p.dt
		if p.iMax > 0 {
			p.integrator[k] = mathx.Clamp(p.integrator[k], -p.iMax, p.iMax)
		}
	}

	sum := p.input[k]*p.kp + p.integrator[k] + derivative*p.kd + target*p.kff
	return mathx.Clamp(sum, p.outMin, p.outMax)
}

// Reset clears lane k's dynamic state, as PID.Reset does.
func (p *BatchPID) Reset(k int) {
	p.integrator[k] = 0
	p.input[k] = 0
	p.lastInput[k] = 0
	p.hasInput[k] = false
}

// Integrator returns lane k's integrator value.
func (p *BatchPID) Integrator(k int) float64 { return p.integrator[k] }

// sqrtCtl is SqrtController.Update as a pure function: the scalar type's
// only mutable fields are instrumentation, so the batched cascade shares
// the gains and skips the per-lane state entirely.
func sqrtCtl(p, secondOrdLim, err float64) float64 {
	if secondOrdLim <= 0 || p == 0 {
		return err * p
	}
	linearDist := secondOrdLim / (p * p)
	switch {
	case err > linearDist:
		return math.Sqrt(2 * secondOrdLim * (err - linearDist/2))
	case err < -linearDist:
		return -math.Sqrt(2 * secondOrdLim * (-err - linearDist/2))
	default:
		return err * p
	}
}

// BatchAttitude is N attitude cascades (angle sqrt controllers + rate PIDs)
// sharing one tune.
type BatchAttitude struct {
	angleP, accelLim    float64
	maxRate, maxYawRate float64
	rateR, rateP, rateY *BatchPID
}

// NewBatchAttitude builds n lanes of the attitude cascade.
func NewBatchAttitude(cfg AttitudeConfig, n int) *BatchAttitude {
	return &BatchAttitude{
		angleP:     cfg.AngleP,
		accelLim:   cfg.AccelLim,
		maxRate:    cfg.MaxRateRS,
		maxYawRate: cfg.MaxYawRateRS,
		rateR:      NewBatchPID(cfg.Rate, n),
		rateP:      NewBatchPID(cfg.Rate, n),
		rateY:      NewBatchPID(cfg.RateYaw, n),
	}
}

// Update runs one attitude cycle for lane k, mirroring
// AttitudeController.Update.
func (a *BatchAttitude) Update(k int, desRoll, desPitch, desYaw, roll, pitch, yaw float64, gyro mathx.Vec3) (tr, tp, ty float64) {
	eulerRateR := mathx.Clamp(sqrtCtl(a.angleP, a.accelLim, mathx.WrapPi(desRoll-roll)), -a.maxRate, a.maxRate)
	eulerRateP := mathx.Clamp(sqrtCtl(a.angleP, a.accelLim, mathx.WrapPi(desPitch-pitch)), -a.maxRate, a.maxRate)
	maxYaw := a.maxYawRate
	if maxYaw <= 0 {
		maxYaw = a.maxRate
	}
	eulerRateY := mathx.Clamp(sqrtCtl(a.angleP, a.accelLim, mathx.WrapPi(desYaw-yaw)), -maxYaw, maxYaw)

	sinR, cosR := math.Sin(roll), math.Cos(roll)
	sinP, cosP := math.Sin(pitch), math.Cos(pitch)
	rateTargetR := eulerRateR - sinP*eulerRateY
	rateTargetP := cosR*eulerRateP + sinR*cosP*eulerRateY
	rateTargetY := -sinR*eulerRateP + cosR*cosP*eulerRateY

	tr = a.rateR.Update(k, rateTargetR, gyro.X)
	tp = a.rateP.Update(k, rateTargetP, gyro.Y)
	ty = a.rateY.Update(k, rateTargetY, gyro.Z)
	return tr, tp, ty
}

// Reset clears lane k's rate-PID state.
func (a *BatchAttitude) Reset(k int) {
	a.rateR.Reset(k)
	a.rateP.Reset(k)
	a.rateY.Reset(k)
}

// BatchPosition is N position cascades sharing one tune; the velocity-slew
// memory (NTUN DVelX/DVelY) is the only per-lane state beyond the PIDs.
type BatchPosition struct {
	posP, posZP            float64
	maxSpeedXY, maxSpeedZ  float64
	maxAccelXY             float64
	maxLean, hoverThrottle float64
	dt                     float64
	velX, velY, velZ       *BatchPID

	desVelX, desVelY []float64
}

// NewBatchPosition builds n lanes of the position cascade.
func NewBatchPosition(cfg PositionConfig, n int) *BatchPosition {
	dt := cfg.DT
	if dt <= 0 {
		dt = 1.0 / 400
	}
	return &BatchPosition{
		posP:          cfg.PosP,
		posZP:         cfg.PosZP,
		maxSpeedXY:    cfg.MaxSpeedXY,
		maxSpeedZ:     cfg.MaxSpeedZ,
		maxAccelXY:    cfg.MaxAccelXY,
		maxLean:       cfg.MaxLeanAngle,
		hoverThrottle: cfg.HoverThrottle,
		dt:            dt,
		velX:          NewBatchPID(cfg.VelXY, n),
		velY:          NewBatchPID(cfg.VelXY, n),
		velZ:          NewBatchPID(cfg.VelZ, n),
		desVelX:       make([]float64, n),
		desVelY:       make([]float64, n),
	}
}

// Update runs one position cycle for lane k, mirroring
// PositionController.Update (including its hard-coded sqrt-controller
// second-order limits of 2.0 horizontal, 1.5 vertical).
func (c *BatchPosition) Update(k int, targetPos, pos, vel mathx.Vec3, yaw float64) (desRoll, desPitch, throttle float64) {
	errN := targetPos.X - pos.X
	errE := targetPos.Y - pos.Y
	errDist := math.Hypot(errN, errE)
	speed := mathx.Clamp(sqrtCtl(c.posP, 2.0, errDist), 0, c.maxSpeedXY)
	rawVelX, rawVelY := 0.0, 0.0
	if errDist > 1e-9 {
		rawVelX = speed * errN / errDist
		rawVelY = speed * errE / errDist
	}
	if c.maxAccelXY > 0 {
		maxStep := c.maxAccelXY * c.dt
		c.desVelX[k] += mathx.Clamp(rawVelX-c.desVelX[k], -maxStep, maxStep)
		c.desVelY[k] += mathx.Clamp(rawVelY-c.desVelY[k], -maxStep, maxStep)
	} else {
		c.desVelX[k], c.desVelY[k] = rawVelX, rawVelY
	}

	desAccX := c.velX.Update(k, c.desVelX[k], vel.X)
	desAccY := c.velY.Update(k, c.desVelY[k], vel.Y)

	cy, sy := math.Cos(yaw), math.Sin(yaw)
	accFwd := desAccX*cy + desAccY*sy
	accRight := -desAccX*sy + desAccY*cy
	desPitch = mathx.Clamp(-math.Atan2(accFwd, gravityMS2), -c.maxLean, c.maxLean)
	desRoll = mathx.Clamp(math.Atan2(accRight, gravityMS2), -c.maxLean, c.maxLean)

	altErr := -(targetPos.Z - pos.Z)
	climb := mathx.Clamp(sqrtCtl(c.posZP, 1.5, altErr), -c.maxSpeedZ, c.maxSpeedZ)
	climbMeas := -vel.Z
	delta := c.velZ.Update(k, climb, climbMeas)
	throttle = mathx.Clamp(c.hoverThrottle+delta, 0, 1)
	return desRoll, desPitch, throttle
}

// Reset clears lane k's velocity PIDs and slew memory.
func (c *BatchPosition) Reset(k int) {
	c.velX.Reset(k)
	c.velY.Reset(k)
	c.velZ.Reset(k)
	c.desVelX[k] = 0
	c.desVelY[k] = 0
}

// mix is Mixer.Mix as a pure function (lastCmd is logging-only state).
func mix(throttle, rollT, pitchT, yawT float64) [4]float64 {
	base := [4]float64{
		throttle - rollT + pitchT,
		throttle + rollT - pitchT,
		throttle + rollT + pitchT,
		throttle - rollT - pitchT,
	}
	yawSign := [4]float64{1, 1, -1, -1}
	scale := 1.0
	for i := range base {
		y := yawT * yawSign[i]
		if y == 0 {
			continue
		}
		headroom := 1 - base[i]
		if y < 0 {
			headroom = base[i]
		}
		if need := math.Abs(y); need > 0 && headroom < need {
			if headroom < 0 {
				headroom = 0
			}
			if s := headroom / need; s < scale {
				scale = s
			}
		}
	}
	var cmd [4]float64
	for i := range cmd {
		cmd[i] = mathx.Clamp(base[i]+yawT*yawSign[i]*scale, 0, 1)
	}
	return cmd
}

// BatchCascade is the full per-lane guided-flight control stack: position
// cascade → attitude cascade → motor mixer, N lanes wide.
type BatchCascade struct {
	Pos *BatchPosition
	Att *BatchAttitude
	n   int
}

// NewBatchCascade builds n lanes of the combined cascade.
func NewBatchCascade(attCfg AttitudeConfig, posCfg PositionConfig, n int) *BatchCascade {
	return &BatchCascade{
		Pos: NewBatchPosition(posCfg, n),
		Att: NewBatchAttitude(attCfg, n),
		n:   n,
	}
}

// Len returns the number of lanes.
func (c *BatchCascade) Len() int { return c.n }

// Update runs one full control cycle for lane k: fly toward targetPos with
// heading desYaw given the measured state, returning the four motor
// commands. roll/pitch/yaw are the measured Euler angles; gyro the body
// rates.
func (c *BatchCascade) Update(k int, targetPos, pos, vel mathx.Vec3, roll, pitch, yaw, desYaw float64, gyro mathx.Vec3) [4]float64 {
	desRoll, desPitch, throttle := c.Pos.Update(k, targetPos, pos, vel, yaw)
	tr, tp, ty := c.Att.Update(k, desRoll, desPitch, desYaw, roll, pitch, yaw, gyro)
	return mix(throttle, tr, tp, ty)
}

// Reset clears lane k's dynamic state across both cascades.
func (c *BatchCascade) Reset(k int) {
	c.Pos.Reset(k)
	c.Att.Reset(k)
}
