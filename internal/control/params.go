package control

import (
	"fmt"
	"sort"
	"sync"
)

// Param describes one configurable control parameter in the ArduPilot style:
// a name, a default, a documented safe range, and optionally a live binding
// to the controller field it configures.
//
// The Min/Max range is what the firmware's validation enforces on GCS
// parameter writes. Ranges deliberately reproduce ArduPilot's occasionally
// oversized bounds (the "range validation bugs" reported by RVFuzzer and
// exploited in the paper's Figure 8): a syntactically valid PARAM_SET can
// still carry a physically dangerous value.
type Param struct {
	Name    string
	Default float64
	Min     float64
	Max     float64
	Desc    string

	value float64
	// ptr, when set, is the live controller field this parameter drives.
	ptr *float64
}

// Value returns the current parameter value.
func (p *Param) Value() float64 {
	if p.ptr != nil {
		return *p.ptr
	}
	return p.value
}

// ParamStore is the vehicle's parameter table, the substrate behind the
// MAVLink PARAM_SET/PARAM_REQUEST protocol.
type ParamStore struct {
	mu     sync.RWMutex
	params map[string]*Param
}

// NewParamStore creates a store preloaded with the standard ArduCopter-style
// parameter catalogue.
func NewParamStore() *ParamStore {
	s := &ParamStore{params: make(map[string]*Param, len(paramCatalogue))}
	for _, def := range paramCatalogue {
		p := def // copy
		p.value = p.Default
		s.params[p.Name] = &p
	}
	return s
}

// ErrUnknownParam is returned for parameter names not in the table.
type ErrUnknownParam struct{ Name string }

func (e *ErrUnknownParam) Error() string {
	return fmt.Sprintf("control: unknown parameter %q", e.Name)
}

// ErrParamRange is returned when a value violates the documented range.
type ErrParamRange struct {
	Name     string
	Value    float64
	Min, Max float64
}

func (e *ErrParamRange) Error() string {
	return fmt.Sprintf("control: parameter %q value %g outside [%g, %g]",
		e.Name, e.Value, e.Min, e.Max)
}

// Get returns the current value of a parameter.
func (s *ParamStore) Get(name string) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.params[name]
	if !ok {
		return 0, &ErrUnknownParam{Name: name}
	}
	return p.Value(), nil
}

// Set validates the value against the documented range and applies it,
// writing through to the bound controller field when present. This is the
// code path a GCS PARAM_SET command takes.
func (s *ParamStore) Set(name string, value float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.params[name]
	if !ok {
		return &ErrUnknownParam{Name: name}
	}
	if value < p.Min || value > p.Max {
		return &ErrParamRange{Name: name, Value: value, Min: p.Min, Max: p.Max}
	}
	p.value = value
	if p.ptr != nil {
		*p.ptr = value
	}
	return nil
}

// Bind attaches a live controller field to a parameter and pushes the
// current parameter value into it.
func (s *ParamStore) Bind(name string, ptr *float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.params[name]
	if !ok {
		return &ErrUnknownParam{Name: name}
	}
	p.ptr = ptr
	*ptr = p.value
	return nil
}

// Lookup returns the parameter definition (value, range, description).
func (s *ParamStore) Lookup(name string) (Param, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.params[name]
	if !ok {
		return Param{}, false
	}
	out := *p
	out.value = p.Value()
	out.ptr = nil
	return out, true
}

// Names returns all parameter names, sorted.
func (s *ParamStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.params))
	for n := range s.params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of parameters in the table.
func (s *ParamStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.params)
}

// paramCatalogue is the built-in parameter table. It reproduces a
// representative slice of ArduCopter's >2670-parameter surface: the rate and
// angle controller gains, position controller gains, navigation speeds,
// failsafe settings and tuning knobs the evaluation touches.
var paramCatalogue = []Param{
	// Roll rate PID (ATC_RAT_RLL_*). The ±5000-style oversized IMAX/FF
	// ranges mirror the validation defects RVFuzzer reported.
	{Name: "ATC_RAT_RLL_P", Default: 0.135, Min: 0.0, Max: 0.5, Desc: "Roll rate P gain"},
	{Name: "ATC_RAT_RLL_I", Default: 0.090, Min: 0.0, Max: 2.0, Desc: "Roll rate I gain"},
	{Name: "ATC_RAT_RLL_D", Default: 0.0036, Min: 0.0, Max: 0.05, Desc: "Roll rate D gain"},
	{Name: "ATC_RAT_RLL_IMAX", Default: 0.25, Min: 0, Max: 5000, Desc: "Roll rate integrator max (oversized range)"},
	{Name: "ATC_RAT_RLL_FF", Default: 0, Min: -5000, Max: 5000, Desc: "Roll rate feed-forward (oversized range)"},
	{Name: "ATC_RAT_RLL_FLTT", Default: 20, Min: 0, Max: 100, Desc: "Roll rate input filter Hz"},
	// Pitch rate PID.
	{Name: "ATC_RAT_PIT_P", Default: 0.135, Min: 0.0, Max: 0.5, Desc: "Pitch rate P gain"},
	{Name: "ATC_RAT_PIT_I", Default: 0.090, Min: 0.0, Max: 2.0, Desc: "Pitch rate I gain"},
	{Name: "ATC_RAT_PIT_D", Default: 0.0036, Min: 0.0, Max: 0.05, Desc: "Pitch rate D gain"},
	{Name: "ATC_RAT_PIT_IMAX", Default: 0.25, Min: 0, Max: 5000, Desc: "Pitch rate integrator max (oversized range)"},
	{Name: "ATC_RAT_PIT_FF", Default: 0, Min: -5000, Max: 5000, Desc: "Pitch rate feed-forward (oversized range)"},
	{Name: "ATC_RAT_PIT_FLTT", Default: 20, Min: 0, Max: 100, Desc: "Pitch rate input filter Hz"},
	// Yaw rate PID.
	{Name: "ATC_RAT_YAW_P", Default: 0.18, Min: 0.0, Max: 2.5, Desc: "Yaw rate P gain"},
	{Name: "ATC_RAT_YAW_I", Default: 0.018, Min: 0.0, Max: 1.0, Desc: "Yaw rate I gain"},
	{Name: "ATC_RAT_YAW_D", Default: 0, Min: 0.0, Max: 0.02, Desc: "Yaw rate D gain"},
	{Name: "ATC_RAT_YAW_IMAX", Default: 0.5, Min: 0, Max: 5000, Desc: "Yaw rate integrator max (oversized range)"},
	{Name: "ATC_RAT_YAW_FLTT", Default: 5, Min: 0, Max: 100, Desc: "Yaw rate input filter Hz"},
	// Angle P controllers.
	{Name: "ATC_ANG_RLL_P", Default: 4.5, Min: 3.0, Max: 12.0, Desc: "Roll angle P gain"},
	{Name: "ATC_ANG_PIT_P", Default: 4.5, Min: 3.0, Max: 12.0, Desc: "Pitch angle P gain"},
	{Name: "ATC_ANG_YAW_P", Default: 4.5, Min: 3.0, Max: 12.0, Desc: "Yaw angle P gain"},
	{Name: "ATC_ACCEL_R_MAX", Default: 72000, Min: 0, Max: 180000, Desc: "Roll accel max cdeg/s/s"},
	{Name: "ATC_ACCEL_P_MAX", Default: 72000, Min: 0, Max: 180000, Desc: "Pitch accel max cdeg/s/s"},
	{Name: "ATC_ACCEL_Y_MAX", Default: 18000, Min: 0, Max: 72000, Desc: "Yaw accel max cdeg/s/s"},
	// Position/velocity controllers.
	{Name: "PSC_POSXY_P", Default: 1.0, Min: 0.5, Max: 2.0, Desc: "Horizontal position P gain"},
	{Name: "PSC_VELXY_P", Default: 2.0, Min: 0.1, Max: 6.0, Desc: "Horizontal velocity P gain"},
	{Name: "PSC_VELXY_I", Default: 1.0, Min: 0.02, Max: 1.0, Desc: "Horizontal velocity I gain"},
	{Name: "PSC_VELXY_D", Default: 0.5, Min: 0.0, Max: 1.0, Desc: "Horizontal velocity D gain"},
	{Name: "PSC_POSZ_P", Default: 1.0, Min: 1.0, Max: 3.0, Desc: "Vertical position P gain"},
	{Name: "PSC_VELZ_P", Default: 0.3, Min: 0.1, Max: 8.0, Desc: "Vertical velocity P gain"},
	{Name: "PSC_ACCZ_P", Default: 0.5, Min: 0.2, Max: 1.5, Desc: "Vertical accel P gain"},
	{Name: "PSC_ACCZ_I", Default: 1.0, Min: 0.0, Max: 3.0, Desc: "Vertical accel I gain"},
	// Navigation.
	{Name: "WPNAV_SPEED", Default: 500, Min: 20, Max: 2000, Desc: "Waypoint speed cm/s"},
	{Name: "WPNAV_SPEED_UP", Default: 250, Min: 10, Max: 1000, Desc: "Climb speed cm/s"},
	{Name: "WPNAV_SPEED_DN", Default: 150, Min: 10, Max: 500, Desc: "Descent speed cm/s"},
	{Name: "WPNAV_RADIUS", Default: 200, Min: 5, Max: 1000, Desc: "Waypoint acceptance radius cm"},
	{Name: "WPNAV_ACCEL", Default: 100, Min: 50, Max: 500, Desc: "Waypoint accel cm/s/s"},
	{Name: "ANGLE_MAX", Default: 3000, Min: 1000, Max: 8000, Desc: "Max lean angle cdeg"},
	{Name: "PILOT_SPEED_UP", Default: 250, Min: 50, Max: 500, Desc: "Pilot climb rate cm/s"},
	// EKF / estimation.
	{Name: "EK2_VELNE_M_NSE", Default: 0.5, Min: 0.05, Max: 5.0, Desc: "EKF GPS velocity noise m/s"},
	{Name: "EK2_POSNE_M_NSE", Default: 1.0, Min: 0.1, Max: 10.0, Desc: "EKF GPS position noise m"},
	{Name: "EK2_ALT_M_NSE", Default: 3.0, Min: 0.1, Max: 10.0, Desc: "EKF baro noise m"},
	{Name: "EK2_GYRO_P_NSE", Default: 0.03, Min: 0.0001, Max: 0.1, Desc: "EKF gyro process noise"},
	{Name: "EK2_ACC_P_NSE", Default: 0.6, Min: 0.01, Max: 1.0, Desc: "EKF accel process noise"},
	{Name: "EKF_VEL_GAIN_SCALER", Default: 1.0, Min: 0.0, Max: 10.0, Desc: "EKF nav velocity gain scaler (PX4 EKFNAVVELGAINSCALER analogue)"},
	// Motors and battery.
	{Name: "MOT_SPIN_MIN", Default: 0.15, Min: 0.0, Max: 0.3, Desc: "Motor spin minimum"},
	{Name: "MOT_SPIN_MAX", Default: 0.95, Min: 0.9, Max: 1.0, Desc: "Motor spin maximum"},
	{Name: "MOT_THST_HOVER", Default: 0.4, Min: 0.125, Max: 0.6875, Desc: "Learned hover throttle"},
	{Name: "BATT_LOW_VOLT", Default: 10.5, Min: 0, Max: 50, Desc: "Battery low voltage failsafe"},
	{Name: "BATT_CAPACITY", Default: 5100, Min: 0, Max: 100000, Desc: "Battery capacity mAh"},
	// Failsafes and modes.
	{Name: "FS_THR_ENABLE", Default: 1, Min: 0, Max: 3, Desc: "Throttle failsafe enable"},
	{Name: "FS_BATT_ENABLE", Default: 1, Min: 0, Max: 2, Desc: "Battery failsafe enable"},
	{Name: "RTL_ALT", Default: 1500, Min: 200, Max: 8000, Desc: "RTL altitude cm"},
	{Name: "LAND_SPEED", Default: 50, Min: 30, Max: 200, Desc: "Landing speed cm/s"},
	// SINS complementary gains.
	{Name: "SINS_VEL_GAIN", Default: 1.0, Min: 0.0, Max: 5.0, Desc: "SINS velocity correction gain"},
	{Name: "SINS_POS_GAIN", Default: 0.5, Min: 0.0, Max: 5.0, Desc: "SINS position correction gain"},
	// Logging.
	{Name: "LOG_BITMASK", Default: 65535, Min: 0, Max: 65535, Desc: "Dataflash logging bitmask"},
	{Name: "LOG_FILE_RATEMAX", Default: 16, Min: 0, Max: 400, Desc: "Dataflash log rate Hz"},
	// Tuning scalers.
	{Name: "TUNE_SCALER", Default: 1.0, Min: 0.0, Max: 10.0, Desc: "In-flight tuning scaler"},
	{Name: "SCHED_LOOP_RATE", Default: 400, Min: 50, Max: 400, Desc: "Main loop rate Hz"},
}
