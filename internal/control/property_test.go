package control

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ares-cps/ares/internal/mathx"
)

// TestPropertyPIDOutputBounded: for any gain set and any input sequence, the
// PID output never leaves [OutMin, OutMax] and the integrator never exceeds
// its clamp.
func TestPropertyPIDOutputBounded(t *testing.T) {
	f := func(seed int64, kp, ki, kd, imax float64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := PIDConfig{
			KP:     math.Mod(math.Abs(kp), 10),
			KI:     math.Mod(math.Abs(ki), 10),
			KD:     math.Mod(math.Abs(kd), 1),
			IMax:   math.Mod(math.Abs(imax), 5) + 0.01,
			DT:     1.0 / 400,
			OutMin: -1, OutMax: 1,
		}
		p := NewPID(cfg)
		for i := 0; i < 500; i++ {
			out := p.Update(r.NormFloat64()*10, r.NormFloat64()*10)
			if out < cfg.OutMin-1e-12 || out > cfg.OutMax+1e-12 {
				return false
			}
			if math.Abs(p.Integrator()) > cfg.IMax+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertySqrtControllerOddAndMonotone: the square-root controller is an
// odd, monotone function of the error for any positive gain and limit.
func TestPropertySqrtController(t *testing.T) {
	f := func(pRaw, limRaw float64) bool {
		p := math.Mod(math.Abs(pRaw), 20) + 0.1
		lim := math.Mod(math.Abs(limRaw), 50) + 0.1
		s := NewSqrtController(p, lim)
		prev := math.Inf(-1)
		for e := -20.0; e <= 20.0; e += 0.05 {
			out := s.Update(e)
			if out < prev-1e-9 {
				return false // not monotone
			}
			prev = out
			// Odd symmetry.
			if math.Abs(s.Update(-e)+out) > 1e-9 {
				return false
			}
			// Never exceeds the linear response magnitude.
			if math.Abs(out) > math.Abs(e*p)+1e-9 {
				return false
			}
			// Restore monotonic sweep state (Update(-e) disturbed it).
			prev = s.Update(e)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMixerConservation: for any demands, the mixer keeps every
// motor in [0, 1] and the average motor command equals the throttle whenever
// no motor saturates (torque demands are differential).
func TestPropertyMixer(t *testing.T) {
	f := func(thr, rollT, pitchT, yawT float64) bool {
		thr = math.Mod(math.Abs(thr), 1)
		rollT = math.Mod(rollT, 1)
		pitchT = math.Mod(pitchT, 1)
		yawT = math.Mod(yawT, 1)
		var m Mixer
		cmd := m.Mix(thr, rollT, pitchT, yawT)
		saturated := false
		sum := 0.0
		for _, c := range cmd {
			if c < 0 || c > 1 {
				return false
			}
			if c == 0 || c == 1 {
				saturated = true
			}
			sum += c
		}
		if !saturated && math.Abs(sum/4-thr) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParamStoreRangeInvariant: after any sequence of Set attempts,
// every parameter's value remains inside its documented range.
func TestPropertyParamStoreRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewParamStore()
		names := s.Names()
		for i := 0; i < 100; i++ {
			name := names[r.Intn(len(names))]
			_ = s.Set(name, r.NormFloat64()*1000) // may fail; that's fine
		}
		for _, name := range names {
			p, ok := s.Lookup(name)
			if !ok {
				return false
			}
			if v := p.Value(); v < p.Min-1e-9 || v > p.Max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPositionControllerOutputsBounded: lean angles stay within the
// configured limit and throttle within [0, 1] for arbitrary states.
func TestPropertyPositionControllerBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewPositionController(DefaultPositionConfig(1.0/400, 0.4))
		for i := 0; i < 200; i++ {
			target := mathx.V3(r.NormFloat64()*100, r.NormFloat64()*100, -math.Abs(r.NormFloat64()*50))
			pos := mathx.V3(r.NormFloat64()*100, r.NormFloat64()*100, -math.Abs(r.NormFloat64()*50))
			vel := mathx.V3(r.NormFloat64()*10, r.NormFloat64()*10, r.NormFloat64()*5)
			yaw := r.NormFloat64() * 3
			desRoll, desPitch, thr := c.Update(target, pos, vel, yaw)
			if math.Abs(desRoll) > c.MaxLeanAngle+1e-9 ||
				math.Abs(desPitch) > c.MaxLeanAngle+1e-9 {
				return false
			}
			if thr < 0 || thr > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
