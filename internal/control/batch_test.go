package control

import (
	"fmt"
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
)

// scalarCascade composes the scalar controllers exactly as the batched
// cascade does, for bit-identity comparison.
type scalarCascade struct {
	pos *PositionController
	att *AttitudeController
	mix *Mixer
}

func newScalarCascade(dt, hover float64) *scalarCascade {
	return &scalarCascade{
		pos: NewPositionController(DefaultPositionConfig(dt, hover)),
		att: NewAttitudeController(DefaultAttitudeConfig(dt)),
		mix: &Mixer{},
	}
}

func (s *scalarCascade) update(targetPos, pos, vel mathx.Vec3, roll, pitch, yaw, desYaw float64, gyro mathx.Vec3) [4]float64 {
	desRoll, desPitch, throttle := s.pos.Update(targetPos, pos, vel, yaw)
	tr, tp, ty := s.att.Update(desRoll, desPitch, desYaw, roll, pitch, yaw, gyro)
	return s.mix.Mix(throttle, tr, tp, ty)
}

// laneState synthesizes a deterministic, lane-dependent flight state that
// sweeps targets, attitudes and rates through realistic and extreme values.
func laneState(lane, step int) (targetPos, pos, vel mathx.Vec3, roll, pitch, yaw, desYaw float64, gyro mathx.Vec3) {
	f := float64((step+53*lane)%1009) / 1009
	g := float64((step+29*lane)%613) / 613
	targetPos = mathx.V3(20*f, 10*(g-0.5), -8)
	pos = mathx.V3(18*f, 9*(g-0.5), -7.5+f)
	vel = mathx.V3(3*(f-0.5), 2*(g-0.5), 0.5*(f-g))
	roll = 0.4 * (f - 0.5)
	pitch = 0.3 * (g - 0.5)
	yaw = 3 * (f - 0.5)
	desYaw = 3 * (g - 0.5)
	gyro = mathx.V3(1.5*(g-0.5), 1.2*(f-0.5), 0.8*(f-g))
	return
}

// TestBatchCascadeEquivalence checks every lane of the batched cascade is
// bit-identical to an independently stepped scalar cascade, at N ∈ {1, 8, 64}.
func TestBatchCascadeEquivalence(t *testing.T) {
	const dt = 1.0 / 400
	const hover = 0.39
	for _, n := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			batch := NewBatchCascade(DefaultAttitudeConfig(dt), DefaultPositionConfig(dt, hover), n)
			if batch.Len() != n {
				t.Fatalf("Len = %d, want %d", batch.Len(), n)
			}
			scalars := make([]*scalarCascade, n)
			for k := range scalars {
				scalars[k] = newScalarCascade(dt, hover)
			}
			steps := 20000 / n * 4
			if steps > 20000 {
				steps = 20000
			}
			for i := 0; i < steps; i++ {
				for k := 0; k < n; k++ {
					tp, p, v, roll, pitch, yaw, desYaw, gyro := laneState(k, i)
					got := batch.Update(k, tp, p, v, roll, pitch, yaw, desYaw, gyro)
					want := scalars[k].update(tp, p, v, roll, pitch, yaw, desYaw, gyro)
					if got != want {
						t.Fatalf("lane %d step %d: motors %v vs scalar %v", k, i, got, want)
					}
				}
			}
			// Integrator state must match too, not just outputs.
			for k := range scalars {
				if bi, si := batch.Att.rateR.Integrator(k), scalars[k].att.RateRoll.Integrator(); bi != si {
					t.Fatalf("lane %d: rate-roll integrator %v vs scalar %v", k, bi, si)
				}
				if bi, si := batch.Pos.velZ.Integrator(k), scalars[k].pos.VelZ.Integrator(); bi != si {
					t.Fatalf("lane %d: vel-z integrator %v vs scalar %v", k, bi, si)
				}
			}
		})
	}
}

// TestBatchCascadeResetIsolation resets one lane and checks (a) it matches a
// fresh scalar cascade afterwards and (b) neighboring lanes are untouched.
func TestBatchCascadeResetIsolation(t *testing.T) {
	const dt = 1.0 / 400
	const hover = 0.39
	const n = 4
	batch := NewBatchCascade(DefaultAttitudeConfig(dt), DefaultPositionConfig(dt, hover), n)
	scalars := make([]*scalarCascade, n)
	for k := range scalars {
		scalars[k] = newScalarCascade(dt, hover)
	}
	step := func(from, to int) {
		for i := from; i < to; i++ {
			for k := 0; k < n; k++ {
				tp, p, v, roll, pitch, yaw, desYaw, gyro := laneState(k, i)
				got := batch.Update(k, tp, p, v, roll, pitch, yaw, desYaw, gyro)
				want := scalars[k].update(tp, p, v, roll, pitch, yaw, desYaw, gyro)
				if got != want {
					t.Fatalf("lane %d step %d diverged after reset", k, i)
				}
			}
		}
	}
	step(0, 500)
	batch.Reset(2)
	scalars[2] = newScalarCascade(dt, hover)
	scalars[2].pos.Reset() // fresh anyway; keep both paths explicit
	scalars[2].att.Reset()
	step(500, 1000)
}

// TestBatchPIDEquivalence drives a standalone BatchPID against scalar PIDs
// through filter warm-up, integrator clamping and output clamping.
func TestBatchPIDEquivalence(t *testing.T) {
	cfg := PIDConfig{KP: 1.2, KI: 0.7, KD: 0.01, KFF: 0.1, IMax: 0.3, FilterHz: 10, DT: 1.0 / 400, OutMin: -0.8, OutMax: 0.8}
	const n = 8
	bp := NewBatchPID(cfg, n)
	sp := make([]*PID, n)
	for k := range sp {
		sp[k] = NewPID(cfg)
	}
	for i := 0; i < 5000; i++ {
		for k := 0; k < n; k++ {
			target := math.Sin(float64(i)/50 + float64(k))
			actual := 0.8 * math.Sin(float64(i)/50+float64(k)-0.2)
			got := bp.Update(k, target, actual)
			want := sp[k].Update(target, actual)
			if got != want {
				t.Fatalf("lane %d step %d: %v vs %v", k, i, got, want)
			}
		}
	}
	bp.Reset(3)
	sp[3].Reset()
	for i := 0; i < 100; i++ {
		got := bp.Update(3, 1, 0.5)
		want := sp[3].Update(1, 0.5)
		if got != want {
			t.Fatalf("post-reset step %d: %v vs %v", i, got, want)
		}
	}
}

// TestBatchPIDDefaulting checks NewBatchPID applies NewPID's defaults.
func TestBatchPIDDefaulting(t *testing.T) {
	bp := NewBatchPID(PIDConfig{KP: 1}, 1)
	if bp.outMin != -5000 || bp.outMax != 5000 {
		t.Fatalf("default range [%v, %v], want ±5000", bp.outMin, bp.outMax)
	}
	if bp.dt != 1.0/400 {
		t.Fatalf("default dt %v, want 1/400", bp.dt)
	}
}

// TestBatchCascadeUpdateAllocs asserts a full per-lane cascade cycle is
// allocation-free.
func TestBatchCascadeUpdateAllocs(t *testing.T) {
	const dt = 1.0 / 400
	batch := NewBatchCascade(DefaultAttitudeConfig(dt), DefaultPositionConfig(dt, 0.39), 8)
	tp, p, v, roll, pitch, yaw, desYaw, gyro := laneState(0, 0)
	allocs := testing.AllocsPerRun(200, func() {
		for k := 0; k < 8; k++ {
			batch.Update(k, tp, p, v, roll, pitch, yaw, desYaw, gyro)
		}
	})
	if allocs != 0 {
		t.Fatalf("cascade Update allocates %v times per sweep, want 0", allocs)
	}
}
