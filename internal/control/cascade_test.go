package control

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
	"github.com/ares-cps/ares/internal/vars"
)

const testDT = 1.0 / 400

func TestAttitudeControllerCommandsTowardTarget(t *testing.T) {
	a := NewAttitudeController(DefaultAttitudeConfig(testDT))
	// Vehicle level, target roll +10°: roll torque demand must be positive.
	tr, tp, ty := a.Update(mathx.Rad(10), 0, 0, 0, 0, 0, mathx.Vec3{})
	if tr <= 0 {
		t.Errorf("roll torque = %v, want > 0", tr)
	}
	if math.Abs(tp) > 1e-9 || math.Abs(ty) > 1e-9 {
		t.Errorf("pitch/yaw torque = %v/%v, want 0", tp, ty)
	}
}

func TestAttitudeControllerYawWrap(t *testing.T) {
	a := NewAttitudeController(DefaultAttitudeConfig(testDT))
	// Target yaw 179°, measured -179°: shortest path is -2°, so the yaw
	// demand must be negative, not a +358° slew.
	_, _, ty := a.Update(0, 0, mathx.Rad(179), 0, 0, mathx.Rad(-179), mathx.Vec3{})
	if ty >= 0 {
		t.Errorf("yaw torque = %v, want < 0 (wrap-aware)", ty)
	}
}

func TestAttitudeControllerRegisterVars(t *testing.T) {
	a := NewAttitudeController(DefaultAttitudeConfig(testDT))
	set := vars.NewSet()
	if err := a.RegisterVars(set); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ATT.DesRoll", "ATT.Roll", "RATE.RDes",
		"PIDR.INTEG", "PIDP.KP", "PIDY.OUT", "ANGR.P",
	} {
		if _, ok := set.Lookup(name); !ok {
			t.Errorf("missing variable %s", name)
		}
	}
}

func TestPositionControllerHorizontal(t *testing.T) {
	cfg := DefaultPositionConfig(testDT, 0.4)
	c := NewPositionController(cfg)
	// Target 10 m north of the vehicle, yaw 0: expect a pitch-forward
	// (negative pitch) command and near-zero roll.
	desRoll, desPitch, _ := c.Update(
		mathx.V3(10, 0, -5), mathx.V3(0, 0, -5), mathx.Vec3{}, 0)
	if desPitch >= 0 {
		t.Errorf("desPitch = %v, want < 0 (nose down to accelerate north)", desPitch)
	}
	if math.Abs(desRoll) > 1e-6 {
		t.Errorf("desRoll = %v, want ~0", desRoll)
	}
	// Target east with yaw 0: expect positive roll.
	c2 := NewPositionController(cfg)
	desRoll2, _, _ := c2.Update(
		mathx.V3(0, 10, -5), mathx.V3(0, 0, -5), mathx.Vec3{}, 0)
	if desRoll2 <= 0 {
		t.Errorf("desRoll = %v, want > 0 (roll right to accelerate east)", desRoll2)
	}
}

func TestPositionControllerHeadingFrame(t *testing.T) {
	cfg := DefaultPositionConfig(testDT, 0.4)
	c := NewPositionController(cfg)
	// Target north, but vehicle yawed 90° (facing east): the target is to
	// the vehicle's left, so it must roll left (negative).
	desRoll, _, _ := c.Update(
		mathx.V3(10, 0, -5), mathx.V3(0, 0, -5), mathx.Vec3{}, math.Pi/2)
	if desRoll >= 0 {
		t.Errorf("desRoll = %v, want < 0 when target is to the left", desRoll)
	}
}

func TestPositionControllerVertical(t *testing.T) {
	cfg := DefaultPositionConfig(testDT, 0.4)
	c := NewPositionController(cfg)
	// Below target: throttle must exceed hover.
	_, _, thr := c.Update(mathx.V3(0, 0, -10), mathx.V3(0, 0, -5), mathx.Vec3{}, 0)
	if thr <= cfg.HoverThrottle {
		t.Errorf("throttle = %v, want > hover %v", thr, cfg.HoverThrottle)
	}
	// Above target: throttle below hover.
	c2 := NewPositionController(cfg)
	_, _, thr2 := c2.Update(mathx.V3(0, 0, -5), mathx.V3(0, 0, -10), mathx.Vec3{}, 0)
	if thr2 >= cfg.HoverThrottle {
		t.Errorf("throttle = %v, want < hover %v", thr2, cfg.HoverThrottle)
	}
}

func TestPositionControllerLeanAngleClamp(t *testing.T) {
	cfg := DefaultPositionConfig(testDT, 0.4)
	c := NewPositionController(cfg)
	// Huge error must not exceed the lean-angle limit.
	_, desPitch, _ := c.Update(mathx.V3(1e6, 0, 0), mathx.Vec3{}, mathx.Vec3{}, 0)
	if math.Abs(desPitch) > cfg.MaxLeanAngle+1e-12 {
		t.Errorf("lean angle %v exceeds limit %v", desPitch, cfg.MaxLeanAngle)
	}
}

func TestPositionControllerRegisterVars(t *testing.T) {
	c := NewPositionController(DefaultPositionConfig(testDT, 0.4))
	set := vars.NewSet()
	if err := c.RegisterVars(set); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"NTUN.DVelX", "NTUN.tv", "CTUN.ThO", "SQP.P", "PIDVX.INTEG", "PIDVZ.KP",
	} {
		if _, ok := set.Lookup(name); !ok {
			t.Errorf("missing variable %s", name)
		}
	}
}

func TestMixerDirections(t *testing.T) {
	var m Mixer
	// Pure throttle: all equal.
	cmd := m.Mix(0.5, 0, 0, 0)
	for i, c := range cmd {
		if c != 0.5 {
			t.Errorf("motor %d = %v, want 0.5", i, c)
		}
	}
	// Positive roll torque demand: left motors (m1 BL, m2 FL) higher.
	cmd = m.Mix(0.5, 0.1, 0, 0)
	if !(cmd[1] > cmd[0] && cmd[2] > cmd[3]) {
		t.Errorf("roll mix = %v", cmd)
	}
	// Positive pitch: front motors (m0, m2) higher.
	cmd = m.Mix(0.5, 0, 0.1, 0)
	if !(cmd[0] > cmd[1] && cmd[2] > cmd[3]) {
		t.Errorf("pitch mix = %v", cmd)
	}
	// Positive yaw: CCW motors (m0, m1) higher.
	cmd = m.Mix(0.5, 0, 0, 0.1)
	if !(cmd[0] > cmd[2] && cmd[1] > cmd[3]) {
		t.Errorf("yaw mix = %v", cmd)
	}
	// Saturation clamps to [0, 1].
	cmd = m.Mix(0.9, 0.5, 0.5, 0.5)
	for i, c := range cmd {
		if c < 0 || c > 1 {
			t.Errorf("motor %d = %v out of range", i, c)
		}
	}
	if m.LastCommands() != cmd {
		t.Error("LastCommands mismatch")
	}
}

// TestClosedLoopStabilization is the control package's integration test: the
// full cascade flying the simulated quadrotor must reach and hold a hover
// setpoint.
func TestClosedLoopStabilization(t *testing.T) {
	quad, err := sim.NewQuad(sim.IRISPlusParams(), sim.WithInitialState(sim.State{
		Pos: mathx.V3(0, 0, -10),
		Att: mathx.QuatIdentity(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	hover := quad.Params.HoverThrottle()
	att := NewAttitudeController(DefaultAttitudeConfig(testDT))
	pos := NewPositionController(DefaultPositionConfig(testDT, hover))
	var mix Mixer

	target := mathx.V3(5, 3, -12)
	for i := 0; i < 20*400; i++ { // 20 s
		st := quad.State()
		roll, pitch, yaw := st.Euler()
		desRoll, desPitch, thr := pos.Update(target, st.Pos, st.Vel, yaw)
		tr, tp, ty := att.Update(desRoll, desPitch, 0, roll, pitch, yaw, st.Omega)
		quad.Step(mix.Mix(thr, tr, tp, ty), testDT)
	}
	if crashed, reason := quad.Crashed(); crashed {
		t.Fatalf("vehicle crashed during hover test: %s", reason)
	}
	final := quad.State().Pos
	if final.Dist(target) > 0.5 {
		t.Errorf("final position %v, want within 0.5 m of %v", final, target)
	}
	if quad.State().Vel.Norm() > 0.3 {
		t.Errorf("final speed %v, want near hover", quad.State().Vel.Norm())
	}
}

func TestSINSIntegratesMotion(t *testing.T) {
	s := NewSINS()
	// Constant 1 m/s² north specific force with level attitude: after 1 s,
	// velocity ~1 m/s and position ~0.5 m.
	att := mathx.QuatIdentity()
	accBody := mathx.V3(1, 0, -gravityMS2) // specific force includes gravity reaction
	for i := 0; i < 400; i++ {
		s.Predict(accBody, att, testDT)
	}
	v := s.Velocity()
	if !mathx.ApproxEqual(v.X, 1, 0.01) || math.Abs(v.Z) > 0.01 {
		t.Errorf("velocity = %v, want ~(1,0,0)", v)
	}
	p := s.Position()
	if !mathx.ApproxEqual(p.X, 0.5, 0.01) {
		t.Errorf("position = %v, want x≈0.5", p)
	}
}

func TestSINSCorrections(t *testing.T) {
	s := NewSINS()
	s.Predict(mathx.V3(0, 0, -gravityMS2), mathx.QuatIdentity(), 0.1)
	// Estimate is at origin; aiding source says (1, 0, 0).
	for i := 0; i < 200; i++ {
		s.Predict(mathx.V3(0, 0, -gravityMS2), mathx.QuatIdentity(), 0.1)
		s.CorrectPosition(mathx.V3(1, 0, 0))
		s.CorrectVelocity(mathx.Vec3{})
	}
	if got := s.Position().X; !mathx.ApproxEqual(got, 1, 0.05) {
		t.Errorf("corrected position x = %v, want ~1", got)
	}
	if got := s.Velocity().Norm(); got > 0.05 {
		t.Errorf("corrected velocity = %v, want ~0", got)
	}
}

func TestSINSResetAndVars(t *testing.T) {
	s := NewSINS()
	s.Reset(mathx.V3(1, 2, 3), mathx.V3(4, 5, 6))
	if s.Position() != mathx.V3(1, 2, 3) || s.Velocity() != mathx.V3(4, 5, 6) {
		t.Error("Reset did not apply")
	}
	set := vars.NewSet()
	if err := s.RegisterVars(set, "SINS"); err != nil {
		t.Fatal(err)
	}
	ref, ok := set.Lookup("SINS.PN")
	if !ok || ref.Get() != 1 {
		t.Errorf("SINS.PN = %v, %v", ref, ok)
	}
	if got := len(set.Names()); got != 11 {
		t.Errorf("SINS registered %d vars, want 11", got)
	}
	// Zero-dt Predict is a no-op.
	before := s.Position()
	s.Predict(mathx.V3(100, 0, 0), mathx.QuatIdentity(), 0)
	if s.Position() != before {
		t.Error("zero-dt Predict changed state")
	}
}
