package control

import (
	"fmt"
	"testing"
)

// BenchmarkCascadeStep is the scalar full-cascade (position → attitude →
// mixer) per-lane-cycle baseline.
func BenchmarkCascadeStep(b *testing.B) {
	const dt = 1.0 / 400
	sc := newScalarCascade(dt, 0.39)
	tp, p, v, roll, pitch, yaw, desYaw, gyro := laneState(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.update(tp, p, v, roll, pitch, yaw, desYaw, gyro)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trial-step")
}

// BenchmarkBatchCascadeStep measures the SoA cascade bank; one iteration
// sweeps all N lanes, so ns/trial-step compares against the scalar baseline.
func BenchmarkBatchCascadeStep(b *testing.B) {
	const dt = 1.0 / 400
	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			batch := NewBatchCascade(DefaultAttitudeConfig(dt), DefaultPositionConfig(dt, 0.39), n)
			tp, p, v, roll, pitch, yaw, desYaw, gyro := laneState(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < n; k++ {
					batch.Update(k, tp, p, v, roll, pitch, yaw, desYaw, gyro)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/trial-step")
		})
	}
}
