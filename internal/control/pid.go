// Package control implements the ArduPilot-style cascaded controller stack:
// the AC_PID rate controller with its intermediate variables, the square
// root controller used for position and angle errors, the strapdown inertial
// navigation (SINS) corrector, the attitude and position cascades, and the
// quad-X motor mixer.
//
// Every controller keeps its internal state in plain float64 fields and
// exposes them through vars.Ref so the firmware layer can (a) place them in
// MPU memory regions, (b) trace them for the ESVL, and (c) let the attack
// layer manipulate them exactly as a memory-corrupting adversary would.
package control

import (
	"math"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

// PID is a single-axis PID controller modeled on ArduPilot's AC_PID: a
// filtered input, a clamped integrator, a filtered derivative, an optional
// feed-forward term and an output scaler.
//
// The exported-by-reference intermediate variables correspond to the
// v1..v7 intermediates of the paper's Figure 3: KP, KI, KD, DT, INTEG,
// INPUT, DERIV — plus the Scaler discussed for PX4's
// EKFNAVVELGAINSCALER and the per-term outputs logged as PIDR.P/I/D.
type PID struct {
	// Gains (v1 KP, v2 KI, v3 KD) and feed-forward.
	KP, KI, KD, KFF float64
	// IMax clamps the integrator contribution (absolute value).
	IMax float64
	// FilterHz is the input low-pass cutoff (0 disables).
	FilterHz float64
	// DT is the controller period in seconds (v4).
	DT float64
	// Scaler multiplies the final output; nominally 1. It reproduces the
	// PID scaler ratio attacked in the paper's Figure 7 experiment.
	Scaler float64
	// OutMin/OutMax clamp the final output. ArduPilot's oversized default
	// of ±5000 for rate controllers is the range-validation defect the
	// Figure 8 attack exploits; callers opt into tighter bounds.
	OutMin, OutMax float64

	// Live intermediate state (v5 INTEG, v6 INPUT, v7 DERIV).
	integrator float64
	input      float64
	derivative float64
	lastInput  float64
	hasInput   bool

	// Per-term outputs from the most recent Update, as logged by the
	// dataflash PIDR/PIDP/PIDY records.
	pOut, iOut, dOut, ffOut, output float64
	// target and actual mirror the dataflash "Tar"/"Act" log fields.
	target, actual float64
}

// PIDConfig holds construction parameters for a PID.
type PIDConfig struct {
	KP, KI, KD, KFF float64
	IMax            float64
	FilterHz        float64
	DT              float64
	OutMin, OutMax  float64
}

// NewPID builds a PID from the config, applying the ArduPilot-style
// oversized ±5000 output range when no explicit bounds are given.
func NewPID(cfg PIDConfig) *PID {
	outMin, outMax := cfg.OutMin, cfg.OutMax
	if outMin == 0 && outMax == 0 {
		outMin, outMax = -5000, 5000
	}
	dt := cfg.DT
	if dt <= 0 {
		dt = 1.0 / 400
	}
	return &PID{
		KP:       cfg.KP,
		KI:       cfg.KI,
		KD:       cfg.KD,
		KFF:      cfg.KFF,
		IMax:     cfg.IMax,
		FilterHz: cfg.FilterHz,
		DT:       dt,
		Scaler:   1,
		OutMin:   outMin,
		OutMax:   outMax,
	}
}

// Update runs one controller cycle for the given target and measured value
// and returns the control output. The error signal is filtered, integrated
// (with clamping) and differentiated exactly as AC_PID does.
func (p *PID) Update(target, actual float64) float64 {
	p.target, p.actual = target, actual
	err := target - actual

	// Input low-pass filter.
	if p.hasInput {
		alpha := mathx.LowPassAlpha(p.FilterHz, p.DT)
		p.input += (err - p.input) * alpha
	} else {
		p.input = err
		p.lastInput = err
		p.hasInput = true
	}

	// Derivative on the filtered input.
	if p.DT > 0 {
		p.derivative = (p.input - p.lastInput) / p.DT
	}
	p.lastInput = p.input

	// Integrator with clamping: the stored integrator is the I
	// contribution itself (gain pre-multiplied), as in AC_PID.
	if p.KI != 0 && p.DT > 0 {
		p.integrator += p.input * p.KI * p.DT
		if p.IMax > 0 {
			p.integrator = mathx.Clamp(p.integrator, -p.IMax, p.IMax)
		}
	}

	p.pOut = p.input * p.KP
	p.iOut = p.integrator
	p.dOut = p.derivative * p.KD
	p.ffOut = target * p.KFF
	sum := (p.pOut + p.iOut + p.dOut + p.ffOut) * p.Scaler
	p.output = mathx.Clamp(sum, p.OutMin, p.OutMax)
	return p.output
}

// Reset clears the dynamic state (integrator, filters) but keeps gains.
func (p *PID) Reset() {
	p.integrator = 0
	p.input = 0
	p.derivative = 0
	p.lastInput = 0
	p.hasInput = false
	p.pOut, p.iOut, p.dOut, p.ffOut, p.output = 0, 0, 0, 0, 0
}

// ResetIntegrator zeroes only the integrator, as ArduPilot does on landing.
func (p *PID) ResetIntegrator() { p.integrator = 0 }

// P returns the proportional contribution of the last Update.
func (p *PID) P() float64 { return p.pOut }

// I returns the integral contribution of the last Update.
func (p *PID) I() float64 { return p.iOut }

// D returns the derivative contribution of the last Update.
func (p *PID) D() float64 { return p.dOut }

// FF returns the feed-forward contribution of the last Update.
func (p *PID) FF() float64 { return p.ffOut }

// Output returns the total output of the last Update.
func (p *PID) Output() float64 { return p.output }

// Integrator returns the current integrator value.
func (p *PID) Integrator() float64 { return p.integrator }

// RegisterVars exposes the controller's parameters and intermediates under
// the given prefix (e.g. "PIDR") in the variable set.
func (p *PID) RegisterVars(set *vars.Set, prefix string) error {
	reg := func(name string, kind vars.Kind, ptr *float64) error {
		return set.Register(prefix+"."+name, kind, ptr)
	}
	steps := []struct {
		name string
		kind vars.Kind
		ptr  *float64
	}{
		{"KP", vars.KindParam, &p.KP},
		{"KI", vars.KindParam, &p.KI},
		{"KD", vars.KindParam, &p.KD},
		{"KFF", vars.KindParam, &p.KFF},
		{"IMAX", vars.KindParam, &p.IMax},
		{"DT", vars.KindIntermediate, &p.DT},
		{"SCALER", vars.KindIntermediate, &p.Scaler},
		{"INTEG", vars.KindIntermediate, &p.integrator},
		{"INPUT", vars.KindIntermediate, &p.input},
		{"DERIV", vars.KindIntermediate, &p.derivative},
		{"P", vars.KindDynamic, &p.pOut},
		{"I", vars.KindDynamic, &p.iOut},
		{"D", vars.KindDynamic, &p.dOut},
		{"FF", vars.KindDynamic, &p.ffOut},
		{"OUT", vars.KindDynamic, &p.output},
		{"Tar", vars.KindDynamic, &p.target},
		{"Act", vars.KindDynamic, &p.actual},
	}
	for _, s := range steps {
		if err := reg(s.name, s.kind, s.ptr); err != nil {
			return err
		}
	}
	return nil
}

// SqrtController implements ArduPilot's sqrt_controller: a P controller
// whose response transitions from linear to square-root at large errors so
// the commanded correction respects a second-order (acceleration) limit.
type SqrtController struct {
	// P is the proportional gain.
	P float64
	// SecondOrdLim is the acceleration limit (units/s² of the output's
	// derivative); 0 disables limiting and the controller is purely linear.
	SecondOrdLim float64

	// Live intermediates for instrumentation.
	err    float64
	output float64
}

// NewSqrtController builds a square-root controller.
func NewSqrtController(p, secondOrdLim float64) *SqrtController {
	return &SqrtController{P: p, SecondOrdLim: secondOrdLim}
}

// Update returns the correction rate for the given error, mirroring
// AC_AttitudeControl::sqrt_controller.
func (s *SqrtController) Update(err float64) float64 {
	s.err = err
	switch {
	case s.SecondOrdLim <= 0 || s.P == 0:
		s.output = err * s.P
	default:
		linearDist := s.SecondOrdLim / (s.P * s.P)
		switch {
		case err > linearDist:
			s.output = math.Sqrt(2 * s.SecondOrdLim * (err - linearDist/2))
		case err < -linearDist:
			s.output = -math.Sqrt(2 * s.SecondOrdLim * (-err - linearDist/2))
		default:
			s.output = err * s.P
		}
	}
	return s.output
}

// Output returns the most recent output.
func (s *SqrtController) Output() float64 { return s.output }

// RegisterVars exposes the controller's variables under the given prefix.
func (s *SqrtController) RegisterVars(set *vars.Set, prefix string) error {
	if err := set.Register(prefix+".P", vars.KindParam, &s.P); err != nil {
		return err
	}
	if err := set.Register(prefix+".LIM", vars.KindParam, &s.SecondOrdLim); err != nil {
		return err
	}
	if err := set.Register(prefix+".ERR", vars.KindIntermediate, &s.err); err != nil {
		return err
	}
	return set.Register(prefix+".OUT", vars.KindDynamic, &s.output)
}
