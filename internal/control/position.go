package control

import (
	"math"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

// PositionController implements the ArduCopter position cascade for one
// vehicle: horizontal position → velocity (square-root controller), velocity
// → acceleration (PID), acceleration → lean angles; and vertical position →
// climb rate (square-root controller) → throttle (PID around hover).
//
// Together with AttitudeController this reproduces the paper's "six
// cascading controllers ... each composed of three primitive sub-controllers
// for the position, velocity, and acceleration".
type PositionController struct {
	// PosXY converts horizontal position error (m) to target speed (m/s).
	PosXY *SqrtController
	// VelX and VelY convert velocity error to acceleration demand (m/s²).
	VelX, VelY *PID
	// PosZ converts altitude error (m) to target climb rate (m/s).
	PosZ *SqrtController
	// VelZ converts climb-rate error to throttle delta around hover.
	VelZ *PID
	// MaxSpeedXY and MaxSpeedZ clamp commanded speeds (m/s).
	MaxSpeedXY, MaxSpeedZ float64
	// MaxAccelXY slews the horizontal velocity demand (m/s²), the
	// WPNAV_ACCEL behavior that keeps 90° waypoint turns from demanding
	// instantaneous velocity reversals.
	MaxAccelXY float64
	// DT is the controller period used by the slew limiter.
	DT float64
	// MaxLeanAngle clamps the commanded lean in radians.
	MaxLeanAngle float64
	// HoverThrottle is the feed-forward throttle that balances gravity.
	HoverThrottle float64

	// Intermediates exposed for instrumentation: desired velocity (the
	// NTUN DVelX/DVelY dataflash fields), desired acceleration, and the
	// throttle output (CTUN.ThO).
	desVelX, desVelY, desVelZ float64
	desAccX, desAccY          float64
	throttleOut               float64
	// tv is the throttle-scaled velocity intermediate from the paper's
	// Figure 3 KSVL (target velocity magnitude along the track).
	tv float64
}

// PositionConfig holds gains for the position cascade.
type PositionConfig struct {
	PosP          float64 // POS_XY_P
	VelXY         PIDConfig
	PosZP         float64 // POS_Z_P
	VelZ          PIDConfig
	MaxSpeedXY    float64
	MaxSpeedZ     float64
	MaxAccelXY    float64
	MaxLeanAngle  float64
	HoverThrottle float64
	DT            float64
}

// DefaultPositionConfig returns the ArduCopter-style position tune.
func DefaultPositionConfig(dt, hoverThrottle float64) PositionConfig {
	return PositionConfig{
		PosP: 1.0,
		// The D gain is kept small: the velocity estimate steps at each
		// 5 Hz GPS fusion and a large D term would turn those steps
		// into lean-angle spikes.
		VelXY: PIDConfig{
			KP: 1.8, KI: 0.8, KD: 0.05,
			IMax: 2.5, FilterHz: 5, DT: dt,
		},
		PosZP: 1.0,
		VelZ: PIDConfig{
			KP: 0.30, KI: 0.15, KD: 0.0,
			IMax: 0.2, FilterHz: 5, DT: dt,
		},
		// 5 m/s matches ArduCopter's WPNAV_SPEED default; faster cruise
		// makes 90° waypoint turns overshoot badly.
		MaxSpeedXY:    5,
		MaxSpeedZ:     3,
		MaxLeanAngle:  mathx.Rad(30),
		HoverThrottle: hoverThrottle,
	}
}

// NewPositionController builds the cascade from the config.
func NewPositionController(cfg PositionConfig) *PositionController {
	dt := cfg.DT
	if dt <= 0 {
		dt = 1.0 / 400
	}
	return &PositionController{
		PosXY:         NewSqrtController(cfg.PosP, 2.0),
		VelX:          NewPID(cfg.VelXY),
		VelY:          NewPID(cfg.VelXY),
		PosZ:          NewSqrtController(cfg.PosZP, 1.5),
		VelZ:          NewPID(cfg.VelZ),
		MaxSpeedXY:    cfg.MaxSpeedXY,
		MaxSpeedZ:     cfg.MaxSpeedZ,
		MaxAccelXY:    cfg.MaxAccelXY,
		MaxLeanAngle:  cfg.MaxLeanAngle,
		HoverThrottle: cfg.HoverThrottle,
		DT:            dt,
	}
}

// Update runs one position-control cycle. All vectors are NED. It returns
// the lean-angle targets (roll, pitch, in radians, in the *world yaw frame*
// rotated by the measured yaw) and the collective throttle in [0, 1].
func (c *PositionController) Update(targetPos, pos, vel mathx.Vec3, yaw float64) (desRoll, desPitch, throttle float64) {
	// --- Horizontal ---
	errN := targetPos.X - pos.X
	errE := targetPos.Y - pos.Y
	errDist := math.Hypot(errN, errE)
	speed := mathx.Clamp(c.PosXY.Update(errDist), 0, c.MaxSpeedXY)
	c.tv = speed
	rawVelX, rawVelY := 0.0, 0.0
	if errDist > 1e-9 {
		rawVelX = speed * errN / errDist
		rawVelY = speed * errE / errDist
	}
	// Slew the velocity demand at MaxAccelXY so waypoint switches cannot
	// demand an instantaneous velocity reversal.
	if c.MaxAccelXY > 0 {
		maxStep := c.MaxAccelXY * c.DT
		c.desVelX += mathx.Clamp(rawVelX-c.desVelX, -maxStep, maxStep)
		c.desVelY += mathx.Clamp(rawVelY-c.desVelY, -maxStep, maxStep)
	} else {
		c.desVelX, c.desVelY = rawVelX, rawVelY
	}

	c.desAccX = c.VelX.Update(c.desVelX, vel.X)
	c.desAccY = c.VelY.Update(c.desVelY, vel.Y)

	// Acceleration demand to lean angles: rotate the world-frame demand
	// into the heading frame, then a = g·tan(lean) ≈ g·lean.
	cy, sy := math.Cos(yaw), math.Sin(yaw)
	accFwd := c.desAccX*cy + c.desAccY*sy
	accRight := -c.desAccX*sy + c.desAccY*cy
	desPitch = mathx.Clamp(-math.Atan2(accFwd, gravityMS2), -c.MaxLeanAngle, c.MaxLeanAngle)
	desRoll = mathx.Clamp(math.Atan2(accRight, gravityMS2), -c.MaxLeanAngle, c.MaxLeanAngle)

	// --- Vertical --- (NED: negative Z error means climb)
	altErr := -(targetPos.Z - pos.Z) // positive = need to climb
	climb := mathx.Clamp(c.PosZ.Update(altErr), -c.MaxSpeedZ, c.MaxSpeedZ)
	c.desVelZ = climb
	climbMeas := -vel.Z
	delta := c.VelZ.Update(climb, climbMeas)
	c.throttleOut = mathx.Clamp(c.HoverThrottle+delta, 0, 1)
	return desRoll, desPitch, c.throttleOut
}

// Reset clears the dynamic state of all sub-controllers.
func (c *PositionController) Reset() {
	c.VelX.Reset()
	c.VelY.Reset()
	c.VelZ.Reset()
}

// Throttle returns the last computed throttle.
func (c *PositionController) Throttle() float64 { return c.throttleOut }

// RegisterVars exposes the cascade variables: the NTUN navigation block, the
// square-root controllers (SQP, SQZ) and the velocity PIDs (PIDVX…).
func (c *PositionController) RegisterVars(set *vars.Set) error {
	dyn := []struct {
		name string
		ptr  *float64
	}{
		{"NTUN.DVelX", &c.desVelX},
		{"NTUN.DVelY", &c.desVelY},
		{"NTUN.DVelZ", &c.desVelZ},
		{"NTUN.DAccX", &c.desAccX},
		{"NTUN.DAccY", &c.desAccY},
		{"CTUN.ThO", &c.throttleOut},
		{"NTUN.tv", &c.tv},
	}
	for _, v := range dyn {
		if err := set.Register(v.name, vars.KindDynamic, v.ptr); err != nil {
			return err
		}
	}
	if err := c.PosXY.RegisterVars(set, "SQP"); err != nil {
		return err
	}
	if err := c.PosZ.RegisterVars(set, "SQZ"); err != nil {
		return err
	}
	if err := c.VelX.RegisterVars(set, "PIDVX"); err != nil {
		return err
	}
	if err := c.VelY.RegisterVars(set, "PIDVY"); err != nil {
		return err
	}
	return c.VelZ.RegisterVars(set, "PIDVZ")
}

// Mixer converts a collective throttle plus normalized roll/pitch/yaw torque
// demands into the four motor commands of an X-frame quadrotor, using the
// ArduPilot motor numbering (m0 front-right CCW, m1 back-left CCW, m2
// front-left CW, m3 back-right CW).
type Mixer struct {
	// lastCmd holds the most recent motor outputs for logging (RCOU).
	lastCmd [4]float64
}

// Mix computes the motor commands, clamping each to [0, 1]. Yaw authority
// is deprioritized: if adding the yaw term would push any motor outside its
// range, the yaw contribution is scaled down first so roll and pitch (which
// keep the vehicle upright) always retain authority — ArduPilot's motor
// mixing priority.
func (m *Mixer) Mix(throttle, rollT, pitchT, yawT float64) [4]float64 {
	base := [4]float64{
		throttle - rollT + pitchT, // m0 front-right
		throttle + rollT - pitchT, // m1 back-left
		throttle + rollT + pitchT, // m2 front-left
		throttle - rollT - pitchT, // m3 back-right
	}
	yawSign := [4]float64{1, 1, -1, -1}
	// Find the largest yaw scale in [0, 1] that keeps every motor in
	// range (given base commands already clamped by the caller's gains).
	scale := 1.0
	for i := range base {
		y := yawT * yawSign[i]
		if y == 0 {
			continue
		}
		headroom := 1 - base[i]
		if y < 0 {
			headroom = base[i]
		}
		if need := math.Abs(y); need > 0 && headroom < need {
			if headroom < 0 {
				headroom = 0
			}
			if s := headroom / need; s < scale {
				scale = s
			}
		}
	}
	var cmd [4]float64
	for i := range cmd {
		cmd[i] = mathx.Clamp(base[i]+yawT*yawSign[i]*scale, 0, 1)
	}
	m.lastCmd = cmd
	return cmd
}

// LastCommands returns the most recent motor outputs.
func (m *Mixer) LastCommands() [4]float64 { return m.lastCmd }

// RegisterVars exposes the four motor outputs (RCOU.C1..C4).
func (m *Mixer) RegisterVars(set *vars.Set) error {
	names := [4]string{"RCOU.C1", "RCOU.C2", "RCOU.C3", "RCOU.C4"}
	for i := range names {
		if err := set.Register(names[i], vars.KindDynamic, &m.lastCmd[i]); err != nil {
			return err
		}
	}
	return nil
}
