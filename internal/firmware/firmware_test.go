package firmware

import (
	"bytes"
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/mavlink"
)

func newTestFirmware(t *testing.T, cfg Config) *Firmware {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFirmwareAssembles(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if f.Vars().Len() < 80 {
		t.Errorf("variable set has %d entries, want a rich set (≥80)", f.Vars().Len())
	}
	if missing := f.Memory().UnassignedVars(); len(missing) != 0 {
		t.Errorf("unassigned variables: %v", missing)
	}
	// The stabilizer region holds the PID intermediates, per the paper.
	stab := f.Memory().VarsInRegion(RegionStabilizer)
	found := false
	for _, v := range stab {
		if v == "PIDR.INTEG" {
			found = true
		}
	}
	if !found {
		t.Errorf("PIDR.INTEG not in stabilizer region: %v", stab)
	}
}

func TestFirmwareTakeoffAndHover(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(12)
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("crashed during takeoff: %s", reason)
	}
	if alt := f.Quad().State().Altitude(); math.Abs(alt-10) > 1.0 {
		t.Errorf("altitude after takeoff = %v, want ~10", alt)
	}
	if f.Mode() != ModeGuided || !f.Armed() {
		t.Errorf("mode = %v, armed = %v", f.Mode(), f.Armed())
	}
}

func TestFirmwareFliesMission(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(10)
	f.LoadMission(SquareMission(25, 10))
	if err := f.StartMission(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90*400 && !f.Mission().Complete(); i++ {
		f.Step()
	}
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("crashed during mission: %s", reason)
	}
	if !f.Mission().Complete() {
		t.Fatalf("mission incomplete after 90 s; at waypoint %d, pos %v",
			f.Mission().CurrentIndex(), f.Quad().State().Pos)
	}
}

func TestFirmwareMissionRequiresWaypoints(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.StartMission(); err == nil {
		t.Error("empty mission started")
	}
}

func TestFirmwareLanding(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(8); err != nil {
		t.Fatal(err)
	}
	f.RunFor(10)
	f.SetMode(ModeLand)
	f.RunFor(25)
	if f.Armed() {
		t.Error("still armed after landing")
	}
	if alt := f.Quad().State().Altitude(); alt > 0.5 {
		t.Errorf("altitude after landing = %v", alt)
	}
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Errorf("landing crashed: %s", reason)
	}
}

func TestFirmwareRTLReturnsHome(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(8)
	f.SetGuidedTarget(mathx.V3(20, 0, -10))
	f.RunFor(15)
	if f.Quad().State().Pos.XY() < 15 {
		t.Fatalf("vehicle did not travel out: %v", f.Quad().State().Pos)
	}
	f.SetGuidedTarget(f.Quad().State().Pos) // RTL keeps guided altitude
	f.SetMode(ModeRTL)
	f.RunFor(40)
	pos := f.Quad().State().Pos
	// RTL flies home then hands off to LAND, which drifts slightly while
	// descending; "home" therefore means within a few meters.
	if pos.XY() > 4 {
		t.Errorf("RTL did not return home: %v", pos)
	}
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Errorf("RTL crashed: %s", reason)
	}
}

func TestFirmwareParamSetViaGCS(t *testing.T) {
	f := newTestFirmware(t, Config{})
	f.Enqueue(&mavlink.ParamSet{Name: "ATC_RAT_RLL_P", Value: 0.2})
	f.Step()
	replies := f.DrainOutbox()
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	pv, ok := replies[0].(*mavlink.ParamValue)
	if !ok || !pv.OK || pv.Value != 0.2 {
		t.Errorf("reply = %+v", replies[0])
	}
	// The live controller gain changed.
	if f.Attitude().RateRoll.KP != 0.2 {
		t.Errorf("live KP = %v, want 0.2", f.Attitude().RateRoll.KP)
	}
	// Out-of-range set is rejected but still replied to.
	f.Enqueue(&mavlink.ParamSet{Name: "ATC_RAT_RLL_P", Value: 10})
	f.Step()
	replies = f.DrainOutbox()
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	if pv := replies[0].(*mavlink.ParamValue); pv.OK {
		t.Error("out-of-range PARAM_SET acknowledged OK")
	}
	if f.Attitude().RateRoll.KP != 0.2 {
		t.Error("rejected set still changed the gain")
	}
}

func TestFirmwareCommandsViaGCS(t *testing.T) {
	f := newTestFirmware(t, Config{})
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdTakeoff,
		Params: [7]float64{0, 0, 0, 0, 0, 0, 12}})
	f.Step()
	replies := f.DrainOutbox()
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	ack := replies[0].(*mavlink.CommandAck)
	if ack.Result != 0 {
		t.Errorf("takeoff rejected: %+v", ack)
	}
	if !f.Armed() || f.Mode() != ModeGuided {
		t.Errorf("takeoff did not arm+guide: armed=%v mode=%v", f.Armed(), f.Mode())
	}
	// Unknown command returns unsupported.
	f.Enqueue(&mavlink.CommandLong{Command: 999})
	f.Step()
	replies = f.DrainOutbox()
	if ack := replies[0].(*mavlink.CommandAck); ack.Result != 3 {
		t.Errorf("unknown command result = %d, want 3", ack.Result)
	}
}

func TestFirmwareMissionUploadViaGCS(t *testing.T) {
	f := newTestFirmware(t, Config{})
	f.Enqueue(&mavlink.MissionItem{Seq: 0, X: 0, Y: 0, Z: -10})
	f.Enqueue(&mavlink.MissionItem{Seq: 1, X: 30, Y: 0, Z: -10, Hold: 1})
	f.Step()
	replies := f.DrainOutbox()
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	ack := replies[0].(*mavlink.MissionAck)
	if !ack.OK || ack.Count != 2 {
		t.Errorf("mission ack = %+v", ack)
	}
	if f.Mission().Len() != 2 {
		t.Errorf("mission length = %d", f.Mission().Len())
	}
}

func TestFirmwareHeartbeatAndParamRead(t *testing.T) {
	f := newTestFirmware(t, Config{})
	f.Enqueue(&mavlink.Heartbeat{})
	f.Enqueue(&mavlink.ParamRequestRead{Name: "WPNAV_SPEED"})
	f.Step()
	replies := f.DrainOutbox()
	if len(replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(replies))
	}
	if _, ok := replies[0].(*mavlink.Heartbeat); !ok {
		t.Errorf("first reply %T, want heartbeat", replies[0])
	}
	pv := replies[1].(*mavlink.ParamValue)
	if !pv.OK || pv.Value != 500 {
		t.Errorf("param read = %+v", pv)
	}
}

func TestFirmwareDataflashLogging(t *testing.T) {
	var buf bytes.Buffer
	w := dataflash.NewWriter(&buf)
	f := newTestFirmware(t, Config{LogWriter: w})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := dataflash.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 16 Hz for 5 s: ~80 samples of each message type.
	counts := make(map[string]int)
	for _, rec := range log.Records {
		counts[rec.Name]++
	}
	for _, name := range []string{"ATT", "IMU", "PIDR", "EKF1", "NTUN", "RCOU", "GPS"} {
		if counts[name] < 70 {
			t.Errorf("%s records = %d, want ≥70", name, counts[name])
		}
	}
	// The logged roll must track the true roll scale (degrees, small).
	_, rolls := log.Series("ATT.Roll")
	for _, v := range rolls {
		if math.Abs(v) > 45 {
			t.Fatalf("logged roll %v deg out of plausible hover range", v)
		}
	}
}

func TestFirmwareVariableManipulationTiltsVehicle(t *testing.T) {
	// The core threat-model path: writing PIDR.INTEG through the
	// stabilizer region's memory view changes the real flight.
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(10)
	ref, err := f.Memory().Access(RegionStabilizer, "PIDR.INTEG", true)
	if err != nil {
		t.Fatal(err)
	}
	// Persistently bias the roll integrator. The position controller
	// fights back (that compensation is exactly what the paper's ML
	// monitor watches), so assert both the attitude disturbance and the
	// residual drift.
	start := f.Quad().State().Pos
	var maxRoll float64
	for i := 0; i < 8*400; i++ {
		ref.Set(0.3)
		f.Step()
		roll, _, _ := f.Quad().State().Euler()
		if r := math.Abs(roll); r > maxRoll {
			maxRoll = r
		}
	}
	if maxRoll < mathx.Rad(5) {
		t.Errorf("max roll under manipulation = %.1f deg, want > 5",
			mathx.Deg(maxRoll))
	}
	drift := f.Quad().State().Pos.Sub(start).XY()
	if drift < 0.5 {
		t.Errorf("integrator manipulation produced %v m drift, want > 0.5", drift)
	}
}

func TestFirmwareBatteryFailsafe(t *testing.T) {
	params := Config{}
	f := newTestFirmware(t, params)
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(5)
	// Force the failsafe threshold above the current voltage.
	if err := f.Params().Set("BATT_LOW_VOLT", 49); err != nil {
		t.Fatal(err)
	}
	f.Step()
	if f.Mode() != ModeLand {
		t.Errorf("mode = %v, want LAND after battery failsafe", f.Mode())
	}
}

func TestFirmwareReset(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(5)
	f.Reset(mathx.V3(1, 2, 0))
	if f.Armed() || f.Mode() != ModeStabilize {
		t.Error("Reset left armed/mode state")
	}
	if f.Quad().State().Pos != mathx.V3(1, 2, 0) {
		t.Errorf("Reset pos = %v", f.Quad().State().Pos)
	}
	if f.Time() != 0 {
		t.Errorf("Reset time = %v", f.Time())
	}
	// Flyable again after reset.
	if err := f.Takeoff(5); err != nil {
		t.Fatal(err)
	}
	f.RunFor(8)
	if crashed, _ := f.Quad().Crashed(); crashed {
		t.Error("crashed after reset + takeoff")
	}
}

func TestModeString(t *testing.T) {
	tests := []struct {
		mode Mode
		want string
	}{
		{ModeStabilize, "STABILIZE"}, {ModeGuided, "GUIDED"},
		{ModeAuto, "AUTO"}, {ModeLoiter, "LOITER"},
		{ModeRTL, "RTL"}, {ModeLand, "LAND"}, {Mode(42), "MODE(42)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("mode = %q, want %q", got, tt.want)
		}
	}
}
