package firmware

import (
	"fmt"
	"math"
	"sync"

	"github.com/ares-cps/ares/internal/control"
	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/ekf"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/mavlink"
	"github.com/ares-cps/ares/internal/sensors"
	"github.com/ares-cps/ares/internal/sim"
	"github.com/ares-cps/ares/internal/vars"
)

// Mode is the active flight mode.
type Mode int

// Flight modes, following ArduCopter's semantics.
const (
	ModeStabilize Mode = iota + 1
	ModeGuided
	ModeAuto
	ModeLoiter
	ModeRTL
	ModeLand
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeStabilize:
		return "STABILIZE"
	case ModeGuided:
		return "GUIDED"
	case ModeAuto:
		return "AUTO"
	case ModeLoiter:
		return "LOITER"
	case ModeRTL:
		return "RTL"
	case ModeLand:
		return "LAND"
	default:
		return fmt.Sprintf("MODE(%d)", int(m))
	}
}

// Config assembles a Firmware.
type Config struct {
	// Vehicle selects the airframe; zero value means IRIS+.
	Vehicle sim.VehicleParams
	// Plant optionally injects the vehicle to fly — typically a
	// sim.BatchQuad lane, so N firmware instances can share one
	// structure-of-arrays physics kernel. Nil builds a scalar sim.Quad
	// from Vehicle/Wind/World; when set, Wind and World must be nil
	// (they configure the built-in plant only).
	Plant sim.Vehicle
	// Sensors sets sensor noise; zero value means DefaultConfig.
	Sensors sensors.Config
	// LoopHz is the main loop rate (default 400, ArduCopter's rate).
	LoopHz float64
	// LogHz is the dataflash rate (default 16, the paper's logging rate).
	LogHz float64
	// Wind optionally installs a wind model.
	Wind *sim.Wind
	// World optionally installs obstacles.
	World *sim.World
	// LogWriter receives dataflash records when non-nil.
	LogWriter *dataflash.Writer
}

// Firmware is the complete flight stack bound to one simulated vehicle.
type Firmware struct {
	cfg   Config
	quad  sim.Vehicle
	suite *sensors.Suite
	est   *ekf.EKF
	sins  *control.SINS
	att   *control.AttitudeController
	pos   *control.PositionController
	mixer control.Mixer

	params  *control.ParamStore
	mission *Mission
	varSet  *vars.Set
	memmap  *MemoryMap

	mode  Mode
	armed bool
	home  mathx.Vec3

	dt        float64
	logEvery  int
	tick      int
	desYaw    float64
	guidedTgt mathx.Vec3

	// Navigator→stabilizer handoff cells. The position cascade writes
	// the attitude command here and the stabilizer reads it back one
	// pipeline stage later — the shared memory inside the stabilizer's
	// MPU region that the paper's attacker can overwrite in flight.
	cmdRoll, cmdPitch, cmdThr float64
	// attackHook, when set, runs between the navigator writing the
	// handoff cells and the stabilizer consuming them (an attacker with
	// code execution in the stabilizer region acts at exactly this
	// point).
	attackHook func()

	// Live sensor/dynamic copies registered in the variable set.
	gyrX, gyrY, gyrZ    float64
	accX, accY, accZ    float64
	gyr2X, gyr2Y, gyr2Z float64
	acc2X, acc2Y, acc2Z float64
	baroAlt, magYaw     float64
	gpsN, gpsE, gpsD    float64
	battV, battA        float64

	lastReading sensors.Reading

	inboxMu sync.Mutex
	inbox   []mavlink.Message
	outbox  []mavlink.Message
}

// New assembles a firmware instance. All controller variables are registered
// and assigned to MPU regions; an unassigned variable is an assembly error.
func New(cfg Config) (*Firmware, error) {
	if cfg.Vehicle.Mass == 0 {
		cfg.Vehicle = sim.IRISPlusParams()
	}
	if cfg.Sensors == (sensors.Config{}) {
		cfg.Sensors = sensors.DefaultConfig()
	}
	if cfg.LoopHz <= 0 {
		cfg.LoopHz = 400
	}
	if cfg.LogHz <= 0 {
		cfg.LogHz = 16
	}

	quad := cfg.Plant
	if quad == nil {
		var opts []sim.Option
		if cfg.Wind != nil {
			opts = append(opts, sim.WithWind(cfg.Wind))
		}
		if cfg.World != nil {
			opts = append(opts, sim.WithWorld(cfg.World))
		}
		q, err := sim.NewQuad(cfg.Vehicle, opts...)
		if err != nil {
			return nil, err
		}
		quad = q
	} else if cfg.Wind != nil || cfg.World != nil {
		return nil, fmt.Errorf("firmware: Wind/World configure the built-in plant and cannot combine with an injected Plant")
	}

	dt := 1 / cfg.LoopHz
	hover := cfg.Vehicle.HoverThrottle()
	f := &Firmware{
		cfg:      cfg,
		quad:     quad,
		suite:    sensors.NewSuite(cfg.Sensors),
		est:      ekf.New(ekf.DefaultConfig()),
		sins:     control.NewSINS(),
		att:      control.NewAttitudeController(control.DefaultAttitudeConfig(dt)),
		pos:      control.NewPositionController(control.DefaultPositionConfig(dt, hover)),
		params:   control.NewParamStore(),
		mission:  NewMission(nil),
		varSet:   vars.NewSet(),
		mode:     ModeStabilize,
		dt:       dt,
		logEvery: int(math.Max(1, math.Round(cfg.LoopHz/cfg.LogHz))),
	}
	if err := f.registerVars(); err != nil {
		return nil, fmt.Errorf("firmware: register vars: %w", err)
	}
	f.memmap = NewMemoryMap(f.varSet)
	if err := f.assignRegions(); err != nil {
		return nil, fmt.Errorf("firmware: assign regions: %w", err)
	}
	if err := f.bindParams(); err != nil {
		return nil, fmt.Errorf("firmware: bind params: %w", err)
	}
	return f, nil
}

// registerVars exposes every state variable the ESVL can draw from.
func (f *Firmware) registerVars() error {
	if err := f.att.RegisterVars(f.varSet); err != nil {
		return err
	}
	if err := f.pos.RegisterVars(f.varSet); err != nil {
		return err
	}
	if err := f.mixer.RegisterVars(f.varSet); err != nil {
		return err
	}
	if err := f.est.RegisterVars(f.varSet); err != nil {
		return err
	}
	if err := f.sins.RegisterVars(f.varSet, "SINS"); err != nil {
		return err
	}
	handoff := []struct {
		name string
		ptr  *float64
	}{
		{"CMD.Roll", &f.cmdRoll},
		{"CMD.Pitch", &f.cmdPitch},
		{"CMD.Thr", &f.cmdThr},
	}
	for _, v := range handoff {
		if err := f.varSet.Register(v.name, vars.KindIntermediate, v.ptr); err != nil {
			return err
		}
	}
	sensorVars := []struct {
		name string
		ptr  *float64
	}{
		{"IMU.GyrX", &f.gyrX}, {"IMU.GyrY", &f.gyrY}, {"IMU.GyrZ", &f.gyrZ},
		{"IMU.AccX", &f.accX}, {"IMU.AccY", &f.accY}, {"IMU.AccZ", &f.accZ},
		{"IMU2.GyrX", &f.gyr2X}, {"IMU2.GyrY", &f.gyr2Y}, {"IMU2.GyrZ", &f.gyr2Z},
		{"IMU2.AccX", &f.acc2X}, {"IMU2.AccY", &f.acc2Y}, {"IMU2.AccZ", &f.acc2Z},
		{"BARO.Alt", &f.baroAlt}, {"MAG.Yaw", &f.magYaw},
		{"GPS.PN", &f.gpsN}, {"GPS.PE", &f.gpsE}, {"GPS.PD", &f.gpsD},
		{"CURR.Volt", &f.battV}, {"CURR.Curr", &f.battA},
	}
	for _, v := range sensorVars {
		if err := f.varSet.Register(v.name, vars.KindSensor, v.ptr); err != nil {
			return err
		}
	}
	return nil
}

// regionByPrefix maps variable-name prefixes to MPU regions, realizing the
// paper's layout where each process's variables share one isolated region.
var regionByPrefix = []struct {
	prefix string
	region string
}{
	{"CMD.", RegionStabilizer},
	{"PIDR.", RegionStabilizer},
	{"PIDP.", RegionStabilizer},
	{"PIDY.", RegionStabilizer},
	{"ANGR.", RegionStabilizer},
	{"ANGP.", RegionStabilizer},
	{"ANGY.", RegionStabilizer},
	{"ATT.", RegionStabilizer},
	{"RATE.", RegionStabilizer},
	{"NTUN.", RegionNavigator},
	{"CTUN.", RegionNavigator},
	{"SQP.", RegionNavigator},
	{"SQZ.", RegionNavigator},
	{"PIDVX.", RegionNavigator},
	{"PIDVY.", RegionNavigator},
	{"PIDVZ.", RegionNavigator},
	{"EKF1.", RegionEstimator},
	{"NKF4.", RegionEstimator},
	{"SINS.", RegionEstimator},
	{"IMU.", RegionDrivers},
	{"IMU2.", RegionDrivers},
	{"BARO.", RegionDrivers},
	{"MAG.", RegionDrivers},
	{"GPS.", RegionDrivers},
	{"CURR.", RegionDrivers},
	{"RCOU.", RegionActuators},
}

func (f *Firmware) assignRegions() error {
	for _, name := range f.varSet.Names() {
		region := ""
		for _, m := range regionByPrefix {
			if len(name) >= len(m.prefix) && name[:len(m.prefix)] == m.prefix {
				region = m.region
				break
			}
		}
		if region == "" {
			return fmt.Errorf("firmware: variable %q has no region mapping", name)
		}
		if err := f.memmap.Assign(name, region); err != nil {
			return err
		}
	}
	if missing := f.memmap.UnassignedVars(); len(missing) > 0 {
		return fmt.Errorf("firmware: unassigned variables: %v", missing)
	}
	return nil
}

// bindParams wires the GCS-visible parameter table to live controller fields
// so PARAM_SET writes take effect immediately.
func (f *Firmware) bindParams() error {
	bindings := map[string]*float64{
		"ATC_RAT_RLL_P":    &f.att.RateRoll.KP,
		"ATC_RAT_RLL_I":    &f.att.RateRoll.KI,
		"ATC_RAT_RLL_D":    &f.att.RateRoll.KD,
		"ATC_RAT_RLL_FF":   &f.att.RateRoll.KFF,
		"ATC_RAT_RLL_IMAX": &f.att.RateRoll.IMax,
		"ATC_RAT_PIT_IMAX": &f.att.RatePitch.IMax,
		"ATC_RAT_PIT_P":    &f.att.RatePitch.KP,
		"ATC_RAT_PIT_I":    &f.att.RatePitch.KI,
		"ATC_RAT_PIT_D":    &f.att.RatePitch.KD,
		"ATC_RAT_YAW_P":    &f.att.RateYaw.KP,
		"ATC_RAT_YAW_I":    &f.att.RateYaw.KI,
		"ATC_ANG_RLL_P":    &f.att.AngleRoll.P,
		"ATC_ANG_PIT_P":    &f.att.AnglePitch.P,
		"ATC_ANG_YAW_P":    &f.att.AngleYaw.P,
		"PSC_POSXY_P":      &f.pos.PosXY.P,
		"PSC_VELXY_P":      &f.pos.VelX.KP,
		"PSC_VELXY_I":      &f.pos.VelX.KI,
		"PSC_VELXY_D":      &f.pos.VelX.KD,
		"PSC_POSZ_P":       &f.pos.PosZ.P,
		"PSC_VELZ_P":       &f.pos.VelZ.KP,
		"SINS_VEL_GAIN":    &f.sins.VelGain,
		"SINS_POS_GAIN":    &f.sins.PosGain,
	}
	for name, ptr := range bindings {
		if err := f.params.Bind(name, ptr); err != nil {
			return err
		}
	}
	return nil
}

// --- accessors ---

// Quad returns the simulated plant (a scalar sim.Quad unless a Plant was
// injected via Config).
func (f *Firmware) Quad() sim.Vehicle { return f.quad }

// Sensors returns the sensor suite (fault-injection hooks live there).
func (f *Firmware) Sensors() *sensors.Suite { return f.suite }

// Vars returns the full variable set (the instrumentation view).
func (f *Firmware) Vars() *vars.Set { return f.varSet }

// Memory returns the MPU memory map.
func (f *Firmware) Memory() *MemoryMap { return f.memmap }

// Params returns the parameter table.
func (f *Firmware) Params() *control.ParamStore { return f.params }

// EKF returns the onboard estimator.
func (f *Firmware) EKF() *ekf.EKF { return f.est }

// Attitude returns the attitude controller.
func (f *Firmware) Attitude() *control.AttitudeController { return f.att }

// Position returns the position controller.
func (f *Firmware) Position() *control.PositionController { return f.pos }

// Mission returns the loaded mission.
func (f *Firmware) Mission() *Mission { return f.mission }

// Mode returns the active flight mode.
func (f *Firmware) Mode() Mode { return f.mode }

// Armed reports whether motors are live.
func (f *Firmware) Armed() bool { return f.armed }

// Time returns the simulation time in seconds.
func (f *Firmware) Time() float64 { return f.quad.Time() }

// DT returns the main loop period.
func (f *Firmware) DT() float64 { return f.dt }

// LastReading returns the most recent sensor snapshot.
func (f *Firmware) LastReading() sensors.Reading { return f.lastReading }

// --- commands ---

// Arm enables the motors. A crashed vehicle cannot arm.
func (f *Firmware) Arm() error {
	if crashed, reason := f.quad.Crashed(); crashed {
		return fmt.Errorf("firmware: cannot arm: %s", reason)
	}
	f.armed = true
	f.home = f.quad.State().Pos
	return nil
}

// Disarm stops the motors.
func (f *Firmware) Disarm() { f.armed = false }

// SetMode switches the flight mode.
func (f *Firmware) SetMode(m Mode) {
	f.mode = m
	if m == ModeLoiter || m == ModeGuided {
		f.guidedTgt = f.quad.State().Pos
	}
}

// Takeoff arms and climbs to the given altitude in GUIDED mode.
func (f *Firmware) Takeoff(altitude float64) error {
	if err := f.Arm(); err != nil {
		return err
	}
	st := f.quad.State().Pos
	f.guidedTgt = mathx.V3(st.X, st.Y, -altitude)
	f.mode = ModeGuided
	return nil
}

// SetGuidedTarget points GUIDED mode at a position.
func (f *Firmware) SetGuidedTarget(p mathx.Vec3) { f.guidedTgt = p }

// LoadMission installs a mission (replacing any previous one).
func (f *Firmware) LoadMission(m *Mission) { f.mission = m }

// StartMission switches to AUTO from the current position.
func (f *Firmware) StartMission() error {
	if f.mission.Len() == 0 {
		return fmt.Errorf("firmware: no mission loaded")
	}
	if !f.armed {
		if err := f.Arm(); err != nil {
			return err
		}
	}
	f.mission.Reset()
	f.mode = ModeAuto
	return nil
}

// Reset restores the whole stack to rest at pos with a fresh estimator and
// clean controllers — the RL episode reset ("landing, disarming the vehicle,
// and resetting it back into its initial position").
func (f *Firmware) Reset(pos mathx.Vec3) {
	f.quad.Reset(pos)
	f.est.Reset(pos, 0)
	f.sins.Reset(pos, mathx.Vec3{})
	f.att.Reset()
	f.pos.Reset()
	f.mission.Reset()
	f.armed = false
	f.mode = ModeStabilize
	f.desYaw = 0
	f.tick = 0
	f.guidedTgt = pos
}

// Step runs one 400 Hz main-loop iteration: drain GCS traffic, sample
// sensors, run estimation, run the control cascade for the active mode, mix
// motors, advance physics, and log.
func (f *Firmware) Step() {
	f.drainInbox()

	// Sense.
	r := f.suite.Sample(f.quad.Time(), f.quad.State(), f.quad.LastAccel(), f.quad.Battery())
	f.lastReading = r
	f.copySensorVars(r)

	// Estimate.
	f.est.Predict(r.IMU.Gyro, r.IMU.Accel, f.dt)
	if f.tick%f.logEvery == 0 {
		// Aiding at the 16 Hz logging cadence; gravity fusion is rate-
		// limited so it trims gyro drift without fighting maneuvers.
		f.est.FuseGravity(r.IMU.Accel)
		f.est.FuseBaro(r.BaroAlt)
		f.est.FuseMag(r.MagYaw)
	}
	estRoll, estPitch, estYaw := f.est.Attitude()
	f.sins.Predict(r.IMU.Accel, mathx.QuatFromEuler(estRoll, estPitch, estYaw), f.dt)
	if r.GPSFresh {
		f.est.FuseGPS(r.GPS.Pos, r.GPS.Vel)
		f.sins.CorrectPosition(r.GPS.Pos)
		f.sins.CorrectVelocity(r.GPS.Vel)
	}

	// Guide + control.
	var cmd [4]float64
	if f.armed {
		cmd = f.runControllers()
	}

	// Actuate physics.
	f.quad.Step(cmd, f.dt)

	// Mission bookkeeping.
	if f.mode == ModeAuto {
		f.mission.Update(f.est.Position(), f.quad.Time())
	}
	f.checkFailsafes()

	// Log.
	if f.cfg.LogWriter != nil && f.tick%f.logEvery == 0 {
		f.writeLogs()
	}
	f.tick++
}

// StepN runs n loop iterations.
func (f *Firmware) StepN(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// RunFor advances the firmware by the given number of simulated seconds.
func (f *Firmware) RunFor(seconds float64) {
	f.StepN(int(seconds / f.dt))
}

func (f *Firmware) copySensorVars(r sensors.Reading) {
	f.gyrX, f.gyrY, f.gyrZ = r.IMU.Gyro.X, r.IMU.Gyro.Y, r.IMU.Gyro.Z
	f.accX, f.accY, f.accZ = r.IMU.Accel.X, r.IMU.Accel.Y, r.IMU.Accel.Z
	f.gyr2X, f.gyr2Y, f.gyr2Z = r.IMU2.Gyro.X, r.IMU2.Gyro.Y, r.IMU2.Gyro.Z
	f.acc2X, f.acc2Y, f.acc2Z = r.IMU2.Accel.X, r.IMU2.Accel.Y, r.IMU2.Accel.Z
	f.baroAlt, f.magYaw = r.BaroAlt, r.MagYaw
	f.gpsN, f.gpsE, f.gpsD = r.GPS.Pos.X, r.GPS.Pos.Y, r.GPS.Pos.Z
	f.battV, f.battA = r.BatteryV, r.CurrentA
}

// runControllers executes the guidance + cascade for the active mode and
// returns motor commands.
func (f *Firmware) runControllers() [4]float64 {
	estPos := f.est.Position()
	estVel := f.est.Velocity()
	estRoll, estPitch, estYaw := f.est.Attitude()
	gyro := f.lastReading.IMU.Gyro

	target := estPos
	switch f.mode {
	case ModeAuto:
		target = f.mission.Target()
		// Face the direction of travel once meaningfully away.
		d := target.Sub(estPos)
		if d.XY() > 1.0 {
			f.desYaw = math.Atan2(d.Y, d.X)
		}
	case ModeGuided, ModeLoiter:
		target = f.guidedTgt
	case ModeRTL:
		target = mathx.V3(f.home.X, f.home.Y, f.guidedTgt.Z)
		if estPos.Sub(target).XY() < 1.0 {
			f.mode = ModeLand
		}
	case ModeLand:
		// Descend ~1 m/s by chasing a point 1 m below the current
		// estimate; touchdown then stays below the crash threshold.
		target = mathx.V3(estPos.X, estPos.Y, estPos.Z+1.0)
		if f.quad.State().Altitude() < 0.1 {
			f.Disarm()
		}
	case ModeStabilize:
		// Attitude-only: hold level at current throttle.
		f.cmdRoll, f.cmdPitch, f.cmdThr = 0, 0, f.pos.HoverThrottle
		if f.attackHook != nil {
			f.attackHook()
		}
		tr, tp, ty := f.att.Update(f.cmdRoll, f.cmdPitch, f.desYaw, estRoll, estPitch, estYaw, gyro)
		return f.mixer.Mix(f.cmdThr, tr, tp, ty)
	}

	f.cmdRoll, f.cmdPitch, f.cmdThr = f.pos.Update(target, estPos, estVel, estYaw)
	if f.attackHook != nil {
		f.attackHook()
	}
	tr, tp, ty := f.att.Update(f.cmdRoll, f.cmdPitch, f.desYaw, estRoll, estPitch, estYaw, gyro)
	return f.mixer.Mix(f.cmdThr, tr, tp, ty)
}

// SetAttackHook installs (or clears, with nil) the mid-pipeline callback
// used by the attack layer.
func (f *Firmware) SetAttackHook(hook func()) { f.attackHook = hook }

func (f *Firmware) checkFailsafes() {
	if !f.armed {
		return
	}
	enabled, err := f.params.Get("FS_BATT_ENABLE")
	if err != nil || enabled == 0 {
		return
	}
	lowV, err := f.params.Get("BATT_LOW_VOLT")
	if err != nil {
		return
	}
	if f.quad.Battery().Voltage < lowV && f.mode != ModeRTL && f.mode != ModeLand {
		f.mode = ModeLand
	}
}
