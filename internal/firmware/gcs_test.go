package firmware

import (
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/mavlink"
)

func TestGCSLandAndRTLCommands(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(8)
	// Fly away first: RTL from home would hand off to LAND immediately.
	f.SetGuidedTarget(mathx.V3(20, 0, -10))
	f.RunFor(10)

	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdRTL})
	f.Step()
	if ack := f.DrainOutbox()[0].(*mavlink.CommandAck); ack.Result != 0 {
		t.Errorf("RTL rejected: %+v", ack)
	}
	if f.Mode() != ModeRTL {
		t.Errorf("mode = %v, want RTL", f.Mode())
	}

	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdLand})
	f.Step()
	if ack := f.DrainOutbox()[0].(*mavlink.CommandAck); ack.Result != 0 {
		t.Errorf("LAND rejected: %+v", ack)
	}
	if f.Mode() != ModeLand {
		t.Errorf("mode = %v, want LAND", f.Mode())
	}
}

func TestGCSSetModeAndArmDisarm(t *testing.T) {
	f := newTestFirmware(t, Config{})
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdArmDisarm,
		Params: [7]float64{1}})
	f.Step()
	if !f.Armed() {
		t.Error("arm command did not arm")
	}
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdSetMode,
		Params: [7]float64{float64(ModeLoiter)}})
	f.Step()
	if f.Mode() != ModeLoiter {
		t.Errorf("mode = %v, want LOITER", f.Mode())
	}
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdArmDisarm,
		Params: [7]float64{0}})
	f.Step()
	if f.Armed() {
		t.Error("disarm command did not disarm")
	}
	f.DrainOutbox()

	// CmdMissionGo without a mission fails.
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdMissionGo})
	f.Step()
	if ack := f.DrainOutbox()[0].(*mavlink.CommandAck); ack.Result == 0 {
		t.Error("mission start without mission acknowledged OK")
	}
}

func TestGCSArmWhileCrashedFails(t *testing.T) {
	f := newTestFirmware(t, Config{})
	f.Quad().SetState(f.Quad().State()) // clean
	f.crashForTest()
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdArmDisarm,
		Params: [7]float64{1}})
	f.Step()
	if ack := f.DrainOutbox()[0].(*mavlink.CommandAck); ack.Result == 0 {
		t.Error("arming a crashed vehicle acknowledged OK")
	}
	// Takeoff fails too.
	f.Enqueue(&mavlink.CommandLong{Command: mavlink.CmdTakeoff,
		Params: [7]float64{6: 10}})
	f.Step()
	if ack := f.DrainOutbox()[0].(*mavlink.CommandAck); ack.Result == 0 {
		t.Error("takeoff on a crashed vehicle acknowledged OK")
	}
}

func TestTelemetrySnapshot(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(8)
	msgs := f.TelemetrySnapshot()
	if len(msgs) != 2 {
		t.Fatalf("telemetry = %d messages", len(msgs))
	}
	att, ok := msgs[0].(*mavlink.Attitude)
	if !ok {
		t.Fatalf("first message %T", msgs[0])
	}
	if att.TimeS <= 0 {
		t.Error("telemetry time not set")
	}
	pos, ok := msgs[1].(*mavlink.GlobalPosition)
	if !ok {
		t.Fatalf("second message %T", msgs[1])
	}
	if pos.Z > -5 {
		t.Errorf("telemetry altitude z = %v, want airborne", pos.Z)
	}
}

func TestFirmwareAccessors(t *testing.T) {
	f := newTestFirmware(t, Config{})
	if f.EKF() == nil || f.Position() == nil || f.Attitude() == nil {
		t.Fatal("nil subsystem accessor")
	}
	if f.DT() != 1.0/400 {
		t.Errorf("DT = %v", f.DT())
	}
	f.Step()
	if f.LastReading().Time < 0 {
		t.Error("LastReading not populated")
	}
}

// crashForTest forces the crashed state through the public physics path.
func (f *Firmware) crashForTest() {
	f.quad.SetState(f.quad.State())
	f.quad.Reset(f.quad.State().Pos)
	// Drop from altitude to force a hard impact.
	st := f.quad.State()
	st.Pos.Z = -30
	f.quad.SetState(st)
	for i := 0; i < 5*400; i++ {
		f.quad.Step([4]float64{}, 1.0/400)
		if crashed, _ := f.quad.Crashed(); crashed {
			return
		}
	}
}
