package firmware

import (
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
)

func TestMissionProgression(t *testing.T) {
	m := NewMission([]Waypoint{
		{Pos: mathx.V3(0, 0, -10)},
		{Pos: mathx.V3(10, 0, -10)},
		{Pos: mathx.V3(10, 10, -10)},
	})
	if m.Target() != mathx.V3(0, 0, -10) {
		t.Errorf("initial target = %v", m.Target())
	}
	// Far away: no advance.
	if m.Update(mathx.V3(50, 0, -10), 0) {
		t.Error("advanced while far from waypoint")
	}
	// Within radius: advance.
	if !m.Update(mathx.V3(0.5, 0, -10), 1) {
		t.Error("did not advance at waypoint")
	}
	if m.CurrentIndex() != 1 {
		t.Errorf("index = %d, want 1", m.CurrentIndex())
	}
	m.Update(mathx.V3(10, 0.5, -10), 2)
	m.Update(mathx.V3(10, 9.5, -10), 3)
	if !m.Complete() {
		t.Error("mission not complete after last waypoint")
	}
	// After completion target stays at the final waypoint.
	if m.Target() != mathx.V3(10, 10, -10) {
		t.Errorf("post-completion target = %v", m.Target())
	}
	if m.Update(mathx.V3(10, 10, -10), 4) {
		t.Error("completed mission still advancing")
	}
}

func TestMissionHold(t *testing.T) {
	m := NewMission([]Waypoint{
		{Pos: mathx.V3(0, 0, -10), HoldS: 2},
		{Pos: mathx.V3(10, 0, -10)},
	})
	// Reach the first waypoint at t=1: hold begins.
	if !m.Update(mathx.V3(0, 0, -10), 1) {
		t.Fatal("waypoint not reached")
	}
	if m.CurrentIndex() != 0 {
		t.Error("advanced during hold")
	}
	m.Update(mathx.V3(0, 0, -10), 2) // still holding
	if m.CurrentIndex() != 0 {
		t.Error("advanced before hold elapsed")
	}
	m.Update(mathx.V3(0, 0, -10), 3.1) // hold elapsed
	if m.CurrentIndex() != 1 {
		t.Errorf("index = %d after hold, want 1", m.CurrentIndex())
	}
}

func TestMissionEmptyAndReset(t *testing.T) {
	m := NewMission(nil)
	if m.Update(mathx.Vec3{}, 0) {
		t.Error("empty mission advanced")
	}
	if m.Target() != (mathx.Vec3{}) {
		t.Error("empty mission target nonzero")
	}
	sq := SquareMission(40, 10)
	if sq.Len() != 5 {
		t.Errorf("square mission has %d waypoints", sq.Len())
	}
	sq.Update(mathx.V3(0, 0, -10), 0)
	sq.Reset()
	if sq.CurrentIndex() != 0 || sq.Complete() {
		t.Error("Reset did not rewind")
	}
}

func TestMissionPath(t *testing.T) {
	m := LineMission(50, 10)
	path := m.Path()
	if len(path) != 2 || path[1] != mathx.V3(50, 0, -10) {
		t.Errorf("path = %v", path)
	}
	// Mutating the returned path must not affect the mission.
	path[0] = mathx.V3(99, 99, 99)
	if m.Target() == mathx.V3(99, 99, 99) {
		t.Error("Path leaked internal state")
	}
}

func TestMissionWaypointsCopied(t *testing.T) {
	wps := []Waypoint{{Pos: mathx.V3(1, 2, 3)}}
	m := NewMission(wps)
	wps[0].Pos = mathx.V3(9, 9, 9)
	if m.Target() != mathx.V3(1, 2, 3) {
		t.Error("mission shares caller's slice")
	}
}
