package firmware

import (
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
)

// TestFirmwarePixhawk4Mission exercises the paper's second virtual vehicle:
// the same firmware stack must fly the same mission on the Pixhawk4-class
// airframe (different mass, inertia, thrust, battery) without retuning.
// This is the "generalizability" property of Section VI — the assessment
// methodology is agnostic to the physical configuration.
func TestFirmwarePixhawk4Mission(t *testing.T) {
	f, err := New(Config{Vehicle: sim.Pixhawk4Params()})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(10)
	f.LoadMission(SquareMission(25, 10))
	if err := f.StartMission(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90*400 && !f.Mission().Complete(); i++ {
		f.Step()
	}
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("Pixhawk4 crashed: %s", reason)
	}
	if !f.Mission().Complete() {
		t.Fatalf("Pixhawk4 mission incomplete at %v", f.Quad().State().Pos)
	}
	// The same variable inventory and memory map exist across airframes.
	if _, ok := f.Vars().Lookup("PIDR.INTEG"); !ok {
		t.Error("variable inventory differs across airframes")
	}
	if missing := f.Memory().UnassignedVars(); len(missing) != 0 {
		t.Errorf("unassigned variables on Pixhawk4: %v", missing)
	}
}

// TestFirmwareMissionUnderWind adds gusty wind: the benign mission must
// still complete — the environmental-disturbance robustness the paper's
// threat model leans on ("mild variable manipulations can be discarded by
// the RAV controllers as an environmental disturbance").
func TestFirmwareMissionUnderWind(t *testing.T) {
	wind := sim.NewWind(mathx.V3(3, 1, 0), 1.0, 5)
	f, err := New(Config{Wind: wind})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(10)
	f.LoadMission(LineMission(60, 10))
	if err := f.StartMission(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60*400 && !f.Mission().Complete(); i++ {
		f.Step()
	}
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("crashed in wind: %s", reason)
	}
	if !f.Mission().Complete() {
		t.Fatalf("mission incomplete in wind at %v", f.Quad().State().Pos)
	}
}

// TestFirmwareHeavyWindFailsafe verifies graceful degradation rather than
// silent divergence: even in extreme wind the vehicle either completes or
// stays airborne under control (no crash within the test window).
func TestFirmwareHeavyWindControlled(t *testing.T) {
	wind := sim.NewWind(mathx.V3(6, -4, 0), 2.5, 6)
	f, err := New(Config{Wind: wind})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Takeoff(15); err != nil {
		t.Fatal(err)
	}
	f.RunFor(30)
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("crashed holding position in heavy wind: %s", reason)
	}
	// Position hold within a loose envelope despite 6-7 m/s mean wind.
	if dev := f.Quad().State().Pos.XY(); dev > 8 {
		t.Errorf("drifted %v m in heavy wind, want bounded hold", dev)
	}
}

// TestFirmwareGPSOutage injects a 10 s GPS denial mid-hover: the inertial
// solution drifts but the vehicle must stay airborne and re-converge once
// fixes resume.
func TestFirmwareGPSOutage(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Takeoff(15); err != nil {
		t.Fatal(err)
	}
	f.RunFor(10)

	f.Sensors().SetGPSDenied(true)
	f.RunFor(10)
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("crashed during GPS outage: %s", reason)
	}

	f.Sensors().SetGPSDenied(false)
	f.RunFor(15)
	if crashed, reason := f.Quad().Crashed(); crashed {
		t.Fatalf("crashed after GPS recovery: %s", reason)
	}
	// The estimator re-converges to truth after fixes resume.
	if est := f.EKF().Position().Dist(f.Quad().State().Pos); est > 3 {
		t.Errorf("EKF position error %v m after recovery", est)
	}
	// The vehicle holds a bounded position despite the inertial drift.
	if dev := f.Quad().State().Pos.XY(); dev > 25 {
		t.Errorf("drifted %v m through the outage", dev)
	}
}

// TestFirmwareTickAllocFree pins the zero-allocation property of the 400 Hz
// main loop (logging disabled): a regression here would eventually show up
// as GC pauses in long profiling runs.
func TestFirmwareTickAllocFree(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	f.RunFor(5)
	allocs := testing.AllocsPerRun(400, func() { f.Step() })
	if allocs > 0.5 {
		t.Errorf("main loop allocates %.1f objects/tick, want 0", allocs)
	}
}
