package firmware

import (
	"errors"
	"testing"

	"github.com/ares-cps/ares/internal/vars"
)

func newTestMap(t *testing.T) (*MemoryMap, *vars.Set, []float64) {
	t.Helper()
	set := vars.NewSet()
	vals := make([]float64, 3)
	set.MustRegister("PIDR.INTEG", vars.KindIntermediate, &vals[0])
	set.MustRegister("IMU.GyrX", vars.KindSensor, &vals[1])
	set.MustRegister("EKF1.Roll", vars.KindDynamic, &vals[2])
	m := NewMemoryMap(set)
	if err := m.Assign("PIDR.INTEG", RegionStabilizer); err != nil {
		t.Fatal(err)
	}
	if err := m.Assign("IMU.GyrX", RegionDrivers); err != nil {
		t.Fatal(err)
	}
	if err := m.Assign("EKF1.Roll", RegionEstimator); err != nil {
		t.Fatal(err)
	}
	return m, set, vals
}

func TestMemoryMapAssignAndLookup(t *testing.T) {
	m, _, _ := newTestMap(t)
	region, ok := m.RegionOf("PIDR.INTEG")
	if !ok || region != RegionStabilizer {
		t.Errorf("RegionOf = %q, %v", region, ok)
	}
	if _, ok := m.RegionOf("missing"); ok {
		t.Error("RegionOf found missing variable")
	}
	got := m.VarsInRegion(RegionStabilizer)
	if len(got) != 1 || got[0] != "PIDR.INTEG" {
		t.Errorf("VarsInRegion = %v", got)
	}
	if len(m.Regions()) != 6 {
		t.Errorf("Regions = %v", m.Regions())
	}
}

func TestMemoryMapAssignErrors(t *testing.T) {
	m, _, _ := newTestMap(t)
	if err := m.Assign("PIDR.INTEG", "nowhere"); err == nil {
		t.Error("unknown region accepted")
	}
	if err := m.Assign("missing", RegionStabilizer); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestMemoryMapAccessEnforcement(t *testing.T) {
	m, _, vals := newTestMap(t)
	// Same-region access succeeds — the compromised region's variables
	// are fully manipulable.
	ref, err := m.Access(RegionStabilizer, "PIDR.INTEG", true)
	if err != nil {
		t.Fatal(err)
	}
	ref.Set(0.7)
	if vals[0] != 0.7 {
		t.Errorf("write through access ref failed: %v", vals[0])
	}
	// Cross-region access raises an MPU violation.
	_, err = m.Access(RegionStabilizer, "IMU.GyrX", false)
	var accessErr *AccessError
	if !errors.As(err, &accessErr) {
		t.Fatalf("cross-region access error = %v, want AccessError", err)
	}
	if accessErr.From != RegionStabilizer || accessErr.Home != RegionDrivers {
		t.Errorf("AccessError fields: %+v", accessErr)
	}
	if accessErr.Error() == "" {
		t.Error("empty error string")
	}
	// Unknown variable.
	if _, err := m.Access(RegionStabilizer, "nope", false); err == nil {
		t.Error("unknown variable access accepted")
	}
}

func TestMemoryMapUnassignedVars(t *testing.T) {
	set := vars.NewSet()
	v := 0.0
	set.MustRegister("LONELY.VAR", vars.KindParam, &v)
	m := NewMemoryMap(set)
	missing := m.UnassignedVars()
	if len(missing) != 1 || missing[0] != "LONELY.VAR" {
		t.Errorf("UnassignedVars = %v", missing)
	}
	if err := m.Assign("LONELY.VAR", RegionConfig); err != nil {
		t.Fatal(err)
	}
	if len(m.UnassignedVars()) != 0 {
		t.Error("assigned variable still reported missing")
	}
}

func TestMemoryMapAddRegion(t *testing.T) {
	set := vars.NewSet()
	m := NewMemoryMap(set)
	m.AddRegion("custom", PermReadOnly)
	found := false
	for _, r := range m.Regions() {
		if r == "custom" {
			found = true
		}
	}
	if !found {
		t.Error("custom region not added")
	}
}

func TestRegionPermString(t *testing.T) {
	tests := []struct {
		perm RegionPerm
		want string
	}{
		{PermReadWrite, "rw"},
		{PermReadOnly, "ro"},
		{PermNoAccess, "none"},
		{RegionPerm(9), "perm(9)"},
	}
	for _, tt := range tests {
		if got := tt.perm.String(); got != tt.want {
			t.Errorf("perm = %q, want %q", got, tt.want)
		}
	}
}
