package firmware

import (
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/mavlink"
)

// Enqueue posts a GCS message to the firmware's inbox; it is processed at
// the start of the next main-loop tick, mirroring how real autopilots poll
// the telemetry UART. Safe for concurrent use.
func (f *Firmware) Enqueue(m mavlink.Message) {
	f.inboxMu.Lock()
	defer f.inboxMu.Unlock()
	f.inbox = append(f.inbox, m)
}

// DrainOutbox removes and returns any replies generated since the last call.
func (f *Firmware) DrainOutbox() []mavlink.Message {
	f.inboxMu.Lock()
	defer f.inboxMu.Unlock()
	out := f.outbox
	f.outbox = nil
	return out
}

func (f *Firmware) drainInbox() {
	f.inboxMu.Lock()
	pending := f.inbox
	f.inbox = nil
	f.inboxMu.Unlock()

	var replies []mavlink.Message
	var items []*mavlink.MissionItem
	for _, m := range pending {
		if mi, ok := m.(*mavlink.MissionItem); ok {
			items = append(items, mi)
			continue
		}
		if r := f.handleMessage(m); r != nil {
			replies = append(replies, r)
		}
	}
	if len(items) > 0 {
		replies = append(replies, f.handleMissionUpload(items))
	}
	if len(replies) > 0 {
		f.inboxMu.Lock()
		f.outbox = append(f.outbox, replies...)
		f.inboxMu.Unlock()
	}
}

// handleMessage processes one GCS message and returns the reply, if any.
func (f *Firmware) handleMessage(m mavlink.Message) mavlink.Message {
	switch msg := m.(type) {
	case *mavlink.Heartbeat:
		return &mavlink.Heartbeat{Type: 2, Autopilot: 3, Status: 4,
			CustomMode: uint32(f.mode)}

	case *mavlink.ParamSet:
		// The GCS parameter channel: range-validated, then applied live.
		err := f.params.Set(msg.Name, msg.Value)
		val, gerr := f.params.Get(msg.Name)
		if gerr != nil {
			val = 0
		}
		return &mavlink.ParamValue{Name: msg.Name, Value: val, OK: err == nil}

	case *mavlink.ParamRequestRead:
		val, err := f.params.Get(msg.Name)
		return &mavlink.ParamValue{Name: msg.Name, Value: val, OK: err == nil}

	case *mavlink.CommandLong:
		return f.handleCommand(msg)

	default:
		return nil
	}
}

func (f *Firmware) handleCommand(c *mavlink.CommandLong) mavlink.Message {
	result := uint8(0) // accepted
	switch c.Command {
	case mavlink.CmdArmDisarm:
		if c.Params[0] >= 0.5 {
			if err := f.Arm(); err != nil {
				result = 4 // failed
			}
		} else {
			f.Disarm()
		}
	case mavlink.CmdTakeoff:
		if err := f.Takeoff(c.Params[6]); err != nil {
			result = 4
		}
	case mavlink.CmdLand:
		f.SetMode(ModeLand)
	case mavlink.CmdRTL:
		f.SetMode(ModeRTL)
	case mavlink.CmdSetMode:
		f.SetMode(Mode(int(c.Params[0])))
	case mavlink.CmdMissionGo:
		if err := f.StartMission(); err != nil {
			result = 4
		}
	default:
		result = 3 // unsupported
	}
	return &mavlink.CommandAck{Command: c.Command, Result: result}
}

func (f *Firmware) handleMissionUpload(items []*mavlink.MissionItem) mavlink.Message {
	wps := make([]Waypoint, len(items))
	for i, it := range items {
		wps[i] = Waypoint{
			Pos:   mathx.V3(it.X, it.Y, it.Z),
			HoldS: it.Hold,
		}
	}
	f.LoadMission(NewMission(wps))
	return &mavlink.MissionAck{Count: uint16(len(items)), OK: true}
}

// TelemetrySnapshot builds the downlink messages a GCS would display.
func (f *Firmware) TelemetrySnapshot() []mavlink.Message {
	roll, pitch, yaw := f.est.Attitude()
	pos := f.est.Position()
	vel := f.est.Velocity()
	return []mavlink.Message{
		&mavlink.Attitude{TimeS: f.Time(), Roll: roll, Pitch: pitch, Yaw: yaw},
		&mavlink.GlobalPosition{TimeS: f.Time(),
			X: pos.X, Y: pos.Y, Z: pos.Z, VX: vel.X, VY: vel.Y},
	}
}
