// Package firmware assembles the full RAV flight stack: the 400 Hz
// scheduler, flight modes, mission engine, sensor/EKF/controller wiring,
// dataflash logging, the GCS protocol handler, and the MPU memory-region
// model that realizes the paper's threat model.
package firmware

import (
	"fmt"
	"sort"

	"github.com/ares-cps/ares/internal/vars"
)

// RegionPerm is the MPU access permission of a memory region.
type RegionPerm int

const (
	// PermReadWrite allows both reads and writes from unprivileged code.
	PermReadWrite RegionPerm = iota + 1
	// PermReadOnly allows only reads.
	PermReadOnly
	// PermNoAccess blocks unprivileged access entirely.
	PermNoAccess
)

// String returns the permission label.
func (p RegionPerm) String() string {
	switch p {
	case PermReadWrite:
		return "rw"
	case PermReadOnly:
		return "ro"
	case PermNoAccess:
		return "none"
	default:
		return fmt.Sprintf("perm(%d)", int(p))
	}
}

// Standard region names used by the firmware's memory map. The paper's
// observation drives the layout: "PID controllers executed by the stabilizer
// process usually run in the same memory region", so all three rate PIDs and
// their intermediates share RegionStabilizer.
const (
	RegionStabilizer = "stabilizer" // attitude + rate PIDs and intermediates
	RegionNavigator  = "navigator"  // position cascade, mission state
	RegionEstimator  = "estimator"  // EKF, SINS
	RegionDrivers    = "drivers"    // sensor readings
	RegionConfig     = "config"     // parameter table
	RegionActuators  = "actuators"  // motor outputs
)

// MemoryMap models the MPU configuration: a set of isolated regions and the
// assignment of every state variable to exactly one region.
type MemoryMap struct {
	regions map[string]RegionPerm
	varHome map[string]string // variable name → region
	vars    *vars.Set
}

// NewMemoryMap creates a map over the given variable set with the standard
// regions preconfigured read-write (the MPU isolates regions from *each
// other*; code inside a region has full access to it).
func NewMemoryMap(set *vars.Set) *MemoryMap {
	m := &MemoryMap{
		regions: make(map[string]RegionPerm),
		varHome: make(map[string]string),
		vars:    set,
	}
	for _, r := range []string{
		RegionStabilizer, RegionNavigator, RegionEstimator,
		RegionDrivers, RegionConfig, RegionActuators,
	} {
		m.regions[r] = PermReadWrite
	}
	return m
}

// AddRegion declares an additional region.
func (m *MemoryMap) AddRegion(name string, perm RegionPerm) {
	m.regions[name] = perm
}

// Assign places a variable in a region. Unknown variables or regions are
// wiring errors.
func (m *MemoryMap) Assign(variable, region string) error {
	if _, ok := m.regions[region]; !ok {
		return fmt.Errorf("firmware: unknown region %q", region)
	}
	if _, ok := m.vars.Lookup(variable); !ok {
		return fmt.Errorf("firmware: unknown variable %q", variable)
	}
	m.varHome[variable] = region
	return nil
}

// RegionOf returns the region holding a variable.
func (m *MemoryMap) RegionOf(variable string) (string, bool) {
	r, ok := m.varHome[variable]
	return r, ok
}

// VarsInRegion returns the names of all variables in a region, sorted. This
// is the attacker's reachable set after compromising that one region.
func (m *MemoryMap) VarsInRegion(region string) []string {
	var names []string
	for v, r := range m.varHome {
		if r == region {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	return names
}

// Regions returns all region names, sorted.
func (m *MemoryMap) Regions() []string {
	names := make([]string, 0, len(m.regions))
	for r := range m.regions {
		names = append(names, r)
	}
	sort.Strings(names)
	return names
}

// AccessError reports an MPU access violation — the fault the hardware
// raises when code in one region touches another.
type AccessError struct {
	Variable   string
	From, Home string
	Write      bool
}

func (e *AccessError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("firmware: MPU violation: %s of %q (region %q) from region %q",
		op, e.Variable, e.Home, e.From)
}

// Access returns a Ref to a variable if, and only if, the requesting region
// may touch it: same-region access is always allowed, cross-region access is
// denied. This enforces the isolation the paper's attacker must work within
// — having compromised one region, only that region's variables are
// manipulable.
func (m *MemoryMap) Access(fromRegion, variable string, write bool) (vars.Ref, error) {
	home, ok := m.varHome[variable]
	if !ok {
		return vars.Ref{}, fmt.Errorf("firmware: unknown variable %q", variable)
	}
	if home != fromRegion {
		return vars.Ref{}, &AccessError{
			Variable: variable, From: fromRegion, Home: home, Write: write,
		}
	}
	ref, ok := m.vars.Lookup(variable)
	if !ok {
		return vars.Ref{}, fmt.Errorf("firmware: variable %q lost from set", variable)
	}
	return ref, nil
}

// UnassignedVars returns registered variables that have no region, which the
// firmware treats as an assembly error.
func (m *MemoryMap) UnassignedVars() []string {
	var missing []string
	for _, name := range m.vars.Names() {
		if _, ok := m.varHome[name]; !ok {
			missing = append(missing, name)
		}
	}
	return missing
}
