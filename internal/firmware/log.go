package firmware

import (
	"math"

	"github.com/ares-cps/ares/internal/control"
	"github.com/ares-cps/ares/internal/mathx"
)

// writeLogs emits one dataflash sample of every message the profiler
// consumes. Errors are swallowed deliberately: in real firmware a full or
// failing flash never brings down the flight controller.
func (f *Firmware) writeLogs() {
	w := f.cfg.LogWriter
	now := f.quad.Time()
	st := f.quad.State()
	roll, pitch, yaw := st.Euler()
	estRoll, estPitch, estYaw := f.est.Attitude()
	estVel := f.est.Velocity()
	estPos := f.est.Position()
	r := f.lastReading

	deg := mathx.Deg
	_ = w.Log("ATT", now,
		deg(f.attDes(0)), deg(roll), deg(f.attDes(1)), deg(pitch),
		deg(f.attDes(2)), deg(yaw), deg(mathx.WrapPi(f.attDes(0)-roll)),
		deg(mathx.WrapPi(f.attDes(2)-yaw)),
		r.IMU.Gyro.X, r.IMU.Gyro.Y, r.IMU.Gyro.Z, 1)

	rateVals := f.rateVals(r)
	_ = w.Log("RATE", now, rateVals...)

	_ = w.Log("IMU", now,
		r.IMU.Gyro.X, r.IMU.Gyro.Y, r.IMU.Gyro.Z,
		r.IMU.Accel.X, r.IMU.Accel.Y, r.IMU.Accel.Z,
		0, 0, 25, 1, 1, 400)
	_ = w.Log("IMU2", now,
		r.IMU2.Gyro.X, r.IMU2.Gyro.Y, r.IMU2.Gyro.Z,
		r.IMU2.Accel.X, r.IMU2.Accel.Y, r.IMU2.Accel.Z,
		0, 0, 25, 1, 1, 400)

	_ = w.Log("BARO", now, r.BaroAlt, 1013.25, 25, -st.Vel.Z, now*1000)
	_ = w.Log("CTUN", now,
		f.pos.HoverThrottle, f.pos.Throttle(), f.pos.HoverThrottle,
		-f.currentTarget().Z, st.Altitude(), -st.Vel.Z)

	tgt := f.currentTarget()
	_ = w.Log("NTUN", now,
		tgt.Sub(estPos).XY(), mathx.Deg(yawTo(estPos, tgt)),
		tgt.X-estPos.X, tgt.Y-estPos.Y,
		f.ntunVar("NTUN.DVelX"), f.ntunVar("NTUN.DVelY"),
		estVel.X, estVel.Y,
		f.ntunVar("NTUN.DAccX"), f.ntunVar("NTUN.DAccY"),
		f.ntunVar("NTUN.tv"))

	_ = w.Log("GPS", now,
		3, now*1000, 0, float64(r.GPS.NumSats), 0.8,
		r.GPS.Pos.X, r.GPS.Pos.Y, -r.GPS.Pos.Z,
		r.GPS.Vel.XY(), deg(yaw), -r.GPS.Vel.Z, 0, 1, r.GPS.Pos.Z)

	ekfVals := []float64{
		deg(estRoll), deg(estPitch), deg(estYaw),
		estVel.X, estVel.Y, estVel.Z, estVel.Z * f.dt,
		estPos.X, estPos.Y, estPos.Z,
		r.IMU.Gyro.X, r.IMU.Gyro.Y, r.IMU.Gyro.Z, 0,
	}
	_ = w.Log("EKF1", now, ekfVals...)
	_ = w.Log("NKF1", now, ekfVals...)

	_ = w.Log("CURR", now, r.BatteryV, r.CurrentA,
		r.CurrentA*now/3.6, r.BatteryV*r.CurrentA*now/3600, r.BatteryV, 0, 0)

	mot := f.mixer.LastCommands()
	_ = w.Log("RCOU", now,
		pwm(mot[0]), pwm(mot[1]), pwm(mot[2]), pwm(mot[3]),
		0, 0, 0, 0, 0, 0, 0, 0, 0)

	_ = w.Log("PIDR", now, f.pidVals("PIDR", f.att.RateRoll)...)
	_ = w.Log("PIDP", now, f.pidVals("PIDP", f.att.RatePitch)...)
	_ = w.Log("PIDY", now, f.pidVals("PIDY", f.att.RateYaw)...)

	_ = w.Log("MODE", now, float64(f.mode), float64(f.mode), 1)
	_ = w.Log("VIBE", now,
		r.IMU.Accel.Dist(r.IMU2.Accel), 0, 0, 0, 0, 0, 1)
	_ = w.Log("MOTB", now, 1, r.BatteryV, 0, 0, f.pos.Throttle())
}

// attDes reads the desired attitude angle (0 roll, 1 pitch, 2 yaw) from the
// attitude controller's registered variables.
func (f *Firmware) attDes(axis int) float64 {
	names := [3]string{"ATT.DesRoll", "ATT.DesPitch", "ATT.DesYaw"}
	if ref, ok := f.varSet.Lookup(names[axis]); ok {
		return ref.Get()
	}
	return 0
}

func (f *Firmware) ntunVar(name string) float64 {
	if ref, ok := f.varSet.Lookup(name); ok {
		return ref.Get()
	}
	return 0
}

func (f *Firmware) rateVals(_ interface{}) []float64 {
	get := func(name string) float64 {
		if ref, ok := f.varSet.Lookup(name); ok {
			return ref.Get()
		}
		return 0
	}
	st := f.quad.State()
	return []float64{
		get("RATE.RDes"), st.Omega.X, get("PIDR.OUT"),
		get("RATE.PDes"), st.Omega.Y, get("PIDP.OUT"),
		get("RATE.YDes"), st.Omega.Z, get("PIDY.OUT"),
		0, -f.quad.LastAccel().Z, f.pos.Throttle(), f.pos.Throttle(),
	}
}

func (f *Firmware) pidVals(prefix string, p *control.PID) []float64 {
	return []float64{
		f.ntunVar(prefix + ".Tar"), f.ntunVar(prefix + ".Act"),
		p.P(), p.I(), p.D(), p.FF(), 0,
	}
}

// currentTarget returns the active guidance target for logging.
func (f *Firmware) currentTarget() mathx.Vec3 {
	switch f.mode {
	case ModeAuto:
		return f.mission.Target()
	case ModeRTL:
		return f.home
	default:
		return f.guidedTgt
	}
}

func yawTo(from, to mathx.Vec3) float64 {
	d := to.Sub(from)
	if d.XY() < 1e-9 {
		return 0
	}
	return math.Atan2(d.Y, d.X)
}

// pwm converts a motor fraction to the 1000–2000 µs PWM range of RCOU logs.
func pwm(frac float64) float64 { return 1000 + 1000*frac }
