package firmware

import (
	"github.com/ares-cps/ares/internal/mathx"
)

// Waypoint is one mission item in local NED coordinates.
type Waypoint struct {
	Pos mathx.Vec3
	// HoldS is how long to loiter at the waypoint before proceeding.
	HoldS float64
}

// Mission is the waypoint sequence an AUTO flight follows.
type Mission struct {
	waypoints []Waypoint
	current   int
	// AcceptRadius is the distance at which a waypoint counts as reached.
	AcceptRadius float64

	holdUntil float64
	holding   bool
	complete  bool
}

// NewMission builds a mission from waypoints. The default acceptance radius
// is 2 m (ArduCopter's WPNAV_RADIUS default of 200 cm).
func NewMission(waypoints []Waypoint) *Mission {
	m := &Mission{AcceptRadius: 2}
	m.waypoints = make([]Waypoint, len(waypoints))
	copy(m.waypoints, waypoints)
	return m
}

// Target returns the active waypoint position. After completion it keeps
// returning the final waypoint so the vehicle loiters there.
func (m *Mission) Target() mathx.Vec3 {
	if len(m.waypoints) == 0 {
		return mathx.Vec3{}
	}
	idx := m.current
	if idx >= len(m.waypoints) {
		idx = len(m.waypoints) - 1
	}
	return m.waypoints[idx].Pos
}

// CurrentIndex returns the active waypoint index.
func (m *Mission) CurrentIndex() int { return m.current }

// Complete reports whether every waypoint has been visited.
func (m *Mission) Complete() bool { return m.complete }

// Update advances the mission state machine given the vehicle position and
// current time; it returns true when a waypoint was just reached.
func (m *Mission) Update(pos mathx.Vec3, now float64) bool {
	if m.complete || len(m.waypoints) == 0 {
		return false
	}
	if m.holding {
		if now >= m.holdUntil {
			m.holding = false
			m.advance()
		}
		return false
	}
	wp := m.waypoints[m.current]
	if pos.Dist(wp.Pos) > m.AcceptRadius {
		return false
	}
	if wp.HoldS > 0 {
		m.holding = true
		m.holdUntil = now + wp.HoldS
	} else {
		m.advance()
	}
	return true
}

func (m *Mission) advance() {
	m.current++
	if m.current >= len(m.waypoints) {
		m.current = len(m.waypoints) - 1
		m.complete = true
	}
}

// Path returns the waypoint positions as a polyline, the Pth the paper's
// uncontrolled-failure reward measures deviation from.
func (m *Mission) Path() []mathx.Vec3 {
	out := make([]mathx.Vec3, len(m.waypoints))
	for i, wp := range m.waypoints {
		out[i] = wp.Pos
	}
	return out
}

// Len returns the number of waypoints.
func (m *Mission) Len() int { return len(m.waypoints) }

// Reset rewinds the mission to its first waypoint.
func (m *Mission) Reset() {
	m.current = 0
	m.holding = false
	m.complete = false
	m.holdUntil = 0
}

// SquareMission builds the benign profiling mission used throughout the
// evaluation: a closed square of the given side length at the given
// altitude, visiting four corners and returning to the start. Legs are
// straight lines, matching the paper's "path following mission consisting
// of a couple of straight lines".
func SquareMission(side, altitude float64) *Mission {
	z := -altitude
	return NewMission([]Waypoint{
		{Pos: mathx.V3(0, 0, z)},
		{Pos: mathx.V3(side, 0, z)},
		{Pos: mathx.V3(side, side, z)},
		{Pos: mathx.V3(0, side, z)},
		{Pos: mathx.V3(0, 0, z)},
	})
}

// LineMission builds a straight two-waypoint path (A → B) at altitude,
// the Figure 10 scenario's leg between waypoints A and B.
func LineMission(length, altitude float64) *Mission {
	z := -altitude
	return NewMission([]Waypoint{
		{Pos: mathx.V3(0, 0, z)},
		{Pos: mathx.V3(length, 0, z)},
	})
}
