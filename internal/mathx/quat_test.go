package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuatIdentityRotation(t *testing.T) {
	q := QuatIdentity()
	v := V3(1, 2, 3)
	if got := q.Rotate(v); got.Dist(v) > 1e-12 {
		t.Errorf("identity rotation moved vector: %v", got)
	}
	r, p, y := q.Euler()
	if r != 0 || p != 0 || y != 0 {
		t.Errorf("identity Euler = (%v %v %v)", r, p, y)
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		roll := (rng.Float64() - 0.5) * 2 * (math.Pi - 0.01)
		pitch := (rng.Float64() - 0.5) * (math.Pi - 0.02) // avoid gimbal lock
		yaw := (rng.Float64() - 0.5) * 2 * (math.Pi - 0.01)
		q := QuatFromEuler(roll, pitch, yaw)
		r2, p2, y2 := q.Euler()
		if !ApproxEqual(WrapPi(r2-roll), 0, 1e-9) ||
			!ApproxEqual(p2, pitch, 1e-9) ||
			!ApproxEqual(WrapPi(y2-yaw), 0, 1e-9) {
			t.Fatalf("round trip (%v %v %v) -> (%v %v %v)", roll, pitch, yaw, r2, p2, y2)
		}
	}
}

func TestQuatAxisAngle(t *testing.T) {
	// 90° about Z maps X to Y.
	q := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	got := q.Rotate(V3(1, 0, 0))
	if got.Dist(V3(0, 1, 0)) > 1e-12 {
		t.Errorf("90° Z rotation of X = %v, want Y", got)
	}
}

func TestQuatRotatePreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		q := QuatFromEuler(rng.NormFloat64(), rng.NormFloat64()/2, rng.NormFloat64())
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(5)
		if !ApproxEqual(q.Rotate(v).Norm(), v.Norm(), 1e-9) {
			t.Fatalf("rotation changed norm: |v|=%v |qv|=%v", v.Norm(), q.Rotate(v).Norm())
		}
	}
}

func TestQuatRotateInverse(t *testing.T) {
	q := QuatFromEuler(0.3, -0.2, 1.1)
	v := V3(1, -2, 0.5)
	back := q.RotateInverse(q.Rotate(v))
	if back.Dist(v) > 1e-12 {
		t.Errorf("rotate+inverse = %v, want %v", back, v)
	}
}

func TestQuatRotationMatrixAgreesWithRotate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		q := QuatFromEuler(rng.NormFloat64(), rng.NormFloat64()/2, rng.NormFloat64())
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		a := q.Rotate(v)
		b := q.RotationMatrix().MulVec(v)
		if a.Dist(b) > 1e-9 {
			t.Fatalf("matrix and quaternion rotations disagree: %v vs %v", a, b)
		}
	}
}

func TestQuatIntegrate(t *testing.T) {
	// Integrating a constant yaw rate of 1 rad/s for 1 s in small steps
	// should yield ~1 rad of yaw.
	q := QuatIdentity()
	const dt = 1e-4
	for i := 0; i < 10000; i++ {
		q = q.Integrate(V3(0, 0, 1), dt)
	}
	_, _, yaw := q.Euler()
	if !ApproxEqual(yaw, 1, 1e-3) {
		t.Errorf("integrated yaw = %v, want ~1", yaw)
	}
	if !ApproxEqual(q.Norm(), 1, 1e-12) {
		t.Errorf("integration denormalized quaternion: %v", q.Norm())
	}
}

func TestQuatNormalizedZero(t *testing.T) {
	var z Quat
	if got := z.Normalized(); got != QuatIdentity() {
		t.Errorf("zero quaternion normalized to %v, want identity", got)
	}
}

func TestQuatMulComposition(t *testing.T) {
	// Two 45° yaw rotations compose to 90°.
	h := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/4)
	q := h.Mul(h)
	got := q.Rotate(V3(1, 0, 0))
	if got.Dist(V3(0, 1, 0)) > 1e-12 {
		t.Errorf("composed rotation of X = %v, want Y", got)
	}
}

func TestQuatDot(t *testing.T) {
	q := QuatFromEuler(0.1, 0.2, 0.3)
	if !ApproxEqual(q.Dot(q), 1, 1e-12) {
		t.Errorf("q·q = %v, want 1 for unit quaternion", q.Dot(q))
	}
}
