package mathx

import "math"

// Clamp limits v to the closed interval [lo, hi]. It assumes lo <= hi.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WrapPi wraps an angle in radians to (-π, π].
func WrapPi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a > math.Pi:
		a -= 2 * math.Pi
	case a <= -math.Pi:
		a += 2 * math.Pi
	}
	return a
}

// Wrap2Pi wraps an angle in radians to [0, 2π).
func Wrap2Pi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Sign returns -1, 0 or +1 matching the sign of v.
func Sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// ApproxEqual reports whether a and b differ by no more than tol.
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Segment is a 3D line segment between points A and B, used for mission
// path legs and forbidden-zone boundaries.
type Segment struct {
	A, B Vec3
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec3) Vec3 {
	ab := s.B.Sub(s.A)
	denom := ab.NormSq()
	if denom == 0 {
		return s.A
	}
	t := Clamp(p.Sub(s.A).Dot(ab)/denom, 0, 1)
	return s.A.Add(ab.Scale(t))
}

// Distance returns the shortest distance from p to the segment.
func (s Segment) Distance(p Vec3) float64 {
	return s.ClosestPoint(p).Dist(p)
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// PathDistance returns the minimum distance from p to a polyline defined by
// consecutive waypoints, matching the paper's observation
// d = min ‖p − path‖ over all legs. It returns 0 for fewer than 2 points
// when the single point coincides with p, or the distance to the lone point.
func PathDistance(p Vec3, waypoints []Vec3) float64 {
	switch len(waypoints) {
	case 0:
		return math.Inf(1)
	case 1:
		return p.Dist(waypoints[0])
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(waypoints); i++ {
		d := (Segment{A: waypoints[i], B: waypoints[i+1]}).Distance(p)
		if d < best {
			best = d
		}
	}
	return best
}

// AABB is an axis-aligned box used to model obstacles and forbidden zones.
type AABB struct {
	Min, Max Vec3
}

// Contains reports whether p lies inside the box (inclusive).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Distance returns the shortest distance from p to the box surface; 0 if p
// is inside.
func (b AABB) Distance(p Vec3) float64 {
	dx := math.Max(math.Max(b.Min.X-p.X, 0), p.X-b.Max.X)
	dy := math.Max(math.Max(b.Min.Y-p.Y, 0), p.Y-b.Max.Y)
	dz := math.Max(math.Max(b.Min.Z-p.Z, 0), p.Z-b.Max.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Center returns the box center point.
func (b AABB) Center() Vec3 {
	return b.Min.Add(b.Max).Scale(0.5)
}

// LowPassAlpha computes the smoothing factor for a first-order low-pass
// filter with the given cutoff frequency (Hz) sampled every dt seconds.
// A cutoff <= 0 disables filtering (alpha = 1, output follows input).
func LowPassAlpha(cutoffHz, dt float64) float64 {
	if cutoffHz <= 0 || dt <= 0 {
		return 1
	}
	rc := 1 / (2 * math.Pi * cutoffHz)
	return dt / (dt + rc)
}
