package mathx

import "testing"

func TestSplitMix64Reference(t *testing.T) {
	// The first output of Vigna's splitmix64.c from state 0 is the
	// published reference value; a second arbitrary state pins the mix.
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if got := SplitMix64(1234567); got != 0x599ed017fb08fc85 {
		t.Errorf("SplitMix64(1234567) = %#x, want 0x599ed017fb08fc85", got)
	}
}

// TestDeriveSeedNoAdjacentCollisions is the property the ad-hoc `seed +
// 1000` offsets violated: stream k of base b collides with stream k-1 of
// base b+1000. DeriveSeed must keep all (base, stream) pairs distinct over
// a dense grid of adjacent bases and streams.
func TestDeriveSeedNoAdjacentCollisions(t *testing.T) {
	seen := make(map[int64][2]int64)
	for base := int64(-64); base < 64; base++ {
		for stream := int64(0); stream < 64; stream++ {
			s := DeriveSeed(base, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed(%d,%d) == DeriveSeed(%d,%d) == %d",
					base, stream, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, stream}
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, 7) == DeriveSeed(42, 8) {
		t.Fatal("adjacent streams collide")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Fatal("adjacent bases collide")
	}
}
