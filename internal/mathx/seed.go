package mathx

// SplitMix64 advances the splitmix64 generator one step from state x and
// returns the mixed output. It is the finalizer Vigna recommends for
// seeding other generators: a bijective avalanche mix, so distinct inputs
// always produce distinct outputs.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed derives an independent seed for the given stream from a base
// seed. Adjacent base seeds (1, 2, 3, …) and adjacent streams map to
// unrelated outputs, unlike ad-hoc `base + offset` schemes where stream k
// of seed s collides with stream k-1 of seed s+1. Both arguments are mixed
// through SplitMix64, so DeriveSeed(b, s1) == DeriveSeed(b', s2) requires a
// full 64-bit collision between distinct (base, stream) pairs.
func DeriveSeed(base, stream int64) int64 {
	h := SplitMix64(uint64(base))
	h = SplitMix64(h ^ SplitMix64(uint64(stream)+0x6a09e667f3bcc909))
	return int64(h)
}
