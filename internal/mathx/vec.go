// Package mathx provides the small linear-algebra and numeric toolkit shared
// by the simulator, controllers, estimators and statistics packages.
//
// Everything here is deliberately allocation-free value math: Vec3 and Mat3
// are plain structs, quaternions are four floats, and all operations return
// new values. This keeps the 400 Hz control loop free of garbage and makes
// the physics integrator trivially testable.
package mathx

import "math"

// Vec3 is a three-dimensional vector. The simulator uses the NED (north,
// east, down) convention for world-frame vectors and FRD (forward, right,
// down) for body-frame vectors.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is shorthand for constructing a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		X: v.Y*o.Z - v.Z*o.Y,
		Y: v.Z*o.X - v.X*o.Z,
		Z: v.X*o.Y - v.Y*o.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Hadamard returns the element-wise product of v and o.
func (v Vec3) Hadamard(o Vec3) Vec3 { return Vec3{v.X * o.X, v.Y * o.Y, v.Z * o.Z} }

// XY returns the horizontal (X, Y) length of v.
func (v Vec3) XY() float64 { return math.Hypot(v.X, v.Y) }

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// Lerp linearly interpolates from v to o by t in [0, 1].
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return v.Add(o.Sub(v).Scale(t))
}

// Dist returns the Euclidean distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Norm() }

// Mat3 is a 3×3 matrix in row-major order.
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// Diag returns a diagonal matrix with the given entries.
func Diag(x, y, z float64) Mat3 {
	return Mat3{M: [3][3]float64{{x, 0, 0}, {0, y, 0}, {0, 0, z}}}
}

// MulVec returns m · v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z,
		Y: m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z,
		Z: m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z,
	}
}

// Mul returns the matrix product m · o.
func (m Mat3) Mul(o Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m.M[i][k] * o.M[k][j]
			}
			r.M[i][j] = s
		}
	}
	return r
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[j][i]
		}
	}
	return r
}

// Scale returns m with every entry multiplied by s.
func (m Mat3) Scale(s float64) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[i][j] * s
		}
	}
	return r
}

// Add returns m + o.
func (m Mat3) Add(o Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[i][j] + o.M[i][j]
		}
	}
	return r
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	a := m.M
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

// Inverse returns the inverse of m and whether it exists (det ≠ 0).
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if d == 0 {
		return Mat3{}, false
	}
	a := m.M
	inv := 1 / d
	var r Mat3
	r.M[0][0] = (a[1][1]*a[2][2] - a[1][2]*a[2][1]) * inv
	r.M[0][1] = (a[0][2]*a[2][1] - a[0][1]*a[2][2]) * inv
	r.M[0][2] = (a[0][1]*a[1][2] - a[0][2]*a[1][1]) * inv
	r.M[1][0] = (a[1][2]*a[2][0] - a[1][0]*a[2][2]) * inv
	r.M[1][1] = (a[0][0]*a[2][2] - a[0][2]*a[2][0]) * inv
	r.M[1][2] = (a[0][2]*a[1][0] - a[0][0]*a[1][2]) * inv
	r.M[2][0] = (a[1][0]*a[2][1] - a[1][1]*a[2][0]) * inv
	r.M[2][1] = (a[0][1]*a[2][0] - a[0][0]*a[2][1]) * inv
	r.M[2][2] = (a[0][0]*a[1][1] - a[0][1]*a[1][0]) * inv
	return r, true
}

// Skew returns the skew-symmetric cross-product matrix [v]× such that
// Skew(v).MulVec(w) == v.Cross(w).
func Skew(v Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{0, -v.Z, v.Y},
		{v.Z, 0, -v.X},
		{-v.Y, v.X, 0},
	}}
}
