package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestWrapPi(t *testing.T) {
	tests := []struct{ give, want float64 }{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := WrapPi(tt.give); !ApproxEqual(got, tt.want, 1e-12) {
			t.Errorf("WrapPi(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	// Property: result always in (-π, π].
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := rng.NormFloat64() * 100
		w := WrapPi(a)
		if w <= -math.Pi || w > math.Pi {
			t.Fatalf("WrapPi(%v) = %v out of range", a, w)
		}
		// Same angle modulo 2π.
		if !ApproxEqual(math.Mod(a-w, 2*math.Pi), 0, 1e-9) &&
			!ApproxEqual(math.Abs(math.Mod(a-w, 2*math.Pi)), 2*math.Pi, 1e-9) {
			t.Fatalf("WrapPi(%v) = %v changed angle", a, w)
		}
	}
}

func TestWrap2Pi(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		a := rng.NormFloat64() * 50
		w := Wrap2Pi(a)
		if w < 0 || w >= 2*math.Pi {
			t.Fatalf("Wrap2Pi(%v) = %v out of range", a, w)
		}
	}
}

func TestDegRad(t *testing.T) {
	if !ApproxEqual(Deg(math.Pi), 180, 1e-12) {
		t.Errorf("Deg(π) = %v", Deg(math.Pi))
	}
	if !ApproxEqual(Rad(90), math.Pi/2, 1e-12) {
		t.Errorf("Rad(90) = %v", Rad(90))
	}
	// Round trip.
	for _, a := range []float64{-37.5, 0, 12.25, 359} {
		if !ApproxEqual(Deg(Rad(a)), a, 1e-9) {
			t.Errorf("Deg(Rad(%v)) = %v", a, Deg(Rad(a)))
		}
	}
}

func TestSign(t *testing.T) {
	if Sign(3) != 1 || Sign(-0.1) != -1 || Sign(0) != 0 {
		t.Error("Sign incorrect")
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{A: V3(0, 0, 0), B: V3(10, 0, 0)}
	tests := []struct {
		give Vec3
		want Vec3
	}{
		{V3(5, 3, 0), V3(5, 0, 0)},    // projects inside
		{V3(-4, 2, 0), V3(0, 0, 0)},   // clamps to A
		{V3(15, -1, 0), V3(10, 0, 0)}, // clamps to B
	}
	for _, tt := range tests {
		if got := s.ClosestPoint(tt.give); got.Dist(tt.want) > 1e-12 {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	// Degenerate segment.
	d := Segment{A: V3(1, 1, 1), B: V3(1, 1, 1)}
	if got := d.ClosestPoint(V3(5, 5, 5)); got != V3(1, 1, 1) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
	if got := s.Length(); got != 10 {
		t.Errorf("Length = %v", got)
	}
}

func TestPathDistance(t *testing.T) {
	path := []Vec3{V3(0, 0, 0), V3(10, 0, 0), V3(10, 10, 0)}
	tests := []struct {
		give Vec3
		want float64
	}{
		{V3(5, 2, 0), 2},  // closest to first leg
		{V3(12, 5, 0), 2}, // closest to second leg
		{V3(10, 0, 0), 0}, // on the corner
		{V3(0, -3, 0), 3}, // off the start
	}
	for _, tt := range tests {
		if got := PathDistance(tt.give, path); !ApproxEqual(got, tt.want, 1e-12) {
			t.Errorf("PathDistance(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if got := PathDistance(V3(0, 0, 0), nil); !math.IsInf(got, 1) {
		t.Errorf("empty path distance = %v, want +Inf", got)
	}
	if got := PathDistance(V3(3, 4, 0), []Vec3{{}}); got != 5 {
		t.Errorf("single point distance = %v, want 5", got)
	}
}

func TestAABB(t *testing.T) {
	box := AABB{Min: V3(0, 0, 0), Max: V3(10, 10, 10)}
	if !box.Contains(V3(5, 5, 5)) {
		t.Error("center not contained")
	}
	if box.Contains(V3(11, 5, 5)) {
		t.Error("outside point contained")
	}
	if got := box.Distance(V3(5, 5, 5)); got != 0 {
		t.Errorf("inside distance = %v", got)
	}
	if got := box.Distance(V3(13, 5, 5)); got != 3 {
		t.Errorf("face distance = %v, want 3", got)
	}
	if got := box.Distance(V3(13, 14, 5)); !ApproxEqual(got, 5, 1e-12) {
		t.Errorf("edge distance = %v, want 5", got)
	}
	if got := box.Center(); got != V3(5, 5, 5) {
		t.Errorf("Center = %v", got)
	}
}

func TestLowPassAlpha(t *testing.T) {
	// Disabled filter passes through.
	if got := LowPassAlpha(0, 0.01); got != 1 {
		t.Errorf("alpha(0 Hz) = %v, want 1", got)
	}
	if got := LowPassAlpha(20, 0); got != 1 {
		t.Errorf("alpha(dt=0) = %v, want 1", got)
	}
	a := LowPassAlpha(20, 1.0/400)
	if a <= 0 || a >= 1 {
		t.Errorf("alpha(20 Hz @400 Hz) = %v, want in (0,1)", a)
	}
	// Higher cutoff lets more signal through.
	if LowPassAlpha(40, 1.0/400) <= a {
		t.Error("alpha not monotonic in cutoff")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12) {
		t.Error("values within tol reported unequal")
	}
	if ApproxEqual(1.0, 1.1, 1e-3) {
		t.Error("values beyond tol reported equal")
	}
}
