package mathx

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVec3Arithmetic(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, -5, 6)

	if got := a.Add(b); got != V3(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V3(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Hadamard(b); got != V3(4, -10, 18) {
		t.Errorf("Hadamard = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x × y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y × z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z × x = %v, want y", got)
	}
}

func TestVec3CrossOrthogonality(t *testing.T) {
	// Property: v × w is orthogonal to both operands.
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.NormFloat64() * 10)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec3NormAndNormalize(t *testing.T) {
	v := V3(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq = %v, want 25", got)
	}
	n := v.Normalized()
	if !ApproxEqual(n.Norm(), 1, 1e-12) {
		t.Errorf("Normalized().Norm() = %v, want 1", n.Norm())
	}
	// Zero vector stays zero rather than producing NaN.
	if got := V3(0, 0, 0).Normalized(); got != V3(0, 0, 0) {
		t.Errorf("zero Normalized = %v", got)
	}
}

func TestVec3LerpAndDist(t *testing.T) {
	a, b := V3(0, 0, 0), V3(10, 0, 0)
	if got := a.Lerp(b, 0.25); got != V3(2.5, 0, 0) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Dist(b); got != 10 {
		t.Errorf("Dist = %v", got)
	}
	if got := V3(1, 1, 0).XY(); !ApproxEqual(got, math.Sqrt2, 1e-12) {
		t.Errorf("XY = %v", got)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V3(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestMat3Identity(t *testing.T) {
	v := V3(1, 2, 3)
	if got := Identity3().MulVec(v); got != v {
		t.Errorf("I·v = %v, want %v", got, v)
	}
	if got := Identity3().Det(); got != 1 {
		t.Errorf("det(I) = %v", got)
	}
}

func TestMat3MulAndTranspose(t *testing.T) {
	a := Mat3{M: [3][3]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}}
	at := a.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if at.M[i][j] != a.M[j][i] {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	// (A·I) == A
	ai := a.Mul(Identity3())
	if ai != a {
		t.Errorf("A·I = %v, want %v", ai, a)
	}
}

func TestMat3Inverse(t *testing.T) {
	a := Mat3{M: [3][3]float64{{2, 0, 0}, {0, 4, 0}, {0, 1, 8}}}
	inv, ok := a.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	prod := a.Mul(inv)
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !ApproxEqual(prod.M[i][j], id.M[i][j], 1e-12) {
				t.Fatalf("A·A⁻¹[%d][%d] = %v", i, j, prod.M[i][j])
			}
		}
	}
	// Singular matrix.
	sing := Mat3{M: [3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}}
	if _, ok := sing.Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestSkewMatchesCross(t *testing.T) {
	v, w := V3(1, -2, 0.5), V3(3, 0.25, -1)
	got := Skew(v).MulVec(w)
	want := v.Cross(w)
	if got.Dist(want) > 1e-12 {
		t.Errorf("Skew(v)·w = %v, want %v", got, want)
	}
}

func TestDiag(t *testing.T) {
	d := Diag(2, 3, 4)
	if got := d.MulVec(V3(1, 1, 1)); got != V3(2, 3, 4) {
		t.Errorf("Diag·1 = %v", got)
	}
}
