package mathx

import "math"

// Quat is a unit quaternion (w, x, y, z) representing a rotation from the
// body frame to the world frame.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds a quaternion rotating angle radians about axis.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	axis = axis.Normalized()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: axis.X * s, Y: axis.Y * s, Z: axis.Z * s}
}

// QuatFromEuler builds a quaternion from roll (φ, about X), pitch (θ, about
// Y) and yaw (ψ, about Z) using the aerospace Z-Y-X rotation sequence.
func QuatFromEuler(roll, pitch, yaw float64) Quat {
	sr, cr := math.Sincos(roll / 2)
	sp, cp := math.Sincos(pitch / 2)
	sy, cy := math.Sincos(yaw / 2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// Euler returns the (roll, pitch, yaw) Z-Y-X Euler angles of q.
func (q Quat) Euler() (roll, pitch, yaw float64) {
	// Roll (x-axis rotation).
	sinr := 2 * (q.W*q.X + q.Y*q.Z)
	cosr := 1 - 2*(q.X*q.X+q.Y*q.Y)
	roll = math.Atan2(sinr, cosr)

	// Pitch (y-axis rotation), clamped at the gimbal-lock singularity.
	sinp := 2 * (q.W*q.Y - q.Z*q.X)
	switch {
	case sinp >= 1:
		pitch = math.Pi / 2
	case sinp <= -1:
		pitch = -math.Pi / 2
	default:
		pitch = math.Asin(sinp)
	}

	// Yaw (z-axis rotation).
	siny := 2 * (q.W*q.Z + q.X*q.Y)
	cosy := 1 - 2*(q.Y*q.Y+q.Z*q.Z)
	yaw = math.Atan2(siny, cosy)
	return roll, pitch, yaw
}

// Mul returns the quaternion product q · o (first rotate by o, then q).
func (q Quat) Mul(o Quat) Quat {
	return Quat{
		W: q.W*o.W - q.X*o.X - q.Y*o.Y - q.Z*o.Z,
		X: q.W*o.X + q.X*o.W + q.Y*o.Z - q.Z*o.Y,
		Y: q.W*o.Y - q.X*o.Z + q.Y*o.W + q.Z*o.X,
		Z: q.W*o.Z + q.X*o.Y - q.Y*o.X + q.Z*o.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit length; the zero quaternion becomes
// the identity so downstream rotations stay well defined.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	return Quat{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation to a body-frame vector, yielding the
// world-frame vector.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q · (0, v) · q*
	qv := Quat{X: v.X, Y: v.Y, Z: v.Z}
	r := q.Mul(qv).Mul(q.Conj())
	return Vec3{X: r.X, Y: r.Y, Z: r.Z}
}

// RotateInverse applies the inverse rotation: world frame → body frame.
func (q Quat) RotateInverse(v Vec3) Vec3 { return q.Conj().Rotate(v) }

// RotationMatrix returns the 3×3 direction-cosine matrix equivalent of q
// (body → world).
func (q Quat) RotationMatrix() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{M: [3][3]float64{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}}
}

// Integrate advances the attitude by body angular rate ω over dt seconds
// using first-order quaternion kinematics, renormalizing the result.
func (q Quat) Integrate(omega Vec3, dt float64) Quat {
	// q̇ = ½ q ⊗ (0, ω)
	dq := q.Mul(Quat{X: omega.X, Y: omega.Y, Z: omega.Z})
	return Quat{
		W: q.W + 0.5*dq.W*dt,
		X: q.X + 0.5*dq.X*dt,
		Y: q.Y + 0.5*dq.Y*dt,
		Z: q.Z + 0.5*dq.Z*dt,
	}.Normalized()
}

// Dot returns the four-dimensional dot product of two quaternions, used to
// measure rotational closeness (1 = identical orientation).
func (q Quat) Dot(o Quat) float64 {
	return q.W*o.W + q.X*o.X + q.Y*o.Y + q.Z*o.Z
}
