package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	s := 0.0
	for i := 0; i < 1_000_00; i++ {
		s += float64(i % 7)
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartNoOpWithEmptyPaths(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}

func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Fatalf("mem profile missing or empty: %v", err)
	}
}
