// Package profiling wires Go's pprof profilers into the repo's CLIs so
// hot-path hunts (like the stepwise-AIC rewrite this package shipped with)
// start from a profile instead of guesswork. Commands expose the standard
// -cpuprofile/-memprofile flag pair and call Start once; the returned stop
// function flushes both profiles on the way out.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile into
// memPath; either path may be empty to skip that profile. The returned stop
// function ends the CPU profile and writes the heap snapshot — call it
// exactly once, after the measured work, even on error paths (defer is
// fine). With both paths empty, Start is a no-op and stop never fails.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // best-effort: the start error is the one to surface
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: create mem profile: %w", err)
			}
			runtime.GC() // settle the heap so the snapshot shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close() // best-effort: the write error is the one to surface
				return fmt.Errorf("profiling: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: close mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
