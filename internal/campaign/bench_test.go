package campaign

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
)

// benchSpec is the 16-job mini-campaign the sequential-vs-pooled speedup
// is tracked on: 2 variables × 8 trials of tiny real exploit trainings.
func benchSpec() Spec {
	return Spec{
		Name:      "bench",
		Seed:      11,
		Missions:  []MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"PIDR.INTEG", "CMD.Roll"},
		Goals:     []string{GoalDeviation},
		Defenses:  []string{DefenseNone},
		Trials:    8,
		Episodes:  2,
		MaxSteps:  6,
	}
}

func benchRun(b *testing.B, workers int) {
	b.Helper()
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := OpenStore(filepath.Join(b.TempDir(), "artifacts.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		r := &Runner{Workers: workers}
		stats, err := r.Run(context.Background(), spec, st)
		st.Close()
		if err != nil {
			b.Fatal(err)
		}
		if stats.OK != stats.Total {
			b.Fatalf("stats %+v", stats)
		}
	}
}

func BenchmarkCampaign16Sequential(b *testing.B) { benchRun(b, 1) }

func BenchmarkCampaign16Pooled(b *testing.B) { benchRun(b, runtime.NumCPU()) }
