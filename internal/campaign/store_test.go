package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStore creates a store at path and appends recs to it.
func writeStore(t *testing.T, path string, recs ...Record) {
	t.Helper()
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func okRecord(key string) Record {
	return Record{Key: key, Mission: "square", Variable: "V", Status: StatusOK,
		Metrics: &Metrics{Deviation: 1.5}}
}

// TestStoreResumeCorruptTail simulates a campaign killed mid-Append: the
// artifact file ends with a truncated JSON line. Resume must recover every
// intact record, truncate the damage, and keep appending cleanly.
func TestStoreResumeCorruptTail(t *testing.T) {
	for _, tail := range []string{
		`{"key":"c","mission":"sq`,         // truncated mid-record, no newline
		`{"key":"c","mission":"sq}` + "\n", // corrupt but newline-terminated
		"\x00\x00\x00",                     // raw garbage
	} {
		t.Run(strings.ReplaceAll(tail, "\n", "\\n"), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "runs.jsonl")
			writeStore(t, path, okRecord("a"), okRecord("b"))

			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// ReadRecords tolerates the damaged tail.
			recs, err := ReadRecords(path)
			if err != nil {
				t.Fatalf("ReadRecords: %v", err)
			}
			if len(recs) != 2 || recs[0].Key != "a" || recs[1].Key != "b" {
				t.Fatalf("recovered %+v, want records a,b", recs)
			}

			// Reopening resumes with the intact prefix and appends cleanly
			// past the truncated damage.
			s, err := OpenStore(path)
			if err != nil {
				t.Fatalf("OpenStore after corruption: %v", err)
			}
			if got := s.CompletedCount(); got != 2 {
				t.Fatalf("CompletedCount = %d, want 2", got)
			}
			if !s.Completed("a") || !s.Completed("b") || s.Completed("c") {
				t.Fatal("completed-key index wrong after recovery")
			}
			if err := s.Append(okRecord("c")); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			recs, err = ReadRecords(path)
			if err != nil {
				t.Fatalf("ReadRecords after resume: %v", err)
			}
			if len(recs) != 3 || recs[2].Key != "c" {
				t.Fatalf("after resume got %+v, want a,b,c", recs)
			}
		})
	}
}

// TestStoreResumeMissingFinalNewline covers a crash between the final
// record's bytes landing and its newline: the record is intact JSON but
// unterminated. It must be kept, and the next append must not glue onto it.
func TestStoreResumeMissingFinalNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	writeStore(t, path, okRecord("a"), okRecord("b"))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("fixture should end with newline")
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CompletedCount(); got != 2 {
		t.Fatalf("CompletedCount = %d, want 2", got)
	}
	if err := s.Append(okRecord("c")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Key != "c" {
		t.Fatalf("got %+v, want a,b,c", recs)
	}
}

// TestReadRecordsCorruptMiddleStillErrors pins that recovery applies only to
// the tail: a corrupt line with intact records after it is ambiguous and
// must fail loudly rather than silently dropping data.
func TestReadRecordsCorruptMiddleStillErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	writeStore(t, path, okRecord("a"), okRecord("b"))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mangled := `{"key":"broken` + "\n" + lines[0] + lines[1]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadRecords(path); err == nil {
		t.Fatal("corrupt middle line accepted")
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("OpenStore accepted corrupt middle line")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.csv")
	if err := WriteFileAtomic(path, []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second\n" {
		t.Errorf("content = %q, want %q", got, "second\n")
	}
	// No temp files may survive a successful finalization.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("leftover files after atomic write: %v", names)
	}
}
