package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Metrics are the measured outcomes of one completed job. Records carry no
// wall-clock fields on purpose: artifact bytes depend only on the spec, so
// runs at different worker counts (or resumed runs) produce identical
// sorted records.
type Metrics struct {
	// Deviation is the peak path deviation (deviation goal) or the final
	// distance to the forbidden zone (crash goal), in meters.
	Deviation float64 `json:"deviation"`
	// Return is the greedy evaluation episode return.
	Return float64 `json:"return"`
	// BestReturn is the best training-episode return.
	BestReturn float64 `json:"best_return"`
	// Detected reports an in-loop detector alarm during evaluation.
	Detected bool `json:"detected"`
	// Crashed reports vehicle loss during evaluation.
	Crashed bool `json:"crashed"`
	// GoalReached reports forbidden-zone contact (crash goal only).
	GoalReached bool `json:"goal_reached"`
	// Recovered reports that the recovery guard engaged during evaluation
	// (recovery defense only).
	Recovered bool `json:"recovered,omitempty"`
	// Success applies the campaign's success criterion: an undetected
	// deviation beyond the threshold, or undetected zone contact.
	Success bool `json:"success"`
}

// Record is one JSON line of the artifact store. Attack and CPV are
// omitempty so stores written before those axes existed round-trip
// unchanged; an empty Attack on a loaded record means the implicit "rl".
type Record struct {
	Key      string   `json:"key"`
	Mission  string   `json:"mission"`
	Variable string   `json:"variable"`
	Goal     string   `json:"goal"`
	Attack   string   `json:"attack,omitempty"`
	Defense  string   `json:"defense"`
	Trial    int      `json:"trial"`
	CPV      string   `json:"cpv,omitempty"`
	Seed     int64    `json:"seed"`
	Status   string   `json:"status"` // "ok", "error" or "panic"
	Error    string   `json:"error,omitempty"`
	Metrics  *Metrics `json:"metrics,omitempty"`
}

// Statuses a Record can carry.
const (
	StatusOK    = "ok"
	StatusError = "error"
	StatusPanic = "panic"
)

// Store is the append-only JSON-lines artifact log. Opening an existing
// file loads its records, so a re-run resumes where the previous one
// stopped; every Append is flushed to the OS before returning, so a killed
// run loses at most its in-flight jobs.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]bool
	recs []Record
}

// OpenStore opens (or creates) the artifact file at path and indexes the
// completed job keys found in it. Records with a non-ok status do not
// count as completed, so failed jobs retry on resume. A corrupt or
// truncated trailing line — the signature of a run killed mid-Append — is
// dropped (the file is truncated back to the last intact record) so the
// campaign resumes from the intact prefix instead of erroring out.
func OpenStore(path string) (*Store, error) {
	recs, valid, needNL, err := readRecordsPrefix(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Store, error) {
		_ = f.Close() // best-effort: the open/repair error is the one to surface
		return nil, err
	}
	if info, err := f.Stat(); err != nil {
		return fail(err)
	} else if info.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			return fail(err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return fail(err)
	}
	// A valid final record without a newline (crash between Write and the
	// next Append) must not have the next record glued onto its line.
	if needNL {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			return fail(err)
		}
	}
	s := &Store{f: f, done: make(map[string]bool), recs: recs}
	for _, r := range recs {
		if r.Status == StatusOK {
			s.done[r.Key] = true
		}
	}
	return s, nil
}

// Completed reports whether a job key already has an ok record.
func (s *Store) Completed(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done[key]
}

// CompletedCount returns the number of distinct completed keys.
func (s *Store) CompletedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Records returns a copy of every record seen so far (loaded + appended).
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Append writes one record as a JSON line and syncs it to the OS.
func (s *Store) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return err
	}
	s.recs = append(s.recs, r)
	if r.Status == StatusOK {
		s.done[r.Key] = true
	}
	return nil
}

// Close closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// SortedBytes renders records as the canonical sorted JSONL artifact:
// deduplicated by job key keeping the last occurrence (mirroring
// Aggregate, so a resumed store where a failed job later succeeded keeps
// the success), sorted by key, one compact JSON line per record. Because
// record bytes depend only on the spec — never on worker identity or
// completion order — a local run, a resumed run and a distributed merge
// of the same spec all produce byte-identical SortedBytes. internal/dist
// tests cross-node bit-identity against exactly this encoding.
func SortedBytes(recs []Record) ([]byte, error) {
	byKey := make(map[string]Record, len(recs))
	keys := make([]string, 0, len(recs))
	for _, r := range recs {
		if _, seen := byKey[r.Key]; !seen {
			keys = append(keys, r.Key)
		}
		byKey[r.Key] = r
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		line, err := json.Marshal(byKey[k])
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// WriteFileAtomic finalizes a summary or artifact file via write-temp +
// rename: readers either see the previous complete file or the new
// complete file, never a torn prefix — the finalization-side counterpart
// of the torn-trailing-JSONL handling in OpenStore. The temp file lives in
// path's directory so the rename cannot cross filesystems.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // best-effort: the write error is the one to surface
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // best-effort: the sync error is the one to surface
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), perm); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadRecords loads every record from a JSON-lines artifact file. A corrupt
// or truncated trailing line — what a run killed mid-Append leaves behind —
// is dropped and the intact prefix returned; a corrupt line anywhere else is
// still an error, because records after it would be ambiguous.
func ReadRecords(path string) ([]Record, error) {
	recs, _, _, err := readRecordsPrefix(path)
	return recs, err
}

// readRecordsPrefix parses the artifact file and additionally reports the
// byte length of the intact record prefix (so OpenStore can truncate a
// crash-damaged tail before appending) and whether the last intact record
// is missing its terminating newline.
func readRecordsPrefix(path string) (recs []Record, valid int64, needNL bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	off := 0
	for ln := 1; off < len(data); ln++ {
		next := len(data)
		terminated := false
		if end := bytes.IndexByte(data[off:], '\n'); end >= 0 {
			next = off + end + 1
			terminated = true
		}
		line := bytes.TrimSpace(data[off:next])
		if len(line) == 0 {
			off = next
			valid = int64(next)
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			if len(bytes.TrimSpace(data[next:])) == 0 {
				// Damaged tail: keep the intact prefix ending at valid.
				return recs, valid, needNL, nil
			}
			return nil, 0, false, fmt.Errorf("campaign: %s:%d: %w", path, ln, err)
		}
		recs = append(recs, r)
		off = next
		valid = int64(next)
		needNL = !terminated
	}
	return recs, valid, needNL, nil
}
