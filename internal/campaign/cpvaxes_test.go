package campaign

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestParseMissionRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"line:NaN", "line:Inf", "line:-Inf", "line:60:NaN", "square:+Inf:10"} {
		if _, err := ParseMission(bad); err == nil {
			t.Errorf("ParseMission(%q) accepted", bad)
		}
	}
}

func TestValidateRejectsNonFiniteMission(t *testing.T) {
	s := Spec{Missions: []MissionSpec{{Kind: "line", Size: math.NaN(), Alt: 10}}}
	if err := s.Validate(); err == nil {
		t.Error("NaN mission size validated")
	}
	s = Spec{Missions: []MissionSpec{{Kind: "line", Size: 40, Alt: math.Inf(1)}}}
	if err := s.Validate(); err == nil {
		t.Error("infinite mission altitude validated")
	}
}

func TestValidateAttackAxis(t *testing.T) {
	s := testSpec()
	s.Attacks = []string{"warp"}
	if err := s.Validate(); err == nil {
		t.Error("unknown attack accepted")
	}
	// A stealthy schedule cannot steer the vehicle into a zone.
	s = testSpec()
	s.Attacks = []string{AttackStealthy}
	s.Goals = []string{GoalCrash}
	if err := s.Validate(); err == nil {
		t.Error("stealthy crash cell accepted")
	}
	s = testSpec()
	s.Attacks = []string{AttackRL, AttackStealthy}
	if err := s.Validate(); err != nil {
		t.Errorf("valid attack axis rejected: %v", err)
	}
}

func TestSweepValidateAndExpand(t *testing.T) {
	sweeps := Spec{
		Seed:   3,
		Trials: 1,
		Sweeps: []Sweep{
			{CPV: "CPV-A", Variables: []string{"CMD.Roll"}, Attacks: []string{AttackStealthy}},
			{CPV: "CPV-B", Variables: []string{"PIDR.INTEG"}, Defenses: []string{DefenseRecovery}},
		},
	}
	if err := sweeps.Validate(); err != nil {
		t.Fatalf("valid sweep spec rejected: %v", err)
	}

	bad := sweeps
	bad.Goals = []string{GoalDeviation} // top-level axes and sweeps are exclusive
	if err := bad.Validate(); err == nil {
		t.Error("sweeps alongside top-level axes accepted")
	}
	bad = sweeps
	bad.Sweeps = []Sweep{{CPV: "a/b", Variables: []string{"CMD.Roll"}}}
	if err := bad.Validate(); err == nil {
		t.Error("cpv id with '/' accepted")
	}
	bad = sweeps
	bad.Sweeps = []Sweep{{Attacks: []string{AttackStealthy}, Goals: []string{GoalCrash}, Variables: []string{"CMD.Roll"}}}
	if err := bad.Validate(); err == nil {
		t.Error("stealthy crash sweep accepted")
	}

	jobs := sweeps.Expand()
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2", len(jobs))
	}
	if jobs[0].CPV != "CPV-A" || !strings.HasPrefix(jobs[0].Key, "CPV-A/") {
		t.Errorf("job 0 not tagged: cpv=%q key=%q", jobs[0].CPV, jobs[0].Key)
	}
	if jobs[0].Attack != AttackStealthy || jobs[1].Defense != DefenseRecovery {
		t.Errorf("sweep axes not honored: %+v / %+v", jobs[0], jobs[1])
	}

	// Overlapping sweeps dedupe on the job key.
	dup := Spec{Seed: 3, Trials: 1, Sweeps: []Sweep{
		{Variables: []string{"CMD.Roll"}},
		{Variables: []string{"CMD.Roll"}},
	}}
	if jobs := dup.Expand(); len(jobs) != 1 {
		t.Errorf("duplicate sweep cells expanded to %d jobs, want 1", len(jobs))
	}
}

// TestCPVAxesDeterminism extends the reproducibility contract to the two
// new axis values: stealthy-injection and recovery-defense cells through
// the real executor must write byte-identical sorted records at 1, 2 and
// 8 workers.
func TestCPVAxesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real-executor determinism test skipped in -short")
	}
	spec := Spec{
		Name: "cpv-axes",
		Seed: 11,
		Sweeps: []Sweep{
			{
				CPV:       "T-STEALTHY",
				Missions:  []MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
				Variables: []string{"CMD.Roll"},
				Attacks:   []string{AttackStealthy},
				Defenses:  []string{DefenseNone, DefenseCI},
			},
			{
				CPV:       "T-RECOVERY",
				Missions:  []MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
				Variables: []string{"PIDR.INTEG"},
				Attacks:   []string{AttackRL},
				Defenses:  []string{DefenseRecovery},
			},
		},
		Trials:   2,
		Episodes: 2,
		MaxSteps: 6,
	}

	run := func(workers int) []string {
		st, path := openTempStore(t)
		r := &Runner{Workers: workers}
		stats, err := r.Run(context.Background(), spec, st)
		if err != nil {
			t.Fatal(err)
		}
		if stats.OK != stats.Total {
			t.Fatalf("workers=%d: %+v (want all ok)", workers, stats)
		}
		st.Close()
		return sortedLines(t, path)
	}

	base := run(1)
	var sawStealthy, sawRecovery bool
	for _, line := range base {
		if strings.Contains(line, "/stealthy/") {
			sawStealthy = true
		}
		if strings.Contains(line, "/recovery/") {
			sawRecovery = true
		}
	}
	if !sawStealthy || !sawRecovery {
		t.Fatalf("baseline missing new axis cells (stealthy=%v recovery=%v)", sawStealthy, sawRecovery)
	}

	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d record %d differs:\n  1 worker: %s\n  %d workers: %s",
					workers, i, base[i], workers, got[i])
			}
		}
	}
}
