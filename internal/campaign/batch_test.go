package campaign

import (
	"context"
	"reflect"
	"sort"
	"testing"
)

// batchCampaignSpec is a small real-executor spec with multiple trials per
// cell (the batchable dimension) and a mixed variable axis.
func batchCampaignSpec() Spec {
	return Spec{
		Name:      "batch-equiv",
		Seed:      21,
		Missions:  []MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"CMD.Roll", "PIDR.INTEG"},
		Goals:     []string{GoalDeviation},
		Defenses:  []string{DefenseNone},
		Trials:    3,
		Episodes:  2,
		MaxSteps:  6,
	}
}

// sortedOKRecords runs the spec through a runner and returns its records
// sorted by key, failing on any non-OK status.
func sortedOKRecords(t *testing.T, r *Runner, spec Spec) []Record {
	t.Helper()
	store, path := openTempStore(t)
	stats, err := r.Run(context.Background(), spec, store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OK != stats.Total {
		t.Fatalf("%d/%d jobs ok (errors=%d panics=%d)", stats.OK, stats.Total, stats.Errors, stats.Panics)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	recs := st.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// TestBatchExecutorRecordEquivalence is the campaign-level determinism
// contract: running a spec with batched trial grouping produces records
// bit-identical to the scalar executor — every trial's metrics (deviation,
// return, learned best return, success) must match exactly.
func TestBatchExecutorRecordEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("real executor skipped in -short")
	}
	spec := batchCampaignSpec()

	scalar := sortedOKRecords(t, &Runner{Workers: 2, Execute: NewExecutor()}, spec)

	exec, group := NewBatchExecutor()
	batched := sortedOKRecords(t, &Runner{Workers: 2, Execute: exec, ExecuteGroup: group}, spec)

	if len(scalar) != len(batched) {
		t.Fatalf("record counts differ: scalar %d vs batched %d", len(scalar), len(batched))
	}
	for i := range scalar {
		if !reflect.DeepEqual(scalar[i], batched[i]) {
			t.Errorf("record %s diverged:\nscalar:  %+v (metrics %+v)\nbatched: %+v (metrics %+v)",
				scalar[i].Key, scalar[i], scalar[i].Metrics, batched[i], batched[i].Metrics)
		}
	}
}

// TestGroupUnits checks the cell-grouping partition: batchable trials of
// one cell merge in expansion order, non-batchable jobs stay scalar, and a
// nil group executor leaves every job alone.
func TestGroupUnits(t *testing.T) {
	spec := batchCampaignSpec()
	spec.Goals = []string{GoalDeviation, GoalCrash}
	jobs := spec.Expand() // 2 variables × 2 goals × 3 trials

	exec, group := NewBatchExecutor()
	r := &Runner{Execute: exec, ExecuteGroup: group}
	units := r.groupUnits(jobs)
	// 2 deviation cells of 3 trials each + 6 scalar crash jobs.
	if len(units) != 8 {
		t.Fatalf("got %d units, want 8", len(units))
	}
	var grouped, scalarJobs int
	for _, u := range units {
		if len(u) > 1 {
			grouped++
			if len(u) != 3 {
				t.Fatalf("group of %d trials, want 3", len(u))
			}
			cell := cellOf(u[0])
			for _, j := range u {
				if cellOf(j) != cell {
					t.Fatalf("mixed cells in one group: %s vs %s", cell, cellOf(j))
				}
				if !Batchable(j) {
					t.Fatalf("non-batchable job %s grouped", j.Key)
				}
			}
		} else {
			scalarJobs++
		}
	}
	if grouped != 2 || scalarJobs != 6 {
		t.Fatalf("grouped=%d scalar=%d, want 2 and 6", grouped, scalarJobs)
	}

	plain := &Runner{}
	if got := plain.groupUnits(jobs); len(got) != len(jobs) {
		t.Fatalf("nil group executor produced %d units for %d jobs", len(got), len(jobs))
	}
}

// TestBatchableAxes pins which cells may batch.
func TestBatchableAxes(t *testing.T) {
	base := Job{Goal: GoalDeviation, Attack: AttackRL}
	if !Batchable(base) {
		t.Error("deviation/rl not batchable")
	}
	base.Learner = "reinforce"
	if !Batchable(base) {
		t.Error("explicit reinforce learner not batchable")
	}
	for _, j := range []Job{
		{Goal: GoalCrash, Attack: AttackRL},
		{Goal: GoalDeviation, Attack: AttackStealthy},
		{Goal: GoalDeviation, Attack: AttackRL, Learner: "qlearning"},
	} {
		if Batchable(j) {
			t.Errorf("job %+v should not be batchable", j)
		}
	}
}
