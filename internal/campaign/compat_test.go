package campaign_test

// This assertion lives in an external test package: experiments now
// imports campaign (for WriteFileAtomic), so an in-package test importing
// experiments would be an import cycle.

import (
	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/experiments"
)

// The campaign summary must stay drop-in compatible with the experiments
// reporting pipeline.
var _ experiments.Result = (*campaign.Summary)(nil)
