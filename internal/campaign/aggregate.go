package campaign

import (
	"fmt"
	"io"
	"sort"
)

// AxisCell is one row of a per-axis summary: all records sharing one value
// of one sweep axis.
type AxisCell struct {
	// Axis is "mission", "variable", "goal", "attack", "defense" or
	// "cpv"; Value is the axis value the cell aggregates.
	Axis, Value string
	// Jobs counts deduplicated records; OK those with ok status.
	Jobs, OK int
	// SuccessRate and DetectionRate are fractions of the OK jobs.
	SuccessRate   float64
	DetectionRate float64
	// MeanDeviation and MaxDeviation summarize the ok jobs' deviations.
	MeanDeviation float64
	MaxDeviation  float64
}

// Summary aggregates a campaign's records per axis. It satisfies the
// internal/experiments Result shape (Name / WriteText / WriteCSV), so
// campaign outputs drop into the same reporting pipelines as the paper's
// tables and figures.
type Summary struct {
	// Campaign is the spec name (may be empty).
	Campaign string
	// Records is the deduplicated record count; Failures counts records
	// whose latest status is not ok.
	Records  int
	Failures int
	// Cells holds the per-axis rows, grouped axis by axis.
	Cells []AxisCell
}

// Aggregate folds records into a Summary. Records are deduplicated by job
// key keeping the *last* occurrence, so a resumed store where a failed job
// later succeeded reports the success.
func Aggregate(name string, recs []Record) *Summary {
	byKey := make(map[string]Record, len(recs))
	keys := make([]string, 0, len(recs))
	for _, r := range recs {
		if _, seen := byKey[r.Key]; !seen {
			keys = append(keys, r.Key)
		}
		byKey[r.Key] = r
	}
	sort.Strings(keys)

	s := &Summary{Campaign: name, Records: len(keys)}
	axes := []struct {
		name string
		of   func(Record) string
	}{
		{"mission", func(r Record) string { return r.Mission }},
		{"variable", func(r Record) string { return r.Variable }},
		{"goal", func(r Record) string { return r.Goal }},
		// Records written before the attack axis existed carry no attack
		// field; they ran the RL exploit.
		{"attack", func(r Record) string {
			if r.Attack == "" {
				return AttackRL
			}
			return r.Attack
		}},
		{"defense", func(r Record) string { return r.Defense }},
		// CPV groups catalog-compiled records by their originating record
		// ID; hand-written sweeps have none and are skipped for this axis.
		{"cpv", func(r Record) string { return r.CPV }},
	}
	for _, r := range byKey {
		if r.Status != StatusOK {
			s.Failures++
		}
	}
	for _, axis := range axes {
		cells := make(map[string]*AxisCell)
		var order []string
		for _, k := range keys {
			r := byKey[k]
			v := axis.of(r)
			if v == "" {
				continue
			}
			c, ok := cells[v]
			if !ok {
				c = &AxisCell{Axis: axis.name, Value: v}
				cells[v] = c
				order = append(order, v)
			}
			c.Jobs++
			if r.Status != StatusOK || r.Metrics == nil {
				continue
			}
			c.OK++
			m := r.Metrics
			if m.Success {
				c.SuccessRate++
			}
			if m.Detected {
				c.DetectionRate++
			}
			c.MeanDeviation += m.Deviation
			if m.Deviation > c.MaxDeviation {
				c.MaxDeviation = m.Deviation
			}
		}
		sort.Strings(order)
		for _, v := range order {
			c := cells[v]
			if c.OK > 0 {
				n := float64(c.OK)
				c.SuccessRate /= n
				c.DetectionRate /= n
				c.MeanDeviation /= n
			}
			s.Cells = append(s.Cells, *c)
		}
	}
	return s
}

// Name implements the experiments result shape.
func (s *Summary) Name() string { return "campaign" }

// WriteText renders the per-axis table for a terminal.
func (s *Summary) WriteText(w io.Writer) error {
	title := s.Campaign
	if title == "" {
		title = "campaign"
	}
	if _, err := fmt.Fprintf(w, "Campaign %s — %d jobs (%d failed)\n",
		title, s.Records, s.Failures); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %-16s %5s %5s | %8s %8s | %9s %9s\n",
		"axis", "value", "jobs", "ok", "success", "detect", "mean dev", "max dev"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		if _, err := fmt.Fprintf(w, "%-8s %-16s %5d %5d | %7.0f%% %7.0f%% | %8.2fm %8.2fm\n",
			c.Axis, c.Value, c.Jobs, c.OK,
			c.SuccessRate*100, c.DetectionRate*100,
			c.MeanDeviation, c.MaxDeviation); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the per-axis table into dir as campaign_summary.csv.
func (s *Summary) WriteCSV(dir string) error {
	header := []string{"axis", "value", "jobs", "ok",
		"success_rate", "detection_rate", "mean_deviation", "max_deviation"}
	rows := make([][]string, 0, len(s.Cells))
	for _, c := range s.Cells {
		rows = append(rows, []string{
			c.Axis, c.Value,
			fmt.Sprint(c.Jobs), fmt.Sprint(c.OK),
			fmt.Sprintf("%g", c.SuccessRate), fmt.Sprintf("%g", c.DetectionRate),
			fmt.Sprintf("%g", c.MeanDeviation), fmt.Sprintf("%g", c.MaxDeviation),
		})
	}
	return writeCSV(dir, "campaign_summary.csv", header, rows)
}
