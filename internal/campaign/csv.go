package campaign

import (
	"encoding/csv"
	"os"
	"path/filepath"
)

// writeCSV writes one CSV file with a header row into dir, creating the
// directory if needed (the same contract as the experiments exporters).
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
