package campaign

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
)

// writeCSV writes one CSV file with a header row into dir, creating the
// directory if needed (the same contract as the experiments exporters).
// The file is finalized atomically (write temp + rename), so a crash
// mid-summary leaves either the previous summary or the new one — never a
// torn file beside an intact artifact log.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(dir, name), buf.Bytes(), 0o644)
}
