package campaign

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
)

// Per-job seed streams. Each independent random consumer inside a job
// draws from its own stream of the job seed, mirroring ares.go.
const (
	streamJobEnv int64 = iota + 1
	streamJobPolicy
)

// monitorEntry lazily calibrates one mission's CI monitor exactly once.
type monitorEntry struct {
	once sync.Once
	ci   *defense.ControlInvariants
	err  error
}

// aresExecutor is the production Executor: it trains and evaluates one RL
// exploit per job on the built-in firmware simulator. Monitors are
// calibrated once per mission (seeded from the campaign seed, so the
// calibration is identical at any worker count) and cloned per job,
// because a fitted monitor's Observe mutates its runtime state.
type aresExecutor struct {
	mu       sync.Mutex
	monitors map[string]*monitorEntry
}

// NewExecutor returns the built-in ARES job executor.
func NewExecutor() Executor {
	e := &aresExecutor{monitors: make(map[string]*monitorEntry)}
	return e.run
}

func (e *aresExecutor) monitor(job Job) (*defense.ControlInvariants, error) {
	name := job.Mission.Name()
	e.mu.Lock()
	ent, ok := e.monitors[name]
	if !ok {
		ent = &monitorEntry{}
		e.monitors[name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		mission, err := job.Mission.Build()
		if err != nil {
			ent.err = err
			return
		}
		seed := mathx.DeriveSeed(job.BaseSeed, StreamOf("calibrate/"+name))
		ent.ci, _, ent.err = attack.CalibrateMonitors(mission, seed)
	})
	if ent.err != nil {
		return nil, fmt.Errorf("campaign: calibrate %s: %w", name, ent.err)
	}
	return ent.ci.Clone(), nil
}

func (e *aresExecutor) run(ctx context.Context, job Job) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	if job.Attack == AttackStealthy {
		return e.runStealthy(job)
	}
	mission, err := job.Mission.Build()
	if err != nil {
		return Metrics{}, err
	}

	envCfg := core.EnvConfig{
		Variable:  job.Variable,
		Mission:   mission,
		MaxAction: job.MaxAction,
		Seed:      mathx.DeriveSeed(job.Seed, streamJobEnv),
		// CMD.* cells are rewritten by the navigator every cycle, so the
		// injection must act as a standing per-tick offset; stateful cells
		// (integrators) hold a one-shot injection.
		PerTick: strings.HasPrefix(job.Variable, "CMD."),
	}
	switch job.Defense {
	case DefenseCI:
		det, err := e.monitor(job)
		if err != nil {
			return Metrics{}, err
		}
		envCfg.Detector = det
	case DefenseRecovery:
		det, err := e.monitor(job)
		if err != nil {
			return Metrics{}, err
		}
		envCfg.Recovery = defense.NewRecoveryGuard(det)
	}
	cfg := core.ExploitConfig{
		Env:      envCfg,
		Episodes: job.Episodes,
		MaxSteps: job.MaxSteps,
		Seed:     mathx.DeriveSeed(job.Seed, streamJobPolicy),
		Learner:  job.Learner,
	}

	switch job.Goal {
	case GoalDeviation:
		res, _, err := core.TrainDeviationExploit(cfg)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(job, res), nil
	case GoalCrash:
		if cfg.Env.MaxAction == 0 {
			cfg.Env.MaxAction = 0.6
		}
		env, err := core.NewCrashEnv(cfg.Env, crashZone(job.Mission))
		if err != nil {
			return Metrics{}, err
		}
		res, _, err := core.TrainCrashExploit(cfg, env)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(job, res), nil
	default:
		return Metrics{}, fmt.Errorf("campaign: unknown goal %q", job.Goal)
	}
}

// runStealthy executes one stealthy-injection cell. The attack is a fixed
// magnitude schedule, not a trained policy, so the cell is a single
// instrumented session flight instead of an RL training run: the attacker's
// shadow monitor is a clone of the same per-mission calibrated CI monitor
// the defense deploys (the standard white-box assumption), and the deployed
// defense — if any — runs independently.
func (e *aresExecutor) runStealthy(job Job) (Metrics, error) {
	mission, err := job.Mission.Build()
	if err != nil {
		return Metrics{}, err
	}
	shadow, err := e.monitor(job)
	if err != nil {
		return Metrics{}, err
	}
	maxSteps := job.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100
	}
	cfg := attack.SessionConfig{
		Mission: mission,
		Strategy: &attack.StealthyAttack{
			Variable: job.Variable,
			Shadow:   shadow,
			Cap:      job.MaxAction, // 0 keeps the strategy default
		},
		AttackStart: 2,
		// One RL action interval is 0.3 s; the session flies the same
		// wall-clock budget the RL evaluation rollout would get.
		Duration: float64(maxSteps) * 0.3,
		Seed:     mathx.DeriveSeed(job.Seed, streamJobEnv),
	}
	switch job.Defense {
	case DefenseCI:
		det, err := e.monitor(job)
		if err != nil {
			return Metrics{}, err
		}
		cfg.CI = det
	case DefenseRecovery:
		det, err := e.monitor(job)
		if err != nil {
			return Metrics{}, err
		}
		cfg.Recovery = defense.NewRecoveryGuard(det)
	}
	res, err := attack.RunSession(cfg)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		Deviation: res.MaxPathDev,
		Detected:  res.Detected(),
		Crashed:   res.Crashed,
		Recovered: res.Recovered,
	}
	m.Success = (res.MaxPathDev >= job.SuccessDeviation || res.Crashed) && !res.Detected()
	return m, nil
}

// metricsOf folds an exploit result into the campaign metrics, applying
// the success criterion: a *stealthy* failure — the goal condition met
// without tripping the in-loop detector.
func metricsOf(job Job, res *core.ExploitResult) Metrics {
	m := Metrics{
		Deviation:   res.EvalDeviation,
		Return:      res.EvalReturn,
		Detected:    res.EvalDetected,
		Crashed:     res.EvalCrashed,
		GoalReached: res.EvalGoalReached,
		Recovered:   res.EvalRecovered,
	}
	if res.Train != nil {
		m.BestReturn = res.Train.BestReturn
	}
	switch job.Goal {
	case GoalCrash:
		m.Success = res.EvalGoalReached && !res.EvalDetected
	default:
		m.Success = (res.EvalDeviation >= job.SuccessDeviation || res.EvalCrashed) &&
			!res.EvalDetected
	}
	return m
}

// crashZone places the Case Study II forbidden zone 10 m beside the final
// mission leg, spanning ground to twice the mission altitude — reachable
// by a lateral push without being on the benign path.
func crashZone(m MissionSpec) sim.Obstacle {
	end := m.Size
	return sim.Obstacle{
		Name: "forbidden-zone",
		Box: mathx.AABB{
			Min: mathx.Vec3{X: end - 5, Y: 8, Z: -2 * m.Alt},
			Max: mathx.Vec3{X: end + 5, Y: 12, Z: 0},
		},
	}
}
