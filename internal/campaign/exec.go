package campaign

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
)

// Per-job seed streams. Each independent random consumer inside a job
// draws from its own stream of the job seed, mirroring ares.go.
const (
	streamJobEnv int64 = iota + 1
	streamJobPolicy
)

// monitorEntry lazily calibrates one mission's CI monitor exactly once.
type monitorEntry struct {
	once sync.Once
	ci   *defense.ControlInvariants
	err  error
}

// aresExecutor is the production Executor: it trains and evaluates one RL
// exploit per job on the built-in firmware simulator. Monitors are
// calibrated once per mission (seeded from the campaign seed, so the
// calibration is identical at any worker count) and cloned per job,
// because a fitted monitor's Observe mutates its runtime state.
type aresExecutor struct {
	mu       sync.Mutex
	monitors map[string]*monitorEntry
}

// NewExecutor returns the built-in ARES job executor.
func NewExecutor() Executor {
	e := &aresExecutor{monitors: make(map[string]*monitorEntry)}
	return e.run
}

// GroupExecutor runs several jobs from one campaign cell (same axes,
// different trial seeds) as a single batched lockstep rollout.
// Implementations must return one Metrics per job, in order, and each
// job's metrics must be deterministic in that job's Seed alone — identical
// to what the scalar Executor would produce for the same job.
type GroupExecutor func(ctx context.Context, jobs []Job) ([]Metrics, error)

// NewBatchExecutor returns the scalar executor plus its batched group
// companion. Both share one per-mission monitor cache, so mixing them in a
// run calibrates each mission once. Give both to a Runner (Execute +
// ExecuteGroup) to batch a cell's trials through the structure-of-arrays
// simulation kernel while non-batchable cells keep the scalar path.
func NewBatchExecutor() (Executor, GroupExecutor) {
	e := &aresExecutor{monitors: make(map[string]*monitorEntry)}
	return e.run, e.runGroup
}

// Batchable reports whether a job may join a batched trial group: the
// RL deviation goal with the (default) reinforce learner. Crash cells need
// an obstacle world per environment, stealthy cells are single session
// flights, and the tabular ablation learner has no lockstep trainer — all
// keep the scalar path.
func Batchable(job Job) bool {
	return job.Goal == GoalDeviation && job.Attack == AttackRL &&
		(job.Learner == "" || job.Learner == "reinforce")
}

func (e *aresExecutor) monitor(job Job) (*defense.ControlInvariants, error) {
	name := job.Mission.Name()
	e.mu.Lock()
	ent, ok := e.monitors[name]
	if !ok {
		ent = &monitorEntry{}
		e.monitors[name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		mission, err := job.Mission.Build()
		if err != nil {
			ent.err = err
			return
		}
		seed := mathx.DeriveSeed(job.BaseSeed, StreamOf("calibrate/"+name))
		ent.ci, _, ent.err = attack.CalibrateMonitors(mission, seed)
	})
	if ent.err != nil {
		return nil, fmt.Errorf("campaign: calibrate %s: %w", name, ent.err)
	}
	return ent.ci.Clone(), nil
}

func (e *aresExecutor) run(ctx context.Context, job Job) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	if job.Attack == AttackStealthy {
		return e.runStealthy(job)
	}
	cfg, err := e.exploitConfig(job)
	if err != nil {
		return Metrics{}, err
	}

	switch job.Goal {
	case GoalDeviation:
		res, _, err := core.TrainDeviationExploit(cfg)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(job, res), nil
	case GoalCrash:
		if cfg.Env.MaxAction == 0 {
			cfg.Env.MaxAction = 0.6
		}
		env, err := core.NewCrashEnv(cfg.Env, crashZone(job.Mission))
		if err != nil {
			return Metrics{}, err
		}
		res, _, err := core.TrainCrashExploit(cfg, env)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(job, res), nil
	default:
		return Metrics{}, fmt.Errorf("campaign: unknown goal %q", job.Goal)
	}
}

// exploitConfig builds one job's exploit training configuration. The scalar
// and batched paths both go through here, so a batched lane trains from a
// config byte-identical to its scalar counterpart.
func (e *aresExecutor) exploitConfig(job Job) (core.ExploitConfig, error) {
	mission, err := job.Mission.Build()
	if err != nil {
		return core.ExploitConfig{}, err
	}
	envCfg := core.EnvConfig{
		Variable:  job.Variable,
		Mission:   mission,
		MaxAction: job.MaxAction,
		Seed:      mathx.DeriveSeed(job.Seed, streamJobEnv),
		// CMD.* cells are rewritten by the navigator every cycle, so the
		// injection must act as a standing per-tick offset; stateful cells
		// (integrators) hold a one-shot injection.
		PerTick: strings.HasPrefix(job.Variable, "CMD."),
	}
	switch job.Defense {
	case DefenseCI:
		det, err := e.monitor(job)
		if err != nil {
			return core.ExploitConfig{}, err
		}
		envCfg.Detector = det
	case DefenseRecovery:
		det, err := e.monitor(job)
		if err != nil {
			return core.ExploitConfig{}, err
		}
		envCfg.Recovery = defense.NewRecoveryGuard(det)
	}
	return core.ExploitConfig{
		Env:      envCfg,
		Episodes: job.Episodes,
		MaxSteps: job.MaxSteps,
		Seed:     mathx.DeriveSeed(job.Seed, streamJobPolicy),
		Learner:  job.Learner,
	}, nil
}

// runGroup executes one batched trial group: every job becomes a lane of a
// shared structure-of-arrays simulation batch, trained in lockstep. Job k's
// metrics are bit-identical to running it through the scalar executor.
func (e *aresExecutor) runGroup(ctx context.Context, jobs []Job) ([]Metrics, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfgs := make([]core.ExploitConfig, len(jobs))
	for i, job := range jobs {
		if !Batchable(job) {
			return nil, fmt.Errorf("campaign: job %s is not batchable", job.Key)
		}
		cfg, err := e.exploitConfig(job)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	results, err := core.TrainDeviationExploitBatch(cfgs)
	if err != nil {
		return nil, err
	}
	ms := make([]Metrics, len(jobs))
	for i, job := range jobs {
		ms[i] = metricsOf(job, results[i])
	}
	return ms, nil
}

// runStealthy executes one stealthy-injection cell. The attack is a fixed
// magnitude schedule, not a trained policy, so the cell is a single
// instrumented session flight instead of an RL training run: the attacker's
// shadow monitor is a clone of the same per-mission calibrated CI monitor
// the defense deploys (the standard white-box assumption), and the deployed
// defense — if any — runs independently.
func (e *aresExecutor) runStealthy(job Job) (Metrics, error) {
	mission, err := job.Mission.Build()
	if err != nil {
		return Metrics{}, err
	}
	shadow, err := e.monitor(job)
	if err != nil {
		return Metrics{}, err
	}
	maxSteps := job.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100
	}
	cfg := attack.SessionConfig{
		Mission: mission,
		Strategy: &attack.StealthyAttack{
			Variable: job.Variable,
			Shadow:   shadow,
			Cap:      job.MaxAction, // 0 keeps the strategy default
		},
		AttackStart: 2,
		// One RL action interval is 0.3 s; the session flies the same
		// wall-clock budget the RL evaluation rollout would get.
		Duration: float64(maxSteps) * 0.3,
		Seed:     mathx.DeriveSeed(job.Seed, streamJobEnv),
	}
	switch job.Defense {
	case DefenseCI:
		det, err := e.monitor(job)
		if err != nil {
			return Metrics{}, err
		}
		cfg.CI = det
	case DefenseRecovery:
		det, err := e.monitor(job)
		if err != nil {
			return Metrics{}, err
		}
		cfg.Recovery = defense.NewRecoveryGuard(det)
	}
	res, err := attack.RunSession(cfg)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		Deviation: res.MaxPathDev,
		Detected:  res.Detected(),
		Crashed:   res.Crashed,
		Recovered: res.Recovered,
	}
	m.Success = (res.MaxPathDev >= job.SuccessDeviation || res.Crashed) && !res.Detected()
	return m, nil
}

// metricsOf folds an exploit result into the campaign metrics, applying
// the success criterion: a *stealthy* failure — the goal condition met
// without tripping the in-loop detector.
func metricsOf(job Job, res *core.ExploitResult) Metrics {
	m := Metrics{
		Deviation:   res.EvalDeviation,
		Return:      finiteReturn(res.EvalReturn),
		Detected:    res.EvalDetected,
		Crashed:     res.EvalCrashed,
		GoalReached: res.EvalGoalReached,
		Recovered:   res.EvalRecovered,
	}
	if res.Train != nil {
		m.BestReturn = finiteReturn(res.Train.BestReturn)
	}
	switch job.Goal {
	case GoalCrash:
		m.Success = res.EvalGoalReached && !res.EvalDetected
	default:
		m.Success = (res.EvalDeviation >= job.SuccessDeviation || res.EvalCrashed) &&
			!res.EvalDetected
	}
	return m
}

// finiteReturn maps the paper's infinite terminal rewards onto values the
// JSON artifact can carry: Equation 4 scores a detected episode -Inf and
// Equation 5 scores zone contact +Inf, so a cell whose every episode trips
// the detector trains to a literally infinite return — which
// encoding/json rejects, aborting the whole campaign at store.Append.
// The sign is clamped to ±MaxFloat64 (round-trips exactly through JSON)
// and the underlying events stay first-class in the record as the
// Detected / GoalReached booleans, so no information is lost.
func finiteReturn(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsNaN(v):
		return 0
	}
	return v
}

// crashZone places the Case Study II forbidden zone 10 m beside the final
// mission leg, spanning ground to twice the mission altitude — reachable
// by a lateral push without being on the benign path.
func crashZone(m MissionSpec) sim.Obstacle {
	end := m.Size
	return sim.Obstacle{
		Name: "forbidden-zone",
		Box: mathx.AABB{
			Min: mathx.Vec3{X: end - 5, Y: 8, Z: -2 * m.Alt},
			Max: mathx.Vec3{X: end + 5, Y: 12, Z: 0},
		},
	}
}
