package campaign

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/par"
)

// Campaign instruments on the process-default metrics registry. The
// assessment daemon mounts the same registry at /metrics, and batch CLIs
// dump it at exit, so a job fleet reports identically however it is
// driven. Registration is idempotent, so these are safe package-level
// singletons.
var (
	mJobsOK      = metrics.Default().Counter("ares_campaign_jobs_ok_total", "campaign jobs finished with status ok")
	mJobsError   = metrics.Default().Counter("ares_campaign_jobs_error_total", "campaign jobs finished with status error")
	mJobsPanic   = metrics.Default().Counter("ares_campaign_jobs_panic_total", "campaign jobs that panicked (recovered and recorded)")
	mJobsResumed = metrics.Default().Counter("ares_campaign_jobs_resumed_total", "campaign jobs skipped because the store already had an ok record")
	mInflight    = metrics.Default().Gauge("ares_campaign_inflight_jobs", "campaign jobs currently executing")
	mJobSeconds  = metrics.Default().Histogram("ares_campaign_job_seconds", "per-job wall time in seconds", nil)
)

// Executor runs one job and returns its metrics. Implementations must be
// deterministic in job.Seed and safe for concurrent calls.
type Executor func(ctx context.Context, job Job) (Metrics, error)

// RecordSink receives finished job records. *Store is the canonical sink;
// internal/dist workers substitute a sink that streams records back to
// their coordinator. Both methods are called concurrently from the
// runner's worker pool.
type RecordSink interface {
	// Completed reports whether key already has an ok record, so a
	// resumed run skips it.
	Completed(key string) bool
	// Append durably records one finished job.
	Append(Record) error
}

// RunStats summarizes one Runner.Run invocation.
type RunStats struct {
	// Total is the expanded job count; Skipped were already in the store.
	Total, Skipped int
	// OK, Errors and Panics count the jobs executed this run.
	OK, Errors, Panics int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Executed returns the number of jobs run (not skipped) this invocation.
func (s RunStats) Executed() int { return s.OK + s.Errors + s.Panics }

// Runner executes a campaign's jobs on a bounded worker pool.
type Runner struct {
	// Workers is the pool size; <=0 uses the process budget (GOMAXPROCS).
	Workers int
	// Execute runs one job; nil uses the built-in ARES executor.
	Execute Executor
	// ExecuteGroup, when non-nil, runs each batchable campaign cell's
	// trials (see Batchable) as one lockstep batched rollout instead of
	// independent jobs; everything else falls back to Execute. Per-job
	// records are identical either way — grouping only changes how the
	// physics is scheduled (NewBatchExecutor returns a matched pair).
	ExecuteGroup GroupExecutor
	// Log receives one progress line per finished job; nil discards.
	Log io.Writer
}

// Run expands the spec, skips jobs already completed in the store, and
// executes the remainder. A job panic is recovered and recorded as a
// StatusPanic record — it never kills the fleet. Cancelling ctx stops new
// jobs from starting; in-flight jobs finish and are recorded, so a
// cancelled run resumes cleanly.
func (r *Runner) Run(ctx context.Context, spec Spec, store *Store) (RunStats, error) {
	if err := spec.Validate(); err != nil {
		return RunStats{}, err
	}
	return r.RunJobs(ctx, spec.Expand(), store)
}

// RunJobs executes an explicit job list against a record sink. It is the
// body of Run with the expansion step factored out, so a distributed
// worker can execute the subset of a campaign's jobs its lease names
// (expanded locally from the same spec) while streaming records back
// through its sink — same pool, same panic recovery, same batching.
func (r *Runner) RunJobs(ctx context.Context, jobs []Job, sink RecordSink) (RunStats, error) {
	stats := RunStats{Total: len(jobs)}
	pending := jobs[:0:0]
	for _, j := range jobs {
		if sink.Completed(j.Key) {
			stats.Skipped++
			continue
		}
		pending = append(pending, j)
	}
	mJobsResumed.Add(uint64(stats.Skipped))

	exec := r.Execute
	if exec == nil {
		exec = NewExecutor()
	}
	workers := par.Workers(r.Workers)
	logw := r.Log
	if logw == nil {
		logw = io.Discard
	}

	// Each unit is one pool item: a single job, or — with ExecuteGroup —
	// one batchable cell's worth of trials run as a lockstep batch.
	units := r.groupUnits(pending)

	// Jobs and any analysis they run internally share one concurrency
	// budget: W job workers each get ~GOMAXPROCS/W analysis workers.
	inner := par.Inner(0, workers)
	start := time.Now()
	var mu sync.Mutex // guards stats and logw
	err := ForEach(ctx, workers, len(units), func(i int) error {
		unit := units[i]
		for k := range unit {
			unit[k].Parallelism = inner
		}
		mInflight.Inc()
		jobStart := time.Now()
		var recs []Record
		if len(unit) == 1 && (r.ExecuteGroup == nil || !Batchable(unit[0])) {
			recs = []Record{runJob(ctx, exec, unit[0])}
		} else {
			recs = runJobGroup(ctx, r.ExecuteGroup, unit)
		}
		mJobSeconds.Observe(time.Since(jobStart).Seconds())
		mInflight.Dec()
		for _, rec := range recs {
			if err := sink.Append(rec); err != nil {
				return err
			}
		}
		mu.Lock()
		for _, rec := range recs {
			switch rec.Status {
			case StatusOK:
				stats.OK++
				mJobsOK.Inc()
			case StatusPanic:
				stats.Panics++
				mJobsPanic.Inc()
			default:
				stats.Errors++
				mJobsError.Inc()
			}
			line := fmt.Sprintf("[%d/%d] %s: %s", stats.Executed()+stats.Skipped,
				stats.Total, rec.Key, rec.Status)
			if rec.Metrics != nil {
				line += fmt.Sprintf(" dev=%.2fm success=%v detected=%v",
					rec.Metrics.Deviation, rec.Metrics.Success, rec.Metrics.Detected)
			}
			fmt.Fprintln(logw, line)
		}
		mu.Unlock()
		return nil
	})
	stats.Elapsed = time.Since(start)
	return stats, err
}

// groupUnits partitions the pending jobs into pool work items. Without a
// group executor every job is its own unit. With one, batchable jobs from
// the same cell (identical axes, different trial seeds) merge into one
// unit in expansion order; everything else stays scalar.
func (r *Runner) groupUnits(pending []Job) [][]Job {
	units := make([][]Job, 0, len(pending))
	if r.ExecuteGroup == nil {
		for _, j := range pending {
			units = append(units, []Job{j})
		}
		return units
	}
	cells := make(map[string]int)
	for _, j := range pending {
		if !Batchable(j) {
			units = append(units, []Job{j})
			continue
		}
		ck := cellOf(j)
		if u, ok := cells[ck]; ok {
			units[u] = append(units[u], j)
			continue
		}
		cells[ck] = len(units)
		units = append(units, []Job{j})
	}
	return units
}

// cellOf identifies a job's campaign cell: everything in the key except
// the trial index, plus the training budget (resumed runs can leave a cell
// with a mix of budgets only if the spec changed; keep them apart).
func cellOf(j Job) string {
	return fmt.Sprintf("%s/%s/%s/%s/%s/%s/%d/%d/%s",
		j.CPV, j.Mission.Name(), j.Variable, j.Goal, j.Attack, j.Defense,
		j.Episodes, j.MaxSteps, j.Learner)
}

// jobRecord builds the identity part of a job's record.
func jobRecord(job Job) Record {
	return Record{
		Key:      job.Key,
		Mission:  job.Mission.Name(),
		Variable: job.Variable,
		Goal:     job.Goal,
		Attack:   job.Attack,
		Defense:  job.Defense,
		Trial:    job.Trial,
		CPV:      job.CPV,
		Seed:     job.Seed,
	}
}

// runJob executes one job with panic recovery and builds its record.
func runJob(ctx context.Context, exec Executor, job Job) (rec Record) {
	rec = jobRecord(job)
	defer func() {
		if p := recover(); p != nil {
			rec.Status = StatusPanic
			rec.Error = fmt.Sprint(p)
			rec.Metrics = nil
		}
	}()
	m, err := exec(ctx, job)
	if err != nil {
		rec.Status = StatusError
		rec.Error = err.Error()
		return rec
	}
	rec.Status = StatusOK
	rec.Metrics = &m
	return rec
}

// runJobGroup executes one batched trial group with panic recovery. A group
// failure (error or panic) marks every job in the group, mirroring what N
// scalar failures would record.
func runJobGroup(ctx context.Context, exec GroupExecutor, jobs []Job) (recs []Record) {
	recs = make([]Record, len(jobs))
	for i, job := range jobs {
		recs[i] = jobRecord(job)
	}
	defer func() {
		if p := recover(); p != nil {
			for i := range recs {
				recs[i].Status = StatusPanic
				recs[i].Error = fmt.Sprint(p)
				recs[i].Metrics = nil
			}
		}
	}()
	ms, err := exec(ctx, jobs)
	if err != nil {
		for i := range recs {
			recs[i].Status = StatusError
			recs[i].Error = err.Error()
		}
		return recs
	}
	for i := range recs {
		m := ms[i]
		recs[i].Status = StatusOK
		recs[i].Metrics = &m
	}
	return recs
}

// ForEach runs fn(0) … fn(n-1) on up to `workers` goroutines and waits for
// all of them. The first non-nil error (or ctx cancellation) stops further
// indices from starting — already-running calls finish — and is returned.
// It is par.ForEach, re-exported because campaign consumers (cmd/arescamp,
// cmd/experiments) predate the shared package.
func ForEach(ctx context.Context, workers, n int, fn func(int) error) error {
	return par.ForEach(ctx, workers, n, fn)
}
