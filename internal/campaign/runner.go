package campaign

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/par"
)

// Campaign instruments on the process-default metrics registry. The
// assessment daemon mounts the same registry at /metrics, and batch CLIs
// dump it at exit, so a job fleet reports identically however it is
// driven. Registration is idempotent, so these are safe package-level
// singletons.
var (
	mJobsOK      = metrics.Default().Counter("ares_campaign_jobs_ok_total", "campaign jobs finished with status ok")
	mJobsError   = metrics.Default().Counter("ares_campaign_jobs_error_total", "campaign jobs finished with status error")
	mJobsPanic   = metrics.Default().Counter("ares_campaign_jobs_panic_total", "campaign jobs that panicked (recovered and recorded)")
	mJobsResumed = metrics.Default().Counter("ares_campaign_jobs_resumed_total", "campaign jobs skipped because the store already had an ok record")
	mInflight    = metrics.Default().Gauge("ares_campaign_inflight_jobs", "campaign jobs currently executing")
	mJobSeconds  = metrics.Default().Histogram("ares_campaign_job_seconds", "per-job wall time in seconds", nil)
)

// Executor runs one job and returns its metrics. Implementations must be
// deterministic in job.Seed and safe for concurrent calls.
type Executor func(ctx context.Context, job Job) (Metrics, error)

// RunStats summarizes one Runner.Run invocation.
type RunStats struct {
	// Total is the expanded job count; Skipped were already in the store.
	Total, Skipped int
	// OK, Errors and Panics count the jobs executed this run.
	OK, Errors, Panics int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Executed returns the number of jobs run (not skipped) this invocation.
func (s RunStats) Executed() int { return s.OK + s.Errors + s.Panics }

// Runner executes a campaign's jobs on a bounded worker pool.
type Runner struct {
	// Workers is the pool size; <=0 uses the process budget (GOMAXPROCS).
	Workers int
	// Execute runs one job; nil uses the built-in ARES executor.
	Execute Executor
	// Log receives one progress line per finished job; nil discards.
	Log io.Writer
}

// Run expands the spec, skips jobs already completed in the store, and
// executes the remainder. A job panic is recovered and recorded as a
// StatusPanic record — it never kills the fleet. Cancelling ctx stops new
// jobs from starting; in-flight jobs finish and are recorded, so a
// cancelled run resumes cleanly.
func (r *Runner) Run(ctx context.Context, spec Spec, store *Store) (RunStats, error) {
	if err := spec.Validate(); err != nil {
		return RunStats{}, err
	}
	jobs := spec.Expand()
	stats := RunStats{Total: len(jobs)}
	pending := jobs[:0:0]
	for _, j := range jobs {
		if store.Completed(j.Key) {
			stats.Skipped++
			continue
		}
		pending = append(pending, j)
	}
	mJobsResumed.Add(uint64(stats.Skipped))

	exec := r.Execute
	if exec == nil {
		exec = NewExecutor()
	}
	workers := par.Workers(r.Workers)
	logw := r.Log
	if logw == nil {
		logw = io.Discard
	}

	// Jobs and any analysis they run internally share one concurrency
	// budget: W job workers each get ~GOMAXPROCS/W analysis workers.
	inner := par.Inner(0, workers)
	start := time.Now()
	var mu sync.Mutex // guards stats and logw
	err := ForEach(ctx, workers, len(pending), func(i int) error {
		job := pending[i]
		job.Parallelism = inner
		mInflight.Inc()
		jobStart := time.Now()
		rec := runJob(ctx, exec, job)
		mJobSeconds.Observe(time.Since(jobStart).Seconds())
		mInflight.Dec()
		if err := store.Append(rec); err != nil {
			return err
		}
		mu.Lock()
		switch rec.Status {
		case StatusOK:
			stats.OK++
			mJobsOK.Inc()
		case StatusPanic:
			stats.Panics++
			mJobsPanic.Inc()
		default:
			stats.Errors++
			mJobsError.Inc()
		}
		line := fmt.Sprintf("[%d/%d] %s: %s", stats.Executed()+stats.Skipped,
			stats.Total, job.Key, rec.Status)
		if rec.Metrics != nil {
			line += fmt.Sprintf(" dev=%.2fm success=%v detected=%v",
				rec.Metrics.Deviation, rec.Metrics.Success, rec.Metrics.Detected)
		}
		fmt.Fprintln(logw, line)
		mu.Unlock()
		return nil
	})
	stats.Elapsed = time.Since(start)
	return stats, err
}

// runJob executes one job with panic recovery and builds its record.
func runJob(ctx context.Context, exec Executor, job Job) (rec Record) {
	rec = Record{
		Key:      job.Key,
		Mission:  job.Mission.Name(),
		Variable: job.Variable,
		Goal:     job.Goal,
		Attack:   job.Attack,
		Defense:  job.Defense,
		Trial:    job.Trial,
		CPV:      job.CPV,
		Seed:     job.Seed,
	}
	defer func() {
		if p := recover(); p != nil {
			rec.Status = StatusPanic
			rec.Error = fmt.Sprint(p)
			rec.Metrics = nil
		}
	}()
	m, err := exec(ctx, job)
	if err != nil {
		rec.Status = StatusError
		rec.Error = err.Error()
		return rec
	}
	rec.Status = StatusOK
	rec.Metrics = &m
	return rec
}

// ForEach runs fn(0) … fn(n-1) on up to `workers` goroutines and waits for
// all of them. The first non-nil error (or ctx cancellation) stops further
// indices from starting — already-running calls finish — and is returned.
// It is par.ForEach, re-exported because campaign consumers (cmd/arescamp,
// cmd/experiments) predate the shared package.
func ForEach(ctx context.Context, workers, n int, fn func(int) error) error {
	return par.ForEach(ctx, workers, n, fn)
}
