// Package campaign turns one-off ARES pipeline runs into sharded,
// parallel, resumable vulnerability-assessment campaigns.
//
// A campaign is the paper's evaluation loop made explicit: the cross
// product of missions × target state variables × attack goals × deployed
// defenses × trial seeds, where every cell is an independent
// profile→exploit job. The subsystem has four parts:
//
//   - Spec declares the sweep axes and expands them into an explicit,
//     deterministically ordered and seeded job list.
//   - Store is a JSON-lines artifact log; one record is appended per
//     finished job, and a re-run against the same file resumes by
//     skipping already-completed job keys.
//   - Runner executes jobs on a bounded worker pool with per-job panic
//     recovery, so one diverging trial cannot kill the fleet.
//   - Aggregate folds the records into per-axis success-rate and
//     deviation summaries shaped like internal/experiments results.
//
// Parallel runs are reproducible because every job's seed is derived from
// the campaign seed and a hash of the job's key (mathx.DeriveSeed), never
// from worker identity or completion order: the same Spec produces
// byte-identical sorted records at any worker count.
package campaign

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
)

// Goal names for Spec.Goals.
const (
	// GoalDeviation is Case Study I: uncontrolled failure via peak path
	// deviation.
	GoalDeviation = "deviation"
	// GoalCrash is Case Study II: controlled failure into a forbidden
	// zone placed beside the mission's final leg.
	GoalCrash = "crash"
)

// Defense names for Spec.Defenses.
const (
	// DefenseNone trains and evaluates without an in-loop detector.
	DefenseNone = "none"
	// DefenseCI runs the control-invariants monitor in the loop (trained
	// once per mission, cloned per job).
	DefenseCI = "ci"
)

// MissionSpec declares one mission axis value.
type MissionSpec struct {
	// Kind is "square" or "line".
	Kind string `json:"kind"`
	// Size is the side length (square) or leg length (line) in meters.
	Size float64 `json:"size"`
	// Alt is the altitude in meters.
	Alt float64 `json:"alt"`
}

// Name returns the stable identifier used in job keys, e.g. "line60x10".
func (m MissionSpec) Name() string {
	return fmt.Sprintf("%s%gx%g", m.Kind, m.Size, m.Alt)
}

// Build constructs the firmware mission.
func (m MissionSpec) Build() (*firmware.Mission, error) {
	switch m.Kind {
	case "square":
		return firmware.SquareMission(m.Size, m.Alt), nil
	case "line":
		return firmware.LineMission(m.Size, m.Alt), nil
	default:
		return nil, fmt.Errorf("campaign: unknown mission kind %q", m.Kind)
	}
}

// ParseMission parses "kind:size" or "kind:size:alt" (e.g. "line:60",
// "square:25:10"); altitude defaults to 10 m.
func ParseMission(s string) (MissionSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return MissionSpec{}, fmt.Errorf("campaign: mission %q, want kind:size[:alt]", s)
	}
	m := MissionSpec{Kind: parts[0], Alt: 10}
	var err error
	if m.Size, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return MissionSpec{}, fmt.Errorf("campaign: mission %q size: %v", s, err)
	}
	if len(parts) == 3 {
		if m.Alt, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return MissionSpec{}, fmt.Errorf("campaign: mission %q alt: %v", s, err)
		}
	}
	if m.Kind != "square" && m.Kind != "line" {
		return MissionSpec{}, fmt.Errorf("campaign: unknown mission kind %q", m.Kind)
	}
	if m.Size <= 0 || m.Alt <= 0 {
		return MissionSpec{}, fmt.Errorf("campaign: mission %q needs positive size and alt", s)
	}
	return m, nil
}

// Spec declares a campaign: the sweep axes plus shared training budgets.
// Expand turns it into the explicit job list. The JSON form is the wire
// format of the assessment daemon's POST /v1/jobs endpoint.
type Spec struct {
	// Name labels the campaign in summaries. It is a display label only:
	// two specs differing only in Name run identical jobs, so the daemon
	// excludes it from spec identity (dedup and result caching).
	Name string `json:"name,omitempty"`
	// Seed is the campaign base seed every job seed derives from.
	Seed int64 `json:"seed"`
	// Missions, Variables, Goals, Defenses and Trials are the sweep axes;
	// the job list is their cross product.
	Missions  []MissionSpec `json:"missions,omitempty"`
	Variables []string      `json:"variables,omitempty"`
	Goals     []string      `json:"goals,omitempty"`
	Defenses  []string      `json:"defenses,omitempty"`
	// Trials is the number of seeds per axis cell (default 1).
	Trials int `json:"trials,omitempty"`
	// Episodes and MaxSteps bound each job's RL training (defaults follow
	// core.ExploitConfig).
	Episodes int `json:"episodes,omitempty"`
	MaxSteps int `json:"max_steps,omitempty"`
	// Learner selects the RL algorithm ("reinforce" default).
	Learner string `json:"learner,omitempty"`
	// MaxAction bounds the per-action manipulation; 0 uses per-goal
	// defaults (0.1 deviation, 0.6 crash).
	MaxAction float64 `json:"max_action,omitempty"`
	// SuccessDeviation is the peak path deviation (meters) that counts a
	// deviation job as a successful attack (default 5).
	SuccessDeviation float64 `json:"success_deviation,omitempty"`
}

// Normalized returns the spec with the axis and threshold defaults
// applied, so a spec that spells out the defaults and one that omits them
// share one normalized form. The daemon hashes the normalized spec (minus
// Name) for dedup and caching.
func (s Spec) Normalized() Spec {
	s.applyDefaults()
	return s
}

func (s *Spec) applyDefaults() {
	if len(s.Missions) == 0 {
		s.Missions = []MissionSpec{{Kind: "line", Size: 60, Alt: 10}}
	}
	if len(s.Variables) == 0 {
		s.Variables = []string{"PIDR.INTEG"}
	}
	if len(s.Goals) == 0 {
		s.Goals = []string{GoalDeviation}
	}
	if len(s.Defenses) == 0 {
		s.Defenses = []string{DefenseNone}
	}
	if s.Trials <= 0 {
		s.Trials = 1
	}
	if s.SuccessDeviation <= 0 {
		s.SuccessDeviation = 5
	}
}

// Validate checks the axis values without flying anything.
func (s Spec) Validate() error {
	s.applyDefaults()
	for _, m := range s.Missions {
		if _, err := m.Build(); err != nil {
			return err
		}
		if m.Size <= 0 || m.Alt <= 0 {
			return fmt.Errorf("campaign: mission %q needs positive size and alt", m.Name())
		}
	}
	for _, g := range s.Goals {
		if g != GoalDeviation && g != GoalCrash {
			return fmt.Errorf("campaign: unknown goal %q", g)
		}
	}
	for _, d := range s.Defenses {
		if d != DefenseNone && d != DefenseCI {
			return fmt.Errorf("campaign: unknown defense %q", d)
		}
	}
	for _, v := range s.Variables {
		if v == "" {
			return fmt.Errorf("campaign: empty variable name")
		}
	}
	return nil
}

// Job is one expanded campaign cell: a single exploit-training run.
type Job struct {
	// Key uniquely identifies the cell; the resume store skips keys that
	// already completed.
	Key string
	// BaseSeed is the campaign seed (monitor calibration derives from it).
	BaseSeed int64
	// Seed is the job's own derived seed; all job-local randomness
	// (environment episodes, policy init) streams from it.
	Seed int64

	Mission  MissionSpec
	Variable string
	Goal     string
	Defense  string
	Trial    int

	Episodes         int
	MaxSteps         int
	Learner          string
	MaxAction        float64
	SuccessDeviation float64

	// Parallelism is the in-job concurrency budget. The Runner sets it to
	// ~GOMAXPROCS/Workers before dispatch, so executors that run Algorithm 1
	// internally (core.AnalysisOptions.Parallelism) keep the whole campaign
	// at one machine-wide budget instead of multiplying pools. Zero means
	// "unmanaged" (the executor's own default applies).
	Parallelism int
}

// Expand produces the deterministic job list: axes iterate in declaration
// order (mission, variable, goal, defense, trial), and every job seed is
// derived from the campaign seed and the FNV-1a hash of the job key — so
// adding or reordering axis values never changes the seed of an existing
// cell, and execution order cannot influence results.
func (s Spec) Expand() []Job {
	s.applyDefaults()
	var jobs []Job
	for _, m := range s.Missions {
		for _, v := range s.Variables {
			for _, g := range s.Goals {
				for _, d := range s.Defenses {
					for t := 0; t < s.Trials; t++ {
						key := JobKey(m, v, g, d, t)
						jobs = append(jobs, Job{
							Key:              key,
							BaseSeed:         s.Seed,
							Seed:             mathx.DeriveSeed(s.Seed, StreamOf(key)),
							Mission:          m,
							Variable:         v,
							Goal:             g,
							Defense:          d,
							Trial:            t,
							Episodes:         s.Episodes,
							MaxSteps:         s.MaxSteps,
							Learner:          s.Learner,
							MaxAction:        s.MaxAction,
							SuccessDeviation: s.SuccessDeviation,
						})
					}
				}
			}
		}
	}
	return jobs
}

// JobKey builds the stable identifier of one campaign cell.
func JobKey(m MissionSpec, variable, goal, defense string, trial int) string {
	return fmt.Sprintf("%s/%s/%s/%s/t%03d", m.Name(), variable, goal, defense, trial)
}

// StreamOf hashes an arbitrary label into a mathx.DeriveSeed stream id.
func StreamOf(label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int64(h.Sum64())
}
