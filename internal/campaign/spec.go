// Package campaign turns one-off ARES pipeline runs into sharded,
// parallel, resumable vulnerability-assessment campaigns.
//
// A campaign is the paper's evaluation loop made explicit: the cross
// product of missions × target state variables × attack goals × deployed
// defenses × trial seeds, where every cell is an independent
// profile→exploit job. The subsystem has four parts:
//
//   - Spec declares the sweep axes and expands them into an explicit,
//     deterministically ordered and seeded job list.
//   - Store is a JSON-lines artifact log; one record is appended per
//     finished job, and a re-run against the same file resumes by
//     skipping already-completed job keys.
//   - Runner executes jobs on a bounded worker pool with per-job panic
//     recovery, so one diverging trial cannot kill the fleet.
//   - Aggregate folds the records into per-axis success-rate and
//     deviation summaries shaped like internal/experiments results.
//
// Parallel runs are reproducible because every job's seed is derived from
// the campaign seed and a hash of the job's key (mathx.DeriveSeed), never
// from worker identity or completion order: the same Spec produces
// byte-identical sorted records at any worker count.
package campaign

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
)

// Goal names for Spec.Goals.
const (
	// GoalDeviation is Case Study I: uncontrolled failure via peak path
	// deviation.
	GoalDeviation = "deviation"
	// GoalCrash is Case Study II: controlled failure into a forbidden
	// zone placed beside the mission's final leg.
	GoalCrash = "crash"
)

// Defense names for Spec.Defenses.
const (
	// DefenseNone trains and evaluates without an in-loop detector.
	DefenseNone = "none"
	// DefenseCI runs the control-invariants monitor in the loop (trained
	// once per mission, cloned per job).
	DefenseCI = "ci"
	// DefenseRecovery runs the SpecGuard-style recovery guard: the CI
	// monitor detects, and on the first alarm a conservative recovery
	// controller clamps the attitude commands and bleeds the integrators
	// for the rest of the flight.
	DefenseRecovery = "recovery"
)

// Attack names for Spec.Attacks.
const (
	// AttackRL trains the paper's RL exploit against the cell (the
	// original, and default, campaign semantics).
	AttackRL = "rl"
	// AttackStealthy runs the fixed stealthy state-aware injection: a
	// shadow copy of the CI monitor schedules the offset magnitude so the
	// detection statistic stays under the alarm threshold.
	AttackStealthy = "stealthy"
)

// MissionSpec declares one mission axis value.
type MissionSpec struct {
	// Kind is "square" or "line".
	Kind string `json:"kind"`
	// Size is the side length (square) or leg length (line) in meters.
	Size float64 `json:"size"`
	// Alt is the altitude in meters.
	Alt float64 `json:"alt"`
}

// Name returns the stable identifier used in job keys, e.g. "line60x10".
func (m MissionSpec) Name() string {
	return fmt.Sprintf("%s%gx%g", m.Kind, m.Size, m.Alt)
}

// Build constructs the firmware mission.
func (m MissionSpec) Build() (*firmware.Mission, error) {
	switch m.Kind {
	case "square":
		return firmware.SquareMission(m.Size, m.Alt), nil
	case "line":
		return firmware.LineMission(m.Size, m.Alt), nil
	default:
		return nil, fmt.Errorf("campaign: unknown mission kind %q", m.Kind)
	}
}

// ParseMission parses "kind:size" or "kind:size:alt" (e.g. "line:60",
// "square:25:10"); altitude defaults to 10 m.
func ParseMission(s string) (MissionSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return MissionSpec{}, fmt.Errorf("campaign: mission %q, want kind:size[:alt]", s)
	}
	m := MissionSpec{Kind: parts[0], Alt: 10}
	var err error
	if m.Size, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return MissionSpec{}, fmt.Errorf("campaign: mission %q size: %v", s, err)
	}
	if len(parts) == 3 {
		if m.Alt, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return MissionSpec{}, fmt.Errorf("campaign: mission %q alt: %v", s, err)
		}
	}
	if m.Kind != "square" && m.Kind != "line" {
		return MissionSpec{}, fmt.Errorf("campaign: unknown mission kind %q", m.Kind)
	}
	// strconv.ParseFloat accepts "NaN" and "Inf", and `m.Size <= 0` is
	// false for NaN — so the geometry must be checked for finiteness
	// explicitly, not just for sign.
	if !finitePositive(m.Size) || !finitePositive(m.Alt) {
		return MissionSpec{}, fmt.Errorf("campaign: mission %q needs finite positive size and alt", s)
	}
	return m, nil
}

// finitePositive reports whether v is a finite value greater than zero
// (NaN and ±Inf fail).
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Spec declares a campaign: the sweep axes plus shared training budgets.
// Expand turns it into the explicit job list. The JSON form is the wire
// format of the assessment daemon's POST /v1/jobs endpoint.
type Spec struct {
	// Name labels the campaign in summaries. It is a display label only:
	// two specs differing only in Name run identical jobs, so the daemon
	// excludes it from spec identity (dedup and result caching).
	Name string `json:"name,omitempty"`
	// Seed is the campaign base seed every job seed derives from.
	Seed int64 `json:"seed"`
	// Missions, Variables, Goals, Attacks, Defenses and Trials are the
	// sweep axes; the job list is their cross product.
	Missions  []MissionSpec `json:"missions,omitempty"`
	Variables []string      `json:"variables,omitempty"`
	Goals     []string      `json:"goals,omitempty"`
	Attacks   []string      `json:"attacks,omitempty"`
	Defenses  []string      `json:"defenses,omitempty"`
	// Trials is the number of seeds per axis cell (default 1).
	Trials int `json:"trials,omitempty"`
	// Sweeps, when non-empty, replaces the single top-level cross product
	// with independent per-block cross products (the compiled form of a
	// CPV catalog subset, where each record carries its own incompatible
	// axis combination). The top-level axis fields must be left empty;
	// top-level Trials/MaxAction/SuccessDeviation act as defaults pushed
	// into sweeps that omit them. Episodes, MaxSteps and Learner stay
	// shared across all sweeps.
	Sweeps []Sweep `json:"sweeps,omitempty"`
	// Episodes and MaxSteps bound each job's RL training (defaults follow
	// core.ExploitConfig).
	Episodes int `json:"episodes,omitempty"`
	MaxSteps int `json:"max_steps,omitempty"`
	// Learner selects the RL algorithm ("reinforce" default).
	Learner string `json:"learner,omitempty"`
	// MaxAction bounds the per-action manipulation; 0 uses per-goal
	// defaults (0.1 deviation, 0.6 crash).
	MaxAction float64 `json:"max_action,omitempty"`
	// SuccessDeviation is the peak path deviation (meters) that counts a
	// deviation job as a successful attack (default 5).
	SuccessDeviation float64 `json:"success_deviation,omitempty"`
}

// Sweep is one independent axis block inside a Spec. Each sweep expands to
// its own cross product; the spec's job list is the concatenation (minus
// duplicate keys). A sweep compiled from a CPV catalog record carries the
// record's ID in CPV, which prefixes every job key in the block and is
// echoed on the resulting records for traceability.
type Sweep struct {
	// CPV is the originating catalog record ID ("" for hand-written
	// sweeps). It must not contain '/', which separates job-key segments.
	CPV string `json:"cpv,omitempty"`

	Missions  []MissionSpec `json:"missions,omitempty"`
	Variables []string      `json:"variables,omitempty"`
	Goals     []string      `json:"goals,omitempty"`
	Attacks   []string      `json:"attacks,omitempty"`
	Defenses  []string      `json:"defenses,omitempty"`

	// Trials, MaxAction and SuccessDeviation override the spec-level
	// values for this block (zero inherits).
	Trials           int     `json:"trials,omitempty"`
	MaxAction        float64 `json:"max_action,omitempty"`
	SuccessDeviation float64 `json:"success_deviation,omitempty"`
}

// applyDefaults fills the sweep's axis defaults (the same ones the
// top-level spec uses).
func (w *Sweep) applyDefaults() {
	if len(w.Missions) == 0 {
		w.Missions = []MissionSpec{{Kind: "line", Size: 60, Alt: 10}}
	}
	if len(w.Variables) == 0 {
		w.Variables = []string{"PIDR.INTEG"}
	}
	if len(w.Goals) == 0 {
		w.Goals = []string{GoalDeviation}
	}
	if len(w.Attacks) == 0 {
		w.Attacks = []string{AttackRL}
	}
	if len(w.Defenses) == 0 {
		w.Defenses = []string{DefenseNone}
	}
}

// Normalized returns the spec with the axis and threshold defaults
// applied, so a spec that spells out the defaults and one that omits them
// share one normalized form. The daemon hashes the normalized spec (minus
// Name) for dedup and caching.
func (s Spec) Normalized() Spec {
	s.applyDefaults()
	return s
}

func (s *Spec) applyDefaults() {
	if len(s.Sweeps) > 0 {
		// Sweep mode: spec-level Trials/MaxAction/SuccessDeviation act as
		// defaults pushed down into the blocks, then the top-level copies
		// are zeroed so a spec spelling a default at the top and one
		// spelling it inside every sweep share one normalized form (and
		// one SpecHash). Pushing is idempotent: after the first pass every
		// sweep carries its own values, so a second pass changes nothing.
		trials := s.Trials
		if trials <= 0 {
			trials = 1
		}
		succ := s.SuccessDeviation
		if succ <= 0 {
			succ = 5
		}
		sweeps := make([]Sweep, len(s.Sweeps))
		copy(sweeps, s.Sweeps)
		for i := range sweeps {
			sweeps[i].applyDefaults()
			if sweeps[i].Trials <= 0 {
				sweeps[i].Trials = trials
			}
			if sweeps[i].MaxAction == 0 {
				sweeps[i].MaxAction = s.MaxAction
			}
			if sweeps[i].SuccessDeviation <= 0 {
				sweeps[i].SuccessDeviation = succ
			}
		}
		s.Sweeps = sweeps
		s.Trials, s.MaxAction, s.SuccessDeviation = 0, 0, 0
		return
	}
	if len(s.Missions) == 0 {
		s.Missions = []MissionSpec{{Kind: "line", Size: 60, Alt: 10}}
	}
	if len(s.Variables) == 0 {
		s.Variables = []string{"PIDR.INTEG"}
	}
	if len(s.Goals) == 0 {
		s.Goals = []string{GoalDeviation}
	}
	if len(s.Attacks) == 0 {
		s.Attacks = []string{AttackRL}
	}
	if len(s.Defenses) == 0 {
		s.Defenses = []string{DefenseNone}
	}
	if s.Trials <= 0 {
		s.Trials = 1
	}
	if s.SuccessDeviation <= 0 {
		s.SuccessDeviation = 5
	}
}

// Validate checks the axis values without flying anything.
func (s Spec) Validate() error {
	if len(s.Sweeps) > 0 {
		if len(s.Missions)+len(s.Variables)+len(s.Goals)+len(s.Attacks)+len(s.Defenses) > 0 {
			return fmt.Errorf("campaign: spec with sweeps must leave the top-level axes empty")
		}
		s.applyDefaults()
		for i, sw := range s.Sweeps {
			if strings.Contains(sw.CPV, "/") {
				return fmt.Errorf("campaign: sweep %d: cpv id %q must not contain '/'", i, sw.CPV)
			}
			if err := validateAxes(sw.Missions, sw.Variables, sw.Goals, sw.Attacks, sw.Defenses); err != nil {
				return fmt.Errorf("campaign: sweep %d: %w", i, err)
			}
		}
		return nil
	}
	s.applyDefaults()
	return validateAxes(s.Missions, s.Variables, s.Goals, s.Attacks, s.Defenses)
}

// validateAxes checks one axis block (top-level or sweep).
func validateAxes(missions []MissionSpec, variables, goals, attacks, defenses []string) error {
	for _, m := range missions {
		if _, err := m.Build(); err != nil {
			return err
		}
		if !finitePositive(m.Size) || !finitePositive(m.Alt) {
			return fmt.Errorf("campaign: mission %q needs finite positive size and alt", m.Name())
		}
	}
	for _, g := range goals {
		if g != GoalDeviation && g != GoalCrash {
			return fmt.Errorf("campaign: unknown goal %q", g)
		}
	}
	for _, a := range attacks {
		if a != AttackRL && a != AttackStealthy {
			return fmt.Errorf("campaign: unknown attack %q", a)
		}
	}
	for _, d := range defenses {
		if d != DefenseNone && d != DefenseCI && d != DefenseRecovery {
			return fmt.Errorf("campaign: unknown defense %q", d)
		}
	}
	for _, v := range variables {
		if v == "" {
			return fmt.Errorf("campaign: empty variable name")
		}
	}
	// The stealthy injection is a fixed offset schedule, not a trained
	// policy: it cannot steer toward a forbidden zone, so crash cells
	// would silently measure nothing. Reject the combination up front.
	for _, a := range attacks {
		if a != AttackStealthy {
			continue
		}
		for _, g := range goals {
			if g == GoalCrash {
				return fmt.Errorf("campaign: stealthy attack supports only the deviation goal")
			}
		}
	}
	return nil
}

// Job is one expanded campaign cell: a single exploit-training run.
type Job struct {
	// Key uniquely identifies the cell; the resume store skips keys that
	// already completed.
	Key string
	// BaseSeed is the campaign seed (monitor calibration derives from it).
	BaseSeed int64
	// Seed is the job's own derived seed; all job-local randomness
	// (environment episodes, policy init) streams from it.
	Seed int64

	Mission  MissionSpec
	Variable string
	Goal     string
	Attack   string
	Defense  string
	Trial    int
	// CPV is the originating catalog record ID for catalog-compiled
	// sweeps ("" for hand-written specs).
	CPV string

	Episodes         int
	MaxSteps         int
	Learner          string
	MaxAction        float64
	SuccessDeviation float64

	// Parallelism is the in-job concurrency budget. The Runner sets it to
	// ~GOMAXPROCS/Workers before dispatch, so executors that run Algorithm 1
	// internally (core.AnalysisOptions.Parallelism) keep the whole campaign
	// at one machine-wide budget instead of multiplying pools. Zero means
	// "unmanaged" (the executor's own default applies).
	Parallelism int
}

// Expand produces the deterministic job list: axes iterate in declaration
// order (mission, variable, goal, attack, defense, trial), and every job
// seed is derived from the campaign seed and the FNV-1a hash of the job
// key — so adding or reordering axis values never changes the seed of an
// existing cell, and execution order cannot influence results. With
// Sweeps, each block expands the same way in declaration order and the
// lists concatenate, skipping duplicate keys.
func (s Spec) Expand() []Job {
	s.applyDefaults()
	if len(s.Sweeps) > 0 {
		var jobs []Job
		seen := make(map[string]bool)
		for _, sw := range s.Sweeps {
			for _, j := range s.expandBlock(sw) {
				if seen[j.Key] {
					continue
				}
				seen[j.Key] = true
				jobs = append(jobs, j)
			}
		}
		return jobs
	}
	return s.expandBlock(Sweep{
		Missions:         s.Missions,
		Variables:        s.Variables,
		Goals:            s.Goals,
		Attacks:          s.Attacks,
		Defenses:         s.Defenses,
		Trials:           s.Trials,
		MaxAction:        s.MaxAction,
		SuccessDeviation: s.SuccessDeviation,
	})
}

// expandBlock expands one axis block (the whole spec, or one sweep) into
// its cross product of jobs.
func (s Spec) expandBlock(sw Sweep) []Job {
	prefix := ""
	if sw.CPV != "" {
		prefix = sw.CPV + "/"
	}
	var jobs []Job
	for _, m := range sw.Missions {
		for _, v := range sw.Variables {
			for _, g := range sw.Goals {
				for _, a := range sw.Attacks {
					for _, d := range sw.Defenses {
						for t := 0; t < sw.Trials; t++ {
							key := prefix + JobKey(m, v, g, a, d, t)
							jobs = append(jobs, Job{
								Key:              key,
								BaseSeed:         s.Seed,
								Seed:             mathx.DeriveSeed(s.Seed, StreamOf(key)),
								Mission:          m,
								Variable:         v,
								Goal:             g,
								Attack:           a,
								Defense:          d,
								Trial:            t,
								CPV:              sw.CPV,
								Episodes:         s.Episodes,
								MaxSteps:         s.MaxSteps,
								Learner:          s.Learner,
								MaxAction:        sw.MaxAction,
								SuccessDeviation: sw.SuccessDeviation,
							})
						}
					}
				}
			}
		}
	}
	return jobs
}

// JobKey builds the stable identifier of one campaign cell. Catalog-
// compiled sweeps additionally prefix the originating CPV record ID.
func JobKey(m MissionSpec, variable, goal, attack, defense string, trial int) string {
	return fmt.Sprintf("%s/%s/%s/%s/%s/t%03d", m.Name(), variable, goal, attack, defense, trial)
}

// StreamOf hashes an arbitrary label into a mathx.DeriveSeed stream id.
func StreamOf(label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int64(h.Sum64())
}
