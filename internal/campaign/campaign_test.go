package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/rl"
)

func testSpec() Spec {
	return Spec{
		Name:      "test",
		Seed:      7,
		Missions:  []MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"PIDR.INTEG", "CMD.Roll"},
		Goals:     []string{GoalDeviation},
		Defenses:  []string{DefenseNone},
		Trials:    2,
		Episodes:  2,
		MaxSteps:  8,
	}
}

// stubExecutor is a fast deterministic executor: metrics derive only from
// the job seed.
func stubExecutor(_ context.Context, job Job) (Metrics, error) {
	return Metrics{
		Deviation: float64(job.Seed%1000) / 100,
		Return:    float64(job.Trial),
		Success:   job.Seed%2 == 0,
	}, nil
}

func openTempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "artifacts.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, path
}

func TestSpecExpand(t *testing.T) {
	spec := testSpec()
	spec.Missions = append(spec.Missions, MissionSpec{Kind: "square", Size: 25, Alt: 10})
	spec.Defenses = []string{DefenseNone, DefenseCI}
	jobs := spec.Expand()
	want := 2 * 2 * 1 * 2 * 2
	if len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	keys := make(map[string]bool)
	seeds := make(map[int64]string)
	for _, j := range jobs {
		if keys[j.Key] {
			t.Fatalf("duplicate key %s", j.Key)
		}
		keys[j.Key] = true
		if prev, dup := seeds[j.Seed]; dup {
			t.Fatalf("seed collision: %s and %s", prev, j.Key)
		}
		seeds[j.Seed] = j.Key
	}
	if k := jobs[0].Key; k != "line40x10/PIDR.INTEG/deviation/rl/none/t000" {
		t.Errorf("unexpected first key %q", k)
	}
}

// TestSpecExpandSeedStability: adding an axis value must not change the
// seeds of pre-existing cells (keys hash to seed streams, not indices).
func TestSpecExpandSeedStability(t *testing.T) {
	base := testSpec()
	grown := testSpec()
	grown.Variables = append([]string{"RATE.RDes"}, grown.Variables...)
	seedOf := func(jobs []Job) map[string]int64 {
		m := make(map[string]int64)
		for _, j := range jobs {
			m[j.Key] = j.Seed
		}
		return m
	}
	baseSeeds, grownSeeds := seedOf(base.Expand()), seedOf(grown.Expand())
	for k, s := range baseSeeds {
		if grownSeeds[k] != s {
			t.Fatalf("seed of %s changed after axis growth: %d -> %d", k, s, grownSeeds[k])
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := testSpec()
	bad.Goals = []string{"teleport"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown goal accepted")
	}
	bad = testSpec()
	bad.Missions = []MissionSpec{{Kind: "spiral", Size: 10, Alt: 10}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown mission kind accepted")
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestParseMission(t *testing.T) {
	m, err := ParseMission("line:60")
	if err != nil || m.Kind != "line" || m.Size != 60 || m.Alt != 10 {
		t.Fatalf("ParseMission(line:60) = %+v, %v", m, err)
	}
	m, err = ParseMission("square:25:15")
	if err != nil || m.Name() != "square25x15" {
		t.Fatalf("ParseMission(square:25:15) = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "line", "line:x", "loop:10", "line:-5", "line:60:0"} {
		if _, err := ParseMission(bad); err == nil {
			t.Errorf("ParseMission(%q) accepted", bad)
		}
	}
}

func TestStoreRoundTripAndResume(t *testing.T) {
	st, path := openTempStore(t)
	rec := Record{Key: "a", Status: StatusOK, Metrics: &Metrics{Deviation: 1}}
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Key: "b", Status: StatusError, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Completed("a") {
		t.Error("ok record not marked completed on reload")
	}
	if re.Completed("b") {
		t.Error("error record counts as completed — failed jobs would never retry")
	}
	recs := re.Records()
	if len(recs) != 2 || recs[0].Metrics == nil || recs[0].Metrics.Deviation != 1 {
		t.Fatalf("reloaded records %+v", recs)
	}
}

func TestRunnerResumeSkipsCompleted(t *testing.T) {
	st, path := openTempStore(t)
	var calls atomic.Int64
	counting := func(ctx context.Context, j Job) (Metrics, error) {
		calls.Add(1)
		return stubExecutor(ctx, j)
	}
	r := &Runner{Workers: 2, Execute: counting}
	spec := testSpec()

	stats, err := r.Run(context.Background(), spec, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OK != 4 || stats.Skipped != 0 {
		t.Fatalf("first run stats %+v", stats)
	}
	st.Close()

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	calls.Store(0)
	stats, err = r.Run(context.Background(), spec, re)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 4 || stats.Executed() != 0 || calls.Load() != 0 {
		t.Fatalf("resume re-executed: stats %+v, calls %d", stats, calls.Load())
	}
}

func TestRunnerPanicRecovery(t *testing.T) {
	st, _ := openTempStore(t)
	exploding := func(ctx context.Context, j Job) (Metrics, error) {
		if j.Trial == 1 {
			panic("diverged")
		}
		return stubExecutor(ctx, j)
	}
	r := &Runner{Workers: 4, Execute: exploding}
	stats, err := r.Run(context.Background(), testSpec(), st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Panics != 2 || stats.OK != 2 {
		t.Fatalf("stats %+v", stats)
	}
	for _, rec := range st.Records() {
		if rec.Trial == 1 {
			if rec.Status != StatusPanic || !strings.Contains(rec.Error, "diverged") {
				t.Fatalf("panic record %+v", rec)
			}
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	st, _ := openTempStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	blocking := func(_ context.Context, j Job) (Metrics, error) {
		started <- struct{}{}
		<-ctx.Done()
		return Metrics{}, nil
	}
	spec := testSpec()
	spec.Trials = 8 // 16 jobs, 2 workers: most never start
	r := &Runner{Workers: 2, Execute: blocking}
	done := make(chan RunStats, 1)
	go func() {
		stats, _ := r.Run(ctx, spec, st)
		done <- stats
	}()
	<-started
	<-started
	cancel()
	stats := <-done
	if stats.Executed() >= stats.Total {
		t.Fatalf("cancellation did not stop the fleet: %+v", stats)
	}
}

func sortedLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	sort.Strings(lines)
	return lines
}

// TestDeterminismAcrossWorkerCounts is the campaign reproducibility
// contract (and the race-detector stress test): the same spec through the
// real ARES executor at 1 worker and at N workers must write byte-identical
// sorted artifact records.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("real-executor determinism test skipped in -short")
	}
	spec := testSpec()
	spec.Trials = 4 // 8 real jobs per run
	spec.Episodes = 2
	spec.MaxSteps = 6

	run := func(workers int) []string {
		st, path := openTempStore(t)
		r := &Runner{Workers: workers}
		stats, err := r.Run(context.Background(), spec, st)
		if err != nil {
			t.Fatal(err)
		}
		if stats.OK != stats.Total {
			t.Fatalf("workers=%d: %+v (want all ok)", workers, stats)
		}
		st.Close()
		return sortedLines(t, path)
	}

	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("record counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("record %d differs:\n  1 worker: %s\n  4 workers: %s", i, seq[i], par[i])
		}
	}
}

func TestForEach(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	var active, peak atomic.Int64
	err := ForEach(context.Background(), 3, 20, func(i int) error {
		if a := active.Add(1); a > peak.Load() {
			peak.Store(a)
		}
		defer active.Add(-1)
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("ran %d of 20 indices", len(seen))
	}
	if peak.Load() > 3 {
		t.Fatalf("concurrency %d exceeded 3 workers", peak.Load())
	}

	calls := 0
	err = ForEach(context.Background(), 1, 10, func(i int) error {
		calls++
		if i == 2 {
			return fmt.Errorf("stop at %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "stop at 2") {
		t.Fatalf("error not propagated: %v", err)
	}
	if calls >= 10 {
		t.Fatal("error did not stop the feed")
	}
}

func TestAggregate(t *testing.T) {
	recs := []Record{
		{Key: "m/a/deviation/none/t000", Mission: "m", Variable: "a", Goal: "deviation",
			Defense: "none", Status: StatusOK,
			Metrics: &Metrics{Deviation: 4, Success: true}},
		{Key: "m/a/deviation/ci/t000", Mission: "m", Variable: "a", Goal: "deviation",
			Defense: "ci", Status: StatusOK,
			Metrics: &Metrics{Deviation: 2, Detected: true}},
		// A failed attempt later retried successfully: only the last
		// record per key counts.
		{Key: "m/b/deviation/none/t000", Mission: "m", Variable: "b", Goal: "deviation",
			Defense: "none", Status: StatusError, Error: "boom"},
		{Key: "m/b/deviation/none/t000", Mission: "m", Variable: "b", Goal: "deviation",
			Defense: "none", Status: StatusOK,
			Metrics: &Metrics{Deviation: 8, Success: true}},
	}
	s := Aggregate("unit", recs)
	if s.Records != 3 || s.Failures != 0 {
		t.Fatalf("records=%d failures=%d", s.Records, s.Failures)
	}
	find := func(axis, value string) AxisCell {
		for _, c := range s.Cells {
			if c.Axis == axis && c.Value == value {
				return c
			}
		}
		t.Fatalf("cell %s=%s missing", axis, value)
		return AxisCell{}
	}
	if c := find("defense", "none"); c.Jobs != 2 || c.SuccessRate != 1 || c.MaxDeviation != 8 {
		t.Errorf("defense/none cell %+v", c)
	}
	if c := find("defense", "ci"); c.DetectionRate != 1 || c.SuccessRate != 0 {
		t.Errorf("defense/ci cell %+v", c)
	}
	if c := find("variable", "b"); c.OK != 1 || c.MeanDeviation != 8 {
		t.Errorf("variable/b cell %+v", c)
	}

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Campaign unit — 3 jobs") {
		t.Errorf("summary text:\n%s", buf.String())
	}
	dir := t.TempDir()
	if err := s.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "campaign_summary.csv")); err != nil {
		t.Error(err)
	}
}

// TestExecutorSmoke runs one real deviation job and one real crash job
// through the production executor.
func TestExecutorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real executor skipped in -short")
	}
	exec := NewExecutor()
	jobs := Spec{
		Seed:      3,
		Missions:  []MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"CMD.Roll"},
		Goals:     []string{GoalDeviation, GoalCrash},
		Episodes:  2,
		MaxSteps:  6,
	}.Expand()
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs", len(jobs))
	}
	for _, j := range jobs {
		m, err := exec(context.Background(), j)
		if err != nil {
			t.Fatalf("%s: %v", j.Key, err)
		}
		if m.Deviation < 0 {
			t.Errorf("%s: negative deviation %f", j.Key, m.Deviation)
		}
	}
}

func TestExecutorRejectsUnknowns(t *testing.T) {
	exec := NewExecutor()
	if _, err := exec(context.Background(), Job{
		Mission: MissionSpec{Kind: "line", Size: 40, Alt: 10},
		Goal:    "teleport", Variable: "PIDR.INTEG",
	}); err == nil {
		t.Error("unknown goal accepted")
	}
	if _, err := exec(context.Background(), Job{
		Mission: MissionSpec{Kind: "spiral", Size: 40, Alt: 10},
		Goal:    GoalDeviation, Variable: "PIDR.INTEG",
	}); err == nil {
		t.Error("unknown mission accepted")
	}
}

func TestNormalizedAppliesDefaults(t *testing.T) {
	n := Spec{Seed: 5}.Normalized()
	if len(n.Missions) == 0 || len(n.Variables) == 0 || len(n.Goals) == 0 ||
		len(n.Defenses) == 0 || n.Trials != 1 || n.SuccessDeviation != 5 {
		t.Errorf("Normalized left defaults unapplied: %+v", n)
	}
	// Normalizing an already-normalized spec is a fixed point, which is
	// what content-addressed dedup in the daemon relies on.
	if got := n.Normalized(); !reflect.DeepEqual(got, n) {
		t.Errorf("Normalized not idempotent: %+v vs %+v", got, n)
	}
}

func TestValidateRejectsNonPositiveMission(t *testing.T) {
	s := Spec{Missions: []MissionSpec{{Kind: "line", Size: -4, Alt: 10}}}
	if err := s.Validate(); err == nil {
		t.Error("negative mission size validated")
	}
	s = Spec{Missions: []MissionSpec{{Kind: "square", Size: 20, Alt: 0}}}
	if err := s.Validate(); err == nil {
		t.Error("zero-altitude mission validated")
	}
}

// TestMetricsOfNonFiniteReturns guards the JSON artifact against the
// paper's infinite terminal rewards: Equation 4 scores a detected episode
// -Inf (and Equation 5 scores zone contact +Inf), so a cell whose every
// episode alarms under the CI defense produces an infinite eval/best
// return. encoding/json rejects ±Inf, which used to abort the whole
// campaign at store.Append.
func TestMetricsOfNonFiniteReturns(t *testing.T) {
	res := &core.ExploitResult{
		EvalReturn:   math.Inf(-1),
		EvalDetected: true,
		Train:        &rl.TrainResult{BestReturn: math.Inf(1)},
	}
	m := metricsOf(Job{Goal: GoalDeviation}, res)
	if m.Return != -math.MaxFloat64 || m.BestReturn != math.MaxFloat64 {
		t.Fatalf("returns not clamped: %v / %v", m.Return, m.BestReturn)
	}
	if !m.Detected {
		t.Fatal("detection event lost")
	}
	if _, err := json.Marshal(Record{Key: "k", Status: StatusOK, Metrics: &m}); err != nil {
		t.Fatalf("record with clamped returns must marshal: %v", err)
	}
	if got := finiteReturn(math.NaN()); got != 0 {
		t.Fatalf("NaN return = %v, want 0", got)
	}
	if got := finiteReturn(2.5); got != 2.5 {
		t.Fatalf("finite return altered: %v", got)
	}
}
