// Package ekf implements the extended Kalman filter the firmware uses for
// state estimation. It fuses gyro and accelerometer propagation with GPS,
// barometer, magnetometer and gravity-direction updates into a nine-state
// solution [roll pitch yaw vN vE vD pN pE pD].
//
// The filter serves two roles from the paper: it produces the EKF1/NKF1
// dataflash variables that expand the KSVL, and its attitude residual
// (ATT.R − EKF1.Roll) is the detection statistic of the SAVIOR-style sensor
// estimation monitor assessed in Figure 8.
package ekf

import (
	"math"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/vars"
)

// n is the filter state dimension.
const n = 9

// State indices.
const (
	ixRoll = iota
	ixPitch
	ixYaw
	ixVN
	ixVE
	ixVD
	ixPN
	ixPE
	ixPD
)

// Config holds the filter noise parameters (matching the EK2_* parameter
// namespace of the firmware's parameter table).
type Config struct {
	GyroNoise  float64 // rad/s process noise on attitude
	AccelNoise float64 // m/s² process noise on velocity
	PosNoise   float64 // m/s process noise on position
	GPSPosR    float64 // m, GPS position measurement noise
	GPSVelR    float64 // m/s, GPS velocity measurement noise
	BaroR      float64 // m, baro measurement noise
	MagR       float64 // rad, magnetometer yaw noise
	GravR      float64 // rad, gravity-direction attitude noise
}

// DefaultConfig returns Pixhawk-class EKF tuning.
func DefaultConfig() Config {
	return Config{
		GyroNoise:  0.03,
		AccelNoise: 0.6,
		PosNoise:   0.1,
		GPSPosR:    1.0,
		GPSVelR:    0.5,
		BaroR:      1.5,
		MagR:       0.05,
		// Gravity-direction fusion is deliberately weak: during
		// coordinated acceleration the specific force aligns with the
		// thrust axis and reads "level" even when tilted, so this
		// observation may only trim slow gyro drift, never fight the
		// gyro during maneuvers.
		GravR: 0.6,
	}
}

// EKF is the nine-state filter.
type EKF struct {
	cfg Config

	x [n]float64    // state estimate
	p [n][n]float64 // covariance

	// Live log variables (EKF1 record): exported via RegisterVars.
	roll, pitch, yaw float64
	vn, ve, vd       float64
	pn, pe, pd       float64
	// innovation magnitudes (NKF4-style health variables).
	innovPos, innovVel, innovMag float64
}

// New creates an EKF initialized at the origin with a loose prior.
func New(cfg Config) *EKF {
	e := &EKF{cfg: cfg}
	for i := 0; i < n; i++ {
		e.p[i][i] = 1.0
	}
	e.syncOutputs()
	return e
}

// Reset re-initializes the state at the given position with zero velocity
// and level attitude.
func (e *EKF) Reset(pos mathx.Vec3, yaw float64) {
	e.x = [n]float64{}
	e.x[ixYaw] = yaw
	e.x[ixPN], e.x[ixPE], e.x[ixPD] = pos.X, pos.Y, pos.Z
	e.p = [n][n]float64{}
	for i := 0; i < n; i++ {
		e.p[i][i] = 1.0
	}
	e.syncOutputs()
}

// Predict propagates the state with one IMU sample: gyro body rates and
// accelerometer specific force, both in the body frame.
func (e *EKF) Predict(gyro, accel mathx.Vec3, dt float64) {
	if dt <= 0 {
		return
	}
	roll, pitch, yaw := e.x[ixRoll], e.x[ixPitch], e.x[ixYaw]

	// Attitude kinematics: Euler-angle rates from body rates.
	sr, cr := math.Sincos(roll)
	tp := math.Tan(pitch)
	cp := math.Cos(pitch)
	if math.Abs(cp) < 1e-6 {
		cp = math.Copysign(1e-6, cp)
	}
	rollRate := gyro.X + sr*tp*gyro.Y + cr*tp*gyro.Z
	pitchRate := cr*gyro.Y - sr*gyro.Z
	yawRate := (sr*gyro.Y + cr*gyro.Z) / cp

	e.x[ixRoll] = mathx.WrapPi(roll + rollRate*dt)
	e.x[ixPitch] = mathx.Clamp(pitch+pitchRate*dt, -math.Pi/2+1e-3, math.Pi/2-1e-3)
	e.x[ixYaw] = mathx.WrapPi(yaw + yawRate*dt)

	// Velocity: rotate specific force to world, add gravity.
	att := mathx.QuatFromEuler(e.x[ixRoll], e.x[ixPitch], e.x[ixYaw])
	accWorld := att.Rotate(accel).Add(mathx.V3(0, 0, gravity))
	e.x[ixVN] += accWorld.X * dt
	e.x[ixVE] += accWorld.Y * dt
	e.x[ixVD] += accWorld.Z * dt

	// Position integrates velocity.
	e.x[ixPN] += e.x[ixVN] * dt
	e.x[ixPE] += e.x[ixVE] * dt
	e.x[ixPD] += e.x[ixVD] * dt

	// Covariance: F ≈ I with pos←vel coupling; add process noise Q.
	var f [n][n]float64
	for i := 0; i < n; i++ {
		f[i][i] = 1
	}
	f[ixPN][ixVN] = dt
	f[ixPE][ixVE] = dt
	f[ixPD][ixVD] = dt
	// Attitude errors tip the thrust vector, coupling into velocity.
	f[ixVN][ixPitch] = -gravity * dt
	f[ixVE][ixRoll] = gravity * dt

	e.p = addDiag(matMulT(f, e.p), [n]float64{
		sq(e.cfg.GyroNoise) * dt, sq(e.cfg.GyroNoise) * dt, sq(e.cfg.GyroNoise) * dt,
		sq(e.cfg.AccelNoise) * dt, sq(e.cfg.AccelNoise) * dt, sq(e.cfg.AccelNoise) * dt,
		sq(e.cfg.PosNoise) * dt, sq(e.cfg.PosNoise) * dt, sq(e.cfg.PosNoise) * dt,
	})
	e.syncOutputs()
}

const gravity = 9.80665

// FuseGPS applies a GPS position and velocity fix.
func (e *EKF) FuseGPS(pos, vel mathx.Vec3) {
	e.innovPos = math.Hypot(pos.X-e.x[ixPN], pos.Y-e.x[ixPE])
	e.innovVel = vel.Sub(mathx.V3(e.x[ixVN], e.x[ixVE], e.x[ixVD])).Norm()
	e.fuseScalar(ixPN, pos.X, sq(e.cfg.GPSPosR))
	e.fuseScalar(ixPE, pos.Y, sq(e.cfg.GPSPosR))
	e.fuseScalar(ixPD, pos.Z, sq(e.cfg.GPSPosR*1.5))
	e.fuseScalar(ixVN, vel.X, sq(e.cfg.GPSVelR))
	e.fuseScalar(ixVE, vel.Y, sq(e.cfg.GPSVelR))
	e.fuseScalar(ixVD, vel.Z, sq(e.cfg.GPSVelR))
	e.syncOutputs()
}

// FuseBaro applies a barometric altitude (m above origin, positive up).
func (e *EKF) FuseBaro(alt float64) {
	e.fuseScalar(ixPD, -alt, sq(e.cfg.BaroR))
	e.syncOutputs()
}

// FuseMag applies a magnetometer yaw measurement, handling angle wrap.
func (e *EKF) FuseMag(yaw float64) {
	e.innovMag = math.Abs(mathx.WrapPi(yaw - e.x[ixYaw]))
	// Fold the measurement into the estimate's wrap branch.
	z := e.x[ixYaw] + mathx.WrapPi(yaw-e.x[ixYaw])
	e.fuseScalar(ixYaw, z, sq(e.cfg.MagR))
	e.x[ixYaw] = mathx.WrapPi(e.x[ixYaw])
	e.syncOutputs()
}

// FuseGravity applies the accelerometer gravity-direction attitude
// observation, valid when the vehicle is not accelerating hard. accel is
// the body-frame specific force.
func (e *EKF) FuseGravity(accel mathx.Vec3) {
	norm := accel.Norm()
	// Reject when the specific force differs too much from 1 g — the
	// vehicle is maneuvering and gravity direction is unobservable.
	if norm < 0.8*gravity || norm > 1.2*gravity {
		return
	}
	rollMeas := math.Atan2(-accel.Y, -accel.Z)
	pitchMeas := math.Atan2(accel.X, math.Hypot(accel.Y, accel.Z))
	e.fuseScalar(ixRoll, e.x[ixRoll]+mathx.WrapPi(rollMeas-e.x[ixRoll]), sq(e.cfg.GravR))
	e.fuseScalar(ixPitch, pitchMeas, sq(e.cfg.GravR))
	e.x[ixRoll] = mathx.WrapPi(e.x[ixRoll])
	e.syncOutputs()
}

// fuseScalar performs a sequential scalar Kalman update for a direct state
// observation x[idx] = z with measurement variance r.
func (e *EKF) fuseScalar(idx int, z, r float64) {
	s := e.p[idx][idx] + r
	if s <= 0 {
		return
	}
	innov := z - e.x[idx]
	var k [n]float64
	for i := 0; i < n; i++ {
		k[i] = e.p[i][idx] / s
	}
	for i := 0; i < n; i++ {
		e.x[i] += k[i] * innov
	}
	// P = (I − K·H)·P with H = eᵀ(idx): subtract k·row(idx).
	row := e.p[idx]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			e.p[i][j] -= k[i] * row[j]
		}
	}
	// Symmetrize to fight numerical drift.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (e.p[i][j] + e.p[j][i])
			e.p[i][j], e.p[j][i] = v, v
		}
	}
}

func (e *EKF) syncOutputs() {
	e.roll, e.pitch, e.yaw = e.x[ixRoll], e.x[ixPitch], e.x[ixYaw]
	e.vn, e.ve, e.vd = e.x[ixVN], e.x[ixVE], e.x[ixVD]
	e.pn, e.pe, e.pd = e.x[ixPN], e.x[ixPE], e.x[ixPD]
}

// Attitude returns the estimated (roll, pitch, yaw) in radians.
func (e *EKF) Attitude() (roll, pitch, yaw float64) {
	return e.x[ixRoll], e.x[ixPitch], e.x[ixYaw]
}

// Velocity returns the estimated NED velocity.
func (e *EKF) Velocity() mathx.Vec3 {
	return mathx.V3(e.x[ixVN], e.x[ixVE], e.x[ixVD])
}

// Position returns the estimated NED position.
func (e *EKF) Position() mathx.Vec3 {
	return mathx.V3(e.x[ixPN], e.x[ixPE], e.x[ixPD])
}

// Covariance returns the diagonal of the covariance matrix.
func (e *EKF) Covariance() [n]float64 {
	var d [n]float64
	for i := 0; i < n; i++ {
		d[i] = e.p[i][i]
	}
	return d
}

// RegisterVars exposes the EKF1 log block and the NKF4-style innovation
// health variables.
func (e *EKF) RegisterVars(set *vars.Set) error {
	entries := []struct {
		name string
		ptr  *float64
	}{
		{"EKF1.Roll", &e.roll},
		{"EKF1.Pitch", &e.pitch},
		{"EKF1.Yaw", &e.yaw},
		{"EKF1.VN", &e.vn},
		{"EKF1.VE", &e.ve},
		{"EKF1.VD", &e.vd},
		{"EKF1.PN", &e.pn},
		{"EKF1.PE", &e.pe},
		{"EKF1.PD", &e.pd},
		{"NKF4.IPos", &e.innovPos},
		{"NKF4.IVel", &e.innovVel},
		{"NKF4.IMag", &e.innovMag},
	}
	for _, en := range entries {
		if err := set.Register(en.name, vars.KindDynamic, en.ptr); err != nil {
			return err
		}
	}
	return nil
}

// --- small fixed-size matrix helpers ---

func sq(v float64) float64 { return v * v }

// matMulT computes F·P·Fᵀ for the covariance prediction.
func matMulT(f, p [n][n]float64) [n][n]float64 {
	var fp [n][n]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += f[i][k] * p[k][j]
			}
			fp[i][j] = s
		}
	}
	var out [n][n]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += fp[i][k] * f[j][k]
			}
			out[i][j] = s
		}
	}
	return out
}

func addDiag(m [n][n]float64, d [n]float64) [n][n]float64 {
	for i := 0; i < n; i++ {
		m[i][i] += d[i]
	}
	return m
}
