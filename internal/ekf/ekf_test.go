package ekf

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/control"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sensors"
	"github.com/ares-cps/ares/internal/sim"
	"github.com/ares-cps/ares/internal/vars"
)

const dt = 1.0 / 400

func TestEKFPredictAttitude(t *testing.T) {
	e := New(DefaultConfig())
	// Constant roll rate of 0.5 rad/s for 1 s at level attitude.
	for i := 0; i < 400; i++ {
		e.Predict(mathx.V3(0.5, 0, 0), mathx.V3(0, 0, -gravity), dt)
	}
	roll, pitch, _ := e.Attitude()
	if !mathx.ApproxEqual(roll, 0.5, 0.01) {
		t.Errorf("roll = %v, want ~0.5", roll)
	}
	if math.Abs(pitch) > 0.01 {
		t.Errorf("pitch = %v, want ~0", pitch)
	}
}

func TestEKFPredictVelocityAndPosition(t *testing.T) {
	e := New(DefaultConfig())
	// Level, accelerating north at 1 m/s²: specific force (1, 0, -g).
	for i := 0; i < 400; i++ {
		e.Predict(mathx.Vec3{}, mathx.V3(1, 0, -gravity), dt)
	}
	v := e.Velocity()
	if !mathx.ApproxEqual(v.X, 1, 0.01) {
		t.Errorf("vN = %v, want ~1", v.X)
	}
	p := e.Position()
	if !mathx.ApproxEqual(p.X, 0.5, 0.01) {
		t.Errorf("pN = %v, want ~0.5", p.X)
	}
}

func TestEKFFuseGPSPullsState(t *testing.T) {
	e := New(DefaultConfig())
	target := mathx.V3(10, -5, -3)
	for i := 0; i < 50; i++ {
		e.Predict(mathx.Vec3{}, mathx.V3(0, 0, -gravity), dt)
		e.FuseGPS(target, mathx.Vec3{})
	}
	if got := e.Position().Dist(target); got > 0.5 {
		t.Errorf("position %v not pulled to GPS %v (dist %v)", e.Position(), target, got)
	}
}

func TestEKFFuseBaro(t *testing.T) {
	e := New(DefaultConfig())
	for i := 0; i < 200; i++ {
		e.Predict(mathx.Vec3{}, mathx.V3(0, 0, -gravity), dt)
		e.FuseBaro(20)
	}
	if got := -e.Position().Z; !mathx.ApproxEqual(got, 20, 1) {
		t.Errorf("altitude = %v, want ~20", got)
	}
}

func TestEKFFuseMagHandlesWrap(t *testing.T) {
	e := New(DefaultConfig())
	e.Reset(mathx.Vec3{}, mathx.Rad(-179))
	// Magnetometer says +179°: the filter must move -2° (through ±180),
	// not +358°.
	for i := 0; i < 100; i++ {
		e.FuseMag(mathx.Rad(179))
	}
	_, _, yaw := e.Attitude()
	if math.Abs(mathx.WrapPi(yaw-mathx.Rad(179))) > mathx.Rad(2) {
		t.Errorf("yaw = %v deg, want ~179", mathx.Deg(yaw))
	}
}

func TestEKFFuseGravityCorrectsTilt(t *testing.T) {
	e := New(DefaultConfig())
	// Inject an attitude error, then feed level gravity measurements.
	e.x[ixRoll] = 0.3
	for i := 0; i < 400; i++ {
		e.FuseGravity(mathx.V3(0, 0, -gravity))
	}
	roll, _, _ := e.Attitude()
	if math.Abs(roll) > 0.02 {
		t.Errorf("roll after gravity fusion = %v, want ~0", roll)
	}
}

func TestEKFFuseGravityRejectsManeuvers(t *testing.T) {
	e := New(DefaultConfig())
	e.x[ixRoll] = 0.3
	// 2 g specific force: measurement must be rejected.
	e.FuseGravity(mathx.V3(0, 0, -2*gravity))
	roll, _, _ := e.Attitude()
	if roll != 0.3 {
		t.Errorf("maneuvering gravity fusion changed roll to %v", roll)
	}
}

func TestEKFCovarianceStaysPositive(t *testing.T) {
	e := New(DefaultConfig())
	for i := 0; i < 4000; i++ {
		e.Predict(mathx.V3(0.1, -0.05, 0.2), mathx.V3(0.5, 0, -gravity), dt)
		if i%80 == 0 {
			e.FuseGPS(mathx.V3(1, 2, -3), mathx.V3(0.1, 0, 0))
			e.FuseBaro(3)
			e.FuseMag(0.5)
		}
	}
	for i, v := range e.Covariance() {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("covariance diag[%d] = %v", i, v)
		}
	}
}

func TestEKFReset(t *testing.T) {
	e := New(DefaultConfig())
	e.Predict(mathx.V3(1, 1, 1), mathx.V3(3, 0, -gravity), 0.5)
	e.Reset(mathx.V3(5, 6, -7), 1.0)
	if e.Position() != mathx.V3(5, 6, -7) {
		t.Errorf("Reset position = %v", e.Position())
	}
	_, _, yaw := e.Attitude()
	if yaw != 1.0 {
		t.Errorf("Reset yaw = %v", yaw)
	}
	if e.Velocity().Norm() != 0 {
		t.Errorf("Reset velocity = %v", e.Velocity())
	}
}

func TestEKFZeroDTPredictNoOp(t *testing.T) {
	e := New(DefaultConfig())
	before := e.Position()
	e.Predict(mathx.V3(1, 1, 1), mathx.V3(1, 1, 1), 0)
	if e.Position() != before {
		t.Error("zero-dt Predict changed state")
	}
}

func TestEKFRegisterVars(t *testing.T) {
	e := New(DefaultConfig())
	set := vars.NewSet()
	if err := e.RegisterVars(set); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"EKF1.Roll", "EKF1.VN", "EKF1.PD", "NKF4.IPos"} {
		if _, ok := set.Lookup(name); !ok {
			t.Errorf("missing %s", name)
		}
	}
	e.Predict(mathx.V3(0.5, 0, 0), mathx.V3(0, 0, -gravity), 0.1)
	ref, _ := set.Lookup("EKF1.Roll")
	roll, _, _ := e.Attitude()
	if ref.Get() != roll {
		t.Errorf("EKF1.Roll var %v != attitude %v", ref.Get(), roll)
	}
}

// TestEKFTracksSimulatedFlight closes the loop: the EKF consuming noisy
// sensors from a simulated flight must track true attitude and position.
// This is the property the SAVIOR monitor depends on.
func TestEKFTracksSimulatedFlight(t *testing.T) {
	quad, err := sim.NewQuad(sim.IRISPlusParams(), sim.WithInitialState(sim.State{
		Pos: mathx.V3(0, 0, -10),
		Att: mathx.QuatIdentity(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	suite := sensors.NewSuite(sensors.DefaultConfig())
	e := New(DefaultConfig())
	e.Reset(mathx.V3(0, 0, -10), 0)

	hover := quad.Params.HoverThrottle()
	s := quad.State()
	s.Motor = [4]float64{hover, hover, hover, hover}
	quad.SetState(s)

	att := control.NewAttitudeController(control.DefaultAttitudeConfig(dt))
	pos := control.NewPositionController(control.DefaultPositionConfig(dt, hover))
	var mix control.Mixer

	var maxRollErr, maxPosErr float64
	for i := 0; i < 10*400; i++ {
		// Closed-loop hover with a mild periodic roll excitation to keep
		// the flight dynamic.
		st := quad.State()
		trueR, trueP, trueY := st.Euler()
		_, _, thr := pos.Update(mathx.V3(0, 0, -10), st.Pos, st.Vel, trueY)
		wobble := mathx.Rad(3) * math.Sin(float64(i)*dt*2*math.Pi*0.5)
		tr, tp, ty := att.Update(wobble, 0, 0, trueR, trueP, trueY, st.Omega)
		quad.Step(mix.Mix(thr, tr, tp, ty), dt)
		r := suite.Sample(quad.Time(), quad.State(), quad.LastAccel(), quad.Battery())
		e.Predict(r.IMU.Gyro, r.IMU.Accel, dt)
		e.FuseGravity(r.IMU.Accel)
		if i%25 == 0 { // 16 Hz aiding
			e.FuseBaro(r.BaroAlt)
			e.FuseMag(r.MagYaw)
		}
		if r.GPSFresh {
			e.FuseGPS(r.GPS.Pos, r.GPS.Vel)
		}
		trueRoll, _, _ := quad.State().Euler()
		estRoll, _, _ := e.Attitude()
		if d := math.Abs(mathx.WrapPi(trueRoll - estRoll)); d > maxRollErr {
			maxRollErr = d
		}
		if d := e.Position().Dist(quad.State().Pos); d > maxPosErr {
			maxPosErr = d
		}
	}
	if maxRollErr > mathx.Rad(5) {
		t.Errorf("max roll error %.2f deg, want < 5", mathx.Deg(maxRollErr))
	}
	if maxPosErr > 3 {
		t.Errorf("max position error %.2f m, want < 3", maxPosErr)
	}
}
