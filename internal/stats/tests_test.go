package stats

import (
	"math"
	"math/rand"
	"testing"
)

func gaussian(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestJarqueBeraAcceptsGaussian(t *testing.T) {
	_, p := JarqueBera(gaussian(5000, 11))
	if p < 0.01 {
		t.Errorf("JB rejected Gaussian data: p = %v", p)
	}
}

func TestJarqueBeraRejectsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) // log-normal, heavily skewed
	}
	_, p := JarqueBera(xs)
	if p > 1e-6 {
		t.Errorf("JB accepted log-normal data: p = %v", p)
	}
}

func TestJarqueBeraSmallSample(t *testing.T) {
	if s, p := JarqueBera([]float64{1, 2, 3}); !math.IsNaN(s) || !math.IsNaN(p) {
		t.Error("small sample did not return NaN")
	}
}

func TestRunsTestAcceptsIID(t *testing.T) {
	_, p := RunsTest(gaussian(5000, 13))
	if p < 0.01 {
		t.Errorf("runs test rejected iid data: p = %v", p)
	}
}

func TestRunsTestRejectsTrend(t *testing.T) {
	// A monotone ramp has exactly 2 runs about its median.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	z, p := RunsTest(xs)
	if p > 1e-10 {
		t.Errorf("runs test accepted a ramp: z=%v p=%v", z, p)
	}
}

func TestRunsTestRejectsAlternating(t *testing.T) {
	// Perfect alternation has the maximum number of runs — also not iid.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	_, p := RunsTest(xs)
	if p > 1e-10 {
		t.Errorf("runs test accepted alternation: p = %v", p)
	}
}

func TestRunsTestDegenerate(t *testing.T) {
	if _, p := RunsTest([]float64{1, 2}); !math.IsNaN(p) {
		t.Error("tiny sample did not return NaN")
	}
	// All-equal series: every value ties the median.
	xs := make([]float64, 100)
	if _, p := RunsTest(xs); !math.IsNaN(p) {
		t.Error("constant series did not return NaN")
	}
}

func TestPruneStateVars(t *testing.T) {
	n := 2000
	rng := rand.New(rand.NewSource(14))
	gauss := make([]float64, n) // integrated noise: increments iid normal
	constant := make([]float64, n)
	ramp := make([]float64, n)    // constant increments
	skewInc := make([]float64, n) // wildly non-normal increments
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += rng.NormFloat64()
		gauss[i] = acc
		constant[i] = 3.14
		ramp[i] = float64(i) * 0.5
		if i > 0 {
			skewInc[i] = skewInc[i-1] + math.Exp(rng.NormFloat64()*3)
		}
	}
	names := []string{"v.gauss", "v.const", "v.ramp", "v.skew"}
	res := PruneStateVars(names, [][]float64{gauss, constant, ramp, skewInc},
		DefaultPruneOptions())
	want := map[string]bool{
		"v.gauss": true,
		"v.const": false,
		"v.ramp":  false, // constant increments
		"v.skew":  false, // non-normal increments
	}
	for _, r := range res {
		if r.Kept != want[r.Name] {
			t.Errorf("%s kept=%v (%s), want %v", r.Name, r.Kept, r.Reason, want[r.Name])
		}
		if !r.Kept && r.Reason == "" {
			t.Errorf("%s pruned without a reason", r.Name)
		}
	}
}

func TestPruneStateVarsTooFew(t *testing.T) {
	res := PruneStateVars([]string{"x"}, [][]float64{{1, 2, 3}}, DefaultPruneOptions())
	if res[0].Kept || res[0].Reason != "too few samples" {
		t.Errorf("short series: %+v", res[0])
	}
}

func TestMedian(t *testing.T) {
	approx(t, "odd", median([]float64{3, 1, 2}), 2, 1e-12)
	approx(t, "even", median([]float64{4, 1, 3, 2}), 2.5, 1e-12)
}
