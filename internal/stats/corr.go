package stats

import (
	"math"

	"github.com/ares-cps/ares/internal/par"
)

// CorrelationMatrix computes the pairwise Pearson matrix for the given
// series (rows are variables). Series must share a common length. It is
// CorrelationMatrixWorkers at the process-default worker count.
func CorrelationMatrix(series [][]float64) [][]float64 {
	return CorrelationMatrixWorkers(series, 0)
}

// stdSeries is one standardized input series: mean-centered, scaled to
// unit Euclidean norm, so the Pearson coefficient of two series is the dot
// product of their standardized forms.
type stdSeries struct {
	z []float64
	// constant marks a zero-variance series; Pearson defines r = 0 for it
	// (no linear relationship measurable), taking precedence over NaNs in
	// the partner series.
	constant bool
	// short marks a series with fewer than two samples; every pairing is
	// NaN, exactly as Pearson reports it.
	short bool
}

// CorrelationMatrixWorkers is the single-pass Algorithm 1 correlation
// kernel. The naive formulation recomputes means and variances for every
// variable pair — O(V²·T) redundant passes. This kernel standardizes each
// series exactly once (mean and inverse centered norm, O(V·T)), then fills
// the matrix with plain dot products, fanned out over rows on a bounded
// worker pool. Every cell is a pure function of the standardized inputs and
// is written to its own slot, so the result is bit-identical at any worker
// count. workers <= 0 uses the process budget (GOMAXPROCS).
func CorrelationMatrixWorkers(series [][]float64, workers int) [][]float64 {
	n := len(series)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	if n < 2 {
		return m
	}

	std := make([]stdSeries, n)
	par.Do(workers, n, func(i int) {
		std[i] = standardize(series[i])
	})

	// Row fan-out over the upper triangle. Rows shrink as i grows; the
	// dynamic index feed of par.Do keeps workers busy regardless.
	par.Do(workers, n-1, func(i int) {
		si := std[i]
		ni := len(series[i])
		for j := i + 1; j < n; j++ {
			r := corrCell(si, std[j], ni, len(series[j]))
			m[i][j], m[j][i] = r, r
		}
	})
	return m
}

// standardize mean-centers one series and scales it by the inverse of its
// centered norm. Constant and too-short series are flagged instead of
// scaled so corrCell can reproduce Pearson's edge-case contract.
func standardize(xs []float64) stdSeries {
	if len(xs) < 2 {
		return stdSeries{short: true}
	}
	mean := Mean(xs)
	z := make([]float64, len(xs))
	ss := 0.0
	for k, x := range xs {
		d := x - mean
		z[k] = d
		ss += d * d
	}
	if ss == 0 {
		return stdSeries{constant: true}
	}
	inv := 1 / math.Sqrt(ss)
	for k := range z {
		z[k] *= inv
	}
	return stdSeries{z: z}
}

// corrCell reproduces Pearson's contract for one pair: NaN for mismatched
// or too-short series, 0 when either side is constant, else the dot product
// of the standardized series.
func corrCell(a, b stdSeries, lenA, lenB int) float64 {
	if a.short || b.short || lenA != lenB {
		return math.NaN()
	}
	if a.constant || b.constant {
		return 0
	}
	return dot(a.z, b.z)
}

// dot is the kernel's inner product, unrolled into four independent
// accumulators so the floating-point adds pipeline instead of serializing
// on one dependency chain (~3× on the V=128 benchmark). The summation
// order is fixed, so results stay bit-identical at any worker count.
func dot(a, b []float64) float64 {
	b = b[:len(a)] // one bounds check, then the loop elides them
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}
