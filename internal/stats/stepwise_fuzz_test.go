package stats

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzStepwiseGramVsQR drives randomized well-conditioned selection
// problems through both the Gram-kernel path and the retired per-candidate
// QR search and requires identical selections: same predictor set in the
// same order, same step and fit counts, final AIC within 1e-9. CI runs
// this for a short wall-clock budget on every push; the committed corpus
// keeps the discovered shapes replaying as ordinary tests.
func FuzzStepwiseGramVsQR(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(80), uint8(2))
	f.Add(int64(2), uint8(8), uint8(200), uint8(0))
	f.Add(int64(3), uint8(2), uint8(30), uint8(1))
	f.Add(int64(4), uint8(7), uint8(120), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, vRaw, nRaw, signalRaw uint8) {
		v := 2 + int(vRaw)%7 // 2..8 predictors
		n := 40 + int(nRaw)  // 40..295 samples
		signal := int(signalRaw) % (v + 1)
		rng := rand.New(rand.NewSource(seed))
		preds := make(map[string][]float64, v)
		names := make([]string, v)
		for i := 0; i < v; i++ {
			xs := make([]float64, n)
			for j := range xs {
				xs[j] = rng.NormFloat64()
			}
			names[i] = string(rune('a' + i))
			preds[names[i]] = xs
		}
		y := make([]float64, n)
		for j := range y {
			y[j] = rng.NormFloat64()
			for s := 0; s < signal; s++ {
				y[j] += (0.3 + float64(s)) * preds[names[s]][j]
			}
		}

		oracle := stepwiseAICQR(y, preds)
		for _, workers := range []int{1, 3} {
			got := StepwiseAICWorkers(y, preds, workers)
			if len(got.Selected) != len(oracle.Selected) {
				t.Fatalf("w=%d: selected %v, oracle %v", workers, got.Selected, oracle.Selected)
			}
			for i := range oracle.Selected {
				if got.Selected[i] != oracle.Selected[i] {
					t.Fatalf("w=%d: selected %v, oracle %v", workers, got.Selected, oracle.Selected)
				}
			}
			if got.Steps != oracle.Steps || got.ModelsFitted != oracle.ModelsFitted {
				t.Fatalf("w=%d: steps/fitted %d/%d, oracle %d/%d",
					workers, got.Steps, got.ModelsFitted, oracle.Steps, oracle.ModelsFitted)
			}
			if (got.Model == nil) != (oracle.Model == nil) {
				t.Fatalf("w=%d: model nil mismatch", workers)
			}
			if got.Model != nil && math.Abs(got.Model.AIC-oracle.Model.AIC) > 1e-9 {
				t.Fatalf("w=%d: AIC %v, oracle %v", workers, got.Model.AIC, oracle.Model.AIC)
			}
		}
	})
}
