package stats

import (
	"math"
	"math/rand"
	"testing"
)

// gramProblem builds a random well-conditioned selection problem: v iid
// normal predictors, y driven by the first `signal` of them plus noise.
func gramProblem(seed int64, v, n, signal int) ([]float64, map[string][]float64) {
	rng := rand.New(rand.NewSource(seed))
	preds := make(map[string][]float64, v)
	names := make([]string, v)
	for i := 0; i < v; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.NormFloat64()
		}
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		preds[names[i]] = xs
	}
	y := make([]float64, n)
	for j := range y {
		y[j] = rng.NormFloat64()
		for s := 0; s < signal && s < v; s++ {
			y[j] += float64(s+1) * 0.5 * preds[names[s]][j]
		}
	}
	return y, preds
}

// requireSameSelection asserts the Gram-path result matches the QR oracle:
// identical predictor set in the same order, same search cost, and a final
// AIC within 1e-9.
func requireSameSelection(t *testing.T, tag string, got, want *StepwiseResult) {
	t.Helper()
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("%s: selected %v, oracle %v", tag, got.Selected, want.Selected)
	}
	for i := range want.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("%s: selected %v, oracle %v", tag, got.Selected, want.Selected)
		}
	}
	if got.Steps != want.Steps || got.ModelsFitted != want.ModelsFitted {
		t.Fatalf("%s: steps/fitted %d/%d, oracle %d/%d",
			tag, got.Steps, got.ModelsFitted, want.Steps, want.ModelsFitted)
	}
	if (got.Model == nil) != (want.Model == nil) {
		t.Fatalf("%s: model nil mismatch", tag)
	}
	if got.Model != nil {
		if math.Abs(got.Model.AIC-want.Model.AIC) > 1e-9 {
			t.Fatalf("%s: AIC %v, oracle %v", tag, got.Model.AIC, want.Model.AIC)
		}
		// Both final models come from the same QR fit of the same
		// columns, so every coefficient statistic is bit-identical.
		for i := range want.Model.Coef {
			if got.Model.Coef[i] != want.Model.Coef[i] ||
				got.Model.PValue[i] != want.Model.PValue[i] {
				t.Fatalf("%s: coefficient stats diverged at %d", tag, i)
			}
		}
	}
}

// TestStepwiseGramMatchesQR: on random well-conditioned designs the Gram
// path selects the identical model as the retired per-candidate-QR search,
// at 1, 2 and 8 workers.
func TestStepwiseGramMatchesQR(t *testing.T) {
	cases := []struct {
		seed         int64
		v, n, signal int
	}{
		{51, 4, 100, 2},
		{52, 8, 250, 3},
		{53, 12, 400, 5},
		{54, 16, 300, 0}, // pure noise: AIC may pick junk, paths must agree
		{55, 10, 64, 4},  // short sample
	}
	for _, c := range cases {
		y, preds := gramProblem(c.seed, c.v, c.n, c.signal)
		oracle := stepwiseAICQR(y, preds)
		for _, workers := range []int{1, 2, 8} {
			got := StepwiseAICWorkers(y, preds, workers)
			requireSameSelection(t, "stepwise", got, oracle)
		}
	}
}

// TestExhaustiveGramMatchesQR: same contract for the exhaustive sweep.
func TestExhaustiveGramMatchesQR(t *testing.T) {
	for _, c := range []struct {
		seed         int64
		v, n, signal int
	}{
		{61, 3, 120, 1},
		{62, 6, 200, 2},
		{63, 7, 90, 0},
	} {
		y, preds := gramProblem(c.seed, c.v, c.n, c.signal)
		oracle := exhaustiveAICQR(y, preds)
		for _, workers := range []int{1, 2, 8} {
			got := ExhaustiveAICWorkers(y, preds, workers)
			requireSameSelection(t, "exhaustive", got, oracle)
		}
	}
}

// TestStepwiseWorkersBitIdentical: the parallel candidate sweep is not just
// equivalent but bit-identical across worker counts — the disjoint-slot
// Gram build and the fixed-order argmin scan admit no accumulation-order
// variation.
func TestStepwiseWorkersBitIdentical(t *testing.T) {
	y, preds := gramProblem(71, 14, 350, 6)
	base := StepwiseAICWorkers(y, preds, 1)
	for _, workers := range []int{2, 3, 8, 32} {
		got := StepwiseAICWorkers(y, preds, workers)
		if len(got.Selected) != len(base.Selected) {
			t.Fatalf("w=%d: selected %v vs %v", workers, got.Selected, base.Selected)
		}
		for i := range base.Selected {
			if got.Selected[i] != base.Selected[i] {
				t.Fatalf("w=%d: selected %v vs %v", workers, got.Selected, base.Selected)
			}
		}
		if got.Model == nil || base.Model == nil {
			t.Fatal("missing model")
		}
		if math.Float64bits(got.Model.AIC) != math.Float64bits(base.Model.AIC) {
			t.Fatalf("w=%d: AIC bits differ: %v vs %v", workers, got.Model.AIC, base.Model.AIC)
		}
	}
}

// TestStepwiseGramRankDeficiency: collinear and constant columns must
// behave exactly as under the QR path — the Cholesky conditioning test
// hands them to the oracle, which rejects them, and the search never
// selects them.
func TestStepwiseGramRankDeficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 200
	x := make([]float64, n)
	dup := make([]float64, n)
	cst := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		dup[i] = 2 * x[i] // exactly collinear with x
		cst[i] = 7        // collinear with the intercept
		y[i] = 3*x[i] + rng.NormFloat64()
	}
	preds := map[string][]float64{"x": x, "dup": dup, "konst": cst}
	oracle := stepwiseAICQR(y, preds)
	got := StepwiseAICWorkers(y, preds, 2)
	requireSameSelection(t, "rank-deficient", got, oracle)
	for _, s := range got.Selected {
		if s == "konst" {
			t.Fatalf("constant column selected: %v", got.Selected)
		}
	}
}

// TestStepwiseGramMismatchedPredictor: a predictor series of the wrong
// length is unfittable for every candidate containing it, exactly as the
// QR path reports it, without disturbing the rest of the search.
func TestStepwiseGramMismatchedPredictor(t *testing.T) {
	y, preds := gramProblem(91, 5, 150, 2)
	preds["zz"] = make([]float64, 10) // wrong length
	oracle := stepwiseAICQR(y, preds)
	got := StepwiseAICWorkers(y, preds, 2)
	requireSameSelection(t, "mismatched", got, oracle)
	for _, s := range got.Selected {
		if s == "zz" {
			t.Fatalf("mismatched column selected: %v", got.Selected)
		}
	}
}

// TestGramKernelEntries: G = ZᵀZ entries match direct dot products over
// [1 | X | y], at any worker count.
func TestGramKernelEntries(t *testing.T) {
	y, preds := gramProblem(101, 4, 60, 2)
	names := sortedPredictorNames(preds)
	cols := make([][]float64, len(names))
	for i, n := range names {
		cols[i] = preds[n]
	}
	z := append([][]float64{ones(len(y))}, cols...)
	z = append(z, y)
	for _, workers := range []int{1, 4} {
		k := newGramKernel(y, names, cols, workers)
		for i := range z {
			for j := range z {
				want := 0.0
				for s := range y {
					want += z[i][s] * z[j][s]
				}
				if math.Abs(k.g[i][j]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("w=%d: G[%d][%d] = %v, want %v", workers, i, j, k.g[i][j], want)
				}
			}
		}
	}
}

func ones(n int) []float64 {
	o := make([]float64, n)
	for i := range o {
		o[i] = 1
	}
	return o
}

// TestStepwiseGramAllocsBounded pins the kernel's allocation contract: a
// whole stepwise search allocates less than one allocation per candidate
// model evaluated — the per-candidate hot path (sub-Gram assembly,
// Cholesky, solve) runs entirely on preallocated scratch. The retired QR
// path allocated O(k·n) per candidate.
func TestStepwiseGramAllocsBounded(t *testing.T) {
	y, preds := gramProblem(111, 16, 500, 8)
	res := StepwiseAICWorkers(y, preds, 1)
	if res.ModelsFitted < 100 {
		t.Fatalf("weak workload: only %d candidates fitted", res.ModelsFitted)
	}
	allocs := testing.AllocsPerRun(5, func() {
		StepwiseAICWorkers(y, preds, 1)
	})
	if allocs >= float64(res.ModelsFitted) {
		t.Errorf("allocs/run = %v for %d candidate fits — per-candidate allocation crept back in",
			allocs, res.ModelsFitted)
	}
	if allocs > 250 {
		t.Errorf("allocs/run = %v, want ≤ 250 (setup + final refit only)", allocs)
	}
}
