package stats

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSeries builds V correlated random series of length T, the shape of
// a profiled ESVL (Table II's PID group is V=64 over ~3000 samples).
func benchSeries(v, t int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, t)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	series := make([][]float64, v)
	for i := range series {
		s := make([]float64, t)
		w := rng.Float64()
		for j := range s {
			s[j] = rng.NormFloat64() + w*base[j]
		}
		series[i] = s
	}
	return series
}

// BenchmarkCorrelationMatrix measures the single-pass standardize-then-dot
// kernel at the paper's roll-analysis scale (V=24…128) across worker
// counts. Compare against BenchmarkCorrelationMatrixNaive (the seed
// per-pair implementation) for the kernel speedup, and across /wN variants
// for parallel scaling.
func BenchmarkCorrelationMatrix(b *testing.B) {
	for _, v := range []int{32, 128} {
		series := benchSeries(v, 2000)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("V=%d/w%d", v, workers), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					CorrelationMatrixWorkers(series, workers)
				}
			})
		}
	}
}

// BenchmarkCorrelationMatrixNaive is the seed implementation (per-pair
// Pearson, O(V²·T) redundant mean/variance passes), kept as the regression
// baseline the kernel's ≥2× claim is measured against.
func BenchmarkCorrelationMatrixNaive(b *testing.B) {
	for _, v := range []int{32, 128} {
		series := benchSeries(v, 2000)
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pearsonMatrixNaive(series)
			}
		})
	}
}

// BenchmarkPruneStateVars measures the assumption-check stage (difference,
// Jarque-Bera, runs test per variable) at ESVL scale.
func BenchmarkPruneStateVars(b *testing.B) {
	series := benchSeries(64, 2000)
	names := make([]string, len(series))
	for i := range names {
		names[i] = fmt.Sprintf("v%02d", i)
	}
	opts := DefaultPruneOptions()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("V=64/w%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				PruneStateVarsWorkers(names, series, opts, workers)
			}
		})
	}
}

// BenchmarkGenerateTSVL runs the whole Algorithm 1 (prune → correlate →
// cluster → stepwise AIC) on a synthetic 32-variable ESVL.
func BenchmarkGenerateTSVL(b *testing.B) {
	series := benchSeries(32, 1500)
	names := make([]string, len(series))
	for i := range names {
		names[i] = fmt.Sprintf("v%02d", i)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("V=32/w%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := GenerateTSVL(TSVLInput{
					Names:       names,
					Series:      series,
					Responses:   []string{"v00", "v07"},
					Parallelism: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(rep.ModelsFitted), "models-fitted")
				}
			}
		})
	}
}
