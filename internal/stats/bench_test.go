package stats

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSeries builds V correlated random series of length T, the shape of
// a profiled ESVL (Table II's PID group is V=64 over ~3000 samples).
func benchSeries(v, t int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, t)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	series := make([][]float64, v)
	for i := range series {
		s := make([]float64, t)
		w := rng.Float64()
		for j := range s {
			s[j] = rng.NormFloat64() + w*base[j]
		}
		series[i] = s
	}
	return series
}

// BenchmarkCorrelationMatrix measures the single-pass standardize-then-dot
// kernel at the paper's roll-analysis scale (V=24…128) across worker
// counts. Compare against BenchmarkCorrelationMatrixNaive (the seed
// per-pair implementation) for the kernel speedup, and across /wN variants
// for parallel scaling.
func BenchmarkCorrelationMatrix(b *testing.B) {
	for _, v := range []int{32, 128} {
		series := benchSeries(v, 2000)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("V=%d/w%d", v, workers), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					CorrelationMatrixWorkers(series, workers)
				}
			})
		}
	}
}

// BenchmarkCorrelationMatrixNaive is the seed implementation (per-pair
// Pearson, O(V²·T) redundant mean/variance passes), kept as the regression
// baseline the kernel's ≥2× claim is measured against.
func BenchmarkCorrelationMatrixNaive(b *testing.B) {
	for _, v := range []int{32, 128} {
		series := benchSeries(v, 2000)
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pearsonMatrixNaive(series)
			}
		})
	}
}

// BenchmarkOLS measures one QR least-squares fit at stepwise-candidate
// shape. The Gram kernel exists to take this cost out of the candidate
// loop; this benchmark is the per-fit price it avoids.
func BenchmarkOLS(b *testing.B) {
	for _, c := range []struct{ k, n int }{{4, 500}, {8, 2000}} {
		y, preds := gramProblem(7, c.k, c.n, c.k/2)
		names := sortedPredictorNames(preds)
		cols := make([][]float64, len(names))
		for i, nm := range names {
			cols[i] = preds[nm]
		}
		b.Run(fmt.Sprintf("k=%d/n=%d", c.k, c.n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := OLS(y, cols, names); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStepwiseAICSelection compares the retired per-candidate-QR
// search (qr) against the Gram-kernel search (gram) at the paper's
// regression scales. The acceptance target for this PR is gram ≥3× qr at
// V=64, n=2000; worker variants show the deterministic parallel sweep.
func BenchmarkStepwiseAICSelection(b *testing.B) {
	for _, c := range []struct{ v, n int }{{16, 500}, {16, 2000}, {64, 500}, {64, 2000}} {
		y, preds := gramProblem(int64(c.v*10000+c.n), c.v, c.n, c.v/4)
		b.Run(fmt.Sprintf("qr/V=%d/n=%d", c.v, c.n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stepwiseAICQR(y, preds)
			}
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("gram/V=%d/n=%d/w%d", c.v, c.n, workers), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					StepwiseAICWorkers(y, preds, workers)
				}
			})
		}
	}
}

// BenchmarkExhaustiveAICSelection: the 2^V sweep over a small predictor
// pool, where the O(k³)-per-candidate Gram fit dominates end-to-end cost.
func BenchmarkExhaustiveAICSelection(b *testing.B) {
	y, preds := gramProblem(13, 10, 500, 3)
	b.Run("qr/V=10/n=500", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			exhaustiveAICQR(y, preds)
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("gram/V=10/n=500/w%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ExhaustiveAICWorkers(y, preds, workers)
			}
		})
	}
}

// BenchmarkPruneStateVars measures the assumption-check stage (difference,
// Jarque-Bera, runs test per variable) at ESVL scale.
func BenchmarkPruneStateVars(b *testing.B) {
	series := benchSeries(64, 2000)
	names := make([]string, len(series))
	for i := range names {
		names[i] = fmt.Sprintf("v%02d", i)
	}
	opts := DefaultPruneOptions()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("V=64/w%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				PruneStateVarsWorkers(names, series, opts, workers)
			}
		})
	}
}

// BenchmarkGenerateTSVL runs the whole Algorithm 1 (prune → correlate →
// cluster → stepwise AIC) on a synthetic 32-variable ESVL.
func BenchmarkGenerateTSVL(b *testing.B) {
	series := benchSeries(32, 1500)
	names := make([]string, len(series))
	for i := range names {
		names[i] = fmt.Sprintf("v%02d", i)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("V=32/w%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := GenerateTSVL(TSVLInput{
					Names:       names,
					Series:      series,
					Responses:   []string{"v00", "v07"},
					Parallelism: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(rep.ModelsFitted), "models-fitted")
				}
			}
		})
	}
}
