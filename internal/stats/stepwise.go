package stats

import (
	"math"
	"sort"
)

// StepwiseResult reports the model chosen by stepwise AIC selection.
type StepwiseResult struct {
	// Model is the final fitted regression (nil when nothing beat the
	// intercept-only model).
	Model *OLSResult
	// Selected lists the chosen predictor names in selection order.
	Selected []string
	// Steps counts how many add/remove moves the search made.
	Steps int
	// ModelsFitted counts all candidate regressions evaluated (the cost
	// metric for the clustering ablation).
	ModelsFitted int
}

// StepwiseAIC performs bidirectional stepwise model selection: starting
// from the intercept-only model, it repeatedly applies the single add-or-
// remove move that lowers AIC most, stopping at a local optimum. This is
// Algorithm 1's STEPWISEAIC.
func StepwiseAIC(y []float64, predictors map[string][]float64) *StepwiseResult {
	res := &StepwiseResult{}
	// Candidates are walked in sorted order so AIC ties resolve
	// deterministically (map iteration order would make the selected
	// model run-dependent).
	candidates := sortedPredictorNames(predictors)

	// Intercept-only AIC baseline.
	currentAIC := interceptOnlyAIC(y)
	var selected []string

	fit := func(names []string) *OLSResult {
		cols := make([][]float64, len(names))
		for i, n := range names {
			cols[i] = predictors[n]
		}
		res.ModelsFitted++
		m, err := OLS(y, cols, names)
		if err != nil {
			return nil
		}
		return m
	}

	var currentModel *OLSResult
	for {
		bestAIC := currentAIC
		bestNames := selected
		var bestModel *OLSResult

		// Try adding each remaining predictor.
		for _, name := range candidates {
			if contains(selected, name) {
				continue
			}
			cand := append(append([]string{}, selected...), name)
			if m := fit(cand); m != nil && m.AIC < bestAIC-1e-9 {
				bestAIC = m.AIC
				bestNames = cand
				bestModel = m
			}
		}
		// Try removing each selected predictor.
		for i := range selected {
			cand := make([]string, 0, len(selected)-1)
			cand = append(cand, selected[:i]...)
			cand = append(cand, selected[i+1:]...)
			if len(cand) == 0 {
				if a := interceptOnlyAIC(y); a < bestAIC-1e-9 {
					bestAIC = a
					bestNames = nil
					bestModel = nil
				}
				continue
			}
			if m := fit(cand); m != nil && m.AIC < bestAIC-1e-9 {
				bestAIC = m.AIC
				bestNames = cand
				bestModel = m
			}
		}

		if bestAIC >= currentAIC-1e-9 {
			break // local optimum
		}
		currentAIC = bestAIC
		selected = bestNames
		currentModel = bestModel
		res.Steps++
	}
	res.Model = currentModel
	res.Selected = selected
	return res
}

// ExhaustiveAIC fits every non-empty subset of predictors and returns the
// AIC-optimal model. Exponential in predictor count; it exists as the
// baseline for the stepwise-selection ablation bench.
func ExhaustiveAIC(y []float64, predictors map[string][]float64) *StepwiseResult {
	res := &StepwiseResult{}
	names := sortedPredictorNames(predictors)
	bestAIC := interceptOnlyAIC(y)
	var bestModel *OLSResult
	var bestNames []string
	total := 1 << len(names)
	for mask := 1; mask < total; mask++ {
		var cand []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				cand = append(cand, n)
			}
		}
		cols := make([][]float64, len(cand))
		for i, n := range cand {
			cols[i] = predictors[n]
		}
		res.ModelsFitted++
		m, err := OLS(y, cols, cand)
		if err != nil {
			continue
		}
		if m.AIC < bestAIC {
			bestAIC = m.AIC
			bestModel = m
			bestNames = cand
		}
	}
	res.Model = bestModel
	res.Selected = bestNames
	return res
}

// interceptOnlyAIC computes the AIC of the mean-only model.
func interceptOnlyAIC(y []float64) float64 {
	n := float64(len(y))
	if n < 2 {
		return math.Inf(1)
	}
	m := Mean(y)
	rss := 0.0
	for _, v := range y {
		d := v - m
		rss += d * d
	}
	if rss <= 0 {
		return math.Inf(-1)
	}
	logLik := -n/2*(math.Log(2*math.Pi)+math.Log(rss/n)) - n/2
	return 2*2 - 2*logLik // intercept + variance
}

func sortedPredictorNames(predictors map[string][]float64) []string {
	names := make([]string, 0, len(predictors))
	for k := range predictors {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
