package stats

import (
	"math"
	"sort"

	"github.com/ares-cps/ares/internal/par"
)

// StepwiseResult reports the model chosen by stepwise AIC selection.
type StepwiseResult struct {
	// Model is the final fitted regression (nil when nothing beat the
	// intercept-only model).
	Model *OLSResult
	// Selected lists the chosen predictor names in selection order.
	Selected []string
	// Steps counts how many add/remove moves the search made.
	Steps int
	// ModelsFitted counts all candidate regressions evaluated (the cost
	// metric for the clustering ablation).
	ModelsFitted int
}

// StepwiseAIC performs bidirectional stepwise model selection: starting
// from the intercept-only model, it repeatedly applies the single add-or-
// remove move that lowers AIC most, stopping at a local optimum. This is
// Algorithm 1's STEPWISEAIC. It runs single-threaded; callers with a
// concurrency budget use StepwiseAICWorkers, which returns bit-identical
// results at any worker count.
func StepwiseAIC(y []float64, predictors map[string][]float64) *StepwiseResult {
	return StepwiseAICWorkers(y, predictors, 1)
}

// StepwiseAICWorkers is StepwiseAIC on the Gram kernel with the per-step
// add/remove candidate sweep fanned out over up to `workers` goroutines.
// Candidate AICs land in per-move slots and the winning move is chosen by
// a fixed-order scan over them, so the selected model — and every
// AIC-comparison tie — is identical at any worker count. workers <= 0 uses
// the process budget (GOMAXPROCS).
func StepwiseAICWorkers(y []float64, predictors map[string][]float64, workers int) *StepwiseResult {
	res := &StepwiseResult{}
	// Candidates are walked in sorted order so AIC ties resolve
	// deterministically (map iteration order would make the selected
	// model run-dependent).
	names := sortedPredictorNames(predictors)
	v := len(names)
	cols := make([][]float64, v)
	for i, n := range names {
		cols[i] = predictors[n]
	}
	workers = par.Workers(workers)
	kern := newGramKernel(y, names, cols, workers)

	scratch := make([]*gramScratch, workers)
	for i := range scratch {
		scratch[i] = newGramScratch(v)
	}

	interceptAIC := interceptOnlyAIC(y)
	currentAIC := interceptAIC
	var selected []int
	selMask := make([]bool, v)

	moves := make([]activeSet, 0, v)
	aics := make([]float64, v+1)
	oks := make([]bool, v+1)

	for {
		// The move set of one step: add each remaining predictor (in
		// candidate order), then remove each selected one (in selection
		// order) — the exact order the sequential search walked, so the
		// slot scan below reproduces its tie-breaking bit for bit.
		moves = moves[:0]
		for p := 0; p < v; p++ {
			if !selMask[p] {
				moves = append(moves, activeSet{sel: selected, add: p, omit: -1})
			}
		}
		for i := range selected {
			moves = append(moves, activeSet{sel: selected, add: -1, omit: i})
		}
		if len(moves) == 0 {
			break
		}
		if len(moves) > len(aics) {
			aics = make([]float64, len(moves))
			oks = make([]bool, len(moves))
		}

		par.Chunks(workers, len(moves), func(w, lo, hi int) {
			sc := scratch[w]
			for i := lo; i < hi; i++ {
				if moves[i].size() == 0 {
					// Removing the last predictor falls back to the
					// intercept-only model — a closed form, not a fit.
					aics[i], oks[i] = interceptAIC, true
					continue
				}
				aics[i], oks[i] = kern.evalAIC(moves[i], sc)
			}
		})
		for i := range moves {
			if moves[i].size() > 0 {
				res.ModelsFitted++
			}
		}

		best := -1
		bestAIC := currentAIC
		for i := range moves {
			if oks[i] && aics[i] < bestAIC-1e-9 {
				bestAIC = aics[i]
				best = i
			}
		}
		if best < 0 {
			break // local optimum
		}
		if mv := moves[best]; mv.add >= 0 {
			selMask[mv.add] = true
			selected = append(selected, mv.add)
		} else {
			selMask[selected[mv.omit]] = false
			selected = append(selected[:mv.omit], selected[mv.omit+1:]...)
		}
		currentAIC = bestAIC
		res.Steps++
	}

	if len(selected) > 0 {
		// One QR refit of the winner reproduces the pre-kernel output —
		// coefficients, standard errors, p-values — exactly. It is not a
		// search evaluation, so it does not count toward ModelsFitted.
		nm, cs := kern.materialize(activeSet{sel: selected, add: -1, omit: -1})
		if m, err := OLS(y, cs, nm); err == nil {
			res.Model = m
		}
		res.Selected = nm
	}
	return res
}

// ExhaustiveAIC fits every non-empty subset of predictors and returns the
// AIC-optimal model. Exponential in predictor count; it exists as the
// baseline for the stepwise-selection ablation bench. Single-threaded;
// see ExhaustiveAICWorkers.
func ExhaustiveAIC(y []float64, predictors map[string][]float64) *StepwiseResult {
	return ExhaustiveAICWorkers(y, predictors, 1)
}

// exhaustiveBlock bounds how many subset AICs are reduced per Argmin call,
// so the sweep streams over the 2^V mask space in constant memory.
const exhaustiveBlock = 1 << 14

// ExhaustiveAICWorkers is ExhaustiveAIC on the Gram kernel, sweeping the
// subset masks in ascending-order blocks with a deterministic argmin
// reduction: ties go to the lowest mask, so the selected subset is
// identical at any worker count.
func ExhaustiveAICWorkers(y []float64, predictors map[string][]float64, workers int) *StepwiseResult {
	res := &StepwiseResult{}
	names := sortedPredictorNames(predictors)
	v := len(names)
	cols := make([][]float64, v)
	for i, n := range names {
		cols[i] = predictors[n]
	}
	workers = par.Workers(workers)
	kern := newGramKernel(y, names, cols, workers)

	type exScratch struct {
		sc  *gramScratch
		idx []int
	}
	scratch := make([]exScratch, workers)
	for i := range scratch {
		scratch[i] = exScratch{sc: newGramScratch(v), idx: make([]int, 0, v)}
	}

	bestAIC := interceptOnlyAIC(y)
	bestMask := 0
	total := 1 << v
	for lo := 1; lo < total; lo += exhaustiveBlock {
		hi := lo + exhaustiveBlock
		if hi > total {
			hi = total
		}
		idx, val := par.Argmin(workers, hi-lo, func(w, i int) float64 {
			mask := lo + i
			s := &scratch[w]
			s.idx = s.idx[:0]
			for p := 0; p < v; p++ {
				if mask&(1<<p) != 0 {
					s.idx = append(s.idx, p)
				}
			}
			aic, ok := kern.evalAIC(activeSet{sel: s.idx, add: -1, omit: -1}, s.sc)
			if !ok {
				return math.Inf(1)
			}
			return aic
		})
		// Strict < across ascending blocks keeps the lowest tying mask,
		// matching the sequential scan's first-wins rule.
		if idx >= 0 && val < bestAIC {
			bestAIC = val
			bestMask = lo + idx
		}
	}
	res.ModelsFitted = total - 1

	if bestMask != 0 {
		sel := make([]int, 0, v)
		for p := 0; p < v; p++ {
			if bestMask&(1<<p) != 0 {
				sel = append(sel, p)
			}
		}
		nm, cs := kern.materialize(activeSet{sel: sel, add: -1, omit: -1})
		if m, err := OLS(y, cs, nm); err == nil {
			res.Model = m
		}
		res.Selected = nm
	}
	return res
}

// stepwiseAICQR is the pre-kernel implementation — every candidate refits
// a fresh Householder QR. It is retained verbatim as the numerical oracle
// the Gram path's equivalence suite and benchmarks compare against.
func stepwiseAICQR(y []float64, predictors map[string][]float64) *StepwiseResult {
	res := &StepwiseResult{}
	candidates := sortedPredictorNames(predictors)

	currentAIC := interceptOnlyAIC(y)
	var selected []string

	fit := func(names []string) *OLSResult {
		cols := make([][]float64, len(names))
		for i, n := range names {
			cols[i] = predictors[n]
		}
		res.ModelsFitted++
		m, err := OLS(y, cols, names)
		if err != nil {
			return nil
		}
		return m
	}

	var currentModel *OLSResult
	for {
		bestAIC := currentAIC
		bestNames := selected
		var bestModel *OLSResult

		// Try adding each remaining predictor.
		for _, name := range candidates {
			if contains(selected, name) {
				continue
			}
			cand := append(append([]string{}, selected...), name)
			if m := fit(cand); m != nil && m.AIC < bestAIC-1e-9 {
				bestAIC = m.AIC
				bestNames = cand
				bestModel = m
			}
		}
		// Try removing each selected predictor.
		for i := range selected {
			cand := make([]string, 0, len(selected)-1)
			cand = append(cand, selected[:i]...)
			cand = append(cand, selected[i+1:]...)
			if len(cand) == 0 {
				if a := interceptOnlyAIC(y); a < bestAIC-1e-9 {
					bestAIC = a
					bestNames = nil
					bestModel = nil
				}
				continue
			}
			if m := fit(cand); m != nil && m.AIC < bestAIC-1e-9 {
				bestAIC = m.AIC
				bestNames = cand
				bestModel = m
			}
		}

		if bestAIC >= currentAIC-1e-9 {
			break // local optimum
		}
		currentAIC = bestAIC
		selected = bestNames
		currentModel = bestModel
		res.Steps++
	}
	res.Model = currentModel
	res.Selected = selected
	return res
}

// exhaustiveAICQR is the pre-kernel exhaustive search, retained as the
// oracle for the Gram path's equivalence suite.
func exhaustiveAICQR(y []float64, predictors map[string][]float64) *StepwiseResult {
	res := &StepwiseResult{}
	names := sortedPredictorNames(predictors)
	bestAIC := interceptOnlyAIC(y)
	var bestModel *OLSResult
	var bestNames []string
	total := 1 << len(names)
	for mask := 1; mask < total; mask++ {
		var cand []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				cand = append(cand, n)
			}
		}
		cols := make([][]float64, len(cand))
		for i, n := range cand {
			cols[i] = predictors[n]
		}
		res.ModelsFitted++
		m, err := OLS(y, cols, cand)
		if err != nil {
			continue
		}
		if m.AIC < bestAIC {
			bestAIC = m.AIC
			bestModel = m
			bestNames = cand
		}
	}
	res.Model = bestModel
	res.Selected = bestNames
	return res
}

// interceptOnlyAIC computes the AIC of the mean-only model.
func interceptOnlyAIC(y []float64) float64 {
	n := float64(len(y))
	if n < 2 {
		return math.Inf(1)
	}
	m := Mean(y)
	rss := 0.0
	for _, v := range y {
		d := v - m
		rss += d * d
	}
	if rss <= 0 {
		return math.Inf(-1)
	}
	logLik := -n/2*(math.Log(2*math.Pi)+math.Log(rss/n)) - n/2
	return 2*2 - 2*logLik // intercept + variance
}

func sortedPredictorNames(predictors map[string][]float64) []string {
	names := make([]string, 0, len(predictors))
	for k := range predictors {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
