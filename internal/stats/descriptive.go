package stats

import "math"

// Mean returns the arithmetic mean; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; NaN for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the sample skewness (g1).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the sample excess kurtosis (g2).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// Pearson returns the Pearson correlation coefficient between two
// equal-length series (Equation 1 of the paper). Constant series yield 0
// (no linear relationship measurable).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// IsConstant reports whether a series never deviates from its first value
// by more than tol. Constant intermediates (e.g. the paper's v1 KP, v2 KI,
// v3 KD gains) are pruned before correlation analysis.
func IsConstant(xs []float64, tol float64) bool {
	if len(xs) == 0 {
		return true
	}
	first := xs[0]
	for _, x := range xs {
		if math.Abs(x-first) > tol {
			return false
		}
	}
	return true
}
