package stats

import (
	"math"

	"github.com/ares-cps/ares/internal/par"
)

// gramKernel is the precomputed cross-product kernel behind stepwise and
// exhaustive AIC selection. For the augmented design Z = [1 | X₁…X_V | y]
// it holds G = ZᵀZ, built once per selection call in O(n·V²); every
// candidate model is then fitted from the active sub-Gram by Cholesky in
// O(k³), independent of the sample count — the QR path refits the same
// columns from scratch in O(n·k²) per candidate.
//
// The Gaussian AIC needs only the residual sum of squares, which the
// normal equations expose without residuals: with A·b = c for
// A = XᵀX (intercept included), c = Xᵀy, RSS = yᵀy − bᵀc. All of yᵀy,
// A and c are sub-blocks of G indexed by the active predictor set.
//
// The QR OLS remains the numerical oracle: a candidate whose sub-Gram
// fails the Cholesky conditioning test is refitted by QR (which either
// resolves it or rejects it as rank deficient, exactly as the pre-kernel
// implementation did), and the final selected model is always refitted by
// QR so coefficient standard errors and p-values are bit-identical to the
// old path.
type gramKernel struct {
	g     [][]float64 // (V+2)×(V+2) Gram matrix of [1 | X | y]
	n     int         // sample count
	yi    int         // Z-index of the response column (= V+1)
	bad   []bool      // per-predictor: length mismatch with y
	names []string    // predictor names, sorted
	cols  [][]float64 // predictor columns, aligned with names
	y     []float64
}

// condTol is the relative Cholesky pivot threshold below which a candidate
// is handed to the QR oracle. It is deliberately far more conservative than
// QR's own 1e-10 column-norm cutoff because forming XᵀX squares the
// condition number: borderline designs must be judged by QR, not by a
// half-accurate Cholesky.
const condTol = 1e-12

// newGramKernel builds G on the shared worker pool. Rows fan out over the
// pool and each cell is a fixed-order dot product written to its own slot
// (both triangles from the owning row's goroutine), so G is bit-identical
// at any worker count — the same disjoint-slot scheme as the correlation
// kernel.
func newGramKernel(y []float64, names []string, cols [][]float64, workers int) *gramKernel {
	n := len(y)
	v := len(cols)
	k := &gramKernel{
		n:     n,
		yi:    v + 1,
		bad:   make([]bool, v),
		names: names,
		cols:  cols,
		y:     y,
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	z := make([][]float64, v+2)
	z[0] = ones
	for j, c := range cols {
		if len(c) != n {
			k.bad[j] = true
			c = nil
		}
		z[j+1] = c
	}
	z[v+1] = y

	k.g = make([][]float64, v+2)
	for i := range k.g {
		k.g[i] = make([]float64, v+2)
	}
	par.Do(workers, v+2, func(i int) {
		if z[i] == nil {
			return
		}
		row := k.g[i]
		for j := i; j < v+2; j++ {
			if z[j] == nil {
				continue
			}
			d := dot(z[i], z[j])
			row[j] = d
			k.g[j][i] = d
		}
	})
	return k
}

// gramScratch is the per-worker workspace for candidate fits: one packed
// normal-equation matrix plus solve vectors, sized once for the largest
// possible model so the candidate sweep allocates nothing per fit.
type gramScratch struct {
	a    []float64 // packed m×m working copy, factored in place
	diag []float64 // original diagonal, for the conditioning test
	rhs  []float64 // Xᵀy sub-vector (kept intact through the solve)
	fwd  []float64 // forward-substitution intermediate
	coef []float64
}

func newGramScratch(maxPredictors int) *gramScratch {
	m := maxPredictors + 1 // + intercept
	return &gramScratch{
		a:    make([]float64, m*m),
		diag: make([]float64, m),
		rhs:  make([]float64, m),
		fwd:  make([]float64, m),
		coef: make([]float64, m),
	}
}

// activeSet describes a candidate predictor subset without materializing
// it: the current selection, optionally with one index added (add >= 0)
// or one position omitted (omit >= 0). This is exactly the move set of a
// stepwise sweep, expressed allocation-free.
type activeSet struct {
	sel  []int
	add  int // predictor index to append, or -1
	omit int // position in sel to drop, or -1
}

func (s activeSet) size() int {
	k := len(s.sel)
	if s.add >= 0 {
		k++
	}
	if s.omit >= 0 {
		k--
	}
	return k
}

// forEach visits the active predictor indices in model-column order (the
// order the QR path would receive them in).
func (s activeSet) forEach(fn func(pos, pred int)) {
	pos := 0
	for i, p := range s.sel {
		if i == s.omit {
			continue
		}
		fn(pos, p)
		pos++
	}
	if s.add >= 0 {
		fn(pos, s.add)
	}
}

// fitAIC fits the candidate model by Cholesky on the active sub-Gram and
// returns its AIC. ok=false marks a candidate the QR path would reject up
// front (too few samples, mismatched column) — it is skipped, not retried.
// fallback=true marks an ill-conditioned sub-Gram: the caller must consult
// the QR oracle for this candidate.
func (k *gramKernel) fitAIC(s activeSet, sc *gramScratch) (aic float64, ok, fallback bool) {
	m := s.size() + 1 // + intercept
	if k.n <= m {
		return 0, false, false
	}
	badCol := false
	s.forEach(func(_, p int) {
		if k.bad[p] {
			badCol = true
		}
	})
	if badCol {
		return 0, false, false
	}

	// Assemble the packed normal equations A·b = c from G. Row/col 0 is
	// the intercept; predictor p maps to Z column p+1.
	a, rhs := sc.a[:m*m], sc.rhs[:m]
	a[0] = k.g[0][0]
	rhs[0] = k.g[0][k.yi]
	s.forEach(func(pos, p int) {
		zi := p + 1
		r := pos + 1
		a[r*m] = k.g[zi][0]
		a[r] = k.g[0][zi]
		rhs[r] = k.g[zi][k.yi]
		s.forEach(func(pos2, p2 int) {
			a[r*m+pos2+1] = k.g[zi][p2+1]
		})
	})
	diag := sc.diag[:m]
	for i := 0; i < m; i++ {
		diag[i] = a[i*m+i]
	}

	// In-place Cholesky A = L·Lᵀ (lower triangle), with a relative pivot
	// test against the original diagonal.
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*m+j]
			for t := 0; t < j; t++ {
				sum -= a[i*m+t] * a[j*m+t]
			}
			if i == j {
				if sum <= condTol*diag[i] {
					return 0, true, true
				}
				a[i*m+i] = math.Sqrt(sum)
			} else {
				a[i*m+j] = sum / a[j*m+j]
			}
		}
	}

	// Solve L·fwd = rhs, then Lᵀ·coef = fwd.
	fwd, coef := sc.fwd[:m], sc.coef[:m]
	for i := 0; i < m; i++ {
		sum := rhs[i]
		for t := 0; t < i; t++ {
			sum -= a[i*m+t] * fwd[t]
		}
		fwd[i] = sum / a[i*m+i]
	}
	for i := m - 1; i >= 0; i-- {
		sum := fwd[i]
		for t := i + 1; t < m; t++ {
			sum -= a[t*m+i] * coef[t]
		}
		coef[i] = sum / a[i*m+i]
	}

	// RSS = yᵀy − bᵀ(Xᵀy).
	rss := k.g[k.yi][k.yi]
	for i := 0; i < m; i++ {
		rss -= coef[i] * rhs[i]
	}
	_, aic = gaussianAIC(k.n, m, rss)
	return aic, true, false
}

// oracleAIC evaluates one candidate through the QR oracle, reproducing the
// pre-kernel behaviour exactly: rank-deficient or otherwise unfittable
// candidates report ok=false and drop out of the search.
func (k *gramKernel) oracleAIC(s activeSet) (float64, bool) {
	names, cols := k.materialize(s)
	m, err := OLS(k.y, cols, names)
	if err != nil {
		return 0, false
	}
	return m.AIC, true
}

// evalAIC is the combined candidate evaluator: the Cholesky fast path,
// with the QR oracle behind the conditioning test.
func (k *gramKernel) evalAIC(s activeSet, sc *gramScratch) (float64, bool) {
	aic, ok, fallback := k.fitAIC(s, sc)
	if fallback {
		return k.oracleAIC(s)
	}
	return aic, ok
}

// materialize expands an active set into the name/column slices the QR
// fitter expects. Only called off the hot path (oracle fallbacks and the
// final refit of the selected model).
func (k *gramKernel) materialize(s activeSet) ([]string, [][]float64) {
	sz := s.size()
	names := make([]string, 0, sz)
	cols := make([][]float64, 0, sz)
	s.forEach(func(_, p int) {
		names = append(names, k.names[p])
		cols = append(cols, k.cols[p])
	})
	return names, cols
}
