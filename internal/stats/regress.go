package stats

import (
	"fmt"
	"math"
)

// OLSResult holds a fitted ordinary-least-squares regression of a response
// on k predictors (plus intercept).
type OLSResult struct {
	// Names labels each predictor column.
	Names []string
	// Coef holds the intercept (index 0) followed by predictor
	// coefficients.
	Coef []float64
	// StdErr holds the coefficient standard errors, same layout.
	StdErr []float64
	// TStat and PValue hold per-coefficient t statistics and two-sided
	// p-values, same layout.
	TStat  []float64
	PValue []float64
	// R2 is the coefficient of determination.
	R2 float64
	// RSS is the residual sum of squares; N the sample count.
	RSS float64
	N   int
	// AIC is Akaike's information criterion under Gaussian errors.
	AIC float64
	// LogLik is the maximized Gaussian log-likelihood.
	LogLik float64
}

// OLS fits y = b0 + Σ bi·xi by QR decomposition (Householder reflections),
// returning coefficient significance tests and the AIC used by stepwise
// selection. Predictor series must match the response length.
func OLS(y []float64, predictors [][]float64, names []string) (*OLSResult, error) {
	n := len(y)
	k := len(predictors)
	if len(names) != k {
		return nil, fmt.Errorf("stats: %d names for %d predictors", len(names), k)
	}
	for i, p := range predictors {
		if len(p) != n {
			return nil, fmt.Errorf("stats: predictor %q has %d samples, response has %d",
				names[i], len(p), n)
		}
	}
	cols := k + 1 // intercept + predictors
	if n <= cols {
		return nil, ErrInsufficientData
	}

	// Design matrix in column-major order.
	a := make([][]float64, cols)
	a[0] = make([]float64, n)
	for i := range a[0] {
		a[0][i] = 1
	}
	for j := 0; j < k; j++ {
		col := make([]float64, n)
		copy(col, predictors[j])
		a[j+1] = col
	}
	yv := make([]float64, n)
	copy(yv, y)

	// Householder QR: reduce A to upper triangular R while applying the
	// same reflections to y.
	r := make([][]float64, cols) // r[j][i] = R entry (row i, col j), i <= j
	for j := range r {
		r[j] = make([]float64, cols)
	}
	// Column norms of the original design, for rank-deficiency checks.
	origNorm := make([]float64, cols)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += a[j][i] * a[j][i]
		}
		origNorm[j] = math.Sqrt(s)
	}
	for j := 0; j < cols; j++ {
		// Compute the Householder vector for column j (rows j..n-1).
		norm := 0.0
		for i := j; i < n; i++ {
			norm += a[j][i] * a[j][i]
		}
		norm = math.Sqrt(norm)
		if norm <= 1e-10*origNorm[j] || norm == 0 {
			return nil, fmt.Errorf("stats: design matrix column %d is rank deficient", j)
		}
		if a[j][j] > 0 {
			norm = -norm
		}
		v := make([]float64, n)
		for i := j; i < n; i++ {
			v[i] = a[j][i]
		}
		v[j] -= norm
		vNorm2 := 0.0
		for i := j; i < n; i++ {
			vNorm2 += v[i] * v[i]
		}
		if vNorm2 == 0 {
			return nil, fmt.Errorf("stats: degenerate reflection at column %d", j)
		}
		apply := func(col []float64) {
			dot := 0.0
			for i := j; i < n; i++ {
				dot += v[i] * col[i]
			}
			f := 2 * dot / vNorm2
			for i := j; i < n; i++ {
				col[i] -= f * v[i]
			}
		}
		for jj := j; jj < cols; jj++ {
			apply(a[jj])
		}
		apply(yv)
		for i := 0; i <= j; i++ {
			r[j][i] = a[j][i]
		}
	}

	// Back substitution: R·b = Qᵀy (first cols entries of yv).
	coef := make([]float64, cols)
	for i := cols - 1; i >= 0; i-- {
		s := yv[i]
		for j := i + 1; j < cols; j++ {
			s -= r[j][i] * coef[j]
		}
		if r[i][i] == 0 {
			return nil, fmt.Errorf("stats: singular R at %d", i)
		}
		coef[i] = s / r[i][i]
	}

	// Residual sum of squares: the tail of the transformed response.
	rss := 0.0
	for i := cols; i < n; i++ {
		rss += yv[i] * yv[i]
	}

	// (XᵀX)⁻¹ = R⁻¹·R⁻ᵀ for standard errors.
	rInv := invertUpper(r, cols)
	df := float64(n - cols)
	sigma2 := rss / df
	stdErr := make([]float64, cols)
	tStat := make([]float64, cols)
	pVal := make([]float64, cols)
	for i := 0; i < cols; i++ {
		v := 0.0
		for j := i; j < cols; j++ {
			v += rInv[i][j] * rInv[i][j]
		}
		stdErr[i] = math.Sqrt(sigma2 * v)
		if stdErr[i] > 0 {
			tStat[i] = coef[i] / stdErr[i]
			pVal[i] = TTestPValue(tStat[i], df)
		} else {
			tStat[i] = math.Inf(1)
			pVal[i] = 0
		}
	}

	// R², log-likelihood, AIC.
	my := Mean(y)
	tss := 0.0
	for _, v := range y {
		d := v - my
		tss += d * d
	}
	r2 := 0.0
	if tss > 0 {
		r2 = 1 - rss/tss
	}
	logLik, aic := gaussianAIC(n, cols, rss)

	return &OLSResult{
		Names:  append([]string{}, names...),
		Coef:   coef,
		StdErr: stdErr,
		TStat:  tStat,
		PValue: pVal,
		R2:     r2,
		RSS:    rss,
		N:      n,
		AIC:    aic,
		LogLik: logLik,
	}, nil
}

// gaussianAIC returns the maximized Gaussian log-likelihood and Akaike's
// information criterion for a linear model with `cols` estimated
// coefficients (intercept included) and the given residual sum of squares
// over n samples; the error variance counts as one more free parameter.
// Shared by the QR and Gram fitting paths so the criterion cannot drift
// between them.
func gaussianAIC(n, cols int, rss float64) (logLik, aic float64) {
	nf := float64(n)
	if rss <= 0 {
		logLik = math.Inf(1)
	} else {
		logLik = -nf/2*(math.Log(2*math.Pi)+math.Log(rss/nf)) - nf/2
	}
	kParams := float64(cols + 1) // coefficients + error variance
	return logLik, 2*kParams - 2*logLik
}

// invertUpper inverts the upper-triangular matrix stored as r[col][row].
// Result is row-major inv[i][j].
func invertUpper(r [][]float64, m int) [][]float64 {
	inv := make([][]float64, m)
	for i := range inv {
		inv[i] = make([]float64, m)
	}
	for j := m - 1; j >= 0; j-- {
		inv[j][j] = 1 / r[j][j]
		for i := j - 1; i >= 0; i-- {
			s := 0.0
			for k := i + 1; k <= j; k++ {
				s += r[k][i] * inv[k][j]
			}
			inv[i][j] = -s / r[i][i]
		}
	}
	return inv
}

// SignificantPredictors returns the predictor names whose p-value is below
// alpha (Algorithm 1's CheckSignificanceLevel; the paper uses alpha 0.05).
// The intercept is never reported.
func (r *OLSResult) SignificantPredictors(alpha float64) []string {
	var out []string
	for i, name := range r.Names {
		if r.PValue[i+1] < alpha {
			out = append(out, name)
		}
	}
	return out
}
