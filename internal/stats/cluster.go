package stats

import (
	"math"
	"sort"
)

// Linkage selects how inter-cluster distance is computed during
// agglomeration.
type Linkage int

const (
	// LinkageAverage uses the mean pairwise distance (UPGMA).
	LinkageAverage Linkage = iota + 1
	// LinkageComplete uses the maximum pairwise distance.
	LinkageComplete
	// LinkageSingle uses the minimum pairwise distance.
	LinkageSingle
)

// Dendrogram records an agglomerative clustering run.
type Dendrogram struct {
	// Merges lists each merge in order: the two cluster ids joined and
	// the distance at which they joined. Leaf ids are 0..n-1; merge i
	// creates cluster id n+i.
	Merges []Merge
	n      int
}

// Merge is one agglomeration step.
type Merge struct {
	A, B     int
	Distance float64
}

// CorrelationDistance converts a correlation matrix into the dissimilarity
// the paper's heat-map clustering uses: d = 1 − |r|, so strongly correlated
// variables (either sign) are close.
func CorrelationDistance(corr [][]float64) [][]float64 {
	n := len(corr)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			r := corr[i][j]
			if math.IsNaN(r) {
				r = 0
			}
			d[i][j] = 1 - math.Abs(r)
		}
		d[i][i] = 0
	}
	return d
}

// HierCluster performs agglomerative clustering over a distance matrix.
func HierCluster(dist [][]float64, linkage Linkage) *Dendrogram {
	n := len(dist)
	dend := &Dendrogram{n: n}
	if n == 0 {
		return dend
	}
	// active[id] = member leaf indices of the cluster with that id.
	active := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		active[i] = []int{i}
	}
	nextID := n
	for len(active) > 1 {
		bestA, bestB := -1, -1
		bestD := math.Inf(1)
		ids := make([]int, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Ints(ids) // deterministic tie-breaking
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				d := clusterDistance(active[ids[i]], active[ids[j]], dist, linkage)
				if d < bestD {
					bestD, bestA, bestB = d, ids[i], ids[j]
				}
			}
		}
		merged := append(append([]int{}, active[bestA]...), active[bestB]...)
		delete(active, bestA)
		delete(active, bestB)
		active[nextID] = merged
		dend.Merges = append(dend.Merges, Merge{A: bestA, B: bestB, Distance: bestD})
		nextID++
	}
	return dend
}

func clusterDistance(a, b []int, dist [][]float64, linkage Linkage) float64 {
	switch linkage {
	case LinkageComplete:
		worst := math.Inf(-1)
		for _, i := range a {
			for _, j := range b {
				if dist[i][j] > worst {
					worst = dist[i][j]
				}
			}
		}
		return worst
	case LinkageSingle:
		best := math.Inf(1)
		for _, i := range a {
			for _, j := range b {
				if dist[i][j] < best {
					best = dist[i][j]
				}
			}
		}
		return best
	default: // LinkageAverage
		sum := 0.0
		for _, i := range a {
			for _, j := range b {
				sum += dist[i][j]
			}
		}
		return sum / float64(len(a)*len(b))
	}
}

// CutAt returns the clusters obtained by stopping agglomeration at merges
// with distance ≥ threshold: groups of leaf indices, each sorted, ordered
// by their smallest member. This is how ARES forms ESVL subsets without a
// pre-specified cluster count (the paper's stated reason for preferring
// hierarchical clustering over K-means).
func (d *Dendrogram) CutAt(threshold float64) [][]int {
	parent := make(map[int]int)
	find := func(x int) int {
		for {
			p, ok := parent[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	nextID := d.n
	for _, m := range d.Merges {
		if m.Distance < threshold {
			parent[find(m.A)] = nextID
			parent[find(m.B)] = nextID
		}
		nextID++
	}
	groups := make(map[int][]int)
	for leaf := 0; leaf < d.n; leaf++ {
		root := find(leaf)
		groups[root] = append(groups[root], leaf)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CutK returns exactly k clusters by replaying the merge sequence and
// stopping when k clusters remain (k ≥ 1; k > n yields singletons).
func (d *Dendrogram) CutK(k int) [][]int {
	if k < 1 {
		k = 1
	}
	stop := d.n - k
	if stop < 0 {
		stop = 0
	}
	parent := make(map[int]int)
	find := func(x int) int {
		for {
			p, ok := parent[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	nextID := d.n
	for i, m := range d.Merges {
		if i >= stop {
			break
		}
		parent[find(m.A)] = nextID
		parent[find(m.B)] = nextID
		nextID++
	}
	groups := make(map[int][]int)
	for leaf := 0; leaf < d.n; leaf++ {
		root := find(leaf)
		groups[root] = append(groups[root], leaf)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// LeafOrder returns the dendrogram's leaf ordering (the order a heat map
// displays rows so correlated blocks sit together).
func (d *Dendrogram) LeafOrder() []int {
	if d.n == 0 {
		return nil
	}
	members := make(map[int][]int, d.n)
	for i := 0; i < d.n; i++ {
		members[i] = []int{i}
	}
	nextID := d.n
	for _, m := range d.Merges {
		members[nextID] = append(append([]int{}, members[m.A]...), members[m.B]...)
		delete(members, m.A)
		delete(members, m.B)
		nextID++
	}
	// The last surviving cluster holds every leaf in dendrogram order.
	for _, v := range members {
		if len(v) == d.n {
			return v
		}
	}
	// Unmerged leaves (n==1 case).
	out := make([]int, d.n)
	for i := range out {
		out[i] = i
	}
	return out
}
