package stats

import (
	"math"

	"github.com/ares-cps/ares/internal/par"
)

// JarqueBera runs the Jarque-Bera normality test, returning the statistic
// and its p-value (χ², 2 degrees of freedom). Small p-values reject
// normality. Algorithm 1 prunes state variables that are "not NormDist".
func JarqueBera(xs []float64) (stat, pValue float64) {
	n := float64(len(xs))
	if n < 8 {
		return math.NaN(), math.NaN()
	}
	s := Skewness(xs)
	k := Kurtosis(xs)
	stat = n / 6 * (s*s + k*k/4)
	pValue = 1 - ChiSquareCDF(stat, 2)
	return stat, pValue
}

// RunsTest runs the Wald-Wolfowitz runs test for randomness/independence
// about the median, returning the z statistic and two-sided p-value. Small
// p-values reject independence. Algorithm 1 prunes variables that are
// "not iid".
func RunsTest(xs []float64) (z, pValue float64) {
	if len(xs) < 8 {
		return math.NaN(), math.NaN()
	}
	med := median(xs)
	// Classify each sample above/below the median; drop ties.
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	if len(signs) < 8 {
		return math.NaN(), math.NaN()
	}
	var n1, n2 float64
	runs := 1.0
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i > 0 && signs[i] != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN()
	}
	n := n1 + n2
	expRuns := 2*n1*n2/n + 1
	varRuns := 2 * n1 * n2 * (2*n1*n2 - n) / (n * n * (n - 1))
	if varRuns <= 0 {
		return math.NaN(), math.NaN()
	}
	z = (runs - expRuns) / math.Sqrt(varRuns)
	pValue = 2 * (1 - NormalCDF(math.Abs(z)))
	return z, pValue
}

func median(xs []float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	insertionSort(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

func insertionSort(xs []float64) {
	// Small helper; series lengths here are a few thousand at most, and
	// quicksort via sort.Float64s would also do — this avoids the
	// interface allocation in hot benchmark loops.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// PruneResult explains why a variable survived or was removed by the
// Algorithm 1 assumption check.
type PruneResult struct {
	Name     string
	Kept     bool
	Reason   string
	JBPValue float64
	RunsP    float64
}

// PruneOptions tunes the assumption checks of Algorithm 1's
// PruneStateVarList.
type PruneOptions struct {
	// ConstTol treats series within this band as constant (pruned).
	ConstTol float64
	// Alpha is the significance level below which normality or
	// independence is rejected. The paper's prerequisite is stated as a
	// hard requirement; in practice controller series are only
	// approximately normal, so a small alpha keeps the test meaningful
	// without pruning everything. Alpha ≤ 0 makes the distributional
	// tests advisory: p-values are still computed and reported, but only
	// constant series are pruned — the working configuration for real
	// flight data, whose maneuver-induced heavy tails fail any exact
	// normality test at mission-scale sample counts.
	Alpha float64
}

// DefaultPruneOptions returns the options used by the evaluation.
func DefaultPruneOptions() PruneOptions {
	return PruneOptions{ConstTol: 1e-12, Alpha: 1e-6}
}

// PruneStateVars applies Algorithm 1 lines 1–5: remove constant series and
// series whose *state-by-state updates* (first differences) fail the
// normality (Jarque-Bera) or independence (runs) test at the given
// significance level.
//
// The tests run on increments rather than levels because raw controller
// series are smooth trajectories — every level series would trivially fail
// an i.i.d. test. The paper analyzes "the state-by-state ESVL updates in
// the sequential cycles of the RAV"; the increments are exactly those
// updates, and noise-driven variables pass while frozen or saturated ones
// are pruned.
func PruneStateVars(names []string, series [][]float64, opts PruneOptions) []PruneResult {
	return PruneStateVarsWorkers(names, series, opts, 1)
}

// PruneStateVarsWorkers is PruneStateVars fanned out over a bounded worker
// pool: each variable's assumption check (differencing, Jarque-Bera, runs
// test) is independent and writes only its own result slot, so the output
// is identical at any worker count. workers <= 0 uses the process budget.
func PruneStateVarsWorkers(names []string, series [][]float64, opts PruneOptions, workers int) []PruneResult {
	out := make([]PruneResult, len(names))
	par.Do(workers, len(names), func(i int) {
		name := names[i]
		res := PruneResult{Name: name, Kept: true}
		xs := series[i]
		switch {
		case len(xs) < 9:
			res.Kept = false
			res.Reason = "too few samples"
		case IsConstant(xs, opts.ConstTol):
			res.Kept = false
			res.Reason = "constant value"
		default:
			diffs := Diff(xs)
			if IsConstant(diffs, opts.ConstTol) {
				res.Kept = false
				res.Reason = "constant increments"
				break
			}
			_, jb := JarqueBera(diffs)
			res.JBPValue = jb
			_, rp := RunsTest(diffs)
			res.RunsP = rp
			if opts.Alpha > 0 {
				if !math.IsNaN(jb) && jb < opts.Alpha {
					res.Kept = false
					res.Reason = "not normally distributed"
				} else if !math.IsNaN(rp) && rp < opts.Alpha {
					res.Kept = false
					res.Reason = "not iid"
				}
			}
		}
		out[i] = res
	})
	return out
}

// Diff returns the first differences of a series (length n-1).
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}
