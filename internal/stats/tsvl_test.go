package stats

import (
	"math/rand"
	"testing"
)

// ar1 generates a mean-reverting AR(1) series x_i = φ·x_{i−1} + ε. Its
// increments are near-iid normal, like real state-variable updates, so the
// pruning stage keeps it.
func ar1(n int, phi float64, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	return xs
}

// synthesizeESVL builds a synthetic ESVL with known structure:
//
//	resp    = 2·sig1 − sig2 + noise   (the "roll angle")
//	sig1    = AR(1) driver
//	sig2    = independent AR(1) driver
//	corr1   = 0.9·sig1 + AR(1) noise  (redundant with sig1)
//	junk    = independent AR(1)        (no relation to resp)
//	const1  = constant                 (pruned)
//	faraway = independent AR(1)        (ends up in its own cluster)
func synthesizeESVL(n int, seed int64) ([]string, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"resp", "sig1", "sig2", "corr1", "junk", "const1", "faraway"}
	const phi = 0.95
	sig1 := ar1(n, phi, rng)
	sig2 := ar1(n, phi, rng)
	noiseA := ar1(n, phi, rng)
	noiseB := ar1(n, phi, rng)
	junk := ar1(n, phi, rng)
	faraway := ar1(n, phi, rng)
	s := map[string][]float64{
		"sig1": sig1, "sig2": sig2, "junk": junk, "faraway": faraway,
		"resp": make([]float64, n), "corr1": make([]float64, n),
		"const1": make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s["corr1"][i] = 0.9*sig1[i] + 0.3*noiseA[i]
		s["const1"][i] = 42
		s["resp"][i] = 2*sig1[i] - sig2[i] + 0.2*noiseB[i]
	}
	series := make([][]float64, len(names))
	for i, nm := range names {
		series[i] = s[nm]
	}
	return names, series
}

func TestGenerateTSVLFindsDrivers(t *testing.T) {
	names, series := synthesizeESVL(3000, 41)
	rep, err := GenerateTSVL(TSVLInput{
		Names:      names,
		Series:     series,
		Responses:  []string{"resp"},
		ClusterCut: 0.95, // keep weakly-correlated vars with the response cluster
		Alpha:      0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Constants are pruned.
	for _, k := range rep.Kept {
		if k == "const1" {
			t.Error("constant variable survived pruning")
		}
	}
	// The true drivers must be in the TSVL.
	got := map[string]bool{}
	for _, v := range rep.TSVL {
		got[v] = true
	}
	if !got["sig1"] || !got["sig2"] {
		t.Errorf("TSVL = %v, want sig1 and sig2", rep.TSVL)
	}
	// The response itself never appears in its own TSVL.
	if got["resp"] {
		t.Error("response variable in TSVL")
	}
	if rep.ModelsFitted == 0 {
		t.Error("no models fitted")
	}
	// The selection ratio is meaningful: TSVL well below the ESVL size.
	if len(rep.TSVL) >= len(names)-1 {
		t.Errorf("TSVL %v did not select (ESVL %v)", rep.TSVL, names)
	}
}

func TestGenerateTSVLClusteringSeparates(t *testing.T) {
	names, series := synthesizeESVL(3000, 42)
	rep, err := GenerateTSVL(TSVLInput{
		Names:      names,
		Series:     series,
		Responses:  []string{"resp"},
		ClusterCut: 0.5, // tight: only strongly-correlated variables share a subset
		Alpha:      0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// resp, sig1 and corr1 are mutually |r| ≥ ~0.8 and must share a
	// cluster; junk/faraway must not be in it.
	var respCluster []string
	for _, c := range rep.Clusters {
		for _, v := range c {
			if v == "resp" {
				respCluster = c
			}
		}
	}
	if respCluster == nil {
		t.Fatal("response not clustered")
	}
	in := map[string]bool{}
	for _, v := range respCluster {
		in[v] = true
	}
	if !in["sig1"] {
		t.Errorf("resp cluster %v missing sig1", respCluster)
	}
	if in["junk"] || in["faraway"] {
		t.Errorf("resp cluster %v contains unrelated variables", respCluster)
	}
}

func TestGenerateTSVLSkipClusteringAblation(t *testing.T) {
	names, series := synthesizeESVL(2000, 43)
	clustered, err := GenerateTSVL(TSVLInput{
		Names: names, Series: series, Responses: []string{"resp"},
		ClusterCut: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := GenerateTSVL(TSVLInput{
		Names: names, Series: series, Responses: []string{"resp"},
		SkipClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Clusters) != 1 {
		t.Errorf("flat run has %d clusters", len(flat.Clusters))
	}
	// Both find the true drivers.
	for _, rep := range []*TSVLReport{clustered, flat} {
		got := map[string]bool{}
		for _, v := range rep.TSVL {
			got[v] = true
		}
		if !got["sig1"] || !got["sig2"] {
			t.Errorf("TSVL = %v", rep.TSVL)
		}
	}
}

func TestGenerateTSVLInputValidation(t *testing.T) {
	if _, err := GenerateTSVL(TSVLInput{Names: []string{"a"}}); err == nil {
		t.Error("mismatched input accepted")
	}
	if _, err := GenerateTSVL(TSVLInput{}); err == nil {
		t.Error("empty input accepted")
	}
	// All-constant input: everything pruned except the (absent) response.
	series := [][]float64{make([]float64, 100), make([]float64, 100)}
	if _, err := GenerateTSVL(TSVLInput{
		Names:  []string{"a", "b"},
		Series: series,
	}); err == nil {
		t.Error("degenerate input accepted")
	}
}

func TestGenerateTSVLResponseExemptFromPruning(t *testing.T) {
	// A response that would itself fail the assumption checks (a smooth
	// ramp plus its driver) must survive because responses are exempt:
	// they are what we explain, not what we select.
	rng := rand.New(rand.NewSource(44))
	n := 2000
	driver := ar1(n, 0.95, rng)
	resp := make([]float64, n)
	for i := range resp {
		resp[i] = float64(i)*0.01 + driver[i] // trending: fails iid checks
	}
	rep, err := GenerateTSVL(TSVLInput{
		Names:      []string{"resp", "driver"},
		Series:     [][]float64{resp, driver},
		Responses:  []string{"resp"},
		ClusterCut: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range rep.Kept {
		if k == "resp" {
			found = true
		}
	}
	if !found {
		t.Error("response pruned despite exemption")
	}
	// And its driver is identified.
	if len(rep.TSVL) != 1 || rep.TSVL[0] != "driver" {
		t.Errorf("TSVL = %v, want [driver]", rep.TSVL)
	}
}
