package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestOLSRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 5000
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.NormFloat64()
		x2[i] = rng.NormFloat64()
		y[i] = 1.5 + 2*x1[i] - 3*x2[i] + 0.1*rng.NormFloat64()
	}
	res, err := OLS(y, [][]float64{x1, x2}, []string{"x1", "x2"})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "intercept", res.Coef[0], 1.5, 0.01)
	approx(t, "b1", res.Coef[1], 2, 0.01)
	approx(t, "b2", res.Coef[2], -3, 0.01)
	if res.R2 < 0.99 {
		t.Errorf("R² = %v, want ≈1", res.R2)
	}
	// Both predictors significant.
	sig := res.SignificantPredictors(0.05)
	if len(sig) != 2 {
		t.Errorf("significant = %v", sig)
	}
}

func TestOLSInsignificantPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 2000
	x1 := make([]float64, n)
	junk := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.NormFloat64()
		junk[i] = rng.NormFloat64()
		y[i] = 2*x1[i] + rng.NormFloat64()
	}
	res, err := OLS(y, [][]float64{x1, junk}, []string{"x1", "junk"})
	if err != nil {
		t.Fatal(err)
	}
	sig := res.SignificantPredictors(0.05)
	if len(sig) != 1 || sig[0] != "x1" {
		t.Errorf("significant = %v, want [x1]; p-values %v", sig, res.PValue)
	}
	// The junk p-value must be roughly uniform, i.e., not tiny.
	if res.PValue[2] < 0.001 {
		t.Errorf("junk p-value = %v", res.PValue[2])
	}
}

func TestOLSExactFit(t *testing.T) {
	// y exactly linear: RSS ~ 0, infinite log-likelihood guarded.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{3, 5, 7, 9, 11, 13} // y = 1 + 2x
	res, err := OLS(y, [][]float64{x}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "intercept", res.Coef[0], 1, 1e-9)
	approx(t, "slope", res.Coef[1], 2, 1e-9)
	approx(t, "R2", res.R2, 1, 1e-12)
}

func TestOLSErrors(t *testing.T) {
	y := []float64{1, 2, 3}
	// Too few samples for two predictors + intercept.
	if _, err := OLS(y, [][]float64{{1, 2, 3}, {4, 5, 6}}, []string{"a", "b"}); err == nil {
		t.Error("underdetermined system accepted")
	}
	// Mismatched predictor length.
	if _, err := OLS(y, [][]float64{{1, 2}}, []string{"a"}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Name count mismatch.
	if _, err := OLS(y, [][]float64{{1, 2, 3}}, []string{"a", "b"}); err == nil {
		t.Error("name mismatch accepted")
	}
	// Constant predictor column duplicates the intercept (rank deficient).
	y2 := []float64{1, 2, 3, 4, 5, 6}
	if _, err := OLS(y2, [][]float64{{2, 2, 2, 2, 2, 2}}, []string{"c"}); err == nil {
		t.Error("rank-deficient design accepted")
	}
}

func TestOLSAICOrdersModels(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 1000
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.NormFloat64()
		x2[i] = rng.NormFloat64()
		y[i] = 2*x1[i] + 2*x2[i] + rng.NormFloat64()
	}
	full, err := OLS(y, [][]float64{x1, x2}, []string{"x1", "x2"})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := OLS(y, [][]float64{x1}, []string{"x1"})
	if err != nil {
		t.Fatal(err)
	}
	if full.AIC >= partial.AIC {
		t.Errorf("AIC(full)=%v not below AIC(partial)=%v", full.AIC, partial.AIC)
	}
}

func TestStepwiseAICSelectsTrueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 3000
	preds := make(map[string][]float64)
	for _, name := range []string{"a", "b", "junk1", "junk2", "junk3"} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		preds[name] = xs
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = 3*preds["a"][i] - 2*preds["b"][i] + rng.NormFloat64()
	}
	res := StepwiseAIC(y, preds)
	if res.Model == nil {
		t.Fatal("no model selected")
	}
	sel := map[string]bool{}
	for _, s := range res.Selected {
		sel[s] = true
	}
	if !sel["a"] || !sel["b"] {
		t.Errorf("selected = %v, want a and b", res.Selected)
	}
	if len(res.Selected) > 3 {
		t.Errorf("selected too many: %v", res.Selected)
	}
	if res.ModelsFitted == 0 || res.Steps == 0 {
		t.Error("no work recorded")
	}
}

func TestStepwiseAICNoSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	n := 1000
	preds := map[string][]float64{"junk": make([]float64, n)}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		preds["junk"][i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	res := StepwiseAIC(y, preds)
	// AIC is a liberal criterion: pure noise sneaks in with probability
	// P(χ²₁ > 2) ≈ 0.16, so a selection is tolerated — but any selected
	// model must explain essentially nothing.
	if res.Model != nil && res.Model.R2 > 0.02 {
		t.Errorf("noise model explains R²=%v", res.Model.R2)
	}
}

func TestExhaustiveAICMatchesStepwiseOnEasyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	n := 800
	preds := make(map[string][]float64)
	for _, name := range []string{"a", "b", "c"} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		preds[name] = xs
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = 2*preds["a"][i] + rng.NormFloat64()*0.5
	}
	sw := StepwiseAIC(y, preds)
	ex := ExhaustiveAIC(y, preds)
	if sw.Model == nil || ex.Model == nil {
		t.Fatal("missing models")
	}
	if math.Abs(sw.Model.AIC-ex.Model.AIC) > 1e-6 {
		t.Errorf("stepwise AIC %v != exhaustive %v", sw.Model.AIC, ex.Model.AIC)
	}
	// Exhaustive fits 2^3−1 models; stepwise fits fewer or equal here.
	if ex.ModelsFitted != 7 {
		t.Errorf("exhaustive fitted %d models, want 7", ex.ModelsFitted)
	}
}
