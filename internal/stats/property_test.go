package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gaussianSeries(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64() * (1 + r.Float64()*5)
	}
	return xs
}

// TestPropertyPearsonInvariances: Pearson correlation is symmetric, bounded,
// and invariant under positive affine transforms (sign-flipped by negative
// scaling).
func TestPropertyPearsonInvariances(t *testing.T) {
	f := func(seed int64, scale float64, shift float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16 + r.Intn(200)
		x := gaussianSeries(r, n)
		y := gaussianSeries(r, n)
		rxy := Pearson(x, y)
		if math.IsNaN(rxy) || rxy < -1-1e-12 || rxy > 1+1e-12 {
			return false
		}
		if math.Abs(rxy-Pearson(y, x)) > 1e-12 {
			return false
		}
		// Affine invariance: r(a·x + b, y) = sign(a)·r(x, y).
		a := math.Mod(math.Abs(scale), 10) + 0.1
		b := math.Mod(shift, 100)
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = a*x[i] + b
		}
		if math.Abs(Pearson(scaled, y)-rxy) > 1e-9 {
			return false
		}
		for i := range scaled {
			scaled[i] = -a*x[i] + b
		}
		return math.Abs(Pearson(scaled, y)+rxy) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCorrelationMatrixPSDish: every correlation matrix has a unit
// diagonal, is symmetric, and all 2×2 principal minors are non-negative
// (|r| ≤ 1 pairwise consistency).
func TestPropertyCorrelationMatrix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		n := 32 + r.Intn(100)
		series := make([][]float64, k)
		base := gaussianSeries(r, n)
		for i := range series {
			s := gaussianSeries(r, n)
			// Mix in a common component so correlations are non-trivial.
			for j := range s {
				s[j] += base[j] * r.Float64() * 2
			}
			series[i] = s
		}
		m := CorrelationMatrix(series)
		for i := 0; i < k; i++ {
			if math.Abs(m[i][i]-1) > 1e-12 {
				return false
			}
			for j := 0; j < k; j++ {
				if math.Abs(m[i][j]-m[j][i]) > 1e-12 {
					return false
				}
				if m[i][j] < -1-1e-12 || m[i][j] > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOLSResiduals: fitted OLS residuals are orthogonal to every
// predictor and sum to ~zero (intercept present), and R² ∈ [0, 1].
func TestPropertyOLSResiduals(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64 + r.Intn(200)
		k := 1 + r.Intn(4)
		preds := make([][]float64, k)
		names := make([]string, k)
		for i := range preds {
			preds[i] = gaussianSeries(r, n)
			names[i] = string(rune('a' + i))
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = r.NormFloat64()
			for j := range preds {
				y[i] += preds[j][i] * (r.Float64() - 0.5)
			}
		}
		res, err := OLS(y, preds, names)
		if err != nil {
			return true // degenerate draw
		}
		if res.R2 < -1e-9 || res.R2 > 1+1e-9 {
			return false
		}
		// Reconstruct residuals and check orthogonality.
		resid := make([]float64, n)
		for i := range resid {
			fit := res.Coef[0]
			for j := range preds {
				fit += res.Coef[j+1] * preds[j][i]
			}
			resid[i] = y[i] - fit
		}
		sum := 0.0
		for _, v := range resid {
			sum += v
		}
		scale := math.Sqrt(res.RSS) + 1e-9
		if math.Abs(sum)/scale > 1e-6 {
			return false
		}
		for j := range preds {
			dot := 0.0
			norm := 0.0
			for i := range resid {
				dot += resid[i] * preds[j][i]
				norm += preds[j][i] * preds[j][i]
			}
			if math.Abs(dot)/(math.Sqrt(norm)*scale+1e-9) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyClusterPartition: CutAt always yields a partition — disjoint
// clusters that cover every leaf exactly once — at any threshold.
func TestPropertyClusterPartition(t *testing.T) {
	f := func(seed int64, threshold float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := r.Float64()
				dist[i][j], dist[j][i] = d, d
			}
		}
		dend := HierCluster(dist, LinkageAverage)
		th := math.Mod(math.Abs(threshold), 1.2)
		clusters := dend.CutAt(th)
		seen := make(map[int]bool)
		for _, c := range clusters {
			if len(c) == 0 {
				return false
			}
			for _, leaf := range c {
				if leaf < 0 || leaf >= n || seen[leaf] {
					return false
				}
				seen[leaf] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDendrogramMonotoneMerges: agglomerative merge distances under
// average/complete linkage never decrease (no inversions).
func TestPropertyDendrogramMonotoneMerges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := r.Float64()
				dist[i][j], dist[j][i] = d, d
			}
		}
		for _, linkage := range []Linkage{LinkageComplete, LinkageAverage} {
			dend := HierCluster(dist, linkage)
			for i := 1; i < len(dend.Merges); i++ {
				// Average linkage admits tiny numerical inversions;
				// allow an epsilon.
				if dend.Merges[i].Distance < dend.Merges[i-1].Distance-1e-9 {
					if linkage == LinkageComplete {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStudentTCDFMonotone: the t CDF is monotone in t and maps onto
// (0, 1) for any df.
func TestPropertyStudentTCDF(t *testing.T) {
	f := func(dfRaw float64) bool {
		df := math.Mod(math.Abs(dfRaw), 200) + 0.5
		prev := -1.0
		for x := -8.0; x <= 8.0; x += 0.25 {
			p := StudentTCDF(x, df)
			if p < 0 || p > 1 || p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
