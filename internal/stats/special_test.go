package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, "Φ(0)", NormalCDF(0), 0.5, 1e-12)
	approx(t, "Φ(1.96)", NormalCDF(1.96), 0.9750021, 1e-6)
	approx(t, "Φ(-1.96)", NormalCDF(-1.96), 0.0249979, 1e-6)
	approx(t, "Φ(3)", NormalCDF(3), 0.9986501, 1e-6)
}

func TestStudentTCDF(t *testing.T) {
	// Reference values from R's pt().
	approx(t, "pt(0, 5)", StudentTCDF(0, 5), 0.5, 1e-12)
	approx(t, "pt(2, 10)", StudentTCDF(2, 10), 0.9633060, 1e-6)
	// Closed form for df=3: ½ + (1/π)[(t/√3)/(1+t²/3) + atan(t/√3)].
	approx(t, "pt(-1.5, 3)", StudentTCDF(-1.5, 3), 0.1152921, 1e-6)
	// Large df approaches the normal distribution.
	approx(t, "pt(1.96, 1e6)", StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-4)
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("zero df did not return NaN")
	}
}

func TestTTestPValue(t *testing.T) {
	// Two-sided p for t=2.228, df=10 is ~0.05 (the classic critical value).
	approx(t, "p(2.228, 10)", TTestPValue(2.228, 10), 0.05, 1e-3)
	approx(t, "p(-2.228, 10)", TTestPValue(-2.228, 10), 0.05, 1e-3)
	approx(t, "p(0, 10)", TTestPValue(0, 10), 1, 1e-12)
	if !math.IsNaN(TTestPValue(math.NaN(), 10)) {
		t.Error("NaN t did not return NaN")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Reference values from R's pchisq().
	approx(t, "pchisq(5.991, 2)", ChiSquareCDF(5.991, 2), 0.95, 1e-4)
	approx(t, "pchisq(3.841, 1)", ChiSquareCDF(3.841, 1), 0.95, 1e-4)
	approx(t, "pchisq(18.307, 10)", ChiSquareCDF(18.307, 10), 0.95, 1e-4)
	approx(t, "pchisq(0, 2)", ChiSquareCDF(0, 2), 0, 1e-12)
	if got := ChiSquareCDF(-1, 2); got != 0 {
		t.Errorf("negative x = %v", got)
	}
}

func TestFCDF(t *testing.T) {
	// Reference: qf(0.95, 3, 10) = 3.708; so pf(3.708, 3, 10) = 0.95.
	approx(t, "pf(3.708, 3, 10)", FCDF(3.708, 3, 10), 0.95, 1e-3)
	approx(t, "pf(0, 3, 10)", FCDF(0, 3, 10), 0, 1e-12)
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		lhs := regIncBeta(2.5, 4, x)
		rhs := 1 - regIncBeta(4, 2.5, 1-x)
		approx(t, "symmetry", lhs, rhs, 1e-12)
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := regIncBeta(3, 2, x)
		if v < prev-1e-12 {
			t.Fatalf("regIncBeta not monotone at %v", x)
		}
		prev = v
	}
}
