package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pearsonMatrixNaive is the seed implementation of CorrelationMatrix: the
// textbook per-pair Pearson, recomputing means and variances for every
// pair. It stays here as the oracle the single-pass kernel is checked (and
// benchmarked) against.
func pearsonMatrixNaive(series [][]float64) [][]float64 {
	n := len(series)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := Pearson(series[i], series[j])
			m[i][j], m[j][i] = r, r
		}
	}
	return m
}

// TestPropertyCorrelationKernelAgreesWithPearson: for random series, the
// single-pass standardize-then-dot kernel is symmetric, has a unit
// diagonal, and agrees with the naive per-pair Pearson within 1e-12 — at
// worker counts 1 and 8 (which must themselves be bit-identical).
func TestPropertyCorrelationKernelAgreesWithPearson(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(10)
		n := 16 + r.Intn(200)
		series := make([][]float64, k)
		base := gaussianSeries(r, n)
		for i := range series {
			s := gaussianSeries(r, n)
			for j := range s {
				s[j] += base[j] * r.Float64() * 2
			}
			series[i] = s
		}
		// One constant series exercises the r = 0 contract.
		if k > 2 && r.Intn(2) == 0 {
			c := make([]float64, n)
			for j := range c {
				c[j] = 3.25
			}
			series[k-1] = c
		}

		want := pearsonMatrixNaive(series)
		seq := CorrelationMatrixWorkers(series, 1)
		par8 := CorrelationMatrixWorkers(series, 8)
		for i := 0; i < k; i++ {
			if seq[i][i] != 1 || par8[i][i] != 1 {
				return false
			}
			for j := 0; j < k; j++ {
				if seq[i][j] != seq[j][i] {
					return false
				}
				// Parallel fan-out must be bit-identical to one worker.
				if seq[i][j] != par8[i][j] {
					return false
				}
				if math.Abs(seq[i][j]-want[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCorrelationKernelEdgeCases pins the Pearson edge-case contract the
// kernel must reproduce: NaN for short or mismatched series, 0 against a
// constant series, NaN propagation from NaN samples.
func TestCorrelationKernelEdgeCases(t *testing.T) {
	lin := []float64{1, 2, 3, 4, 5}
	flat := []float64{7, 7, 7, 7, 7}
	withNaN := []float64{1, math.NaN(), 3, 4, 5}
	short := []float64{1}

	for _, workers := range []int{1, 4} {
		m := CorrelationMatrixWorkers([][]float64{lin, flat, withNaN}, workers)
		if m[0][1] != 0 || m[1][0] != 0 {
			t.Errorf("workers=%d: constant pairing r = %v, want 0", workers, m[0][1])
		}
		// Constant beats NaN, as in Pearson's sxx==0||syy==0 check.
		if m[1][2] != 0 {
			t.Errorf("workers=%d: constant×NaN r = %v, want 0", workers, m[1][2])
		}
		if !math.IsNaN(m[0][2]) {
			t.Errorf("workers=%d: NaN series r = %v, want NaN", workers, m[0][2])
		}
		if m[0][0] != 1 || m[1][1] != 1 || m[2][2] != 1 {
			t.Errorf("workers=%d: diagonal not 1", workers)
		}

		m = CorrelationMatrixWorkers([][]float64{lin, short}, workers)
		if !math.IsNaN(m[0][1]) {
			t.Errorf("workers=%d: short series r = %v, want NaN", workers, m[0][1])
		}

		m = CorrelationMatrixWorkers([][]float64{lin, lin[:4]}, workers)
		if !math.IsNaN(m[0][1]) {
			t.Errorf("workers=%d: mismatched lengths r = %v, want NaN", workers, m[0][1])
		}

		neg := []float64{5, 4, 3, 2, 1}
		m = CorrelationMatrixWorkers([][]float64{lin, neg}, workers)
		if math.Abs(m[0][1]+1) > 1e-12 {
			t.Errorf("workers=%d: anti-correlated r = %v, want -1", workers, m[0][1])
		}
	}

	// Degenerate matrix sizes.
	if m := CorrelationMatrixWorkers(nil, 4); len(m) != 0 {
		t.Errorf("nil input gave %d rows", len(m))
	}
	if m := CorrelationMatrixWorkers([][]float64{lin}, 4); m[0][0] != 1 {
		t.Error("single series diagonal not 1")
	}
}

// TestPruneStateVarsWorkersEquivalence: the fanned-out prune returns the
// same results as the sequential one at every worker count.
func TestPruneStateVarsWorkersEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c", "d", "e", "f"}
	series := [][]float64{
		gaussianSeries(r, 300),
		gaussianSeries(r, 300),
		make([]float64, 300), // constant
		gaussianSeries(r, 300),
		{1, 2, 3}, // too few samples
		gaussianSeries(r, 300),
	}
	opts := DefaultPruneOptions()
	want := PruneStateVars(names, series, opts)
	for _, workers := range []int{1, 2, 8} {
		got := PruneStateVarsWorkers(names, series, opts, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d: result[%d] = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestGenerateTSVLParallelismEquivalence: the full Algorithm 1 run emits
// identical reports at worker counts 1, 2 and 8.
func TestGenerateTSVLParallelismEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 400
	k := 12
	names := make([]string, k)
	series := make([][]float64, k)
	base := gaussianSeries(r, n)
	for i := range series {
		s := gaussianSeries(r, n)
		for j := range s {
			s[j] += base[j] * float64(i%3)
		}
		series[i] = s
		names[i] = string(rune('A' + i))
	}
	run := func(workers int) *TSVLReport {
		rep, err := GenerateTSVL(TSVLInput{
			Names:       names,
			Series:      series,
			Responses:   []string{"A", "E"},
			Parallelism: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got.TSVL) != len(want.TSVL) {
			t.Fatalf("workers=%d: TSVL %v, want %v", workers, got.TSVL, want.TSVL)
		}
		for i := range got.TSVL {
			if got.TSVL[i] != want.TSVL[i] {
				t.Errorf("workers=%d: TSVL %v, want %v", workers, got.TSVL, want.TSVL)
				break
			}
		}
		if got.ModelsFitted != want.ModelsFitted {
			t.Errorf("workers=%d: ModelsFitted %d, want %d", workers, got.ModelsFitted, want.ModelsFitted)
		}
		for i := range want.Corr {
			for j := range want.Corr[i] {
				if got.Corr[i][j] != want.Corr[i][j] {
					t.Fatalf("workers=%d: corr[%d][%d] differs", workers, i, j)
				}
			}
		}
		if len(got.Clusters) != len(want.Clusters) {
			t.Fatalf("workers=%d: %d clusters, want %d", workers, len(got.Clusters), len(want.Clusters))
		}
		for ci := range want.Clusters {
			if len(got.Clusters[ci]) != len(want.Clusters[ci]) {
				t.Fatalf("workers=%d: cluster %d size differs", workers, ci)
			}
			for vi := range want.Clusters[ci] {
				if got.Clusters[ci][vi] != want.Clusters[ci][vi] {
					t.Fatalf("workers=%d: cluster %d differs", workers, ci)
				}
			}
		}
	}
}
