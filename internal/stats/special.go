// Package stats implements the multivariate statistics behind ARES's target
// state variable identification: Pearson correlation, normality and
// independence pruning, agglomerative hierarchical clustering, ordinary
// least squares regression with significance tests, the Akaike information
// criterion, stepwise model selection, and the complete Algorithm 1
// (GenerateTSVL) of the paper.
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when a computation needs more samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// NormalCDF returns P(Z ≤ x) for a standard normal variable.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for Student's t distribution with df degrees
// of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom.
func TTestPValue(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	return 2 * (1 - StudentTCDF(math.Abs(t), df))
}

// lowerIncGamma computes the regularized lower incomplete gamma function
// P(a, x) by series expansion (x < a+1) or continued fraction otherwise.
func lowerIncGamma(a, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case a <= 0:
		return 1
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		sum := 1 / a
		term := sum
		for n := 1; n < 300; n++ {
			term *= x / (a + float64(n))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for the upper function Q(a, x).
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i < 300; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// ChiSquareCDF returns P(X ≤ x) for a chi-squared variable with k degrees
// of freedom.
func ChiSquareCDF(x, k float64) float64 {
	if x < 0 || k <= 0 {
		return 0
	}
	return lowerIncGamma(k/2, x/2)
}

// FCDF returns P(F ≤ f) for an F distribution with d1 and d2 degrees of
// freedom.
func FCDF(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return regIncBeta(d1/2, d2/2, x)
}
