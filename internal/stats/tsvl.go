package stats

import (
	"fmt"
	"sort"

	"github.com/ares-cps/ares/internal/par"
)

// TSVLInput configures one run of Algorithm 1 (target state variable list
// generation).
type TSVLInput struct {
	// Names and Series hold the ESVL: one time series per state variable.
	Names  []string
	Series [][]float64
	// Responses lists the vehicle dynamics of interest (e.g. "ATT.Roll");
	// each becomes the regression response for its cluster.
	Responses []string
	// Prune tunes the statistical assumption checks.
	Prune PruneOptions
	// ClusterCut is the correlation-distance threshold (1 − |r|) at which
	// agglomeration stops; variables closer than this share a subset.
	ClusterCut float64
	// Alpha is the regression significance level (the paper uses 0.05).
	Alpha float64
	// Linkage selects the agglomeration rule (default average).
	Linkage Linkage
	// SkipClustering regresses each response on every surviving variable
	// instead of only its cluster — the no-clustering ablation.
	SkipClustering bool
	// Exhaustive replaces stepwise AIC with exhaustive subset search —
	// the model-selection ablation. Practical only for small clusters.
	Exhaustive bool
	// Parallelism bounds the worker pool for the prune, correlation and
	// model-selection stages; <= 0 uses the process budget (GOMAXPROCS).
	// Output is identical at any value: every parallel unit writes a
	// disjoint slot and merges happen in deterministic input order.
	Parallelism int
}

// TSVLReport is the full output of Algorithm 1.
type TSVLReport struct {
	// Pruned records the assumption-check outcome for every input.
	Pruned []PruneResult
	// Kept lists surviving variable names in input order.
	Kept []string
	// Corr is the pairwise Pearson matrix over Kept.
	Corr [][]float64
	// Dendro is the clustering of Kept (nil when SkipClustering).
	Dendro *Dendrogram
	// Clusters holds the variable-name subsets after the cut.
	Clusters [][]string
	// Models maps each response variable to its selected model.
	Models map[string]*StepwiseResult
	// TSVL is the final target state variable list, sorted by name.
	TSVL []string
	// ModelsFitted totals the regressions evaluated (search cost).
	ModelsFitted int
}

// GenerateTSVL runs Algorithm 1: prune the ESVL on statistical assumptions,
// cluster by correlation, select an optimal model per subset with stepwise
// AIC, and keep the predictors significant at Alpha.
func GenerateTSVL(in TSVLInput) (*TSVLReport, error) {
	if len(in.Names) != len(in.Series) {
		return nil, fmt.Errorf("stats: %d names for %d series", len(in.Names), len(in.Series))
	}
	if len(in.Names) == 0 {
		return nil, ErrInsufficientData
	}
	if in.Alpha <= 0 {
		in.Alpha = 0.05
	}
	if in.ClusterCut <= 0 {
		in.ClusterCut = 0.5
	}
	if in.Linkage == 0 {
		in.Linkage = LinkageAverage
	}
	if in.Prune == (PruneOptions{}) {
		in.Prune = DefaultPruneOptions()
	}

	workers := par.Workers(in.Parallelism)

	rep := &TSVLReport{Models: make(map[string]*StepwiseResult)}

	// Lines 1–5 + 16: assumption check. Response variables are exempt
	// from pruning (they are what we explain, not what we select).
	rep.Pruned = PruneStateVarsWorkers(in.Names, in.Series, in.Prune, workers)
	keptIdx := make([]int, 0, len(in.Names))
	for i, pr := range rep.Pruned {
		if pr.Kept || containsStr(in.Responses, in.Names[i]) {
			keptIdx = append(keptIdx, i)
		}
	}
	if len(keptIdx) < 2 {
		return nil, ErrInsufficientData
	}
	keptSeries := make([][]float64, len(keptIdx))
	rep.Kept = make([]string, len(keptIdx))
	for i, idx := range keptIdx {
		rep.Kept[i] = in.Names[idx]
		keptSeries[i] = in.Series[idx]
	}

	// Lines 14–15: pairwise correlation matrix.
	rep.Corr = CorrelationMatrixWorkers(keptSeries, workers)

	// Line 17: hierarchical clustering into subsets.
	var clusters [][]int
	if in.SkipClustering {
		all := make([]int, len(rep.Kept))
		for i := range all {
			all[i] = i
		}
		clusters = [][]int{all}
	} else {
		rep.Dendro = HierCluster(CorrelationDistance(rep.Corr), in.Linkage)
		clusters = rep.Dendro.CutAt(in.ClusterCut)
	}
	for _, c := range clusters {
		names := make([]string, len(c))
		for i, idx := range c {
			names[i] = rep.Kept[idx]
		}
		rep.Clusters = append(rep.Clusters, names)
	}

	// Lines 18–21: per-subset model selection + significance check. Every
	// (cluster, response) pair is an independent regression search over its
	// own predictor set; the searches fan out over the worker pool and the
	// results merge afterwards in input order, so the report is identical
	// at any worker count.
	type modelTask struct {
		ci       int
		respName string
		y        []float64
		preds    map[string][]float64
	}
	var tasks []modelTask
	for ci, cluster := range clusters {
		for _, respName := range in.Responses {
			respIdx := -1
			for _, idx := range cluster {
				if rep.Kept[idx] == respName {
					respIdx = idx
					break
				}
			}
			if respIdx < 0 {
				continue // this response lives in another subset
			}
			y := keptSeries[respIdx]
			preds := make(map[string][]float64)
			for _, idx := range cluster {
				name := rep.Kept[idx]
				if name == respName || containsStr(in.Responses, name) {
					continue
				}
				preds[name] = keptSeries[idx]
			}
			if len(preds) == 0 {
				continue
			}
			tasks = append(tasks, modelTask{ci: ci, respName: respName, y: y, preds: preds})
		}
	}
	sels := make([]*StepwiseResult, len(tasks))
	// Split the budget between the task fan-out and each task's candidate
	// sweep: outer × inner ≈ workers. Selection is bit-identical at any
	// inner worker count, so the split affects wall-clock only.
	outer := workers
	if outer > len(tasks) {
		outer = len(tasks)
	}
	inner := par.Inner(workers, outer)
	par.Do(workers, len(tasks), func(ti int) {
		t := tasks[ti]
		if in.Exhaustive {
			sels[ti] = ExhaustiveAICWorkers(t.y, t.preds, inner)
		} else {
			sels[ti] = StepwiseAICWorkers(t.y, t.preds, inner)
		}
	})
	tsvlSet := make(map[string]bool)
	for ti, t := range tasks {
		sel := sels[ti]
		rep.ModelsFitted += sel.ModelsFitted
		rep.Models[fmt.Sprintf("%s[c%d]", t.respName, t.ci)] = sel
		if sel.Model == nil {
			continue
		}
		for _, name := range sel.Model.SignificantPredictors(in.Alpha) {
			tsvlSet[name] = true
		}
	}
	rep.TSVL = sortedKeys(tsvlSet)
	return rep, nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
