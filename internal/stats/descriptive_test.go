package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "variance", Variance(xs), 32.0/7, 1e-12)
	approx(t, "stddev", StdDev(xs), math.Sqrt(32.0/7), 1e-12)
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("single-sample variance not NaN")
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// Symmetric data: zero skew.
	sym := []float64{-2, -1, 0, 1, 2}
	approx(t, "skew(sym)", Skewness(sym), 0, 1e-12)
	// Right-skewed data: positive skew.
	right := []float64{1, 1, 1, 1, 10}
	if Skewness(right) <= 0 {
		t.Errorf("right-skewed skewness = %v", Skewness(right))
	}
	// Gaussian sample: skew ≈ 0, excess kurtosis ≈ 0.
	rng := rand.New(rand.NewSource(5))
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	approx(t, "skew(gauss)", Skewness(xs), 0, 0.03)
	approx(t, "kurt(gauss)", Kurtosis(xs), 0, 0.06)
	// Uniform sample: excess kurtosis ≈ -1.2.
	for i := range xs {
		xs[i] = rng.Float64()
	}
	approx(t, "kurt(unif)", Kurtosis(xs), -1.2, 0.05)
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	approx(t, "perfect positive", Pearson(x, y), 1, 1e-12)
	yneg := []float64{10, 8, 6, 4, 2}
	approx(t, "perfect negative", Pearson(x, yneg), -1, 1e-12)
	// Constant series: defined as 0.
	approx(t, "constant", Pearson(x, []float64{3, 3, 3, 3, 3}), 0, 1e-12)
	// Mismatched length: NaN.
	if !math.IsNaN(Pearson(x, []float64{1, 2})) {
		t.Error("mismatched lengths not NaN")
	}
	// Independent noise: near zero.
	rng := rand.New(rand.NewSource(6))
	a := make([]float64, 50000)
	b := make([]float64, 50000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	approx(t, "independent", Pearson(a, b), 0, 0.02)
	// Known partial correlation: y = x + noise with equal variances
	// gives r = 1/√2.
	c := make([]float64, 50000)
	for i := range c {
		c[i] = a[i] + rng.NormFloat64()
	}
	approx(t, "r=1/√2", Pearson(a, c), 1/math.Sqrt2, 0.02)
}

func TestPearsonSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 10 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 3
			y[i] = 0.5*x[i] + rng.NormFloat64()
		}
		rxy := Pearson(x, y)
		ryx := Pearson(y, x)
		if math.Abs(rxy-ryx) > 1e-12 {
			t.Fatalf("Pearson not symmetric: %v vs %v", rxy, ryx)
		}
		if rxy < -1-1e-12 || rxy > 1+1e-12 {
			t.Fatalf("Pearson out of bounds: %v", rxy)
		}
	}
}

func TestIsConstant(t *testing.T) {
	if !IsConstant([]float64{1, 1, 1}, 0) {
		t.Error("constant not detected")
	}
	if IsConstant([]float64{1, 1.1, 1}, 1e-3) {
		t.Error("varying series reported constant")
	}
	if !IsConstant([]float64{1, 1 + 1e-9, 1}, 1e-6) {
		t.Error("within-tolerance series not constant")
	}
	if !IsConstant(nil, 0) {
		t.Error("empty series not constant")
	}
}

func TestCorrelationMatrix(t *testing.T) {
	series := [][]float64{
		{1, 2, 3, 4, 5},
		{2, 4, 6, 8, 10},
		{5, 4, 3, 2, 1},
	}
	m := CorrelationMatrix(series)
	approx(t, "diag", m[0][0], 1, 1e-12)
	approx(t, "m01", m[0][1], 1, 1e-12)
	approx(t, "m02", m[0][2], -1, 1e-12)
	approx(t, "symmetry", m[1][2], m[2][1], 1e-12)
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 3, 6, 10})
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Diff = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if Diff([]float64{1}) != nil {
		t.Error("short Diff not nil")
	}
}
