package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// twoGroupDistance builds a distance matrix with two tight groups
// {0,1,2} and {3,4} far apart.
func twoGroupDistance() [][]float64 {
	const far, near = 0.9, 0.1
	d := make([][]float64, 5)
	for i := range d {
		d[i] = make([]float64, 5)
		for j := range d[i] {
			if i == j {
				continue
			}
			sameGroup := (i < 3) == (j < 3)
			if sameGroup {
				d[i][j] = near
			} else {
				d[i][j] = far
			}
		}
	}
	return d
}

func TestHierClusterTwoGroups(t *testing.T) {
	for _, linkage := range []Linkage{LinkageAverage, LinkageComplete, LinkageSingle} {
		dend := HierCluster(twoGroupDistance(), linkage)
		if len(dend.Merges) != 4 {
			t.Fatalf("merges = %d, want 4", len(dend.Merges))
		}
		clusters := dend.CutAt(0.5)
		want := [][]int{{0, 1, 2}, {3, 4}}
		if !reflect.DeepEqual(clusters, want) {
			t.Errorf("linkage %v clusters = %v, want %v", linkage, clusters, want)
		}
	}
}

func TestDendrogramCutK(t *testing.T) {
	dend := HierCluster(twoGroupDistance(), LinkageAverage)
	if got := dend.CutK(1); len(got) != 1 || len(got[0]) != 5 {
		t.Errorf("CutK(1) = %v", got)
	}
	if got := dend.CutK(2); !reflect.DeepEqual(got, [][]int{{0, 1, 2}, {3, 4}}) {
		t.Errorf("CutK(2) = %v", got)
	}
	if got := dend.CutK(5); len(got) != 5 {
		t.Errorf("CutK(5) = %v", got)
	}
	if got := dend.CutK(99); len(got) != 5 {
		t.Errorf("CutK(99) = %v", got)
	}
	if got := dend.CutK(0); len(got) != 1 {
		t.Errorf("CutK(0) = %v", got)
	}
}

func TestDendrogramLeafOrderGroupsNeighbors(t *testing.T) {
	dend := HierCluster(twoGroupDistance(), LinkageAverage)
	order := dend.LeafOrder()
	if len(order) != 5 {
		t.Fatalf("leaf order = %v", order)
	}
	// Members of the same group must be contiguous.
	pos := make(map[int]int)
	for i, leaf := range order {
		pos[leaf] = i
	}
	groupA := []int{pos[0], pos[1], pos[2]}
	min, max := groupA[0], groupA[0]
	for _, p := range groupA {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min != 2 {
		t.Errorf("group {0,1,2} not contiguous in order %v", order)
	}
}

func TestHierClusterEmptyAndSingle(t *testing.T) {
	dend := HierCluster(nil, LinkageAverage)
	if len(dend.Merges) != 0 || len(dend.CutAt(0.5)) != 0 {
		t.Error("empty input mishandled")
	}
	single := HierCluster([][]float64{{0}}, LinkageAverage)
	if got := single.CutAt(0.5); len(got) != 1 {
		t.Errorf("single leaf clusters = %v", got)
	}
	if got := single.LeafOrder(); len(got) != 1 || got[0] != 0 {
		t.Errorf("single leaf order = %v", got)
	}
}

func TestCorrelationDistance(t *testing.T) {
	corr := [][]float64{
		{1, -0.8},
		{-0.8, 1},
	}
	d := CorrelationDistance(corr)
	approx(t, "diag", d[0][0], 0, 1e-12)
	// Strong negative correlation is also "close" (|r|).
	approx(t, "negcorr", d[0][1], 0.2, 1e-12)
}

func TestClusteringRecoversCorrelatedVariables(t *testing.T) {
	// Integration: generate three correlated series plus two independent
	// ones and verify the pipeline groups them.
	rng := rand.New(rand.NewSource(21))
	n := 3000
	base := make([]float64, n)
	series := make([][]float64, 5)
	for i := range series {
		series[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		base[i] = rng.NormFloat64()
		series[0][i] = base[i]
		series[1][i] = 2*base[i] + 0.1*rng.NormFloat64()
		series[2][i] = -base[i] + 0.1*rng.NormFloat64()
		series[3][i] = rng.NormFloat64()
		series[4][i] = rng.NormFloat64()
	}
	corr := CorrelationMatrix(series)
	dend := HierCluster(CorrelationDistance(corr), LinkageAverage)
	clusters := dend.CutAt(0.5)
	// The first cluster must contain exactly {0,1,2}.
	if !reflect.DeepEqual(clusters[0], []int{0, 1, 2}) {
		t.Errorf("clusters = %v", clusters)
	}
}
