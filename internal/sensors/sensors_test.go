package sensors

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
)

// noiselessConfig returns a config with all noise and bias disabled so
// sensor outputs equal ground truth.
func noiselessConfig() Config {
	return Config{GPSRateHz: 5, Seed: 1}
}

func restingState() sim.State {
	return sim.State{Att: mathx.QuatIdentity()}
}

func TestIMUAtRestReadsGravity(t *testing.T) {
	s := NewSuite(noiselessConfig())
	// At rest the true world acceleration is zero, so the accelerometer
	// reads the reaction to gravity: (0, 0, -g) in FRD body frame.
	r := s.Sample(0, restingState(), mathx.Vec3{}, sim.Battery{})
	want := mathx.V3(0, 0, -sim.Gravity)
	if r.IMU.Accel.Dist(want) > 1e-9 {
		t.Errorf("accel at rest = %v, want %v", r.IMU.Accel, want)
	}
	if r.IMU.Gyro.Norm() > 1e-12 {
		t.Errorf("gyro at rest = %v, want 0", r.IMU.Gyro)
	}
}

func TestIMUFreeFallReadsZero(t *testing.T) {
	s := NewSuite(noiselessConfig())
	accel := mathx.V3(0, 0, sim.Gravity) // free fall: a = g downward
	r := s.Sample(0, restingState(), accel, sim.Battery{})
	if r.IMU.Accel.Norm() > 1e-9 {
		t.Errorf("accel in free fall = %v, want 0", r.IMU.Accel)
	}
}

func TestIMURotatedFrame(t *testing.T) {
	s := NewSuite(noiselessConfig())
	// Vehicle rolled 90°: body Z axis points along world +Y, so gravity's
	// reaction appears along the body -Y axis... verify via rotation math.
	st := sim.State{Att: mathx.QuatFromEuler(math.Pi/2, 0, 0)}
	r := s.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	want := st.Att.RotateInverse(mathx.V3(0, 0, -sim.Gravity))
	if r.IMU.Accel.Dist(want) > 1e-9 {
		t.Errorf("rolled accel = %v, want %v", r.IMU.Accel, want)
	}
}

func TestGyroMeasuresBodyRates(t *testing.T) {
	s := NewSuite(noiselessConfig())
	st := restingState()
	st.Omega = mathx.V3(0.1, -0.2, 0.3)
	r := s.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	if r.IMU.Gyro.Dist(st.Omega) > 1e-12 {
		t.Errorf("gyro = %v, want %v", r.IMU.Gyro, st.Omega)
	}
}

func TestBaroAndMag(t *testing.T) {
	s := NewSuite(noiselessConfig())
	st := sim.State{
		Pos: mathx.V3(0, 0, -25),
		Att: mathx.QuatFromEuler(0, 0, 1.2),
	}
	r := s.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	if r.BaroAlt != 25 {
		t.Errorf("baro = %v, want 25", r.BaroAlt)
	}
	if !mathx.ApproxEqual(r.MagYaw, 1.2, 1e-12) {
		t.Errorf("mag yaw = %v, want 1.2", r.MagYaw)
	}
}

func TestGPSRateAndLatency(t *testing.T) {
	cfg := noiselessConfig()
	cfg.GPSLatency = 0.1
	s := NewSuite(cfg)
	st := sim.State{Pos: mathx.V3(7, 8, -9), Att: mathx.QuatIdentity()}

	// t=0: first fix generated, but latency delays delivery.
	r := s.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	if r.GPSFresh || r.GPS.Valid {
		t.Error("GPS delivered before latency elapsed")
	}
	// t=0.1: fix due now.
	r = s.Sample(0.1, st, mathx.Vec3{}, sim.Battery{})
	if !r.GPSFresh {
		t.Fatal("GPS not delivered after latency")
	}
	if r.GPS.Pos != st.Pos {
		t.Errorf("GPS pos = %v, want %v", r.GPS.Pos, st.Pos)
	}
	if !r.GPS.Valid || r.GPS.NumSats < 10 {
		t.Errorf("GPS fix invalid: %+v", r.GPS)
	}
	// Immediately after, the fix is held but not fresh (5 Hz rate).
	r = s.Sample(0.11, st, mathx.Vec3{}, sim.Battery{})
	if r.GPSFresh {
		t.Error("GPS fresh again before next fix interval")
	}
	if r.GPS.Pos != st.Pos {
		t.Error("held GPS fix lost")
	}
}

func TestGPSFixInterval(t *testing.T) {
	cfg := noiselessConfig()
	cfg.GPSRateHz = 5
	cfg.GPSLatency = 0
	s := NewSuite(cfg)
	st := restingState()
	fresh := 0
	const dt = 1.0 / 400
	for i := 0; i <= 400; i++ { // one second inclusive
		r := s.Sample(float64(i)*dt, st, mathx.Vec3{}, sim.Battery{})
		if r.GPSFresh {
			fresh++
		}
	}
	if fresh < 5 || fresh > 6 {
		t.Errorf("fresh fixes in 1 s = %d, want ~5", fresh)
	}
}

func TestNoiseStatistics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GyroBias = 0 // isolate white noise from bias
	s := NewSuite(cfg)
	st := restingState()
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		r := s.Sample(float64(i)/400, st, mathx.Vec3{}, sim.Battery{})
		sum += r.IMU.Gyro.X
		sumSq += r.IMU.Gyro.X * r.IMU.Gyro.X
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 5e-4 {
		t.Errorf("gyro noise mean = %v, want ~0", mean)
	}
	if sd < cfg.GyroNoise*0.9 || sd > cfg.GyroNoise*1.1 {
		t.Errorf("gyro noise sd = %v, want ~%v", sd, cfg.GyroNoise)
	}
}

func TestBiasIsConstantAndSeeded(t *testing.T) {
	cfg := noiselessConfig()
	cfg.GyroBias = 0.01
	a := NewSuite(cfg)
	b := NewSuite(cfg)
	st := restingState()
	ra1 := a.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	ra2 := a.Sample(0.01, st, mathx.Vec3{}, sim.Battery{})
	rb := b.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	if ra1.IMU.Gyro != ra2.IMU.Gyro {
		t.Error("gyro bias changed between samples")
	}
	if ra1.IMU.Gyro != rb.IMU.Gyro {
		t.Error("identical seeds produced different biases")
	}
	if ra1.IMU.Gyro.Norm() == 0 {
		t.Error("bias config produced zero bias")
	}
	// The two IMUs must have independent biases.
	if ra1.IMU.Gyro == ra1.IMU2.Gyro {
		t.Error("IMU and IMU2 share a bias")
	}
}

func TestBatteryPassthrough(t *testing.T) {
	s := NewSuite(noiselessConfig())
	batt := sim.Battery{Voltage: 11.7, CurrentA: 14.2}
	r := s.Sample(0, restingState(), mathx.Vec3{}, batt)
	if r.BatteryV != 11.7 || r.CurrentA != 14.2 {
		t.Errorf("battery readings = %v / %v", r.BatteryV, r.CurrentA)
	}
}

func TestZeroRateDefaulted(t *testing.T) {
	s := NewSuite(Config{})
	if s.cfg.GPSRateHz != 5 {
		t.Errorf("zero GPS rate defaulted to %v, want 5", s.cfg.GPSRateHz)
	}
}

func TestGPSDenial(t *testing.T) {
	cfg := noiselessConfig()
	cfg.GPSLatency = 0
	s := NewSuite(cfg)
	st := restingState()
	// Establish a fix.
	r := s.Sample(0, st, mathx.Vec3{}, sim.Battery{})
	if !r.GPSFresh {
		t.Fatal("no initial fix")
	}
	// Deny: no fresh fixes for two seconds, held fix persists.
	s.SetGPSDenied(true)
	moved := st
	moved.Pos = mathx.V3(10, 0, -5)
	for i := 1; i <= 800; i++ {
		r = s.Sample(float64(i)/400, moved, mathx.Vec3{}, sim.Battery{})
		if r.GPSFresh {
			t.Fatalf("fresh fix at %d while denied", i)
		}
	}
	if r.GPS.Pos != st.Pos {
		t.Errorf("held fix changed during denial: %v", r.GPS.Pos)
	}
	// Restore: fixes resume and reflect the new position.
	s.SetGPSDenied(false)
	got := false
	for i := 801; i <= 1200; i++ {
		r = s.Sample(float64(i)/400, moved, mathx.Vec3{}, sim.Battery{})
		if r.GPSFresh {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("no fix after denial lifted")
	}
	if r.GPS.Pos != moved.Pos {
		t.Errorf("post-denial fix = %v, want %v", r.GPS.Pos, moved.Pos)
	}
}
