// Package sensors simulates the onboard sensor suite of a RAV: two IMUs
// (gyroscope + accelerometer), a barometer, a magnetometer, a GPS receiver
// and a battery/current monitor. Each sensor adds a constant bias and
// Gaussian noise to ground truth, and the GPS additionally applies a fixed
// reporting latency, matching the error sources the paper's EKF and the
// SAVIOR-style defenses must tolerate.
package sensors

import (
	"math/rand"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
)

// IMUReading holds one inertial sample in the body frame.
type IMUReading struct {
	// Gyro is the measured angular rate (rad/s).
	Gyro mathx.Vec3
	// Accel is the measured specific force (m/s²). A vehicle at rest
	// reads approximately (0, 0, -g) in the FRD body frame.
	Accel mathx.Vec3
}

// GPSReading is one position fix.
type GPSReading struct {
	// Pos is the NED position (m). Real receivers report lat/lon; the
	// local NED frame keeps the math identical without geodesy.
	Pos mathx.Vec3
	// Vel is the NED velocity (m/s).
	Vel mathx.Vec3
	// NumSats is the simulated satellite count.
	NumSats int
	// Valid reports whether the fix is usable.
	Valid bool
}

// Reading is a complete sensor snapshot at one controller tick.
type Reading struct {
	Time float64
	IMU  IMUReading
	IMU2 IMUReading
	// BaroAlt is the barometric altitude above the ground (m, positive up).
	BaroAlt float64
	// MagYaw is the heading inferred from the magnetometer (rad).
	MagYaw float64
	// GPS is the latest fix; fresh only when GPSFresh is set.
	GPS      GPSReading
	GPSFresh bool
	// BatteryV and CurrentA come from the power monitor.
	BatteryV float64
	CurrentA float64
}

// Config sets the noise figures for the suite. Zero values disable the
// corresponding noise source, which is useful in deterministic tests.
type Config struct {
	GyroNoise   float64 // rad/s, 1σ
	GyroBias    float64 // rad/s, max constant bias magnitude per axis
	AccelNoise  float64 // m/s², 1σ
	AccelBias   float64 // m/s², max constant bias magnitude per axis
	BaroNoise   float64 // m, 1σ
	MagNoise    float64 // rad, 1σ
	GPSNoise    float64 // m horizontal, 1σ
	GPSVelNoise float64 // m/s, 1σ
	GPSRateHz   float64 // fix rate (default 5 Hz)
	GPSLatency  float64 // reporting delay in s
	Seed        int64
}

// DefaultConfig returns noise figures typical of a Pixhawk-class sensor set.
func DefaultConfig() Config {
	return Config{
		GyroNoise:   0.002,
		GyroBias:    0.005,
		AccelNoise:  0.05,
		AccelBias:   0.08,
		BaroNoise:   0.12,
		MagNoise:    0.01,
		GPSNoise:    0.4,
		GPSVelNoise: 0.1,
		GPSRateHz:   5,
		GPSLatency:  0.12,
		Seed:        1,
	}
}

// Suite samples every sensor from the simulated vehicle.
type Suite struct {
	cfg Config
	rng *rand.Rand

	gyroBias   mathx.Vec3
	accelBias  mathx.Vec3
	gyroBias2  mathx.Vec3
	accelBias2 mathx.Vec3

	lastGPSTime float64
	gpsQueue    []timedFix // fixes awaiting their latency
	haveGPS     bool
	lastFix     GPSReading
	gpsDenied   bool
}

type timedFix struct {
	due float64
	fix GPSReading
}

// NewSuite creates a sensor suite with deterministic per-axis biases drawn
// from the seeded PRNG.
func NewSuite(cfg Config) *Suite {
	if cfg.GPSRateHz <= 0 {
		cfg.GPSRateHz = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bias := func(mag float64) mathx.Vec3 {
		return mathx.V3(
			(rng.Float64()*2-1)*mag,
			(rng.Float64()*2-1)*mag,
			(rng.Float64()*2-1)*mag,
		)
	}
	return &Suite{
		cfg:         cfg,
		rng:         rng,
		gyroBias:    bias(cfg.GyroBias),
		accelBias:   bias(cfg.AccelBias),
		gyroBias2:   bias(cfg.GyroBias),
		accelBias2:  bias(cfg.AccelBias),
		lastGPSTime: -1,
	}
}

// Sample produces a full sensor reading from the vehicle's true state. The
// now parameter is the simulation time in seconds and accelWorld is the true
// world-frame acceleration over the last step.
func (s *Suite) Sample(now float64, state sim.State, accelWorld mathx.Vec3, battery sim.Battery) Reading {
	r := Reading{
		Time:     now,
		IMU:      s.sampleIMU(state, accelWorld, s.gyroBias, s.accelBias),
		IMU2:     s.sampleIMU(state, accelWorld, s.gyroBias2, s.accelBias2),
		BaroAlt:  state.Altitude() + s.noise(s.cfg.BaroNoise),
		BatteryV: battery.Voltage,
		CurrentA: battery.CurrentA,
	}
	_, _, yaw := state.Euler()
	r.MagYaw = mathx.WrapPi(yaw + s.noise(s.cfg.MagNoise))

	// GPS: enqueue a fix at the fix rate; deliver it after the latency.
	// A denied receiver (jamming, canyon, spoof-shield fail-closed)
	// produces no new fixes; the stale held fix keeps its old value but
	// is never refreshed.
	if !s.gpsDenied && (s.lastGPSTime < 0 || now-s.lastGPSTime >= 1/s.cfg.GPSRateHz) {
		s.lastGPSTime = now
		fix := GPSReading{
			Pos: state.Pos.Add(mathx.V3(
				s.noise(s.cfg.GPSNoise),
				s.noise(s.cfg.GPSNoise),
				s.noise(s.cfg.GPSNoise*1.5),
			)),
			Vel: state.Vel.Add(mathx.V3(
				s.noise(s.cfg.GPSVelNoise),
				s.noise(s.cfg.GPSVelNoise),
				s.noise(s.cfg.GPSVelNoise),
			)),
			NumSats: 10 + s.rng.Intn(5),
			Valid:   true,
		}
		s.gpsQueue = append(s.gpsQueue, timedFix{due: now + s.cfg.GPSLatency, fix: fix})
	}
	for len(s.gpsQueue) > 0 && s.gpsQueue[0].due <= now {
		s.lastFix = s.gpsQueue[0].fix
		s.haveGPS = true
		s.gpsQueue = s.gpsQueue[1:]
		r.GPSFresh = true
	}
	if s.haveGPS {
		r.GPS = s.lastFix
	}
	return r
}

// SetGPSDenied toggles GPS denial — the fault-injection hook for
// GPS-outage scenarios. While denied, no new fixes are generated; fixes
// already in the latency pipeline still deliver.
func (s *Suite) SetGPSDenied(denied bool) { s.gpsDenied = denied }

func (s *Suite) sampleIMU(state sim.State, accelWorld mathx.Vec3, gyroBias, accelBias mathx.Vec3) IMUReading {
	gyro := state.Omega.
		Add(gyroBias).
		Add(s.noiseVec(s.cfg.GyroNoise))
	// Specific force: what an accelerometer measures is the non-
	// gravitational acceleration, expressed in the body frame.
	gravity := mathx.V3(0, 0, sim.Gravity)
	specificWorld := accelWorld.Sub(gravity)
	accel := state.Att.RotateInverse(specificWorld).
		Add(accelBias).
		Add(s.noiseVec(s.cfg.AccelNoise))
	return IMUReading{Gyro: gyro, Accel: accel}
}

func (s *Suite) noise(sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	return s.rng.NormFloat64() * sigma
}

func (s *Suite) noiseVec(sigma float64) mathx.Vec3 {
	if sigma <= 0 {
		return mathx.Vec3{}
	}
	return mathx.V3(
		s.rng.NormFloat64()*sigma,
		s.rng.NormFloat64()*sigma,
		s.rng.NormFloat64()*sigma,
	)
}
