// Package dataflash implements the onboard binary flight logger: a
// self-describing format in the style of ArduPilot's dataflash logs, where
// FMT records define each message's name and field list and data records
// carry timestamped float values.
//
// The message catalogue reproduces Table I of the paper exactly: the 40
// ArduCopter message types whose 342 available log variables (ALVs) form
// the known state variable list (KSVL) that ARES starts from.
package dataflash

import "fmt"

// MessageDef describes one log message type.
type MessageDef struct {
	// Type is the binary record type byte.
	Type byte
	// Name is the message name, at most 4 characters (e.g. "ATT").
	Name string
	// Fields lists the value columns; every record carries one float per
	// field plus a timestamp.
	Fields []string
}

// NumFields returns the number of value columns (the ALV count of Table I).
func (d MessageDef) NumFields() int { return len(d.Fields) }

// fmtType is the record type byte reserved for FMT (format) records.
const fmtType = 0x80

// Catalogue returns the full ArduCopter message set of the paper's Table I:
// 40 message types, 342 ALVs. The returned slice is a fresh copy.
func Catalogue() []MessageDef {
	out := make([]MessageDef, len(catalogue))
	copy(out, catalogue)
	return out
}

// DefByName looks up a message definition.
func DefByName(name string) (MessageDef, bool) {
	for _, d := range catalogue {
		if d.Name == name {
			return d, true
		}
	}
	return MessageDef{}, false
}

// KSVL returns the known state variable list: every "MSG.Field" name in the
// catalogue, in catalogue order. This is the starting variable inventory of
// the paper's Section IV-B.
func KSVL() []string {
	var names []string
	for _, d := range catalogue {
		for _, f := range d.Fields {
			names = append(names, fmt.Sprintf("%s.%s", d.Name, f))
		}
	}
	return names
}

// TotalALVs returns the catalogue-wide ALV count (342 per Table I).
func TotalALVs() int {
	total := 0
	for _, d := range catalogue {
		total += len(d.Fields)
	}
	return total
}

// catalogue is the Table I message set. Field names follow the ArduPilot log
// documentation; counts match the paper's ALV column exactly.
var catalogue = []MessageDef{
	{Type: 1, Name: "AHR2", Fields: []string{"Roll", "Pitch", "Yaw", "Alt", "Lat", "Lng", "Q1"}},                                                         // 7
	{Type: 2, Name: "ATT", Fields: []string{"DesRoll", "Roll", "DesPitch", "Pitch", "DesYaw", "Yaw", "ErrRP", "ErrYaw", "GyrX", "GyrY", "GyrZ", "AEKF"}}, // 12
	{Type: 3, Name: "BARO", Fields: []string{"Alt", "Press", "Temp", "CRt", "SMS"}},                                                                      // 5
	{Type: 4, Name: "CMD", Fields: []string{"CTot", "CNum", "CId", "Prm1", "Alt", "Dist"}},                                                               // 6
	{Type: 5, Name: "CTUN", Fields: []string{"ThI", "ThO", "ThH", "DAlt", "Alt", "CRt"}},                                                                 // 6
	{Type: 6, Name: "CURR", Fields: []string{"Volt", "Curr", "CurrTot", "EnrgTot", "VoltR", "Res", "SafetyV"}},                                           // 7
	{Type: 7, Name: "DU32", Fields: []string{"Id", "Value", "Aux"}},                                                                                      // 3
	{Type: 8, Name: "EKF1", Fields: []string{"Roll", "Pitch", "Yaw", "VN", "VE", "VD", "dPD", "PN", "PE", "PD", "GX", "GY", "GZ", "OH"}},                 // 14
	{Type: 9, Name: "EKF2", Fields: []string{"AX", "AY", "AZ", "VWN", "VWE", "MN", "ME", "MD", "MX", "MY", "MZ", "MI"}},                                  // 12
	{Type: 10, Name: "EKF3", Fields: []string{"IVN", "IVE", "IVD", "IPN", "IPE", "IPD", "IMX", "IMY", "IMZ", "IYAW", "IVT"}},                             // 11
	{Type: 11, Name: "EKF4", Fields: []string{"SV", "SP", "SH", "SM", "SVT", "errRP", "OFN", "OFE", "FS", "TS", "SS", "GPS", "PI", "AEKF"}},              // 14
	{Type: 12, Name: "EV", Fields: []string{"Id", "Code"}},                                                                                               // 2
	{Type: 13, Name: "FMT", Fields: []string{"Type", "Length", "Name", "Format", "Columns", "Units"}},                                                    // 6
	{Type: 14, Name: "GPA", Fields: []string{"VDop", "HAcc", "VAcc", "SAcc", "VV"}},                                                                      // 5
	{Type: 15, Name: "GPS", Fields: []string{"Status", "GMS", "GWk", "NSats", "HDop", "Lat", "Lng", "Alt", "Spd", "GCrs", "VZ", "Yaw", "U", "PD"}},       // 14
	{Type: 16, Name: "IMU", Fields: []string{"GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ", "EG", "EA", "T", "GH", "AH", "GHz"}},                        // 12
	{Type: 17, Name: "IMU2", Fields: []string{"GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ", "EG", "EA", "T", "GH", "AH", "GHz"}},                       // 12
	{Type: 18, Name: "MAG", Fields: []string{"MagX", "MagY", "MagZ", "OfsX", "OfsY", "OfsZ", "MOX", "MOY", "MOZ", "Health", "S"}},                        // 11
	{Type: 19, Name: "MAG2", Fields: []string{"MagX", "MagY", "MagZ", "OfsX", "OfsY", "OfsZ", "MOX", "MOY", "MOZ", "Health", "S"}},                       // 11
	{Type: 20, Name: "MAV", Fields: []string{"chan", "txp"}},                                                                                             // 2
	{Type: 21, Name: "MODE", Fields: []string{"Mode", "ModeNum", "Rsn"}},                                                                                 // 3
	{Type: 22, Name: "MOTB", Fields: []string{"LiftMax", "BatVolt", "BatRes", "ThLimit", "ThrOut"}},                                                      // 5
	{Type: 23, Name: "MSG", Fields: []string{"Message"}},                                                                                                 // 1
	{Type: 24, Name: "NKF1", Fields: []string{"Roll", "Pitch", "Yaw", "VN", "VE", "VD", "dPD", "PN", "PE", "PD", "GX", "GY", "GZ", "OH"}},                // 14
	{Type: 25, Name: "NKF2", Fields: []string{"AZbias", "GSX", "GSY", "GSZ", "VWN", "VWE", "MN", "ME", "MD", "MX", "MY", "MZ", "MI"}},                    // 13
	{Type: 26, Name: "NKF3", Fields: []string{"IVN", "IVE", "IVD", "IPN", "IPE", "IPD", "IMX", "IMY", "IMZ", "IYAW", "IVT", "RErr"}},                     // 12
	{Type: 27, Name: "NKF4", Fields: []string{"SV", "SP", "SH", "SM", "SVT", "errRP", "OFN", "OFE", "FS", "TS", "SS", "GPS", "PI"}},                      // 13
	{Type: 28, Name: "NTUN", Fields: []string{"WPDst", "WPBrg", "PErX", "PErY", "DVelX", "DVelY", "VelX", "VelY", "DAcX", "DAcY", "tv"}},                 // 11
	{Type: 29, Name: "PARM", Fields: []string{"Name", "Value", "Default"}},                                                                               // 3
	{Type: 30, Name: "PIDA", Fields: []string{"Tar", "Act", "P", "I", "D", "FF", "Dmod"}},                                                                // 7
	{Type: 31, Name: "PIDR", Fields: []string{"Tar", "Act", "P", "I", "D", "FF", "Dmod"}},                                                                // 7
	{Type: 32, Name: "PIDY", Fields: []string{"Tar", "Act", "P", "I", "D", "FF", "Dmod"}},                                                                // 7
	{Type: 33, Name: "PIDP", Fields: []string{"Tar", "Act", "P", "I", "D", "FF", "Dmod"}},                                                                // 7
	{Type: 34, Name: "PM", Fields: []string{"NLon", "NLoop", "MaxT", "Mem", "Load", "IntE", "ErrL"}},                                                     // 7
	{Type: 35, Name: "POS", Fields: []string{"Lat", "Lng", "Alt", "RelHomeAlt", "RelOriginAlt"}},                                                         // 5
	{Type: 36, Name: "RATE", Fields: []string{"RDes", "R", "ROut", "PDes", "P", "POut", "YDes", "Y", "YOut", "ADes", "A", "AOut", "AOutSlew"}},           // 13
	{Type: 37, Name: "RCIN", Fields: []string{"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11", "C12", "C13", "C14", "C15"}},           // 15
	{Type: 38, Name: "RCOU", Fields: []string{"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11", "C12", "C13"}},                         // 13
	{Type: 39, Name: "SIM", Fields: []string{"Roll", "Pitch", "Yaw", "Alt", "Lat", "Lng", "Q1"}},                                                         // 7
	{Type: 40, Name: "VIBE", Fields: []string{"VibeX", "VibeY", "VibeZ", "Clip0", "Clip1", "Clip2", "Health"}},                                           // 7
}
