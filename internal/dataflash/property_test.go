package dataflash

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestPropertyRoundTrip checks that any sequence of records for any message
// type survives a write/read cycle within float32 precision.
func TestPropertyRoundTrip(t *testing.T) {
	defs := Catalogue()
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%32) + 1

		var buf bytes.Buffer
		w := NewWriter(&buf)
		type written struct {
			name   string
			time   float64
			values []float64
		}
		var wrote []written
		for i := 0; i < n; i++ {
			def := defs[rng.Intn(len(defs))]
			vals := make([]float64, def.NumFields())
			for j := range vals {
				vals[j] = float64(float32(rng.NormFloat64() * 100))
			}
			ts := float64(i) * 0.0625
			if err := w.Log(def.Name, ts, vals...); err != nil {
				t.Logf("write: %v", err)
				return false
			}
			wrote = append(wrote, written{def.Name, ts, vals})
		}
		if err := w.Close(); err != nil {
			return false
		}

		log, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if len(log.Records) != len(wrote) {
			return false
		}
		for i, rec := range log.Records {
			want := wrote[i]
			if rec.Name != want.name || math.Abs(rec.Time-want.time) > 1e-6 {
				return false
			}
			for j := range rec.Values {
				if rec.Values[j] != want.values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReaderNeverPanics feeds the reader random byte soup: it must
// return (possibly an error) without panicking, and any records it does
// return must be well-formed.
func TestPropertyReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		log, err := Read(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for _, rec := range log.Records {
			if rec.Name == "" || rec.Values == nil && len(rec.Values) != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(256)
			data := make([]byte, n)
			r.Read(data)
			// Seed with magic bytes sometimes so the parser gets past
			// resync and exercises deeper paths.
			if n > 3 && r.Intn(2) == 0 {
				data[0], data[1] = magic1, magic2
			}
			vals[0] = reflect.ValueOf(data)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
