package dataflash

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary layout:
//
//	file      = *record
//	record    = magic1 magic2 type payload
//	FMT       = type=0x80, then: msgType(1) nameLen(1) name fieldCount(1)
//	            *(fieldLen(1) field)
//	data      = type byte registered by a FMT, then: timeUS(8, LE uint64)
//	            *(value float32 LE)
//
// The two magic bytes (0xA3 0x95) front every record, as in real ArduPilot
// logs, giving the reader a resync point after corruption.
const (
	magic1 = 0xA3
	magic2 = 0x95
)

// Record is one decoded data record.
type Record struct {
	// Name is the message name (e.g. "ATT").
	Name string
	// Time is the record timestamp in seconds.
	Time float64
	// Values holds one value per field of the message definition.
	Values []float64
}

// Writer encodes records to an underlying stream.
type Writer struct {
	w      *bufio.Writer
	defs   map[string]MessageDef
	wrote  map[string]bool
	closed bool
}

// NewWriter creates a log writer with the full Table I catalogue available.
// FMT records are emitted lazily before the first record of each type.
func NewWriter(w io.Writer) *Writer {
	defs := make(map[string]MessageDef, len(catalogue))
	for _, d := range catalogue {
		defs[d.Name] = d
	}
	return &Writer{
		w:     bufio.NewWriter(w),
		defs:  defs,
		wrote: make(map[string]bool),
	}
}

// Log writes one record. The value count must match the message definition.
func (w *Writer) Log(name string, timeS float64, values ...float64) error {
	if w.closed {
		return errors.New("dataflash: write after Close")
	}
	def, ok := w.defs[name]
	if !ok {
		return fmt.Errorf("dataflash: unknown message %q", name)
	}
	if len(values) != len(def.Fields) {
		return fmt.Errorf("dataflash: message %q wants %d values, got %d",
			name, len(def.Fields), len(values))
	}
	if !w.wrote[name] {
		if err := w.writeFMT(def); err != nil {
			return err
		}
		w.wrote[name] = true
	}
	if err := w.writeHeader(def.Type); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(timeS*1e6))
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	for _, v := range values {
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(float32(v)))
		if _, err := w.w.Write(buf[:4]); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) writeHeader(recType byte) error {
	_, err := w.w.Write([]byte{magic1, magic2, recType})
	return err
}

func (w *Writer) writeFMT(def MessageDef) error {
	if err := w.writeHeader(fmtType); err != nil {
		return err
	}
	if err := w.w.WriteByte(def.Type); err != nil {
		return err
	}
	if err := writeString(w.w, def.Name); err != nil {
		return err
	}
	if err := w.w.WriteByte(byte(len(def.Fields))); err != nil {
		return err
	}
	for _, f := range def.Fields {
		if err := writeString(w.w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 255 {
		return fmt.Errorf("dataflash: string %q too long", s)
	}
	if err := w.WriteByte(byte(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// Close flushes buffered records.
func (w *Writer) Close() error {
	w.closed = true
	return w.w.Flush()
}

// Log is a fully parsed dataflash log.
type Log struct {
	// Records holds all data records in file order.
	Records []Record
	defs    map[byte]MessageDef
}

// Read parses a complete log from r.
func Read(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	log := &Log{defs: make(map[byte]MessageDef)}
	for {
		if err := expectMagic(br); err != nil {
			if errors.Is(err, io.EOF) {
				return log, nil
			}
			return nil, err
		}
		recType, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("dataflash: truncated record type: %w", err)
		}
		if recType == fmtType {
			if err := log.readFMT(br); err != nil {
				return nil, err
			}
			continue
		}
		def, ok := log.defs[recType]
		if !ok {
			return nil, fmt.Errorf("dataflash: record type 0x%02x before its FMT", recType)
		}
		rec, err := readRecord(br, def)
		if err != nil {
			return nil, err
		}
		log.Records = append(log.Records, rec)
	}
}

func expectMagic(br *bufio.Reader) error {
	b1, err := br.ReadByte()
	if err != nil {
		return err
	}
	b2, err := br.ReadByte()
	if err != nil {
		return err
	}
	if b1 != magic1 || b2 != magic2 {
		return fmt.Errorf("dataflash: bad magic %02x %02x", b1, b2)
	}
	return nil
}

func (l *Log) readFMT(br *bufio.Reader) error {
	msgType, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("dataflash: truncated FMT: %w", err)
	}
	name, err := readString(br)
	if err != nil {
		return err
	}
	count, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("dataflash: truncated FMT field count: %w", err)
	}
	fields := make([]string, count)
	for i := range fields {
		if fields[i], err = readString(br); err != nil {
			return err
		}
	}
	l.defs[msgType] = MessageDef{Type: msgType, Name: name, Fields: fields}
	return nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := br.ReadByte()
	if err != nil {
		return "", fmt.Errorf("dataflash: truncated string length: %w", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("dataflash: truncated string: %w", err)
	}
	return string(buf), nil
}

func readRecord(br *bufio.Reader, def MessageDef) (Record, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return Record{}, fmt.Errorf("dataflash: truncated timestamp: %w", err)
	}
	rec := Record{
		Name:   def.Name,
		Time:   float64(binary.LittleEndian.Uint64(buf[:])) / 1e6,
		Values: make([]float64, len(def.Fields)),
	}
	for i := range rec.Values {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return Record{}, fmt.Errorf("dataflash: truncated value: %w", err)
		}
		rec.Values[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:4])))
	}
	return rec, nil
}

// Defs returns the message definitions seen in the log, sorted by name.
func (l *Log) Defs() []MessageDef {
	out := make([]MessageDef, 0, len(l.defs))
	for _, d := range l.defs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Series extracts the time series for one "MSG.Field" variable: parallel
// slices of timestamps and values. Unknown variables yield empty slices.
func (l *Log) Series(variable string) (times, values []float64) {
	name, field, ok := splitVar(variable)
	if !ok {
		return nil, nil
	}
	fieldIdx := -1
	for _, d := range l.defs {
		if d.Name != name {
			continue
		}
		for i, f := range d.Fields {
			if f == field {
				fieldIdx = i
				break
			}
		}
	}
	if fieldIdx < 0 {
		return nil, nil
	}
	for _, r := range l.Records {
		if r.Name == name {
			times = append(times, r.Time)
			values = append(values, r.Values[fieldIdx])
		}
	}
	return times, values
}

// Variables returns every "MSG.Field" name that has at least one record.
func (l *Log) Variables() []string {
	seen := make(map[string]bool)
	for _, r := range l.Records {
		seen[r.Name] = true
	}
	var out []string
	for _, d := range l.Defs() {
		if !seen[d.Name] {
			continue
		}
		for _, f := range d.Fields {
			out = append(out, d.Name+"."+f)
		}
	}
	return out
}

func splitVar(v string) (msg, field string, ok bool) {
	for i := 0; i < len(v); i++ {
		if v[i] == '.' {
			return v[:i], v[i+1:], i > 0 && i < len(v)-1
		}
	}
	return "", "", false
}
