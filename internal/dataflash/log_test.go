package dataflash

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCatalogueMatchesTableI(t *testing.T) {
	// The paper's Table I: 40 message types, 342 ALVs total.
	defs := Catalogue()
	if len(defs) != 40 {
		t.Errorf("catalogue has %d message types, want 40", len(defs))
	}
	if got := TotalALVs(); got != 342 {
		t.Errorf("total ALVs = %d, want 342", got)
	}
	// Spot-check the per-type counts against Table I.
	wantCounts := map[string]int{
		"AHR2": 7, "ATT": 12, "BARO": 5, "CMD": 6, "CTUN": 6, "CURR": 7,
		"DU32": 3, "EKF1": 14, "EKF2": 12, "EKF3": 11, "EKF4": 14, "EV": 2,
		"FMT": 6, "GPA": 5, "GPS": 14, "IMU": 12, "IMU2": 12, "MAG": 11,
		"MAG2": 11, "MAV": 2, "MODE": 3, "MOTB": 5, "MSG": 1, "NKF1": 14,
		"NKF2": 13, "NKF3": 12, "NKF4": 13, "NTUN": 11, "PARM": 3, "PIDA": 7,
		"PIDR": 7, "PIDY": 7, "PIDP": 7, "PM": 7, "POS": 5, "RATE": 13,
		"RCIN": 15, "RCOU": 13, "SIM": 7, "VIBE": 7,
	}
	for _, d := range defs {
		want, ok := wantCounts[d.Name]
		if !ok {
			t.Errorf("unexpected message type %s", d.Name)
			continue
		}
		if d.NumFields() != want {
			t.Errorf("%s has %d ALVs, want %d", d.Name, d.NumFields(), want)
		}
	}
	// Type bytes are unique and never collide with the FMT type.
	seen := make(map[byte]string)
	for _, d := range defs {
		if d.Type == fmtType {
			t.Errorf("%s uses the reserved FMT type byte", d.Name)
		}
		if prev, dup := seen[d.Type]; dup {
			t.Errorf("type byte %d shared by %s and %s", d.Type, prev, d.Name)
		}
		seen[d.Type] = d.Name
	}
}

func TestKSVL(t *testing.T) {
	ksvl := KSVL()
	if len(ksvl) != 342 {
		t.Errorf("KSVL has %d entries, want 342", len(ksvl))
	}
	// Entries are MSG.Field and unique.
	seen := make(map[string]bool)
	for _, v := range ksvl {
		if !strings.Contains(v, ".") {
			t.Errorf("malformed KSVL entry %q", v)
		}
		if seen[v] {
			t.Errorf("duplicate KSVL entry %q", v)
		}
		seen[v] = true
	}
	for _, want := range []string{"ATT.Roll", "IMU.GyrX", "PIDR.I", "EKF1.Roll", "NTUN.tv"} {
		if !seen[want] {
			t.Errorf("KSVL missing %s", want)
		}
	}
}

func TestDefByName(t *testing.T) {
	d, ok := DefByName("ATT")
	if !ok || d.Name != "ATT" || d.NumFields() != 12 {
		t.Errorf("DefByName(ATT) = %+v, %v", d, ok)
	}
	if _, ok := DefByName("NOPE"); ok {
		t.Error("DefByName found missing message")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	attVals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if err := w.Log("ATT", 0.5, attVals...); err != nil {
		t.Fatal(err)
	}
	if err := w.Log("BARO", 0.5, 10.5, 1013.2, 25, 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Log("ATT", 1.0, attVals...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(log.Records))
	}
	if log.Records[0].Name != "ATT" || log.Records[1].Name != "BARO" {
		t.Errorf("record order: %s, %s", log.Records[0].Name, log.Records[1].Name)
	}
	if got := log.Records[0].Time; math.Abs(got-0.5) > 1e-6 {
		t.Errorf("time = %v, want 0.5", got)
	}
	for i, v := range log.Records[0].Values {
		if math.Abs(v-attVals[i]) > 1e-5 {
			t.Errorf("value[%d] = %v, want %v", i, v, attVals[i])
		}
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Log("NOPE", 0, 1); err == nil {
		t.Error("unknown message accepted")
	}
	if err := w.Log("BARO", 0, 1, 2); err == nil {
		t.Error("wrong value count accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Log("BARO", 0, 1, 2, 3, 4, 5); err == nil {
		t.Error("write after Close accepted")
	}
}

func TestReadErrors(t *testing.T) {
	// Bad magic.
	if _, err := Read(bytes.NewReader([]byte{0x00, 0x00, 0x01})); err == nil {
		t.Error("bad magic accepted")
	}
	// Record before its FMT.
	if _, err := Read(bytes.NewReader([]byte{magic1, magic2, 0x05})); err == nil {
		t.Error("record before FMT accepted")
	}
	// Truncated mid-record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Log("BARO", 0, 1, 2, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Error("truncated record accepted")
	}
	// Empty log is fine.
	log, err := Read(bytes.NewReader(nil))
	if err != nil || len(log.Records) != 0 {
		t.Errorf("empty log: %v, %d records", err, len(log.Records))
	}
}

func TestSeriesExtraction(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		vals := make([]float64, 12)
		vals[1] = float64(i) * 1.5 // Roll column
		if err := w.Log("ATT", float64(i)*0.0625, vals...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	times, values := log.Series("ATT.Roll")
	if len(times) != 10 || len(values) != 10 {
		t.Fatalf("series lengths %d/%d, want 10", len(times), len(values))
	}
	for i := range values {
		if math.Abs(values[i]-float64(i)*1.5) > 1e-5 {
			t.Errorf("values[%d] = %v", i, values[i])
		}
		if math.Abs(times[i]-float64(i)*0.0625) > 1e-6 {
			t.Errorf("times[%d] = %v", i, times[i])
		}
	}
	// Unknown and malformed variables.
	if _, v := log.Series("ATT.Nope"); v != nil {
		t.Error("unknown field returned data")
	}
	if _, v := log.Series("noDotHere"); v != nil {
		t.Error("malformed variable returned data")
	}
}

func TestVariablesListsOnlyLogged(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Log("BARO", 0, 1, 2, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	vars := log.Variables()
	if len(vars) != 5 {
		t.Errorf("variables = %v, want the 5 BARO fields", vars)
	}
	if vars[0] != "BARO.Alt" {
		t.Errorf("first variable = %s", vars[0])
	}
}

func TestDefsSorted(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Log("IMU", 0, make([]float64, 12)...)
	_ = w.Log("ATT", 0, make([]float64, 12)...)
	_ = w.Close()
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defs := log.Defs()
	if len(defs) != 2 || defs[0].Name != "ATT" || defs[1].Name != "IMU" {
		t.Errorf("Defs = %v", defs)
	}
}
