// Package sim implements the 6-DoF quadrotor physics simulator that stands
// in for the ArduPilot SITL + Gazebo testbed used in the ARES paper.
//
// The simulator models a quad-X frame as a rigid body driven by four
// first-order-lag motors, with aerodynamic drag, a gust-capable wind model, a
// simple battery, a flat ground plane and axis-aligned box obstacles. State
// is integrated with a fourth-order Runge-Kutta scheme at the physics rate
// (default 400 Hz, matching the ArduCopter main loop).
//
// Frames: world vectors are NED (north, east, down; gravity is +Z), body
// vectors are FRD (forward, right, down). Thrust acts along body -Z.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/ares-cps/ares/internal/mathx"
)

// Gravity is the standard gravitational acceleration in m/s² (world +Z).
const Gravity = 9.80665

// VehicleParams describes the physical quadrotor. Defaults approximate the
// 3DR IRIS+ airframe flown in the paper's evaluation.
type VehicleParams struct {
	// Mass is the takeoff mass in kg.
	Mass float64
	// Inertia holds the diagonal body inertia (Ixx, Iyy, Izz) in kg·m².
	Inertia mathx.Vec3
	// ArmLength is the motor arm length from the center in m.
	ArmLength float64
	// MaxThrustPerMotor is the thrust at full command for one motor, in N.
	MaxThrustPerMotor float64
	// TorqueCoeff converts motor thrust (N) into yaw reaction torque (N·m).
	TorqueCoeff float64
	// MotorTau is the motor first-order lag time constant in s.
	MotorTau float64
	// LinearDrag holds per-axis linear drag coefficients (N per m/s).
	LinearDrag mathx.Vec3
	// AngularDrag holds rotational drag coefficients (N·m per rad/s).
	AngularDrag mathx.Vec3
	// BatteryCapacity is the usable battery charge in mAh.
	BatteryCapacity float64
	// HoverCurrent is the current draw at hover throttle in A.
	HoverCurrent float64
	// BatteryVoltage is the nominal full-charge voltage in V.
	BatteryVoltage float64
}

// IRISPlusParams returns vehicle parameters approximating the 3DR IRIS+
// quadrotor (1.37 kg, 0.23 m arms) used in the paper's evaluation.
func IRISPlusParams() VehicleParams {
	return VehicleParams{
		Mass:              1.37,
		Inertia:           mathx.V3(0.0219, 0.0109, 0.0306),
		ArmLength:         0.23,
		MaxThrustPerMotor: 8.5,
		TorqueCoeff:       0.016,
		MotorTau:          0.05,
		LinearDrag:        mathx.V3(0.35, 0.35, 0.55),
		AngularDrag:       mathx.V3(0.003, 0.003, 0.004),
		BatteryCapacity:   5100,
		HoverCurrent:      13,
		BatteryVoltage:    12.6,
	}
}

// Pixhawk4Params returns parameters approximating a generic Pixhawk4-based
// 450-class quadrotor, the second virtual vehicle in the evaluation.
func Pixhawk4Params() VehicleParams {
	return VehicleParams{
		Mass:              1.62,
		Inertia:           mathx.V3(0.0347, 0.0347, 0.0617),
		ArmLength:         0.225,
		MaxThrustPerMotor: 9.8,
		TorqueCoeff:       0.018,
		MotorTau:          0.06,
		LinearDrag:        mathx.V3(0.40, 0.40, 0.60),
		AngularDrag:       mathx.V3(0.004, 0.004, 0.005),
		BatteryCapacity:   5000,
		HoverCurrent:      15,
		BatteryVoltage:    14.8,
	}
}

// Validate reports configuration errors that would break the dynamics.
func (p VehicleParams) Validate() error {
	switch {
	case p.Mass <= 0:
		return errors.New("sim: mass must be positive")
	case p.Inertia.X <= 0 || p.Inertia.Y <= 0 || p.Inertia.Z <= 0:
		return errors.New("sim: inertia components must be positive")
	case p.ArmLength <= 0:
		return errors.New("sim: arm length must be positive")
	case p.MaxThrustPerMotor*4 <= p.Mass*Gravity:
		return fmt.Errorf("sim: max thrust %.2f N cannot lift %.2f kg",
			p.MaxThrustPerMotor*4, p.Mass)
	case p.MotorTau <= 0:
		return errors.New("sim: motor time constant must be positive")
	}
	return nil
}

// HoverThrottle returns the per-motor command fraction that balances gravity.
func (p VehicleParams) HoverThrottle() float64 {
	return p.Mass * Gravity / (4 * p.MaxThrustPerMotor)
}

// State is the full rigid-body state of the vehicle.
type State struct {
	// Pos is the world NED position in m (Z is down; altitude = -Z).
	Pos mathx.Vec3
	// Vel is the world NED velocity in m/s.
	Vel mathx.Vec3
	// Att is the body→world attitude quaternion.
	Att mathx.Quat
	// Omega is the body angular rate (p, q, r) in rad/s.
	Omega mathx.Vec3
	// Motor holds the four actual (lagged) motor outputs in [0, 1],
	// ordered front-right, back-left, front-left, back-right (ArduPilot
	// quad-X numbering).
	Motor [4]float64
}

// Altitude returns height above ground in m (positive up).
func (s State) Altitude() float64 { return -s.Pos.Z }

// Euler returns the attitude as (roll, pitch, yaw) in radians.
func (s State) Euler() (roll, pitch, yaw float64) { return s.Att.Euler() }

// Quad is the simulated quadrotor plant.
type Quad struct {
	Params VehicleParams

	state       State
	wind        *Wind
	battery     Battery
	crashed     bool
	crashInfo   string
	timeS       float64
	world       *World
	impactSpeed float64
	lastAccel   mathx.Vec3
}

// NewQuad creates a quadrotor resting on the ground at the origin.
// The provided params are validated; invalid params return an error.
func NewQuad(params VehicleParams, opts ...Option) (*Quad, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	q := &Quad{
		Params: params,
		state:  State{Att: mathx.QuatIdentity()},
		battery: Battery{
			CapacitymAh: params.BatteryCapacity,
			RemainmAh:   params.BatteryCapacity,
			NominalV:    params.BatteryVoltage,
			Voltage:     params.BatteryVoltage,
		},
		world: &World{},
	}
	for _, o := range opts {
		o.apply(q)
	}
	return q, nil
}

// Option configures a Quad at construction time.
type Option interface{ apply(*Quad) }

type optionFunc func(*Quad)

func (f optionFunc) apply(q *Quad) { f(q) }

// WithWind installs a wind model.
func WithWind(w *Wind) Option {
	return optionFunc(func(q *Quad) { q.wind = w })
}

// WithWorld installs a world (ground plane plus obstacles).
func WithWorld(w *World) Option {
	return optionFunc(func(q *Quad) {
		if w != nil {
			q.world = w
		}
	})
}

// WithInitialState overrides the starting state.
func WithInitialState(s State) Option {
	return optionFunc(func(q *Quad) { q.state = s })
}

// State returns a copy of the current vehicle state.
func (q *Quad) State() State { return q.state }

// SetState overwrites the vehicle state (used by episode resets).
func (q *Quad) SetState(s State) {
	q.state = s
	q.crashed = false
	q.crashInfo = ""
}

// Time returns the simulated time in seconds since construction or Reset.
func (q *Quad) Time() float64 { return q.timeS }

// LastAccel returns the world-frame acceleration over the most recent step,
// used by the IMU model to derive the specific force an accelerometer sees.
func (q *Quad) LastAccel() mathx.Vec3 { return q.lastAccel }

// Battery returns the current battery status.
func (q *Quad) Battery() Battery { return q.battery }

// World returns the world the vehicle flies in.
func (q *Quad) World() *World { return q.world }

// Crashed reports whether the vehicle has crashed and why.
func (q *Quad) Crashed() (bool, string) { return q.crashed, q.crashInfo }

// Reset restores the vehicle to rest at the given NED position with full
// battery and clears any crash condition.
func (q *Quad) Reset(pos mathx.Vec3) {
	q.state = State{Pos: pos, Att: mathx.QuatIdentity()}
	q.battery.RemainmAh = q.battery.CapacitymAh
	q.battery.Voltage = q.battery.NominalV
	q.crashed = false
	q.crashInfo = ""
	q.timeS = 0
	if q.wind != nil {
		q.wind.Reset()
	}
}

// nonFiniteStep is the crash reason recorded when Step is fed NaN or ±Inf.
const nonFiniteStep = "non-finite motor command or dt"

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Step advances the simulation by dt seconds with the given motor commands
// in [0, 1]. Once crashed the vehicle stays put and Step is a no-op.
//
// Non-finite commands or dt crash the vehicle with an explanatory reason
// instead of silently poisoning the state: a NaN dt previously slipped past
// the dt <= 0 guard and propagated through the integrator.
func (q *Quad) Step(cmd [4]float64, dt float64) {
	if q.crashed {
		return
	}
	if !finite(dt) || !finite(cmd[0]) || !finite(cmd[1]) || !finite(cmd[2]) || !finite(cmd[3]) {
		q.crash(nonFiniteStep)
		return
	}
	if dt <= 0 {
		return
	}
	for i := range cmd {
		cmd[i] = mathx.Clamp(cmd[i], 0, 1)
	}
	if q.battery.Depleted() {
		// A dead battery stops the motors; the vehicle falls.
		cmd = [4]float64{}
	}

	windVel := mathx.Vec3{}
	if q.wind != nil {
		windVel = q.wind.Step(dt)
	}

	prevVel := q.state.Vel
	q.state = q.integrate(q.state, cmd, windVel, dt)
	q.lastAccel = q.state.Vel.Sub(prevVel).Scale(1 / dt)
	q.timeS += dt
	q.battery.drain(q.currentDraw(cmd), dt)
	q.checkCollisions()
}

// currentDraw estimates battery current from the commanded throttle.
func (q *Quad) currentDraw(cmd [4]float64) float64 {
	sum := cmd[0] + cmd[1] + cmd[2] + cmd[3]
	hover := 4 * q.Params.HoverThrottle()
	if hover == 0 {
		return 0
	}
	// Current scales roughly with throttle^1.5 around hover.
	ratio := sum / hover
	return q.Params.HoverCurrent * math.Pow(math.Max(ratio, 0), 1.5)
}

// deriv computes the state derivative for the RK4 integrator.
type deriv struct {
	vel   mathx.Vec3 // d(pos)/dt
	acc   mathx.Vec3 // d(vel)/dt
	omega mathx.Vec3 // body rate for attitude kinematics
	alpha mathx.Vec3 // d(omega)/dt
	motor [4]float64 // d(motor)/dt
}

func (q *Quad) dynamics(s State, cmd [4]float64, windVel mathx.Vec3) deriv {
	p := q.Params

	// Motor first-order lag toward command.
	var dm [4]float64
	for i := range dm {
		dm[i] = (cmd[i] - s.Motor[i]) / p.MotorTau
	}

	// Per-motor thrust (N), body -Z.
	var thrust [4]float64
	total := 0.0
	for i := range thrust {
		thrust[i] = p.MaxThrustPerMotor * s.Motor[i]
		total += thrust[i]
	}

	// Quad-X geometry with ArduPilot motor numbering:
	//   m0 front-right (CCW), m1 back-left (CCW),
	//   m2 front-left (CW),  m3 back-right (CW).
	l := p.ArmLength / math.Sqrt2
	rollTorque := l * (-thrust[0] + thrust[1] + thrust[2] - thrust[3])
	pitchTorque := l * (thrust[0] - thrust[1] + thrust[2] - thrust[3])
	yawTorque := p.TorqueCoeff * (thrust[0] + thrust[1] - thrust[2] - thrust[3])
	torque := mathx.V3(rollTorque, pitchTorque, yawTorque)
	torque = torque.Sub(p.AngularDrag.Hadamard(s.Omega))

	// Forces in world frame: gravity + rotated thrust + drag vs air.
	gravity := mathx.V3(0, 0, p.Mass*Gravity)
	thrustWorld := s.Att.Rotate(mathx.V3(0, 0, -total))
	airRel := s.Vel.Sub(windVel)
	drag := p.LinearDrag.Hadamard(airRel).Neg()
	acc := gravity.Add(thrustWorld).Add(drag).Scale(1 / p.Mass)

	// Euler's rotation equation: I·ω̇ = τ − ω × (I·ω).
	iOmega := p.Inertia.Hadamard(s.Omega)
	gyro := s.Omega.Cross(iOmega)
	alpha := mathx.V3(
		(torque.X-gyro.X)/p.Inertia.X,
		(torque.Y-gyro.Y)/p.Inertia.Y,
		(torque.Z-gyro.Z)/p.Inertia.Z,
	)

	return deriv{vel: s.Vel, acc: acc, omega: s.Omega, alpha: alpha, motor: dm}
}

// applyDeriv advances a state by d scaled by dt (Euler step helper for RK4).
func applyDeriv(s State, d deriv, dt float64) State {
	var out State
	out.Pos = s.Pos.Add(d.vel.Scale(dt))
	out.Vel = s.Vel.Add(d.acc.Scale(dt))
	out.Att = s.Att.Integrate(d.omega, dt)
	out.Omega = s.Omega.Add(d.alpha.Scale(dt))
	for i := range out.Motor {
		out.Motor[i] = mathx.Clamp(s.Motor[i]+d.motor[i]*dt, 0, 1)
	}
	return out
}

// integrate performs one RK4 step of the full dynamics.
func (q *Quad) integrate(s State, cmd [4]float64, windVel mathx.Vec3, dt float64) State {
	k1 := q.dynamics(s, cmd, windVel)
	k2 := q.dynamics(applyDeriv(s, k1, dt/2), cmd, windVel)
	k3 := q.dynamics(applyDeriv(s, k2, dt/2), cmd, windVel)
	k4 := q.dynamics(applyDeriv(s, k3, dt), cmd, windVel)

	combine := func(a, b, c, d mathx.Vec3) mathx.Vec3 {
		return a.Add(b.Scale(2)).Add(c.Scale(2)).Add(d).Scale(1.0 / 6)
	}
	var out State
	out.Pos = s.Pos.Add(combine(k1.vel, k2.vel, k3.vel, k4.vel).Scale(dt))
	out.Vel = s.Vel.Add(combine(k1.acc, k2.acc, k3.acc, k4.acc).Scale(dt))
	out.Omega = s.Omega.Add(combine(k1.alpha, k2.alpha, k3.alpha, k4.alpha).Scale(dt))
	// Attitude: integrate with the RK4-averaged body rate.
	avgOmega := combine(k1.omega, k2.omega, k3.omega, k4.omega)
	out.Att = s.Att.Integrate(avgOmega, dt)
	for i := range out.Motor {
		dm := (k1.motor[i] + 2*k2.motor[i] + 2*k3.motor[i] + k4.motor[i]) / 6
		out.Motor[i] = mathx.Clamp(s.Motor[i]+dm*dt, 0, 1)
	}

	// Ground support: a vehicle resting on the ground cannot sink below
	// it, and gentle contact zeroes vertical motion instead of crashing.
	// The pre-clamp sink rate is kept so the crash check can judge the
	// severity of the impact.
	q.impactSpeed = 0
	if out.Pos.Z > 0 {
		if out.Vel.Z > 0 {
			q.impactSpeed = out.Vel.Z
			out.Vel.Z = 0
		}
		out.Pos.Z = 0
		// Friction kills residual horizontal speed on the ground.
		out.Vel.X *= 0.5
		out.Vel.Y *= 0.5
	}
	return out
}

// CrashSpeed is the vertical impact speed in m/s above which ground contact
// counts as a crash rather than a landing.
const CrashSpeed = 2.5

// tipOverRad is the roll/pitch magnitude beyond which ground contact counts
// as a tip-over (60°); shared by the scalar and batched crash checks.
var tipOverRad = mathx.Rad(60)

func (q *Quad) checkCollisions() {
	s := q.state
	// Hard ground impact (impact speed recorded by the ground clamp).
	if q.impactSpeed > CrashSpeed {
		q.crash(fmt.Sprintf("ground impact at %.1f m/s", q.impactSpeed))
		return
	}
	// Extreme attitude near the ground means a tip-over.
	roll, pitch, _ := s.Euler()
	if s.Altitude() < 0.3 && (math.Abs(roll) > tipOverRad || math.Abs(pitch) > tipOverRad) {
		q.crash("tip-over near ground")
		return
	}
	// Obstacle contact.
	if ob, hit := q.world.Hit(s.Pos); hit {
		q.crash(fmt.Sprintf("collision with obstacle %q", ob.Name))
		return
	}
}

func (q *Quad) crash(reason string) {
	q.crashed = true
	q.crashInfo = reason
	q.state.Vel = mathx.Vec3{}
	q.state.Omega = mathx.Vec3{}
	if q.state.Pos.Z > 0 {
		q.state.Pos.Z = 0
	}
}
