package sim

import (
	"math"
	"math/rand"

	"github.com/ares-cps/ares/internal/mathx"
)

// Obstacle is a named axis-aligned box in the world, used both as a physical
// obstacle (wall) and as a forbidden navigation zone for the controlled
// failure case study.
type Obstacle struct {
	Name string
	Box  mathx.AABB
	// Forbidden marks zones that are off-limits for path planning but not
	// necessarily solid (e.g. restricted airspace). Solid obstacles crash
	// the vehicle on contact; forbidden zones merely register violations.
	Forbidden bool
}

// World holds the static environment: a flat ground plane at Z = 0 and a set
// of obstacles.
type World struct {
	Obstacles []Obstacle
}

// AddObstacle appends an obstacle to the world.
func (w *World) AddObstacle(o Obstacle) { w.Obstacles = append(w.Obstacles, o) }

// Hit returns the first solid obstacle containing p, if any.
func (w *World) Hit(p mathx.Vec3) (Obstacle, bool) {
	for _, o := range w.Obstacles {
		if !o.Forbidden && o.Box.Contains(p) {
			return o, true
		}
	}
	return Obstacle{}, false
}

// InForbiddenZone returns the first forbidden zone containing p, if any.
func (w *World) InForbiddenZone(p mathx.Vec3) (Obstacle, bool) {
	for _, o := range w.Obstacles {
		if o.Forbidden && o.Box.Contains(p) {
			return o, true
		}
	}
	return Obstacle{}, false
}

// NearestObstacleDistance returns the distance from p to the closest
// obstacle or forbidden-zone surface, or +Inf when the world is empty.
func (w *World) NearestObstacleDistance(p mathx.Vec3) float64 {
	best := math.Inf(1)
	for _, o := range w.Obstacles {
		if d := o.Box.Distance(p); d < best {
			best = d
		}
	}
	return best
}

// Wind is an Ornstein-Uhlenbeck gust model producing a slowly varying wind
// velocity around a constant mean. It stands in for Gazebo's wind plugin.
type Wind struct {
	// Mean is the steady wind velocity in world NED m/s.
	Mean mathx.Vec3
	// GustSigma is the standard deviation of gust velocity in m/s.
	GustSigma float64
	// GustTau is the gust correlation time constant in s.
	GustTau float64

	rng  *rand.Rand
	gust mathx.Vec3
}

// NewWind creates a wind model with the given mean, gust magnitude and a
// deterministic seed so experiments are reproducible.
func NewWind(mean mathx.Vec3, gustSigma float64, seed int64) *Wind {
	return &Wind{
		Mean:      mean,
		GustSigma: gustSigma,
		GustTau:   2.0,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Step advances the gust process by dt and returns the total wind velocity.
func (w *Wind) Step(dt float64) mathx.Vec3 {
	if w.GustTau <= 0 || w.GustSigma <= 0 {
		return w.Mean
	}
	// Exact OU discretization: x' = x·e^(−dt/τ) + σ·√(1−e^(−2dt/τ))·N(0,1).
	decay := math.Exp(-dt / w.GustTau)
	diff := w.GustSigma * math.Sqrt(1-decay*decay)
	w.gust = mathx.V3(
		w.gust.X*decay+diff*w.rng.NormFloat64(),
		w.gust.Y*decay+diff*w.rng.NormFloat64(),
		w.gust.Z*decay+diff*w.rng.NormFloat64()*0.3, // weaker vertical gusts
	)
	return w.Mean.Add(w.gust)
}

// Reset clears the gust state (the seeded PRNG keeps advancing so repeated
// missions see different, but reproducible, gust sequences).
func (w *Wind) Reset() { w.gust = mathx.Vec3{} }

// Battery models a simple constant-capacity battery with linear voltage sag.
type Battery struct {
	// CapacitymAh is the full charge in mAh.
	CapacitymAh float64
	// RemainmAh is the remaining charge in mAh.
	RemainmAh float64
	// NominalV is the full-charge terminal voltage in V.
	NominalV float64
	// Voltage is the current (sagged) terminal voltage in V.
	Voltage float64
	// CurrentA is the most recent current draw in A.
	CurrentA float64
}

// Depleted reports whether the battery is empty.
func (b Battery) Depleted() bool { return b.RemainmAh <= 0 }

// Fraction returns the remaining charge fraction in [0, 1].
func (b Battery) Fraction() float64 {
	if b.CapacitymAh <= 0 {
		return 0
	}
	return mathx.Clamp(b.RemainmAh/b.CapacitymAh, 0, 1)
}

// drain removes charge for the given current over dt seconds and updates
// the terminal voltage, which sags linearly to 80% of nominal at empty.
func (b *Battery) drain(currentA, dt float64) {
	b.CurrentA = currentA
	b.RemainmAh -= currentA * dt * 1000 / 3600
	if b.RemainmAh < 0 {
		b.RemainmAh = 0
	}
	b.Voltage = b.NominalV * (0.8 + 0.2*b.Fraction())
}
