package sim

// BatchQuad is the structure-of-arrays batch of N independent quadrotors
// stepping in lockstep: one backing slice per state component (positions,
// velocities, attitude quaternions, body rates, the four motor channels,
// battery charge) so a multi-trial campaign cell or RL training batch pays
// the RK4 integration cost once per lane in a tight, allocation-free loop
// instead of once per Quad with full per-stage struct traffic.
//
// The contract is bit-identity: lane k of a batch stepped with a command
// stream is bit-for-bit the trajectory a scalar Quad produces from the same
// stream — same crash tick, same crash reason, same battery trace. The
// kernel below is the scalar RK4 with every mathx.Vec3/Quat call written
// out in the scalar path's exact operation order (amd64 Go does not fuse
// multiply-adds, so flattening is bit-preserving); the equivalence suite in
// batch_test.go enforces this at N ∈ {1, 8, 64}. Two deliberate,
// outcome-identical deviations from the scalar code path:
//
//   - The tip-over Euler conversion runs only when the lane is below 0.3 m
//     altitude. The scalar path computes it unconditionally but consults it
//     only below that altitude; Euler() is pure, so crash decisions are
//     identical.
//   - Zero-valued quaternion-product terms are kept as written (x*0) rather
//     than folded away, so signed-zero propagation matches the scalar path.
//
// Lanes retire independently: a crashed lane freezes exactly as a crashed
// Quad does, and callers can Retire lanes whose episode completed; both are
// masked out of subsequent Steps.

import (
	"fmt"
	"math"

	"github.com/ares-cps/ares/internal/mathx"
)

// BatchQuad holds N quadrotor lanes in structure-of-arrays layout.
type BatchQuad struct {
	params VehicleParams

	pos, vel, omega, lastAccel []mathx.Vec3
	att                        []mathx.Quat
	motor                      [4][]float64
	battRemain, battVolt       []float64
	battAmp                    []float64
	timeS                      []float64
	crashed                    []bool
	crashInfo                  []string
	retired                    []bool

	winds []*Wind
	world *World

	// Derived constants hoisted out of the kernel.
	l, adx, ady, adz             float64
	ldx, ldy, ldz, ix, iy, iz    float64
	mg, invM, tau, maxT, coeff   float64
	hover4, hoverI, capmAh, nomV float64
}

// BatchOption configures a BatchQuad at construction time.
type BatchOption interface{ apply(*BatchQuad) }

type batchOptionFunc func(*BatchQuad)

func (f batchOptionFunc) apply(b *BatchQuad) { f(b) }

// WithBatchWorld installs a shared world (ground plane plus obstacles).
func WithBatchWorld(w *World) BatchOption {
	return batchOptionFunc(func(b *BatchQuad) {
		if w != nil {
			b.world = w
		}
	})
}

// WithBatchWinds installs per-lane wind models; nil entries leave a lane
// windless. Lanes must not share a *Wind: the gust PRNG would interleave.
func WithBatchWinds(ws []*Wind) BatchOption {
	return batchOptionFunc(func(b *BatchQuad) { b.winds = ws })
}

// NewBatchQuad creates n quadrotor lanes resting on the ground at the
// origin, each equivalent to a freshly constructed scalar Quad.
func NewBatchQuad(params VehicleParams, n int, opts ...BatchOption) (*BatchQuad, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: batch size %d must be positive", n)
	}
	b := &BatchQuad{
		params:     params,
		pos:        make([]mathx.Vec3, n),
		vel:        make([]mathx.Vec3, n),
		omega:      make([]mathx.Vec3, n),
		lastAccel:  make([]mathx.Vec3, n),
		att:        make([]mathx.Quat, n),
		battRemain: make([]float64, n),
		battVolt:   make([]float64, n),
		battAmp:    make([]float64, n),
		timeS:      make([]float64, n),
		crashed:    make([]bool, n),
		crashInfo:  make([]string, n),
		retired:    make([]bool, n),
		world:      &World{},
	}
	for i := range b.motor {
		b.motor[i] = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		b.att[k] = mathx.QuatIdentity()
		b.battRemain[k] = params.BatteryCapacity
		b.battVolt[k] = params.BatteryVoltage
	}
	b.l = params.ArmLength / math.Sqrt2
	b.adx, b.ady, b.adz = params.AngularDrag.X, params.AngularDrag.Y, params.AngularDrag.Z
	b.ldx, b.ldy, b.ldz = params.LinearDrag.X, params.LinearDrag.Y, params.LinearDrag.Z
	b.ix, b.iy, b.iz = params.Inertia.X, params.Inertia.Y, params.Inertia.Z
	b.mg = params.Mass * Gravity
	b.invM = 1 / params.Mass
	b.tau = params.MotorTau
	b.maxT = params.MaxThrustPerMotor
	b.coeff = params.TorqueCoeff
	b.hover4 = 4 * params.HoverThrottle()
	b.hoverI = params.HoverCurrent
	b.capmAh = params.BatteryCapacity
	b.nomV = params.BatteryVoltage
	for _, o := range opts {
		o.apply(b)
	}
	if b.winds != nil && len(b.winds) != n {
		return nil, fmt.Errorf("sim: batch of %d lanes got %d winds", n, len(b.winds))
	}
	return b, nil
}

// Params returns the shared vehicle parameters.
func (b *BatchQuad) Params() VehicleParams { return b.params }

// Len returns the number of lanes.
func (b *BatchQuad) Len() int { return len(b.pos) }

// World returns the shared world.
func (b *BatchQuad) World() *World { return b.world }

// Active returns the number of lanes still stepping (neither crashed nor
// retired).
func (b *BatchQuad) Active() int {
	n := 0
	for k := range b.crashed {
		if !b.crashed[k] && !b.retired[k] {
			n++
		}
	}
	return n
}

// Retire masks a lane out of subsequent Steps (an episode that completed
// without crashing). Retirement is independent of crash state.
func (b *BatchQuad) Retire(k int) { b.retired[k] = true }

// Retired reports whether a lane has been retired.
func (b *BatchQuad) Retired(k int) bool { return b.retired[k] }

// Step advances every active lane by dt with per-lane motor commands.
// len(cmds) must equal Len; the call is allocation-free.
func (b *BatchQuad) Step(cmds [][4]float64, dt float64) {
	if len(cmds) != len(b.pos) {
		panic(fmt.Sprintf("sim: batch of %d lanes stepped with %d commands", len(b.pos), len(cmds)))
	}
	for k := range cmds {
		if b.retired[k] {
			continue
		}
		b.stepLane(k, cmds[k][0], cmds[k][1], cmds[k][2], cmds[k][3], dt)
	}
}

// StepLane advances a single lane (the per-lane entry point used when
// control stacks interleave with physics). Retired lanes do not move.
func (b *BatchQuad) StepLane(k int, cmd [4]float64, dt float64) {
	if b.retired[k] {
		return
	}
	b.stepLane(k, cmd[0], cmd[1], cmd[2], cmd[3], dt)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// stepLane is the flattened scalar-equivalent RK4 kernel. See the file
// comment for the determinism contract; batch_test.go holds the proof.
func (b *BatchQuad) stepLane(k int, c0, c1, c2, c3, dt float64) {
	if b.crashed[k] {
		return
	}
	if !finite(dt) || !finite(c0) || !finite(c1) || !finite(c2) || !finite(c3) {
		b.crashLane(k, nonFiniteStep)
		return
	}
	if dt <= 0 {
		return
	}
	c0, c1, c2, c3 = clamp01(c0), clamp01(c1), clamp01(c2), clamp01(c3)
	if b.battRemain[k] <= 0 {
		c0, c1, c2, c3 = 0, 0, 0, 0
	}
	windX, windY, windZ := 0.0, 0.0, 0.0
	if b.winds != nil && b.winds[k] != nil {
		w := b.winds[k].Step(dt)
		windX, windY, windZ = w.X, w.Y, w.Z
	}
	pos := b.pos[k]
	velv := b.vel[k]
	q0 := b.att[k]
	om := b.omega[k]
	m0, m1, m2, m3 := b.motor[0][k], b.motor[1][k], b.motor[2][k], b.motor[3][k]
	px, py, pz := pos.X, pos.Y, pos.Z
	vx, vy, vz := velv.X, velv.Y, velv.Z
	qw0, qx0, qy0, qz0 := q0.W, q0.X, q0.Y, q0.Z
	wx0, wy0, wz0 := om.X, om.Y, om.Z

	tau := b.tau
	maxT := b.maxT
	l := b.l
	coeff := b.coeff
	adx, ady, adz := b.adx, b.ady, b.adz
	ldx, ldy, ldz := b.ldx, b.ldy, b.ldz
	ix, iy, iz := b.ix, b.iy, b.iz
	mg := b.mg
	invM := b.invM

	// Stage 1: derivative at (vx, qw0.., wx0.., m0..). Motor lag,
	// thrust/torque, quaternion-rotated thrust, drag, Euler's equation —
	// the exact operation order of Quad.dynamics with the Vec3/Quat calls
	// written out.
	dm10 := (c0 - m0) / tau
	dm11 := (c1 - m1) / tau
	dm12 := (c2 - m2) / tau
	dm13 := (c3 - m3) / tau
	t10 := maxT * m0
	t11 := maxT * m1
	t12 := maxT * m2
	t13 := maxT * m3
	total1 := t10 + t11 + t12 + t13
	rollT1 := l * (-t10 + t11 + t12 - t13)
	pitchT1 := l * (t10 - t11 + t12 - t13)
	yawT1 := coeff * (t10 + t11 - t12 - t13)
	tqx1 := rollT1 - adx*wx0
	tqy1 := pitchT1 - ady*wy0
	tqz1 := yawT1 - adz*wz0
	tz1 := -total1
	aW1 := qw0*0 - qx0*0 - qy0*0 - qz0*tz1
	aX1 := qw0*0 + qx0*0 + qy0*tz1 - qz0*0
	aY1 := qw0*0 - qx0*tz1 + qy0*0 + qz0*0
	aZ1 := qw0*tz1 + qx0*0 - qy0*0 + qz0*0
	rX1 := aW1*-qx0 + aX1*qw0 + aY1*-qz0 - aZ1*-qy0
	rY1 := aW1*-qy0 - aX1*-qz0 + aY1*qw0 + aZ1*-qx0
	rZ1 := aW1*-qz0 + aX1*-qy0 - aY1*-qx0 + aZ1*qw0
	a1x := (0 + rX1 + -(ldx * (vx - windX))) * invM
	a1y := (0 + rY1 + -(ldy * (vy - windY))) * invM
	a1z := (mg + rZ1 + -(ldz * (vz - windZ))) * invM
	iwx1 := ix * wx0
	iwy1 := iy * wy0
	iwz1 := iz * wz0
	al1x := (tqx1 - (wy0*iwz1 - wz0*iwy1)) / ix
	al1y := (tqy1 - (wz0*iwx1 - wx0*iwz1)) / iy
	al1z := (tqz1 - (wx0*iwy1 - wy0*iwx1)) / iz
	h := dt / 2
	s2vx, s2vy, s2vz := vx+a1x*h, vy+a1y*h, vz+a1z*h
	var s2qw, s2qx, s2qy, s2qz float64
	// Quat.Integrate(wx0.., h) written out: dq = q⊗(0, ω), half-step,
	// then normalize (zero norm snaps to identity, as mathx does).
	dqAw := qw0*0 - qx0*wx0 - qy0*wy0 - qz0*wz0
	dqAx := qw0*wx0 + qx0*0 + qy0*wz0 - qz0*wy0
	dqAy := qw0*wy0 - qx0*wz0 + qy0*0 + qz0*wx0
	dqAz := qw0*wz0 + qx0*wy0 - qy0*wx0 + qz0*0
	s2qw = qw0 + dqAw*0.5*h
	s2qx = qx0 + dqAx*0.5*h
	s2qy = qy0 + dqAy*0.5*h
	s2qz = qz0 + dqAz*0.5*h
	if nA := math.Sqrt(s2qw*s2qw + s2qx*s2qx + s2qy*s2qy + s2qz*s2qz); nA == 0 {
		s2qw, s2qx, s2qy, s2qz = 1, 0, 0, 0
	} else {
		s2qw, s2qx, s2qy, s2qz = s2qw/nA, s2qx/nA, s2qy/nA, s2qz/nA
	}
	s2wx, s2wy, s2wz := wx0+al1x*h, wy0+al1y*h, wz0+al1z*h
	s2m0 := clamp01(m0 + dm10*h)
	s2m1 := clamp01(m1 + dm11*h)
	s2m2 := clamp01(m2 + dm12*h)
	s2m3 := clamp01(m3 + dm13*h)
	// Stage 2: derivative at (s2vx, s2qw.., s2wx.., s2m0..). Motor lag,
	// thrust/torque, quaternion-rotated thrust, drag, Euler's equation —
	// the exact operation order of Quad.dynamics with the Vec3/Quat calls
	// written out.
	dm20 := (c0 - s2m0) / tau
	dm21 := (c1 - s2m1) / tau
	dm22 := (c2 - s2m2) / tau
	dm23 := (c3 - s2m3) / tau
	t20 := maxT * s2m0
	t21 := maxT * s2m1
	t22 := maxT * s2m2
	t23 := maxT * s2m3
	total2 := t20 + t21 + t22 + t23
	rollT2 := l * (-t20 + t21 + t22 - t23)
	pitchT2 := l * (t20 - t21 + t22 - t23)
	yawT2 := coeff * (t20 + t21 - t22 - t23)
	tqx2 := rollT2 - adx*s2wx
	tqy2 := pitchT2 - ady*s2wy
	tqz2 := yawT2 - adz*s2wz
	tz2 := -total2
	aW2 := s2qw*0 - s2qx*0 - s2qy*0 - s2qz*tz2
	aX2 := s2qw*0 + s2qx*0 + s2qy*tz2 - s2qz*0
	aY2 := s2qw*0 - s2qx*tz2 + s2qy*0 + s2qz*0
	aZ2 := s2qw*tz2 + s2qx*0 - s2qy*0 + s2qz*0
	rX2 := aW2*-s2qx + aX2*s2qw + aY2*-s2qz - aZ2*-s2qy
	rY2 := aW2*-s2qy - aX2*-s2qz + aY2*s2qw + aZ2*-s2qx
	rZ2 := aW2*-s2qz + aX2*-s2qy - aY2*-s2qx + aZ2*s2qw
	a2x := (0 + rX2 + -(ldx * (s2vx - windX))) * invM
	a2y := (0 + rY2 + -(ldy * (s2vy - windY))) * invM
	a2z := (mg + rZ2 + -(ldz * (s2vz - windZ))) * invM
	iwx2 := ix * s2wx
	iwy2 := iy * s2wy
	iwz2 := iz * s2wz
	al2x := (tqx2 - (s2wy*iwz2 - s2wz*iwy2)) / ix
	al2y := (tqy2 - (s2wz*iwx2 - s2wx*iwz2)) / iy
	al2z := (tqz2 - (s2wx*iwy2 - s2wy*iwx2)) / iz
	s3vx, s3vy, s3vz := vx+a2x*h, vy+a2y*h, vz+a2z*h
	var s3qw, s3qx, s3qy, s3qz float64
	// Quat.Integrate(s2wx.., h) written out: dq = q⊗(0, ω), half-step,
	// then normalize (zero norm snaps to identity, as mathx does).
	dqBw := qw0*0 - qx0*s2wx - qy0*s2wy - qz0*s2wz
	dqBx := qw0*s2wx + qx0*0 + qy0*s2wz - qz0*s2wy
	dqBy := qw0*s2wy - qx0*s2wz + qy0*0 + qz0*s2wx
	dqBz := qw0*s2wz + qx0*s2wy - qy0*s2wx + qz0*0
	s3qw = qw0 + dqBw*0.5*h
	s3qx = qx0 + dqBx*0.5*h
	s3qy = qy0 + dqBy*0.5*h
	s3qz = qz0 + dqBz*0.5*h
	if nB := math.Sqrt(s3qw*s3qw + s3qx*s3qx + s3qy*s3qy + s3qz*s3qz); nB == 0 {
		s3qw, s3qx, s3qy, s3qz = 1, 0, 0, 0
	} else {
		s3qw, s3qx, s3qy, s3qz = s3qw/nB, s3qx/nB, s3qy/nB, s3qz/nB
	}
	s3wx, s3wy, s3wz := wx0+al2x*h, wy0+al2y*h, wz0+al2z*h
	s3m0 := clamp01(m0 + dm20*h)
	s3m1 := clamp01(m1 + dm21*h)
	s3m2 := clamp01(m2 + dm22*h)
	s3m3 := clamp01(m3 + dm23*h)
	// Stage 3: derivative at (s3vx, s3qw.., s3wx.., s3m0..). Motor lag,
	// thrust/torque, quaternion-rotated thrust, drag, Euler's equation —
	// the exact operation order of Quad.dynamics with the Vec3/Quat calls
	// written out.
	dm30 := (c0 - s3m0) / tau
	dm31 := (c1 - s3m1) / tau
	dm32 := (c2 - s3m2) / tau
	dm33 := (c3 - s3m3) / tau
	t30 := maxT * s3m0
	t31 := maxT * s3m1
	t32 := maxT * s3m2
	t33 := maxT * s3m3
	total3 := t30 + t31 + t32 + t33
	rollT3 := l * (-t30 + t31 + t32 - t33)
	pitchT3 := l * (t30 - t31 + t32 - t33)
	yawT3 := coeff * (t30 + t31 - t32 - t33)
	tqx3 := rollT3 - adx*s3wx
	tqy3 := pitchT3 - ady*s3wy
	tqz3 := yawT3 - adz*s3wz
	tz3 := -total3
	aW3 := s3qw*0 - s3qx*0 - s3qy*0 - s3qz*tz3
	aX3 := s3qw*0 + s3qx*0 + s3qy*tz3 - s3qz*0
	aY3 := s3qw*0 - s3qx*tz3 + s3qy*0 + s3qz*0
	aZ3 := s3qw*tz3 + s3qx*0 - s3qy*0 + s3qz*0
	rX3 := aW3*-s3qx + aX3*s3qw + aY3*-s3qz - aZ3*-s3qy
	rY3 := aW3*-s3qy - aX3*-s3qz + aY3*s3qw + aZ3*-s3qx
	rZ3 := aW3*-s3qz + aX3*-s3qy - aY3*-s3qx + aZ3*s3qw
	a3x := (0 + rX3 + -(ldx * (s3vx - windX))) * invM
	a3y := (0 + rY3 + -(ldy * (s3vy - windY))) * invM
	a3z := (mg + rZ3 + -(ldz * (s3vz - windZ))) * invM
	iwx3 := ix * s3wx
	iwy3 := iy * s3wy
	iwz3 := iz * s3wz
	al3x := (tqx3 - (s3wy*iwz3 - s3wz*iwy3)) / ix
	al3y := (tqy3 - (s3wz*iwx3 - s3wx*iwz3)) / iy
	al3z := (tqz3 - (s3wx*iwy3 - s3wy*iwx3)) / iz
	s4vx, s4vy, s4vz := vx+a3x*dt, vy+a3y*dt, vz+a3z*dt
	var s4qw, s4qx, s4qy, s4qz float64
	// Quat.Integrate(s3wx.., dt) written out: dq = q⊗(0, ω), half-step,
	// then normalize (zero norm snaps to identity, as mathx does).
	dqCw := qw0*0 - qx0*s3wx - qy0*s3wy - qz0*s3wz
	dqCx := qw0*s3wx + qx0*0 + qy0*s3wz - qz0*s3wy
	dqCy := qw0*s3wy - qx0*s3wz + qy0*0 + qz0*s3wx
	dqCz := qw0*s3wz + qx0*s3wy - qy0*s3wx + qz0*0
	s4qw = qw0 + dqCw*0.5*dt
	s4qx = qx0 + dqCx*0.5*dt
	s4qy = qy0 + dqCy*0.5*dt
	s4qz = qz0 + dqCz*0.5*dt
	if nC := math.Sqrt(s4qw*s4qw + s4qx*s4qx + s4qy*s4qy + s4qz*s4qz); nC == 0 {
		s4qw, s4qx, s4qy, s4qz = 1, 0, 0, 0
	} else {
		s4qw, s4qx, s4qy, s4qz = s4qw/nC, s4qx/nC, s4qy/nC, s4qz/nC
	}
	s4wx, s4wy, s4wz := wx0+al3x*dt, wy0+al3y*dt, wz0+al3z*dt
	s4m0 := clamp01(m0 + dm30*dt)
	s4m1 := clamp01(m1 + dm31*dt)
	s4m2 := clamp01(m2 + dm32*dt)
	s4m3 := clamp01(m3 + dm33*dt)
	// Stage 4: derivative at (s4vx, s4qw.., s4wx.., s4m0..). Motor lag,
	// thrust/torque, quaternion-rotated thrust, drag, Euler's equation —
	// the exact operation order of Quad.dynamics with the Vec3/Quat calls
	// written out.
	dm40 := (c0 - s4m0) / tau
	dm41 := (c1 - s4m1) / tau
	dm42 := (c2 - s4m2) / tau
	dm43 := (c3 - s4m3) / tau
	t40 := maxT * s4m0
	t41 := maxT * s4m1
	t42 := maxT * s4m2
	t43 := maxT * s4m3
	total4 := t40 + t41 + t42 + t43
	rollT4 := l * (-t40 + t41 + t42 - t43)
	pitchT4 := l * (t40 - t41 + t42 - t43)
	yawT4 := coeff * (t40 + t41 - t42 - t43)
	tqx4 := rollT4 - adx*s4wx
	tqy4 := pitchT4 - ady*s4wy
	tqz4 := yawT4 - adz*s4wz
	tz4 := -total4
	aW4 := s4qw*0 - s4qx*0 - s4qy*0 - s4qz*tz4
	aX4 := s4qw*0 + s4qx*0 + s4qy*tz4 - s4qz*0
	aY4 := s4qw*0 - s4qx*tz4 + s4qy*0 + s4qz*0
	aZ4 := s4qw*tz4 + s4qx*0 - s4qy*0 + s4qz*0
	rX4 := aW4*-s4qx + aX4*s4qw + aY4*-s4qz - aZ4*-s4qy
	rY4 := aW4*-s4qy - aX4*-s4qz + aY4*s4qw + aZ4*-s4qx
	rZ4 := aW4*-s4qz + aX4*-s4qy - aY4*-s4qx + aZ4*s4qw
	a4x := (0 + rX4 + -(ldx * (s4vx - windX))) * invM
	a4y := (0 + rY4 + -(ldy * (s4vy - windY))) * invM
	a4z := (mg + rZ4 + -(ldz * (s4vz - windZ))) * invM
	iwx4 := ix * s4wx
	iwy4 := iy * s4wy
	iwz4 := iz * s4wz
	al4x := (tqx4 - (s4wy*iwz4 - s4wz*iwy4)) / ix
	al4y := (tqy4 - (s4wz*iwx4 - s4wx*iwz4)) / iy
	al4z := (tqz4 - (s4wx*iwy4 - s4wy*iwx4)) / iz
	// RK4 combine, in Quad.integrate's exact association:
	// (((k1 + 2·k2) + 2·k3) + k4) · (1/6), then · dt.
	const sixth = 1.0 / 6
	npx := px + (vx+s2vx*2+s3vx*2+s4vx)*sixth*dt
	npy := py + (vy+s2vy*2+s3vy*2+s4vy)*sixth*dt
	npz := pz + (vz+s2vz*2+s3vz*2+s4vz)*sixth*dt
	nvx := vx + (a1x+a2x*2+a3x*2+a4x)*sixth*dt
	nvy := vy + (a1y+a2y*2+a3y*2+a4y)*sixth*dt
	nvz := vz + (a1z+a2z*2+a3z*2+a4z)*sixth*dt
	nwx := wx0 + (al1x+al2x*2+al3x*2+al4x)*sixth*dt
	nwy := wy0 + (al1y+al2y*2+al3y*2+al4y)*sixth*dt
	nwz := wz0 + (al1z+al2z*2+al3z*2+al4z)*sixth*dt
	avgOx := (wx0 + s2wx*2 + s3wx*2 + s4wx) * sixth
	avgOy := (wy0 + s2wy*2 + s3wy*2 + s4wy) * sixth
	avgOz := (wz0 + s2wz*2 + s3wz*2 + s4wz) * sixth
	var nqw, nqx, nqy, nqz float64
	// Quat.Integrate(avgOx.., dt) written out: dq = q⊗(0, ω), half-step,
	// then normalize (zero norm snaps to identity, as mathx does).
	dqDw := qw0*0 - qx0*avgOx - qy0*avgOy - qz0*avgOz
	dqDx := qw0*avgOx + qx0*0 + qy0*avgOz - qz0*avgOy
	dqDy := qw0*avgOy - qx0*avgOz + qy0*0 + qz0*avgOx
	dqDz := qw0*avgOz + qx0*avgOy - qy0*avgOx + qz0*0
	nqw = qw0 + dqDw*0.5*dt
	nqx = qx0 + dqDx*0.5*dt
	nqy = qy0 + dqDy*0.5*dt
	nqz = qz0 + dqDz*0.5*dt
	if nD := math.Sqrt(nqw*nqw + nqx*nqx + nqy*nqy + nqz*nqz); nD == 0 {
		nqw, nqx, nqy, nqz = 1, 0, 0, 0
	} else {
		nqw, nqx, nqy, nqz = nqw/nD, nqx/nD, nqy/nD, nqz/nD
	}
	nm0 := clamp01(m0 + (dm10+2*dm20+2*dm30+dm40)/6*dt)
	nm1 := clamp01(m1 + (dm11+2*dm21+2*dm31+dm41)/6*dt)
	nm2 := clamp01(m2 + (dm12+2*dm22+2*dm32+dm42)/6*dt)
	nm3 := clamp01(m3 + (dm13+2*dm23+2*dm33+dm43)/6*dt)

	// Ground support, exactly as Quad.integrate: record the pre-clamp sink
	// rate, zero vertical motion, halve horizontal speed.
	impact := 0.0
	if npz > 0 {
		if nvz > 0 {
			impact = nvz
			nvz = 0
		}
		npz = 0
		nvx *= 0.5
		nvy *= 0.5
	}

	b.lastAccel[k] = mathx.Vec3{X: (nvx - vx) * (1 / dt), Y: (nvy - vy) * (1 / dt), Z: (nvz - vz) * (1 / dt)}
	b.pos[k] = mathx.Vec3{X: npx, Y: npy, Z: npz}
	b.vel[k] = mathx.Vec3{X: nvx, Y: nvy, Z: nvz}
	b.att[k] = mathx.Quat{W: nqw, X: nqx, Y: nqy, Z: nqz}
	b.omega[k] = mathx.Vec3{X: nwx, Y: nwy, Z: nwz}
	b.motor[0][k], b.motor[1][k], b.motor[2][k], b.motor[3][k] = nm0, nm1, nm2, nm3
	b.timeS[k] += dt

	// Battery drain from commanded throttle (Quad.currentDraw + drain).
	sum := c0 + c1 + c2 + c3
	cur := 0.0
	if b.hover4 != 0 {
		cur = b.hoverI * math.Pow(math.Max(sum/b.hover4, 0), 1.5)
	}
	b.battAmp[k] = cur
	b.battRemain[k] -= cur * dt * 1000 / 3600
	if b.battRemain[k] < 0 {
		b.battRemain[k] = 0
	}
	b.battVolt[k] = b.nomV * (0.8 + 0.2*mathx.Clamp(b.battRemain[k]/b.capmAh, 0, 1))

	// Collision checks in Quad.checkCollisions order: hard ground impact,
	// tip-over near ground, obstacle contact.
	if impact > CrashSpeed {
		b.crashLane(k, fmt.Sprintf("ground impact at %.1f m/s", impact))
		return
	}
	if -npz < 0.3 {
		sinr := 2 * (nqw*nqx + nqy*nqz)
		cosr := 1 - 2*(nqx*nqx+nqy*nqy)
		roll := math.Atan2(sinr, cosr)
		sinp := 2 * (nqw*nqy - nqz*nqx)
		var pitch float64
		switch {
		case sinp >= 1:
			pitch = math.Pi / 2
		case sinp <= -1:
			pitch = -math.Pi / 2
		default:
			pitch = math.Asin(sinp)
		}
		if math.Abs(roll) > tipOverRad || math.Abs(pitch) > tipOverRad {
			b.crashLane(k, "tip-over near ground")
			return
		}
	}
	if len(b.world.Obstacles) > 0 {
		if ob, hit := b.world.Hit(b.pos[k]); hit {
			b.crashLane(k, fmt.Sprintf("collision with obstacle %q", ob.Name))
			return
		}
	}
}

// crashLane freezes a lane exactly as Quad.crash does.
func (b *BatchQuad) crashLane(k int, reason string) {
	b.crashed[k] = true
	b.crashInfo[k] = reason
	b.vel[k] = mathx.Vec3{}
	b.omega[k] = mathx.Vec3{}
	if b.pos[k].Z > 0 {
		b.pos[k].Z = 0
	}
}

// Lane returns a Vehicle view of lane k. The view aliases the batch arrays:
// stepping the lane through the view and through Step are the same thing.
func (b *BatchQuad) Lane(k int) *LaneQuad {
	if k < 0 || k >= len(b.pos) {
		panic(fmt.Sprintf("sim: lane %d out of range [0,%d)", k, len(b.pos)))
	}
	return &LaneQuad{b: b, k: k}
}

// LaneQuad adapts one BatchQuad lane to the Vehicle interface so a firmware
// stack can fly a batch lane exactly as it flies a scalar Quad.
type LaneQuad struct {
	b *BatchQuad
	k int
}

// State returns a copy of the lane state.
func (l *LaneQuad) State() State {
	b, k := l.b, l.k
	return State{
		Pos:   b.pos[k],
		Vel:   b.vel[k],
		Att:   b.att[k],
		Omega: b.omega[k],
		Motor: [4]float64{b.motor[0][k], b.motor[1][k], b.motor[2][k], b.motor[3][k]},
	}
}

// SetState overwrites the lane state and clears any crash condition,
// mirroring Quad.SetState.
func (l *LaneQuad) SetState(s State) {
	b, k := l.b, l.k
	b.pos[k], b.vel[k], b.att[k], b.omega[k] = s.Pos, s.Vel, s.Att, s.Omega
	for i := range b.motor {
		b.motor[i][k] = s.Motor[i]
	}
	b.crashed[k] = false
	b.crashInfo[k] = ""
}

// Step advances this lane only (no-op when retired, like a crashed Quad).
func (l *LaneQuad) Step(cmd [4]float64, dt float64) { l.b.StepLane(l.k, cmd, dt) }

// Crashed reports whether the lane has crashed and why.
func (l *LaneQuad) Crashed() (bool, string) { return l.b.crashed[l.k], l.b.crashInfo[l.k] }

// Time returns the lane's simulated time.
func (l *LaneQuad) Time() float64 { return l.b.timeS[l.k] }

// LastAccel returns the lane's world-frame acceleration over the last step.
func (l *LaneQuad) LastAccel() mathx.Vec3 { return l.b.lastAccel[l.k] }

// Battery returns the lane's battery status.
func (l *LaneQuad) Battery() Battery {
	b, k := l.b, l.k
	return Battery{
		CapacitymAh: b.capmAh,
		RemainmAh:   b.battRemain[k],
		NominalV:    b.nomV,
		Voltage:     b.battVolt[k],
		CurrentA:    b.battAmp[k],
	}
}

// World returns the batch's shared world.
func (l *LaneQuad) World() *World { return l.b.world }

// Index returns the lane number inside the batch.
func (l *LaneQuad) Index() int { return l.k }

// Reset restores the lane to the pristine state of a freshly constructed
// Quad at pos: rest, identity attitude, full battery, zero elapsed time and
// cleared crash/retire flags. Unlike Quad.Reset it also clears LastAccel
// and the battery current so a reset lane is bit-identical to a new
// vehicle — which is what episode resets need.
func (l *LaneQuad) Reset(pos mathx.Vec3) {
	b, k := l.b, l.k
	b.pos[k] = pos
	b.vel[k] = mathx.Vec3{}
	b.att[k] = mathx.QuatIdentity()
	b.omega[k] = mathx.Vec3{}
	for i := range b.motor {
		b.motor[i][k] = 0
	}
	b.lastAccel[k] = mathx.Vec3{}
	b.battRemain[k] = b.capmAh
	b.battVolt[k] = b.nomV
	b.battAmp[k] = 0
	b.timeS[k] = 0
	b.crashed[k] = false
	b.crashInfo[k] = ""
	b.retired[k] = false
	if b.winds != nil && b.winds[k] != nil {
		b.winds[k].Reset()
	}
}
