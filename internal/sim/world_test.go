package sim

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
)

func TestWorldHitAndForbidden(t *testing.T) {
	w := &World{}
	w.AddObstacle(Obstacle{
		Name: "wall",
		Box:  mathx.AABB{Min: mathx.V3(0, 0, -10), Max: mathx.V3(1, 10, 0)},
	})
	w.AddObstacle(Obstacle{
		Name:      "nofly",
		Box:       mathx.AABB{Min: mathx.V3(20, 0, -50), Max: mathx.V3(30, 10, 0)},
		Forbidden: true,
	})

	if _, hit := w.Hit(mathx.V3(0.5, 5, -5)); !hit {
		t.Error("point inside wall not hit")
	}
	if _, hit := w.Hit(mathx.V3(25, 5, -5)); hit {
		t.Error("forbidden zone reported as solid hit")
	}
	if _, in := w.InForbiddenZone(mathx.V3(25, 5, -5)); !in {
		t.Error("point inside no-fly zone not detected")
	}
	if _, in := w.InForbiddenZone(mathx.V3(0.5, 5, -5)); in {
		t.Error("solid wall reported as forbidden zone")
	}
}

func TestWorldNearestObstacleDistance(t *testing.T) {
	w := &World{}
	if got := w.NearestObstacleDistance(mathx.V3(0, 0, 0)); !math.IsInf(got, 1) {
		t.Errorf("empty world distance = %v, want +Inf", got)
	}
	w.AddObstacle(Obstacle{
		Name: "wall",
		Box:  mathx.AABB{Min: mathx.V3(10, -5, -10), Max: mathx.V3(11, 5, 0)},
	})
	if got := w.NearestObstacleDistance(mathx.V3(0, 0, -5)); got != 10 {
		t.Errorf("distance = %v, want 10", got)
	}
}

func TestWindStatistics(t *testing.T) {
	mean := mathx.V3(3, -1, 0)
	w := NewWind(mean, 1.5, 42)
	const n = 200000
	var sum mathx.Vec3
	var sumSq float64
	for i := 0; i < n; i++ {
		v := w.Step(1.0 / 400)
		sum = sum.Add(v)
		d := v.X - mean.X
		sumSq += d * d
	}
	avg := sum.Scale(1.0 / n)
	if avg.Sub(mean).Norm() > 0.25 {
		t.Errorf("wind mean = %v, want ~%v", avg, mean)
	}
	sd := math.Sqrt(sumSq / n)
	if sd < 0.8 || sd > 2.2 {
		t.Errorf("gust stddev (x) = %v, want ~1.5", sd)
	}
}

func TestWindDisabled(t *testing.T) {
	w := NewWind(mathx.V3(2, 0, 0), 0, 1)
	for i := 0; i < 10; i++ {
		if got := w.Step(0.01); got != mathx.V3(2, 0, 0) {
			t.Fatalf("zero-gust wind = %v, want steady mean", got)
		}
	}
}

func TestWindReset(t *testing.T) {
	w := NewWind(mathx.Vec3{}, 2, 3)
	for i := 0; i < 100; i++ {
		w.Step(0.01)
	}
	w.Reset()
	if w.gust != (mathx.Vec3{}) {
		t.Error("Reset did not clear gust state")
	}
}

func TestWindAffectsVehicleDrift(t *testing.T) {
	// A hovering vehicle in a steady 5 m/s north wind must drift north.
	wind := NewWind(mathx.V3(5, 0, 0), 0, 1)
	q, err := NewQuad(IRISPlusParams(),
		WithWind(wind),
		WithInitialState(State{Pos: mathx.V3(0, 0, -20), Att: mathx.QuatIdentity()}),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := q.Params.HoverThrottle()
	s := q.State()
	s.Motor = [4]float64{h, h, h, h}
	q.SetState(s)
	for i := 0; i < 3*400; i++ {
		q.Step([4]float64{h, h, h, h}, 1.0/400)
	}
	if q.State().Pos.X <= 1 {
		t.Errorf("vehicle did not drift downwind: x = %v", q.State().Pos.X)
	}
}

func TestBatteryFraction(t *testing.T) {
	b := Battery{CapacitymAh: 1000, RemainmAh: 250, NominalV: 12, Voltage: 12}
	if got := b.Fraction(); got != 0.25 {
		t.Errorf("Fraction = %v, want 0.25", got)
	}
	var empty Battery
	if got := empty.Fraction(); got != 0 {
		t.Errorf("zero-capacity Fraction = %v", got)
	}
	if !(Battery{}).Depleted() {
		t.Error("empty battery not depleted")
	}
}
