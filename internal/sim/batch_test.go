package sim

import (
	"fmt"
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
)

// laneCmd builds a deterministic per-lane command pattern that exercises
// transients, asymmetry and near-hover flight without immediately crashing.
func laneCmd(p VehicleParams, lane, step int) [4]float64 {
	h := p.HoverThrottle()
	f := float64((step+37*lane)%997) / 997
	return [4]float64{
		h + 0.2*(f-0.5),
		h - 0.1*(f-0.5),
		h + 0.05*f,
		h,
	}
}

// assertLaneEqualsQuad compares every observable of batch lane k against the
// scalar quad bit-for-bit.
func assertLaneEqualsQuad(t *testing.T, b *BatchQuad, k int, q *Quad, step int) {
	t.Helper()
	lane := b.Lane(k)
	if ls, qs := lane.State(), q.State(); ls != qs {
		t.Fatalf("lane %d step %d: state diverged\nbatch:  %+v\nscalar: %+v", k, step, ls, qs)
	}
	lc, lr := lane.Crashed()
	qc, qr := q.Crashed()
	if lc != qc || lr != qr {
		t.Fatalf("lane %d step %d: crash (%v,%q) vs scalar (%v,%q)", k, step, lc, lr, qc, qr)
	}
	if lb, qb := lane.Battery(), q.Battery(); lb != qb {
		t.Fatalf("lane %d step %d: battery %+v vs scalar %+v", k, step, lb, qb)
	}
	if la, qa := lane.LastAccel(), q.LastAccel(); la != qa {
		t.Fatalf("lane %d step %d: lastAccel %+v vs scalar %+v", k, step, la, qa)
	}
	if lt, qt := lane.Time(), q.Time(); lt != qt {
		t.Fatalf("lane %d step %d: time %v vs scalar %v", k, step, lt, qt)
	}
}

// TestBatchQuadEquivalence is the core determinism contract: every lane of a
// batch is bit-identical to a scalar Quad fed the same command stream, at
// N ∈ {1, 8, 64}, through crashes and battery depletion.
func TestBatchQuadEquivalence(t *testing.T) {
	const dt = 1.0 / 400
	for _, n := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			p := IRISPlusParams()
			b, err := NewBatchQuad(p, n)
			if err != nil {
				t.Fatal(err)
			}
			quads := make([]*Quad, n)
			for k := range quads {
				quads[k], err = NewQuad(p)
				if err != nil {
					t.Fatal(err)
				}
			}
			cmds := make([][4]float64, n)
			steps := 40000 / n * 4
			if steps > 40000 {
				steps = 40000
			}
			for i := 0; i < steps; i++ {
				for k := range cmds {
					cmds[k] = laneCmd(p, k, i)
				}
				b.Step(cmds, dt)
				for k, q := range quads {
					q.Step(cmds[k], dt)
				}
				if i%500 == 0 || i == steps-1 {
					for k, q := range quads {
						assertLaneEqualsQuad(t, b, k, q, i)
					}
				}
			}
			// Final exact sweep regardless of sampling cadence.
			for k, q := range quads {
				assertLaneEqualsQuad(t, b, k, q, steps)
			}
		})
	}
}

// TestBatchQuadCrashEquivalence drives lanes into a hard crash (full
// asymmetric throttle tips the vehicle) and checks the crash tick, reason
// and frozen post-crash state all match the scalar path.
func TestBatchQuadCrashEquivalence(t *testing.T) {
	const dt = 1.0 / 400
	p := IRISPlusParams()
	const n = 8
	b, err := NewBatchQuad(p, n)
	if err != nil {
		t.Fatal(err)
	}
	quads := make([]*Quad, n)
	for k := range quads {
		quads[k], _ = NewQuad(p)
	}
	cmds := make([][4]float64, n)
	crashedAt := make([]int, n)
	for i := 0; i < 4000; i++ {
		for k := range cmds {
			// Stagger the divergence onset per lane so crashes land on
			// different ticks.
			if i > 100*k {
				cmds[k] = [4]float64{1, 0, 1, 0}
			} else {
				h := p.HoverThrottle()
				cmds[k] = [4]float64{h, h, h, h}
			}
		}
		b.Step(cmds, dt)
		for k, q := range quads {
			q.Step(cmds[k], dt)
			if c, _ := q.Crashed(); c && crashedAt[k] == 0 {
				crashedAt[k] = i
			}
		}
		for k, q := range quads {
			assertLaneEqualsQuad(t, b, k, q, i)
		}
	}
	for k, at := range crashedAt {
		if at == 0 {
			t.Fatalf("lane %d never crashed; test exercises nothing", k)
		}
	}
	// Distinct crash ticks prove lanes retire independently.
	seen := map[int]bool{}
	for _, at := range crashedAt {
		seen[at] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all lanes crashed on the same tick %v; staggering failed", crashedAt)
	}
}

// TestBatchQuadWindEquivalence checks per-lane wind: same seed ⇒ same gust
// stream ⇒ bit-identical trajectories between lane and scalar.
func TestBatchQuadWindEquivalence(t *testing.T) {
	const dt = 1.0 / 400
	p := IRISPlusParams()
	const n = 4
	winds := make([]*Wind, n)
	scalarWinds := make([]*Wind, n)
	for k := 0; k < n; k++ {
		winds[k] = NewWind(mathx.V3(2, 1, 0), 1.5, int64(100+k))
		scalarWinds[k] = NewWind(mathx.V3(2, 1, 0), 1.5, int64(100+k))
	}
	b, err := NewBatchQuad(p, n, WithBatchWinds(winds))
	if err != nil {
		t.Fatal(err)
	}
	quads := make([]*Quad, n)
	for k := range quads {
		quads[k], _ = NewQuad(p, WithWind(scalarWinds[k]))
	}
	cmds := make([][4]float64, n)
	for i := 0; i < 8000; i++ {
		for k := range cmds {
			cmds[k] = laneCmd(p, k, i)
		}
		b.Step(cmds, dt)
		for k, q := range quads {
			q.Step(cmds[k], dt)
		}
	}
	for k, q := range quads {
		assertLaneEqualsQuad(t, b, k, q, 8000)
	}
}

// TestBatchQuadWorldEquivalence places an obstacle in the shared world and
// checks lanes hit it exactly as scalar quads do.
func TestBatchQuadWorldEquivalence(t *testing.T) {
	const dt = 1.0 / 400
	p := IRISPlusParams()
	wall := Obstacle{Name: "wall", Box: mathx.AABB{
		Min: mathx.V3(-50, -50, -6),
		Max: mathx.V3(50, 50, -5),
	}}
	const n = 3
	b, err := NewBatchQuad(p, n, WithBatchWorld(&World{Obstacles: []Obstacle{wall}}))
	if err != nil {
		t.Fatal(err)
	}
	quads := make([]*Quad, n)
	for k := range quads {
		quads[k], _ = NewQuad(p, WithWorld(&World{Obstacles: []Obstacle{wall}}))
	}
	cmds := make([][4]float64, n)
	climb := p.HoverThrottle() + 0.15
	anyCrashed := false
	for i := 0; i < 20000; i++ {
		for k := range cmds {
			cmds[k] = [4]float64{climb, climb, climb, climb}
		}
		b.Step(cmds, dt)
		for k, q := range quads {
			q.Step(cmds[k], dt)
		}
		for k, q := range quads {
			assertLaneEqualsQuad(t, b, k, q, i)
		}
		if c, reason := quads[0].Crashed(); c {
			if reason != `collision with obstacle "wall"` {
				t.Fatalf("unexpected crash reason %q", reason)
			}
			anyCrashed = true
			break
		}
	}
	if !anyCrashed {
		t.Fatal("climbing quad never reached the ceiling obstacle")
	}
}

// TestBatchQuadNonFinite mirrors the scalar hardening: NaN/Inf commands or
// dt crash the lane loudly instead of poisoning the state.
func TestBatchQuadNonFinite(t *testing.T) {
	p := IRISPlusParams()
	bad := []struct {
		name string
		cmd  [4]float64
		dt   float64
	}{
		{"nan-cmd", [4]float64{math.NaN(), 0.5, 0.5, 0.5}, 1.0 / 400},
		{"inf-cmd", [4]float64{0.5, math.Inf(1), 0.5, 0.5}, 1.0 / 400},
		{"nan-dt", [4]float64{0.5, 0.5, 0.5, 0.5}, math.NaN()},
		{"inf-dt", [4]float64{0.5, 0.5, 0.5, 0.5}, math.Inf(1)},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			b, err := NewBatchQuad(p, 2)
			if err != nil {
				t.Fatal(err)
			}
			q, _ := NewQuad(p)
			b.StepLane(0, tc.cmd, tc.dt)
			q.Step(tc.cmd, tc.dt)
			c, reason := b.Lane(0).Crashed()
			qc, qreason := q.Crashed()
			if !c || !qc {
				t.Fatalf("non-finite input not rejected: lane crashed=%v scalar crashed=%v", c, qc)
			}
			if reason != nonFiniteStep || qreason != nonFiniteStep {
				t.Fatalf("crash reasons %q / %q, want %q", reason, qreason, nonFiniteStep)
			}
			if c2, _ := b.Lane(1).Crashed(); c2 {
				t.Fatal("untouched lane crashed")
			}
			if got := b.Lane(0).State(); got != (State{Att: mathx.QuatIdentity()}) {
				t.Fatalf("crash left non-pristine state %+v", got)
			}
		})
	}
}

// TestBatchQuadRetire checks retirement semantics: a retired lane freezes,
// stays out of Active, and Reset revives it to a fresh-vehicle state.
func TestBatchQuadRetire(t *testing.T) {
	const dt = 1.0 / 400
	p := IRISPlusParams()
	b, err := NewBatchQuad(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([][4]float64, 4)
	for k := range cmds {
		cmds[k] = laneCmd(p, k, 0)
	}
	for i := 0; i < 100; i++ {
		b.Step(cmds, dt)
	}
	if got := b.Active(); got != 4 {
		t.Fatalf("Active = %d, want 4", got)
	}
	frozen := b.Lane(2).State()
	b.Retire(2)
	if !b.Retired(2) || b.Active() != 3 {
		t.Fatalf("retire bookkeeping: retired=%v active=%d", b.Retired(2), b.Active())
	}
	for i := 0; i < 100; i++ {
		b.Step(cmds, dt)
	}
	if got := b.Lane(2).State(); got != frozen {
		t.Fatalf("retired lane moved: %+v vs %+v", got, frozen)
	}
	// Reset revives the lane as a factory-fresh vehicle.
	b.Lane(2).Reset(mathx.V3(1, 2, -3))
	fresh, _ := NewQuad(p, WithInitialState(State{Pos: mathx.V3(1, 2, -3), Att: mathx.QuatIdentity()}))
	if b.Retired(2) {
		t.Fatal("Reset did not clear retirement")
	}
	assertLaneEqualsQuad(t, b, 2, fresh, -1)
	// And it steps in lockstep with a fresh scalar from here on.
	for i := 0; i < 2000; i++ {
		cmd := laneCmd(p, 2, i)
		b.StepLane(2, cmd, dt)
		fresh.Step(cmd, dt)
	}
	assertLaneEqualsQuad(t, b, 2, fresh, 2000)
}

// TestBatchQuadStepAllocs asserts the kernel is allocation-free per step.
func TestBatchQuadStepAllocs(t *testing.T) {
	p := IRISPlusParams()
	b, err := NewBatchQuad(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([][4]float64, 16)
	h := p.HoverThrottle()
	for k := range cmds {
		cmds[k] = [4]float64{h, h, h, h}
	}
	allocs := testing.AllocsPerRun(200, func() {
		b.Step(cmds, 1.0/400)
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %v times per call, want 0", allocs)
	}
}

// TestBatchQuadArgValidation covers constructor and Step argument errors.
func TestBatchQuadArgValidation(t *testing.T) {
	p := IRISPlusParams()
	if _, err := NewBatchQuad(p, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewBatchQuad(VehicleParams{}, 4); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewBatchQuad(p, 4, WithBatchWinds(make([]*Wind, 3))); err == nil {
		t.Fatal("mismatched winds length accepted")
	}
	b, err := NewBatchQuad(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short cmds slice did not panic")
			}
		}()
		b.Step(make([][4]float64, 1), 1.0/400)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range lane did not panic")
			}
		}()
		b.Lane(2)
	}()
}

// TestQuadStepNonFinite covers the scalar satellite fix directly.
func TestQuadStepNonFinite(t *testing.T) {
	p := IRISPlusParams()
	q, err := NewQuad(p)
	if err != nil {
		t.Fatal(err)
	}
	q.Step([4]float64{0.5, 0.5, math.Inf(-1), 0.5}, 1.0/400)
	if c, reason := q.Crashed(); !c || reason != nonFiniteStep {
		t.Fatalf("crashed=%v reason=%q, want loud non-finite rejection", c, reason)
	}
	// NaN dt used to slip past the dt <= 0 guard and poison the state.
	q2, _ := NewQuad(p)
	q2.Step([4]float64{0.5, 0.5, 0.5, 0.5}, math.NaN())
	if c, reason := q2.Crashed(); !c || reason != nonFiniteStep {
		t.Fatalf("NaN dt: crashed=%v reason=%q", c, reason)
	}
	if s := q2.State(); s != (State{Att: mathx.QuatIdentity()}) {
		t.Fatalf("NaN dt mutated state: %+v", s)
	}
}
