package sim

import (
	"math"
	"testing"

	"github.com/ares-cps/ares/internal/mathx"
)

func newTestQuad(t *testing.T, opts ...Option) *Quad {
	t.Helper()
	q, err := NewQuad(IRISPlusParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestVehicleParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*VehicleParams)
		wantErr bool
	}{
		{"valid", func(p *VehicleParams) {}, false},
		{"zero mass", func(p *VehicleParams) { p.Mass = 0 }, true},
		{"negative inertia", func(p *VehicleParams) { p.Inertia.Y = -1 }, true},
		{"zero arm", func(p *VehicleParams) { p.ArmLength = 0 }, true},
		{"underpowered", func(p *VehicleParams) { p.MaxThrustPerMotor = 1 }, true},
		{"zero motor tau", func(p *VehicleParams) { p.MotorTau = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := IRISPlusParams()
			tt.mutate(&p)
			err := p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestHoverThrottleBalancesGravity(t *testing.T) {
	p := IRISPlusParams()
	h := p.HoverThrottle()
	if h <= 0 || h >= 1 {
		t.Fatalf("hover throttle %v out of range", h)
	}
	if got := 4 * p.MaxThrustPerMotor * h; !mathx.ApproxEqual(got, p.Mass*Gravity, 1e-9) {
		t.Errorf("hover thrust %v, want %v", got, p.Mass*Gravity)
	}
}

func TestQuadRestsOnGround(t *testing.T) {
	q := newTestQuad(t)
	for i := 0; i < 400; i++ {
		q.Step([4]float64{}, 1.0/400)
	}
	s := q.State()
	if s.Altitude() != 0 {
		t.Errorf("idle vehicle altitude = %v, want 0", s.Altitude())
	}
	if crashed, _ := q.Crashed(); crashed {
		t.Error("idle vehicle crashed")
	}
}

func TestQuadClimbsAboveHoverThrottle(t *testing.T) {
	q := newTestQuad(t)
	h := q.Params.HoverThrottle()
	cmd := [4]float64{h * 1.2, h * 1.2, h * 1.2, h * 1.2}
	for i := 0; i < 2*400; i++ {
		q.Step(cmd, 1.0/400)
	}
	if alt := q.State().Altitude(); alt < 1 {
		t.Errorf("altitude after 2 s at 120%% hover = %v, want > 1 m", alt)
	}
	// Symmetric thrust must not induce rotation.
	roll, pitch, _ := q.State().Euler()
	if math.Abs(roll) > 1e-6 || math.Abs(pitch) > 1e-6 {
		t.Errorf("symmetric thrust rotated vehicle: roll=%v pitch=%v", roll, pitch)
	}
}

func TestQuadHoverIsSteady(t *testing.T) {
	q := newTestQuad(t, WithInitialState(State{
		Pos: mathx.V3(0, 0, -10),
		Att: mathx.QuatIdentity(),
	}))
	h := q.Params.HoverThrottle()
	// Pre-spin motors to hover so the lag does not cause an initial drop.
	s := q.State()
	s.Motor = [4]float64{h, h, h, h}
	q.SetState(s)
	cmd := [4]float64{h, h, h, h}
	for i := 0; i < 400; i++ {
		q.Step(cmd, 1.0/400)
	}
	if alt := q.State().Altitude(); !mathx.ApproxEqual(alt, 10, 0.05) {
		t.Errorf("hover altitude drifted to %v, want ~10", alt)
	}
}

func TestQuadTorqueDirections(t *testing.T) {
	// Differential thrust must produce the expected body torques under the
	// ArduPilot quad-X numbering (m0 FR, m1 BL, m2 FL, m3 BR).
	tests := []struct {
		name string
		cmd  [4]float64
		axis func(s State) float64
		sign float64
	}{
		{
			name: "left motors up rolls right (positive roll)",
			cmd:  [4]float64{0.4, 0.6, 0.6, 0.4}, // BL+FL higher
			axis: func(s State) float64 { r, _, _ := s.Euler(); return r },
			sign: 1,
		},
		{
			name: "front motors up pitches up (positive pitch)",
			cmd:  [4]float64{0.6, 0.4, 0.6, 0.4}, // FR+FL higher
			axis: func(s State) float64 { _, p, _ := s.Euler(); return p },
			sign: 1,
		},
		{
			name: "CCW motors up yaws positive",
			cmd:  [4]float64{0.6, 0.6, 0.4, 0.4}, // m0+m1 (CCW) higher
			axis: func(s State) float64 { _, _, y := s.Euler(); return y },
			sign: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := newTestQuad(t, WithInitialState(State{
				Pos: mathx.V3(0, 0, -50),
				Att: mathx.QuatIdentity(),
			}))
			for i := 0; i < 40; i++ { // 0.1 s
				q.Step(tt.cmd, 1.0/400)
			}
			got := tt.axis(q.State())
			if got*tt.sign <= 0 {
				t.Errorf("angle = %v, want sign %v", got, tt.sign)
			}
		})
	}
}

func TestQuadCrashOnHardImpact(t *testing.T) {
	q := newTestQuad(t, WithInitialState(State{
		Pos: mathx.V3(0, 0, -30),
		Att: mathx.QuatIdentity(),
	}))
	// Free fall from 30 m: impact speed ~24 m/s, far above CrashSpeed.
	for i := 0; i < 5*400; i++ {
		q.Step([4]float64{}, 1.0/400)
		if crashed, _ := q.Crashed(); crashed {
			break
		}
	}
	crashed, reason := q.Crashed()
	if !crashed {
		t.Fatal("free fall from 30 m did not crash")
	}
	if reason == "" {
		t.Error("crash reason empty")
	}
	// Crashed vehicle ignores further steps.
	before := q.State()
	q.Step([4]float64{1, 1, 1, 1}, 1.0/400)
	if q.State() != before {
		t.Error("crashed vehicle still moves")
	}
}

func TestQuadObstacleCollision(t *testing.T) {
	w := &World{}
	w.AddObstacle(Obstacle{
		Name: "wall",
		Box:  mathx.AABB{Min: mathx.V3(4, -5, -20), Max: mathx.V3(5, 5, 0)},
	})
	q := newTestQuad(t,
		WithWorld(w),
		WithInitialState(State{
			Pos: mathx.V3(0, 0, -10),
			Vel: mathx.V3(8, 0, 0),
			Att: mathx.QuatIdentity(),
		}),
	)
	h := q.Params.HoverThrottle()
	for i := 0; i < 3*400; i++ {
		q.Step([4]float64{h, h, h, h}, 1.0/400)
		if crashed, _ := q.Crashed(); crashed {
			break
		}
	}
	crashed, reason := q.Crashed()
	if !crashed {
		t.Fatalf("vehicle flew through wall; pos=%v", q.State().Pos)
	}
	if want := `collision with obstacle "wall"`; reason != want {
		t.Errorf("reason = %q, want %q", reason, want)
	}
}

func TestQuadBatteryDrainsAndKillsMotors(t *testing.T) {
	p := IRISPlusParams()
	p.BatteryCapacity = 0.2 // tiny battery, drains in under a second
	q, err := NewQuad(p, WithInitialState(State{
		Pos: mathx.V3(0, 0, -20),
		Att: mathx.QuatIdentity(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	h := p.HoverThrottle()
	for i := 0; i < 10*400; i++ {
		q.Step([4]float64{h, h, h, h}, 1.0/400)
		if crashed, _ := q.Crashed(); crashed {
			break
		}
	}
	if !q.Battery().Depleted() {
		t.Fatalf("battery not depleted: %v mAh left", q.Battery().RemainmAh)
	}
	if crashed, _ := q.Crashed(); !crashed {
		t.Error("vehicle with dead battery did not fall and crash")
	}
	if v := q.Battery().Voltage; !mathx.ApproxEqual(v, 0.8*p.BatteryVoltage, 1e-9) {
		t.Errorf("depleted voltage = %v, want %v", v, 0.8*p.BatteryVoltage)
	}
}

func TestQuadReset(t *testing.T) {
	q := newTestQuad(t)
	q.Step([4]float64{1, 1, 1, 1}, 0.1)
	q.crash("test")
	q.Reset(mathx.V3(1, 2, -3))
	if crashed, _ := q.Crashed(); crashed {
		t.Error("Reset did not clear crash")
	}
	if q.State().Pos != mathx.V3(1, 2, -3) {
		t.Errorf("Reset pos = %v", q.State().Pos)
	}
	if q.Time() != 0 {
		t.Errorf("Reset time = %v", q.Time())
	}
	if q.Battery().Fraction() != 1 {
		t.Errorf("Reset battery fraction = %v", q.Battery().Fraction())
	}
}

func TestQuadEnergyConservationInFreeFall(t *testing.T) {
	// With drag zeroed, free-fall must match kinematics: v = g·t.
	p := IRISPlusParams()
	p.LinearDrag = mathx.Vec3{}
	q, err := NewQuad(p, WithInitialState(State{
		Pos: mathx.V3(0, 0, -1000),
		Att: mathx.QuatIdentity(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1.0 / 400
	for i := 0; i < 400; i++ { // 1 s
		q.Step([4]float64{}, dt)
	}
	if vz := q.State().Vel.Z; !mathx.ApproxEqual(vz, Gravity, 1e-6) {
		t.Errorf("free-fall speed after 1 s = %v, want %v", vz, Gravity)
	}
}

func TestQuadStepGuards(t *testing.T) {
	q := newTestQuad(t)
	before := q.State()
	q.Step([4]float64{0.5, 0.5, 0.5, 0.5}, 0) // zero dt is a no-op
	if q.State() != before {
		t.Error("zero-dt step changed state")
	}
	q.Step([4]float64{5, -3, 0.5, 0.5}, 1.0/400) // commands clamped
	for i, m := range q.State().Motor {
		if m < 0 || m > 1 {
			t.Errorf("motor %d = %v out of [0,1]", i, m)
		}
	}
}

func TestPixhawk4ParamsValid(t *testing.T) {
	if err := Pixhawk4Params().Validate(); err != nil {
		t.Errorf("Pixhawk4Params invalid: %v", err)
	}
}
