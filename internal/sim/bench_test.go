package sim

import (
	"fmt"
	"testing"
)

// benchCmds returns balanced near-hover commands that keep the vehicle
// airborne and uncrashed for the duration of a benchmark run.
func benchCmds(p VehicleParams, n int) [][4]float64 {
	h := p.HoverThrottle()
	cmds := make([][4]float64, n)
	for k := range cmds {
		cmds[k] = [4]float64{h, h, h, h}
	}
	return cmds
}

// BenchmarkQuadStep is the scalar per-trial-step baseline.
func BenchmarkQuadStep(b *testing.B) {
	p := IRISPlusParams()
	q, err := NewQuad(p)
	if err != nil {
		b.Fatal(err)
	}
	cmd := benchCmds(p, 1)[0]
	const dt = 1.0 / 400
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Periodic reset keeps the battery from depleting mid-run, which
		// would zero the commands and change the measured work.
		if i%100000 == 0 {
			b.StopTimer()
			q.Reset(q.State().Pos)
			b.StartTimer()
		}
		q.Step(cmd, dt)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trial-step")
}

// BenchmarkBatchStep measures the SoA kernel at the contract batch widths;
// ns/trial-step is the figure comparable against BenchmarkQuadStep.
func BenchmarkBatchStep(b *testing.B) {
	p := IRISPlusParams()
	const dt = 1.0 / 400
	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			bq, err := NewBatchQuad(p, n)
			if err != nil {
				b.Fatal(err)
			}
			cmds := benchCmds(p, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%100000 == 0 {
					b.StopTimer()
					for k := 0; k < n; k++ {
						lane := bq.Lane(k)
						lane.Reset(lane.State().Pos)
					}
					b.StartTimer()
				}
				bq.Step(cmds, dt)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/trial-step")
		})
	}
}
