package sim

import "github.com/ares-cps/ares/internal/mathx"

// Vehicle is the plant interface the firmware stack flies: the scalar Quad
// and a single lane of a BatchQuad are interchangeable behind it, which is
// how N firmware instances share one structure-of-arrays physics kernel.
type Vehicle interface {
	// State returns a copy of the rigid-body state.
	State() State
	// SetState overwrites the state and clears any crash condition.
	SetState(State)
	// Step advances the vehicle by dt with motor commands in [0, 1].
	Step(cmd [4]float64, dt float64)
	// Crashed reports whether the vehicle has crashed and why.
	Crashed() (bool, string)
	// Time returns simulated seconds since construction or Reset.
	Time() float64
	// LastAccel returns the world-frame acceleration over the last step.
	LastAccel() mathx.Vec3
	// Battery returns the current battery status.
	Battery() Battery
	// World returns the world the vehicle flies in.
	World() *World
	// Reset restores the vehicle to rest at pos with a full battery.
	Reset(pos mathx.Vec3)
}

var (
	_ Vehicle = (*Quad)(nil)
	_ Vehicle = (*LaneQuad)(nil)
)
