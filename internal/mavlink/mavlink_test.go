package mavlink

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestCRCX25KnownVector(t *testing.T) {
	// MAVLink's crc_accumulate is CRC-16/MCRF4XX (X.25 without the final
	// XOR); its check value for "123456789" is 0x6F91.
	if got := crcX25([]byte("123456789")); got != 0x6F91 {
		t.Errorf("crc = %#04x, want 0x6f91", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Seq: 7, SysID: 255, CompID: 1, MsgID: 23, Payload: []byte{1, 2, 3}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("frame round trip: %+v != %+v", out, in)
	}
}

func TestFrameResyncSkipsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x00, 0x13, 0x37}) // garbage
	if err := WriteFrame(&buf, Frame{MsgID: 5, Payload: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if f.MsgID != 5 || len(f.Payload) != 1 || f.Payload[0] != 9 {
		t.Errorf("frame after garbage: %+v", f)
	}
}

func TestFrameChecksumRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{MsgID: 5, Payload: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt CRC
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)))
	if !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestFrameOversizedPayload(t *testing.T) {
	err := WriteFrame(io.Discard, Frame{Payload: make([]byte, 300)})
	if err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	tests := []Message{
		&Heartbeat{Type: 2, Autopilot: 3, BaseMode: 81, CustomMode: 4, Status: 5},
		&ParamSet{Name: "ATC_RAT_RLL_P", Value: 0.25},
		&ParamRequestRead{Name: "WPNAV_SPEED"},
		&ParamValue{Name: "WPNAV_SPEED", Value: 500, OK: true},
		&CommandLong{Command: CmdTakeoff, Params: [7]float64{0, 0, 0, 0, 0, 0, 15}},
		&CommandAck{Command: CmdTakeoff, Result: 0},
		&MissionItem{Seq: 3, X: 10.5, Y: -2.25, Z: -15, Hold: 2},
		&MissionAck{Count: 4, OK: true},
		&Attitude{TimeS: 12.5, Roll: 0.1, Pitch: -0.2, Yaw: 1.5},
		&GlobalPosition{TimeS: 3.25, X: 1, Y: 2, Z: -3, VX: 0.5, VY: -0.5},
		&StatusText{Severity: 4, Text: "anomaly detected"},
	}
	for _, in := range tests {
		payload := in.Marshal()
		out, err := Decode(Frame{MsgID: in.ID(), Payload: payload})
		if err != nil {
			t.Fatalf("decode %T: %v", in, err)
		}
		if !messagesEqual(in, out) {
			t.Errorf("round trip %T:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

// messagesEqual compares messages allowing float32 quantization.
func messagesEqual(a, b Message) bool {
	va, vb := reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem()
	if va.Type() != vb.Type() {
		return false
	}
	for i := 0; i < va.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		switch fa.Kind() {
		case reflect.Float64:
			if math.Abs(fa.Float()-fb.Float()) > 1e-4 {
				return false
			}
		case reflect.Array:
			for j := 0; j < fa.Len(); j++ {
				if math.Abs(fa.Index(j).Float()-fb.Index(j).Float()) > 1e-4 {
					return false
				}
			}
		default:
			if !reflect.DeepEqual(fa.Interface(), fb.Interface()) {
				return false
			}
		}
	}
	return true
}

func TestDecodeUnknownAndShort(t *testing.T) {
	if _, err := Decode(Frame{MsgID: 250}); err == nil {
		t.Error("unknown message decoded")
	}
	if _, err := Decode(Frame{MsgID: MsgIDParamSet, Payload: []byte{1}}); err == nil {
		t.Error("short PARAM_SET decoded")
	}
}

func TestEndpointPipe(t *testing.T) {
	gcs, vehicle, closeFn := Pipe()
	defer closeFn()

	done := make(chan error, 1)
	go func() {
		defer close(done)
		m, err := vehicle.Recv()
		if err != nil {
			done <- err
			return
		}
		ps, ok := m.(*ParamSet)
		if !ok {
			done <- errors.New("wrong message type")
			return
		}
		done <- vehicle.Send(&ParamValue{Name: ps.Name, Value: ps.Value, OK: true})
	}()

	if err := gcs.Send(&ParamSet{Name: "ATC_RAT_RLL_P", Value: 0.2}); err != nil {
		t.Fatal(err)
	}
	reply, err := gcs.Recv()
	if err != nil {
		t.Fatal(err)
	}
	pv, ok := reply.(*ParamValue)
	if !ok || pv.Name != "ATC_RAT_RLL_P" || !pv.OK {
		t.Errorf("reply = %+v", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestEndpointSequenceNumbers(t *testing.T) {
	var buf bytes.Buffer
	e := NewEndpoint(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(nil), &buf}, 1)
	for i := 0; i < 3; i++ {
		if err := e.Send(&Heartbeat{}); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := 0; i < 3; i++ {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if int(f.Seq) != i {
			t.Errorf("seq = %d, want %d", f.Seq, i)
		}
		if f.SysID != 1 {
			t.Errorf("sysid = %d", f.SysID)
		}
	}
}

func TestCStringHandling(t *testing.T) {
	if got := cString([]byte("AB\x00CD")); got != "AB" {
		t.Errorf("cString = %q", got)
	}
	if got := cString([]byte("FULL")); got != "FULL" {
		t.Errorf("cString = %q", got)
	}
}
