package mavlink

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestPropertyFrameRoundTrip: any frame with a payload up to the protocol
// limit survives write/read exactly.
func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(seq, sys, comp, msgID uint8, payload []byte) bool {
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		in := Frame{Seq: seq, SysID: sys, CompID: comp, MsgID: msgID, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		if len(in.Payload) == 0 && len(out.Payload) == 0 {
			out.Payload, in.Payload = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertySingleBitFlipRejected: flipping any single bit of an encoded
// frame must never yield a frame that decodes to different content with a
// valid checksum. (Resynchronization may skip the frame entirely — that is
// a detected corruption, which is fine.)
func TestPropertySingleBitFlipRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		payload := make([]byte, 1+rng.Intn(32))
		rng.Read(payload)
		in := Frame{Seq: uint8(trial), MsgID: uint8(rng.Intn(250)), Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		bit := rng.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)

		out, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)))
		if err != nil {
			continue // corruption detected: checksum, truncation, or resync
		}
		// A successful read after a bit flip must still match the
		// original content (the flip hit a redundant encoding position —
		// impossible for this format, so reaching here with different
		// content is a missed corruption).
		if out.MsgID != in.MsgID || !bytes.Equal(out.Payload, in.Payload) ||
			out.Seq != in.Seq || out.SysID != in.SysID || out.CompID != in.CompID {
			t.Fatalf("bit flip %d yielded a different valid frame: %+v vs %+v",
				bit, out, in)
		}
	}
}

// TestPropertyParamSetValues: PARAM_SET round-trips any float32-representable
// value and any printable name up to the field width.
func TestPropertyParamSetValues(t *testing.T) {
	f := func(value float32, nameBytes []byte) bool {
		name := ""
		for _, b := range nameBytes {
			if len(name) >= 16 {
				break
			}
			if b >= 'A' && b <= 'Z' || b == '_' {
				name += string(rune(b))
			}
		}
		in := &ParamSet{Name: name, Value: float64(value)}
		out, err := Decode(Frame{MsgID: in.ID(), Payload: in.Marshal()})
		if err != nil {
			return false
		}
		ps := out.(*ParamSet)
		return ps.Name == name && float32(ps.Value) == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
