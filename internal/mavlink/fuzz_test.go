package mavlink

import (
	"bufio"
	"bytes"
	"testing"
)

// frameBytes encodes f, failing the test on error.
func frameBytes(tb testing.TB, f Frame) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseFrame drives ReadFrame over arbitrary byte streams: it must never
// panic, must terminate, and every frame it does accept must survive a
// re-encode/re-decode round trip bit-for-bit.
//
// CI runs this for a short budget (see .github/workflows/ci.yml); locally:
//
//	go test -fuzz=FuzzParseFrame -fuzztime=30s ./internal/mavlink
func FuzzParseFrame(f *testing.F) {
	valid := frameBytes(f, Frame{Seq: 7, SysID: 1, CompID: 1, MsgID: 23,
		Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated mid-CRC
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	f.Add(frameBytes(f, Frame{}))                          // empty payload
	f.Add(append([]byte{0x00, 0x42, stx}, valid...))       // garbage prefix, resync
	f.Add(append(append([]byte(nil), valid...), valid...)) // back-to-back frames
	f.Add([]byte{stx})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			fr, err := ReadFrame(r)
			if err == ErrBadChecksum {
				continue // stream-level resync, keep scanning
			}
			if err != nil {
				return // EOF or truncation: stream exhausted
			}
			if len(fr.Payload) > maxPayload {
				t.Fatalf("payload %d exceeds protocol max", len(fr.Payload))
			}
			reenc := frameBytes(t, fr)
			back, err := ReadFrame(bufio.NewReader(bytes.NewReader(reenc)))
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v\nframe: %+v", err, fr)
			}
			if back.Seq != fr.Seq || back.SysID != fr.SysID ||
				back.CompID != fr.CompID || back.MsgID != fr.MsgID ||
				!bytes.Equal(back.Payload, fr.Payload) {
				t.Fatalf("round trip mismatch: %+v != %+v", back, fr)
			}
		}
	})
}
