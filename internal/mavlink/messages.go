package mavlink

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message IDs (the subset of the common MAVLink dialect the system needs).
const (
	MsgIDHeartbeat        = 0
	MsgIDParamRequestRead = 20
	MsgIDParamValue       = 22
	MsgIDParamSet         = 23
	MsgIDAttitude         = 30
	MsgIDGlobalPosition   = 33
	MsgIDMissionItem      = 39
	MsgIDMissionAck       = 47
	MsgIDCommandLong      = 76
	MsgIDCommandAck       = 77
	MsgIDStatusText       = 253
)

// Command IDs for CommandLong.
const (
	CmdArmDisarm  = 400
	CmdTakeoff    = 22
	CmdLand       = 21
	CmdSetMode    = 176
	CmdMissionGo  = 300
	CmdRTL        = 20
	CmdComponentA = 241
)

// Message is any encodable protocol message.
type Message interface {
	// ID returns the MAVLink message ID.
	ID() uint8
	// Marshal encodes the payload.
	Marshal() []byte
	// Unmarshal decodes the payload in place.
	Unmarshal(p []byte) error
}

// Heartbeat announces system liveness and mode.
type Heartbeat struct {
	Type       uint8
	Autopilot  uint8
	BaseMode   uint8
	CustomMode uint32
	Status     uint8
}

// ID implements Message.
func (*Heartbeat) ID() uint8 { return MsgIDHeartbeat }

// Marshal implements Message.
func (m *Heartbeat) Marshal() []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint32(p[0:], m.CustomMode)
	p[4] = m.Type
	p[5] = m.Autopilot
	p[6] = m.BaseMode
	p[7] = m.Status
	return p
}

// Unmarshal implements Message.
func (m *Heartbeat) Unmarshal(p []byte) error {
	if len(p) < 8 {
		return shortPayload("HEARTBEAT", len(p))
	}
	m.CustomMode = binary.LittleEndian.Uint32(p[0:])
	m.Type = p[4]
	m.Autopilot = p[5]
	m.BaseMode = p[6]
	m.Status = p[7]
	return nil
}

// ParamSet asks the vehicle to change one parameter. This is the message
// MAVProxy issues for the paper's 0.3 s-interval adversarial injections.
type ParamSet struct {
	Name  string // at most 16 chars
	Value float64
}

// ID implements Message.
func (*ParamSet) ID() uint8 { return MsgIDParamSet }

// Marshal implements Message.
func (m *ParamSet) Marshal() []byte {
	p := make([]byte, 20)
	binary.LittleEndian.PutUint32(p[0:], math.Float32bits(float32(m.Value)))
	copy(p[4:20], m.Name)
	return p
}

// Unmarshal implements Message.
func (m *ParamSet) Unmarshal(p []byte) error {
	if len(p) < 20 {
		return shortPayload("PARAM_SET", len(p))
	}
	m.Value = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[0:])))
	m.Name = cString(p[4:20])
	return nil
}

// ParamRequestRead asks for one parameter's current value.
type ParamRequestRead struct {
	Name string
}

// ID implements Message.
func (*ParamRequestRead) ID() uint8 { return MsgIDParamRequestRead }

// Marshal implements Message.
func (m *ParamRequestRead) Marshal() []byte {
	p := make([]byte, 16)
	copy(p, m.Name)
	return p
}

// Unmarshal implements Message.
func (m *ParamRequestRead) Unmarshal(p []byte) error {
	if len(p) < 16 {
		return shortPayload("PARAM_REQUEST_READ", len(p))
	}
	m.Name = cString(p[:16])
	return nil
}

// ParamValue reports one parameter's value (reply to set/request).
type ParamValue struct {
	Name  string
	Value float64
	// OK distinguishes an applied set (true) from a rejected one.
	OK bool
}

// ID implements Message.
func (*ParamValue) ID() uint8 { return MsgIDParamValue }

// Marshal implements Message.
func (m *ParamValue) Marshal() []byte {
	p := make([]byte, 21)
	binary.LittleEndian.PutUint32(p[0:], math.Float32bits(float32(m.Value)))
	copy(p[4:20], m.Name)
	if m.OK {
		p[20] = 1
	}
	return p
}

// Unmarshal implements Message.
func (m *ParamValue) Unmarshal(p []byte) error {
	if len(p) < 21 {
		return shortPayload("PARAM_VALUE", len(p))
	}
	m.Value = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[0:])))
	m.Name = cString(p[4:20])
	m.OK = p[20] == 1
	return nil
}

// CommandLong carries a command with up to seven float parameters.
type CommandLong struct {
	Command uint16
	Params  [7]float64
}

// ID implements Message.
func (*CommandLong) ID() uint8 { return MsgIDCommandLong }

// Marshal implements Message.
func (m *CommandLong) Marshal() []byte {
	p := make([]byte, 30)
	for i, v := range m.Params {
		binary.LittleEndian.PutUint32(p[i*4:], math.Float32bits(float32(v)))
	}
	binary.LittleEndian.PutUint16(p[28:], m.Command)
	return p
}

// Unmarshal implements Message.
func (m *CommandLong) Unmarshal(p []byte) error {
	if len(p) < 30 {
		return shortPayload("COMMAND_LONG", len(p))
	}
	for i := range m.Params {
		m.Params[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:])))
	}
	m.Command = binary.LittleEndian.Uint16(p[28:])
	return nil
}

// CommandAck acknowledges a CommandLong. Result 0 means accepted.
type CommandAck struct {
	Command uint16
	Result  uint8
}

// ID implements Message.
func (*CommandAck) ID() uint8 { return MsgIDCommandAck }

// Marshal implements Message.
func (m *CommandAck) Marshal() []byte {
	p := make([]byte, 3)
	binary.LittleEndian.PutUint16(p[0:], m.Command)
	p[2] = m.Result
	return p
}

// Unmarshal implements Message.
func (m *CommandAck) Unmarshal(p []byte) error {
	if len(p) < 3 {
		return shortPayload("COMMAND_ACK", len(p))
	}
	m.Command = binary.LittleEndian.Uint16(p[0:])
	m.Result = p[2]
	return nil
}

// MissionItem uploads one waypoint (local NED coordinates in meters).
type MissionItem struct {
	Seq     uint16
	X, Y, Z float64
	Hold    float64 // seconds to hold at the waypoint
}

// ID implements Message.
func (*MissionItem) ID() uint8 { return MsgIDMissionItem }

// Marshal implements Message.
func (m *MissionItem) Marshal() []byte {
	p := make([]byte, 18)
	binary.LittleEndian.PutUint16(p[0:], m.Seq)
	binary.LittleEndian.PutUint32(p[2:], math.Float32bits(float32(m.X)))
	binary.LittleEndian.PutUint32(p[6:], math.Float32bits(float32(m.Y)))
	binary.LittleEndian.PutUint32(p[10:], math.Float32bits(float32(m.Z)))
	binary.LittleEndian.PutUint32(p[14:], math.Float32bits(float32(m.Hold)))
	return p
}

// Unmarshal implements Message.
func (m *MissionItem) Unmarshal(p []byte) error {
	if len(p) < 18 {
		return shortPayload("MISSION_ITEM", len(p))
	}
	m.Seq = binary.LittleEndian.Uint16(p[0:])
	m.X = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[2:])))
	m.Y = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[6:])))
	m.Z = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[10:])))
	m.Hold = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[14:])))
	return nil
}

// MissionAck confirms a mission upload.
type MissionAck struct {
	Count uint16
	OK    bool
}

// ID implements Message.
func (*MissionAck) ID() uint8 { return MsgIDMissionAck }

// Marshal implements Message.
func (m *MissionAck) Marshal() []byte {
	p := make([]byte, 3)
	binary.LittleEndian.PutUint16(p[0:], m.Count)
	if m.OK {
		p[2] = 1
	}
	return p
}

// Unmarshal implements Message.
func (m *MissionAck) Unmarshal(p []byte) error {
	if len(p) < 3 {
		return shortPayload("MISSION_ACK", len(p))
	}
	m.Count = binary.LittleEndian.Uint16(p[0:])
	m.OK = p[2] == 1
	return nil
}

// Attitude streams the vehicle attitude (telemetry downlink).
type Attitude struct {
	TimeS            float64
	Roll, Pitch, Yaw float64
}

// ID implements Message.
func (*Attitude) ID() uint8 { return MsgIDAttitude }

// Marshal implements Message.
func (m *Attitude) Marshal() []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint32(p[0:], uint32(m.TimeS*1000))
	binary.LittleEndian.PutUint32(p[4:], math.Float32bits(float32(m.Roll)))
	binary.LittleEndian.PutUint32(p[8:], math.Float32bits(float32(m.Pitch)))
	binary.LittleEndian.PutUint32(p[12:], math.Float32bits(float32(m.Yaw)))
	return p
}

// Unmarshal implements Message.
func (m *Attitude) Unmarshal(p []byte) error {
	if len(p) < 16 {
		return shortPayload("ATTITUDE", len(p))
	}
	m.TimeS = float64(binary.LittleEndian.Uint32(p[0:])) / 1000
	m.Roll = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[4:])))
	m.Pitch = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[8:])))
	m.Yaw = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[12:])))
	return nil
}

// GlobalPosition streams the vehicle position (local NED meters).
type GlobalPosition struct {
	TimeS   float64
	X, Y, Z float64
	VX, VY  float64
}

// ID implements Message.
func (*GlobalPosition) ID() uint8 { return MsgIDGlobalPosition }

// Marshal implements Message.
func (m *GlobalPosition) Marshal() []byte {
	p := make([]byte, 24)
	binary.LittleEndian.PutUint32(p[0:], uint32(m.TimeS*1000))
	for i, v := range []float64{m.X, m.Y, m.Z, m.VX, m.VY} {
		binary.LittleEndian.PutUint32(p[4+i*4:], math.Float32bits(float32(v)))
	}
	return p
}

// Unmarshal implements Message.
func (m *GlobalPosition) Unmarshal(p []byte) error {
	if len(p) < 24 {
		return shortPayload("GLOBAL_POSITION", len(p))
	}
	m.TimeS = float64(binary.LittleEndian.Uint32(p[0:])) / 1000
	vals := make([]float64, 5)
	for i := range vals {
		vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[4+i*4:])))
	}
	m.X, m.Y, m.Z, m.VX, m.VY = vals[0], vals[1], vals[2], vals[3], vals[4]
	return nil
}

// StatusText carries a severity-tagged text message from the vehicle.
type StatusText struct {
	Severity uint8
	Text     string // at most 50 chars
}

// ID implements Message.
func (*StatusText) ID() uint8 { return MsgIDStatusText }

// Marshal implements Message.
func (m *StatusText) Marshal() []byte {
	p := make([]byte, 51)
	p[0] = m.Severity
	copy(p[1:], m.Text)
	return p
}

// Unmarshal implements Message.
func (m *StatusText) Unmarshal(p []byte) error {
	if len(p) < 51 {
		return shortPayload("STATUSTEXT", len(p))
	}
	m.Severity = p[0]
	m.Text = cString(p[1:51])
	return nil
}

// Decode constructs the typed message for a frame.
func Decode(f Frame) (Message, error) {
	var m Message
	switch f.MsgID {
	case MsgIDHeartbeat:
		m = &Heartbeat{}
	case MsgIDParamSet:
		m = &ParamSet{}
	case MsgIDParamRequestRead:
		m = &ParamRequestRead{}
	case MsgIDParamValue:
		m = &ParamValue{}
	case MsgIDCommandLong:
		m = &CommandLong{}
	case MsgIDCommandAck:
		m = &CommandAck{}
	case MsgIDMissionItem:
		m = &MissionItem{}
	case MsgIDMissionAck:
		m = &MissionAck{}
	case MsgIDAttitude:
		m = &Attitude{}
	case MsgIDGlobalPosition:
		m = &GlobalPosition{}
	case MsgIDStatusText:
		m = &StatusText{}
	default:
		return nil, fmt.Errorf("mavlink: unknown message id %d", f.MsgID)
	}
	if err := m.Unmarshal(f.Payload); err != nil {
		return nil, err
	}
	return m, nil
}

func shortPayload(name string, n int) error {
	return fmt.Errorf("mavlink: %s payload too short (%d bytes)", name, n)
}

// cString trims a fixed-width zero-padded string field.
func cString(p []byte) string {
	for i, b := range p {
		if b == 0 {
			return string(p[:i])
		}
	}
	return string(p)
}
