// Package mavlink implements the GCS↔vehicle telemetry protocol used for
// parameter updates, commands and mission upload — the remote attack surface
// of the paper's threat model ("the attacker ... can concoct and issue
// malicious GCS commands to update the control parameters in the victim
// RAV").
//
// The wire format follows MAVLink v1 framing: a 0xFE start byte, length,
// sequence number, system/component IDs, message ID, payload and a CRC-X.25
// checksum. Only the message subset the evaluation needs is implemented,
// each with hand-written little-endian codecs.
package mavlink

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// stx is the MAVLink v1 frame start marker.
const stx = 0xFE

// maxPayload bounds a frame payload (MAVLink v1 limit).
const maxPayload = 255

// Frame is a raw protocol frame.
type Frame struct {
	Seq     uint8
	SysID   uint8
	CompID  uint8
	MsgID   uint8
	Payload []byte
}

// ErrBadChecksum reports a frame whose CRC failed.
var ErrBadChecksum = errors.New("mavlink: bad checksum")

// crcX25 computes the CRC-16/MCRF4XX checksum MAVLink uses (the X.25
// polynomial with reflected processing and no final XOR).
func crcX25(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		tmp := uint16(b) ^ (crc & 0xFF)
		tmp ^= tmp << 4
		tmp &= 0xFF
		crc = (crc >> 8) ^ (tmp << 8) ^ (tmp << 3) ^ (tmp >> 4)
	}
	return crc
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > maxPayload {
		return fmt.Errorf("mavlink: payload %d exceeds %d bytes", len(f.Payload), maxPayload)
	}
	buf := make([]byte, 0, 8+len(f.Payload))
	buf = append(buf, stx, byte(len(f.Payload)), f.Seq, f.SysID, f.CompID, f.MsgID)
	buf = append(buf, f.Payload...)
	crc := crcX25(buf[1:]) // CRC covers everything after STX
	buf = binary.LittleEndian.AppendUint16(buf, crc)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads the next well-formed frame, skipping garbage bytes until a
// start marker is found. A CRC failure returns ErrBadChecksum (the caller
// may continue reading).
func ReadFrame(r *bufio.Reader) (Frame, error) {
	for {
		b, err := r.ReadByte()
		if err != nil {
			return Frame{}, err
		}
		if b != stx {
			continue // resync
		}
		header := make([]byte, 5)
		if _, err := io.ReadFull(r, header); err != nil {
			return Frame{}, fmt.Errorf("mavlink: truncated header: %w", err)
		}
		payloadLen := int(header[0])
		rest := make([]byte, payloadLen+2)
		if _, err := io.ReadFull(r, rest); err != nil {
			return Frame{}, fmt.Errorf("mavlink: truncated frame: %w", err)
		}
		body := append(header, rest[:payloadLen]...)
		wantCRC := binary.LittleEndian.Uint16(rest[payloadLen:])
		if crcX25(body) != wantCRC {
			return Frame{}, ErrBadChecksum
		}
		return Frame{
			Seq:     header[1],
			SysID:   header[2],
			CompID:  header[3],
			MsgID:   header[4],
			Payload: rest[:payloadLen],
		}, nil
	}
}
