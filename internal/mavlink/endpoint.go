package mavlink

import (
	"bufio"
	"errors"
	"io"
	"sync"
)

// Endpoint sends and receives typed messages over any stream transport —
// a TCP connection, a serial line, or an in-memory pipe in tests.
type Endpoint struct {
	sysID  uint8
	compID uint8

	mu  sync.Mutex
	seq uint8
	w   io.Writer
	r   *bufio.Reader
}

// NewEndpoint wraps a transport. sysID identifies this end (1 = vehicle,
// 255 = ground station by convention).
func NewEndpoint(rw io.ReadWriter, sysID uint8) *Endpoint {
	return &Endpoint{
		sysID:  sysID,
		compID: 1,
		w:      rw,
		r:      bufio.NewReader(rw),
	}
}

// Send encodes and transmits one message.
func (e *Endpoint) Send(m Message) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := Frame{
		Seq:     e.seq,
		SysID:   e.sysID,
		CompID:  e.compID,
		MsgID:   m.ID(),
		Payload: m.Marshal(),
	}
	e.seq++
	return WriteFrame(e.w, f)
}

// Recv blocks for the next valid message, skipping frames with checksum
// errors and unknown message IDs (forward compatibility).
func (e *Endpoint) Recv() (Message, error) {
	for {
		f, err := ReadFrame(e.r)
		if errors.Is(err, ErrBadChecksum) {
			continue
		}
		if err != nil {
			return nil, err
		}
		m, err := Decode(f)
		if err != nil {
			continue // unknown message: skip
		}
		return m, nil
	}
}

// Pipe returns two connected in-memory endpoints (GCS side, vehicle side),
// useful for tests and the in-process attack injector. The returned closer
// shuts both directions down.
func Pipe() (gcs, vehicle *Endpoint, closeFn func()) {
	gr, vw := io.Pipe()
	vr, gw := io.Pipe()
	gcs = NewEndpoint(struct {
		io.Reader
		io.Writer
	}{gr, gw}, 255)
	vehicle = NewEndpoint(struct {
		io.Reader
		io.Writer
	}{vr, vw}, 1)
	closeFn = func() {
		_ = vw.Close()
		_ = gw.Close()
		_ = gr.Close()
		_ = vr.Close()
	}
	return gcs, vehicle, closeFn
}
