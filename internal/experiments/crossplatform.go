package experiments

import (
	"fmt"
	"io"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/sim"
)

// CrossPlatformResult evaluates the paper's generalizability claim (Section
// VI): the same methodology applied to the second virtual vehicle (the
// Pixhawk4-class airframe) without any retuning — the evaluation uses "two
// virtual vehicles, IRIS+ (a quadrotor) and Pixhawk4".
type CrossPlatformResult struct {
	// PerVehicle holds one row per airframe.
	PerVehicle []CrossPlatformRow
}

// CrossPlatformRow summarizes one airframe's run.
type CrossPlatformRow struct {
	Vehicle string
	// BenignOK reports a clean benign mission; BenignMaxCI its statistic.
	BenignOK    bool
	BenignMaxCI float64
	// RampEvaded and RampDev report the ARES ramp outcome.
	RampEvaded bool
	RampDev    float64
	// NaiveDetected reports the baseline attack outcome.
	NaiveDetected bool
}

// Name implements Result.
func (*CrossPlatformResult) Name() string { return "crossplatform" }

// RunCrossPlatform replays the Figure 6 scenario set on both airframes,
// calibrating the monitor per vehicle (a deployed detector is fit to its
// own airframe).
func RunCrossPlatform(s *Suite) (*CrossPlatformResult, error) {
	mission := s.attackMission()
	vehicles := []struct {
		name   string
		params sim.VehicleParams
	}{
		{"IRIS+", sim.IRISPlusParams()},
		{"Pixhawk4", sim.Pixhawk4Params()},
	}
	res := &CrossPlatformResult{}
	for vi, v := range vehicles {
		ci, _, err := attack.CalibrateMonitorsFor(mission, v.params, s.Seed+int64(80+vi*10)) //areslint:ignore seedarith golden-pinned
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		row := CrossPlatformRow{Vehicle: v.name}

		benign, err := attack.RunSession(attack.SessionConfig{
			Mission: mission, Duration: 60, Seed: s.Seed + int64(81+vi*10), //areslint:ignore seedarith golden-pinned
			CI: ci, Vehicle: v.params,
		})
		if err != nil {
			return nil, err
		}
		row.BenignOK = !benign.DetectedCI && benign.MissionComplete
		row.BenignMaxCI = benign.MaxCI

		ramp, err := attack.RunSession(attack.SessionConfig{
			Mission: mission, Duration: 60, Seed: s.Seed + int64(82+vi*10), //areslint:ignore seedarith golden-pinned
			CI: ci, Vehicle: v.params,
			Strategy: &attack.RampAttack{
				Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
				Rate: 0.0436, Cap: 0.4,
			},
			AttackStart: 10,
		})
		if err != nil {
			return nil, err
		}
		row.RampEvaded = !ramp.DetectedCI
		row.RampDev = ramp.MaxPathDev

		naive, err := attack.RunSession(attack.SessionConfig{
			Mission: mission, Duration: 60, Seed: s.Seed + int64(83+vi*10), //areslint:ignore seedarith golden-pinned
			CI: ci, Vehicle: v.params,
			Strategy: &attack.NaiveAttack{
				Region: firmware.RegionStabilizer, Variable: "PIDR.INTEG",
				Value: 0.25,
			},
			AttackStart: 10,
		})
		if err != nil {
			return nil, err
		}
		row.NaiveDetected = naive.DetectedCI
		res.PerVehicle = append(res.PerVehicle, row)
	}
	return res, nil
}

// WriteText implements Result.
func (r *CrossPlatformResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"Cross-platform — the Figure 6 scenario set on both virtual vehicles"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %10s\n",
		"vehicle", "benignOK", "benignMaxCI", "rampEvaded", "rampDev", "naiveDet"); err != nil {
		return err
	}
	for _, row := range r.PerVehicle {
		if _, err := fmt.Fprintf(w, "%-10s %10v %12.0f %12v %9.1fm %10v\n",
			row.Vehicle, row.BenignOK, row.BenignMaxCI,
			row.RampEvaded, row.RampDev, row.NaiveDetected); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *CrossPlatformResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.PerVehicle))
	for _, row := range r.PerVehicle {
		rows = append(rows, []string{
			row.Vehicle,
			fmt.Sprint(row.BenignOK),
			fmt.Sprint(row.RampEvaded),
			fmt.Sprintf("%.2f", row.RampDev),
			fmt.Sprint(row.NaiveDetected),
		})
	}
	return writeCSVStrings(dir, "crossplatform.csv",
		[]string{"vehicle", "benign_ok", "ramp_evaded", "ramp_dev", "naive_detected"}, rows)
}
