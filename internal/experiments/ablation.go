package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/firmware"
)

// AblationResult covers the design-choice ablations DESIGN.md calls out:
// clustering before model selection, stepwise vs exhaustive search, policy
// gradient vs Q-learning, and bounded vs unbounded manipulation amounts.
type AblationResult struct {
	// Clustered/Flat report the model-selection cost with and without
	// hierarchical clustering (models fitted, TSVL size).
	ClusteredModels, FlatModels int
	ClusteredTSVL, FlatTSVL     []string
	// StepwiseModels/ExhaustiveModels compare the search cost at equal
	// data on the same subset.
	StepwiseModels, ExhaustiveModels int
	StepwiseAIC, ExhaustiveAIC       float64
	// PGReturn and QReturn compare the learners' late-training returns
	// on the deviation task.
	PGReturn, QReturn float64
	// BoundedDetected and UnboundedDetected compare the CI detection
	// outcome for a gradual ramp versus random jitter of equal magnitude
	// (the paper's bounded-vs-random manipulation design choice).
	BoundedDetected, UnboundedDetected bool
	BoundedDev, UnboundedDev           float64
	// WithDetector/WithoutDetector compare agents trained with and
	// without the CI monitor in the reward loop (Section V-C: the −∞
	// alarm penalty "incentivizes the RL agent to explore areas of the
	// state space which do not trigger an alarm").
	WithDetectorEvaded    bool
	WithDetectorDev       float64
	WithoutDetectorDev    float64
	WithoutDetectorCaught bool
	TotalTrainEpisodes    int
}

// Name implements Result.
func (*AblationResult) Name() string { return "ablation" }

// RunAblation executes the four ablations.
func RunAblation(s *Suite) (*AblationResult, error) {
	prof, err := s.Profile()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}

	// (1) Clustering vs none.
	clustered, err := core.AnalyzeRoll(prof, s.Analysis)
	if err != nil {
		return nil, err
	}
	flatOpts := s.Analysis
	flatOpts.SkipClustering = true
	flat, err := core.AnalyzeRoll(prof, flatOpts)
	if err != nil {
		return nil, err
	}
	res.ClusteredModels = clustered.Report.ModelsFitted
	res.FlatModels = flat.Report.ModelsFitted
	res.ClusteredTSVL = clustered.TSVL
	res.FlatTSVL = flat.TSVL

	// (2) Stepwise vs exhaustive on the Sqrt group (small enough for
	// exhaustive search).
	sqrt, err := core.GroupByName("Sqrt")
	if err != nil {
		return nil, err
	}
	sw, err := core.AnalyzeGroup(prof, sqrt, s.Analysis)
	if err != nil {
		return nil, err
	}
	exOpts := s.Analysis
	exOpts.Exhaustive = true
	ex, err := core.AnalyzeGroup(prof, sqrt, exOpts)
	if err != nil {
		return nil, err
	}
	res.StepwiseModels = sw.Report.ModelsFitted
	res.ExhaustiveModels = ex.Report.ModelsFitted
	res.StepwiseAIC = bestAIC(sw)
	res.ExhaustiveAIC = bestAIC(ex)

	// (3) Policy gradient vs Q-learning on the deviation task.
	episodes := s.episodes() / 2
	pg, _, err := core.TrainDeviationExploit(core.ExploitConfig{
		Env:      core.EnvConfig{Variable: "PIDR.INTEG", Seed: s.Seed + 2000}, //areslint:ignore seedarith golden-pinned
		Episodes: episodes, MaxSteps: 40, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	q, _, err := core.TrainDeviationExploit(core.ExploitConfig{
		Env:      core.EnvConfig{Variable: "PIDR.INTEG", Seed: s.Seed + 2100}, //areslint:ignore seedarith golden-pinned
		Episodes: episodes, MaxSteps: 40, Seed: s.Seed, Learner: "qlearning",
	})
	if err != nil {
		return nil, err
	}
	n := episodes / 5
	if n < 1 {
		n = 1
	}
	res.PGReturn = pg.Train.MeanLastN(n)
	res.QReturn = q.Train.MeanLastN(n)

	// (4) Bounded (gradual) vs unbounded (jump) manipulation of equal
	// total magnitude against the CI detector.
	ci, _, err := s.Monitors()
	if err != nil {
		return nil, err
	}
	mission := s.attackMission()
	bounded, err := attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 60, Seed: s.Seed + 30, CI: ci, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.RampAttack{
			Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
			Rate: 0.0436, Cap: 0.4,
		},
		AttackStart: 10,
	})
	if err != nil {
		return nil, err
	}
	unbounded, err := attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 60, Seed: s.Seed + 31, CI: ci, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.JitterAttack{
			Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
			Amplitude: 0.4, Interval: 0.3, Seed: s.Seed,
		},
		AttackStart: 10,
	})
	if err != nil {
		return nil, err
	}
	res.BoundedDetected = bounded.DetectedCI
	res.UnboundedDetected = unbounded.DetectedCI
	res.BoundedDev = bounded.MaxPathDev
	res.UnboundedDev = unbounded.MaxPathDev

	// (5) Detector-in-the-loop reward vs plain reward.
	res.TotalTrainEpisodes = episodes
	// The command-offset lever is strong enough that an unconstrained
	// agent's aggressive offsets trip the CI monitor; the in-loop agent
	// must trade deviation for stealth.
	inLoop, _, err := core.TrainDeviationExploit(core.ExploitConfig{
		Env: core.EnvConfig{
			Variable:  "CMD.Roll",
			PerTick:   true,
			MaxAction: 0.6,
			Seed:      s.Seed + 2200, //areslint:ignore seedarith golden-pinned
			Detector:  ci,
		},
		Episodes: episodes, MaxSteps: 60, Seed: s.Seed + 3, //areslint:ignore seedarith golden-pinned
	})
	if err != nil {
		return nil, err
	}
	_, plainAgent, err := core.TrainDeviationExploit(core.ExploitConfig{
		Env: core.EnvConfig{
			Variable:  "CMD.Roll",
			PerTick:   true,
			MaxAction: 0.6,
			Seed:      s.Seed + 2300, //areslint:ignore seedarith golden-pinned
		},
		Episodes: episodes, MaxSteps: 60, Seed: s.Seed + 3, //areslint:ignore seedarith golden-pinned
	})
	if err != nil {
		return nil, err
	}
	// Judge the detector-blind policy under the detector it never saw.
	plainDev, plainDetected, _, err := core.EvaluateDeviation(plainAgent, core.EnvConfig{
		Variable:  "CMD.Roll",
		PerTick:   true,
		MaxAction: 0.6,
		Seed:      s.Seed + 2400, //areslint:ignore seedarith golden-pinned
		Detector:  ci,
	}, 60)
	if err != nil {
		return nil, err
	}
	res.WithDetectorEvaded = !inLoop.EvalDetected
	res.WithDetectorDev = inLoop.EvalDeviation
	res.WithoutDetectorDev = plainDev
	res.WithoutDetectorCaught = plainDetected
	return res, nil
}

func bestAIC(g *core.GroupAnalysis) float64 {
	best := 0.0
	first := true
	for _, m := range g.Report.Models {
		if m.Model == nil {
			continue
		}
		if first || m.Model.AIC < best {
			best = m.Model.AIC
			first = false
		}
	}
	return best
}

// WriteText implements Result.
func (r *AblationResult) WriteText(w io.Writer) error {
	sections := []string{
		fmt.Sprintf("Ablation 1 — hierarchical clustering before selection:\n"+
			"  clustered: %d models fitted, TSVL = %s\n"+
			"  flat:      %d models fitted, TSVL = %s\n",
			r.ClusteredModels, strings.Join(r.ClusteredTSVL, ","),
			r.FlatModels, strings.Join(r.FlatTSVL, ",")),
		fmt.Sprintf("Ablation 2 — stepwise vs exhaustive AIC (Sqrt group):\n"+
			"  stepwise:   %d models, best AIC %.1f\n"+
			"  exhaustive: %d models, best AIC %.1f\n",
			r.StepwiseModels, r.StepwiseAIC,
			r.ExhaustiveModels, r.ExhaustiveAIC),
		fmt.Sprintf("Ablation 3 — policy gradient vs Q-learning (deviation task):\n"+
			"  policy gradient late return: %.2f\n"+
			"  Q-learning late return:      %.2f\n",
			r.PGReturn, r.QReturn),
		fmt.Sprintf("Ablation 5 — detector-in-the-loop reward (%d episodes each):\n"+
			"  with CI in loop:    eval deviation %.2f m, evaded detector=%v\n"+
			"  without detector:   eval deviation %.2f m, caught when judged under CI=%v\n",
			r.TotalTrainEpisodes, r.WithDetectorDev, r.WithDetectorEvaded,
			r.WithoutDetectorDev, r.WithoutDetectorCaught),
		fmt.Sprintf("Ablation 4 — bounded ramp vs random jitter (equal magnitude 0.4):\n"+
			"  gradual: detected=%v, max deviation %.1f m\n"+
			"  random:  detected=%v, max deviation %.1f m\n"+
			"  (a directed ramp converts the same manipulation magnitude into far\n"+
			"   more physical displacement than zero-mean jumps)\n",
			r.BoundedDetected, r.BoundedDev,
			r.UnboundedDetected, r.UnboundedDev),
	}
	for _, s := range sections {
		if _, err := fmt.Fprintln(w, s); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *AblationResult) WriteCSV(dir string) error {
	rows := [][]string{
		{"clustered_models", fmt.Sprint(r.ClusteredModels)},
		{"flat_models", fmt.Sprint(r.FlatModels)},
		{"stepwise_models", fmt.Sprint(r.StepwiseModels)},
		{"exhaustive_models", fmt.Sprint(r.ExhaustiveModels)},
		{"pg_return", fmt.Sprint(r.PGReturn)},
		{"q_return", fmt.Sprint(r.QReturn)},
		{"bounded_detected", fmt.Sprint(r.BoundedDetected)},
		{"unbounded_detected", fmt.Sprint(r.UnboundedDetected)},
	}
	return writeCSVStrings(dir, "ablation.csv", []string{"metric", "value"}, rows)
}
