package experiments

import (
	"fmt"
	"io"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
)

// Fig9Result reproduces Figure 9: the control-invariants threshold sweep.
// Attack 1 doubles the headline manipulation rate, Attack 2 cuts it to a
// tenth; each condition flies multiple trials and the per-mission maximum
// cumulative error feeds the FP/TP computation at decreasing thresholds.
type Fig9Result struct {
	BenignMax  []float64
	Attack1Max []float64
	Attack2Max []float64
	// Sweep1 and Sweep2 hold the FP/TP points per attack.
	Sweep1, Sweep2 []defense.SweepPoint
	Thresholds     []float64
	Trials         int
}

// Name implements Result.
func (*Fig9Result) Name() string { return "fig9" }

// RunFig9 executes the trial matrix and the threshold sweep.
func RunFig9(s *Suite) (*Fig9Result, error) {
	ci, _, err := s.Monitors()
	if err != nil {
		return nil, err
	}
	mission := s.attackMission()
	res := &Fig9Result{
		// The deployed threshold is 400 000; the sweep walks it down
		// through the attack-1 separation band into the benign range.
		Thresholds: []float64{400000, 300000, 200000, 100000, 85000},
		Trials:     s.trials(),
	}

	runTrials := func(mk func(seed int64) attack.Strategy, base int64) ([]float64, error) {
		var maxes []float64
		for i := 0; i < res.Trials; i++ {
			seed := base + int64(i)
			var strat attack.Strategy
			if mk != nil {
				strat = mk(seed)
			}
			sess, err := attack.RunSession(attack.SessionConfig{
				Mission: mission, Duration: 60, Seed: seed,
				CI: ci, Strategy: strat, AttackStart: 10,
			})
			if err != nil {
				return nil, err
			}
			maxes = append(maxes, sess.MaxCI)
		}
		return maxes, nil
	}

	if res.BenignMax, err = runTrials(nil, s.Seed+100); err != nil { //areslint:ignore seedarith golden-pinned
		return nil, err
	}
	// Attack 1: twice the headline ramp rate with a deeper cap (the
	// paper's 0.0125°/step attack).
	if res.Attack1Max, err = runTrials(func(int64) attack.Strategy {
		return &attack.RampAttack{
			Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
			Rate: 0.0872, Cap: 0.5,
		}
	}, s.Seed+200); err != nil { //areslint:ignore seedarith golden-pinned
		return nil, err
	}
	// Attack 2: a tenth of the headline rate with a shallow cap (the
	// 0.000625°/step attack).
	if res.Attack2Max, err = runTrials(func(int64) attack.Strategy {
		return &attack.RampAttack{
			Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
			Rate: 0.00436, Cap: 0.2,
		}
	}, s.Seed+300); err != nil { //areslint:ignore seedarith golden-pinned
		return nil, err
	}

	res.Sweep1 = defense.ThresholdSweep(res.BenignMax, res.Attack1Max, res.Thresholds)
	res.Sweep2 = defense.ThresholdSweep(res.BenignMax, res.Attack2Max, res.Thresholds)
	return res, nil
}

// WriteText implements Result.
func (r *Fig9Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 9 — CI threshold sweep (%d trials per condition)\n", r.Trials); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "(a) max cumulative error per mission:"); err != nil {
		return err
	}
	stats := func(name string, xs []float64) error {
		lo, hi, sum := xs[0], xs[0], 0.0
		for _, v := range xs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			sum += v
		}
		_, err := fmt.Fprintf(w, "  %-8s min=%9.0f mean=%9.0f max=%9.0f\n",
			name, lo, sum/float64(len(xs)), hi)
		return err
	}
	if err := stats("benign", r.BenignMax); err != nil {
		return err
	}
	if err := stats("attack1", r.Attack1Max); err != nil {
		return err
	}
	if err := stats("attack2", r.Attack2Max); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "(b) FP/TP at decreasing thresholds:"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s | %8s %8s | %8s %8s\n",
		"threshold", "FP", "TP(a1)", "FP", "TP(a2)"); err != nil {
		return err
	}
	for i := range r.Thresholds {
		if _, err := fmt.Fprintf(w, "%10.0f | %7.0f%% %7.0f%% | %7.0f%% %7.0f%%\n",
			r.Thresholds[i],
			r.Sweep1[i].FPRate*100, r.Sweep1[i].TPRate*100,
			r.Sweep2[i].FPRate*100, r.Sweep2[i].TPRate*100); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig9Result) WriteCSV(dir string) error {
	maxRows := make([][]float64, 0, len(r.BenignMax))
	for i := range r.BenignMax {
		maxRows = append(maxRows, []float64{
			float64(i), r.BenignMax[i], r.Attack1Max[i], r.Attack2Max[i],
		})
	}
	if err := writeCSVFile(dir, "fig9_max_errors.csv",
		[]string{"trial", "benign", "attack1", "attack2"}, maxRows); err != nil {
		return err
	}
	sweepRows := make([][]float64, 0, len(r.Thresholds))
	for i := range r.Thresholds {
		sweepRows = append(sweepRows, []float64{
			r.Thresholds[i],
			r.Sweep1[i].FPRate, r.Sweep1[i].TPRate,
			r.Sweep2[i].FPRate, r.Sweep2[i].TPRate,
		})
	}
	return writeCSVFile(dir, "fig9_sweep.csv",
		[]string{"threshold", "fp", "tp_attack1", "fp2", "tp_attack2"}, sweepRows)
}
