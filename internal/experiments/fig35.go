package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/ares-cps/ares/internal/core"
)

// Fig3Result reproduces Figure 3: the correlation-based dependency graph of
// the roll-control ESVL — the edge list with sign and strength.
type Fig3Result struct {
	Edges []core.CorrelationEdge
	TSVL  []string
	Kept  int
}

// Name implements Result.
func (*Fig3Result) Name() string { return "fig3" }

// RunFig3 computes the Figure 3 dependency graph.
func RunFig3(s *Suite) (*Fig3Result, error) {
	prof, err := s.Profile()
	if err != nil {
		return nil, err
	}
	roll, err := core.AnalyzeRoll(prof, s.Analysis)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Edges: roll.CorrelationEdges(0.3),
		TSVL:  roll.TSVL,
		Kept:  len(roll.Names),
	}, nil
}

// WriteText implements Result.
func (r *Fig3Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 3 — roll ESVL dependency graph (%d variables, %d edges with |r| ≥ 0.3)\n",
		r.Kept, len(r.Edges)); err != nil {
		return err
	}
	limit := len(r.Edges)
	if limit > 25 {
		limit = 25
	}
	for _, e := range r.Edges[:limit] {
		sign := "+"
		if e.R < 0 {
			sign = "-"
		}
		bar := strings.Repeat("=", int(absf(e.R)*10))
		if _, err := fmt.Fprintf(w, "  %-14s -- %-14s %s%.2f %s\n",
			e.A, e.B, sign, absf(e.R), bar); err != nil {
			return err
		}
	}
	if limit < len(r.Edges) {
		if _, err := fmt.Fprintf(w, "  … %d more edges\n", len(r.Edges)-limit); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "roll TSVL: %s\n", strings.Join(r.TSVL, ", "))
	return err
}

// WriteCSV implements Result.
func (r *Fig3Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Edges))
	for _, e := range r.Edges {
		rows = append(rows, []string{e.A, e.B, strconv.FormatFloat(e.R, 'g', 6, 64)})
	}
	return writeCSVStrings(dir, "fig3_edges.csv", []string{"a", "b", "r"}, rows)
}

// Fig5Result reproduces Figure 5: the correlation heat map of the 24
// roll-control state variables with hierarchical-clustering ordering.
type Fig5Result struct {
	Roll *core.RollAnalysis
	// Clusters is the subset partition at the analysis cut.
	Clusters [][]string
}

// Name implements Result.
func (*Fig5Result) Name() string { return "fig5" }

// RunFig5 computes the Figure 5 heat map.
func RunFig5(s *Suite) (*Fig5Result, error) {
	prof, err := s.Profile()
	if err != nil {
		return nil, err
	}
	roll, err := core.AnalyzeRoll(prof, s.Analysis)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Roll: roll, Clusters: roll.Report.Clusters}, nil
}

// WriteText implements Result.
func (r *Fig5Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 5 — roll ESVL correlation heat map (%d variables, dendrogram order)\n",
		len(r.Roll.Names)); err != nil {
		return err
	}
	if err := r.Roll.HeatmapText(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "clusters at cut:\n"); err != nil {
		return err
	}
	for i, c := range r.Clusters {
		if _, err := fmt.Fprintf(w, "  c%d: %s\n", i, strings.Join(c, ", ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "selected TSVL: %s\n", strings.Join(r.Roll.TSVL, ", "))
	return err
}

// WriteCSV implements Result.
func (r *Fig5Result) WriteCSV(dir string) error {
	header := append([]string{"variable"}, r.Roll.Names...)
	rows := make([][]string, 0, len(r.Roll.Names))
	for i, n := range r.Roll.Names {
		row := make([]string, 0, len(header))
		row = append(row, n)
		for j := range r.Roll.Names {
			row = append(row, strconv.FormatFloat(r.Roll.Corr[i][j], 'g', 6, 64))
		}
		rows = append(rows, row)
	}
	return writeCSVStrings(dir, "fig5_corr.csv", header, rows)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
