package experiments

import (
	"fmt"
	"io"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
)

// Fig7Result reproduces Figure 7: the ML output monitor observing a
// hovering vehicle attacked at t=12 s by a gradual manipulation of the PID
// scaler ratio, against the naive attack. Sub-figure (a) is the roll angle,
// (b) the control output distance against the 0.01 threshold.
type Fig7Result struct {
	Benign, ARES, Naive *attack.SessionResult
	Threshold           float64
	AttackStart         float64
}

// Name implements Result.
func (*Fig7Result) Name() string { return "fig7" }

// hoverMission returns the single-point hover the Figure 7 scenario uses
// (the paper hovers at 5 ft ≈ 1.5 m; a slightly higher hover keeps the
// tip-over guard out of the way without changing the detection behavior).
func hoverMission() *firmware.Mission {
	return firmware.NewMission([]firmware.Waypoint{
		{Pos: mathx.V3(0, 0, -3)},
	})
}

// RunFig7 executes the three hover flights against a hover-trained ML
// monitor.
func RunFig7(s *Suite) (*Fig7Result, error) {
	mission := hoverMission()
	_, ml, err := attack.CalibrateMonitors(mission, s.Seed+60) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Threshold: ml.Threshold, AttackStart: 12}

	if res.Benign, err = attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 35, Seed: s.Seed + 4, ML: ml, //areslint:ignore seedarith golden-pinned
	}); err != nil {
		return nil, err
	}
	// ARES: gradually drift the PID scaler ratio.
	if res.ARES, err = attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 35, Seed: s.Seed + 5, ML: ml, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.GradualAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "PIDR.SCALER",
			Delta:    0.003,
			Interval: 0.3,
			Cap:      0.3,
		},
		AttackStart: res.AttackStart,
	}); err != nil {
		return nil, err
	}
	// Naive: force the integrator to its clamp, snapping the roll and
	// making the output inconsistent with the controller inputs.
	if res.Naive, err = attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 35, Seed: s.Seed + 6, ML: ml, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.NaiveAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "PIDR.INTEG",
			Value:    0.25,
		},
		AttackStart: res.AttackStart,
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText implements Result.
func (r *Fig7Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 7 — ML output monitor vs ARES scaler attack (threshold %.3f, attack at t=%.0fs)\n",
		r.Threshold, r.AttackStart); err != nil {
		return err
	}
	rows := []struct {
		name string
		res  *attack.SessionResult
	}{
		{"normal", r.Benign}, {"ARES", r.ARES}, {"naive", r.Naive},
	}
	if _, err := fmt.Fprintf(w, "%-8s %12s %10s %12s\n",
		"run", "maxDistance", "detected", "maxRoll(deg)"); err != nil {
		return err
	}
	for _, row := range rows {
		maxRoll := 0.0
		for _, p := range row.res.Trace {
			if a := absf(p.RollDeg); a > maxRoll {
				maxRoll = a
			}
		}
		if _, err := fmt.Fprintf(w, "%-8s %12.4f %10v %12.1f\n",
			row.name, row.res.MaxML, row.res.DetectedML, maxRoll); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig7Result) WriteCSV(dir string) error {
	writeOne := func(name string, res *attack.SessionResult) error {
		rows := make([][]float64, 0, len(res.Trace))
		for _, p := range res.Trace {
			rows = append(rows, []float64{p.T, p.RollDeg, p.MLStat})
		}
		return writeCSVFile(dir, name, []string{"t", "roll_deg", "ml_distance"}, rows)
	}
	if err := writeOne("fig7_normal.csv", r.Benign); err != nil {
		return err
	}
	if err := writeOne("fig7_ares.csv", r.ARES); err != nil {
		return err
	}
	return writeOne("fig7_naive.csv", r.Naive)
}

// Fig8Result reproduces Figure 8: the SAVIOR-style EKF residual monitor
// observing the controller-output attack enabled by the oversized
// ATC_RAT_RLL_IMAX range. Sub-figure (a) is the PID P/I/D outputs, (b) the
// sensed vs EKF-estimated roll whose residual stays near zero.
type Fig8Result struct {
	Attack      *attack.SessionResult
	AttackStart float64
	// EKFAlarm reports whether the residual monitor ever fired.
	EKFAlarm bool
	// MaxResidualDeg is the peak |ATT.R − EKF1.Roll| in degrees.
	MaxResidualDeg float64
	// MaxIOutput is the peak integrator output, demonstrating the
	// oversized-range exploitation.
	MaxIOutput float64
}

// Name implements Result.
func (*Fig8Result) Name() string { return "fig8" }

// RunFig8 executes the two-stage exploit: a range-valid PARAM_SET raising
// the integrator clamp through its documented ±5000-scale range, then a
// gradual integrator pump whose output feeds the motors directly.
func RunFig8(s *Suite) (*Fig8Result, error) {
	mission := s.attackMission()
	strategy := &attack.Sequence{Steps: []attack.Strategy{
		&attack.SetParamOnce{Param: "ATC_RAT_RLL_IMAX", Value: 4000},
		&attack.GradualAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "PIDR.INTEG",
			Delta:    0.2,
			Interval: 0.3,
		},
	}}
	res := &Fig8Result{AttackStart: 30}
	session, err := attack.RunSession(attack.SessionConfig{
		Mission:     mission,
		Duration:    60,
		Seed:        s.Seed + 7, //areslint:ignore seedarith golden-pinned
		EKF:         defense.NewEKFResidual(),
		Strategy:    strategy,
		AttackStart: res.AttackStart,
	})
	if err != nil {
		return nil, err
	}
	res.Attack = session
	res.EKFAlarm = session.DetectedEKF
	for _, p := range session.Trace {
		if d := absf(p.RollDeg - p.EKFRollDeg); d > res.MaxResidualDeg {
			res.MaxResidualDeg = d
		}
		if a := absf(p.PIDOutI); a > res.MaxIOutput {
			res.MaxIOutput = a
		}
	}
	return res, nil
}

// WriteText implements Result.
func (r *Fig8Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 8 — EKF sensor-estimation monitor vs controller-output attack (attack at t=%.0fs)\n",
		r.AttackStart); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"integrator clamp raised to 4000 via in-range PARAM_SET (oversized ±5000 range)\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"peak |I output| = %.2f, peak sensed-vs-EKF roll residual = %.2f deg\n",
		r.MaxIOutput, r.MaxResidualDeg); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"EKF monitor alarmed: %v; vehicle crashed: %v (%s)\n\n",
		r.EKFAlarm, r.Attack.Crashed, r.Attack.CrashReason); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s %10s %10s %10s | %10s %10s\n",
		"t(s)", "P", "I", "D", "ATT.R(deg)", "EKF1.Roll"); err != nil {
		return err
	}
	for i := 0; i < len(r.Attack.Trace); i += 48 {
		p := r.Attack.Trace[i]
		if _, err := fmt.Fprintf(w, "%6.1f %10.3f %10.3f %10.3f | %10.1f %10.1f\n",
			p.T, p.PIDOutP, p.PIDOutI, p.PIDOutD, p.RollDeg, p.EKFRollDeg); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig8Result) WriteCSV(dir string) error {
	rows := make([][]float64, 0, len(r.Attack.Trace))
	for _, p := range r.Attack.Trace {
		rows = append(rows, []float64{
			p.T, p.PIDOutP, p.PIDOutI, p.PIDOutD,
			p.RollDeg, p.EKFRollDeg, p.EKFStat,
		})
	}
	return writeCSVFile(dir, "fig8_ekf.csv",
		[]string{"t", "pid_p", "pid_i", "pid_d", "att_roll_deg", "ekf_roll_deg", "cusum"},
		rows)
}
