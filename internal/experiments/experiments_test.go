package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// quickSuite is shared across tests; expensive artifacts are cached inside.
var quickSuite = NewSuite(42, true)

func renderAndExport(t *testing.T, r Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("%s WriteText: %v", r.Name(), err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", r.Name())
	}
	dir := filepath.Join(t.TempDir(), "csv")
	if err := r.WriteCSV(dir); err != nil {
		t.Fatalf("%s WriteCSV: %v", r.Name(), err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("%s exported no CSV files (%v)", r.Name(), err)
	}
	return buf.String()
}

func TestTable1(t *testing.T) {
	res, err := RunTable1(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalALVs != 342 || len(res.Entries) != 40 {
		t.Errorf("inventory: %d types, %d ALVs", len(res.Entries), res.TotalALVs)
	}
	if res.LiveMessages < 15 {
		t.Errorf("live flight produced only %d message types", res.LiveMessages)
	}
	out := renderAndExport(t, res)
	if !strings.Contains(out, "342") {
		t.Error("rendered table missing the 342 total")
	}
}

func TestTable2(t *testing.T) {
	res, err := RunTable2(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TSVLCount == 0 || row.Ratio >= 0.5 {
			t.Errorf("%s: TSVL %d ratio %.2f", row.Group.Name, row.TSVLCount, row.Ratio)
		}
	}
	renderAndExport(t, res)
}

func TestFig3AndFig5(t *testing.T) {
	f3, err := RunFig3(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Edges) < 5 {
		t.Errorf("only %d dependency edges", len(f3.Edges))
	}
	renderAndExport(t, f3)

	f5, err := RunFig5(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Roll.Names) < 10 {
		t.Errorf("heat map has %d variables", len(f5.Roll.Names))
	}
	if len(f5.Clusters) < 2 {
		t.Errorf("only %d clusters", len(f5.Clusters))
	}
	renderAndExport(t, f5)
}

// TestFig6Shape asserts the paper's headline result: ARES stays under the
// CI threshold while deviating the vehicle; the naive attack trips the
// detector immediately.
func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benign.DetectedCI {
		t.Error("benign run alarmed")
	}
	if res.ARES.DetectedCI {
		t.Errorf("ARES detected (max %.0f)", res.ARES.MaxCI)
	}
	if !res.Naive.DetectedCI {
		t.Errorf("naive not detected (max %.0f)", res.Naive.MaxCI)
	}
	if res.ARES.MaxPathDev <= res.Benign.MaxPathDev {
		t.Errorf("ARES deviation %.1f not above benign %.1f",
			res.ARES.MaxPathDev, res.Benign.MaxPathDev)
	}
	if res.Naive.MaxCI < res.Threshold*2 {
		t.Errorf("naive max %.0f not clearly above threshold", res.Naive.MaxCI)
	}
	renderAndExport(t, res)
}

// TestFig7Shape asserts the ML-monitor evasion: the gradual scaler attack
// stays inside the benign error bound while the naive attack exceeds it.
func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benign.DetectedML {
		t.Errorf("benign hover alarmed (max %.4f)", res.Benign.MaxML)
	}
	if res.ARES.DetectedML {
		t.Errorf("ARES scaler attack detected (max %.4f)", res.ARES.MaxML)
	}
	if !res.Naive.DetectedML {
		t.Errorf("naive attack evaded ML monitor (max %.4f)", res.Naive.MaxML)
	}
	renderAndExport(t, res)
}

// TestFig8Shape asserts the SAVIOR blind spot: the oversized-range
// controller-output attack destabilizes the vehicle while the sensed-vs-
// estimated residual stays quiet.
func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if res.EKFAlarm {
		t.Error("EKF residual monitor alarmed on a controller-level attack")
	}
	if res.MaxIOutput < 0.3 {
		t.Errorf("integrator output peaked at %.2f; the raised clamp had no effect",
			res.MaxIOutput)
	}
	if res.MaxResidualDeg > 10 {
		t.Errorf("sensed-vs-EKF residual reached %.1f deg; monitor should stay blind",
			res.MaxResidualDeg)
	}
	// The attack visibly disturbs the vehicle (big roll or crash).
	maxRoll := 0.0
	for _, p := range res.Attack.Trace {
		if a := absf(p.RollDeg); a > maxRoll {
			maxRoll = a
		}
	}
	if !res.Attack.Crashed && maxRoll < 10 {
		t.Errorf("attack had no physical effect (max roll %.1f deg)", maxRoll)
	}
	renderAndExport(t, res)
}

// TestFig9Shape asserts the threshold-sweep trade-off: attack 2 is
// indistinguishable from benign while attack 1 separates, and lowering the
// threshold buys TP only at the cost of FP.
func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BenignMax) != res.Trials {
		t.Fatalf("trials = %d", len(res.BenignMax))
	}
	// Attack 1 separates from benign on average.
	if meanOf(res.Attack1Max) <= meanOf(res.BenignMax) {
		t.Errorf("attack1 mean %.0f not above benign %.0f",
			meanOf(res.Attack1Max), meanOf(res.BenignMax))
	}
	// Attack 2 stays close to benign (within 50%).
	if meanOf(res.Attack2Max) > meanOf(res.BenignMax)*1.5 {
		t.Errorf("attack2 mean %.0f clearly separates from benign %.0f",
			meanOf(res.Attack2Max), meanOf(res.BenignMax))
	}
	// FP grows monotonically as the threshold decreases.
	for i := 1; i < len(res.Sweep1); i++ {
		if res.Sweep1[i].FPRate < res.Sweep1[i-1].FPRate {
			t.Errorf("FP not monotone: %v", res.Sweep1)
		}
	}
	renderAndExport(t, res)
}

func TestFig10Runs(t *testing.T) {
	res, err := RunFig10(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(res.Scenarios))
	}
	byName := map[string]Fig10Scenario{}
	for _, sc := range res.Scenarios {
		byName[sc.Name] = sc
		if len(sc.DevTrace) == 0 {
			t.Errorf("%s has no trace", sc.Name)
		}
	}
	// Even the quick-budget agent must beat the benign baseline's
	// deviation (the benign autopilot tracks the path tightly).
	if byName["RL-trained"].MaxDev <= byName["benign"].MaxDev {
		t.Errorf("trained deviation %.2f not above benign %.2f",
			byName["RL-trained"].MaxDev, byName["benign"].MaxDev)
	}
	renderAndExport(t, res)
}

func TestFig11Runs(t *testing.T) {
	res, err := RunFig11(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(res.Scenarios))
	}
	byName := map[string]Fig11Scenario{}
	for _, sc := range res.Scenarios {
		byName[sc.Name] = sc
	}
	// The benign flight never comes close to the forbidden zone; any
	// manipulation strategy approaches it.
	if byName["benign"].MinDist < 5 {
		t.Errorf("benign min distance %.1f — world misconfigured", byName["benign"].MinDist)
	}
	if byName["constant-push"].MinDist >= byName["benign"].MinDist {
		t.Error("constant push did not approach the zone")
	}
	renderAndExport(t, res)
}

func TestAblationRuns(t *testing.T) {
	res, err := RunAblation(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	// Clustering never increases the model-selection work (usually it
	// cuts it sharply; with a cut that yields one response cluster the
	// two coincide).
	if res.ClusteredModels > res.FlatModels {
		t.Errorf("clustering increased models fitted: %d vs %d",
			res.ClusteredModels, res.FlatModels)
	}
	// Exhaustive search is optimal: its best AIC is never worse than
	// stepwise's (they usually coincide; on tiny clusters exhaustive can
	// even fit fewer candidate models than the add/remove walk).
	if res.ExhaustiveAIC > res.StepwiseAIC+1e-6 {
		t.Errorf("exhaustive best AIC %.2f worse than stepwise %.2f",
			res.ExhaustiveAIC, res.StepwiseAIC)
	}
	// Bounded stays stealthy; the equal-magnitude jump is detected.
	if res.BoundedDetected {
		t.Error("bounded manipulation detected")
	}
	renderAndExport(t, res)
}

func TestCountermeasureShape(t *testing.T) {
	res, err := RunCountermeasure(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benign.DetectedVar {
		t.Error("variable monitor false-alarmed on a benign flight")
	}
	// The ramp evades the system-level CI but is caught at the variable
	// level — the paper's proposed mitigation working as claimed.
	if res.Ramp.DetectedCI {
		t.Errorf("ramp detected by CI (max %.0f) — scenario drifted", res.Ramp.MaxCI)
	}
	if !res.Ramp.DetectedVar {
		t.Errorf("variable monitor missed the ramp (max excess %.2f)", res.Ramp.MaxVar)
	}
	// The alarm may fire on the manipulated cell itself or on the
	// integrator that absorbs its effect first — either is a watched
	// stabilizer cell.
	validTrips := map[string]bool{}
	for _, v := range res.Watched {
		validTrips[v] = true
	}
	if !validTrips[res.Ramp.AlarmedVariable] {
		t.Errorf("tripped variable %q not in watched set %v",
			res.Ramp.AlarmedVariable, res.Watched)
	}
	renderAndExport(t, res)
}

func TestCrossPlatformShape(t *testing.T) {
	res, err := RunCrossPlatform(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVehicle) != 2 {
		t.Fatalf("vehicles = %d", len(res.PerVehicle))
	}
	for _, row := range res.PerVehicle {
		if !row.BenignOK {
			t.Errorf("%s: benign flight not clean", row.Vehicle)
		}
		if !row.RampEvaded {
			t.Errorf("%s: ramp detected", row.Vehicle)
		}
		if !row.NaiveDetected {
			t.Errorf("%s: naive attack evaded", row.Vehicle)
		}
	}
	renderAndExport(t, res)
}

func TestFuzzBaselineShape(t *testing.T) {
	res, err := RunFuzzBaseline(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials < 10 {
		t.Fatalf("trials = %d", res.Trials)
	}
	// The time-dependent sequence achieves what single-point forcing
	// essentially cannot: effectiveness and stealth at once.
	if !res.ARESEffective || !res.ARESStealthy {
		t.Errorf("ARES ramp: effective=%v stealthy=%v dev=%.1f",
			res.ARESEffective, res.ARESStealthy, res.ARESDev)
	}
	// Fuzzing may stumble onto effective-and-stealthy single points, but
	// at a low rate; a majority would mean the baseline trivializes the
	// problem and the comparison is miscalibrated.
	if res.FuzzBoth*2 > res.Trials {
		t.Errorf("fuzzer found effective+stealthy in %d/%d trials",
			res.FuzzBoth, res.Trials)
	}
	renderAndExport(t, res)
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	if _, err := Lookup("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
