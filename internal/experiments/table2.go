package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/ares-cps/ares/internal/core"
)

// Table2Result reproduces Table II: the per-controller state variable
// counts at every stage of the data-driven search.
type Table2Result struct {
	Rows []*core.GroupAnalysis
	// Samples is the profiled sample count backing the analysis.
	Samples int
}

// Name implements Result.
func (*Table2Result) Name() string { return "table2" }

// RunTable2 runs the full Algorithm 1 pipeline for every controller group.
func RunTable2(s *Suite) (*Table2Result, error) {
	prof, err := s.Profile()
	if err != nil {
		return nil, err
	}
	rows, err := core.AnalyzeAllGroups(prof, s.Analysis)
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows, Samples: prof.Samples()}, nil
}

// WriteText implements Result.
func (r *Table2Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Table II — data-driven state variable search (%d samples/variable)\n", r.Samples); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %6s %10s %6s %6s %10s\n",
		"Controller", "KSVL", "Added SVs", "ESVL", "TSVL", "Ratio"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-10s %6d %10d %6d %6d %9.1f%%\n",
			row.Group.Name, row.KSVLCount, row.AddedCount,
			row.ESVLCount, row.TSVLCount, row.Ratio*100); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s TSVL: %s\n",
			row.Group.Name, strings.Join(row.TSVL, ", ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Table2Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Group.Name,
			strconv.Itoa(row.KSVLCount),
			strconv.Itoa(row.AddedCount),
			strconv.Itoa(row.ESVLCount),
			strconv.Itoa(row.TSVLCount),
			strconv.FormatFloat(row.Ratio, 'g', 4, 64),
			strings.Join(row.TSVL, ";"),
		})
	}
	return writeCSVStrings(dir, "table2_tsvl.csv",
		[]string{"controller", "ksvl", "added", "esvl", "tsvl", "ratio", "tsvl_vars"}, rows)
}
