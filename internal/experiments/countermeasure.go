package experiments

import (
	"fmt"
	"io"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
)

// CountermeasureResult evaluates the paper's proposed mitigation (Section
// VI): a fine-grained *variable-level* monitor watching the state variables
// ARES itself identified, compared head-to-head with the system-level
// control-invariants monitor against the ramp attack that evades it.
type CountermeasureResult struct {
	// Watched lists the monitored variables.
	Watched []string
	// Benign/Ramp/Naive summarize the three sessions (CI + VarMon active).
	Benign, Ramp, Naive *attack.SessionResult
}

// Name implements Result.
func (*CountermeasureResult) Name() string { return "countermeasure" }

// countermeasureVars are the stabilizer-region cells the variable monitor
// watches — the command handoff and the PID intermediates from the roll
// TSVL family.
func countermeasureVars() []string {
	return []string{"CMD.Roll", "CMD.Pitch", "PIDR.INTEG", "PIDR.SCALER"}
}

// RunCountermeasure trains the variable monitor on a 400 Hz benign trace of
// the watched variables and replays the Figure 6 scenario set with both
// monitors active.
func RunCountermeasure(s *Suite) (*CountermeasureResult, error) {
	mission := s.attackMission()
	watched := countermeasureVars()

	// Collect a 400 Hz benign trace of exactly the watched variables.
	fw, err := attack.NewFirmware(s.Seed + 70) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	if err := fw.Takeoff(10); err != nil {
		return nil, err
	}
	fw.RunFor(10)
	wps := make([]firmware.Waypoint, 0, mission.Len())
	for _, p := range mission.Path() {
		wps = append(wps, firmware.Waypoint{Pos: p})
	}
	fw.LoadMission(firmware.NewMission(wps))
	if err := fw.StartMission(); err != nil {
		return nil, err
	}
	series := make([][]float64, len(watched))
	maxTicks := int(60 / fw.DT())
	for i := 0; i < maxTicks; i++ {
		fw.Step()
		for j, name := range watched {
			ref, ok := fw.Vars().Lookup(name)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown watched variable %q", name)
			}
			series[j] = append(series[j], ref.Get())
		}
	}
	if crashed, reason := fw.Quad().Crashed(); crashed {
		return nil, fmt.Errorf("experiments: countermeasure training flight crashed: %s", reason)
	}

	varMon := defense.NewVariableMonitor()
	if err := varMon.Train(watched, series); err != nil {
		return nil, err
	}
	ci, _, err := s.Monitors()
	if err != nil {
		return nil, err
	}

	res := &CountermeasureResult{Watched: watched}
	run := func(strategy attack.Strategy, seed int64) (*attack.SessionResult, error) {
		return attack.RunSession(attack.SessionConfig{
			Mission: mission, Duration: 60, Seed: seed,
			CI: ci, VarMon: varMon,
			Strategy: strategy, AttackStart: 10,
		})
	}
	if res.Benign, err = run(nil, s.Seed+71); err != nil { //areslint:ignore seedarith golden-pinned
		return nil, err
	}
	if res.Ramp, err = run(&attack.RampAttack{
		Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
		Rate: 0.0436, Cap: 0.4,
	}, s.Seed+72); err != nil { //areslint:ignore seedarith golden-pinned
		return nil, err
	}
	if res.Naive, err = run(&attack.NaiveAttack{
		Region: firmware.RegionStabilizer, Variable: "PIDR.INTEG",
		Value: 0.25,
	}, s.Seed+73); err != nil { //areslint:ignore seedarith golden-pinned
		return nil, err
	}
	return res, nil
}

// WriteText implements Result.
func (r *CountermeasureResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Countermeasure — variable-level monitor (Section VI) vs control invariants\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "watched variables: %v\n", r.Watched); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %10s %12s %14s %14s\n",
		"run", "CI alarm", "VarMon alarm", "tripped var", "maxDev(m)"); err != nil {
		return err
	}
	rows := []struct {
		name string
		res  *attack.SessionResult
	}{
		{"benign", r.Benign}, {"ramp", r.Ramp}, {"naive", r.Naive},
	}
	for _, row := range rows {
		tripped := "-"
		if row.res.AlarmedVariable != "" {
			tripped = row.res.AlarmedVariable
		}
		if _, err := fmt.Fprintf(w, "%-8s %10v %12v %14s %14.1f\n",
			row.name, row.res.DetectedCI, row.res.DetectedVar,
			tripped, row.res.MaxPathDev); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w,
		"the variable-level monitor closes the gap: the ramp that evades the\n"+
			"system-level invariant is caught at the manipulated cell itself.")
	return err
}

// WriteCSV implements Result.
func (r *CountermeasureResult) WriteCSV(dir string) error {
	rows := [][]string{
		{"benign", fmt.Sprint(r.Benign.DetectedCI), fmt.Sprint(r.Benign.DetectedVar), r.Benign.AlarmedVariable},
		{"ramp", fmt.Sprint(r.Ramp.DetectedCI), fmt.Sprint(r.Ramp.DetectedVar), r.Ramp.AlarmedVariable},
		{"naive", fmt.Sprint(r.Naive.DetectedCI), fmt.Sprint(r.Naive.DetectedVar), r.Naive.AlarmedVariable},
	}
	return writeCSVStrings(dir, "countermeasure.csv",
		[]string{"run", "ci_alarm", "varmon_alarm", "tripped_var"}, rows)
}
