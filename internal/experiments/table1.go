package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/sensors"
)

// Table1Result reproduces Table I: the dataflash logger's message catalogue
// as the known state variable list, cross-checked against a live flight log.
type Table1Result struct {
	// Entries lists (message name, ALV count) in catalogue order.
	Entries []Table1Entry
	// TotalALVs is the catalogue total (342 in the paper).
	TotalALVs int
	// LiveMessages is the number of message types a real simulated flight
	// actually produced, verifying the logger end to end.
	LiveMessages int
	// LiveRecords is the record count of the verification flight.
	LiveRecords int
}

// Table1Entry is one Table I cell.
type Table1Entry struct {
	Name string
	ALVs int
}

// Name implements Result.
func (*Table1Result) Name() string { return "table1" }

// RunTable1 builds the Table I inventory and verifies it against a live
// 20-second logged flight.
func RunTable1(s *Suite) (*Table1Result, error) {
	res := &Table1Result{TotalALVs: dataflash.TotalALVs()}
	for _, def := range dataflash.Catalogue() {
		res.Entries = append(res.Entries, Table1Entry{Name: def.Name, ALVs: def.NumFields()})
	}

	// Live verification: fly for 20 s with the dataflash writer attached
	// and parse the log back.
	var buf bytes.Buffer
	w := dataflash.NewWriter(&buf)
	fw, err := newLoggedFirmware(s.Seed, w)
	if err != nil {
		return nil, err
	}
	if err := fw.Takeoff(10); err != nil {
		return nil, err
	}
	fw.RunFor(20)
	if err := w.Close(); err != nil {
		return nil, err
	}
	log, err := dataflash.Read(&buf)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, rec := range log.Records {
		seen[rec.Name] = true
	}
	res.LiveMessages = len(seen)
	res.LiveRecords = len(log.Records)
	return res, nil
}

// WriteText implements Result.
func (r *Table1Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Table I — KSVL from the dataflash logger (%d message types, %d ALVs)\n",
		len(r.Entries), r.TotalALVs); err != nil {
		return err
	}
	// Six columns, like the paper's layout.
	const cols = 6
	for i := 0; i < len(r.Entries); i += cols {
		for j := i; j < i+cols && j < len(r.Entries); j++ {
			e := r.Entries[j]
			if _, err := fmt.Fprintf(w, "%-5s %3d   ", e.Name, e.ALVs); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"live check: %d message types, %d records in a 20 s logged flight\n",
		r.LiveMessages, r.LiveRecords)
	return err
}

// WriteCSV implements Result.
func (r *Table1Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		rows = append(rows, []string{e.Name, strconv.Itoa(e.ALVs)})
	}
	return writeCSVStrings(dir, "table1_ksvl.csv", []string{"message", "alvs"}, rows)
}

// newLoggedFirmware builds a firmware with a dataflash writer attached.
func newLoggedFirmware(seed int64, w *dataflash.Writer) (*firmware.Firmware, error) {
	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = seed
	return firmware.New(firmware.Config{Sensors: sensorCfg, LogWriter: w})
}
