package experiments

import "fmt"

// Runner executes one named experiment against a suite.
type Runner func(*Suite) (Result, error)

// Registry maps experiment ids to runners, in the paper's presentation
// order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	wrap := func(f interface{}) Runner {
		switch fn := f.(type) {
		case func(*Suite) (*Table1Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Table2Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig3Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig5Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig6Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig7Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig8Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig9Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig10Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*Fig11Result, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*AblationResult, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*CountermeasureResult, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*CrossPlatformResult, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		case func(*Suite) (*FuzzBaselineResult, error):
			return func(s *Suite) (Result, error) { return fn(s) }
		default:
			panic(fmt.Sprintf("experiments: unhandled runner type %T", f))
		}
	}
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", wrap(RunTable1)},
		{"table2", wrap(RunTable2)},
		{"fig3", wrap(RunFig3)},
		{"fig5", wrap(RunFig5)},
		{"fig6", wrap(RunFig6)},
		{"fig7", wrap(RunFig7)},
		{"fig8", wrap(RunFig8)},
		{"fig9", wrap(RunFig9)},
		{"fig10", wrap(RunFig10)},
		{"fig11", wrap(RunFig11)},
		{"ablation", wrap(RunAblation)},
		{"countermeasure", wrap(RunCountermeasure)},
		{"crossplatform", wrap(RunCrossPlatform)},
		{"fuzzbaseline", wrap(RunFuzzBaseline)},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
