package experiments

import "fmt"

// Runner executes one named experiment against a suite.
type Runner func(*Suite) (Result, error)

// Entry is one registry row: an experiment id and its runner.
type Entry struct {
	ID  string
	Run Runner
}

// wrap lifts a concrete experiment function onto the Runner type. The
// explicit nil check matters: returning a nil *Fig3Result through the
// Result interface directly would produce a non-nil interface holding a
// nil pointer.
func wrap[T Result](f func(*Suite) (T, error)) Runner {
	return func(s *Suite) (Result, error) {
		r, err := f(s)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// Registry maps experiment ids to runners, in the paper's presentation
// order.
func Registry() []Entry {
	return []Entry{
		{"table1", wrap(RunTable1)},
		{"table2", wrap(RunTable2)},
		{"fig3", wrap(RunFig3)},
		{"fig5", wrap(RunFig5)},
		{"fig6", wrap(RunFig6)},
		{"fig7", wrap(RunFig7)},
		{"fig8", wrap(RunFig8)},
		{"fig9", wrap(RunFig9)},
		{"fig10", wrap(RunFig10)},
		{"fig11", wrap(RunFig11)},
		{"ablation", wrap(RunAblation)},
		{"countermeasure", wrap(RunCountermeasure)},
		{"crossplatform", wrap(RunCrossPlatform)},
		{"fuzzbaseline", wrap(RunFuzzBaseline)},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
