package experiments

import (
	"errors"
	"testing"
)

func TestRegistryIDsUniqueAndRunnersNonNil(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Registry() {
		if e.ID == "" {
			t.Error("registry entry with empty id")
		}
		if seen[e.ID] {
			t.Errorf("duplicate registry id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Errorf("registry entry %q has nil runner", e.ID)
		}
	}
}

// TestWrapErrorYieldsNilResult pins the typed-nil hazard wrap guards
// against: a failing runner must return a Result interface that is
// actually nil, not a non-nil interface wrapping a nil pointer.
func TestWrapErrorYieldsNilResult(t *testing.T) {
	sentinel := errors.New("boom")
	r := wrap(func(*Suite) (*Fig3Result, error) { return nil, sentinel })
	res, err := r(nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if res != nil {
		t.Fatalf("Result = %#v, want untyped nil", res)
	}
}
