package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/firmware"
)

// FuzzBaselineResult substantiates the paper's Related Work claim that ARES
// "identifies new types of longer-term vulnerabilities as compared to
// fuzzing works, which focus on single-point modifications": a
// RVFuzzer/PGFuzz-style baseline forces one random value into one random
// stabilizer-region variable per trial, while ARES uses a time-dependent
// manipulation sequence. The comparison counts findings that are both
// *effective* (multi-meter deviation or crash) and *stealthy* (no CI alarm).
type FuzzBaselineResult struct {
	// Trials is the single-point fuzzing budget.
	Trials int
	// FuzzEffective counts trials with ≥ the deviation bar or a crash.
	FuzzEffective int
	// FuzzStealthy counts trials that never alarmed.
	FuzzStealthy int
	// FuzzBoth counts trials that were effective AND stealthy.
	FuzzBoth int
	// ARESEffective/ARESStealthy report the time-dependent ramp attack.
	ARESEffective, ARESStealthy bool
	ARESDev                     float64
	// DeviationBar is the effectiveness threshold in meters.
	DeviationBar float64
}

// Name implements Result.
func (*FuzzBaselineResult) Name() string { return "fuzzbaseline" }

// fuzzTargets is the single-point fuzzer's search space: the writable
// stabilizer-region cells with per-variable plausible magnitudes.
var fuzzTargets = []struct {
	variable string
	scale    float64
}{
	{"PIDR.INTEG", 0.5},
	{"PIDR.SCALER", 2.0},
	{"PIDR.KP", 0.5},
	{"PIDR.KI", 0.5},
	{"CMD.Roll", 0.6},
	{"CMD.Pitch", 0.6},
	{"PIDP.INTEG", 0.5},
	{"ANGR.P", 8.0},
}

// RunFuzzBaseline executes the comparison.
func RunFuzzBaseline(s *Suite) (*FuzzBaselineResult, error) {
	ci, _, err := s.Monitors()
	if err != nil {
		return nil, err
	}
	mission := s.attackMission()
	res := &FuzzBaselineResult{DeviationBar: 5}
	res.Trials = 4 * s.trials() // 40 full / 12 quick

	rng := rand.New(rand.NewSource(s.Seed + 4000)) //areslint:ignore seedarith golden-pinned
	for i := 0; i < res.Trials; i++ {
		target := fuzzTargets[rng.Intn(len(fuzzTargets))]
		value := (rng.Float64()*2 - 1) * target.scale
		sess, err := attack.RunSession(attack.SessionConfig{
			Mission: mission, Duration: 45, Seed: s.Seed + 4100 + int64(i), //areslint:ignore seedarith golden-pinned
			CI: ci,
			Strategy: &attack.NaiveAttack{
				Region:   firmware.RegionStabilizer,
				Variable: target.variable,
				Value:    value,
			},
			AttackStart: 10,
		})
		if err != nil {
			return nil, err
		}
		effective := sess.MaxPathDev >= res.DeviationBar || sess.Crashed
		stealthy := !sess.DetectedCI
		if effective {
			res.FuzzEffective++
		}
		if stealthy {
			res.FuzzStealthy++
		}
		if effective && stealthy {
			res.FuzzBoth++
		}
	}

	// The ARES time-dependent sequence on the same budget class.
	ares, err := attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 45, Seed: s.Seed + 4999, CI: ci, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.RampAttack{
			Region: firmware.RegionStabilizer, Variable: "CMD.Roll",
			Rate: 0.0436, Cap: 0.4,
		},
		AttackStart: 10,
	})
	if err != nil {
		return nil, err
	}
	res.ARESEffective = ares.MaxPathDev >= res.DeviationBar || ares.Crashed
	res.ARESStealthy = !ares.DetectedCI
	res.ARESDev = ares.MaxPathDev
	return res, nil
}

// WriteText implements Result.
func (r *FuzzBaselineResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Fuzzing baseline — single-point forcing vs ARES time-dependent sequence\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"effectiveness bar: ≥%.0f m deviation or crash; stealth: no CI alarm\n\n",
		r.DeviationBar); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"single-point fuzzer (%d trials): effective %d, stealthy %d, BOTH %d\n",
		r.Trials, r.FuzzEffective, r.FuzzStealthy, r.FuzzBoth); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"ARES ramp sequence:               effective %v (%.1f m), stealthy %v, BOTH %v\n",
		r.ARESEffective, r.ARESDev, r.ARESStealthy,
		r.ARESEffective && r.ARESStealthy)
	return err
}

// WriteCSV implements Result.
func (r *FuzzBaselineResult) WriteCSV(dir string) error {
	rows := [][]string{
		{"fuzz_trials", fmt.Sprint(r.Trials)},
		{"fuzz_effective", fmt.Sprint(r.FuzzEffective)},
		{"fuzz_stealthy", fmt.Sprint(r.FuzzStealthy)},
		{"fuzz_both", fmt.Sprint(r.FuzzBoth)},
		{"ares_effective", fmt.Sprint(r.ARESEffective)},
		{"ares_stealthy", fmt.Sprint(r.ARESStealthy)},
		{"ares_dev_m", fmt.Sprintf("%.2f", r.ARESDev)},
	}
	return writeCSVStrings(dir, "fuzzbaseline.csv", []string{"metric", "value"}, rows)
}
