package experiments

import (
	"fmt"
	"io"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/firmware"
)

// Fig6Result reproduces Figure 6: the control-invariants detector observing
// a benign mission, the ARES gradual manipulation, and the naive 30°-roll
// attack. Sub-figure (a) is the roll-angle series; (b) the cumulative error
// against the 400 000 threshold.
type Fig6Result struct {
	Benign, ARES, Naive *attack.SessionResult
	Threshold           float64
	AttackStart         float64
}

// Name implements Result.
func (*Fig6Result) Name() string { return "fig6" }

// RunFig6 executes the three instrumented flights.
func RunFig6(s *Suite) (*Fig6Result, error) {
	ci, _, err := s.Monitors()
	if err != nil {
		return nil, err
	}
	mission := s.attackMission()
	res := &Fig6Result{Threshold: ci.Threshold, AttackStart: 10}

	if res.Benign, err = attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 60, Seed: s.Seed + 1, CI: ci, //areslint:ignore seedarith golden-pinned
	}); err != nil {
		return nil, err
	}
	// ARES: ramp the roll command ~2.5°/s through the navigator→
	// stabilizer handoff. The vehicle keeps tracking its (attacked)
	// attitude targets, so the control invariant stays satisfied while
	// the vehicle drifts off the path.
	if res.ARES, err = attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 60, Seed: s.Seed + 2, CI: ci, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.RampAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "CMD.Roll",
			Rate:     0.0436, // 2.5°/s
			Cap:      0.4,
		},
		AttackStart: res.AttackStart,
	}); err != nil {
		return nil, err
	}
	// Naive: force the roll-rate integrator to its clamp — the vehicle
	// rolls hard against its own targets.
	if res.Naive, err = attack.RunSession(attack.SessionConfig{
		Mission: mission, Duration: 60, Seed: s.Seed + 3, CI: ci, //areslint:ignore seedarith golden-pinned
		Strategy: &attack.NaiveAttack{
			Region:   firmware.RegionStabilizer,
			Variable: "PIDR.INTEG",
			Value:    0.25,
		},
		AttackStart: res.AttackStart,
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText implements Result.
func (r *Fig6Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 6 — control invariants vs ARES and naive attack (threshold %.0f, attack at t=%.0fs)\n",
		r.Threshold, r.AttackStart); err != nil {
		return err
	}
	rows := []struct {
		name string
		res  *attack.SessionResult
	}{
		{"normal", r.Benign}, {"ARES", r.ARES}, {"naive", r.Naive},
	}
	if _, err := fmt.Fprintf(w, "%-8s %12s %10s %10s %10s %8s\n",
		"run", "maxCumErr", "detected", "alarm@t", "maxDev(m)", "crashed"); err != nil {
		return err
	}
	for _, row := range rows {
		alarm := "-"
		if row.res.FirstAlarmT >= 0 {
			alarm = fmt.Sprintf("%.1fs", row.res.FirstAlarmT)
		}
		if _, err := fmt.Fprintf(w, "%-8s %12.0f %10v %10s %10.1f %8v\n",
			row.name, row.res.MaxCI, row.res.DetectedCI, alarm,
			row.res.MaxPathDev, row.res.Crashed); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "\n(a) roll angle (deg) and (b) cumulative error, sampled every 4 s:"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s | %8s %8s %8s | %10s %10s %10s\n",
		"t(s)", "normal", "ARES", "naive", "normal", "ARES", "naive"); err != nil {
		return err
	}
	for i := 0; i < minLen(r.Benign.Trace, r.ARES.Trace, r.Naive.Trace); i += 64 {
		b, a, n := r.Benign.Trace[i], r.ARES.Trace[i], r.Naive.Trace[i]
		if _, err := fmt.Fprintf(w, "%6.1f | %8.1f %8.1f %8.1f | %10.0f %10.0f %10.0f\n",
			b.T, b.RollDeg, a.RollDeg, n.RollDeg, b.CIStat, a.CIStat, n.CIStat); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig6Result) WriteCSV(dir string) error {
	writeOne := func(name string, res *attack.SessionResult) error {
		rows := make([][]float64, 0, len(res.Trace))
		for _, p := range res.Trace {
			rows = append(rows, []float64{p.T, p.RollDeg, p.CIStat, p.PathDev})
		}
		return writeCSVFile(dir, name, []string{"t", "roll_deg", "ci_cum_err", "path_dev"}, rows)
	}
	if err := writeOne("fig6_normal.csv", r.Benign); err != nil {
		return err
	}
	if err := writeOne("fig6_ares.csv", r.ARES); err != nil {
		return err
	}
	return writeOne("fig6_naive.csv", r.Naive)
}

func minLen(traces ...[]attack.TracePoint) int {
	m := len(traces[0])
	for _, t := range traces[1:] {
		if len(t) < m {
			m = len(t)
		}
	}
	return m
}
