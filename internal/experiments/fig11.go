package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/rl"
	"github.com/ares-cps/ares/internal/sim"
)

// Fig11Scenario is one controlled-failure scenario: a policy evaluated
// against the forbidden-zone world.
type Fig11Scenario struct {
	Name string
	// DistTrace is the distance to the forbidden zone per 0.3 s step.
	DistTrace []float64
	// MinDist is the closest approach; Reached reports contact.
	MinDist float64
	Reached bool
	Crashed bool
	// HitFirst/HitLast are the goal-contact rates over the first and
	// last fifth of training episodes (returns include ±∞ terminal
	// rewards, so rates describe the curve better than means).
	HitFirst, HitLast float64
}

// Fig11Result reproduces Figure 11: the RL-based controlled failure
// steering the vehicle into a forbidden zone beside its loiter point.
type Fig11Result struct {
	Scenarios []Fig11Scenario
	Episodes  int
	Obstacle  sim.Obstacle
}

// Name implements Result.
func (*Fig11Result) Name() string { return "fig11" }

// fig11Obstacle returns the forbidden zone: a wall 8 m east of the
// mission's final loiter point.
func fig11Obstacle() sim.Obstacle {
	return sim.Obstacle{
		Name: "forbidden-zone",
		Box: mathx.AABB{
			Min: mathx.V3(35, 8, -20),
			Max: mathx.V3(45, 12, 0),
		},
	}
}

// hitRate counts the fraction of episodes that ended at the goal (+∞
// return).
func hitRate(returns []float64) float64 {
	if len(returns) == 0 {
		return 0
	}
	hits := 0
	for _, r := range returns {
		if math.IsInf(r, 1) {
			hits++
		}
	}
	return float64(hits) / float64(len(returns))
}

func fig11Env(seed int64) (*core.CrashEnv, error) {
	return core.NewCrashEnv(core.EnvConfig{
		Variable:  "CMD.Roll",
		PerTick:   true,
		MaxAction: 0.6,
		Mission:   firmware.LineMission(40, 10),
		Seed:      seed,
	}, fig11Obstacle())
}

// evalCrash rolls out a policy and records the distance profile.
func evalCrash(env *core.CrashEnv, policy func([]float64) float64, steps int) Fig11Scenario {
	sc := Fig11Scenario{MinDist: math.Inf(1)}
	obs := env.Reset()
	for i := 0; i < steps; i++ {
		action := policy(obs)
		next, reward, done := env.Step(action)
		obs = next
		d := env.GoalDistance()
		sc.DistTrace = append(sc.DistTrace, d)
		if d < sc.MinDist {
			sc.MinDist = d
		}
		if done {
			if math.IsInf(reward, 1) {
				sc.Reached = true
				sc.MinDist = 0
			}
			break
		}
	}
	sc.Crashed, _ = env.Firmware().Quad().Crashed()
	return sc
}

// RunFig11 trains the controlled-failure agent and evaluates it against
// baselines.
func RunFig11(s *Suite) (*Fig11Result, error) {
	episodes := s.episodes()
	steps := 120
	if s.Quick {
		steps = 40
	}
	res := &Fig11Result{Episodes: episodes, Obstacle: fig11Obstacle()}

	env, err := fig11Env(s.Seed + 800) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	lo, hi := env.ActionBounds()
	agent := rl.NewReinforce(env.ObservationSize(), lo, hi, s.Seed+1) //areslint:ignore seedarith golden-pinned
	train := agent.Train(env, episodes, steps)
	fifth := episodes / 5
	if fifth < 1 {
		fifth = 1
	}
	trained := evalCrash(env, agent.Policy.Mean, steps)
	trained.Name = "RL-trained"
	trained.HitFirst = hitRate(train.Returns[:fifth])
	trained.HitLast = hitRate(train.Returns[len(train.Returns)-fifth:])
	res.Scenarios = append(res.Scenarios, trained)

	// Constant maximum push (open-loop).
	envC, err := fig11Env(s.Seed + 900) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	constant := evalCrash(envC, func([]float64) float64 { return hi }, steps)
	constant.Name = "constant-push"
	res.Scenarios = append(res.Scenarios, constant)

	// Random policy.
	envR, err := fig11Env(s.Seed + 1000) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 11)) //areslint:ignore seedarith golden-pinned
	random := evalCrash(envR, func([]float64) float64 {
		return lo + rng.Float64()*(hi-lo)
	}, steps)
	random.Name = "random"
	res.Scenarios = append(res.Scenarios, random)

	// Benign (no manipulation).
	envB, err := fig11Env(s.Seed + 1100) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	benign := evalCrash(envB, func([]float64) float64 { return 0 }, steps)
	benign.Name = "benign"
	res.Scenarios = append(res.Scenarios, benign)
	return res, nil
}

// WriteText implements Result.
func (r *Fig11Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 11 — RL-based controlled failure (CMD.Roll offsets, %d episodes)\n",
		r.Episodes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"forbidden zone: x∈[%.0f,%.0f] y∈[%.0f,%.0f]\n",
		r.Obstacle.Box.Min.X, r.Obstacle.Box.Max.X,
		r.Obstacle.Box.Min.Y, r.Obstacle.Box.Max.Y); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s %10s %8s %8s %10s %10s\n",
		"scenario", "minDist(m)", "reached", "crashed", "hit@0", "hit@end"); err != nil {
		return err
	}
	for _, sc := range r.Scenarios {
		if _, err := fmt.Fprintf(w, "%-14s %10.2f %8v %8v %9.0f%% %9.0f%%\n",
			sc.Name, sc.MinDist, sc.Reached, sc.Crashed,
			sc.HitFirst*100, sc.HitLast*100); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig11Result) WriteCSV(dir string) error {
	for _, sc := range r.Scenarios {
		rows := make([][]float64, 0, len(sc.DistTrace))
		for i, d := range sc.DistTrace {
			rows = append(rows, []float64{float64(i) * 0.3, d})
		}
		name := fmt.Sprintf("fig11_%s.csv", sc.Name)
		if err := writeCSVFile(dir, name, []string{"t", "distance"}, rows); err != nil {
			return err
		}
	}
	return nil
}
