// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables I–II, Figures 3 and 5–11) plus the ablation
// studies DESIGN.md calls out. Each experiment returns a structured result
// that renders as a text table and exports as CSV, so `cmd/experiments`
// and the repository benchmarks share one implementation.
package experiments

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
)

// Suite shares the expensive setup artifacts (the benign profile and the
// calibrated monitors) across experiments. Getters build lazily and cache.
type Suite struct {
	// Seed drives every run in the suite.
	Seed int64
	// Quick reduces trial counts and training budgets for smoke tests;
	// full runs reproduce the paper-scale settings.
	Quick bool
	// Analysis tunes Algorithm 1 for every experiment that runs it. The
	// zero value uses the defaults (full-machine parallelism); callers
	// running several suites at once should set Parallelism to their
	// per-suite share so the pools don't multiply. Results are identical
	// at any setting.
	Analysis core.AnalysisOptions

	mu      sync.Mutex
	profile *core.Profile
	ci      *defense.ControlInvariants
	ml      *defense.MLMonitor
}

// NewSuite creates an experiment suite.
func NewSuite(seed int64, quick bool) *Suite {
	return &Suite{Seed: seed, Quick: quick}
}

// missions returns the benign profiling mission count.
func (s *Suite) missions() int {
	if s.Quick {
		return 2
	}
	return 5
}

// trials returns the per-condition trial count for Figure 9.
func (s *Suite) trials() int {
	if s.Quick {
		return 3
	}
	return 10
}

// episodes returns the RL training budget.
func (s *Suite) episodes() int {
	if s.Quick {
		return 12
	}
	return 120
}

// evalMission returns the benign profiling mission (dynamically rich).
func (s *Suite) evalMission() *firmware.Mission {
	return firmware.SquareMission(25, 10)
}

// attackMission returns the path-following mission used for the defense
// evasion experiments — "a couple of straight lines", per the paper.
func (s *Suite) attackMission() *firmware.Mission {
	return firmware.LineMission(120, 10)
}

// Profile returns the shared benign operation profile.
func (s *Suite) Profile() (*core.Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.profile != nil {
		return s.profile, nil
	}
	prof, err := core.CollectProfile(core.ProfileConfig{
		Mission:  s.evalMission(),
		Missions: s.missions(),
		Seed:     s.Seed,
	})
	if err != nil {
		return nil, err
	}
	s.profile = prof
	return prof, nil
}

// Monitors returns the shared calibrated CI and ML monitors.
func (s *Suite) Monitors() (*defense.ControlInvariants, *defense.MLMonitor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ci != nil {
		return s.ci, s.ml, nil
	}
	ci, ml, err := attack.CalibrateMonitors(s.attackMission(), s.Seed+50) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, nil, err
	}
	s.ci, s.ml = ci, ml
	return ci, ml, nil
}

// Result is the common interface of experiment outputs.
type Result interface {
	// Name returns the experiment identifier (e.g. "table1", "fig6").
	Name() string
	// WriteText renders the result for a terminal.
	WriteText(w io.Writer) error
	// WriteCSV exports the underlying data into dir (one or more files
	// named after the experiment).
	WriteCSV(dir string) error
}

// writeCSVFile writes one CSV file with a header row. The CSV is built
// in memory and finalized with campaign.WriteFileAtomic, so a failed
// export can never leave a torn file behind and close errors cannot be
// silently dropped.
func writeCSVFile(dir, name string, header []string, rows [][]float64) error {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiments: row width %d != header %d", len(row), len(header))
		}
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return finalizeCSV(dir, name, buf.Bytes())
}

// writeCSVStrings writes a CSV with free-form string cells, atomically
// like writeCSVFile.
func writeCSVStrings(dir, name string, header []string, rows [][]string) error {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return finalizeCSV(dir, name, buf.Bytes())
}

// finalizeCSV lands rendered CSV bytes in dir via write-temp + rename.
func finalizeCSV(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return campaign.WriteFileAtomic(filepath.Join(dir, name), data, 0o644)
}
