package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/rl"
)

// Fig10Scenario is one uncontrolled-failure exploit scenario: a policy
// (trained or baseline) evaluated on the path-following mission.
type Fig10Scenario struct {
	Name string
	// DevTrace is the deviation distance at each 0.3 s action step.
	DevTrace []float64
	// Accumulated is the running sum of deviation (the Figure 10c view).
	Accumulated []float64
	// FinalDev and MaxDev summarize the rollout.
	FinalDev, MaxDev float64
	// Detected reports whether the in-loop detector fired during the
	// evaluation rollout (only meaningful for the detector scenario).
	Detected bool
	// LearnFirst and LearnLast bracket the training curve (mean return
	// over the first and last fifth of episodes); zero for baselines.
	LearnFirst, LearnLast float64
	Crashed               bool
}

// Fig10Result reproduces Figure 10: the RL-based uncontrolled failure,
// deviating the vehicle from the A→B leg by manipulating PIDR.INTEG.
type Fig10Result struct {
	Scenarios []Fig10Scenario
	Episodes  int
}

// Name implements Result.
func (*Fig10Result) Name() string { return "fig10" }

// fig10Env builds the Case Study I environment; a non-nil detector wires
// the Section V-C reward shaping (−∞ on alarm).
func fig10Env(seed int64, detector *defense.ControlInvariants) (*core.DeviationEnv, error) {
	return core.NewDeviationEnv(core.EnvConfig{
		Variable: "PIDR.INTEG",
		Mission:  firmware.LineMission(60, 10),
		Seed:     seed,
		Detector: detector,
	})
}

// evalDeviation rolls out a policy and records the deviation profile.
func evalDeviation(env *core.DeviationEnv, policy func([]float64) float64, steps int) Fig10Scenario {
	var sc Fig10Scenario
	obs := env.Reset()
	acc := 0.0
	for i := 0; i < steps; i++ {
		action := policy(obs)
		next, _, done := env.Step(action)
		obs = next
		d := env.PathDistance()
		acc += d
		sc.DevTrace = append(sc.DevTrace, d)
		sc.Accumulated = append(sc.Accumulated, acc)
		if d > sc.MaxDev {
			sc.MaxDev = d
		}
		if done {
			break
		}
	}
	sc.FinalDev = env.PathDistance()
	sc.Crashed, _ = env.Firmware().Quad().Crashed()
	return sc
}

// RunFig10 trains the uncontrolled-failure agent and evaluates it against
// baselines.
func RunFig10(s *Suite) (*Fig10Result, error) {
	episodes := s.episodes()
	steps := 100
	if s.Quick {
		steps = 30
	}
	res := &Fig10Result{Episodes: episodes}

	// Trained agent.
	env, err := fig10Env(s.Seed+500, nil) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	lo, hi := env.ActionBounds()
	agent := rl.NewReinforce(env.ObservationSize(), lo, hi, s.Seed)
	train := agent.Train(env, episodes, steps)
	fifth := episodes / 5
	if fifth < 1 {
		fifth = 1
	}
	trained := evalDeviation(env, agent.Policy.Mean, steps)
	trained.Name = "RL-trained"
	trained.LearnFirst = meanOf(train.Returns[:fifth])
	trained.LearnLast = train.MeanLastN(fifth)
	res.Scenarios = append(res.Scenarios, trained)

	// Trained with the CI detector in the reward loop (Section V-C): the
	// agent explores "areas of the state space which do not trigger an
	// alarm, but still lead the RAV toward the desired attacker goal".
	ci, _, err := s.Monitors()
	if err != nil {
		return nil, err
	}
	// The detector-constrained agent uses the command-offset lever: the
	// integrator pump cannot deviate the vehicle without tripping the
	// invariant (Fig. 6), so stealthy deviation requires the cell whose
	// manipulation the monitor implicitly trusts (see EXPERIMENTS.md).
	envD, err := core.NewDeviationEnv(core.EnvConfig{
		Variable:  "CMD.Roll",
		PerTick:   true,
		MaxAction: 0.6,
		Mission:   firmware.LineMission(60, 10),
		Seed:      s.Seed + 550, //areslint:ignore seedarith golden-pinned
		Detector:  ci,
	})
	if err != nil {
		return nil, err
	}
	loD, hiD := envD.ActionBounds()
	agentD := rl.NewReinforce(envD.ObservationSize(), loD, hiD, s.Seed+1) //areslint:ignore seedarith golden-pinned
	trainD := agentD.Train(envD, episodes, steps)
	withDet := evalDeviation(envD, agentD.Policy.Mean, steps)
	withDet.Name = "RL+detector"
	withDet.LearnFirst = clippedMean(trainD.Returns[:fifth])
	withDet.LearnLast = clippedMean(trainD.Returns[len(trainD.Returns)-fifth:])
	withDet.Detected = envD.Alarmed()
	res.Scenarios = append(res.Scenarios, withDet)

	// Random-policy baseline.
	envR, err := fig10Env(s.Seed+600, nil) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 9)) //areslint:ignore seedarith golden-pinned
	random := evalDeviation(envR, func([]float64) float64 {
		return lo + rng.Float64()*(hi-lo)
	}, steps)
	random.Name = "random"
	res.Scenarios = append(res.Scenarios, random)

	// Benign baseline (no manipulation).
	envB, err := fig10Env(s.Seed+700, nil) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return nil, err
	}
	benign := evalDeviation(envB, func([]float64) float64 { return 0 }, steps)
	benign.Name = "benign"
	res.Scenarios = append(res.Scenarios, benign)
	return res, nil
}

// WriteText implements Result.
func (r *Fig10Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 10 — RL-based uncontrolled failure (PIDR.INTEG, %d training episodes)\n",
		r.Episodes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %10s %10s %12s %10s %10s %8s %9s\n",
		"scenario", "maxDev(m)", "finalDev", "accumDev", "learn@0", "learn@end", "crashed", "detected"); err != nil {
		return err
	}
	for _, sc := range r.Scenarios {
		acc := 0.0
		if n := len(sc.Accumulated); n > 0 {
			acc = sc.Accumulated[n-1]
		}
		if _, err := fmt.Fprintf(w, "%-12s %10.2f %10.2f %12.1f %10.2f %10.2f %8v %9v\n",
			sc.Name, sc.MaxDev, sc.FinalDev, acc,
			sc.LearnFirst, sc.LearnLast, sc.Crashed, sc.Detected); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Result.
func (r *Fig10Result) WriteCSV(dir string) error {
	for _, sc := range r.Scenarios {
		rows := make([][]float64, 0, len(sc.DevTrace))
		for i := range sc.DevTrace {
			rows = append(rows, []float64{
				float64(i) * 0.3, sc.DevTrace[i], sc.Accumulated[i],
			})
		}
		name := fmt.Sprintf("fig10_%s.csv", sc.Name)
		if err := writeCSVFile(dir, name,
			[]string{"t", "deviation", "accumulated"}, rows); err != nil {
			return err
		}
	}
	return nil
}

// clippedMean averages returns with ±∞ terminal rewards saturated at ±100
// (the learner's own surrogate), keeping learning-curve summaries finite.
func clippedMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		switch {
		case math.IsInf(x, 1):
			x = 100
		case math.IsInf(x, -1):
			x = -100
		}
		s += x
	}
	return s / float64(len(xs))
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
