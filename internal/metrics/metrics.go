// Package metrics provides the repository's allocation-light process
// metrics: counters, gauges and fixed-bucket histograms that cost one
// atomic op per update, collected in named registries and rendered in the
// Prometheus text exposition format.
//
// The assessment daemon (internal/serve) mounts a registry at GET
// /metrics; batch CLIs dump the same counters to stderr at exit
// (expvar-style), so a campaign observed over HTTP and a campaign run from
// the shell report through one instrument set. Registration is idempotent
// — asking a registry for an already-registered name returns the existing
// instrument — so package-level metric variables in different packages can
// share one registry without init-order coupling.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 level (queue depth, in-flight workers).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets (plus the
// implicit +Inf bucket) and tracks their sum. Observe is lock-free: one
// atomic add for the bucket, one for the count, and a CAS loop for the
// float64 sum.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds, +Inf excluded
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// DefBuckets are latency buckets in seconds spanning a 5 ms HTTP round
// trip to a multi-minute campaign.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered instrument.
type metric struct {
	name, help, kind string
	c                *Counter
	g                *Gauge
	h                *Histogram
}

// Registry is a named set of instruments. The zero value is not usable;
// call NewRegistry, or share Default().
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Package-level instruments
// (e.g. the campaign job counters) register here, so a daemon that mounts
// Default().Handler() exposes them alongside its own.
func Default() *Registry { return defaultRegistry }

// lookup returns the metric registered under name, creating it with mk on
// first use. A name registered with a different kind panics: silent reuse
// would corrupt both series.
func (r *Registry) lookup(name, help, kind string, mk func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	mk(m)
	r.byName[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, "counter", func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, "gauge", func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given bucket upper bounds (nil uses DefBuckets; the
// +Inf bucket is implicit). Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, "histogram", func(m *metric) {
		if len(buckets) == 0 {
			buckets = DefBuckets()
		}
		b := append([]float64(nil), buckets...)
		sort.Float64s(b)
		m.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}).h
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, sorted by name so output is stable across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case "histogram":
			err = m.h.write(w, m.name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) write(w io.Writer, name string) error {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(h.Sum()), name, h.Count())
	return err
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry in the Prometheus text format, for mounting
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
