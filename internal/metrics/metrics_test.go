package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	h := r.Histogram("h_seconds", "a histogram", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() != 55.5 {
		t.Errorf("histogram sum = %g, want 55.5", h.Sum())
	}
}

func TestLookupIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x_total", "") != r.Counter("x_total", "") {
		t.Error("second Counter call returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Inc()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Sorted by name, counters before latency histogram.
	for _, want := range []string{
		"# HELP a_total first\n# TYPE a_total counter\na_total 1\n",
		"# TYPE b_total counter\nb_total 2\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_sum 2.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("lvl", "")
	h := r.Histogram("obs", "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("histogram = (%d, %g), want (8000, 8000)", h.Count(), h.Sum())
	}
}
