package cpv

import "sort"

// builtin is the shipped catalog: the repo's attack/defense matrix (the
// paper's case studies) expressed as declarative records, including the
// two extended axis values (stealthy injection, recovery defense). IDs are
// stable identifiers — compiled job keys, stores and golden files pin
// them — so entries may be appended but never renumbered.
var builtin = []Record{
	{
		ID:                 "ARES-CPV-001",
		Name:               "Rate-integrator pumping (uncontrolled failure)",
		Description:        "An attacker in the stabilizer region injects offsets into the roll-rate PID integrator; the stateful cell holds the injected charge, feeding a standing actuator bias that pushes the vehicle off its mission path (Case Study I).",
		RequiredComponents: []string{"stabilizer", "actuators"},
		EntryComponent:     "stabilizer",
		ExitComponent:      "actuators",
		InitialConditions:  map[string]string{"flight_mode": "AUTO", "mission": "straight line"},
		AttackVector:       "rl",
		Goal:               "deviation",
		Variables:          []string{"PIDR.INTEG"},
		Missions:           []string{"line:60"},
		Defenses:           []string{"none", "ci"},
		References: []string{
			"ARES §VI Case Study I",
			"Choi et al., Detecting Attacks Against Robotic Vehicles (CCS'18)",
		},
	},
	{
		ID:                 "ARES-CPV-002",
		Name:               "Attitude-command hijack into forbidden zone (controlled failure)",
		Description:        "The per-cycle-rewritten roll command handoff cell is biased every tick, steering the vehicle into a forbidden zone beside the final mission leg while the firmware believes it is tracking its own targets (Case Study II).",
		RequiredComponents: []string{"stabilizer", "navigator"},
		EntryComponent:     "stabilizer",
		ExitComponent:      "actuators",
		InitialConditions:  map[string]string{"flight_mode": "AUTO", "forbidden_zone": "10 m beside final leg"},
		AttackVector:       "rl",
		Goal:               "crash",
		Variables:          []string{"CMD.Roll"},
		Missions:           []string{"line:60"},
		Defenses:           []string{"none", "ci"},
		MaxAction:          0.6,
		References: []string{
			"ARES §VI Case Study II",
		},
	},
	{
		ID:                 "ARES-CPV-003",
		Name:               "Stealthy roll-command offset under the CI threshold",
		Description:        "A shadow replica of the control-invariants monitor schedules the injected roll-command offset so the detection statistic never crosses a fraction of the alarm threshold: strictly less physical effect per unit time than the unthrottled ramp, but undetected for the whole flight.",
		RequiredComponents: []string{"stabilizer"},
		EntryComponent:     "stabilizer",
		ExitComponent:      "actuators",
		InitialConditions:  map[string]string{"flight_mode": "AUTO", "attacker_knowledge": "white-box monitor replica"},
		AttackVector:       "stealthy",
		Goal:               "deviation",
		Variables:          []string{"CMD.Roll"},
		Missions:           []string{"line:60"},
		Defenses:           []string{"none", "ci"},
		References: []string{
			"Dash et al., Stealthy Attacks against Robotic Vehicles (Requiem for a Drone)",
		},
	},
	{
		ID:                 "ARES-CPV-004",
		Name:               "Integrator pumping against the recovery guard",
		Description:        "Re-assesses the Case Study I integrator attack with the SpecGuard-style recovery defense deployed: on the first control-invariants alarm the guard clamps the attitude commands and bleeds the integrators for the rest of the flight, bounding the physical effect instead of only flagging it.",
		RequiredComponents: []string{"stabilizer", "actuators"},
		EntryComponent:     "stabilizer",
		ExitComponent:      "actuators",
		InitialConditions:  map[string]string{"flight_mode": "AUTO", "defense": "recovery engaged on first alarm"},
		AttackVector:       "rl",
		Goal:               "deviation",
		Variables:          []string{"PIDR.INTEG"},
		Missions:           []string{"line:60"},
		Defenses:           []string{"recovery"},
		References: []string{
			"Dash et al., SpecGuard: Specification Aware Recovery for Robotic Autonomous Vehicles (CCS'24)",
		},
	},
	{
		ID:                 "ARES-CPV-005",
		Name:               "Stealthy offset against the recovery guard",
		Description:        "Pits the two extended axis values against each other: the magnitude-scheduled stealthy injection stays under the detection threshold, so the recovery guard — which engages only on an alarm — should never actuate; the cell measures whether stealth buys enough physical effect to matter.",
		RequiredComponents: []string{"stabilizer"},
		EntryComponent:     "stabilizer",
		ExitComponent:      "actuators",
		InitialConditions:  map[string]string{"flight_mode": "AUTO", "attacker_knowledge": "white-box monitor replica"},
		AttackVector:       "stealthy",
		Goal:               "deviation",
		Variables:          []string{"CMD.Roll"},
		Missions:           []string{"line:60"},
		Defenses:           []string{"recovery"},
		References: []string{
			"Dash et al., Requiem for a Drone",
			"Dash et al., SpecGuard (CCS'24)",
		},
	},
	{
		ID:                 "ARES-CPV-006",
		Name:               "Pitch-command bias on the square mission",
		Description:        "Demonstrates axis transfer: the same per-tick command-bias class as ARES-CPV-002 applied to the pitch channel on a square mission, assessed as an uncontrolled-failure deviation.",
		RequiredComponents: []string{"stabilizer"},
		EntryComponent:     "stabilizer",
		ExitComponent:      "actuators",
		InitialConditions:  map[string]string{"flight_mode": "AUTO", "mission": "square patrol"},
		AttackVector:       "rl",
		Goal:               "deviation",
		Variables:          []string{"CMD.Pitch"},
		Missions:           []string{"square:25"},
		Defenses:           []string{"none"},
		References: []string{
			"ARES §VI",
		},
	},
}

// Catalog returns the built-in records sorted by ID (a fresh copy —
// callers may mutate their slice).
func Catalog() []Record {
	out := append([]Record(nil), builtin...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted built-in record IDs.
func IDs() []string {
	recs := Catalog()
	ids := make([]string, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	return ids
}

// Get looks up one built-in record by ID.
func Get(id string) (Record, bool) {
	for _, r := range builtin {
		if r.ID == id {
			return r, true
		}
	}
	return Record{}, false
}
