// Package cpv is the declarative cyber-physical vulnerability catalog.
//
// The paper's position is that vulnerability assessment of aerial vehicles
// should be driven by a reusable catalog of cyber-physical weaknesses, not
// by ad-hoc test scripts. Following the SACI CPV-database shape, each
// catalog entry (Record) declares a vulnerability as data: the components
// the attack needs, where it enters and where its effect leaves the
// system, the initial conditions, the attack vector and goal, the impacted
// state variables, and the success thresholds — plus literature
// references.
//
// Records are not executable by themselves. Compile lowers any subset of
// them into a normalized campaign.Spec (one sweep block per record), which
// the existing campaign runner, CLI and assessment daemon execute
// unchanged. Compilation is deterministic — records are sorted by ID and
// every job seed derives from the job key — and validating: a record
// naming an unknown state variable, MPU region or mission kind fails at
// compile time, not mid-flight.
package cpv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strings"

	"github.com/ares-cps/ares/internal/campaign"
)

// Record is one declarative catalog entry: a cyber-physical vulnerability
// described as data, in the SACI CPV-database shape.
type Record struct {
	// ID is the stable catalog identifier (e.g. "ARES-CPV-001"). It
	// prefixes every compiled job key, so it must not contain '/'.
	ID string `json:"id"`
	// Name is the short human-readable title.
	Name string `json:"name"`
	// Description explains the weakness and its physical consequence.
	Description string `json:"description,omitempty"`

	// RequiredComponents lists the MPU regions the attack needs present
	// (validated against the firmware's memory map).
	RequiredComponents []string `json:"required_components,omitempty"`
	// EntryComponent is the compromised region the attacker's code runs
	// in; it must have write access to every impacted variable.
	EntryComponent string `json:"entry_component"`
	// ExitComponent is the region where the corrupted state leaves the
	// software and becomes physical effect (typically "actuators").
	ExitComponent string `json:"exit_component,omitempty"`
	// InitialConditions documents the vehicle state the assessment
	// assumes (informational; keys sort deterministically in JSON).
	InitialConditions map[string]string `json:"initial_conditions,omitempty"`

	// AttackVector selects the manipulation: campaign.AttackRL trains the
	// RL exploit, campaign.AttackStealthy runs the shadow-monitor
	// magnitude-scheduled injection.
	AttackVector string `json:"attack_vector"`
	// Goal is the failure class: campaign.GoalDeviation (uncontrolled)
	// or campaign.GoalCrash (controlled, forbidden-zone contact).
	Goal string `json:"goal"`
	// Variables are the impacted state variables the attack manipulates;
	// each becomes one axis value of the compiled sweep.
	Variables []string `json:"variables"`
	// Missions are the flights to assess against, in the
	// campaign.ParseMission "kind:size[:alt]" syntax. Empty uses the
	// campaign default (line:60:10).
	Missions []string `json:"missions,omitempty"`
	// Defenses are the deployed countermeasures to sweep (none/ci/
	// recovery). Empty uses the campaign default (none).
	Defenses []string `json:"defenses,omitempty"`

	// Trials, MaxAction and SuccessDeviation override the compiled
	// sweep's thresholds (zero inherits the compile options / campaign
	// defaults).
	Trials           int     `json:"trials,omitempty"`
	MaxAction        float64 `json:"max_action,omitempty"`
	SuccessDeviation float64 `json:"success_deviation,omitempty"`

	// References cite the literature the entry derives from.
	References []string `json:"references,omitempty"`
}

// idPattern keeps IDs job-key-safe: no '/', no whitespace, no empties.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Validate checks the record statically: shape, enum values and mission
// syntax. It does not touch the firmware; Check adds that.
func (r Record) Validate() error {
	if !idPattern.MatchString(r.ID) {
		return fmt.Errorf("cpv: record id %q must match %s", r.ID, idPattern)
	}
	if strings.TrimSpace(r.Name) == "" {
		return fmt.Errorf("cpv: %s: record needs a name", r.ID)
	}
	if r.AttackVector != campaign.AttackRL && r.AttackVector != campaign.AttackStealthy {
		return fmt.Errorf("cpv: %s: unknown attack vector %q", r.ID, r.AttackVector)
	}
	if r.Goal != campaign.GoalDeviation && r.Goal != campaign.GoalCrash {
		return fmt.Errorf("cpv: %s: unknown goal %q", r.ID, r.Goal)
	}
	if r.AttackVector == campaign.AttackStealthy && r.Goal == campaign.GoalCrash {
		return fmt.Errorf("cpv: %s: stealthy attack supports only the deviation goal", r.ID)
	}
	if len(r.Variables) == 0 {
		return fmt.Errorf("cpv: %s: record needs at least one impacted variable", r.ID)
	}
	for _, v := range r.Variables {
		if strings.TrimSpace(v) == "" {
			return fmt.Errorf("cpv: %s: empty variable name", r.ID)
		}
	}
	if strings.TrimSpace(r.EntryComponent) == "" {
		return fmt.Errorf("cpv: %s: record needs an entry component", r.ID)
	}
	for _, m := range r.Missions {
		if _, err := campaign.ParseMission(m); err != nil {
			return fmt.Errorf("cpv: %s: %w", r.ID, err)
		}
	}
	for _, d := range r.Defenses {
		switch d {
		case campaign.DefenseNone, campaign.DefenseCI, campaign.DefenseRecovery:
		default:
			return fmt.Errorf("cpv: %s: unknown defense %q", r.ID, d)
		}
	}
	if r.Trials < 0 {
		return fmt.Errorf("cpv: %s: negative trials", r.ID)
	}
	if math.IsNaN(r.MaxAction) || math.IsInf(r.MaxAction, 0) || r.MaxAction < 0 {
		return fmt.Errorf("cpv: %s: max_action must be finite and non-negative", r.ID)
	}
	if math.IsNaN(r.SuccessDeviation) || math.IsInf(r.SuccessDeviation, 0) || r.SuccessDeviation < 0 {
		return fmt.Errorf("cpv: %s: success_deviation must be finite and non-negative", r.ID)
	}
	return nil
}

// sweep lowers the record into one campaign axis block. The record must
// already be validated.
func (r Record) sweep() (campaign.Sweep, error) {
	sw := campaign.Sweep{
		CPV:              r.ID,
		Variables:        append([]string(nil), r.Variables...),
		Goals:            []string{r.Goal},
		Attacks:          []string{r.AttackVector},
		Defenses:         append([]string(nil), r.Defenses...),
		Trials:           r.Trials,
		MaxAction:        r.MaxAction,
		SuccessDeviation: r.SuccessDeviation,
	}
	for _, m := range r.Missions {
		ms, err := campaign.ParseMission(m)
		if err != nil {
			return campaign.Sweep{}, fmt.Errorf("cpv: %s: %w", r.ID, err)
		}
		sw.Missions = append(sw.Missions, ms)
	}
	return sw, nil
}

// maxRecordsBytes caps catalog documents the parser accepts, mirroring the
// daemon's request-body cap: a catalog is authored data, not bulk.
const maxRecordsBytes = 1 << 20

// ParseRecords decodes a JSON array of records with strict field checking
// (unknown fields are authoring mistakes, not extensions) and validates
// each statically. Hostile or malformed input produces an error, never a
// panic.
func ParseRecords(data []byte) ([]Record, error) {
	if len(data) > maxRecordsBytes {
		return nil, fmt.Errorf("cpv: catalog document exceeds %d bytes", maxRecordsBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var recs []Record
	if err := dec.Decode(&recs); err != nil {
		return nil, fmt.Errorf("cpv: parse: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("cpv: parse: trailing data after catalog array")
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return recs, nil
}
