package cpv

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/campaign"
)

// probe is the lazily-built firmware inventory compile-time validation
// checks records against: the registered state-variable names, the MPU
// regions, and which (region, variable) write accesses the memory map
// grants. Building it boots one standard evaluation vehicle; the result is
// cached for the process lifetime (the variable registry is static).
var probe struct {
	once     sync.Once
	err      error
	vars     map[string]bool
	regions  map[string]bool
	writable map[string]bool // "region/variable" pairs with write access
}

func probeInventory() error {
	probe.once.Do(func() {
		fw, err := attack.NewFirmware(0)
		if err != nil {
			probe.err = fmt.Errorf("cpv: probe firmware: %w", err)
			return
		}
		probe.vars = make(map[string]bool)
		for _, name := range fw.Vars().Names() {
			probe.vars[name] = true
		}
		probe.regions = make(map[string]bool)
		probe.writable = make(map[string]bool)
		for _, region := range fw.Memory().Regions() {
			probe.regions[region] = true
			for name := range probe.vars {
				if _, err := fw.Memory().Access(region, name, true); err == nil {
					probe.writable[region+"/"+name] = true
				}
			}
		}
	})
	return probe.err
}

// Check validates a record statically and against the firmware inventory:
// every impacted variable must be registered, every named component must
// be a real MPU region, and the entry component must have write access to
// every impacted variable — an attack that could not actually reach its
// target cells is a catalog authoring error, surfaced here rather than as
// a mid-campaign job failure.
func Check(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if err := probeInventory(); err != nil {
		return err
	}
	components := append([]string{r.EntryComponent}, r.RequiredComponents...)
	if r.ExitComponent != "" {
		components = append(components, r.ExitComponent)
	}
	for _, c := range components {
		if !probe.regions[c] {
			return fmt.Errorf("cpv: %s: unknown component %q", r.ID, c)
		}
	}
	for _, v := range r.Variables {
		if !probe.vars[v] {
			return fmt.Errorf("cpv: %s: unknown state variable %q", r.ID, v)
		}
		if !probe.writable[r.EntryComponent+"/"+v] {
			return fmt.Errorf("cpv: %s: entry component %q cannot write %q", r.ID, r.EntryComponent, v)
		}
	}
	return nil
}

// Options configures Compile: the campaign identity plus the shared
// training budgets the records themselves do not carry.
type Options struct {
	// Name labels the compiled campaign (display only, excluded from
	// spec identity).
	Name string
	// Seed is the campaign base seed every job seed derives from.
	Seed int64
	// Trials is the default per-cell trial count for records that do not
	// set their own (0 means the campaign default of 1).
	Trials int
	// Episodes, MaxSteps and Learner bound the RL training of every
	// compiled job (zero/empty use the core defaults).
	Episodes int
	MaxSteps int
	Learner  string
}

// Compile lowers a set of catalog records into one normalized
// campaign.Spec: records sort by ID, each becomes one sweep block tagged
// with its CPV ID, and the result is validated end to end. Compilation is
// canonical — the same record set (in any order) yields a byte-identical
// normalized spec, so the daemon's content-addressed identity (SpecHash)
// dedupes catalog assessments exactly like hand-written ones.
func Compile(opts Options, records ...Record) (campaign.Spec, error) {
	if len(records) == 0 {
		return campaign.Spec{}, fmt.Errorf("cpv: compile needs at least one record")
	}
	sorted := append([]Record(nil), records...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seen := make(map[string]bool, len(sorted))
	sweeps := make([]campaign.Sweep, 0, len(sorted))
	for _, r := range sorted {
		if err := Check(r); err != nil {
			return campaign.Spec{}, err
		}
		if seen[r.ID] {
			return campaign.Spec{}, fmt.Errorf("cpv: duplicate record id %q", r.ID)
		}
		seen[r.ID] = true
		sw, err := r.sweep()
		if err != nil {
			return campaign.Spec{}, err
		}
		sweeps = append(sweeps, sw)
	}
	spec := campaign.Spec{
		Name:     opts.Name,
		Seed:     opts.Seed,
		Trials:   opts.Trials,
		Episodes: opts.Episodes,
		MaxSteps: opts.MaxSteps,
		Learner:  opts.Learner,
		Sweeps:   sweeps,
	}.Normalized()
	if err := spec.Validate(); err != nil {
		return campaign.Spec{}, fmt.Errorf("cpv: compiled spec invalid: %w", err)
	}
	return spec, nil
}

// CompileIDs resolves catalog IDs and compiles them — the convenience the
// CLI and daemon surfaces share. Unknown IDs are an error listing the
// offender.
func CompileIDs(opts Options, ids ...string) (campaign.Spec, error) {
	recs := make([]Record, 0, len(ids))
	for _, id := range ids {
		r, ok := Get(id)
		if !ok {
			return campaign.Spec{}, fmt.Errorf("cpv: unknown catalog record %q", id)
		}
		recs = append(recs, r)
	}
	return Compile(opts, recs...)
}
