package cpv

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCPVRecord hardens the catalog intake: arbitrary bytes must either
// parse into validated records or fail with an error — never panic — and
// whatever parses must compile canonically: the same record set, in any
// order, yields byte-identical normalized Spec JSON (the daemon hashes
// that form for content-addressed identity).
func FuzzCPVRecord(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"deviation","variables":["PIDR.INTEG"]}]`))
	f.Add([]byte(`[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"stealthy","goal":"deviation","variables":["CMD.Roll"],"missions":["line:NaN"]}]`))
	f.Add([]byte(`[{"id":"a/b","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"crash","variables":["CMD.Roll"],"max_action":0.6}]`))
	f.Add([]byte(`{"id":"X-1"}`))
	f.Add([]byte(`[{"id":"X-1","unknown_field":true}]`))
	if js, err := json.Marshal(Catalog()); err == nil {
		f.Add(js)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseRecords(data)
		if err != nil {
			return
		}
		for _, r := range recs {
			// ParseRecords promised static validity.
			if err := r.Validate(); err != nil {
				t.Fatalf("parsed record fails validation: %v", err)
			}
		}
		if len(recs) == 0 {
			return
		}
		spec, err := Compile(Options{Seed: 1}, recs...)
		if err != nil {
			return // semantic rejection (unknown variable, duplicate id, …) is fine
		}
		a, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("compiled spec does not marshal: %v", err)
		}
		// Canonical: reversed input order compiles to identical bytes.
		rev := make([]Record, len(recs))
		for i, r := range recs {
			rev[len(recs)-1-i] = r
		}
		spec2, err := Compile(Options{Seed: 1}, rev...)
		if err != nil {
			t.Fatalf("reordered set failed to compile: %v", err)
		}
		b, err := json.Marshal(spec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("compile is order-sensitive:\n%s\nvs\n%s", a, b)
		}
		// Idempotent: re-normalizing the compiled spec is a no-op.
		c, err := json.Marshal(spec.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Fatalf("compiled spec not normalization-stable:\n%s\nvs\n%s", a, c)
		}
	})
}
