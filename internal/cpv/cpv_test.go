package cpv

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ares-cps/ares/internal/campaign"
)

var update = flag.Bool("update", false, "rewrite golden files with current compiler output")

func TestBuiltinCatalogChecks(t *testing.T) {
	recs := Catalog()
	if len(recs) == 0 {
		t.Fatal("empty built-in catalog")
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if err := Check(r); err != nil {
			t.Errorf("built-in %s fails check: %v", r.ID, err)
		}
		if seen[r.ID] {
			t.Errorf("duplicate built-in id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestCompileCanonical(t *testing.T) {
	recs := Catalog()
	opts := Options{Seed: 7, Episodes: 2, MaxSteps: 10}
	a, err := Compile(opts, recs...)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed input order must compile to the identical spec.
	rev := make([]Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	b, err := Compile(opts, rev...)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("compile is order-sensitive:\n%s\nvs\n%s", aj, bj)
	}
	// Normalization must be a fixed point: the compiled spec re-normalized
	// is itself (the daemon hashes the normalized form).
	cj, _ := json.Marshal(a.Normalized())
	if !bytes.Equal(aj, cj) {
		t.Errorf("compiled spec is not normalization-stable:\n%s\nvs\n%s", aj, cj)
	}
}

func TestCompileExpandsTaggedJobs(t *testing.T) {
	rec, ok := Get("ARES-CPV-001")
	if !ok {
		t.Fatal("ARES-CPV-001 missing")
	}
	spec, err := Compile(Options{Seed: 1}, rec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := spec.Expand()
	if len(jobs) == 0 {
		t.Fatal("no jobs expanded")
	}
	for _, j := range jobs {
		if j.CPV != "ARES-CPV-001" {
			t.Errorf("job %s: CPV = %q", j.Key, j.CPV)
		}
		if !strings.HasPrefix(j.Key, "ARES-CPV-001/") {
			t.Errorf("job key %q lacks the CPV prefix", j.Key)
		}
	}
}

func TestCompileRejects(t *testing.T) {
	base, _ := Get("ARES-CPV-001")
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"unknown variable", func(r *Record) { r.Variables = []string{"NOPE.X"} }},
		{"unknown component", func(r *Record) { r.EntryComponent = "mainframe" }},
		{"unwritable from entry", func(r *Record) { r.EntryComponent = "drivers" }},
		{"unknown mission kind", func(r *Record) { r.Missions = []string{"spiral:10"} }},
		{"non-finite mission size", func(r *Record) { r.Missions = []string{"line:NaN"} }},
		{"unknown defense", func(r *Record) { r.Defenses = []string{"prayer"} }},
		{"unknown attack", func(r *Record) { r.AttackVector = "psychic" }},
		{"stealthy crash", func(r *Record) { r.AttackVector = "stealthy"; r.Goal = "crash" }},
		{"slash in id", func(r *Record) { r.ID = "a/b" }},
		{"empty name", func(r *Record) { r.Name = " " }},
		{"no variables", func(r *Record) { r.Variables = nil }},
	}
	for _, tc := range cases {
		r := base
		tc.mutate(&r)
		if _, err := Compile(Options{}, r); err == nil {
			t.Errorf("%s: compile accepted", tc.name)
		}
	}
	if _, err := Compile(Options{}, base, base); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := Compile(Options{}); err == nil {
		t.Error("empty record set accepted")
	}
	if _, err := CompileIDs(Options{}, "ARES-CPV-999"); err == nil {
		t.Error("unknown catalog id accepted")
	}
}

func TestParseRecordsStrict(t *testing.T) {
	good := `[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"deviation","variables":["PIDR.INTEG"]}]`
	recs, err := ParseRecords([]byte(good))
	if err != nil || len(recs) != 1 {
		t.Fatalf("good doc rejected: %v", err)
	}
	bad := []string{
		`{"id":"X-1"}`, // not an array
		`[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"deviation","variables":["V"],"bonus":1}]`, // unknown field
		good + `[]`, // trailing data
		`[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"deviation","variables":[]}]`, // no variables
	}
	for i, doc := range bad {
		if _, err := ParseRecords([]byte(doc)); err == nil {
			t.Errorf("bad doc %d accepted", i)
		}
	}
}

// TestCatalogGolden pins every built-in record's compiled Spec (and the
// whole-catalog compile) at a fixed seed. Refresh intentionally with
//
//	go test ./internal/cpv -run TestCatalogGolden -update
func TestCatalogGolden(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{Seed: 42, Episodes: 2, MaxSteps: 10}
	for _, r := range Catalog() {
		spec, err := Compile(opts, r)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		js, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "=== %s\n%s\n", r.ID, js)
	}
	all, err := Compile(opts, Catalog()...)
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "=== catalog\n%s\n", js)

	path := filepath.Join("testdata", "cpv_catalog.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := campaign.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("compiled catalog drifted from golden; run with -update if intentional\n--- got ---\n%s", buf.String())
	}
}
