package par

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d", got)
	}
}

func TestInner(t *testing.T) {
	cases := []struct{ budget, outer, want int }{
		{8, 2, 4},
		{8, 3, 2},
		{8, 16, 1}, // oversubscribed outer: inner floors at 1
		{1, 4, 1},
		{6, 6, 1},
	}
	for _, c := range cases {
		if got := Inner(c.budget, c.outer); got != c.want {
			t.Errorf("Inner(%d, %d) = %d, want %d", c.budget, c.outer, got, c.want)
		}
	}
	if got := Inner(4, 0); got != 4 {
		t.Errorf("Inner(4, 0) = %d, want the full budget", got)
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var sum atomic.Int64
		var calls atomic.Int64
		err := ForEach(context.Background(), workers, 50, func(i int) error {
			sum.Add(int64(i))
			calls.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 50 || sum.Load() != 49*50/2 {
			t.Fatalf("workers=%d: calls=%d sum=%d", workers, calls.Load(), sum.Load())
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls.Load() == 1000 {
		t.Error("error did not stop the feed")
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForEach(ctx, 1, 1000, func(i int) error {
		if calls.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() == 1000 {
		t.Error("cancellation did not stop the feed")
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoDisjointSlots(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out := make([]int, 64)
		Do(workers, len(out), func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestChunksCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 64, 101} {
			out := make([]int, n)
			spanOf := make([]int, n)
			Chunks(workers, n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i]++
					spanOf[i] = w
				}
			})
			for i, v := range out {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, v)
				}
			}
			// Spans are contiguous and ordered: span ids never decrease.
			for i := 1; i < n; i++ {
				if spanOf[i] < spanOf[i-1] {
					t.Fatalf("workers=%d n=%d: span ids out of order at %d", workers, n, i)
				}
			}
		}
	}
}

func TestChunksSpanIDsDisjoint(t *testing.T) {
	// Each span id is owned by exactly one invocation, so per-worker
	// scratch indexed by w needs no synchronization.
	workers := 4
	n := 37
	var calls atomic.Int64
	seen := make([]atomic.Int64, workers)
	Chunks(workers, n, func(w, lo, hi int) {
		calls.Add(1)
		seen[w].Add(1)
	})
	if calls.Load() != int64(workers) {
		t.Fatalf("calls = %d, want %d", calls.Load(), workers)
	}
	for w := range seen {
		if seen[w].Load() != 1 {
			t.Fatalf("span %d invoked %d times", w, seen[w].Load())
		}
	}
}

func TestArgminDeterministicTies(t *testing.T) {
	vals := []float64{5, 3, 9, 3, 3, 7}
	for _, workers := range []int{1, 2, 3, 8} {
		idx, val := Argmin(workers, len(vals), func(_, i int) float64 { return vals[i] })
		if idx != 1 || val != 3 {
			t.Fatalf("workers=%d: argmin = (%d, %v), want (1, 3)", workers, idx, val)
		}
	}
}

func TestArgminSkipsNaN(t *testing.T) {
	nan := math.NaN()
	vals := []float64{nan, 4, nan, 2, nan}
	for _, workers := range []int{1, 2, 5} {
		idx, val := Argmin(workers, len(vals), func(_, i int) float64 { return vals[i] })
		if idx != 3 || val != 2 {
			t.Fatalf("workers=%d: argmin = (%d, %v), want (3, 2)", workers, idx, val)
		}
	}
	// All NaN → no winner.
	if idx, _ := Argmin(2, 3, func(_, i int) float64 { return nan }); idx != -1 {
		t.Fatalf("all-NaN argmin = %d, want -1", idx)
	}
	// Empty input → no winner.
	if idx, _ := Argmin(2, 0, nil); idx != -1 {
		t.Fatalf("empty argmin = %d, want -1", idx)
	}
	// All +Inf is still a winner (the lowest index), unlike NaN.
	if idx, val := Argmin(2, 4, func(_, i int) float64 { return math.Inf(1) }); idx != 0 || !math.IsInf(val, 1) {
		t.Fatalf("all-Inf argmin = (%d, %v), want (0, +Inf)", idx, val)
	}
}

func TestBudgetFairShare(t *testing.T) {
	b := NewBudget(8)
	if b.Total() != 8 {
		t.Fatalf("total = %d, want 8", b.Total())
	}
	s1, r1 := b.Acquire()
	if s1 != 8 {
		t.Errorf("sole consumer share = %d, want 8", s1)
	}
	s2, r2 := b.Acquire()
	if s2 != 4 {
		t.Errorf("second consumer share = %d, want 4", s2)
	}
	s3, r3 := b.Acquire()
	if s3 != 2 {
		t.Errorf("third consumer share = %d, want 2", s3)
	}
	r2()
	r2() // release is idempotent
	r3()
	s4, r4 := b.Acquire()
	if s4 != 4 {
		t.Errorf("share after releases = %d, want 4 (2 active)", s4)
	}
	r1()
	r4()
	// More consumers than budget still get at least one worker each.
	b2 := NewBudget(2)
	for i := 0; i < 5; i++ {
		s, _ := b2.Acquire()
		if s < 1 {
			t.Fatalf("consumer %d share = %d, want >= 1", i, s)
		}
	}
}

func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			share, release := b.Acquire()
			defer release()
			if share < 1 || share > 4 {
				t.Errorf("share = %d, want in [1, 4]", share)
			}
		}()
	}
	wg.Wait()
	// All released: the next consumer gets the full budget back.
	if s, _ := b.Acquire(); s != 4 {
		t.Errorf("share after all released = %d, want 4", s)
	}
}
