package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d", got)
	}
}

func TestInner(t *testing.T) {
	cases := []struct{ budget, outer, want int }{
		{8, 2, 4},
		{8, 3, 2},
		{8, 16, 1}, // oversubscribed outer: inner floors at 1
		{1, 4, 1},
		{6, 6, 1},
	}
	for _, c := range cases {
		if got := Inner(c.budget, c.outer); got != c.want {
			t.Errorf("Inner(%d, %d) = %d, want %d", c.budget, c.outer, got, c.want)
		}
	}
	if got := Inner(4, 0); got != 4 {
		t.Errorf("Inner(4, 0) = %d, want the full budget", got)
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var sum atomic.Int64
		var calls atomic.Int64
		err := ForEach(context.Background(), workers, 50, func(i int) error {
			sum.Add(int64(i))
			calls.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 50 || sum.Load() != 49*50/2 {
			t.Fatalf("workers=%d: calls=%d sum=%d", workers, calls.Load(), sum.Load())
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls.Load() == 1000 {
		t.Error("error did not stop the feed")
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForEach(ctx, 1, 1000, func(i int) error {
		if calls.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() == 1000 {
		t.Error("cancellation did not stop the feed")
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoDisjointSlots(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out := make([]int, 64)
		Do(workers, len(out), func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}
