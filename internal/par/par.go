// Package par provides the repository's shared bounded-concurrency
// primitives. Every worker pool — campaign job fleets, Algorithm 1's
// correlation/prune/selection fan-out, parallel experiment runs — draws
// from these helpers, so one GOMAXPROCS-derived budget governs the whole
// process and nested pools can split it instead of multiplying it.
//
// All helpers are deterministic by construction for workloads whose units
// write to disjoint result slots: scheduling order may vary between runs,
// but no primitive here introduces cross-unit data flow, so outputs are
// identical at any worker count.
package par

import (
	"context"
	"math"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// the process budget (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Inner splits a concurrency budget across `outer` concurrent consumers:
// the per-consumer worker count such that outer × Inner ≈ budget, never
// below 1. Nested pools use this so a campaign running W jobs gives each
// job's analysis budget/W workers instead of W × budget goroutines.
func Inner(budget, outer int) int {
	if outer <= 0 {
		return Workers(budget)
	}
	inner := Workers(budget) / outer
	if inner < 1 {
		return 1
	}
	return inner
}

// ForEach runs fn(0) … fn(n-1) on up to `workers` goroutines and waits for
// all of them. The first non-nil error (or ctx cancellation) stops further
// indices from starting — already-running calls finish — and is returned.
// workers <= 0 uses the process budget.
func ForEach(ctx context.Context, workers, n int, fn func(int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return ctx.Err()
	}

	idx := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		}
	}
	close(idx)
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// Do runs fn(0) … fn(n-1) on up to `workers` goroutines and waits for all
// of them — ForEach without errors or cancellation, for pure fan-out
// kernels. With workers == 1 (or n == 1) it runs inline on the calling
// goroutine, so single-worker invocations cost nothing extra.
func Do(workers, n int, fn func(int)) {
	workers = Workers(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ForEach(context.Background(), workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// Chunks splits [0, n) into min(workers, n) contiguous spans and runs
// fn(w, lo, hi) once per span, concurrently. The span id w ∈ [0, spans)
// lets callers index per-worker scratch without synchronization: exactly
// one invocation owns each w. Span boundaries depend only on (workers, n),
// never on scheduling, so a kernel whose units write disjoint slots stays
// deterministic at any worker count. workers <= 0 uses the process budget.
func Chunks(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	spans := Workers(workers)
	if spans > n {
		spans = n
	}
	// Balanced split: the first `rem` spans get one extra index.
	size, rem := n/spans, n%spans
	bounds := func(w int) (int, int) {
		lo := w*size + min(w, rem)
		hi := lo + size
		if w < rem {
			hi++
		}
		return lo, hi
	}
	Do(spans, spans, func(w int) {
		lo, hi := bounds(w)
		fn(w, lo, hi)
	})
}

// Budget divides a fixed machine-wide concurrency budget among a varying
// set of concurrent consumers. Inner handles the static case (a pool of
// known width W); Budget handles the dynamic one — a daemon whose number
// of simultaneously running jobs varies between 0 and W — by recomputing
// the fair share at every Acquire. A job that runs alone gets the whole
// budget; jobs that start while others run get budget/active, never below
// 1. Shares are not rebalanced mid-job: a consumer keeps the width it
// acquired until it releases.
type Budget struct {
	mu     sync.Mutex
	total  int
	active int
}

// NewBudget returns a budget of `total` workers; total <= 0 uses the
// process budget (GOMAXPROCS).
func NewBudget(total int) *Budget {
	return &Budget{total: Workers(total)}
}

// Total returns the full budget width.
func (b *Budget) Total() int { return b.total }

// Acquire registers one consumer and returns its fair share of the budget
// plus a release func. release is idempotent and must be called when the
// consumer's work ends.
func (b *Budget) Acquire() (share int, release func()) {
	b.mu.Lock()
	b.active++
	share = b.total / b.active
	b.mu.Unlock()
	if share < 1 {
		share = 1
	}
	var once sync.Once
	return share, func() {
		once.Do(func() {
			b.mu.Lock()
			b.active--
			b.mu.Unlock()
		})
	}
}

// Argmin evaluates score(w, i) for i ∈ [0, n) across contiguous spans (w is
// the Chunks span id, usable as a scratch index) and returns the index and
// value of the smallest score. Ties and NaNs resolve deterministically: the
// lowest index attaining the minimum wins and NaN scores are skipped, so the
// result is identical at any worker count. Returns (-1, +Inf) when n <= 0 or
// every score is NaN.
func Argmin(workers, n int, score func(w, i int) float64) (int, float64) {
	if n <= 0 {
		return -1, math.Inf(1)
	}
	spans := Workers(workers)
	if spans > n {
		spans = n
	}
	bestIdx := make([]int, spans)
	bestVal := make([]float64, spans)
	Chunks(spans, n, func(w, lo, hi int) {
		idx, val := -1, math.Inf(1)
		for i := lo; i < hi; i++ {
			if s := score(w, i); s < val || (idx < 0 && s <= val) {
				// `s <= val` admits a leading +Inf score so that an
				// all-+Inf span still reports its first index; NaN
				// fails both comparisons and is skipped.
				idx, val = i, s
			}
		}
		bestIdx[w], bestVal[w] = idx, val
	})
	idx, val := -1, math.Inf(1)
	for w := 0; w < spans; w++ {
		// Spans are scanned in index order, so strict < keeps the lowest
		// winning index.
		if bestIdx[w] >= 0 && (bestVal[w] < val || idx < 0) {
			idx, val = bestIdx[w], bestVal[w]
		}
	}
	return idx, val
}
