// Package par provides the repository's shared bounded-concurrency
// primitives. Every worker pool — campaign job fleets, Algorithm 1's
// correlation/prune/selection fan-out, parallel experiment runs — draws
// from these helpers, so one GOMAXPROCS-derived budget governs the whole
// process and nested pools can split it instead of multiplying it.
//
// All helpers are deterministic by construction for workloads whose units
// write to disjoint result slots: scheduling order may vary between runs,
// but no primitive here introduces cross-unit data flow, so outputs are
// identical at any worker count.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// the process budget (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Inner splits a concurrency budget across `outer` concurrent consumers:
// the per-consumer worker count such that outer × Inner ≈ budget, never
// below 1. Nested pools use this so a campaign running W jobs gives each
// job's analysis budget/W workers instead of W × budget goroutines.
func Inner(budget, outer int) int {
	if outer <= 0 {
		return Workers(budget)
	}
	inner := Workers(budget) / outer
	if inner < 1 {
		return 1
	}
	return inner
}

// ForEach runs fn(0) … fn(n-1) on up to `workers` goroutines and waits for
// all of them. The first non-nil error (or ctx cancellation) stops further
// indices from starting — already-running calls finish — and is returned.
// workers <= 0 uses the process budget.
func ForEach(ctx context.Context, workers, n int, fn func(int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return ctx.Err()
	}

	idx := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		}
	}
	close(idx)
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// Do runs fn(0) … fn(n-1) on up to `workers` goroutines and waits for all
// of them — ForEach without errors or cancellation, for pure fan-out
// kernels. With workers == 1 (or n == 1) it runs inline on the calling
// goroutine, so single-worker invocations cost nothing extra.
func Do(workers, n int, fn func(int)) {
	workers = Workers(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ForEach(context.Background(), workers, n, func(i int) error {
		fn(i)
		return nil
	})
}
