package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/serve"
)

// WorkerConfig parameterizes a fleet Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	// Required.
	Coordinator string
	// ID is the worker's stable identity; empty derives host-pid. The ID
	// shards the job space, so restarting under the same ID re-leases the
	// same shard.
	ID string
	// Jobs is the local runner pool size; <=0 uses the process budget.
	Jobs int
	// FlushEvery is how many finished records buffer before a stream
	// flush. Default 8.
	FlushEvery int
	// Execute runs one job; nil uses the built-in ARES executor.
	Execute campaign.Executor
	// ExecuteGroup, when non-nil, batches trial groups (see
	// campaign.Runner.ExecuteGroup).
	ExecuteGroup campaign.GroupExecutor
	// Client issues the HTTP calls; nil uses a 30s-timeout client.
	Client *http.Client
	// Log receives worker log lines; nil discards.
	Log io.Writer
}

func (c *WorkerConfig) applyDefaults() error {
	if c.Coordinator == "" {
		return errors.New("dist: WorkerConfig.Coordinator is required")
	}
	c.Coordinator = strings.TrimRight(c.Coordinator, "/")
	if c.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if err := validWorkerID(c.ID); err != nil {
		return err
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return nil
}

// Worker is one fleet member: it registers with a coordinator, leases job
// batches, executes them through the ordinary campaign runner, and
// streams the records back. A worker holds no campaign state beyond a
// per-campaign spec cache — kill one mid-lease and the coordinator
// re-leases its jobs after the lease TTL.
type Worker struct {
	cfg WorkerConfig
	// hb is the heartbeat interval assigned at registration.
	hb time.Duration
	// specs caches each campaign's locally-expanded job list, keyed by
	// campaign ID. Only the Run goroutine touches it.
	specs map[string]map[string]campaign.Job
}

// NewWorker builds a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg, specs: make(map[string]map[string]campaign.Job)}, nil
}

// ID returns the worker's effective identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Run registers and then loops lease → execute → stream → complete until
// ctx is cancelled. Transient coordinator failures (not up yet, restart
// mid-fleet) are retried; a cancelled ctx returns nil.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		var grant LeaseResponse
		err := w.post(ctx, "/v1/dist/lease", LeaseRequest{Worker: w.cfg.ID}, &grant, maxLeaseBytes)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			fmt.Fprintf(w.cfg.Log, "dist: worker %s lease request: %v\n", w.cfg.ID, err)
			if !sleepCtx(ctx, time.Second) {
				return nil
			}
			continue
		}
		if grant.Lease == "" {
			d := time.Duration(grant.RetryMillis) * time.Millisecond
			if d <= 0 {
				d = time.Second
			}
			if !sleepCtx(ctx, d) {
				return nil
			}
			continue
		}
		if err := w.runLease(ctx, grant); err != nil && ctx.Err() == nil {
			fmt.Fprintf(w.cfg.Log, "dist: worker %s lease %s: %v\n", w.cfg.ID, grant.Lease, err)
		}
	}
}

// register announces the worker, retrying until the coordinator answers
// or ctx ends, and adopts the assigned heartbeat interval.
func (w *Worker) register(ctx context.Context) error {
	for {
		var resp RegisterResponse
		err := w.post(ctx, "/v1/dist/register", RegisterRequest{Worker: w.cfg.ID}, &resp, maxControlBytes)
		if err == nil {
			w.hb = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			if w.hb < 10*time.Millisecond {
				w.hb = 10 * time.Millisecond
			}
			fmt.Fprintf(w.cfg.Log, "dist: worker %s registered with %s (heartbeat %v)\n",
				w.cfg.ID, w.cfg.Coordinator, w.hb)
			return nil
		}
		var ae *apiError
		if errors.As(err, &ae) {
			return err // the coordinator rejected us: not transient
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		fmt.Fprintf(w.cfg.Log, "dist: worker %s register: %v (retrying)\n", w.cfg.ID, err)
		if !sleepCtx(ctx, time.Second) {
			return ctx.Err()
		}
	}
}

// runLease executes one granted batch: resolve keys against the locally
// expanded spec, run them on the campaign runner while a heartbeat
// goroutine keeps the lease alive, stream the records, then complete the
// lease. An Abandon heartbeat reply cancels the lease context, so
// in-flight jobs wind down instead of streaming to a lease the
// coordinator already re-granted.
func (w *Worker) runLease(ctx context.Context, grant LeaseResponse) error {
	jobsByKey, err := w.campaignJobs(ctx, grant.Campaign)
	if err != nil {
		return err
	}
	jobs := make([]campaign.Job, 0, len(grant.Keys))
	for _, k := range grant.Keys {
		j, ok := jobsByKey[k]
		if !ok {
			return fmt.Errorf("dist: lease %s names key %q absent from campaign %s", grant.Lease, k, grant.Campaign)
		}
		jobs = append(jobs, j)
	}

	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(w.hb)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
				var hr HeartbeatResponse
				err := w.post(leaseCtx, "/v1/dist/heartbeat",
					HeartbeatRequest{Worker: w.cfg.ID, Lease: grant.Lease}, &hr, maxControlBytes)
				if err == nil && hr.Abandon {
					fmt.Fprintf(w.cfg.Log, "dist: worker %s abandoning lease %s\n", w.cfg.ID, grant.Lease)
					cancel()
					return
				}
			}
		}
	}()

	sink := &streamSink{w: w, ctx: leaseCtx, lease: grant.Lease}
	runner := &campaign.Runner{
		Workers:      w.cfg.Jobs,
		Execute:      w.cfg.Execute,
		ExecuteGroup: w.cfg.ExecuteGroup,
		Log:          w.cfg.Log,
	}
	_, runErr := runner.RunJobs(leaseCtx, jobs, sink)
	flushErr := sink.flush()
	cancel()
	hbWG.Wait()
	if runErr == nil {
		runErr = flushErr
	}
	if runErr != nil {
		return runErr
	}
	var cr CompleteResponse
	return w.post(ctx, "/v1/dist/complete",
		CompleteRequest{Worker: w.cfg.ID, Lease: grant.Lease}, &cr, maxControlBytes)
}

// campaignJobs returns campaign id's jobs keyed by job key, fetching and
// expanding the spec on first sight. The fetched spec re-passes the
// strict submission decoder and must hash back to the campaign ID it was
// fetched under — a worker never executes jobs whose provenance it
// cannot recompute.
func (w *Worker) campaignJobs(ctx context.Context, id string) (map[string]campaign.Job, error) {
	if jobs, ok := w.specs[id]; ok {
		return jobs, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.cfg.Coordinator+"/v1/dist/campaigns/"+id+"/spec", nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: spec fetch for %s: HTTP %d", id, resp.StatusCode)
	}
	spec, err := serve.DecodeSpec(io.LimitReader(resp.Body, serve.MaxSpecBytes))
	if err != nil {
		return nil, fmt.Errorf("dist: spec fetch for %s: %w", id, err)
	}
	if got := serve.SpecHash(spec); got != id {
		return nil, fmt.Errorf("dist: spec fetched for campaign %s hashes to %s", id, got)
	}
	jobs := make(map[string]campaign.Job)
	for _, j := range spec.Expand() {
		jobs[j.Key] = j
	}
	w.specs[id] = jobs
	return jobs, nil
}

// streamSink is the worker-side campaign.RecordSink: it buffers finished
// records and streams them to the coordinator in offset-stamped batches.
// A transport failure retries the same offset — the coordinator drops the
// overlap — so a record is merged exactly once however flaky the link.
type streamSink struct {
	w     *Worker
	ctx   context.Context
	lease string

	mu   sync.Mutex
	buf  []campaign.Record
	sent int
}

// Completed always reports false: the coordinator already filtered
// completed jobs out of the lease.
func (s *streamSink) Completed(string) bool { return false }

// Append buffers one record, flushing a full batch.
func (s *streamSink) Append(rec campaign.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, rec)
	if len(s.buf) < s.w.cfg.FlushEvery {
		return nil
	}
	return s.flushLocked()
}

func (s *streamSink) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *streamSink) flushLocked() error {
	if len(s.buf) == 0 {
		return nil
	}
	req := RecordsRequest{Worker: s.w.cfg.ID, Lease: s.lease, Offset: s.sent, Records: s.buf}
	var resp RecordsResponse
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		err = s.w.post(s.ctx, "/v1/dist/records", req, &resp, maxControlBytes)
		if err == nil {
			break
		}
		var ae *apiError
		if errors.As(err, &ae) {
			return err // coordinator refused the batch: lease lost or protocol error
		}
		if !sleepCtx(s.ctx, 100*time.Millisecond) {
			return err
		}
	}
	if err != nil {
		return err
	}
	if resp.Next < s.sent || resp.Next > s.sent+len(s.buf) {
		return fmt.Errorf("dist: coordinator acked offset %d outside [%d, %d]",
			resp.Next, s.sent, s.sent+len(s.buf))
	}
	s.sent = resp.Next
	s.buf = s.buf[:0]
	return nil
}

// apiError is a non-2xx coordinator reply: a deliberate refusal, not a
// transport fault, so callers treat it as permanent rather than retrying.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("dist: coordinator replied %d: %s", e.Status, e.Msg)
}

// post sends one JSON envelope and strictly decodes the JSON reply.
func (w *Worker) post(ctx context.Context, path string, in, out any, limit int64) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	return decodeWireInto(resp.Body, limit, out)
}

// sleepCtx sleeps d or until ctx ends; it reports whether the full sleep
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
