package dist

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/serve"
)

// BenchmarkDistMerge measures the coordinator's merge path end to end —
// submit, lease, record ingestion, slot fill, finalize (sorted artifact +
// summary) — for a 64-job campaign delivered by 1, 2 and 8 simulated
// workers. Worker count changes lease interleaving, not record bytes; the
// benchmark tracks what fan-in costs the coordinator.
func BenchmarkDistMerge(b *testing.B) {
	spec := fleetSpec("bench-merge", 32)
	_, _, recs := localRun(b, spec)
	recFor := make(map[string]campaign.Record, len(recs))
	for _, r := range recs {
		recFor[r.Key] = r
	}
	id := serve.SpecHash(spec)

	for _, nw := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			root := b.TempDir()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dir := filepath.Join(root, fmt.Sprintf("i%d", i))
				c, err := NewCoordinator(CoordConfig{
					StoreDir: dir, LeaseTTL: time.Hour, MaxLease: 8,
					Metrics: metrics.NewRegistry(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, code := c.Submit(spec); code != 202 {
					b.Fatalf("submit = %d", code)
				}
				for w := 0; ; w++ {
					worker := fmt.Sprintf("w%d", w%nw)
					g, err := c.Lease(LeaseRequest{Worker: worker})
					if err != nil {
						b.Fatal(err)
					}
					if g.Lease == "" {
						break
					}
					batch := make([]campaign.Record, 0, len(g.Keys))
					for _, k := range g.Keys {
						batch = append(batch, recFor[k])
					}
					if _, _, err := c.MergeRecords(RecordsRequest{
						Worker: worker, Lease: g.Lease, Offset: 0, Records: batch,
					}); err != nil {
						b.Fatal(err)
					}
					c.Complete(CompleteRequest{Worker: worker, Lease: g.Lease})
				}
				if st, ok := c.Status(id); !ok ||
					(st.State != serve.StateDone && st.State != serve.StateFailed) {
					b.Fatalf("campaign not terminal: %+v", st)
				}
				if err := c.Shutdown(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
