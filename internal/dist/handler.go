package dist

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/ares-cps/ares/internal/serve"
)

// Handler returns the coordinator's HTTP API. The client-facing half
// mirrors the single-node daemon (same wire shapes, so `aresd -submit
// -wait` works against either); the /v1/dist/* half is the worker fleet
// protocol:
//
//	POST /v1/jobs                     submit a campaign.Spec (JSON); 202
//	                                  accepted or deduped, 200 when done,
//	                                  503 while draining
//	GET  /v1/jobs/{id}                campaign status (Events = records merged)
//	GET  /v1/results/{id}             aggregated report of a finished campaign
//	GET  /v1/dist/campaigns/{id}/spec campaign spec for worker-side expansion
//	POST /v1/dist/register            worker hello → lease TTL + heartbeat interval
//	POST /v1/dist/lease               lease a job batch (empty lease = retry later)
//	POST /v1/dist/heartbeat           keep a lease alive (or learn to abandon it)
//	POST /v1/dist/records             stream finished records (resumable offsets)
//	POST /v1/dist/complete            retire a fully-streamed lease
//	GET  /metrics                     Prometheus text exposition (ares_dist_*)
//	GET  /healthz                     liveness + fleet gauges
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/results/{id}", c.handleResult)
	mux.HandleFunc("GET /v1/dist/campaigns/{id}/spec", c.handleSpec)
	mux.HandleFunc("POST /v1/dist/register", c.handleRegister)
	mux.HandleFunc("POST /v1/dist/lease", c.handleLease)
	mux.HandleFunc("POST /v1/dist/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/dist/records", c.handleRecords)
	mux.HandleFunc("POST /v1/dist/complete", c.handleComplete)
	mux.Handle("GET /metrics", c.cfg.Metrics.Handler())
	mux.HandleFunc("GET /healthz", c.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := serve.DecodeSpec(http.MaxBytesReader(w, r.Body, serve.MaxSpecBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	st, code := c.Submit(spec)
	switch code {
	case http.StatusServiceUnavailable:
		writeErr(w, code, "draining: not accepting new campaigns")
	case http.StatusInternalServerError:
		writeErr(w, code, "campaign could not be opened")
	default:
		writeJSON(w, code, st)
	}
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := c.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, code := c.Result(id)
	switch code {
	case http.StatusOK:
		writeJSON(w, code, res)
	case http.StatusConflict:
		writeErr(w, code, "campaign %s has not finished", id)
	default:
		writeErr(w, code, "unknown result")
	}
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	spec, ok := c.SpecOf(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	req, err := decodeWire[RegisterRequest](http.MaxBytesReader(w, r.Body, maxControlBytes), maxControlBytes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid register: %v", err)
		return
	}
	resp, err := c.Register(req.Worker)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	req, err := decodeWire[LeaseRequest](http.MaxBytesReader(w, r.Body, maxControlBytes), maxControlBytes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid lease request: %v", err)
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	req, err := decodeWire[HeartbeatRequest](http.MaxBytesReader(w, r.Body, maxControlBytes), maxControlBytes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid heartbeat: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, c.Heartbeat(req))
}

func (c *Coordinator) handleRecords(w http.ResponseWriter, r *http.Request) {
	req, err := decodeWire[RecordsRequest](http.MaxBytesReader(w, r.Body, maxRecordsBytes), maxRecordsBytes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid records batch: %v", err)
		return
	}
	resp, code, err := c.MergeRecords(req)
	if err != nil {
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, code, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	req, err := decodeWire[CompleteRequest](http.MaxBytesReader(w, r.Body, maxControlBytes), maxControlBytes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid complete: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, c.Complete(req))
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	campaigns := len(c.campaigns)
	workers := len(c.workers)
	leases := len(c.leases)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        !draining,
		"draining":  draining,
		"campaigns": campaigns,
		"workers":   workers,
		"leases":    leases,
	})
}
